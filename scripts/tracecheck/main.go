// Command tracecheck validates a Chrome trace-event JSON file (the span
// export written by wormsim -span-out) against the subset of the format the
// simulator emits, so CI can prove a saturated-run trace actually loads in
// Perfetto-compatible viewers:
//
//   - the document is {"traceEvents": [...]}
//   - every event has a phase ("X" or "M"), a pid and a tid
//   - "X" complete events carry a name, a numeric ts and a non-negative dur
//   - "M" metadata events are thread_name records with an args.name
//
// Usage:
//
//	tracecheck [-min-events N] <trace.json>
//
// With -min-events, the file must contain at least N "X" slices — the smoke
// test's proof that sampling actually produced spans.
//
// Exit codes: 0 valid; 1 invalid (details on stderr); 2 usage/IO error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type traceEvent struct {
	Ph   string          `json:"ph"`
	Pid  *int64          `json:"pid"`
	Tid  *int64          `json:"tid"`
	Name string          `json:"name"`
	Ts   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	Args json.RawMessage `json:"args"`
}

func main() {
	minEvents := flag.Int("min-events", 0, "require at least this many X slices")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min-events N] <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: not valid trace-event JSON: %v\n", err)
		os.Exit(1)
	}
	if doc.TraceEvents == nil {
		fmt.Fprintln(os.Stderr, "tracecheck: missing traceEvents array")
		os.Exit(1)
	}

	bad := 0
	fail := func(i int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tracecheck: event %d: %s\n", i, fmt.Sprintf(format, args...))
		bad++
	}
	slices := 0
	for i, ev := range doc.TraceEvents {
		if ev.Pid == nil || ev.Tid == nil {
			fail(i, "missing pid/tid (%+v)", ev)
			continue
		}
		switch ev.Ph {
		case "X":
			slices++
			if ev.Name == "" {
				fail(i, "X slice without a name")
			}
			if ev.Ts == nil || ev.Dur == nil {
				fail(i, "X slice %q missing ts/dur", ev.Name)
			} else if *ev.Dur < 0 {
				fail(i, "X slice %q has negative dur %g", ev.Name, *ev.Dur)
			}
		case "M":
			if ev.Name != "thread_name" {
				fail(i, "unexpected metadata record %q", ev.Name)
				continue
			}
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(ev.Args, &args); err != nil || args.Name == "" {
				fail(i, "thread_name metadata without args.name")
			}
		default:
			fail(i, "unexpected phase %q", ev.Ph)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "tracecheck: %d invalid events\n", bad)
		os.Exit(1)
	}
	if slices < *minEvents {
		fmt.Fprintf(os.Stderr, "tracecheck: %d X slices, want at least %d\n", slices, *minEvents)
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %d events ok (%d slices)\n", len(doc.TraceEvents), slices)
}
