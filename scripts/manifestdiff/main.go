// Command manifestdiff compares two campaign manifests for result
// equivalence: same sweep header (vary, seed, limiter, values), every point
// completed, and bit-identical stats.Result per point. Provenance fields
// that legitimately differ between a farm run and a serial run — worker,
// attempts, resumed_from, checkpoint — are ignored.
//
// Usage:
//
//	manifestdiff [-require-resume] <dirA> <dirB>
//
// With -require-resume, dirA must additionally contain at least one point
// that resumed from a migrated checkpoint (resumed_from > 0) — the smoke
// test's proof that a kill actually exercised the migration path.
//
// Exit codes: 0 equivalent; 1 different (diffs on stderr); 2 usage/IO error.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"

	"wormnet/internal/campaign"
)

func main() {
	requireResume := flag.Bool("require-resume", false,
		"fail unless the first manifest has a point with resumed_from > 0")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: manifestdiff [-require-resume] <dirA> <dirB>")
		os.Exit(2)
	}
	a, err := campaign.LoadManifest(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	b, err := campaign.LoadManifest(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	bad := 0
	diff := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "manifestdiff: "+format+"\n", args...)
		bad++
	}

	if a.Vary != b.Vary || a.Seed != b.Seed || a.Limiter != b.Limiter {
		diff("headers differ: %s/%d/%s vs %s/%d/%s",
			a.Vary, a.Seed, a.Limiter, b.Vary, b.Seed, b.Limiter)
	}
	if len(a.Points) != len(b.Points) {
		diff("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}

	resumed := 0
	for i := 0; i < len(a.Points) && i < len(b.Points); i++ {
		pa, pb := a.Points[i], b.Points[i]
		if pa.Value != pb.Value {
			diff("point %d values differ: %s vs %s", i, pa.Value, pb.Value)
			continue
		}
		if pa.Status != campaign.StatusCompleted || pb.Status != campaign.StatusCompleted {
			diff("point %d not completed on both sides: %s vs %s", i, pa.Status, pb.Status)
			continue
		}
		if pa.Result == nil || pb.Result == nil {
			diff("point %d missing a result: %v vs %v", i, pa.Result, pb.Result)
			continue
		}
		if !reflect.DeepEqual(*pa.Result, *pb.Result) {
			diff("point %d (%s=%s) results diverge:\n  A: %+v\n  B: %+v",
				i, a.Vary, pa.Value, *pa.Result, *pb.Result)
		}
		if pa.ResumedFrom > 0 {
			resumed++
		}
	}
	if *requireResume && resumed == 0 {
		diff("no point in %s resumed from a migrated checkpoint", flag.Arg(0))
	}

	if bad > 0 {
		os.Exit(1)
	}
	fmt.Printf("manifestdiff: %d points equivalent", len(a.Points))
	if resumed > 0 {
		fmt.Printf(" (%d resumed from a migrated checkpoint)", resumed)
	}
	fmt.Println()
}
