// Command benchsummary digests `go test -bench` output from the scaling
// lane (scripts/bench_scaling.sh, the CI scaling-smoke job): it groups
// repeated runs of each benchmark, reports the per-benchmark minimum and
// median ns/op, and derives the parallel engine's workers=2-vs-workers=1
// overhead from the minima. The minimum is the statistic of record on
// shared hosts — scheduler and neighbour interference only ever add time,
// so min-of-N converges on the machine's true cost while medians wander
// with load.
//
// Usage:
//
//	benchsummary [-max-overhead pct] [-require-zero-allocs] <bench-output.txt>
//	benchsummary -procs
//
// With -max-overhead, exits 1 if the workers=2 minimum exceeds the
// workers=1 minimum by more than pct percent. With -require-zero-allocs,
// exits 1 if any BenchmarkEngineCycles* line reports nonzero allocs/op
// (steady-state engine cycles must not allocate at any worker count).
// -procs prints runtime.GOMAXPROCS(0) and exits — the host fact the
// scaling numbers are meaningless without.
//
// Exit codes: 0 ok; 1 a gate failed; 2 usage/parse error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark result line.
type sample struct {
	nsPerOp  float64
	allocsOp int64
	hasMem   bool
}

func main() {
	maxOverhead := flag.Float64("max-overhead", -1,
		"fail if min workers=2 ns/op exceeds min workers=1 by more than this percent (-1 = report only)")
	zeroAllocs := flag.Bool("require-zero-allocs", false,
		"fail if any BenchmarkEngineCycles* line reports allocs/op != 0")
	procs := flag.Bool("procs", false, "print runtime.GOMAXPROCS(0) and exit")
	flag.Parse()

	if *procs {
		fmt.Println(runtime.GOMAXPROCS(0))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchsummary [flags] <bench-output.txt>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer f.Close()

	groups := map[string][]sample{}
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, s, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if _, seen := groups[name]; !seen {
			order = append(order, name)
		}
		groups[name] = append(groups[name], s)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(groups) == 0 {
		fmt.Fprintln(os.Stderr, "benchsummary: no benchmark lines found")
		os.Exit(2)
	}

	fail := false
	mins := map[string]float64{}
	for _, name := range order {
		ss := groups[name]
		ns := make([]float64, len(ss))
		for i, s := range ss {
			ns[i] = s.nsPerOp
		}
		sort.Float64s(ns)
		mins[name] = ns[0]
		fmt.Printf("%-44s n=%d  min %.0f ns/op  median %.0f ns/op\n",
			name, len(ss), ns[0], ns[len(ns)/2])
		if *zeroAllocs && strings.HasPrefix(name, "BenchmarkEngineCycles") {
			for _, s := range ss {
				if s.hasMem && s.allocsOp != 0 {
					fmt.Printf("FAIL %s: %d allocs/op, want 0\n", name, s.allocsOp)
					fail = true
					break
				}
			}
		}
	}

	w1, ok1 := minFor(mins, "workers=1")
	w2, ok2 := minFor(mins, "workers=2")
	if ok1 && ok2 {
		overhead := (w2/w1 - 1) * 100
		fmt.Printf("workers=2 overhead vs workers=1 (from minima): %+.1f%%\n", overhead)
		if *maxOverhead >= 0 && overhead > *maxOverhead {
			fmt.Printf("FAIL overhead %.1f%% exceeds limit %.1f%%\n", overhead, *maxOverhead)
			fail = true
		}
	} else if *maxOverhead >= 0 {
		fmt.Fprintln(os.Stderr, "benchsummary: -max-overhead needs workers=1 and workers=2 rows")
		os.Exit(2)
	}
	if fail {
		os.Exit(1)
	}
}

// parseLine extracts one "BenchmarkFoo/bar-8  123  456 ns/op ..." line.
func parseLine(line string) (string, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", sample{}, false
	}
	// Strip the -GOMAXPROCS suffix go test appends to the name.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var s sample
	found := false
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsPerOp, found = v, true
		case "allocs/op":
			s.allocsOp, s.hasMem = int64(v), true
		}
	}
	return name, s, found
}

// minFor returns the min ns/op of the benchmark whose name contains sub.
func minFor(mins map[string]float64, sub string) (float64, bool) {
	for name, v := range mins {
		if strings.Contains(name, sub) {
			return v, true
		}
	}
	return 0, false
}
