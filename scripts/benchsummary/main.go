// Command benchsummary digests `go test -bench` output from the scaling
// lane (scripts/bench_scaling.sh, the CI scaling-smoke job): it groups
// repeated runs of each benchmark, reports the per-benchmark minimum and
// median ns/op, and derives the parallel engine's workers=2-vs-workers=1
// overhead from the minima. The minimum is the statistic of record on
// shared hosts — scheduler and neighbour interference only ever add time,
// so min-of-N converges on the machine's true cost while medians wander
// with load.
//
// Usage:
//
//	benchsummary [-max-overhead pct] [-require-zero-allocs] [-base sub] [-candidate sub] <bench-output.txt>
//	benchsummary -sync-profile <metrics.prom>
//	benchsummary -procs
//
// With -max-overhead, exits 1 if the candidate benchmark's minimum exceeds
// the base benchmark's minimum by more than pct percent. -base and
// -candidate select those two rows by name (exact match preferred, then
// substring); they default to "workers=1" and "workers=2" — the scaling
// lane's contract — and the CI obs-smoke job points them at
// BenchmarkEngineCycles vs BenchmarkEngineCyclesSpans to gate the span
// instrumentation overhead instead. With -require-zero-allocs, exits 1 if
// any BenchmarkEngineCycles* line reports nonzero allocs/op (steady-state
// engine cycles must not allocate at any worker count).
//
// -sync-profile digests a Prometheus text scrape (wormsim -http /metrics)
// instead of bench output: it prints the parallel engine's sync profile —
// mean per-shard wait at each of the four fused barriers, mean shard busy
// time, the shard imbalance and push-ring high-watermark gauges, and the
// all-time cross-shard ring push count.
//
// -procs prints runtime.GOMAXPROCS(0) and exits — the host fact the
// scaling numbers are meaningless without.
//
// Exit codes: 0 ok; 1 a gate failed; 2 usage/parse error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark result line.
type sample struct {
	nsPerOp  float64
	allocsOp int64
	hasMem   bool
}

func main() {
	maxOverhead := flag.Float64("max-overhead", -1,
		"fail if min workers=2 ns/op exceeds min workers=1 by more than this percent (-1 = report only)")
	zeroAllocs := flag.Bool("require-zero-allocs", false,
		"fail if any BenchmarkEngineCycles* line reports allocs/op != 0")
	base := flag.String("base", "workers=1", "benchmark name (exact preferred, else substring) of the overhead baseline")
	candidate := flag.String("candidate", "workers=2", "benchmark name (exact preferred, else substring) gated against -base")
	syncProfile := flag.String("sync-profile", "", "digest this Prometheus text scrape's sim_barrier_wait_*/sim_shard_*/sim_ring_* series instead of bench output")
	procs := flag.Bool("procs", false, "print runtime.GOMAXPROCS(0) and exit")
	flag.Parse()

	if *procs {
		fmt.Println(runtime.GOMAXPROCS(0))
		return
	}
	if *syncProfile != "" {
		os.Exit(printSyncProfile(*syncProfile))
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchsummary [flags] <bench-output.txt>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer f.Close()

	groups := map[string][]sample{}
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, s, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if _, seen := groups[name]; !seen {
			order = append(order, name)
		}
		groups[name] = append(groups[name], s)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(groups) == 0 {
		fmt.Fprintln(os.Stderr, "benchsummary: no benchmark lines found")
		os.Exit(2)
	}

	fail := false
	mins := map[string]float64{}
	for _, name := range order {
		ss := groups[name]
		ns := make([]float64, len(ss))
		for i, s := range ss {
			ns[i] = s.nsPerOp
		}
		sort.Float64s(ns)
		mins[name] = ns[0]
		fmt.Printf("%-44s n=%d  min %.0f ns/op  median %.0f ns/op\n",
			name, len(ss), ns[0], ns[len(ns)/2])
		if *zeroAllocs && strings.HasPrefix(name, "BenchmarkEngineCycles") {
			for _, s := range ss {
				if s.hasMem && s.allocsOp != 0 {
					fmt.Printf("FAIL %s: %d allocs/op, want 0\n", name, s.allocsOp)
					fail = true
					break
				}
			}
		}
	}

	w1, ok1 := minFor(mins, order, *base)
	w2, ok2 := minFor(mins, order, *candidate)
	if ok1 && ok2 {
		overhead := (w2/w1 - 1) * 100
		fmt.Printf("%s overhead vs %s (from minima): %+.1f%%\n", *candidate, *base, overhead)
		if *maxOverhead >= 0 && overhead > *maxOverhead {
			fmt.Printf("FAIL overhead %.1f%% exceeds limit %.1f%%\n", overhead, *maxOverhead)
			fail = true
		}
	} else if *maxOverhead >= 0 {
		fmt.Fprintf(os.Stderr, "benchsummary: -max-overhead needs %q and %q rows\n", *base, *candidate)
		os.Exit(2)
	}
	if fail {
		os.Exit(1)
	}
}

// parseLine extracts one "BenchmarkFoo/bar-8  123  456 ns/op ..." line.
func parseLine(line string) (string, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", sample{}, false
	}
	// Strip the -GOMAXPROCS suffix go test appends to the name.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var s sample
	found := false
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsPerOp, found = v, true
		case "allocs/op":
			s.allocsOp, s.hasMem = int64(v), true
		}
	}
	return name, s, found
}

// minFor returns the min ns/op of the benchmark named sub — an exact name
// match wins (so "BenchmarkEngineCycles" does not resolve to
// "BenchmarkEngineCyclesSpans"); otherwise the first benchmark, in input
// order, whose name contains sub.
func minFor(mins map[string]float64, order []string, sub string) (float64, bool) {
	if v, ok := mins[sub]; ok {
		return v, true
	}
	for _, name := range order {
		if strings.Contains(name, sub) {
			return mins[name], true
		}
	}
	return 0, false
}

// printSyncProfile digests the sync-profile series out of a Prometheus
// text scrape: histogram means from the _sum/_count pairs, plain gauges
// and counters verbatim. Returns the process exit code.
func printSyncProfile(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer f.Close()
	series := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.Contains(fields[0], "{") {
			continue // histogram buckets carry labels; only _sum/_count matter here
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		series[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	mean := func(name string) (float64, int64, bool) {
		n, ok := series[name+"_count"]
		if !ok || n == 0 {
			return 0, 0, false
		}
		return series[name+"_sum"] / n, int64(n), true
	}
	found := false
	for _, name := range []string{
		"sim_barrier_wait_b1_ns", "sim_barrier_wait_b2_ns",
		"sim_barrier_wait_b3_ns", "sim_barrier_wait_b4_ns",
		"sim_shard_busy_ns",
	} {
		if m, n, ok := mean(name); ok {
			fmt.Printf("%-28s mean %8.0f ns  (n=%d)\n", name, m, n)
			found = true
		}
	}
	for _, name := range []string{
		"sim_shard_imbalance_ratio", "sim_push_ring_high_watermark", "sim_ring_pushes_total",
	} {
		if v, ok := series[name]; ok {
			fmt.Printf("%-28s %g\n", name, v)
			found = true
		}
	}
	if !found {
		fmt.Println("no sync-profile series in scrape (serial engine, or spans/metrics off)")
	}
	return 0
}
