#!/usr/bin/env bash
# Scaling bench lane: measure the parallel engine's cycle throughput at
# workers 1/2/4/8, the phase-barrier microbenchmark, and the serial
# reference, then summarise the workers=2-vs-1 overhead from per-count
# minima (the noise-robust statistic on shared hosts — interference only
# ever adds time).
#
# Usage: scripts/bench_scaling.sh [out-dir] [count] [benchtime]
#
# Raw `go test -bench` output lands in <out-dir>/scaling-raw.txt, the
# summary on stdout. These are the measurements BENCH_pr7.json records;
# rerun this script on a new host to regenerate them.
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-$(mktemp -d)}"
count="${2:-5}"
benchtime="${3:-1s}"
mkdir -p "$out"
raw="$out/scaling-raw.txt"
: > "$raw"

echo "bench-scaling: GOMAXPROCS=$(go run ./scripts/benchsummary -procs), count=$count, benchtime=$benchtime" >&2

# Engine curves: serial reference plus the sharded engine at every worker
# count. One invocation keeps the comparison inside a single process so
# host drift hits all rows alike.
go test -run 'XXX' -bench 'BenchmarkEngineCycles$|BenchmarkEngineCyclesParallel' \
  -benchmem -benchtime "$benchtime" -count "$count" . | tee -a "$raw"

# Barrier microbenchmark: pure synchronisation cost per barrier round at
# the shard counts the engine uses (4 barriers per steady-state cycle).
go test -run 'XXX' -bench 'BenchmarkPhaseBarrier' \
  -benchmem -benchtime "$benchtime" ./internal/sim/ | tee -a "$raw"

go run ./scripts/benchsummary "$raw"
