#!/usr/bin/env bash
# Farm smoke test: boot a coordinator and two workers, hard-kill the first
# worker mid-point, let the second steal the lease and resume from the
# migrated checkpoint, then require the farm's manifest to carry results
# bit-identical to a plain serial `sweep` of the same spec.
#
# Usage: scripts/farm_smoke.sh [scratch-dir]
#
# Run from the repository root. Exits non-zero on any divergence.
set -euo pipefail

cd "$(dirname "$0")/.."
scratch="${1:-$(mktemp -d)}"
mkdir -p "$scratch"
echo "farm-smoke: scratch dir $scratch"

bin="$scratch/bin"
mkdir -p "$bin"
go build -o "$bin" ./cmd/campaignd ./cmd/campaign-worker ./cmd/sweep
go build -o "$bin" ./scripts/manifestdiff

cat > "$scratch/spec.json" <<'EOF'
{
  "vary": "rate",
  "values": ["0.5", "2.0"],
  "k": 4,
  "n": 2,
  "warmup_cycles": 200,
  "measure_cycles": 800,
  "drain_cycles": 300,
  "checkpoint_every": 150,
  "point_retries": 3
}
EOF

cleanup() {
  [ -n "${coord_pid:-}" ] && kill "$coord_pid" 2>/dev/null || true
}
trap cleanup EXIT

# Coordinator: short lease TTL so the stolen point migrates quickly.
"$bin/campaignd" -addr 127.0.0.1:0 -dir "$scratch/farm" \
  -spec "$scratch/spec.json" -lease-ttl 2s -exit-when-done \
  >"$scratch/campaign.id" 2>"$scratch/campaignd.log" &
coord_pid=$!

# Wait for the bound address to appear in the log.
url=""
for _ in $(seq 1 100); do
  url="$(sed -n 's#.*serving on \(http://[0-9.:]*\).*#\1#p' "$scratch/campaignd.log" | head -1)"
  [ -n "$url" ] && break
  kill -0 "$coord_pid" 2>/dev/null || { cat "$scratch/campaignd.log" >&2; echo "farm-smoke: campaignd died" >&2; exit 1; }
  sleep 0.1
done
[ -n "$url" ] || { echo "farm-smoke: campaignd never bound" >&2; exit 1; }
id="$(cat "$scratch/campaign.id")"
echo "farm-smoke: campaign $id on $url"

# Worker 1 chaos-dies after its first checkpoint upload (exit code 3),
# leaving its lease to expire — the forced kill.
set +e
"$bin/campaign-worker" -connect "$url" -name smoke-chaos \
  -chaos-kill-after-uploads 1 2>"$scratch/worker1.log"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
  cat "$scratch/worker1.log" >&2
  echo "farm-smoke: chaos worker exited $rc, want 3" >&2
  exit 1
fi
echo "farm-smoke: worker 1 chaos-killed mid-point"

# Worker 2 steals the orphaned point, resumes its checkpoint, and drains
# the campaign — at a different engine worker count, which must not matter.
"$bin/campaign-worker" -connect "$url" -name smoke-finisher \
  -workers 2 -exit-when-done 2>"$scratch/worker2.log"
echo "farm-smoke: worker 2 drained the campaign"

# The coordinator exits 0 only if every point completed.
wait "$coord_pid"
coord_pid=""

# Serial reference: the same sweep, one process, no farm.
"$bin/sweep" -vary rate -values 0.5,2.0 -k 4 -n 2 \
  -warmup 200 -measure 800 -drain 300 \
  -out "$scratch/serial" >"$scratch/serial.csv"

# Results must be bit-identical, and at least one farm point must have
# resumed from a migrated checkpoint (proof the kill hit the real path).
"$bin/manifestdiff" -require-resume "$scratch/farm/$id" "$scratch/serial"
grep -q 'resumed from migrated checkpoint\|resuming from migrated checkpoint' "$scratch/worker2.log" \
  || { echo "farm-smoke: worker 2 never logged a checkpoint resume" >&2; cat "$scratch/worker2.log" >&2; exit 1; }

echo "farm-smoke: PASS (results bit-identical to serial, migration exercised)"
