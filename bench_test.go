// Package wormnet's root benchmark harness: one benchmark per figure of the
// paper's evaluation section, plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark executes the corresponding experiment
// at the reduced Quick scale (a 4-ary 2-cube with short windows, so the
// whole suite completes in minutes on one core) and reports the headline
// quantities of the figure through b.ReportMetric:
//
//	accepted_peak     — plateau accepted traffic (flits/node/cycle)
//	accepted_final    — accepted traffic at the highest offered load
//	latency_low       — latency of the lowest-load point (cycles)
//	deadlock_peak_pct — worst detected-deadlock percentage
//	fairness_*_pct    — per-node injection deviation spreads (fig4)
//	rule_*_pct        — ALO condition frequencies (fig2)
//
// The full-scale (8-ary 3-cube) reproduction is driven by cmd/figures; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package wormnet

import (
	"fmt"
	"testing"

	"wormnet/internal/baseline"
	"wormnet/internal/core"
	"wormnet/internal/experiments"
	"wormnet/internal/metrics"
	"wormnet/internal/sim"
)

// benchScale is the Quick scale with a fixed seed so benchmark metrics are
// stable across runs.
func benchScale() experiments.Scale { return experiments.Quick() }

// reportSeries publishes a series' headline metrics.
func reportSeries(b *testing.B, ser experiments.Series, prefix string) {
	b.Helper()
	b.ReportMetric(experiments.PlateauThroughput(ser), prefix+"accepted_peak")
	b.ReportMetric(experiments.FinalAccepted(ser), prefix+"accepted_final")
	b.ReportMetric(experiments.PeakDeadlockPct(ser), prefix+"deadlock_peak_pct")
	if len(ser.Points) > 0 {
		b.ReportMetric(ser.Points[0].Result.AvgLatency, prefix+"latency_low")
	}
}

// runFigure executes an experiment once per benchmark iteration and reports
// the last iteration's metrics for the named series.
func runFigure(b *testing.B, ex experiments.Experiment, series ...string) experiments.Report {
	b.Helper()
	b.ReportAllocs()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		rep = ex.Run(benchScale(), nil)
	}
	want := map[string]bool{}
	for _, s := range series {
		want[s] = true
	}
	for _, ser := range rep.Series {
		if len(want) == 0 || want[ser.Name] {
			prefix := ""
			if len(rep.Series) > 1 {
				prefix = ser.Name + "_"
			}
			reportSeries(b, ser, prefix)
		}
	}
	return rep
}

// BenchmarkFig1_Degradation regenerates Figure 1: the performance
// degradation of the unprotected network (latency, accepted traffic and
// detected deadlocks versus offered traffic).
func BenchmarkFig1_Degradation(b *testing.B) {
	runFigure(b, experiments.Fig1())
}

// BenchmarkFig2_Conditions regenerates Figure 2: how often ALO's rules (a),
// (b) and (a)∨(b) hold at injection time as traffic grows.
func BenchmarkFig2_Conditions(b *testing.B) {
	b.ReportAllocs()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig2().Run(benchScale(), nil)
	}
	pts := rep.Series[0].Points
	lo, hi := pts[0], pts[len(pts)-1]
	b.ReportMetric(lo.Probe.PercentEither(), "rule_aorb_low_pct")
	b.ReportMetric(hi.Probe.PercentEither(), "rule_aorb_high_pct")
	b.ReportMetric(hi.Probe.PercentA(), "rule_a_high_pct")
	b.ReportMetric(hi.Probe.PercentB(), "rule_b_high_pct")
}

// BenchmarkFig4_Fairness regenerates Figure 4: the per-node injection
// deviation spread of LF, DRIL and ALO beyond saturation.
func BenchmarkFig4_Fairness(b *testing.B) {
	b.ReportAllocs()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		rep = experiments.Fig4().Run(benchScale(), nil)
	}
	for _, ser := range rep.Series {
		p := ser.Points[0]
		b.ReportMetric(p.Result.WorstNodeDev, ser.Name+"_fairness_worst_pct")
		b.ReportMetric(p.Result.BestNodeDev, ser.Name+"_fairness_best_pct")
	}
}

// BenchmarkFig5_Uniform16 regenerates Figure 5 (uniform, 16-flit; latency
// and its standard deviation versus traffic, all four mechanisms).
func BenchmarkFig5_Uniform16(b *testing.B) {
	rep := runFigure(b, experiments.Fig5(), "none", "alo")
	// Figure 5's distinguishing series is the latency std-dev: report the
	// highest-load std-dev for ALO.
	for _, ser := range rep.Series {
		if ser.Name == "alo" && len(ser.Points) > 0 {
			b.ReportMetric(ser.Points[len(ser.Points)-1].Result.StdLatency, "alo_stddev_high")
		}
	}
}

// BenchmarkFig6_Uniform64 regenerates Figure 6 (uniform, 64-flit).
func BenchmarkFig6_Uniform64(b *testing.B) {
	runFigure(b, experiments.Fig6(), "none", "alo")
}

// BenchmarkFig7_Butterfly regenerates Figure 7 (butterfly, 16-flit).
func BenchmarkFig7_Butterfly(b *testing.B) {
	runFigure(b, experiments.Fig7(), "none", "alo")
}

// BenchmarkFig8_Complement regenerates Figure 8 (complement, 16-flit).
func BenchmarkFig8_Complement(b *testing.B) {
	runFigure(b, experiments.Fig8(), "none", "alo")
}

// BenchmarkFig9_BitReversal regenerates Figure 9 (bit-reversal, 16-flit).
func BenchmarkFig9_BitReversal(b *testing.B) {
	runFigure(b, experiments.Fig9(), "none", "alo")
}

// BenchmarkFig10_PerfectShuffle regenerates Figure 10 (perfect-shuffle,
// 16-flit).
func BenchmarkFig10_PerfectShuffle(b *testing.B) {
	runFigure(b, experiments.Fig10(), "none", "alo")
}

// ablationConfig is the shared beyond-saturation operating point of the
// ablation benches.
func ablationConfig(pattern string) sim.Config {
	s := benchScale()
	cfg := sim.DefaultConfig()
	cfg.K, cfg.N = s.K, s.N
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = s.Warmup, s.Measure, s.Drain
	cfg.Pattern, cfg.MsgLen = pattern, 16
	cfg.Rate = 2.0
	cfg.Seed = s.Seed
	return cfg
}

func runOnce(b *testing.B, cfg sim.Config) (accepted, latency, deadlockPct float64) {
	b.Helper()
	e, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := e.Run()
	return r.Accepted, r.AvgLatency, r.DeadlockPct
}

// BenchmarkAblationRules compares ALO against its single-rule ablations —
// the paper's Figure-2 argument that the OR of both rules is the right
// congestion indicator.
func BenchmarkAblationRules(b *testing.B) {
	b.ReportAllocs()
	variants := []struct {
		name string
		f    core.Factory
	}{
		{"alo", core.NewALO()},
		{"rule_a_only", core.NewRuleAOnly()},
		{"rule_b_only", core.NewRuleBOnly()},
	}
	for i := 0; i < b.N; i++ {
		for _, v := range variants {
			acc, _, _ := runOnce(b, ablationConfig("uniform").WithLimiter(v.name, v.f))
			if i == b.N-1 {
				b.ReportMetric(acc, v.name+"_accepted")
			}
		}
	}
}

// BenchmarkAblationAllChannels compares useful-channels-only ALO against
// the all-channels variant under a pattern that only uses a subset of the
// dimensions — ALO's adaptivity claim.
func BenchmarkAblationAllChannels(b *testing.B) {
	b.ReportAllocs()
	variants := []struct {
		name string
		f    core.Factory
	}{
		{"useful_only", core.NewALO()},
		{"all_channels", core.NewAllChannels()},
	}
	for i := 0; i < b.N; i++ {
		for _, v := range variants {
			acc, lat, _ := runOnce(b, ablationConfig("butterfly").WithLimiter(v.name, v.f))
			if i == b.N-1 {
				b.ReportMetric(acc, v.name+"_accepted")
				b.ReportMetric(lat, v.name+"_latency")
			}
		}
	}
}

// BenchmarkAblationVCCount sweeps the number of virtual channels per
// physical channel — the hardware alternative to injection limitation the
// paper's introduction discusses.
func BenchmarkAblationVCCount(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, vcs := range []int{1, 2, 3} {
			cfg := ablationConfig("uniform").WithLimiter("none", baseline.NewNone())
			cfg.VCs = vcs
			acc, _, dl := runOnce(b, cfg)
			if i == b.N-1 {
				b.ReportMetric(acc, fmt.Sprintf("vcs%d_accepted", vcs))
				b.ReportMetric(dl, fmt.Sprintf("vcs%d_deadlock_pct", vcs))
			}
		}
	}
}

// BenchmarkAblationDetectionThreshold sweeps the FC3D detection threshold:
// too low and congested messages are killed spuriously; too high and real
// deadlocks stall the network for longer.
func BenchmarkAblationDetectionThreshold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, th := range []int32{8, 32, 128} {
			cfg := ablationConfig("complement").WithLimiter("none", baseline.NewNone())
			cfg.DetectionThreshold = th
			acc, _, dl := runOnce(b, cfg)
			if i == b.N-1 {
				name := map[int32]string{8: "th8", 32: "th32", 128: "th128"}[th]
				b.ReportMetric(acc, name+"_accepted")
				b.ReportMetric(dl, name+"_deadlock_pct")
			}
		}
	}
}

// BenchmarkEngineCycles measures raw simulator speed: steady-state cycles
// per second on a heavily loaded full-size (8-ary 3-cube) network, the
// figure-of-merit for reproduction wall-clock cost. The engine is built and
// warmed outside the timer so the loop measures exactly the per-cycle hot
// path (one Step per iteration); allocs/op is therefore the steady-state
// allocation cost of a cycle. The rate sits just below saturation: past it
// the in-flight population grows without bound, so the working set (and the
// message pool) never reaches a steady state and allocs/op is meaningless.
func BenchmarkEngineCycles(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Rate = 0.65
	cfg.Limiter, cfg.LimiterName = baseline.NewNone(), "none"
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 0, 1<<40, 0
	e, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		e.Step() // reach saturated steady state before timing
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkEngineCyclesMetrics measures the same steady-state hot path with
// the full metrics instrumentation attached (registry, deny classification,
// periodic gauge sampling at the default cadence). The delta against
// BenchmarkEngineCycles is the observability overhead budget DESIGN.md
// commits to; allocs/op must stay 0 — all metric storage is allocated at
// registration, so the instrumented steady state allocates nothing either.
func BenchmarkEngineCyclesMetrics(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Rate = 0.65
	cfg.Limiter, cfg.LimiterName = baseline.NewNone(), "none"
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 0, 1<<40, 0
	e, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e.EnableMetrics(metrics.NewRegistry(), sim.DefaultMetricsSampleEvery)
	for i := 0; i < 2000; i++ {
		e.Step() // reach saturated steady state before timing
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkEngineCyclesSpans measures the hot path with metrics AND
// message-lifecycle span tracking attached (default sampling, no sink). The
// delta against BenchmarkEngineCycles is the full forensics overhead; the
// CI obs-smoke job gates it at 5%. allocs/op must stay 0: span records are
// free-listed and the live map's size is bounded by the in-flight sampled
// population, so the steady state allocates nothing.
func BenchmarkEngineCyclesSpans(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Rate = 0.65
	cfg.Limiter, cfg.LimiterName = baseline.NewNone(), "none"
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 0, 1<<40, 0
	e, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	reg := metrics.NewRegistry()
	e.EnableMetrics(reg, sim.DefaultMetricsSampleEvery)
	e.EnableSpans(reg, sim.DefaultSpanSampleEvery, nil)
	for i := 0; i < 2000; i++ {
		e.Step() // reach saturated steady state before timing
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkEngineCyclesParallel measures the sharded engine (Config.Workers,
// see internal/sim/parallel.go) at the same near-saturation operating point,
// one sub-benchmark per worker count. Every worker count produces
// bit-identical simulation results; the sub-benchmarks differ only in
// wall-clock scaling, so cycles/s relative to workers=1 is the speedup.
func BenchmarkEngineCyclesParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := sim.DefaultConfig()
			cfg.Rate = 0.65
			cfg.Limiter, cfg.LimiterName = baseline.NewNone(), "none"
			cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 0, 1<<40, 0
			cfg.Workers = workers
			e, err := sim.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			for i := 0; i < 2000; i++ {
				e.Step() // reach saturated steady state before timing
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}

// BenchmarkEngineRun measures a short whole run — construction, warm-up and
// all — so regressions in engine setup cost stay visible alongside the
// steady-state figure above.
func BenchmarkEngineRun(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Rate = 0.65
	cfg.Limiter, cfg.LimiterName = baseline.NewNone(), "none"
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 0, 500, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		e.Run()
	}
	b.ReportMetric(float64(cfg.TotalCycles()*int64(b.N))/b.Elapsed().Seconds(), "cycles/s")
}
