// Command campaignd is the sweep-farm coordinator: it accepts experiment
// campaigns as JSON specs over HTTP, expands them into sweep points,
// journals every state transition to <dir>/<id>/manifest.json (atomic
// writes, exactly-once result commit), and dispatches points to
// campaign-worker processes over a lease-based pull protocol with
// work-stealing and checkpoint migration — a worker that dies mid-point is
// resumed bit-identically by the next worker from its last uploaded
// checkpoint.
//
// The HTTP surface (see internal/campaign): POST /campaigns to submit,
// GET /campaigns/{id} for live progress, /metrics for the farm's Prometheus
// counters, /healthz (with build version) for probes, /dash for the live
// HTML fleet dashboard (/farm and the /…/events SSE streams feed it).
// Workers of a different build version are rejected unless
// -allow-version-skew.
//
// Examples:
//
//	campaignd -addr :8080 -dir farm/
//	campaignd -addr 127.0.0.1:0 -dir farm/ -spec spec.json -exit-when-done
//	curl -s -XPOST --data @spec.json localhost:8080/campaigns
//
// With -spec the spec is submitted at startup and the campaign id is
// printed on stdout (scripts capture it). With -exit-when-done the daemon
// exits once every campaign is terminal: 0 if every point completed, 1
// otherwise. SIGINT/SIGTERM drain gracefully (stop granting leases, let
// in-flight requests finish) and exit 130.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wormnet/internal/campaign"
	"wormnet/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "campaigns", "journal root: each campaign journals manifest, spec and migrated checkpoints under <dir>/<id>/")
	leaseTTL := flag.Duration("lease-ttl", campaign.DefaultLeaseTTL, "lease time-to-live before a silent worker's point is stolen")
	specPath := flag.String("spec", "", "submit this campaign spec (JSON file) at startup and print its id on stdout")
	exitWhenDone := flag.Bool("exit-when-done", false, "exit once every campaign is terminal (0 = all points completed, 1 otherwise)")
	allowSkew := flag.Bool("allow-version-skew", false, "admit workers of any build version (results are then not guaranteed bit-identical)")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	coord, err := campaign.NewCoordinator(campaign.Options{
		Dir:              *dir,
		LeaseTTL:         *leaseTTL,
		AllowVersionSkew: *allowSkew,
	})
	if err != nil {
		return fail(err)
	}
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			return fail(err)
		}
		spec, err := campaign.DecodeSpec(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		id, created, err := coord.Submit(spec)
		if err != nil {
			return fail(err)
		}
		verb := "resumed"
		if created {
			verb = "created"
		}
		fmt.Fprintf(os.Stderr, "campaignd: %s campaign %s (%d points)\n", verb, id, len(spec.Values))
		fmt.Println(id)
	}

	srv := campaign.NewServer(coord)
	if err := srv.Serve(*addr); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "campaignd: serving on http://%s (build %s, lease TTL %v, journal %s)\n",
		srv.Addr(), obs.BuildVersion(), coord.LeaseTTL(), *dir)
	fmt.Fprintf(os.Stderr, "campaignd: live dashboard at http://%s/dash (fleet JSON at /farm)\n", srv.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case sig := <-sigCh:
			fmt.Fprintf(os.Stderr, "campaignd: %v — draining\n", sig)
			srv.Shutdown(5 * time.Second) //nolint:errcheck // exiting either way
			return 130
		case <-tick.C:
			if *exitWhenDone && coord.Done() {
				srv.Shutdown(2 * time.Second) //nolint:errcheck // exiting either way
				for _, sum := range coord.List() {
					man, err := coord.Manifest(sum.ID)
					if err != nil || !man.AllCompleted() {
						fmt.Fprintf(os.Stderr, "campaignd: campaign %s ended with non-completed points\n", sum.ID)
						return 1
					}
				}
				fmt.Fprintln(os.Stderr, "campaignd: all campaigns completed")
				return 0
			}
		}
	}
}
