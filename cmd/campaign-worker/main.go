// Command campaign-worker executes sweep points for a campaignd
// coordinator: it pulls point leases over HTTP, runs each point under
// internal/supervisor (reusing the exact engine + checkpoint machinery of a
// local sweep), streams heartbeats and live metric snapshots while it runs,
// uploads periodic WNCP checkpoints so the point stays migratable, and
// commits the result exactly once. If the coordinator holds a migrated
// checkpoint from a dead worker, this worker resumes it bit-identically —
// at any -workers setting, since engine results are independent of the
// worker-goroutine count.
//
// Examples:
//
//	campaign-worker -connect http://127.0.0.1:8080
//	campaign-worker -connect http://farm:8080 -name rack7 -workers 4
//	campaign-worker -connect http://farm:8080 -exit-when-done
//
// With -monitor the worker serves its own /healthz (build version plus the
// config digest of the running point) so the fleet is probeable. The chaos
// flag -chaos-kill-after-uploads simulates a hard crash after N checkpoint
// uploads — the CI farm smoke test uses it to force a migration.
//
// Exit codes: 0 done (with -exit-when-done); 130 interrupted by signal
// (the in-flight point's final checkpoint is flushed to the coordinator
// first); 3 chaos-killed; 1 other fatal errors; 2 usage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wormnet/internal/campaign"
	"wormnet/internal/metrics"
	"wormnet/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	url := flag.String("connect", "", "coordinator base URL (required), e.g. http://127.0.0.1:8080")
	name := flag.String("name", "", "worker name shown in leases and manifests (default host-pid)")
	campaignID := flag.String("campaign", "", "work only this campaign id (default: any)")
	workers := flag.Int("workers", 1, "engine worker goroutines per point (results are identical for any count; a spec's engine_workers > 0 overrides this)")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle wait between acquire attempts when no work is assignable")
	exitWhenDone := flag.Bool("exit-when-done", false, "exit once the coordinator reports every campaign terminal")
	monitorAddr := flag.String("monitor", "", "serve the worker's own /healthz and /debug/pprof on this address")
	killAfter := flag.Int("chaos-kill-after-uploads", 0, "chaos hook: simulate a hard crash after this many checkpoint uploads (0 = off)")
	flag.Parse()

	if *url == "" {
		fmt.Fprintln(os.Stderr, "campaign-worker: -connect is required")
		return 2
	}

	var monitor *obs.Monitor
	if *monitorAddr != "" {
		monitor = obs.NewMonitor(metrics.NewRegistry(), obs.NewManifest("campaign-worker", 0, nil), nil)
		monitor.SetBuildInfo(obs.BuildVersion())
		if err := monitor.Serve(*monitorAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer monitor.Shutdown(time.Second) //nolint:errcheck // exiting
		fmt.Fprintf(os.Stderr, "campaign-worker: monitor on http://%s\n", monitor.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := campaign.RunWorker(ctx, campaign.WorkerOptions{
		URL:              *url,
		Name:             *name,
		Campaign:         *campaignID,
		Workers:          *workers,
		Poll:             *poll,
		ExitWhenDone:     *exitWhenDone,
		KillAfterUploads: *killAfter,
		Signals:          []os.Signal{os.Interrupt, syscall.SIGTERM},
		Monitor:          monitor,
	})
	switch {
	case err == nil:
		return 0
	case errors.Is(err, campaign.ErrChaosKilled):
		fmt.Fprintln(os.Stderr, err)
		return 3
	case errors.Is(err, campaign.ErrWorkerInterrupted), errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "campaign-worker: interrupted")
		return 130
	default:
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
}
