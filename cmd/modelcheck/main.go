// Command modelcheck explores the bounded state space of a tiny wormhole
// network exhaustively and validates the FC3D deadlock machinery against a
// ground-truth channel-wait-graph oracle at every reachable state.
//
// The default model is a 2-ary 2-cube with single-flit buffers, TFAR
// routing and a 4-message ring catalog — small enough to exhaust within a
// CI budget, adversarial enough to reach real cyclic deadlocks:
//
//	modelcheck
//
// Sweep the detection threshold to quantify the false-positive rate (the
// data behind the FP-vs-threshold table in EXPERIMENTS.md):
//
//	modelcheck -sweep 4,8,16,32,64
//
// Crash-resume long explorations, dump replayable counterexamples, and
// replay a committed counterexample to check whether the detector miss it
// documents is fixed:
//
//	modelcheck -journal explore.wncp -cxdir ./cx
//	modelcheck -resume explore.wncp
//	modelcheck -replay cx/cx-001-false-negative.wncp
//
// -synthetic-miss suppresses the detector signal during probes so every
// ground-truth deadlock is reported as a false negative: the self-test
// proving the checker actually fails when FC3D and the oracle disagree.
//
// Exit codes: 0 ok; 1 checker failure (false negative, unsound oracle,
// invariant violation) or fewer than -min-states states explored; 2 usage
// or configuration error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wormnet/internal/deadlock"
	"wormnet/internal/modelcheck"
)

func main() {
	var (
		k         = flag.Int("k", 2, "radix of the k-ary n-cube")
		n         = flag.Int("n", 2, "dimension of the k-ary n-cube")
		vcs       = flag.Int("vcs", 1, "virtual channels per physical channel")
		bufDepth  = flag.Int("buf", 1, "flit buffer depth per virtual channel")
		inj       = flag.Int("inj", 1, "injection channels per node")
		ej        = flag.Int("ej", 1, "ejection channels per node")
		routing   = flag.String("routing", "tfar", "routing function (tfar needs recovery: FC3D on trial)")
		threshold = flag.Int("threshold", int(deadlock.DefaultThreshold), "FC3D detection threshold (cycles)")
		recovery  = flag.Int64("recovery-delay", 8, "recovery pipeline delay (cycles)")
		lenient   = flag.Bool("lenient", false, "lenient detection (any vital sign resets the counter)")
		catalog   = flag.String("messages", "0>3x6,3>0x6,1>2x6,2>1x6", "message catalog: comma-separated src>dstxlen entries (distinct sources)")
		cycles    = flag.Int64("cycles", 96, "schedule horizon in cycles")
		states    = flag.Int("states", 150000, "visited-state budget")
		probe     = flag.Int64("probe", 0, "false-negative probe budget in cycles (0 = 2*threshold+4*recovery+64)")
		minStates = flag.Int("min-states", 0, "fail unless at least this many states were explored")
		minDL     = flag.Int("min-deadlocks", 0, "fail unless at least this many ground-truth deadlock states were reached")
		exhausted = flag.Bool("exhausted", false, "fail unless the state space was exhausted within the horizon")

		sweep     = flag.String("sweep", "", "comma-separated thresholds: run one exploration per value, print the FP table")
		journal   = flag.String("journal", "", "crash-resume journal path (WNCP framing)")
		every     = flag.Int("journal-every", 2000, "journal flush interval in newly visited states")
		resume    = flag.String("resume", "", "resume exploration from a journal written by a previous run")
		cxdir     = flag.String("cxdir", "", "directory receiving replayable counterexample files")
		replay    = flag.String("replay", "", "replay one counterexample file and exit (0 = fixed, 1 = still fails)")
		synthetic = flag.Bool("synthetic-miss", false, "suppress detector signals in probes: self-test of the failure path")
		jsonOut   = flag.Bool("json", false, "print the report as JSON instead of text")
		quiet     = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "modelcheck: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	opt := modelcheck.Options{
		Journal:           *journal,
		JournalEvery:      *every,
		CounterexampleDir: *cxdir,
		SyntheticMiss:     *synthetic,
	}
	if !*quiet {
		opt.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "modelcheck: "+format+"\n", args...)
		}
	}

	if *replay != "" {
		cx, err := modelcheck.ReadCounterexample(*replay)
		if err != nil {
			fatal(2, err)
		}
		fmt.Print(cx.String())
		if err := cx.Replay(); err != nil {
			fmt.Printf("REPLAY: still fails: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("REPLAY: fixed — the recorded failure no longer reproduces")
		return
	}

	messages, err := parseCatalog(*catalog)
	if err != nil {
		fatal(2, err)
	}
	spec := modelcheck.Spec{
		K: *k, N: *n,
		VCs: *vcs, BufDepth: *bufDepth,
		InjChannels: *inj, EjChannels: *ej,
		Routing:       *routing,
		Threshold:     int32(*threshold),
		RecoveryDelay: *recovery,
		Lenient:       *lenient,
		Messages:      messages,
		MaxCycles:     *cycles,
		MaxStates:     *states,
		ProbeBudget:   *probe,
	}

	if *sweep != "" {
		thresholds, err := parseThresholds(*sweep)
		if err != nil {
			fatal(2, err)
		}
		results, err := modelcheck.RunSweep(spec, thresholds, opt)
		if err != nil {
			fatal(2, err)
		}
		fmt.Print(modelcheck.FormatSweep(results))
		for _, sr := range results {
			if sr.Report.Failed() {
				fmt.Printf("RESULT: FAILED at threshold %d\n", sr.Threshold)
				os.Exit(1)
			}
		}
		return
	}

	var x *modelcheck.Explorer
	if *resume != "" {
		x, err = modelcheck.Resume(*resume, opt)
	} else {
		x, err = modelcheck.New(spec, opt)
	}
	if err != nil {
		fatal(2, err)
	}
	rep, err := x.Run()
	if err != nil {
		fatal(2, err)
	}
	if *jsonOut {
		out, err := rep.JSON()
		if err != nil {
			fatal(2, err)
		}
		fmt.Printf("%s\n", out)
	} else {
		fmt.Print(rep.Format())
	}
	if rep.Failed() {
		os.Exit(1)
	}
	if rep.States < *minStates {
		fmt.Printf("RESULT: FAILED — %d states explored, -min-states requires %d\n", rep.States, *minStates)
		os.Exit(1)
	}
	if rep.DeadlockStates < *minDL {
		fmt.Printf("RESULT: FAILED — %d deadlock states reached, -min-deadlocks requires %d\n", rep.DeadlockStates, *minDL)
		os.Exit(1)
	}
	if *exhausted && !rep.Exhausted {
		fmt.Printf("RESULT: FAILED — state space not exhausted within the horizon (-exhausted)\n")
		os.Exit(1)
	}
}

// parseCatalog parses "src>dstxlen" entries: "0>3x6,3>0x6".
func parseCatalog(s string) ([]modelcheck.MsgSpec, error) {
	var out []modelcheck.MsgSpec
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		src, rest, ok := strings.Cut(ent, ">")
		if !ok {
			return nil, fmt.Errorf("modelcheck: catalog entry %q: want src>dstxlen", ent)
		}
		dst, length, ok := strings.Cut(rest, "x")
		if !ok {
			return nil, fmt.Errorf("modelcheck: catalog entry %q: want src>dstxlen", ent)
		}
		sv, err := strconv.ParseInt(strings.TrimSpace(src), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("modelcheck: catalog entry %q: %w", ent, err)
		}
		dv, err := strconv.ParseInt(strings.TrimSpace(dst), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("modelcheck: catalog entry %q: %w", ent, err)
		}
		lv, err := strconv.Atoi(strings.TrimSpace(length))
		if err != nil {
			return nil, fmt.Errorf("modelcheck: catalog entry %q: %w", ent, err)
		}
		out = append(out, modelcheck.MsgSpec{Src: int32(sv), Dst: int32(dv), Length: lv})
	}
	return out, nil
}

func parseThresholds(s string) ([]int32, error) {
	var out []int32
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseInt(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("modelcheck: threshold %q: %w", f, err)
		}
		out = append(out, int32(v))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("modelcheck: empty threshold sweep")
	}
	return out, nil
}

func fatal(code int, err error) {
	fmt.Fprintf(os.Stderr, "modelcheck: %v\n", err)
	os.Exit(code)
}
