package main

// Per-point execution: run one expanded sweep point (see
// internal/campaign's Spec.Points) under the supervisor — budgets, stall
// detection, signals — checkpoint it periodically, and retry crashed or
// stalled points with capped backoff.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"wormnet/internal/campaign"
	"wormnet/internal/checkpoint"
	"wormnet/internal/fault"
	"wormnet/internal/sim"
	"wormnet/internal/supervisor"
)

// sweepOpts is the shared robustness configuration of a sweep run.
type sweepOpts struct {
	dir             string // campaign directory ("" = no durability)
	resume          bool
	workers         int // engine goroutines per point
	checkpointEvery int64
	pointWall       time.Duration
	stallWindow     int64
	retry           fault.RetryPolicy // Delay() read in milliseconds
	signals         []os.Signal
}

// supervisorOptions derives one point's watchdog configuration.
func (o *sweepOpts) supervisorOptions(ckptPath string) supervisor.Options {
	opts := supervisor.Options{
		WallBudget:  o.pointWall,
		StallWindow: o.stallWindow,
		Signals:     o.signals,
	}
	if ckptPath != "" {
		opts.CheckpointEvery = o.checkpointEvery
		opts.Checkpoint = func(e *sim.Engine) error {
			snap, err := e.Snapshot()
			if err != nil {
				return err
			}
			return checkpoint.WriteFile(ckptPath, snap)
		}
	}
	return opts
}

// buildPointEngine constructs the point's engine: from its mid-run
// checkpoint when resuming and one exists, from scratch otherwise. A
// checkpoint that fails to restore (corrupt, or the config changed) is
// reported and discarded — the point restarts from cycle zero rather than
// wedging the campaign.
func buildPointEngine(pt campaign.Point, workers int, ckptPath string, resume bool) (*sim.Engine, error) {
	cfg := pt.Config
	cfg.Workers = workers
	if resume && ckptPath != "" {
		if _, err := os.Stat(ckptPath); err == nil {
			snap, err := checkpoint.ReadFile(ckptPath)
			if err == nil {
				e, rerr := sim.RestoreEngine(cfg, snap)
				if rerr == nil {
					fmt.Fprintf(os.Stderr, "sweep: point %d (%s): resuming from %s at cycle %d\n",
						pt.Index, pt.Raw, filepath.Base(ckptPath), e.Now())
					return e, nil
				}
				err = rerr
			}
			fmt.Fprintf(os.Stderr, "sweep: point %d (%s): discarding unusable checkpoint: %v\n",
				pt.Index, pt.Raw, err)
			os.Remove(ckptPath) //nolint:errcheck // best-effort; a fresh run overwrites it
		}
	}
	return sim.New(cfg)
}

// executePoint runs one point to a terminal status, retrying crashed and
// stalled attempts with the policy's capped exponential backoff (read in
// milliseconds). It updates rec in place; the caller journals it.
func executePoint(pt campaign.Point, rec *campaign.PointRecord, o *sweepOpts) supervisor.Report {
	ckptPath := ""
	if o.dir != "" {
		rec.Checkpoint = fmt.Sprintf("point-%03d.wncp", pt.Index)
		ckptPath = filepath.Join(o.dir, rec.Checkpoint)
	}
	var rep supervisor.Report
	for attempt := 0; ; attempt++ {
		rec.Attempts++
		e, err := buildPointEngine(pt, o.workers, ckptPath, o.resume || attempt > 0)
		if err != nil {
			rep = supervisor.Report{Outcome: supervisor.Crashed, Err: err}
		} else {
			rep = supervisor.Run(e, o.supervisorOptions(ckptPath))
			e.Close()
		}
		if rep.CheckpointErr != nil {
			fmt.Fprintf(os.Stderr, "sweep: point %d (%s): final checkpoint failed: %v\n",
				pt.Index, pt.Raw, rep.CheckpointErr)
		}

		switch rep.Outcome {
		case supervisor.Completed:
			rec.Status = campaign.StatusCompleted
			rec.Outcome = rep.Outcome.String()
			rec.Error = ""
			r := rep.Result
			rec.Result = &r
			if ckptPath != "" {
				os.Remove(ckptPath) //nolint:errcheck // the result supersedes the checkpoint
				rec.Checkpoint = ""
			}
			return rep
		case supervisor.Interrupted:
			rec.Status = campaign.StatusInterrupted
			rec.Outcome = rep.Outcome.String()
			return rep
		}

		// Stalled, DeadlineExceeded or Crashed: retry until the policy is
		// exhausted. A flushed checkpoint means the retry resumes from the
		// last good cycle instead of repeating the whole point.
		rec.Outcome = rep.Outcome.String()
		if rep.Err != nil {
			rec.Error = rep.Err.Error()
		}
		if o.retry.Exhausted(attempt + 1) {
			if rep.Outcome == supervisor.Stalled {
				rec.Status = campaign.StatusStalled
			} else {
				rec.Status = campaign.StatusFailed
			}
			return rep
		}
		delay := time.Duration(o.retry.Delay(attempt)) * time.Millisecond
		fmt.Fprintf(os.Stderr, "sweep: point %d (%s): attempt %d ended %s (%v); retrying in %v\n",
			pt.Index, pt.Raw, rec.Attempts, rep.Outcome, errText(rep.Err), delay)
		time.Sleep(delay)
	}
}

// errText renders an error for the retry log without nil noise.
func errText(err error) error {
	if err == nil {
		return errors.New("no error detail")
	}
	return err
}
