package main

// Farm modes: -serve runs this sweep as a one-shot campaign coordinator
// (workers pull points, results land in -out/<id>/manifest.json), -connect
// runs it as a worker against an existing coordinator. Both end by printing
// the usual CSV rows from the campaign manifest, so a distributed sweep is a
// drop-in replacement for a local one.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wormnet/internal/campaign"
)

// serveMode runs a coordinator for exactly this spec, waits for a worker
// fleet to finish it, then prints the results.
func serveMode(addr, dir string, spec *campaign.Spec, ttl time.Duration) int {
	coord, err := campaign.NewCoordinator(campaign.Options{Dir: dir, LeaseTTL: ttl})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	id, created, err := coord.Submit(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	srv := campaign.NewServer(coord)
	if err := srv.Serve(addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	verb := "resumed"
	if created {
		verb = "created"
	}
	fmt.Fprintf(os.Stderr, "sweep: serving campaign %s (%s) on http://%s — connect workers with:\n", id, verb, srv.Addr())
	fmt.Fprintf(os.Stderr, "sweep:   campaign-worker -connect http://%s\n", srv.Addr())
	fmt.Fprintf(os.Stderr, "sweep: live dashboard at http://%s/dash\n", srv.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	interrupted := false
wait:
	for {
		select {
		case <-sigCh:
			interrupted = true
			break wait
		case <-tick.C:
			if coord.Done() {
				break wait
			}
		}
	}
	srv.Shutdown(2 * time.Second) //nolint:errcheck // exiting either way

	man, err := coord.Manifest(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	printHeader(spec.Vary)
	for _, rec := range man.Points {
		if rec.Status == campaign.StatusCompleted && rec.Result != nil {
			printRow(rec.Value, *rec.Result)
		}
	}
	printStatusTable(man)
	if interrupted {
		fmt.Fprintln(os.Stderr, "sweep: interrupted; rerun -serve with the same -out to resume")
		return 130
	}
	if !man.AllCompleted() {
		return 1
	}
	return 0
}

// connectMode submits the spec to a coordinator (idempotent) and works the
// campaign until it is done, then prints the coordinator's results.
func connectMode(url string, spec *campaign.Spec, workers int) int {
	cl := campaign.NewClient(url)
	id, created, err := cl.Submit(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	verb := "joined"
	if created {
		verb = "submitted"
	}
	fmt.Fprintf(os.Stderr, "sweep: %s campaign %s at %s\n", verb, id, url)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = campaign.RunWorker(ctx, campaign.WorkerOptions{
		URL:          url,
		Campaign:     id,
		Workers:      workers,
		ExitWhenDone: true,
		Signals:      []os.Signal{os.Interrupt, syscall.SIGTERM},
	})
	if err != nil || ctx.Err() != nil {
		if errors.Is(err, campaign.ErrWorkerInterrupted) || ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "sweep: interrupted; reconnect to continue")
			return 130
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	view, err := cl.Status(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	printHeader(spec.Vary)
	all := true
	for _, rec := range view.Points {
		if rec.Status == campaign.StatusCompleted && rec.Result != nil {
			printRow(rec.Value, *rec.Result)
		} else {
			all = false
		}
	}
	man := &campaign.Manifest{Vary: spec.Vary, Points: view.Points}
	printStatusTable(man)
	if !all {
		return 1
	}
	return 0
}
