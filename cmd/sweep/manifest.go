package main

// The durable campaign journal. A sweep with -out writes manifest.json after
// every point-status transition, atomically (temp file + rename), so a
// crashed or killed sweep can be resumed with -resume: completed points are
// skipped, and a point that left a mid-run checkpoint restarts from it
// instead of from cycle zero.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"wormnet/internal/stats"
)

// pointStatus is the lifecycle of one sweep point in the journal.
type pointStatus string

// Point statuses. running in a *loaded* manifest means the process died
// mid-point; resume treats it like pending (restoring its checkpoint if one
// was flushed).
const (
	statusPending     pointStatus = "pending"
	statusRunning     pointStatus = "running"
	statusCompleted   pointStatus = "completed"
	statusFailed      pointStatus = "failed"
	statusStalled     pointStatus = "stalled"
	statusInterrupted pointStatus = "interrupted"
)

// pointRecord is one sweep point's journal entry.
type pointRecord struct {
	Index    int         `json:"index"`
	Value    string      `json:"value"`
	Status   pointStatus `json:"status"`
	Attempts int         `json:"attempts,omitempty"`
	Outcome  string      `json:"outcome,omitempty"`
	Error    string      `json:"error,omitempty"`
	// Checkpoint is the point's snapshot file (relative to the campaign
	// directory); present while a resumable mid-run state exists.
	Checkpoint string        `json:"checkpoint,omitempty"`
	Result     *stats.Result `json:"result,omitempty"`
}

// campaignManifest is the journal's root document.
type campaignManifest struct {
	Tool    string         `json:"tool"`
	Vary    string         `json:"vary"`
	Seed    uint64         `json:"seed"`
	Limiter string         `json:"limiter"`
	Config  map[string]any `json:"config"`
	Points  []pointRecord  `json:"points"`
}

// manifestName is the journal file inside the campaign directory.
const manifestName = "manifest.json"

// newManifest seeds a journal with every point pending.
func newManifest(vary string, seed uint64, limiter string, config map[string]any, values []string) *campaignManifest {
	m := &campaignManifest{Tool: "sweep", Vary: vary, Seed: seed, Limiter: limiter, Config: config}
	for i, v := range values {
		m.Points = append(m.Points, pointRecord{Index: i, Value: v, Status: statusPending})
	}
	return m
}

// save writes the journal atomically: a torn write can never destroy the
// previous good journal.
func (m *campaignManifest) save(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: marshal manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, manifestName+".tmp-*")
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // best-effort; gone after rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: write manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: sync manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: close manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	return nil
}

// loadManifest reads the journal from a campaign directory.
func loadManifest(dir string) (*campaignManifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	var m campaignManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("sweep: parse %s: %w", manifestName, err)
	}
	return &m, nil
}

// compatible verifies a loaded journal describes the same campaign as the
// current invocation: same swept parameter, same seed, same limiter, same
// point values in the same order. (Per-point engine configs are additionally
// guarded by the checkpoint layer's config digest at restore time.)
func (m *campaignManifest) compatible(vary string, seed uint64, limiter string, values []string) error {
	switch {
	case m.Vary != vary:
		return fmt.Errorf("sweep: resuming -vary %s campaign with -vary %s", m.Vary, vary)
	case m.Seed != seed:
		return fmt.Errorf("sweep: resuming seed %d campaign with seed %d", m.Seed, seed)
	case m.Limiter != limiter:
		return fmt.Errorf("sweep: resuming -limiter %s campaign with -limiter %s", m.Limiter, limiter)
	case len(m.Points) != len(values):
		return fmt.Errorf("sweep: resuming %d-point campaign with %d values", len(m.Points), len(values))
	}
	for i, v := range values {
		if m.Points[i].Value != v {
			return fmt.Errorf("sweep: point %d is %q in the journal but %q now", i, m.Points[i].Value, v)
		}
	}
	return nil
}
