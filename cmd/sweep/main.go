// Command sweep runs parameter sweeps beyond the paper's figures — offered
// load, virtual-channel count, buffer depth or detection threshold — and
// prints one CSV row per run. It is the ablation companion to cmd/figures.
// With -jsonl the same data streams to a file as structured records (a run
// manifest followed by one result record per point), ready for downstream
// analysis without CSV parsing.
//
// Sweeps are crash-resumable: with -out the sweep journals every point's
// status to <dir>/manifest.json (atomic writes) and flushes periodic engine
// checkpoints, so a killed or crashed campaign restarts with -resume —
// completed points are skipped and interrupted points continue from their
// last checkpoint, bit-identical to a never-interrupted run. Each point runs
// under a supervisor with optional wall/stall budgets and capped-backoff
// retries; SIGINT/SIGTERM flush a final checkpoint before exit.
//
// Sweeps also distribute: -serve turns this invocation into a one-shot farm
// coordinator for exactly this sweep (workers connect and pull points;
// results land in the same manifest.json), and -connect turns it into a
// worker that submits the sweep to a coordinator and executes leased points.
// Either way the output is the same CSV, bit-identical to a local run.
//
// Examples:
//
//	sweep -vary rate -values 0.1,0.2,0.3,0.4,0.5,0.6,0.7 -limiter alo
//	sweep -vary vcs -values 1,2,3 -rate 0.5
//	sweep -vary rate -values 0.3,0.6,0.9 -out campaign/ -checkpoint-every 2000
//	sweep -vary rate -values 0.3,0.6,0.9 -out campaign/ -resume
//	sweep -vary rate -values 0.3,0.6,0.9 -out campaign/ -serve 127.0.0.1:8080
//	sweep -vary rate -values 0.3,0.6,0.9 -connect http://127.0.0.1:8080
//	sweep -vary rate -values 0.5,2.0 -chaos      # crash-recovery self-test
//
// Exit codes: 0 all points completed; 1 some point failed or stalled (a
// status table lands on stderr); 130 interrupted by signal; 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"wormnet/internal/campaign"
	"wormnet/internal/fault"
	"wormnet/internal/obs"
	"wormnet/internal/stats"
	"wormnet/internal/supervisor"
)

func main() {
	os.Exit(run())
}

func run() int {
	spec := campaign.DefaultSpec()
	vary := flag.String("vary", "rate", "parameter to sweep: rate, vcs, buf, threshold, msglen, faults")
	values := flag.String("values", "0.1,0.3,0.5,0.7,0.9", "comma-separated values")
	flag.StringVar(&spec.Limiter, "limiter", spec.Limiter, "injection limiter: none, lf, dril, alo, alo-rule-a, alo-rule-b, alo-all-channels")
	flag.IntVar(&spec.K, "k", spec.K, "torus radix")
	flag.IntVar(&spec.N, "n", spec.N, "torus dimensions")
	flag.StringVar(&spec.Pattern, "pattern", spec.Pattern, "traffic pattern")
	flag.IntVar(&spec.MsgLen, "len", spec.MsgLen, "message length (flits)")
	flag.Float64Var(&spec.Rate, "rate", spec.Rate, "offered load (flits/node/cycle)")
	flag.IntVar(&spec.VCs, "vcs", spec.VCs, "virtual channels per physical channel")
	flag.Int64Var(&spec.WarmupCycles, "warmup", spec.WarmupCycles, "warm-up cycles")
	flag.Int64Var(&spec.MeasureCycles, "measure", spec.MeasureCycles, "measurement cycles")
	flag.Int64Var(&spec.DrainCycles, "drain", spec.DrainCycles, "drain cycles")
	flag.Uint64Var(&spec.Seed, "seed", spec.Seed, "random seed")
	workers := flag.Int("workers", 1,
		"engine worker goroutines per run (results are identical for any count; keep 1 unless a single run dominates)")
	flag.Float64Var(&spec.Faults, "faults", 0, "fraction of channels to fail in every run [0,1)")
	flag.Uint64Var(&spec.FaultSeed, "fault-seed", spec.FaultSeed, "fault planner seed")
	jsonlPath := flag.String("jsonl", "", "also stream a run manifest plus one result record per point (JSONL) to this file")

	out := flag.String("out", "", "campaign directory: journal point statuses to manifest.json and flush engine checkpoints there")
	resume := flag.Bool("resume", false, "resume the campaign in -out: skip completed points, restore mid-point checkpoints")
	flag.Int64Var(&spec.CheckpointEvery, "checkpoint-every", spec.CheckpointEvery, "cycles between periodic checkpoints of the running point (0 = final-only; needs -out)")
	pointWall := flag.Duration("point-wall", 0, "wall-clock budget per point (0 = unlimited)")
	flag.Int64Var(&spec.StallWindow, "stall-window", 0, "declare a point stalled after this many cycles without progress (0 = off)")
	flag.IntVar(&spec.Retries, "point-retries", spec.Retries, "retry attempts for a crashed or stalled point (capped exponential backoff)")
	chaos := flag.Bool("chaos", false, "run the crash-recovery self-test instead of the sweep: kill each point mid-run, resume from its checkpoint, verify bit-identical results")
	serve := flag.String("serve", "", "serve this sweep as a one-shot farm coordinator on this address (needs -out; workers connect with -connect)")
	connect := flag.String("connect", "", "run as a farm worker: submit this sweep to the coordinator at this URL and execute leased points")
	leaseTTL := flag.Duration("lease-ttl", campaign.DefaultLeaseTTL, "with -serve: lease time-to-live before a point is stolen from a silent worker")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	spec.Vary = *vary
	spec.PointWallMS = pointWall.Milliseconds()
	vals := strings.Split(*values, ",")
	for i := range vals {
		vals[i] = strings.TrimSpace(vals[i])
	}
	spec.Values = vals

	points, err := spec.Points()
	if err != nil {
		return fail(err)
	}

	switch {
	case *chaos:
		return chaosSelfTest(points, *workers)
	case *serve != "" && *connect != "":
		return fail(fmt.Errorf("sweep: -serve and -connect are mutually exclusive"))
	case *serve != "":
		if *out == "" {
			return fail(fmt.Errorf("sweep: -serve needs -out (the coordinator journals there)"))
		}
		return serveMode(*serve, *out, &spec, *leaseTTL)
	case *connect != "":
		return connectMode(*connect, &spec, *workers)
	case *resume && *out == "":
		return fail(fmt.Errorf("sweep: -resume needs -out"))
	}

	opts := &sweepOpts{
		dir:             *out,
		resume:          *resume,
		workers:         *workers,
		checkpointEvery: spec.CheckpointEvery,
		pointWall:       *pointWall,
		stallWindow:     spec.StallWindow,
		retry:           fault.RetryPolicy{MaxRetries: spec.Retries, BackoffBase: 250, BackoffCap: 4000},
		signals:         []os.Signal{os.Interrupt, syscall.SIGTERM},
	}

	// The campaign journal (shared with the farm coordinator; see
	// internal/campaign).
	var manifest *campaign.Manifest
	base, err := spec.BaseConfig()
	if err != nil {
		return fail(err)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return fail(err)
		}
		if *resume {
			manifest, err = campaign.LoadManifest(*out)
			if err != nil {
				return fail(err)
			}
			if err := manifest.Compatible(*vary, spec.Seed, spec.Limiter, vals); err != nil {
				return fail(err)
			}
		} else {
			manifest = campaign.NewManifest("sweep", *vary, spec.Seed, spec.Limiter, base.Manifest(), vals)
			if err := manifest.Save(*out); err != nil {
				return fail(err)
			}
		}
	} else {
		manifest = campaign.NewManifest("sweep", *vary, spec.Seed, spec.Limiter, base.Manifest(), vals)
	}
	journal := func() int {
		if *out == "" {
			return 0
		}
		if err := manifest.Save(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	var jsonl *obs.JSONLWriter
	if *jsonlPath != "" {
		w, err := obs.CreateJSONL(*jsonlPath)
		if err != nil {
			return fail(err)
		}
		defer func() { w.Close() }() //nolint:errcheck // stream already flushed per record
		header := base.Manifest()
		header["vary"], header["values"] = *vary, *values
		if err := w.Write(obs.NewManifest("sweep", spec.Seed, header)); err != nil {
			return fail(err)
		}
		jsonl = w
	}

	// A signal between points (the supervisor only watches during one) still
	// ends the sweep cleanly.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, opts.signals...)
	defer signal.Stop(sigCh)

	emit := func(raw string, r any) int {
		if jsonl == nil {
			return 0
		}
		if err := jsonl.Write(map[string]any{"t": "result", *vary: raw, "result": r}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	printHeader(*vary)
	interrupted := false
	for i := range points {
		pt, rec := points[i], &manifest.Points[i]
		if *resume && rec.Status == campaign.StatusCompleted && rec.Result != nil {
			printRow(pt.Raw, *rec.Result)
			if rc := emit(pt.Raw, *rec.Result); rc != 0 {
				return rc
			}
			continue
		}
		select {
		case <-sigCh:
			interrupted = true
		default:
		}
		if interrupted {
			break
		}

		rec.Status = campaign.StatusRunning
		if rc := journal(); rc != 0 {
			return rc
		}
		rep := executePoint(pt, rec, opts)
		if rc := journal(); rc != 0 {
			return rc
		}
		if rep.Outcome == supervisor.Interrupted {
			interrupted = true
			break
		}
		if rec.Status == campaign.StatusCompleted {
			printRow(pt.Raw, rep.Result)
			if rc := emit(pt.Raw, rep.Result); rc != 0 {
				return rc
			}
		}
	}

	printStatusTable(manifest)
	if interrupted {
		fmt.Fprintln(os.Stderr, "sweep: interrupted; rerun with -resume to continue")
		return 130
	}
	if !manifest.AllCompleted() {
		return 1
	}
	return 0
}

// printHeader prints the CSV header row.
func printHeader(vary string) {
	fmt.Printf("%s,accepted,latency,stddev,netlatency,deadlockpct,worstdev,bestdev,aborted,retried,dropped\n", vary)
}

// printRow prints one CSV result row.
func printRow(raw string, r stats.Result) {
	fmt.Printf("%s,%.5f,%.2f,%.2f,%.2f,%.4f,%.1f,%.1f,%d,%d,%d\n",
		raw, r.Accepted, r.AvgLatency, r.StdLatency, r.AvgNetLatency,
		r.DeadlockPct, r.WorstNodeDev, r.BestNodeDev,
		r.Aborted, r.Retried, r.Dropped)
}

// printStatusTable summarises every point's terminal status on stderr.
func printStatusTable(m *campaign.Manifest) {
	fmt.Fprintf(os.Stderr, "\n%-6s %-12s %-12s %-9s %s\n", "point", "value", "status", "attempts", "detail")
	for _, rec := range m.Points {
		detail := rec.Outcome
		if rec.Error != "" {
			detail = rec.Error
		}
		if rec.Worker != "" {
			detail = fmt.Sprintf("%s [worker %s]", detail, rec.Worker)
		}
		fmt.Fprintf(os.Stderr, "%-6d %-12s %-12s %-9d %s\n",
			rec.Index, rec.Value, rec.Status, rec.Attempts, detail)
	}
}
