// Command sweep runs parameter sweeps beyond the paper's figures — offered
// load, virtual-channel count, buffer depth or detection threshold — and
// prints one CSV row per run. It is the ablation companion to cmd/figures.
// With -jsonl the same data streams to a file as structured records (a run
// manifest followed by one result record per point), ready for downstream
// analysis without CSV parsing.
//
// Sweeps are crash-resumable: with -out the sweep journals every point's
// status to <dir>/manifest.json (atomic writes) and flushes periodic engine
// checkpoints, so a killed or crashed campaign restarts with -resume —
// completed points are skipped and interrupted points continue from their
// last checkpoint, bit-identical to a never-interrupted run. Each point runs
// under a supervisor with optional wall/stall budgets and capped-backoff
// retries; SIGINT/SIGTERM flush a final checkpoint before exit.
//
// Examples:
//
//	sweep -vary rate -values 0.1,0.2,0.3,0.4,0.5,0.6,0.7 -limiter alo
//	sweep -vary vcs -values 1,2,3 -rate 0.5
//	sweep -vary rate -values 0.3,0.6,0.9 -out campaign/ -checkpoint-every 2000
//	sweep -vary rate -values 0.3,0.6,0.9 -out campaign/ -resume
//	sweep -vary rate -values 0.5,2.0 -chaos      # crash-recovery self-test
//
// Exit codes: 0 all points completed; 1 some point failed or stalled (a
// status table lands on stderr); 130 interrupted by signal; 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"wormnet/internal/baseline"
	"wormnet/internal/core"
	"wormnet/internal/fault"
	"wormnet/internal/obs"
	"wormnet/internal/sim"
	"wormnet/internal/stats"
	"wormnet/internal/supervisor"
)

func main() {
	os.Exit(run())
}

func run() int {
	cfg := sim.DefaultConfig()
	vary := flag.String("vary", "rate", "parameter to sweep: rate, vcs, buf, threshold, msglen, faults")
	values := flag.String("values", "0.1,0.3,0.5,0.7,0.9", "comma-separated values")
	limiter := flag.String("limiter", "alo", "injection limiter: none, lf, dril, alo, alo-rule-a, alo-rule-b, alo-all-channels")
	flag.IntVar(&cfg.K, "k", cfg.K, "torus radix")
	flag.IntVar(&cfg.N, "n", cfg.N, "torus dimensions")
	flag.StringVar(&cfg.Pattern, "pattern", cfg.Pattern, "traffic pattern")
	flag.IntVar(&cfg.MsgLen, "len", cfg.MsgLen, "message length (flits)")
	flag.Float64Var(&cfg.Rate, "rate", cfg.Rate, "offered load (flits/node/cycle)")
	flag.IntVar(&cfg.VCs, "vcs", cfg.VCs, "virtual channels per physical channel")
	flag.Int64Var(&cfg.WarmupCycles, "warmup", cfg.WarmupCycles, "warm-up cycles")
	flag.Int64Var(&cfg.MeasureCycles, "measure", cfg.MeasureCycles, "measurement cycles")
	flag.Int64Var(&cfg.DrainCycles, "drain", cfg.DrainCycles, "drain cycles")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.IntVar(&cfg.Workers, "workers", 1,
		"engine worker goroutines per run (results are identical for any count; keep 1 unless a single run dominates)")
	faults := flag.Float64("faults", 0, "fraction of channels to fail in every run [0,1]")
	faultSeed := flag.Uint64("fault-seed", 1, "fault planner seed")
	jsonlPath := flag.String("jsonl", "", "also stream a run manifest plus one result record per point (JSONL) to this file")

	out := flag.String("out", "", "campaign directory: journal point statuses to manifest.json and flush engine checkpoints there")
	resume := flag.Bool("resume", false, "resume the campaign in -out: skip completed points, restore mid-point checkpoints")
	ckptEvery := flag.Int64("checkpoint-every", 2000, "cycles between periodic checkpoints of the running point (0 = final-only; needs -out)")
	pointWall := flag.Duration("point-wall", 0, "wall-clock budget per point (0 = unlimited)")
	stallWindow := flag.Int64("stall-window", 0, "declare a point stalled after this many cycles without progress (0 = off)")
	retries := flag.Int("point-retries", 2, "retry attempts for a crashed or stalled point (capped exponential backoff)")
	chaos := flag.Bool("chaos", false, "run the crash-recovery self-test instead of the sweep: kill each point mid-run, resume from its checkpoint, verify bit-identical results")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	f, err := limiterByName(*limiter)
	if err != nil {
		return fail(err)
	}
	cfg.Limiter, cfg.LimiterName = f, *limiter

	vals := strings.Split(*values, ",")
	for i := range vals {
		vals[i] = strings.TrimSpace(vals[i])
	}
	points, err := buildPoints(cfg, *vary, vals, *faults, *faultSeed)
	if err != nil {
		return fail(err)
	}

	if *chaos {
		return chaosSelfTest(points, cfg.Workers)
	}
	if *resume && *out == "" {
		return fail(fmt.Errorf("sweep: -resume needs -out"))
	}

	opts := &sweepOpts{
		dir:             *out,
		resume:          *resume,
		checkpointEvery: *ckptEvery,
		pointWall:       *pointWall,
		stallWindow:     *stallWindow,
		retry:           fault.RetryPolicy{MaxRetries: *retries, BackoffBase: 250, BackoffCap: 4000},
		signals:         []os.Signal{os.Interrupt, syscall.SIGTERM},
	}

	// The campaign journal.
	var manifest *campaignManifest
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return fail(err)
		}
		if *resume {
			manifest, err = loadManifest(*out)
			if err != nil {
				return fail(err)
			}
			if err := manifest.compatible(*vary, cfg.Seed, *limiter, vals); err != nil {
				return fail(err)
			}
		} else {
			manifest = newManifest(*vary, cfg.Seed, *limiter, cfg.Manifest(), vals)
			if err := manifest.save(*out); err != nil {
				return fail(err)
			}
		}
	} else {
		manifest = newManifest(*vary, cfg.Seed, *limiter, cfg.Manifest(), vals)
	}
	journal := func() int {
		if *out == "" {
			return 0
		}
		if err := manifest.save(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	var jsonl *obs.JSONLWriter
	if *jsonlPath != "" {
		w, err := obs.CreateJSONL(*jsonlPath)
		if err != nil {
			return fail(err)
		}
		defer func() { w.Close() }() //nolint:errcheck // stream already flushed per record
		base := cfg.Manifest()
		base["vary"], base["values"] = *vary, *values
		if err := w.Write(obs.NewManifest("sweep", cfg.Seed, base)); err != nil {
			return fail(err)
		}
		jsonl = w
	}

	// A signal between points (the supervisor only watches during one) still
	// ends the sweep cleanly.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, opts.signals...)
	defer signal.Stop(sigCh)

	emit := func(raw string, r any) int {
		if jsonl == nil {
			return 0
		}
		if err := jsonl.Write(map[string]any{"t": "result", *vary: raw, "result": r}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	fmt.Printf("%s,accepted,latency,stddev,netlatency,deadlockpct,worstdev,bestdev,aborted,retried,dropped\n", *vary)
	interrupted := false
	for i := range points {
		pt, rec := points[i], &manifest.Points[i]
		if *resume && rec.Status == statusCompleted && rec.Result != nil {
			printRow(pt.raw, *rec.Result)
			if rc := emit(pt.raw, *rec.Result); rc != 0 {
				return rc
			}
			continue
		}
		select {
		case <-sigCh:
			interrupted = true
		default:
		}
		if interrupted {
			break
		}

		rec.Status = statusRunning
		if rc := journal(); rc != 0 {
			return rc
		}
		rep := executePoint(pt, rec, opts)
		if rc := journal(); rc != 0 {
			return rc
		}
		if rep.Outcome == supervisor.Interrupted {
			interrupted = true
			break
		}
		if rec.Status == statusCompleted {
			printRow(pt.raw, rep.Result)
			if rc := emit(pt.raw, rep.Result); rc != 0 {
				return rc
			}
		}
	}

	printStatusTable(manifest)
	if interrupted {
		fmt.Fprintln(os.Stderr, "sweep: interrupted; rerun with -resume to continue")
		return 130
	}
	for _, rec := range manifest.Points {
		if rec.Status != statusCompleted {
			return 1
		}
	}
	return 0
}

// printRow prints one CSV result row.
func printRow(raw string, r stats.Result) {
	fmt.Printf("%s,%.5f,%.2f,%.2f,%.2f,%.4f,%.1f,%.1f,%d,%d,%d\n",
		raw, r.Accepted, r.AvgLatency, r.StdLatency, r.AvgNetLatency,
		r.DeadlockPct, r.WorstNodeDev, r.BestNodeDev,
		r.Aborted, r.Retried, r.Dropped)
}

// printStatusTable summarises every point's terminal status on stderr.
func printStatusTable(m *campaignManifest) {
	fmt.Fprintf(os.Stderr, "\n%-6s %-12s %-12s %-9s %s\n", "point", "value", "status", "attempts", "detail")
	for _, rec := range m.Points {
		detail := rec.Outcome
		if rec.Error != "" {
			detail = rec.Error
		}
		fmt.Fprintf(os.Stderr, "%-6d %-12s %-12s %-9d %s\n",
			rec.Index, rec.Value, rec.Status, rec.Attempts, detail)
	}
}

func limiterByName(name string) (core.Factory, error) {
	switch name {
	case "alo-rule-a":
		return core.NewRuleAOnly(), nil
	case "alo-rule-b":
		return core.NewRuleBOnly(), nil
	case "alo-all-channels":
		return core.NewAllChannels(), nil
	default:
		if f, ok := baseline.Factories()[name]; ok {
			return f, nil
		}
		return nil, fmt.Errorf("unknown limiter %q", name)
	}
}
