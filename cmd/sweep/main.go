// Command sweep runs parameter sweeps beyond the paper's figures — offered
// load, virtual-channel count, buffer depth or detection threshold — and
// prints one CSV row per run. It is the ablation companion to cmd/figures.
// With -jsonl the same data streams to a file as structured records (a run
// manifest followed by one result record per point), ready for downstream
// analysis without CSV parsing.
//
// Examples:
//
//	sweep -vary rate -values 0.1,0.2,0.3,0.4,0.5,0.6,0.7 -limiter alo
//	sweep -vary vcs -values 1,2,3 -rate 0.5
//	sweep -vary threshold -values 8,16,32,64 -rate 0.7 -limiter none
//	sweep -vary buf -values 2,4,8 -rate 0.5
//	sweep -vary faults -values 0,0.02,0.05,0.1 -rate 0.3 -limiter alo
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wormnet/internal/baseline"
	"wormnet/internal/core"
	"wormnet/internal/fault"
	"wormnet/internal/obs"
	"wormnet/internal/sim"
	"wormnet/internal/topology"
)

func main() {
	cfg := sim.DefaultConfig()
	vary := flag.String("vary", "rate", "parameter to sweep: rate, vcs, buf, threshold, msglen, faults")
	values := flag.String("values", "0.1,0.3,0.5,0.7,0.9", "comma-separated values")
	limiter := flag.String("limiter", "alo", "injection limiter: none, lf, dril, alo, alo-rule-a, alo-rule-b, alo-all-channels")
	flag.IntVar(&cfg.K, "k", cfg.K, "torus radix")
	flag.IntVar(&cfg.N, "n", cfg.N, "torus dimensions")
	flag.StringVar(&cfg.Pattern, "pattern", cfg.Pattern, "traffic pattern")
	flag.IntVar(&cfg.MsgLen, "len", cfg.MsgLen, "message length (flits)")
	flag.Float64Var(&cfg.Rate, "rate", cfg.Rate, "offered load (flits/node/cycle)")
	flag.IntVar(&cfg.VCs, "vcs", cfg.VCs, "virtual channels per physical channel")
	flag.Int64Var(&cfg.WarmupCycles, "warmup", cfg.WarmupCycles, "warm-up cycles")
	flag.Int64Var(&cfg.MeasureCycles, "measure", cfg.MeasureCycles, "measurement cycles")
	flag.Int64Var(&cfg.DrainCycles, "drain", cfg.DrainCycles, "drain cycles")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.IntVar(&cfg.Workers, "workers", 1,
		"engine worker goroutines per run (results are identical for any count; keep 1 unless a single run dominates)")
	faults := flag.Float64("faults", 0, "fraction of channels to fail in every run [0,1]")
	faultSeed := flag.Uint64("fault-seed", 1, "fault planner seed")
	jsonlPath := flag.String("jsonl", "", "also stream a run manifest plus one result record per point (JSONL) to this file")
	flag.Parse()

	f, err := limiterByName(*limiter)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Limiter, cfg.LimiterName = f, *limiter

	var jsonl *obs.JSONLWriter
	if *jsonlPath != "" {
		w, err := obs.CreateJSONL(*jsonlPath)
		must(err)
		defer func() { must(w.Close()) }()
		base := cfg.Manifest()
		base["vary"], base["values"] = *vary, *values
		must(w.Write(obs.NewManifest("sweep", cfg.Seed, base)))
		jsonl = w
	}

	fmt.Printf("%s,accepted,latency,stddev,netlatency,deadlockpct,worstdev,bestdev,aborted,retried,dropped\n", *vary)
	for _, raw := range strings.Split(*values, ",") {
		raw = strings.TrimSpace(raw)
		run := cfg
		frac := *faults
		switch *vary {
		case "rate":
			v, err := strconv.ParseFloat(raw, 64)
			must(err)
			run.Rate = v
		case "vcs":
			v, err := strconv.Atoi(raw)
			must(err)
			run.VCs = v
		case "buf":
			v, err := strconv.Atoi(raw)
			must(err)
			run.BufDepth = v
		case "threshold":
			v, err := strconv.Atoi(raw)
			must(err)
			run.DetectionThreshold = int32(v)
		case "msglen":
			v, err := strconv.Atoi(raw)
			must(err)
			run.MsgLen = v
		case "faults":
			v, err := strconv.ParseFloat(raw, 64)
			must(err)
			frac = v
		default:
			fmt.Fprintf(os.Stderr, "unknown -vary %q\n", *vary)
			os.Exit(2)
		}
		if frac > 0 {
			sched, err := fault.Plan(topology.New(run.K, run.N),
				fault.Profile{LinkFraction: frac, Seed: *faultSeed})
			must(err)
			run.Faults = sched
		}
		e, err := sim.New(run)
		must(err)
		r := e.Run()
		e.Close()
		fmt.Printf("%s,%.5f,%.2f,%.2f,%.2f,%.4f,%.1f,%.1f,%d,%d,%d\n",
			raw, r.Accepted, r.AvgLatency, r.StdLatency, r.AvgNetLatency,
			r.DeadlockPct, r.WorstNodeDev, r.BestNodeDev,
			r.Aborted, r.Retried, r.Dropped)
		if jsonl != nil {
			must(jsonl.Write(map[string]any{
				"t": "result", *vary: raw, "result": r,
			}))
		}
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func limiterByName(name string) (core.Factory, error) {
	switch name {
	case "alo-rule-a":
		return core.NewRuleAOnly(), nil
	case "alo-rule-b":
		return core.NewRuleBOnly(), nil
	case "alo-all-channels":
		return core.NewAllChannels(), nil
	default:
		if f, ok := baseline.Factories()[name]; ok {
			return f, nil
		}
		return nil, fmt.Errorf("unknown limiter %q", name)
	}
}
