package main

// The chaos self-test: prove, on the actual sweep configuration, that a run
// killed at an arbitrary cycle and resumed from its checkpoint converges to
// the uninterrupted run bit for bit. Each point runs twice — once golden,
// once killed at a pseudo-random cycle, snapshotted through the full
// checkpoint codec (encode → decode), restored at a *different* worker count
// and run to completion — and the two must agree on the summary, the
// all-time counters and the complete trace event stream.

import (
	"bytes"
	"fmt"
	"os"

	"wormnet/internal/campaign"
	"wormnet/internal/checkpoint"
	"wormnet/internal/sim"
	"wormnet/internal/trace"
)

// chaosTap records the full lifecycle event stream for comparison.
type chaosTap struct {
	events []trace.Event
}

func (l *chaosTap) Emit(ev trace.Event) { l.events = append(l.events, ev) }

// splitmix64 is the deterministic kill-cycle generator (same algorithm as
// the fault planner's): the kill point must not depend on math/rand's
// unspecified stream.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// counters collects the engine's all-time totals.
func counters(e *sim.Engine) [6]int64 {
	return [6]int64{e.Generated(), e.Delivered(), e.Recovered(), e.Aborted(), e.Retried(), e.Dropped()}
}

// chaosPoint runs the golden/kill/resume comparison for one point and
// returns an error describing the first divergence, or nil.
func chaosPoint(pt campaign.Point, workers int) error {
	cfg := pt.Config
	cfg.Workers = workers
	total := cfg.TotalCycles()
	killAt := 1 + int64(splitmix64(cfg.Seed^uint64(pt.Index))%uint64(total-1))

	// Golden: uninterrupted at the configured worker count.
	golden, err := sim.New(cfg)
	if err != nil {
		return err
	}
	defer golden.Close()
	goldTap := &chaosTap{}
	golden.SetListener(goldTap)
	goldRes := golden.Run()
	goldCtr := counters(golden)

	// Victim: killed at killAt, state flushed through the real codec.
	victim, err := sim.New(cfg)
	if err != nil {
		return err
	}
	defer victim.Close()
	tap := &chaosTap{}
	victim.SetListener(tap)
	for victim.Now() < killAt {
		victim.Step()
	}
	snap, err := victim.Snapshot()
	if err != nil {
		return fmt.Errorf("snapshot at kill cycle %d: %w", killAt, err)
	}
	var wire bytes.Buffer
	if err := checkpoint.Encode(&wire, snap); err != nil {
		return err
	}
	snap, err = checkpoint.Decode(&wire)
	if err != nil {
		return err
	}

	// Resurrected in a "new process": restored at the other worker count to
	// pin that recovery does not depend on the sharding of the dead run.
	rcfg := cfg
	if rcfg.Workers == 1 {
		rcfg.Workers = 4
	} else {
		rcfg.Workers = 1
	}
	revived, err := sim.RestoreEngine(rcfg, snap)
	if err != nil {
		return fmt.Errorf("restore at kill cycle %d: %w", killAt, err)
	}
	defer revived.Close()
	revived.SetListener(tap)
	res := revived.Run()
	if err := revived.CheckInvariants(); err != nil {
		return fmt.Errorf("invariants after resume: %w", err)
	}

	switch {
	case res != goldRes:
		return fmt.Errorf("killed at %d: result diverged\n  got  %+v\n  want %+v", killAt, res, goldRes)
	case counters(revived) != goldCtr:
		return fmt.Errorf("killed at %d: counters diverged: got %v want %v", killAt, counters(revived), goldCtr)
	case len(tap.events) != len(goldTap.events):
		return fmt.Errorf("killed at %d: %d events, golden emitted %d", killAt, len(tap.events), len(goldTap.events))
	}
	for i := range tap.events {
		if tap.events[i] != goldTap.events[i] {
			return fmt.Errorf("killed at %d: event %d diverged:\n  got  %+v\n  want %+v",
				killAt, i, tap.events[i], goldTap.events[i])
		}
	}
	return nil
}

// chaosSelfTest runs chaosPoint for every sweep point and reports pass/fail
// per point. Returns the process exit code (0 all passed, 1 otherwise).
func chaosSelfTest(points []campaign.Point, workers int) int {
	fmt.Printf("chaos self-test: kill + checkpoint-resume vs uninterrupted, %d point(s), workers %d↔%d\n",
		len(points), workers, map[bool]int{true: 4, false: 1}[workers == 1])
	failed := 0
	for _, pt := range points {
		if err := chaosPoint(pt, workers); err != nil {
			failed++
			fmt.Printf("FAIL %s=%s: %v\n", "point", pt.Raw, err)
			continue
		}
		fmt.Printf("PASS point %d (%s)\n", pt.Index, pt.Raw)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "chaos self-test: %d/%d point(s) failed\n", failed, len(points))
		return 1
	}
	fmt.Printf("chaos self-test: all %d point(s) bit-identical after kill+resume\n", len(points))
	return 0
}
