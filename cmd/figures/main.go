// Command figures regenerates the paper's evaluation figures. Each figure
// is a set of simulation sweeps whose text table carries the same series
// the paper plots (latency/accepted-traffic/deadlock curves, ALO condition
// percentages, per-node fairness distributions).
//
//	figures                 # every figure at full scale (8-ary 3-cube)
//	figures -fig 5          # only Figure 5
//	figures -fig faults     # degradation under link failures (not in -fig all)
//	figures -fig adversarial# limiter containment vs rogue nodes + link flaps (not in -fig all)
//	figures -quick          # reduced 4-ary 2-cube scale
//	figures -csv out.csv    # additionally dump CSV rows for plotting
//	figures -jsonl out.jsonl# additionally stream structured per-point records
//
// SIGINT/SIGTERM stop the run at the next figure boundary: finished figures
// are already printed (and flushed to -csv/-jsonl), the rest are skipped and
// the process exits 130.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"wormnet/internal/experiments"
	"wormnet/internal/obs"
	"wormnet/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	fig := flag.String("fig", "all", "figure to regenerate: 1,2,4,5,6,7,8,9,10, deadlocks, faults, adversarial, or all")
	quick := flag.Bool("quick", false, "run the reduced-scale configuration")
	csvPath := flag.String("csv", "", "also append CSV rows to this file")
	jsonlPath := flag.String("jsonl", "", "also stream a manifest plus one record per measured point (JSONL) to this file")
	workers := flag.Int("workers", 1,
		"engine worker goroutines per run (results are identical for any count; the runner already parallelises across runs, so raise this only when single runs dominate)")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	scale := experiments.Full()
	if *quick {
		scale = experiments.Quick()
	}

	var exps []experiments.Experiment
	if *fig == "all" {
		exps = experiments.All()
	} else {
		id := *fig
		if _, err := strconv.Atoi(id); err == nil {
			id = "fig" + id
		}
		ex, err := experiments.ByID(id)
		if err != nil {
			return fail(err)
		}
		exps = []experiments.Experiment{ex}
	}

	var csv *os.File
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		csv = f
	}

	var jsonl *obs.JSONLWriter
	if *jsonlPath != "" {
		w, err := obs.CreateJSONL(*jsonlPath)
		if err != nil {
			return fail(err)
		}
		defer func() {
			if err := w.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "jsonl:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
		man := obs.NewManifest("figures", scale.Seed, map[string]any{
			"scale": scale.Name, "k": scale.K, "n": scale.N,
			"warmup": scale.Warmup, "measure": scale.Measure, "drain": scale.Drain,
			"fig": *fig,
		})
		if err := w.Write(man); err != nil {
			return fail(err)
		}
		jsonl = w
	}

	// A multi-worker executor shards each engine; simulation results stay
	// bit-identical to serial, only wall-clock changes.
	var exec experiments.Executor
	if *workers > 1 {
		w := *workers
		exec = func(cfg sim.Config) *sim.Engine {
			cfg.Workers = w
			e, err := sim.New(cfg)
			if err != nil {
				panic(fmt.Sprintf("figures: bad config: %v", err))
			}
			e.Run()
			e.Close()
			return e
		}
	}

	// Figures run minutes at full scale: let ^C land between them instead of
	// tearing the table mid-print.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	fmt.Printf("scale: %s (%d-ary %d-cube), windows %d/%d/%d\n\n",
		scale.Name, scale.K, scale.N, scale.Warmup, scale.Measure, scale.Drain)
	for i, ex := range exps {
		select {
		case sig := <-sigCh:
			fmt.Fprintf(os.Stderr, "figures: %v: stopping after %d of %d figure(s); finished output is flushed\n",
				sig, i, len(exps))
			return 130
		default:
		}
		start := time.Now()
		rep := ex.Run(scale, exec)
		fmt.Print(rep.Render())
		fmt.Printf("(%s completed in %v)\n\n", ex.ID, time.Since(start).Round(time.Second))
		if csv != nil {
			if _, err := csv.WriteString(rep.CSV()); err != nil {
				fmt.Fprintln(os.Stderr, "csv:", err)
				return 1
			}
		}
		if jsonl != nil {
			for _, s := range rep.Series {
				for _, p := range s.Points {
					rec := map[string]any{
						"t": "result", "fig": rep.ID, "series": s.Name,
						"offered": p.Offered, "result": p.Result,
					}
					if p.Probe != nil {
						rec["probe"] = map[string]float64{
							"pct_rule_a": p.Probe.PercentA(),
							"pct_rule_b": p.Probe.PercentB(),
							"pct_either": p.Probe.PercentEither(),
						}
					}
					if p.Classes != nil {
						rec["classes"] = p.Classes
					}
					if err := jsonl.Write(rec); err != nil {
						fmt.Fprintln(os.Stderr, "jsonl:", err)
						return 1
					}
				}
			}
		}
	}
	return 0
}
