// Command wormsim runs a single wormhole-network simulation and prints the
// paper's performance measures: average and standard deviation of message
// latency (cycles), accepted traffic (flits/node/cycle) and the percentage
// of detected deadlocks.
//
// Example (the paper's base configuration):
//
//	wormsim -k 8 -n 3 -vcs 3 -pattern uniform -len 16 -rate 0.4 -limiter alo
//
// With fault injection (5% of channels fail at cycle 0):
//
//	wormsim -rate 0.3 -limiter alo -faults 0.05 -fault-seed 7
//
// Every fault *and repair* is applied online: the engine bumps a routing
// epoch and recomputes its fault-aware routing state without draining.
// -fault-transient makes failures heal, and -fault-flaps turns each healing
// component into a flap storm (down, up, down again every
// -fault-flap-period cycles). -adversarial turns a fraction of nodes rogue:
// they bypass the injection limiter entirely and mount duty-cycled hotspot
// storms (-rogue-rate, -storm-period/-storm-on, -hotspot); results are then
// split into well-behaved and rogue traffic classes. -replay re-drives a
// run's exact generation schedule from a -trace-out JSONL file:
//
//	wormsim -rate 0.3 -faults 0.05 -fault-transient 1 -fault-repair 300 -fault-flaps 3 -fault-flap-period 900
//	wormsim -rate 0.65 -limiter alo -adversarial 0.1 -rogue-rate 2 -storm-period 500 -storm-on 200 -hotspot 5
//	wormsim -rate 0.4 -trace-out run.jsonl && wormsim -replay run.jsonl
//
// Live observability: -http serves Prometheus metrics, a JSON snapshot and
// pprof while the run is in flight; -metrics-out streams periodic metric
// snapshots (with a run manifest header) to a JSONL file; -trace-out streams
// every lifecycle event; -flight-out arms a flight recorder that dumps the
// recent event window when deadlock/drop activity bursts (and, with
// -flight-sat-threshold, on saturation onset — a limiter deny-rate spike);
// -spans tracks sampled message-lifecycle spans into blocked-time
// histograms, and -span-out additionally exports them as Chrome trace-event
// JSON that Perfetto (https://ui.perfetto.dev) loads directly; -progress
// prints a stderr heartbeat with the cycle rate, deny rate and ETA:
//
//	wormsim -rate 0.6 -http :8080 -metrics-out run.jsonl -flight-out flight.jsonl
//	wormsim -rate 1.2 -limiter none -progress -spans -span-out trace.json
//
// None of these change simulation results — instrumented and plain runs are
// bit-identical (the sim package's TestMetricsDeterminism pins this).
//
// Long runs are crash-resumable and watchdog-supervised: -checkpoint flushes
// periodic engine snapshots (atomic replace), -resume continues from one
// bit-identically (at any -workers count; the other config flags must match
// the original run), and -wall-budget/-cycle-budget/-stall-window bound the
// run. SIGINT/SIGTERM flush a final checkpoint before exiting 130:
//
//	wormsim -rate 0.4 -measure 10000000 -checkpoint run.wncp -checkpoint-every 100000
//	wormsim -rate 0.4 -measure 10000000 -resume run.wncp   # after a crash or ^C
//
// Exit codes: 0 completed; 1 stalled, over budget or crashed; 130
// interrupted by signal; 2 usage or configuration error.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"syscall"
	"time"

	"wormnet/internal/baseline"
	"wormnet/internal/checkpoint"
	"wormnet/internal/core"
	"wormnet/internal/fault"
	"wormnet/internal/metrics"
	"wormnet/internal/obs"
	"wormnet/internal/sim"
	"wormnet/internal/supervisor"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
	"wormnet/internal/traffic"
)

func main() {
	os.Exit(run())
}

func run() int {
	cfg := sim.DefaultConfig()
	var limiterName string
	flag.IntVar(&cfg.K, "k", cfg.K, "torus radix (nodes per ring)")
	flag.IntVar(&cfg.N, "n", cfg.N, "torus dimensions")
	flag.IntVar(&cfg.VCs, "vcs", cfg.VCs, "virtual channels per physical channel")
	flag.IntVar(&cfg.BufDepth, "buf", cfg.BufDepth, "flits per virtual-channel buffer")
	flag.StringVar(&cfg.Routing, "routing", cfg.Routing, "routing engine: tfar, duato or dor")
	flag.StringVar(&cfg.Pattern, "pattern", cfg.Pattern,
		"traffic pattern: uniform, butterfly, complement, bit-reversal, perfect-shuffle, transpose, tornado")
	flag.IntVar(&cfg.MsgLen, "len", cfg.MsgLen, "message length in flits")
	flag.Float64Var(&cfg.Rate, "rate", cfg.Rate, "offered load in flits/node/cycle")
	flag.StringVar(&limiterName, "limiter", "alo", "injection limiter: none, lf, dril, alo, alo-rule-a, alo-rule-b, alo-all-channels")
	var threshold int
	flag.IntVar(&threshold, "threshold", int(cfg.DetectionThreshold), "deadlock detection threshold (cycles)")
	flag.Int64Var(&cfg.RecoveryDelay, "recovery-delay", cfg.RecoveryDelay, "software recovery cost (cycles)")
	flag.BoolVar(&cfg.LenientDetection, "lenient-detection", false,
		"timeout-style detection: presume deadlock on blockage alone, without the flit-activity veto")
	flag.Int64Var(&cfg.WarmupCycles, "warmup", cfg.WarmupCycles, "warm-up cycles before measurement")
	flag.Int64Var(&cfg.MeasureCycles, "measure", cfg.MeasureCycles, "measurement window (cycles)")
	flag.Int64Var(&cfg.DrainCycles, "drain", cfg.DrainCycles, "drain cycles after measurement")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.IntVar(&cfg.Workers, "workers", sim.DefaultWorkers(),
		"engine worker goroutines (results are identical for any count; 1 = serial)")
	prof := fault.Profile{}
	flag.Float64Var(&prof.LinkFraction, "faults", 0, "fraction of channels to fail [0,1]")
	flag.Float64Var(&prof.RouterFraction, "fault-routers", 0, "fraction of routers to fail [0,1]")
	flag.Uint64Var(&prof.Seed, "fault-seed", 1, "fault planner seed")
	flag.Int64Var(&prof.At, "fault-at", 0, "cycle the first failure strikes")
	flag.Int64Var(&prof.Stagger, "fault-stagger", 0, "spread failures over this many cycles")
	flag.Float64Var(&prof.TransientFraction, "fault-transient", 0, "fraction of failures that heal [0,1]")
	flag.Int64Var(&prof.RepairAfter, "fault-repair", 0, "outage length of transient failures (cycles)")
	flag.IntVar(&prof.FlapCount, "fault-flaps", 0,
		"extra down/up cycles per healing component (a link-flap storm; needs -fault-transient)")
	flag.Int64Var(&prof.FlapPeriod, "fault-flap-period", 0,
		"cycle distance between successive failures of a flapping component (must exceed -fault-repair)")
	adv := sim.AdversaryProfile{}
	flag.Float64Var(&adv.RogueFraction, "adversarial", 0,
		"fraction of nodes that turn rogue and bypass the injection limiter [0,1]")
	flag.Float64Var(&adv.RogueRate, "rogue-rate", 2.0, "offered load of each rogue node (flits/node/cycle)")
	flag.Int64Var(&adv.StormPeriod, "storm-period", 0, "rogue hotspot-storm duty-cycle period in cycles (0 = storm always on)")
	flag.Int64Var(&adv.StormOn, "storm-on", 0, "leading cycles of each storm period spent targeting the hotspot")
	hotspot := flag.Int("hotspot", 0, "node the rogue storms concentrate on")
	flag.Uint64Var(&adv.Seed, "adversary-seed", 1, "rogue placement seed")
	replayPath := flag.String("replay", "",
		"replay the generation schedule from this JSONL trace (as written by -trace-out) instead of synthetic sources")
	retries := flag.Int("retry-limit", fault.DefaultRetryPolicy().MaxRetries,
		"re-injection attempts before a fault-killed message is dropped")
	verbose := flag.Bool("v", false, "print per-node fairness summary")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	httpAddr := flag.String("http", "", "serve /metrics, /snapshot, /healthz and /debug/pprof on this address (e.g. :8080)")
	metricsOut := flag.String("metrics-out", "", "stream periodic metric snapshots (JSONL, with run manifest) to this file")
	metricsEvery := flag.Int64("metrics-every", sim.DefaultMetricsSampleEvery,
		"metric sampling period in cycles (gauges, per-phase timing, JSONL snapshots)")
	traceOut := flag.String("trace-out", "", "stream every message lifecycle event (JSONL) to this file")
	flightOut := flag.String("flight-out", "", "dump the recent event window (JSONL) when deadlock/drop activity bursts")
	flightSatThreshold := flag.Int("flight-sat-threshold", 0,
		"also dump the flight recorder when this many limiter denials land within -flight-sat-window cycles (0 = off; needs -flight-out)")
	flightSatWindow := flag.Int64("flight-sat-window", obs.DefaultFlightSatWindow,
		"saturation-trigger window in cycles (see -flight-sat-threshold)")
	spansOn := flag.Bool("spans", false,
		"track sampled message-lifecycle spans (blocked-time decomposition histograms; results stay bit-identical)")
	spanEvery := flag.Int64("span-every", sim.DefaultSpanSampleEvery,
		"span sampling period: track one in every N generated messages")
	spanOut := flag.String("span-out", "",
		"write sampled spans as Chrome trace-event JSON (Perfetto-loadable; implies -spans)")
	progress := flag.Bool("progress", false,
		"print a periodic progress heartbeat (cycles/s, delivered, deny rate, ETA) to stderr")
	ckptPath := flag.String("checkpoint", "", "flush periodic engine checkpoints to this file (atomic replace; resume with -resume)")
	ckptEvery := flag.Int64("checkpoint-every", 100000, "cycles between periodic checkpoints (needs -checkpoint)")
	resumePath := flag.String("resume", "", "resume bit-identically from this checkpoint file (config flags must match the original run; -workers may differ)")
	wallBudget := flag.Duration("wall-budget", 0, "abort the run after this much wall-clock time (0 = unlimited)")
	cycleBudget := flag.Int64("cycle-budget", 0, "max cycles this invocation may execute (0 = unlimited; a resumed run gets a fresh budget)")
	stallWindow := flag.Int64("stall-window", 0, "declare a livelock after this many cycles without a delivery or drop while messages are in flight (0 = off)")
	flag.Parse()
	cfg.DetectionThreshold = int32(threshold)

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	faulty := prof.LinkFraction > 0 || prof.RouterFraction > 0
	if faulty {
		sched, err := fault.Plan(topology.New(cfg.K, cfg.N), prof)
		if err != nil {
			return fail(err)
		}
		cfg.Faults = sched
		cfg.Retry = fault.DefaultRetryPolicy()
		cfg.Retry.MaxRetries = *retries
	}

	if adv.RogueFraction > 0 {
		adv.Hotspot = topology.NodeID(*hotspot)
		cfg.Adversary = adv
	}

	if *replayPath != "" {
		rf, err := os.Open(*replayPath)
		if err != nil {
			return fail(err)
		}
		scripts, err := obs.ReadReplay(rf)
		rf.Close()
		if err != nil {
			return fail(err)
		}
		cfg.Sources = traffic.ReplayFactory(scripts)
		cfg.SourceName = "replay:" + *replayPath
	}

	f, err := limiterByName(limiterName)
	if err != nil {
		return fail(err)
	}
	cfg.Limiter, cfg.LimiterName = f, limiterName

	// The engine: restored from a checkpoint (bit-identical continuation)
	// or built fresh. The snapshot is kept around so a metrics-enabled
	// resume can also restore the registry.
	var snap *sim.Snapshot
	var e *sim.Engine
	if *resumePath != "" {
		snap, err = checkpoint.ReadFile(*resumePath)
		if err != nil {
			return fail(err)
		}
		e, err = sim.RestoreEngine(cfg, snap)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "wormsim: resuming from %s at cycle %d\n", *resumePath, e.Now())
	} else if e, err = sim.New(cfg); err != nil {
		return fail(err)
	}
	defer e.Close()

	// Observability stack. Everything here only reads the simulation, so
	// results are identical with or without it.
	var (
		reg       *metrics.Registry
		mwriter   *obs.JSONLWriter
		mlog      *obs.MetricsLogger
		lastCycle atomic.Int64
		listeners trace.Multi
	)
	wantSpans := *spansOn || *spanOut != ""
	if *httpAddr != "" || *metricsOut != "" || wantSpans || *progress {
		reg = metrics.NewRegistry()
		e.EnableMetrics(reg, *metricsEvery)
		if snap != nil {
			// Continue the metric series where the dead run left off.
			if err := reg.Restore(snap.Metrics); err != nil {
				return fail(err)
			}
		}
	}
	manifest := obs.NewManifest("wormsim", cfg.Seed, cfg.Manifest())
	if *metricsOut != "" {
		w, err := obs.CreateJSONL(*metricsOut)
		if err != nil {
			return fail(err)
		}
		defer w.Close()
		if err := w.Write(manifest); err != nil {
			return fail(err)
		}
		mwriter = w
		mlog = obs.NewMetricsLogger(w, reg)
	}
	if reg != nil {
		// The sample hook runs on the simulation goroutine every
		// -metrics-every cycles: publish the cycle for /healthz and append a
		// JSONL snapshot when -metrics-out is set.
		e.SetSampleHook(func(cycle int64) {
			lastCycle.Store(cycle)
			if mlog != nil {
				mlog.Snapshot(cycle)
			}
		})
	}

	// The supervisor's lifecycle state, published to /healthz.
	var supState atomic.Int32
	if *httpAddr != "" {
		mon := obs.NewMonitor(reg, manifest, lastCycle.Load)
		mon.SetStatus(func() string { return supervisor.State(supState.Load()).StateName() })
		if err := mon.Serve(*httpAddr); err != nil {
			return fail(err)
		}
		defer func() {
			if err := mon.Shutdown(2 * time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "monitor shutdown:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "monitor listening on http://%s (/metrics /snapshot /healthz /debug/pprof)\n", mon.Addr())
	}
	if *traceOut != "" {
		w, err := obs.CreateJSONL(*traceOut)
		if err != nil {
			return fail(err)
		}
		defer w.Close()
		if err := w.Write(manifest); err != nil {
			return fail(err)
		}
		listeners = append(listeners, obs.NewTraceSink(w))
	}
	var flight *obs.FlightRecorder
	if *flightOut != "" {
		w, err := obs.CreateJSONL(*flightOut)
		if err != nil {
			return fail(err)
		}
		defer w.Close()
		if err := w.Write(manifest); err != nil {
			return fail(err)
		}
		flight = obs.NewFlightRecorder(w, reg, obs.DefaultFlightCapacity,
			obs.DefaultFlightWindow, obs.DefaultFlightThreshold)
		if *flightSatThreshold > 0 {
			flight.SetSaturationTrigger(*flightSatWindow, *flightSatThreshold)
		}
		listeners = append(listeners, flight)
	}
	switch len(listeners) {
	case 0:
	case 1:
		e.SetListener(listeners[0])
	default:
		e.SetListener(listeners)
	}

	// Span instrumentation: aggregate into the registry, and fan finished
	// spans out to the trace-event file and/or the flight recorder.
	var spanJSON *obs.TraceJSONWriter
	if wantSpans {
		var sinks trace.MultiSpan
		if *spanOut != "" {
			tw, err := obs.CreateTraceJSON(*spanOut)
			if err != nil {
				return fail(err)
			}
			defer func() {
				if err := tw.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "span-out:", err)
				}
			}()
			spanJSON = tw
			sinks = append(sinks, tw)
		}
		if flight != nil {
			flight.RetainSpans(obs.DefaultFlightSpans)
			sinks = append(sinks, flight)
		}
		var sink trace.SpanSink
		switch len(sinks) {
		case 0:
		case 1:
			sink = sinks[0]
		default:
			sink = sinks
		}
		e.EnableSpans(reg, *spanEvery, sink)
	}

	if *progress {
		defer startProgress(&lastCycle, reg, cfg.TotalCycles(), e.Now())()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	// The supervised run: budgets, stall detection, panic containment and
	// graceful SIGINT/SIGTERM (both flush a final checkpoint when
	// -checkpoint is set, so the run is resumable from where it died).
	opts := supervisor.Options{
		WallBudget:  *wallBudget,
		CycleBudget: *cycleBudget,
		StallWindow: *stallWindow,
		Signals:     []os.Signal{os.Interrupt, syscall.SIGTERM},
		OnState:     func(s supervisor.State) { supState.Store(int32(s)) },
	}
	if *ckptPath != "" {
		opts.CheckpointEvery = *ckptEvery
		opts.Checkpoint = func(e *sim.Engine) error {
			s, err := e.Snapshot()
			if err != nil {
				return err
			}
			return checkpoint.WriteFile(*ckptPath, s)
		}
	}
	rep := supervisor.Run(e, opts)
	elapsed := rep.Wall
	ran := rep.EndCycle - rep.StartCycle
	if rep.CheckpointErr != nil {
		fmt.Fprintln(os.Stderr, "wormsim: final checkpoint failed:", rep.CheckpointErr)
	}

	if rep.Outcome != supervisor.Completed {
		// Partial runs still leave a structured trail: the JSONL stream gets
		// a terminal record, stderr gets the story and the resume hint.
		if mwriter != nil {
			rec := map[string]any{
				"t": "aborted", "outcome": rep.Outcome.String(), "cycle": e.Now(),
			}
			if rep.Err != nil {
				rec["error"] = rep.Err.Error()
			}
			if err := mwriter.Write(rec); err != nil {
				fmt.Fprintln(os.Stderr, "metrics-out:", err)
			}
		}
		fmt.Fprintf(os.Stderr, "wormsim: run %s at cycle %d (%d cycles in %v)\n",
			rep.Outcome, e.Now(), ran, elapsed.Round(time.Millisecond))
		if rep.Err != nil {
			fmt.Fprintln(os.Stderr, "wormsim:", rep.Err)
		}
		if *ckptPath != "" && rep.CheckpointErr == nil && rep.Outcome != supervisor.Crashed {
			fmt.Fprintf(os.Stderr, "wormsim: resume with -resume %s\n", *ckptPath)
		}
		if rep.Outcome == supervisor.Interrupted {
			return 130
		}
		return 1
	}
	r := rep.Result

	if mwriter != nil {
		if err := obs.WriteResult(mwriter, e.Now(), r); err != nil {
			fmt.Fprintln(os.Stderr, "metrics-out:", err)
			return 1
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fail(err)
		}
		runtime.GC() // settle the heap so the profile shows live state
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fail(err)
		}
		f.Close()
	}

	fmt.Printf("network        : %s, %d VCs x %d-flit buffers, routing=%s\n",
		e.Topology(), cfg.VCs, cfg.BufDepth, cfg.Routing)
	fmt.Printf("workload       : %s, %d-flit messages, offered %.4f flits/node/cycle\n",
		cfg.Pattern, cfg.MsgLen, cfg.Rate)
	fmt.Printf("limiter        : %s\n", cfg.LimiterName)
	fmt.Printf("avg latency    : %.1f cycles (std %.1f, p99 <= %.0f)\n",
		r.AvgLatency, r.StdLatency, r.P99Latency)
	fmt.Printf("net latency    : %.1f cycles (excl. source queue)\n", r.AvgNetLatency)
	fmt.Printf("accepted       : %.4f flits/node/cycle\n", r.Accepted)
	fmt.Printf("deadlocks      : %.3f%% of injected messages\n", r.DeadlockPct)
	fmt.Printf("messages       : generated %d, injected %d, delivered %d (window)\n",
		r.Generated, r.Injected, r.Delivered)
	fmt.Printf("fairness       : per-node injection deviation %.1f%% .. %+.1f%%\n",
		r.WorstNodeDev, r.BestNodeDev)
	sq, rq := e.QueueLengths()
	fmt.Printf("backlog        : %d queued, %d awaiting recovery, %d in flight\n",
		sq, rq, e.InFlight())
	if classes := e.Collector().ClassResults(); classes != nil {
		fmt.Printf("rogue nodes    : %v (offered %.2f flits/node/cycle each)\n",
			e.Rogues(), adv.RogueRate)
		for _, c := range classes {
			fmt.Printf("class %-8s : %d nodes, accepted %.4f flits/node/cycle, latency %.1f, delivered %d\n",
				c.Class, c.Nodes, c.Accepted, c.AvgLatency, c.Delivered)
		}
	}
	if faulty {
		l := e.Liveness()
		fmt.Printf("faults         : %d links, %d routers down at end; %d routing epoch(s)\n",
			l.DownLinks(), l.DownRouters(), e.Epoch())
		fmt.Printf("fault recovery : %d aborted, %d retried, %d dropped (whole run)\n",
			e.Aborted(), e.Retried(), e.Dropped())
	}
	if flight != nil {
		fmt.Printf("flight dumps   : %d dump(s) written to %s\n",
			flight.Dumps(), *flightOut)
	}
	if spanJSON != nil {
		fmt.Printf("spans          : %d sampled span(s) written to %s\n",
			spanJSON.Spans(), *spanOut)
	}
	fmt.Printf("simulated      : %d cycles in %v (%.0f cycles/s)\n",
		ran, elapsed.Round(time.Millisecond),
		float64(ran)/elapsed.Seconds())

	if *verbose {
		devs := e.Collector().Fairness().SortedDeviations()
		fmt.Println("\nper-node injection deviations (sorted):")
		for i, d := range devs {
			fmt.Printf("%8.2f%%", d)
			if (i+1)%8 == 0 {
				fmt.Println()
			}
		}
		fmt.Println()
	}
	return 0
}

// startProgress launches the stderr heartbeat goroutine and returns its stop
// function. It reads only the atomic cycle mirror (fed by the sample hook)
// and the registry's atomic counters, so it never races the simulation.
func startProgress(lastCycle *atomic.Int64, reg *metrics.Registry, total, start int64) func() {
	// Re-registering returns the engine's own counter handles (and keeps
	// their original help strings).
	delivered := reg.NewCounter("sim_messages_delivered_total", "")
	admitted := reg.NewCounter("sim_injection_admitted_total", "")
	denied := reg.NewCounter("sim_injection_denied_total", "")
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		prevCycle, prevAdm, prevDen := start, admitted.Value(), denied.Value()
		prevT := time.Now()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			now := time.Now()
			cycle := lastCycle.Load()
			cps := float64(cycle-prevCycle) / now.Sub(prevT).Seconds()
			adm, den := admitted.Value(), denied.Value()
			denyPct := 0.0
			if tries := (adm - prevAdm) + (den - prevDen); tries > 0 {
				denyPct = float64(den-prevDen) / float64(tries) * 100
			}
			eta := "?"
			if cps > 0 && total > cycle {
				eta = time.Duration(float64(total-cycle) / cps * float64(time.Second)).Round(time.Second).String()
			}
			pct := 0.0
			if total > 0 {
				pct = float64(cycle) / float64(total) * 100
			}
			fmt.Fprintf(os.Stderr, "progress: cycle %d/%d (%.1f%%)  %.0f cycles/s  delivered %d  deny %.1f%%  eta %s\n",
				cycle, total, pct, cps, delivered.Value(), denyPct, eta)
			prevCycle, prevAdm, prevDen, prevT = cycle, adm, den, now
		}
	}()
	return func() { close(stop); <-done }
}

// limiterByName resolves the CLI limiter flag, including the ALO ablation
// variants.
func limiterByName(name string) (core.Factory, error) {
	switch name {
	case "alo-rule-a":
		return core.NewRuleAOnly(), nil
	case "alo-rule-b":
		return core.NewRuleBOnly(), nil
	case "alo-all-channels":
		return core.NewAllChannels(), nil
	default:
		if f, ok := baseline.Factories()[name]; ok {
			return f, nil
		}
		return nil, fmt.Errorf("unknown limiter %q", name)
	}
}
