// Package fault implements deterministic, seed-driven fault injection for
// the wormhole simulator: timed schedules of link and router failures
// (permanent or transient), a planner that draws reproducible random
// schedules from a profile, and the source-retry policy (capped exponential
// backoff with a retry limit) applied to messages the faults kill.
//
// The package is pure description: it knows nothing about the simulation
// engine. internal/sim consumes a Schedule by applying its events at cycle
// boundaries to a topology.Liveness mask and tearing down the in-flight
// messages whose paths die; internal/routing filters dead channels out of
// the useful-channel set, so injection limiters (ALO in particular)
// automatically see the reduced capacity.
package fault

import (
	"fmt"
	"sort"

	"wormnet/internal/topology"
)

// Kind enumerates the fault event types.
type Kind int8

// Fault event kinds. Down events kill capacity; Up events restore it
// (transient faults are a Down/Up pair on the same component).
const (
	LinkDown Kind = iota
	LinkUp
	RouterDown
	RouterUp
)

// String returns the event kind's name.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case RouterDown:
		return "router-down"
	case RouterUp:
		return "router-up"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one timed fault occurrence. Node identifies the failed router,
// or — for link events — the node whose outgoing channel Port fails.
type Event struct {
	Cycle int64
	Kind  Kind
	Node  topology.NodeID
	Port  topology.Port // valid for link events only
}

// String formats the event as a log line.
func (e Event) String() string {
	if e.Kind == LinkDown || e.Kind == LinkUp {
		return fmt.Sprintf("[%8d] %-11s node %d port %d", e.Cycle, e.Kind, e.Node, e.Port)
	}
	return fmt.Sprintf("[%8d] %-11s node %d", e.Cycle, e.Kind, e.Node)
}

// Schedule is an ordered list of fault events. Build one with Add calls or
// the Plan helper; the simulation engine walks it once, applying events
// whose cycle has arrived at each cycle boundary.
type Schedule struct {
	events []Event
	sorted bool
}

// Add appends an event to the schedule.
func (s *Schedule) Add(ev Event) *Schedule {
	s.events = append(s.events, ev)
	s.sorted = false
	return s
}

// FailLink schedules a permanent failure of the unidirectional channel
// (node, port) at the given cycle.
func (s *Schedule) FailLink(cycle int64, node topology.NodeID, port topology.Port) *Schedule {
	return s.Add(Event{Cycle: cycle, Kind: LinkDown, Node: node, Port: port})
}

// RestoreLink schedules the repair of the channel (node, port).
func (s *Schedule) RestoreLink(cycle int64, node topology.NodeID, port topology.Port) *Schedule {
	return s.Add(Event{Cycle: cycle, Kind: LinkUp, Node: node, Port: port})
}

// FailRouter schedules a whole-router failure at the given cycle.
func (s *Schedule) FailRouter(cycle int64, node topology.NodeID) *Schedule {
	return s.Add(Event{Cycle: cycle, Kind: RouterDown, Node: node})
}

// RestoreRouter schedules the repair of a failed router.
func (s *Schedule) RestoreRouter(cycle int64, node topology.NodeID) *Schedule {
	return s.Add(Event{Cycle: cycle, Kind: RouterUp, Node: node})
}

// Events returns the schedule's events sorted by cycle (stable, so events
// added for the same cycle apply in insertion order).
func (s *Schedule) Events() []Event {
	if !s.sorted {
		sort.SliceStable(s.events, func(i, j int) bool {
			return s.events[i].Cycle < s.events[j].Cycle
		})
		s.sorted = true
	}
	return s.events
}

// Len returns the number of scheduled events.
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// Empty reports whether the schedule holds no events. A nil schedule is
// empty: an engine configured with one behaves exactly like the fault-free
// seed simulator.
func (s *Schedule) Empty() bool { return s.Len() == 0 }

// Validate checks that every event names a component of torus t.
func (s *Schedule) Validate(t *topology.Torus) error {
	if s == nil {
		return nil
	}
	for _, ev := range s.events {
		if ev.Cycle < 0 {
			return fmt.Errorf("fault: negative event cycle %d", ev.Cycle)
		}
		if !t.Valid(ev.Node) {
			return fmt.Errorf("fault: event names invalid node %d", ev.Node)
		}
		switch ev.Kind {
		case LinkDown, LinkUp, RouterDown, RouterUp:
		default:
			return fmt.Errorf("fault: unknown event kind %v", ev.Kind)
		}
		if ev.Kind == LinkDown || ev.Kind == LinkUp {
			if int(ev.Port) < 0 || int(ev.Port) >= t.NumPorts() {
				return fmt.Errorf("fault: event names invalid port %d", ev.Port)
			}
		}
	}
	return nil
}

// Profile parameterises the random schedule planner.
type Profile struct {
	// LinkFraction is the fraction of the network's unidirectional channels
	// (nodes * 2n of them) to fail, in [0, 1].
	LinkFraction float64
	// RouterFraction is the fraction of routers to fail, in [0, 1].
	RouterFraction float64
	// At is the cycle the first failure strikes.
	At int64
	// Stagger spreads the failures uniformly over [At, At+Stagger]; zero
	// makes them simultaneous.
	Stagger int64
	// TransientFraction is the fraction of failures that heal, in [0, 1];
	// each healing failure gets a matching Up event RepairAfter cycles
	// after its Down event.
	TransientFraction float64
	// RepairAfter is the outage length of transient failures, in cycles.
	RepairAfter int64
	// FlapCount makes transient failures flap: each healing component goes
	// down again FlapCount more times after its first repair, every
	// FlapPeriod cycles, healing after RepairAfter each time. Zero (the
	// default) keeps the single Down/Up pair.
	FlapCount int
	// FlapPeriod is the cycle distance between successive Down events of a
	// flapping component; it must exceed RepairAfter so the component is up
	// again before it re-fails.
	FlapPeriod int64
	// Seed drives the planner's (deterministic) randomness.
	Seed uint64
}

// Validate checks the profile's ranges.
func (p Profile) Validate() error {
	switch {
	case p.LinkFraction < 0 || p.LinkFraction > 1:
		return fmt.Errorf("fault: link fraction %v outside [0,1]", p.LinkFraction)
	case p.RouterFraction < 0 || p.RouterFraction > 1:
		return fmt.Errorf("fault: router fraction %v outside [0,1]", p.RouterFraction)
	case p.TransientFraction < 0 || p.TransientFraction > 1:
		return fmt.Errorf("fault: transient fraction %v outside [0,1]", p.TransientFraction)
	case p.At < 0 || p.Stagger < 0:
		return fmt.Errorf("fault: negative At or Stagger")
	case p.TransientFraction > 0 && p.RepairAfter < 1:
		return fmt.Errorf("fault: transient faults need RepairAfter >= 1")
	case p.FlapCount < 0:
		return fmt.Errorf("fault: negative flap count %d", p.FlapCount)
	case p.FlapCount > 0 && p.TransientFraction <= 0:
		return fmt.Errorf("fault: flapping needs TransientFraction > 0 (only healing failures can re-fail)")
	case p.FlapCount > 0 && p.FlapPeriod <= p.RepairAfter:
		return fmt.Errorf("fault: flap period %d must exceed RepairAfter %d", p.FlapPeriod, p.RepairAfter)
	}
	return nil
}

// Plan draws a reproducible random schedule from the profile: a seed-driven
// sample of round(LinkFraction * links) distinct channels and
// round(RouterFraction * nodes) distinct routers, failed at (staggered)
// cycles, a TransientFraction of them healing after RepairAfter cycles.
// With FlapCount > 0, each healing component re-fails FlapCount more times
// at FlapPeriod intervals (healing after RepairAfter each time), producing a
// link-flap storm. The same profile and torus always yield the same
// schedule.
func Plan(t *topology.Torus, p Profile) (*Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := newRNG(p.Seed)
	s := &Schedule{}

	nLinks := t.Nodes() * t.NumPorts()
	failLinks := int(p.LinkFraction*float64(nLinks) + 0.5)
	for _, li := range rng.sample(nLinks, failLinks) {
		node := topology.NodeID(li / t.NumPorts())
		port := topology.Port(li % t.NumPorts())
		down := p.At
		if p.Stagger > 0 {
			down += rng.int64n(p.Stagger + 1)
		}
		s.FailLink(down, node, port)
		if p.TransientFraction > 0 && rng.float64() < p.TransientFraction {
			s.RestoreLink(down+p.RepairAfter, node, port)
			for f := 1; f <= p.FlapCount; f++ {
				at := down + int64(f)*p.FlapPeriod
				s.FailLink(at, node, port)
				s.RestoreLink(at+p.RepairAfter, node, port)
			}
		}
	}

	failRtrs := int(p.RouterFraction*float64(t.Nodes()) + 0.5)
	for _, ni := range rng.sample(t.Nodes(), failRtrs) {
		node := topology.NodeID(ni)
		down := p.At
		if p.Stagger > 0 {
			down += rng.int64n(p.Stagger + 1)
		}
		s.FailRouter(down, node)
		if p.TransientFraction > 0 && rng.float64() < p.TransientFraction {
			s.RestoreRouter(down+p.RepairAfter, node)
			for f := 1; f <= p.FlapCount; f++ {
				at := down + int64(f)*p.FlapPeriod
				s.FailRouter(at, node)
				s.RestoreRouter(at+p.RepairAfter, node)
			}
		}
	}
	return s, nil
}

// RetryPolicy is the source-side reaction to a fault killing a message:
// re-enqueue it at its source after a capped exponential backoff, giving up
// (dropping the message) once the retry limit is exhausted.
type RetryPolicy struct {
	// MaxRetries is the number of re-injection attempts before the message
	// is dropped.
	MaxRetries int
	// BackoffBase is the delay before the first retry, in cycles; retry i
	// waits min(BackoffBase << i, BackoffCap) cycles.
	BackoffBase int64
	// BackoffCap bounds the exponential growth, in cycles.
	BackoffCap int64
}

// DefaultRetryPolicy returns the standard policy: 8 attempts starting at 16
// cycles, doubling up to a 1024-cycle cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 8, BackoffBase: 16, BackoffCap: 1024}
}

// Validate checks the policy's ranges.
func (p RetryPolicy) Validate() error {
	switch {
	case p.MaxRetries < 0:
		return fmt.Errorf("fault: negative retry limit %d", p.MaxRetries)
	case p.BackoffBase < 1:
		return fmt.Errorf("fault: backoff base %d < 1", p.BackoffBase)
	case p.BackoffCap < p.BackoffBase:
		return fmt.Errorf("fault: backoff cap %d below base %d", p.BackoffCap, p.BackoffBase)
	}
	return nil
}

// Delay returns the backoff before retry number attempt (0-based):
// min(BackoffBase << attempt, BackoffCap).
func (p RetryPolicy) Delay(attempt int) int64 {
	d := p.BackoffBase
	for i := 0; i < attempt; i++ {
		d <<= 1
		if d >= p.BackoffCap || d <= 0 { // <= 0 guards shift overflow
			return p.BackoffCap
		}
	}
	if d > p.BackoffCap {
		return p.BackoffCap
	}
	return d
}

// Exhausted reports whether a message that has already been retried
// attempts times must be dropped instead of retried again.
func (p RetryPolicy) Exhausted(attempts int) bool { return attempts >= p.MaxRetries }

// rng is a small SplitMix64 generator: the planner must not depend on
// math/rand's unspecified algorithm for cross-version reproducibility.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// int64n returns a uniform int64 in [0, n).
func (r *rng) int64n(n int64) int64 { return int64(r.next() % uint64(n)) }

// float64 returns a uniform float64 in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// sample draws k distinct values from [0, n) in random order
// (partial Fisher-Yates over the index range).
func (r *rng) sample(n, k int) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
