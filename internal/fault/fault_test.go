package fault

import (
	"reflect"
	"testing"

	"wormnet/internal/topology"
)

func TestScheduleOrdering(t *testing.T) {
	s := (&Schedule{}).
		FailLink(300, 2, 1).
		FailRouter(100, 5).
		RestoreLink(200, 2, 1).
		FailLink(100, 0, 0)
	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events want 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatalf("events not sorted by cycle: %v", evs)
		}
	}
	// Stable within a cycle: insertion order preserved.
	if evs[0].Kind != RouterDown || evs[1].Kind != LinkDown {
		t.Errorf("same-cycle order not stable: %v %v", evs[0], evs[1])
	}
	if s.Len() != 4 || s.Empty() {
		t.Errorf("Len/Empty wrong: %d %v", s.Len(), s.Empty())
	}
}

func TestScheduleNilSafe(t *testing.T) {
	var s *Schedule
	if s.Len() != 0 || !s.Empty() {
		t.Error("nil schedule must be empty")
	}
}

func TestScheduleValidate(t *testing.T) {
	tp := topology.New(4, 2)
	bad := []*Schedule{
		(&Schedule{}).FailLink(-1, 0, 0),                           // negative cycle
		(&Schedule{}).FailRouter(0, topology.NodeID(tp.Nodes())),   // node out of range
		(&Schedule{}).FailLink(0, 0, topology.Port(tp.NumPorts())), // port out of range
		(&Schedule{}).Add(Event{Cycle: 0, Kind: Kind(99)}),         // unknown kind
	}
	for i, s := range bad {
		if err := s.Validate(tp); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
	ok := (&Schedule{}).FailLink(0, 3, 2).RestoreLink(50, 3, 2).FailRouter(10, 15)
	if err := ok.Validate(tp); err != nil {
		t.Errorf("good schedule rejected: %v", err)
	}
}

func TestPlanDeterministicAndSized(t *testing.T) {
	tp := topology.New(4, 2)
	p := Profile{LinkFraction: 0.1, RouterFraction: 0.1, At: 5, Stagger: 20,
		TransientFraction: 0.5, RepairAfter: 100, Seed: 42}
	a, err := Plan(tp, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(tp, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same profile produced different schedules")
	}
	// 16 nodes * 4 ports = 64 links -> round(6.4) down events; 16 routers ->
	// round(1.6) down events.
	var linkDown, rtrDown, ups int
	downAt := map[Event]int64{}
	for _, ev := range a.Events() {
		switch ev.Kind {
		case LinkDown:
			linkDown++
			downAt[Event{Kind: LinkUp, Node: ev.Node, Port: ev.Port}] = ev.Cycle
		case RouterDown:
			rtrDown++
			downAt[Event{Kind: RouterUp, Node: ev.Node}] = ev.Cycle
		case LinkUp, RouterUp:
			ups++
			key := Event{Kind: ev.Kind, Node: ev.Node, Port: ev.Port}
			if dc, found := downAt[key]; !found || ev.Cycle != dc+p.RepairAfter {
				t.Errorf("repair %v not RepairAfter cycles after its failure", ev)
			}
		}
		if ev.Kind == LinkDown || ev.Kind == RouterDown {
			if ev.Cycle < p.At || ev.Cycle > p.At+p.Stagger {
				t.Errorf("failure %v outside [At, At+Stagger]", ev)
			}
		}
	}
	if linkDown != 6 || rtrDown != 2 {
		t.Errorf("got %d link / %d router failures, want 6 / 2", linkDown, rtrDown)
	}
	if ups == 0 {
		t.Error("TransientFraction 0.5 produced no repairs")
	}
	if err := a.Validate(tp); err != nil {
		t.Errorf("planned schedule invalid: %v", err)
	}
	// A different seed changes the plan.
	p2 := p
	p2.Seed = 43
	c, err := Plan(tp, p2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{LinkFraction: -0.1},
		{LinkFraction: 1.5},
		{RouterFraction: 2},
		{TransientFraction: -1},
		{At: -1},
		{Stagger: -1},
		{TransientFraction: 0.5, RepairAfter: 0},
	}
	for i, p := range bad {
		if _, err := Plan(topology.New(4, 2), p); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{MaxRetries: 4, BackoffBase: 16, BackoffCap: 100}
	want := []int64{16, 32, 64, 100, 100}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Errorf("Delay(%d) = %d want %d", i, got, w)
		}
	}
	// Large attempt counts must not overflow past the cap.
	if got := p.Delay(80); got != 100 {
		t.Errorf("Delay(80) = %d want cap 100", got)
	}
	if p.Exhausted(3) || !p.Exhausted(4) || !p.Exhausted(5) {
		t.Error("Exhausted boundary wrong")
	}
	if err := DefaultRetryPolicy().Validate(); err != nil {
		t.Errorf("default policy invalid: %v", err)
	}
	bad := []RetryPolicy{
		{MaxRetries: -1, BackoffBase: 1, BackoffCap: 1},
		{MaxRetries: 1, BackoffBase: 0, BackoffCap: 1},
		{MaxRetries: 1, BackoffBase: 8, BackoffCap: 4},
	}
	for i, bp := range bad {
		if err := bp.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestKindAndEventStrings(t *testing.T) {
	for _, k := range []Kind{LinkDown, LinkUp, RouterDown, RouterUp} {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	ev := Event{Cycle: 7, Kind: LinkDown, Node: 3, Port: 1}
	if ev.String() == "" {
		t.Error("event String empty")
	}
}

// TestRetryPolicyDelayOverflow drives Delay into the shift-overflow regime:
// with a cap too large to stop the doubling early, the accumulated delay
// overflows int64 sign (base 16 does so at attempt 59, reaching 2^63) and
// then shifts through zero. The d <= 0 guard must clamp every such attempt
// to the cap instead of returning a negative or zero backoff.
func TestRetryPolicyDelayOverflow(t *testing.T) {
	const maxCap = int64(^uint64(0) >> 1)
	p := RetryPolicy{MaxRetries: 100, BackoffBase: 16, BackoffCap: maxCap}
	for attempt := 59; attempt <= 200; attempt++ {
		if got := p.Delay(attempt); got != maxCap {
			t.Fatalf("Delay(%d) = %d want cap %d", attempt, got, maxCap)
		}
	}
	// Below the overflow horizon the plain doubling is still exact.
	if got := p.Delay(10); got != 16<<10 {
		t.Errorf("Delay(10) = %d want %d", p.Delay(10), int64(16<<10))
	}
	// Base 1 overflows one shift later (2^63 at attempt 63); the zero state
	// after a further shift must also clamp, never return 0.
	p1 := RetryPolicy{MaxRetries: 100, BackoffBase: 1, BackoffCap: maxCap}
	for attempt := 63; attempt <= 130; attempt++ {
		if got := p1.Delay(attempt); got <= 0 || got != maxCap {
			t.Fatalf("base-1 Delay(%d) = %d want cap %d", attempt, got, maxCap)
		}
	}
}

// TestRetryPolicyValidateBoundaries pins the edges of the Validate ranges:
// zero retries (drop on first kill) and base == cap are both legal.
func TestRetryPolicyValidateBoundaries(t *testing.T) {
	good := []RetryPolicy{
		{MaxRetries: 0, BackoffBase: 1, BackoffCap: 1},
		{MaxRetries: 1, BackoffBase: 64, BackoffCap: 64},
		{MaxRetries: 1 << 20, BackoffBase: 1, BackoffCap: 1<<63 - 1},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("good policy %d rejected: %v", i, err)
		}
	}
	// base == cap: Delay must return the base for every attempt.
	p := RetryPolicy{MaxRetries: 4, BackoffBase: 64, BackoffCap: 64}
	for _, attempt := range []int{0, 1, 5, 100} {
		if got := p.Delay(attempt); got != 64 {
			t.Errorf("Delay(%d) = %d want 64", attempt, got)
		}
	}
	// MaxRetries 0 drops immediately.
	if !(RetryPolicy{MaxRetries: 0, BackoffBase: 1, BackoffCap: 1}).Exhausted(0) {
		t.Error("MaxRetries 0 must be exhausted at attempt 0")
	}
}

// TestPlanFlaps checks the flap extension of the planner: every healing
// component re-fails FlapCount more times, FlapPeriod apart, each outage
// healing after RepairAfter cycles.
func TestPlanFlaps(t *testing.T) {
	tp := topology.New(4, 2)
	p := Profile{LinkFraction: 0.05, At: 100, TransientFraction: 1,
		RepairAfter: 50, FlapCount: 3, FlapPeriod: 200, Seed: 9}
	s, err := Plan(tp, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(tp); err != nil {
		t.Fatalf("flap schedule invalid: %v", err)
	}
	// 64 links * 0.05 -> 3 components; each contributes 1 + FlapCount downs
	// and as many ups.
	type comp struct {
		node topology.NodeID
		port topology.Port
	}
	downs := map[comp][]int64{}
	ups := map[comp][]int64{}
	for _, ev := range s.Events() {
		c := comp{ev.Node, ev.Port}
		switch ev.Kind {
		case LinkDown:
			downs[c] = append(downs[c], ev.Cycle)
		case LinkUp:
			ups[c] = append(ups[c], ev.Cycle)
		}
	}
	if len(downs) != 3 {
		t.Fatalf("got %d flapping components, want 3", len(downs))
	}
	for c, d := range downs {
		u := ups[c]
		if len(d) != 4 || len(u) != 4 {
			t.Fatalf("component %v: %d downs / %d ups, want 4 / 4", c, len(d), len(u))
		}
		for i := range d {
			if i > 0 && d[i]-d[i-1] != p.FlapPeriod {
				t.Errorf("component %v: downs %d apart, want %d", c, d[i]-d[i-1], p.FlapPeriod)
			}
			if u[i] != d[i]+p.RepairAfter {
				t.Errorf("component %v: up at %d, want %d", c, u[i], d[i]+p.RepairAfter)
			}
		}
	}
	// Flap validation boundaries: flaps need transience and a period longer
	// than the outage.
	bad := []Profile{
		{LinkFraction: 0.1, FlapCount: -1},
		{LinkFraction: 0.1, FlapCount: 2, FlapPeriod: 100},
		{LinkFraction: 0.1, TransientFraction: 1, RepairAfter: 50, FlapCount: 2, FlapPeriod: 50},
	}
	for i, bp := range bad {
		if err := bp.Validate(); err == nil {
			t.Errorf("bad flap profile %d accepted", i)
		}
	}
}
