// Package baseline implements the injection-limitation mechanisms the paper
// compares ALO against:
//
//   - None — no limitation (the paper's "no mechanism" curves),
//   - LF — the Linear-Function threshold mechanism of López, Martínez,
//     Duato & Petrini (PCRCW'97),
//   - DRIL — the dynamically self-computed threshold mechanism of López,
//     Martínez & Duato (ICPP'98).
//
// LF and DRIL are re-implemented from their summary in §2 of the reproduced
// paper (the original papers are not part of this reproduction): both
// estimate local traffic by counting busy virtual output channels and
// throttle injection when the count crosses a threshold. LF derives its
// threshold from a running estimate of how many channels the current
// destination distribution makes useful; DRIL lets every node freeze its
// own threshold the moment it locally observes the network entering
// saturation — which is what makes it unfair: nodes that trigger early
// throttle themselves, relieving the network so that other nodes trigger
// later with a more permissive threshold, or never.
package baseline

import (
	"fmt"
	"math"

	"wormnet/internal/core"
	"wormnet/internal/topology"
)

// None imposes no injection restriction.
type None struct{}

// NewNone returns the no-limitation factory.
func NewNone() core.Factory {
	return func(topology.NodeID, *topology.Torus, int) core.Limiter { return None{} }
}

// Allow implements core.Limiter; it always permits injection.
func (None) Allow(core.ChannelView, topology.NodeID) bool { return true }

// Name implements core.Limiter.
func (None) Name() string { return "none" }

// busyVCs counts the allocated virtual output channels of the whole node.
func busyVCs(v core.ChannelView) int {
	busy := 0
	for p := 0; p < v.NumPorts(); p++ {
		busy += v.VCs() - v.FreeVCs(topology.Port(p))
	}
	return busy
}

// LF is the Linear-Function mechanism: a message is injected only if the
// number of busy virtual output channels of its node is below a threshold
// that is a linear function of the node's estimate of how many channels the
// current destination distribution makes useful (an EWMA over the useful
// -port counts of its generated messages). A bounded aging term relaxes the
// threshold for long-waiting queue heads, which keeps nodes inside
// persistently hot regions from starving without disabling the throttle.
type LF struct {
	vcs      int
	ports    int
	alpha    float64 // slope of the linear threshold function
	beta     float64 // intercept of the linear threshold function
	estAvg   float64 // EWMA of useful-port counts of generated messages
	estValid bool
}

// LF tuning constants. Alpha scales the estimated number of useful virtual
// output channels into a busy-channel threshold; Beta is the intercept;
// ewmaWeight is the weight of the newest sample in the useful-port EWMA.
// agingCycles implements starvation avoidance: for every such period the
// queue head has waited, the threshold relaxes by one busy channel, up to
// agingCap extra channels — this bounds LF's unfairness at the level the
// original reports (≲20%) without disabling the mechanism outright under
// sustained extreme overload.
const (
	lfAlpha       = 1.25
	lfBeta        = 0.0
	lfEWMAWeight  = 0.05
	lfAgingCycles = 400
	lfAgingCap    = 5
)

// NewLF returns the Linear-Function limiter factory with the package's
// default tuning.
func NewLF() core.Factory {
	return func(_ topology.NodeID, t *topology.Torus, vcs int) core.Limiter {
		return &LF{vcs: vcs, ports: 2 * t.N(), alpha: lfAlpha, beta: lfBeta}
	}
}

// Allow implements core.Limiter.
func (l *LF) Allow(v core.ChannelView, dst topology.NodeID) bool {
	ports := v.UsefulPorts(dst)
	useful := len(ports)
	// Update the destination-distribution guess with this message's
	// useful-port count.
	if !l.estValid {
		l.estAvg = float64(useful)
		l.estValid = true
	} else {
		l.estAvg += lfEWMAWeight * (float64(useful) - l.estAvg)
	}
	threshold := l.alpha*l.estAvg*float64(l.vcs) + l.beta
	if max := float64(l.ports * l.vcs); threshold > max {
		threshold = max
	}
	if threshold < float64(l.vcs) {
		threshold = float64(l.vcs)
	}
	// Starvation avoidance: relax the threshold as the queue head ages, up
	// to a bounded number of extra channels. Without relief, nodes inside
	// persistently hot regions never see the busy count drop below any
	// fixed threshold and starve outright; the cap keeps the relief from
	// disabling the mechanism under sustained overload.
	aging := v.HeadWait() / lfAgingCycles
	if aging > lfAgingCap {
		aging = lfAgingCap
	}
	threshold += float64(aging)
	return float64(busyVCs(v)) < threshold
}

// Name implements core.Limiter.
func (l *LF) Name() string { return "lf" }

// SaveState implements core.StatefulLimiter: the useful-port EWMA and its
// validity flag. Tuning constants and geometry are reconstructed by the
// factory, not serialized.
func (l *LF) SaveState() []uint64 {
	valid := uint64(0)
	if l.estValid {
		valid = 1
	}
	return []uint64{math.Float64bits(l.estAvg), valid}
}

// LoadState implements core.StatefulLimiter.
func (l *LF) LoadState(s []uint64) error {
	if len(s) != 2 {
		return fmt.Errorf("baseline: lf state has %d words, want 2", len(s))
	}
	l.estAvg = math.Float64frombits(s[0])
	l.estValid = s[1] != 0
	return nil
}

// DRIL is the dynamically-reduced injection limitation mechanism. Every
// node starts unrestricted. When a node locally detects that the network is
// entering saturation — its source queue persistently exceeds a trigger
// length — it freezes a threshold computed from the number of busy virtual
// output channels it observes at that instant, and from then on injects
// only while the busy count stays below its private threshold. Nodes
// re-trigger (and tighten the threshold) if their queue keeps growing.
type DRIL struct {
	vcs   int
	ports int

	triggered bool
	threshold int

	// queueHigh counts consecutive Tick cycles with a long source queue.
	queueHigh int
	// cooldown prevents immediate re-triggering after a tightening step.
	cooldown int
}

// DRIL tuning constants: a node triggers after its source queue has held at
// least drilQueueTrigger messages for drilPersistCycles consecutive cycles;
// subsequent triggers tighten the threshold by one busy channel, no earlier
// than drilCooldown cycles after the previous tightening.
const (
	drilQueueTrigger   = 4
	drilPersistCycles  = 16
	drilCooldown       = 512
	drilThresholdScale = 0.75
)

// NewDRIL returns the DRIL limiter factory with the package's default
// tuning.
func NewDRIL() core.Factory {
	return func(_ topology.NodeID, t *topology.Torus, vcs int) core.Limiter {
		return &DRIL{vcs: vcs, ports: 2 * t.N()}
	}
}

// Allow implements core.Limiter.
func (d *DRIL) Allow(v core.ChannelView, _ topology.NodeID) bool {
	if !d.triggered {
		return true
	}
	return busyVCs(v) < d.threshold
}

// Tick implements core.CycleObserver: it watches the node's source queue
// for the saturation-onset signal and (re)computes the threshold.
func (d *DRIL) Tick(v core.ChannelView, _ int64) {
	if d.cooldown > 0 {
		d.cooldown--
	}
	if v.QueuedMessages() >= drilQueueTrigger {
		d.queueHigh++
	} else {
		d.queueHigh = 0
	}
	if d.queueHigh < drilPersistCycles || d.cooldown > 0 {
		return
	}
	if !d.triggered {
		// Entering saturation: freeze the threshold from the busy count
		// observed right now.
		d.triggered = true
		d.threshold = int(drilThresholdScale * float64(busyVCs(v)))
		if d.threshold < 1 {
			d.threshold = 1
		}
	} else if d.threshold > 1 {
		// Still saturating under the current threshold: tighten.
		d.threshold--
	}
	d.cooldown = drilCooldown
	d.queueHigh = 0
}

// Name implements core.Limiter.
func (d *DRIL) Name() string { return "dril" }

// SaveState implements core.StatefulLimiter: the trigger flag, frozen
// threshold and the two cycle counters.
func (d *DRIL) SaveState() []uint64 {
	trig := uint64(0)
	if d.triggered {
		trig = 1
	}
	return []uint64{trig, uint64(d.threshold), uint64(d.queueHigh), uint64(d.cooldown)}
}

// LoadState implements core.StatefulLimiter.
func (d *DRIL) LoadState(s []uint64) error {
	if len(s) != 4 {
		return fmt.Errorf("baseline: dril state has %d words, want 4", len(s))
	}
	d.triggered = s[0] != 0
	d.threshold = int(s[1])
	d.queueHigh = int(s[2])
	d.cooldown = int(s[3])
	return nil
}

// Compile-time interface checks: the stateful baselines are snapshot-aware.
var (
	_ core.StatefulLimiter = (*LF)(nil)
	_ core.StatefulLimiter = (*DRIL)(nil)
)

// Threshold returns DRIL's current busy-channel threshold and whether the
// node has triggered at all. Exposed for tests and fairness analyses.
func (d *DRIL) Threshold() (int, bool) { return d.threshold, d.triggered }

// Factories returns the limiter factories of the paper's §4.2 comparison,
// keyed by mechanism name: none, lf, dril and alo.
func Factories() map[string]core.Factory {
	return map[string]core.Factory{
		"none": NewNone(),
		"lf":   NewLF(),
		"dril": NewDRIL(),
		"alo":  core.NewALO(),
	}
}
