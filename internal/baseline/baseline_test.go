package baseline

import (
	"testing"

	"wormnet/internal/core"
	"wormnet/internal/topology"
)

// fakeView mirrors the test double used in internal/core.
type fakeView struct {
	useful   []topology.Port
	free     map[topology.Port]int
	vcs      int
	ports    int
	queued   int
	headWait int64
}

func (f *fakeView) HeadWait() int64 { return f.headWait }

func (f *fakeView) UsefulPorts(topology.NodeID) []topology.Port { return f.useful }
func (f *fakeView) FreeVCs(p topology.Port) int                 { return f.free[p] }
func (f *fakeView) VCs() int                                    { return f.vcs }
func (f *fakeView) NumPorts() int                               { return f.ports }
func (f *fakeView) QueuedMessages() int                         { return f.queued }

func allFree(ports, vcs int) map[topology.Port]int {
	m := map[topology.Port]int{}
	for p := 0; p < ports; p++ {
		m[topology.Port(p)] = vcs
	}
	return m
}

func TestNone(t *testing.T) {
	lim := NewNone()(0, topology.New(8, 3), 3)
	if lim.Name() != "none" {
		t.Fatal("name")
	}
	v := &fakeView{vcs: 3, ports: 6, free: map[topology.Port]int{}} // everything busy
	if !lim.Allow(v, 1) {
		t.Error("None must always allow")
	}
}

func TestLFAllowsWhenIdle(t *testing.T) {
	tp := topology.New(8, 3)
	lim := NewLF()(0, tp, 3)
	if lim.Name() != "lf" {
		t.Fatal("name")
	}
	v := &fakeView{
		useful: []topology.Port{0, 2, 4},
		free:   allFree(6, 3),
		vcs:    3, ports: 6,
	}
	if !lim.Allow(v, 1) {
		t.Error("LF must allow on an idle node")
	}
}

func TestLFThrottlesWhenBusy(t *testing.T) {
	tp := topology.New(8, 3)
	lim := NewLF()(0, tp, 3)
	// 3 useful ports -> estimate ~3 useful channels -> threshold
	// ~1.25*3*3 = 11.25 busy channels. With all 18 channels busy the node
	// must throttle.
	v := &fakeView{
		useful: []topology.Port{0, 2, 4},
		free:   map[topology.Port]int{}, // all busy
		vcs:    3, ports: 6,
	}
	if lim.Allow(v, 1) {
		t.Error("LF must throttle a fully busy node")
	}
}

func TestLFAdaptsToPattern(t *testing.T) {
	tp := topology.New(8, 3)
	lim := NewLF()(0, tp, 3).(*LF)
	// Butterfly-like traffic: only 2 useful ports. After enough samples the
	// threshold drops to ~1.25*2*3 = 7.5.
	busy10 := map[topology.Port]int{ // 10 busy of 18: free 8
		0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 5: 1,
	}
	v := &fakeView{useful: []topology.Port{0, 3}, free: busy10, vcs: 3, ports: 6}
	var last bool
	for i := 0; i < 200; i++ {
		last = lim.Allow(v, 1)
	}
	if last {
		t.Error("LF should throttle 10 busy channels under a 2-port pattern")
	}
	// Uniform-like traffic with 6 useful ports: threshold ~22.5 (clamped to
	// 18), so the same busy level passes.
	lim2 := NewLF()(0, tp, 3).(*LF)
	v2 := &fakeView{useful: []topology.Port{0, 1, 2, 3, 4, 5}, free: busy10, vcs: 3, ports: 6}
	var ok bool
	for i := 0; i < 200; i++ {
		ok = lim2.Allow(v2, 1)
	}
	if !ok {
		t.Error("LF should pass 10 busy channels under a 6-port pattern")
	}
}

func TestDRILStartsUnrestricted(t *testing.T) {
	tp := topology.New(8, 3)
	lim := NewDRIL()(0, tp, 3).(*DRIL)
	if lim.Name() != "dril" {
		t.Fatal("name")
	}
	v := &fakeView{vcs: 3, ports: 6, free: map[topology.Port]int{}}
	if !lim.Allow(v, 1) {
		t.Error("untriggered DRIL must allow everything")
	}
	if _, trig := lim.Threshold(); trig {
		t.Error("must start untriggered")
	}
}

func TestDRILTriggersOnPersistentQueue(t *testing.T) {
	tp := topology.New(8, 3)
	lim := NewDRIL()(0, tp, 3).(*DRIL)
	// 12 of 18 channels busy at trigger time.
	v := &fakeView{
		vcs: 3, ports: 6, queued: drilQueueTrigger,
		free: map[topology.Port]int{0: 1, 1: 1, 2: 1, 3: 1, 4: 1, 5: 1},
	}
	for c := int64(0); c < drilPersistCycles; c++ {
		lim.Tick(v, c)
	}
	th, trig := lim.Threshold()
	if !trig {
		t.Fatal("DRIL did not trigger after persistent queue growth")
	}
	want := int(drilThresholdScale * 12)
	if th != want {
		t.Errorf("threshold %d want %d", th, want)
	}
	// Now more channels busy than the threshold -> throttle.
	if lim.Allow(v, 1) {
		t.Error("triggered DRIL must throttle above threshold")
	}
	// Relief: only 2 busy -> allow.
	v2 := &fakeView{vcs: 3, ports: 6, free: map[topology.Port]int{0: 2, 1: 3, 2: 3, 3: 3, 4: 3, 5: 3}}
	if !lim.Allow(v2, 1) {
		t.Error("DRIL must allow below threshold")
	}
}

func TestDRILQueueResetPreventsTrigger(t *testing.T) {
	tp := topology.New(8, 3)
	lim := NewDRIL()(0, tp, 3).(*DRIL)
	busy := &fakeView{vcs: 3, ports: 6, queued: drilQueueTrigger, free: allFree(6, 3)}
	idle := &fakeView{vcs: 3, ports: 6, queued: 0, free: allFree(6, 3)}
	// Queue repeatedly dips below the trigger before persisting long enough.
	for i := 0; i < 10*drilPersistCycles; i++ {
		if i%(drilPersistCycles-1) == 0 {
			lim.Tick(idle, int64(i))
		} else {
			lim.Tick(busy, int64(i))
		}
	}
	if _, trig := lim.Threshold(); trig {
		t.Error("intermittent queue growth must not trigger DRIL")
	}
}

func TestDRILTightensOnRetrigger(t *testing.T) {
	tp := topology.New(8, 3)
	lim := NewDRIL()(0, tp, 3).(*DRIL)
	v := &fakeView{
		vcs: 3, ports: 6, queued: drilQueueTrigger,
		free: map[topology.Port]int{0: 1, 1: 1, 2: 1, 3: 1, 4: 1, 5: 1},
	}
	// First trigger.
	for c := int64(0); c < drilPersistCycles; c++ {
		lim.Tick(v, c)
	}
	first, _ := lim.Threshold()
	// Keep the queue high past the cooldown: threshold tightens by one.
	for c := int64(0); c < drilCooldown+drilPersistCycles+1; c++ {
		lim.Tick(v, c)
	}
	second, _ := lim.Threshold()
	if second != first-1 {
		t.Errorf("threshold after retrigger %d want %d", second, first-1)
	}
}

func TestDRILThresholdFloor(t *testing.T) {
	tp := topology.New(8, 3)
	lim := NewDRIL()(0, tp, 3).(*DRIL)
	// Trigger with everything free: busy=0 -> floor of 1.
	v := &fakeView{vcs: 3, ports: 6, queued: drilQueueTrigger, free: allFree(6, 3)}
	for c := int64(0); c < drilPersistCycles; c++ {
		lim.Tick(v, c)
	}
	if th, _ := lim.Threshold(); th != 1 {
		t.Errorf("threshold %d want floor 1", th)
	}
}

func TestFactories(t *testing.T) {
	fs := Factories()
	for _, name := range []string{"none", "lf", "dril", "alo"} {
		f, ok := fs[name]
		if !ok {
			t.Fatalf("missing factory %q", name)
		}
		lim := f(0, topology.New(4, 2), 3)
		if lim.Name() != name {
			t.Errorf("factory %q built limiter %q", name, lim.Name())
		}
	}
}

// All limiters must satisfy core.Limiter; DRIL must also observe cycles.
var (
	_ core.Limiter       = None{}
	_ core.Limiter       = (*LF)(nil)
	_ core.Limiter       = (*DRIL)(nil)
	_ core.CycleObserver = (*DRIL)(nil)
)
