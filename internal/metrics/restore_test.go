package metrics

import "testing"

// TestRestore pins the snapshot → fresh-registry path used after a
// checkpoint restore: values are *set*, not accumulated, metrics missing
// from the target are created, and histogram bounds are validated.
func TestRestore(t *testing.T) {
	src := NewRegistry()
	src.NewCounter("c", "").Add(42)
	src.NewGauge("g", "").Set(3.25)
	h := src.NewHistogram("h", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500, 7} {
		h.Observe(v)
	}
	samples := src.Snapshot()

	// Restore into a registry where the engine already re-registered the
	// metrics at their zero values (the RestoreEngine + EnableMetrics order),
	// with a non-zero counter to prove Set semantics.
	dst := NewRegistry()
	dst.NewCounter("c", "").Add(7)
	dst.NewGauge("g", "")
	dst.NewHistogram("h", "", []float64{1, 10, 100})
	if err := dst.Restore(samples); err != nil {
		t.Fatal(err)
	}
	if got := dst.NewCounter("c", "").Value(); got != 42 {
		t.Errorf("counter = %d, want 42 (Restore must set, not add)", got)
	}
	if got := dst.NewGauge("g", "").Value(); got != 3.25 {
		t.Errorf("gauge = %v, want 3.25", got)
	}
	rh := dst.NewHistogram("h", "", []float64{1, 10, 100})
	if rh.Count() != h.Count() || rh.Sum() != h.Sum() {
		t.Errorf("histogram count/sum = %d/%v, want %d/%v", rh.Count(), rh.Sum(), h.Count(), h.Sum())
	}

	// Restoring into an empty registry creates everything.
	empty := NewRegistry()
	if err := empty.Restore(samples); err != nil {
		t.Fatal(err)
	}
	if got, want := len(empty.Names()), len(src.Names()); got != want {
		t.Errorf("restore created %d metrics, want %d", got, want)
	}

	// Mismatched histogram bounds fail loudly.
	clash := NewRegistry()
	clash.NewHistogram("h", "", []float64{2, 4})
	if err := clash.Restore(samples); err == nil {
		t.Error("restoring a histogram over different bounds succeeded")
	}
	// Nil registry: documented no-op.
	var nilReg *Registry
	if err := nilReg.Restore(samples); err != nil {
		t.Errorf("nil registry restore: %v", err)
	}
}
