package metrics

import (
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.NewCounter("c", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "", []float64{1})
	c.Inc()
	c.Add(5)
	c.Set(9)
	g.Set(1.5)
	g.SetInt(2)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if r.Snapshot() != nil || r.Names() != nil {
		t.Fatal("nil registry must snapshot empty")
	}
	r.Merge(NewRegistry()) // must not panic
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("worms_total", "help text")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c.Set(17)
	if got := c.Value(); got != 17 {
		t.Fatalf("counter after Set = %d, want 17", got)
	}
	g := r.NewGauge("depth", "")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	// Re-registration returns the same instances.
	if r.NewCounter("worms_total", "") != c || r.NewGauge("depth", "") != g {
		t.Fatal("re-registration must return the existing metric")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1556.5 {
		t.Fatalf("sum = %v, want 1556.5", h.Sum())
	}
	s := snap(t, r, "lat")
	want := []int64{2, 1, 1, 2} // <=1, <=10, <=100, +Inf
	for i, n := range want {
		if s.Count[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Count[i], n, s.Count)
		}
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on non-ascending bounds")
		}
	}()
	NewRegistry().NewHistogram("h", "", []float64{1, 1})
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on kind mismatch")
		}
	}()
	r.NewGauge("x", "")
}

func TestSnapshotOrder(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b", "")
	r.NewGauge("a", "")
	r.NewHistogram("c", "", []float64{1})
	s := r.Snapshot()
	if len(s) != 3 || s[0].Name != "b" || s[1].Name != "a" || s[2].Name != "c" {
		t.Fatalf("snapshot must preserve registration order, got %+v", s)
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Names must sort, got %v", names)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.NewCounter("n", "").Add(3)
	b.NewCounter("n", "").Add(4)
	a.NewGauge("g", "").Set(1)
	b.NewGauge("g", "").Set(9)
	b.NewGauge("only_b", "").Set(7)
	ha := a.NewHistogram("h", "", []float64{10})
	hb := b.NewHistogram("h", "", []float64{10})
	ha.Observe(5)
	hb.Observe(50)

	a.Merge(b)
	if got := a.NewCounter("n", "").Value(); got != 7 {
		t.Fatalf("merged counter = %d, want 7", got)
	}
	if got := a.NewGauge("g", "").Value(); got != 1 {
		t.Fatalf("merged gauge = %v, want receiver's 1", got)
	}
	if got := a.NewGauge("only_b", "").Value(); got != 7 {
		t.Fatalf("adopted gauge = %v, want 7", got)
	}
	s := snap(t, a, "h")
	if s.N != 2 || s.Sum != 55 || s.Count[0] != 1 || s.Count[1] != 1 {
		t.Fatalf("merged histogram wrong: %+v", s)
	}
}

// TestMergeEdgeCases covers the degenerate merge shapes the campaign
// aggregator can hit: an empty source (no-op), an empty receiver (pure
// adoption), nil registries on either side, and a single-bucket histogram
// (one bound, two counters: the bucket and the implicit +Inf).
func TestMergeEdgeCases(t *testing.T) {
	// Empty source into a populated receiver: nothing changes.
	a := NewRegistry()
	a.NewCounter("n", "").Add(3)
	a.NewHistogram("h", "", []float64{10}).Observe(5)
	a.Merge(NewRegistry())
	if got := a.NewCounter("n", "").Value(); got != 3 {
		t.Fatalf("merge of empty source changed counter: %d", got)
	}
	if s := snap(t, a, "h"); s.N != 1 || s.Sum != 5 {
		t.Fatalf("merge of empty source changed histogram: %+v", s)
	}

	// Populated source into an empty receiver: everything is adopted.
	b := NewRegistry()
	b.Merge(a)
	if got := b.NewCounter("n", "").Value(); got != 3 {
		t.Fatalf("empty receiver adopted counter = %d, want 3", got)
	}
	if s := snap(t, b, "h"); s.N != 1 || s.Sum != 5 || len(s.Bound) != 1 {
		t.Fatalf("empty receiver adopted histogram wrong: %+v", s)
	}

	// Nil on either side is a no-op, not a panic.
	var nilReg *Registry
	nilReg.Merge(a)
	a.Merge(nilReg)
	if got := a.NewCounter("n", "").Value(); got != 3 {
		t.Fatalf("nil merge changed counter: %d", got)
	}

	// Single-bucket histograms merge bucket-by-bucket including +Inf.
	x, y := NewRegistry(), NewRegistry()
	hx := x.NewHistogram("s", "", []float64{1})
	hy := y.NewHistogram("s", "", []float64{1})
	hx.Observe(0.5) // bucket 0
	hy.Observe(2)   // +Inf bucket
	hy.Observe(1)   // bucket 0 (inclusive upper bound)
	x.Merge(y)
	s := snap(t, x, "s")
	if s.N != 3 || s.Count[0] != 2 || s.Count[1] != 1 || s.Sum != 3.5 {
		t.Fatalf("single-bucket merge wrong: %+v", s)
	}
}

func TestMergeBoundsMismatchPanics(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.NewHistogram("h", "", []float64{1})
	b.NewHistogram("h", "", []float64{2}).Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on mismatched bounds")
		}
	}()
	a.Merge(b)
}

// TestConcurrentUpdates exercises the atomic paths under the race detector:
// writers hammer every metric type while a reader snapshots.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "", []float64{1, 2, 3})
	const writers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetInt(int64(i))
				h.Observe(float64(i % 5))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != writers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), writers*per)
	}
	if h.Count() != writers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), writers*per)
	}
}

// snap returns the named sample from a fresh snapshot.
func snap(t *testing.T, r *Registry, name string) Sample {
	t.Helper()
	for _, s := range r.Snapshot() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("metric %q not in snapshot", name)
	return Sample{}
}
