// Package metrics is the simulator's live-instrumentation substrate: a
// registry of named counters, gauges and fixed-bucket histograms that the
// engine updates from its hot path and the export layer (internal/obs)
// reads concurrently.
//
// Design constraints, in order:
//
//   - Zero allocation on the update path. Counter.Inc, Gauge.Set and
//     Histogram.Observe are single atomic operations (a short CAS loop for
//     histogram sums) on memory allocated at registration time.
//   - Nil-guarded. Every update method is safe on a nil receiver and does
//     nothing, so a disabled engine carries nil metric pointers and pays one
//     predictable branch per instrumentation site — no interface calls, no
//     no-op objects.
//   - Concurrent-read safe. Exporters may Snapshot a registry while the
//     simulation mutates it; values are read atomically (a snapshot is
//     per-metric consistent, not cross-metric consistent, which is the
//     usual Prometheus contract).
//   - Mergeable. Registries from replica runs (or sharded collectors) fold
//     together with Merge: counters and histograms accumulate, gauges —
//     instantaneous readings — keep the receiver's value.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates the metric types in snapshots.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus type name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Counter is a monotonically increasing count. The zero value is usable;
// all methods are safe on a nil receiver (no-ops reading zero).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 to keep the counter monotone; negative n is
// ignored).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Set overwrites the counter's value. It exists for mirroring an external
// monotone total (e.g. the engine's delivered-message count) into the
// registry at sampling points; the caller is responsible for monotonicity.
func (c *Counter) Set(n int64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Value returns the current count (zero on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 reading. The zero value is usable; all
// methods are safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetInt overwrites the gauge with an integer reading.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Value returns the current reading (zero on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: bounds are the ascending
// inclusive upper bounds, with an implicit +Inf bucket at the end. All
// storage is allocated at construction; Observe is allocation-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; counts[i] <= bounds[i], last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// newHistogram builds a histogram over the given ascending upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (~10) and usually hit early, so
	// this beats a branchy binary search on the hot path.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, neu) {
			return
		}
	}
}

// Count returns the number of observations (zero on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Sample is one metric's state in a Snapshot: scalar metrics fill Value,
// histograms fill Bounds/Counts (per-bucket, not cumulative) plus Sum and
// Count.
type Sample struct {
	Name  string
	Help  string
	Kind  Kind
	Value float64   // counter or gauge reading
	Bound []float64 // histogram upper bounds (implicit +Inf appended)
	Count []int64   // per-bucket observation counts, len(Bound)+1
	Sum   float64   // histogram sum of observations
	N     int64     // histogram observation count
}

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named collection of metrics. Registration (the New*
// methods) happens at setup time under a lock; the returned metric pointers
// are then updated lock-free. A nil *Registry is valid everywhere and
// returns nil metrics, so "observability off" needs no special casing.
type Registry struct {
	mu      sync.Mutex
	order   []string
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// register adds e or returns the existing entry of the same name and kind.
func (r *Registry) register(name, help string, kind Kind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %q re-registered as %v (was %v)", name, kind, e.kind))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: kind}
	r.entries[name] = e
	r.order = append(r.order, name)
	return e
}

// NewCounter registers (or returns the existing) counter under name. Nil
// registry: returns nil, which is a valid no-op counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	e := r.register(name, help, KindCounter)
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// NewGauge registers (or returns the existing) gauge under name.
func (r *Registry) NewGauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	e := r.register(name, help, KindGauge)
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g
}

// NewHistogram registers (or returns the existing) histogram under name
// with the given ascending upper bounds. Re-registration ignores the new
// bounds and returns the original histogram.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	e := r.register(name, help, KindHistogram)
	if e.h == nil {
		e.h = newHistogram(bounds)
	}
	return e.h
}

// Snapshot returns the current value of every registered metric, in
// registration order. It is safe to call while the metrics are being
// updated.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.order))
	for _, name := range r.order {
		e := r.entries[name]
		s := Sample{Name: e.name, Help: e.help, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			s.Value = float64(e.c.Value())
		case KindGauge:
			s.Value = e.g.Value()
		case KindHistogram:
			s.Bound = append([]float64(nil), e.h.bounds...)
			s.Count = make([]int64, len(e.h.counts))
			for i := range e.h.counts {
				s.Count[i] = e.h.counts[i].Load()
			}
			s.Sum = e.h.Sum()
			s.N = e.h.Count()
		}
		out = append(out, s)
	}
	return out
}

// Merge folds other into r: counters and histogram buckets/sums accumulate;
// gauges (instantaneous readings) keep r's value. Metrics present only in
// other are created in r. Histograms merge bucket-by-bucket and require
// identical bounds (mismatched bounds panic — they indicate a programming
// error, not a runtime condition).
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	for _, s := range other.Snapshot() {
		switch s.Kind {
		case KindCounter:
			r.NewCounter(s.Name, s.Help).Add(int64(s.Value))
		case KindGauge:
			// A gauge r has never written adopts other's reading; an
			// existing reading wins (it is the receiver's latest sample).
			if g := r.NewGauge(s.Name, s.Help); g.bits.Load() == 0 {
				g.Set(s.Value)
			}
		case KindHistogram:
			h := r.NewHistogram(s.Name, s.Help, s.Bound)
			if len(h.bounds) != len(s.Bound) {
				panic(fmt.Sprintf("metrics: merging histogram %q with different bounds", s.Name))
			}
			for i, b := range h.bounds {
				if b != s.Bound[i] {
					panic(fmt.Sprintf("metrics: merging histogram %q with different bounds", s.Name))
				}
			}
			for i, n := range s.Count {
				h.counts[i].Add(n)
			}
			h.count.Add(s.N)
			for {
				old := h.sum.Load()
				neu := math.Float64bits(math.Float64frombits(old) + s.Sum)
				if h.sum.CompareAndSwap(old, neu) {
					break
				}
			}
		}
	}
}

// Restore overwrites the registry's metrics from a previously taken
// Snapshot, creating metrics that do not exist yet. Unlike Merge it *sets*
// values rather than accumulating, so restoring into a freshly built
// registry (whose metrics the engine re-registered at their zero values)
// reproduces the snapshot exactly. Histograms present on both sides must
// have identical bounds.
func (r *Registry) Restore(samples []Sample) error {
	if r == nil {
		return nil
	}
	for _, s := range samples {
		switch s.Kind {
		case KindCounter:
			r.NewCounter(s.Name, s.Help).Set(int64(s.Value))
		case KindGauge:
			r.NewGauge(s.Name, s.Help).Set(s.Value)
		case KindHistogram:
			h := r.NewHistogram(s.Name, s.Help, s.Bound)
			if len(h.bounds) != len(s.Bound) || len(h.counts) != len(s.Count) {
				return fmt.Errorf("metrics: restoring histogram %q with different bounds", s.Name)
			}
			for i, b := range h.bounds {
				if b != s.Bound[i] {
					return fmt.Errorf("metrics: restoring histogram %q with different bounds", s.Name)
				}
			}
			for i, n := range s.Count {
				h.counts[i].Store(n)
			}
			h.count.Store(s.N)
			h.sum.Store(math.Float64bits(s.Sum))
		default:
			return fmt.Errorf("metrics: restoring unknown metric kind %v for %q", s.Kind, s.Name)
		}
	}
	return nil
}

// Names returns the registered metric names, sorted. Mostly a test helper.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}
