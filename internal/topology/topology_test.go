package topology

import (
	"testing"
	"testing/quick"
)

func TestNewPanics(t *testing.T) {
	cases := []struct {
		name string
		k, n int
	}{
		{"k too small", 1, 3},
		{"n too small", 4, 0},
		{"overflow", 1 << 16, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d,%d) did not panic", c.k, c.n)
				}
			}()
			New(c.k, c.n)
		})
	}
}

func TestBasicSizes(t *testing.T) {
	cases := []struct {
		k, n, nodes, ports int
	}{
		{2, 1, 2, 2},
		{4, 2, 16, 4},
		{8, 3, 512, 6},
		{3, 3, 27, 6},
		{5, 2, 25, 4},
	}
	for _, c := range cases {
		tp := New(c.k, c.n)
		if tp.Nodes() != c.nodes {
			t.Errorf("%v: Nodes=%d want %d", tp, tp.Nodes(), c.nodes)
		}
		if tp.NumPorts() != c.ports {
			t.Errorf("%v: NumPorts=%d want %d", tp, tp.NumPorts(), c.ports)
		}
		if tp.K() != c.k || tp.N() != c.n {
			t.Errorf("%v: K/N mismatch", tp)
		}
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	tp := New(5, 3)
	buf := make([]int, 3)
	for id := 0; id < tp.Nodes(); id++ {
		coords := tp.Coords(NodeID(id), buf)
		if got := tp.FromCoords(coords); got != NodeID(id) {
			t.Fatalf("round trip %d -> %v -> %d", id, coords, got)
		}
		for d := 0; d < 3; d++ {
			if tp.Coord(NodeID(id), d) != coords[d] {
				t.Fatalf("Coord(%d,%d)=%d want %d", id, d, tp.Coord(NodeID(id), d), coords[d])
			}
		}
	}
}

func TestFromCoordsNormalizes(t *testing.T) {
	tp := New(4, 2)
	if got := tp.FromCoords([]int{5, -1}); got != tp.FromCoords([]int{1, 3}) {
		t.Errorf("FromCoords should normalize modulo k: got %d", got)
	}
}

func TestValid(t *testing.T) {
	tp := New(3, 2)
	if tp.Valid(-1) || tp.Valid(9) {
		t.Error("out-of-range ids reported valid")
	}
	if !tp.Valid(0) || !tp.Valid(8) {
		t.Error("in-range ids reported invalid")
	}
}

func TestPortAlgebra(t *testing.T) {
	for dim := 0; dim < 4; dim++ {
		for _, dir := range []Direction{Plus, Minus} {
			p := PortFor(dim, dir)
			if PortDim(p) != dim || PortDir(p) != dir {
				t.Fatalf("port algebra broken for dim=%d dir=%v", dim, dir)
			}
			if Opposite(Opposite(p)) != p {
				t.Fatalf("Opposite not involutive for %d", p)
			}
			if PortDim(Opposite(p)) != dim || PortDir(Opposite(p)) == dir {
				t.Fatalf("Opposite(%d) wrong", p)
			}
		}
	}
}

func TestDirectionString(t *testing.T) {
	if Plus.String() != "+" || Minus.String() != "-" {
		t.Error("Direction.String mismatch")
	}
}

func TestNeighborInverse(t *testing.T) {
	// Going out a port and back through the opposite port is the identity.
	for _, cfg := range [][2]int{{2, 2}, {3, 3}, {4, 2}, {8, 3}} {
		tp := New(cfg[0], cfg[1])
		for id := 0; id < tp.Nodes(); id++ {
			for p := Port(0); int(p) < tp.NumPorts(); p++ {
				nb := tp.Neighbor(NodeID(id), p)
				if !tp.Valid(nb) {
					t.Fatalf("%v: invalid neighbor %d of %d via %d", tp, nb, id, p)
				}
				back := tp.Neighbor(nb, Opposite(p))
				if back != NodeID(id) {
					t.Fatalf("%v: neighbor not symmetric: %d -%d-> %d -%d-> %d",
						tp, id, p, nb, Opposite(p), back)
				}
			}
		}
	}
}

func TestNeighborWraparound(t *testing.T) {
	tp := New(4, 2)
	// Node (3,0): Plus in dim 0 wraps to (0,0).
	id := tp.FromCoords([]int{3, 0})
	if nb := tp.Neighbor(id, PortFor(0, Plus)); nb != tp.FromCoords([]int{0, 0}) {
		t.Errorf("wraparound plus failed: got %d", nb)
	}
	// Node (0,2): Minus in dim 0 wraps to (3,2).
	id = tp.FromCoords([]int{0, 2})
	if nb := tp.Neighbor(id, PortFor(0, Minus)); nb != tp.FromCoords([]int{3, 2}) {
		t.Errorf("wraparound minus failed: got %d", nb)
	}
}

func TestRingDist(t *testing.T) {
	tp := New(8, 1)
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 4}, {0, 5, 3}, {0, 7, 1}, {7, 0, 1}, {2, 6, 4},
	}
	for _, c := range cases {
		if got := tp.RingDist(c.a, c.b); got != c.want {
			t.Errorf("RingDist(%d,%d)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceSymmetricTriangle(t *testing.T) {
	tp := New(4, 3)
	n := tp.Nodes()
	for a := 0; a < n; a += 3 {
		for b := 0; b < n; b += 5 {
			da := tp.Distance(NodeID(a), NodeID(b))
			db := tp.Distance(NodeID(b), NodeID(a))
			if da != db {
				t.Fatalf("Distance not symmetric: %d vs %d", da, db)
			}
			if a == b && da != 0 {
				t.Fatalf("Distance(a,a)=%d", da)
			}
			if a != b && da == 0 {
				t.Fatalf("Distance(%d,%d)=0", a, b)
			}
			if max := tp.N() * tp.K() / 2; da > max {
				t.Fatalf("Distance %d exceeds diameter %d", da, max)
			}
		}
	}
}

func TestMinimalDirs(t *testing.T) {
	tp := New(8, 1)
	cases := []struct {
		a, b        int
		plus, minus bool
	}{
		{0, 0, false, false},
		{0, 1, true, false},
		{0, 3, true, false},
		{0, 4, true, true}, // half-way tie on even ring
		{0, 5, false, true},
		{0, 7, false, true},
		{6, 1, true, false},
	}
	for _, c := range cases {
		p, m := tp.MinimalDirs(c.a, c.b)
		if p != c.plus || m != c.minus {
			t.Errorf("MinimalDirs(%d,%d)=(%v,%v) want (%v,%v)", c.a, c.b, p, m, c.plus, c.minus)
		}
	}
	// Odd radix never ties.
	tp = New(5, 1)
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			p, m := tp.MinimalDirs(a, b)
			if p && m {
				t.Errorf("odd ring tie at (%d,%d)", a, b)
			}
		}
	}
}

// Property: every useful port strictly decreases distance to destination.
func TestUsefulPortsDecreaseDistance(t *testing.T) {
	for _, cfg := range [][2]int{{4, 2}, {8, 3}, {3, 3}, {5, 2}} {
		tp := New(cfg[0], cfg[1])
		f := func(a, b uint16) bool {
			cur := NodeID(int(a) % tp.Nodes())
			dst := NodeID(int(b) % tp.Nodes())
			ports := tp.UsefulPorts(cur, dst, nil)
			if cur == dst {
				return len(ports) == 0
			}
			if len(ports) == 0 {
				return false
			}
			d := tp.Distance(cur, dst)
			for _, p := range ports {
				nb := tp.Neighbor(cur, p)
				if tp.Distance(nb, dst) != d-1 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Errorf("%v: %v", tp, err)
		}
	}
}

// Property: ports NOT in the useful set never strictly decrease distance
// (i.e. the useful set is complete for minimal routing).
func TestUsefulPortsComplete(t *testing.T) {
	tp := New(4, 3)
	f := func(a, b uint16) bool {
		cur := NodeID(int(a) % tp.Nodes())
		dst := NodeID(int(b) % tp.Nodes())
		useful := map[Port]bool{}
		for _, p := range tp.UsefulPorts(cur, dst, nil) {
			useful[p] = true
		}
		d := tp.Distance(cur, dst)
		for p := Port(0); int(p) < tp.NumPorts(); p++ {
			if useful[p] {
				continue
			}
			if tp.Distance(tp.Neighbor(cur, p), dst) < d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: following any chain of useful ports reaches the destination in
// exactly Distance hops.
func TestUsefulPortsReachDestination(t *testing.T) {
	tp := New(8, 3)
	f := func(a, b uint16, choice uint32) bool {
		cur := NodeID(int(a) % tp.Nodes())
		dst := NodeID(int(b) % tp.Nodes())
		steps := 0
		for cur != dst {
			ports := tp.UsefulPorts(cur, dst, nil)
			if len(ports) == 0 {
				return false
			}
			cur = tp.Neighbor(cur, ports[int(choice)%len(ports)])
			choice = choice*1664525 + 1013904223
			steps++
			if steps > tp.N()*tp.K() {
				return false
			}
		}
		return steps == tp.Distance(NodeID(int(a)%tp.Nodes()), dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUsefulPortsAppend(t *testing.T) {
	tp := New(4, 2)
	pre := []Port{99}
	got := tp.UsefulPorts(0, 5, pre)
	if len(got) < 2 || got[0] != 99 {
		t.Errorf("UsefulPorts should append: %v", got)
	}
}

func TestAddressBits(t *testing.T) {
	cases := []struct {
		k, n, bits int
		ok         bool
	}{
		{8, 3, 9, true},
		{4, 2, 4, true},
		{2, 4, 4, true},
		{3, 3, 0, false},
		{5, 2, 0, false},
	}
	for _, c := range cases {
		tp := New(c.k, c.n)
		b, ok := tp.AddressBits()
		if b != c.bits || ok != c.ok {
			t.Errorf("%v: AddressBits=(%d,%v) want (%d,%v)", tp, b, ok, c.bits, c.ok)
		}
	}
}

func TestString(t *testing.T) {
	if s := New(8, 3).String(); s != "8-ary 3-cube (512 nodes)" {
		t.Errorf("String=%q", s)
	}
}
