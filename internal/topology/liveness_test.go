package topology

import "testing"

func TestLivenessLinks(t *testing.T) {
	tp := New(4, 2)
	l := NewLiveness(tp)
	if !l.AllAlive() || l.DownLinks() != 0 || l.DownRouters() != 0 {
		t.Fatal("fresh mask not all-alive")
	}
	for n := 0; n < tp.Nodes(); n++ {
		for p := 0; p < tp.NumPorts(); p++ {
			if !l.LinkAlive(NodeID(n), Port(p)) {
				t.Fatalf("fresh channel (%d,%d) dead", n, p)
			}
		}
	}

	if !l.SetLink(3, 1, false) {
		t.Fatal("SetLink down reported no change")
	}
	if l.SetLink(3, 1, false) {
		t.Fatal("repeated SetLink down reported a change")
	}
	if l.LinkAlive(3, 1) || l.LinkUp(3, 1) || l.DownLinks() != 1 || l.AllAlive() {
		t.Fatal("link failure not reflected")
	}
	// Unidirectional: the reverse channel is unaffected.
	rev := tp.Neighbor(3, 1)
	if !l.LinkAlive(rev, Opposite(1)) {
		t.Error("reverse channel died with the forward one")
	}
	if !l.SetLink(3, 1, true) || !l.LinkAlive(3, 1) || l.DownLinks() != 0 {
		t.Fatal("link repair not reflected")
	}
}

func TestLivenessRouterKillsChannels(t *testing.T) {
	tp := New(4, 2)
	l := NewLiveness(tp)
	const dead NodeID = 5
	if !l.SetRouter(dead, false) {
		t.Fatal("SetRouter down reported no change")
	}
	if l.RouterAlive(dead) || l.DownRouters() != 1 {
		t.Fatal("router failure not reflected")
	}
	// Every channel out of and into the dead router is dead, but the raw
	// link bits are untouched.
	for p := 0; p < tp.NumPorts(); p++ {
		if l.LinkAlive(dead, Port(p)) {
			t.Errorf("channel out of dead router via port %d still alive", p)
		}
		if !l.LinkUp(dead, Port(p)) {
			t.Errorf("raw link bit (dead,%d) flipped by router failure", p)
		}
		nbr := tp.Neighbor(dead, Port(p))
		if l.LinkAlive(nbr, Opposite(Port(p))) {
			t.Errorf("channel into dead router from %d still alive", nbr)
		}
	}
	// Channels not touching the dead router stay alive.
	var far NodeID
	for n := 0; n < tp.Nodes(); n++ {
		if NodeID(n) != dead && tp.Distance(NodeID(n), dead) > 1 {
			far = NodeID(n)
			break
		}
	}
	healthy := false
	for p := 0; p < tp.NumPorts(); p++ {
		if tp.Neighbor(far, Port(p)) != dead && l.LinkAlive(far, Port(p)) {
			healthy = true
		}
	}
	if !healthy {
		t.Error("router failure killed unrelated channels")
	}
	// Healing restores the exact prior state (no link bits were consumed).
	if !l.SetRouter(dead, true) || !l.AllAlive() {
		t.Fatal("router repair did not restore the mask")
	}
	for p := 0; p < tp.NumPorts(); p++ {
		if !l.LinkAlive(dead, Port(p)) {
			t.Errorf("channel (dead,%d) not restored by router repair", p)
		}
	}
}

func TestLivenessPanicsOnBadChannel(t *testing.T) {
	l := NewLiveness(New(4, 2))
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range port")
		}
	}()
	l.LinkAlive(0, Port(99))
}
