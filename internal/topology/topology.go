// Package topology implements the coordinate and port algebra of
// bidirectional k-ary n-cube (torus) interconnection networks.
//
// A k-ary n-cube has k^n nodes. Every node is identified by a NodeID in
// [0, k^n) or, equivalently, by an n-digit radix-k coordinate vector.
// Each node has 2n unidirectional physical output channels (one per
// dimension and direction) plus, in the router model built on top of this
// package, a number of injection and ejection channels.
//
// The package is purely combinational: it has no simulation state and all
// methods are safe for concurrent use.
package topology

import (
	"fmt"
	"math/bits"
)

// NodeID identifies a node in the network. IDs are dense in [0, Nodes()).
type NodeID int32

// Direction selects one of the two travel directions along a dimension.
type Direction int8

// The two directions along a torus ring.
const (
	Plus  Direction = 0 // increasing coordinate (with wraparound)
	Minus Direction = 1 // decreasing coordinate (with wraparound)
)

// String returns "+" or "-".
func (d Direction) String() string {
	if d == Plus {
		return "+"
	}
	return "-"
}

// Port identifies a physical channel of a router. Ports 0..2n-1 are the
// network channels: port 2*dim+0 heads in the Plus direction of dimension
// dim, port 2*dim+1 in the Minus direction. Higher port numbers are used by
// the router model for injection/ejection and are not interpreted here.
type Port int8

// Torus describes a bidirectional k-ary n-cube.
//
// The zero value is not usable; construct with New.
type Torus struct {
	k int // radix: nodes per ring
	n int // dimensions
	// powers[i] == k^i, for coordinate extraction.
	powers []int32
}

// New returns a k-ary n-cube description.
// It panics if k < 2, n < 1, or k^n overflows NodeID.
func New(k, n int) *Torus {
	if k < 2 {
		panic(fmt.Sprintf("topology: radix k=%d must be >= 2", k))
	}
	if n < 1 {
		panic(fmt.Sprintf("topology: dimensions n=%d must be >= 1", n))
	}
	powers := make([]int32, n+1)
	powers[0] = 1
	for i := 1; i <= n; i++ {
		v := int64(powers[i-1]) * int64(k)
		if v > 1<<30 {
			panic(fmt.Sprintf("topology: k^n too large (k=%d n=%d)", k, n))
		}
		powers[i] = int32(v)
	}
	return &Torus{k: k, n: n, powers: powers}
}

// K returns the radix (ring size) of the torus.
func (t *Torus) K() int { return t.k }

// N returns the number of dimensions.
func (t *Torus) N() int { return t.n }

// Nodes returns the total number of nodes, k^n.
func (t *Torus) Nodes() int { return int(t.powers[t.n]) }

// NumPorts returns the number of physical network ports per router (2n).
func (t *Torus) NumPorts() int { return 2 * t.n }

// Valid reports whether id names a node of this torus.
func (t *Torus) Valid(id NodeID) bool {
	return id >= 0 && int(id) < t.Nodes()
}

// Coord returns digit dim of the radix-k representation of id.
func (t *Torus) Coord(id NodeID, dim int) int {
	return int(id) / int(t.powers[dim]) % t.k
}

// Coords fills dst (which must have length >= n) with the coordinates of id
// and returns dst[:n].
func (t *Torus) Coords(id NodeID, dst []int) []int {
	v := int(id)
	for i := 0; i < t.n; i++ {
		dst[i] = v % t.k
		v /= t.k
	}
	return dst[:t.n]
}

// FromCoords returns the NodeID with the given coordinates.
// Coordinates are taken modulo k, so callers may pass unnormalized values.
func (t *Torus) FromCoords(coords []int) NodeID {
	if len(coords) != t.n {
		panic(fmt.Sprintf("topology: got %d coords, want %d", len(coords), t.n))
	}
	id := 0
	for i := t.n - 1; i >= 0; i-- {
		c := coords[i] % t.k
		if c < 0 {
			c += t.k
		}
		id = id*t.k + c
	}
	return NodeID(id)
}

// PortFor returns the output port heading in direction dir of dimension dim.
func PortFor(dim int, dir Direction) Port {
	return Port(2*dim + int(dir))
}

// PortDim returns the dimension a physical network port belongs to.
func PortDim(p Port) int { return int(p) / 2 }

// PortDir returns the direction of a physical network port.
func PortDir(p Port) Direction { return Direction(int(p) % 2) }

// Opposite returns the port that faces p across a link: a flit leaving node
// A on port p arrives at the neighbouring node on input port Opposite(p).
func Opposite(p Port) Port { return p ^ 1 }

// Neighbor returns the node reached by leaving id through the given port.
func (t *Torus) Neighbor(id NodeID, p Port) NodeID {
	dim := PortDim(p)
	c := t.Coord(id, dim)
	var nc int
	if PortDir(p) == Plus {
		nc = c + 1
		if nc == t.k {
			nc = 0
		}
	} else {
		nc = c - 1
		if nc < 0 {
			nc = t.k - 1
		}
	}
	return id + NodeID((nc-c)*int(t.powers[dim]))
}

// RingDist returns the minimal hop distance from a to b along a single
// k-node ring (0 <= a,b < k).
func (t *Torus) RingDist(a, b int) int {
	d := b - a
	if d < 0 {
		d = -d
	}
	if alt := t.k - d; alt < d {
		return alt
	}
	return d
}

// Distance returns the minimal hop distance between two nodes.
func (t *Torus) Distance(a, b NodeID) int {
	sum := 0
	for dim := 0; dim < t.n; dim++ {
		sum += t.RingDist(t.Coord(a, dim), t.Coord(b, dim))
	}
	return sum
}

// MinimalDirs reports the minimal travel directions along dimension dim to
// go from coordinate a to coordinate b on the ring. It returns
// (plusOK, minusOK). Both are false iff a == b; both are true iff k is even
// and the offset is exactly k/2 (the two directions tie).
func (t *Torus) MinimalDirs(a, b int) (plusOK, minusOK bool) {
	if a == b {
		return false, false
	}
	// Distance travelling in the Plus direction.
	dp := b - a
	if dp < 0 {
		dp += t.k
	}
	dm := t.k - dp // distance travelling Minus
	switch {
	case dp < dm:
		return true, false
	case dm < dp:
		return false, true
	default:
		return true, true
	}
}

// UsefulPorts appends to dst the physical output ports of node cur that move
// a message minimally closer to dst node d, and returns the extended slice.
// It returns dst unchanged when cur == d.
//
// This is the set of "useful physical output channels" in the paper's sense:
// the channels returned by a minimal adaptive routing function.
func (t *Torus) UsefulPorts(cur, d NodeID, dst []Port) []Port {
	if cur == d {
		return dst
	}
	for dim := 0; dim < t.n; dim++ {
		a, b := t.Coord(cur, dim), t.Coord(d, dim)
		plus, minus := t.MinimalDirs(a, b)
		if plus {
			dst = append(dst, PortFor(dim, Plus))
		}
		if minus {
			dst = append(dst, PortFor(dim, Minus))
		}
	}
	return dst
}

// AddressBits returns log2(Nodes()) if the node count is a power of two,
// and (0, false) otherwise. Bit-permutation traffic patterns (butterfly,
// bit-reversal, perfect shuffle, complement) require a power-of-two size.
func (t *Torus) AddressBits() (int, bool) {
	nodes := t.Nodes()
	if nodes&(nodes-1) != 0 {
		return 0, false
	}
	return bits.TrailingZeros(uint(nodes)), true
}

// String returns a description such as "8-ary 3-cube (512 nodes)".
func (t *Torus) String() string {
	return fmt.Sprintf("%d-ary %d-cube (%d nodes)", t.k, t.n, t.Nodes())
}
