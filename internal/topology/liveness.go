package topology

import "fmt"

// Liveness is the channel- and router-liveness mask of a torus: which
// unidirectional physical channels and which routers are currently usable.
// It is the single source of truth the routing engines and the simulation
// engine consult when fault injection is active; a nil *Liveness means
// "everything alive" throughout the simulator, so the fault-free path pays
// nothing beyond a nil check.
//
// A channel (node, port) is alive iff the link itself is up and both of its
// endpoint routers are up. Failing a router therefore implicitly kills all
// channels into and out of it without touching the per-link bits, which
// lets a transient router failure heal back to the exact prior link state.
//
// Liveness is owned by a single simulation engine and is not safe for
// concurrent mutation; concurrent reads are safe once mutation stops.
type Liveness struct {
	t    *Torus
	link []bool // [node*numPorts + port]: the link itself is up
	rtr  []bool // [node]: the router is up

	downLinks int // links with link[i] == false
	downRtrs  int // routers with rtr[i] == false
}

// NewLiveness returns an all-alive mask for torus t.
func NewLiveness(t *Torus) *Liveness {
	l := &Liveness{
		t:    t,
		link: make([]bool, t.Nodes()*t.NumPorts()),
		rtr:  make([]bool, t.Nodes()),
	}
	for i := range l.link {
		l.link[i] = true
	}
	for i := range l.rtr {
		l.rtr[i] = true
	}
	return l
}

// linkIndex flattens (node, port) into the link mask.
func (l *Liveness) linkIndex(n NodeID, p Port) int {
	if !l.t.Valid(n) || int(p) < 0 || int(p) >= l.t.NumPorts() {
		panic(fmt.Sprintf("topology: bad channel (%d, %d)", n, p))
	}
	return int(n)*l.t.NumPorts() + int(p)
}

// LinkAlive reports whether the unidirectional channel leaving node n
// through port p is usable: the link is up and both endpoints are up.
func (l *Liveness) LinkAlive(n NodeID, p Port) bool {
	return l.link[l.linkIndex(n, p)] && l.rtr[n] && l.rtr[l.t.Neighbor(n, p)]
}

// LinkUp reports the raw state of the link (node, port), ignoring router
// state.
func (l *Liveness) LinkUp(n NodeID, p Port) bool {
	return l.link[l.linkIndex(n, p)]
}

// SetLink sets the raw state of the unidirectional link (node, port) and
// reports whether the state changed.
func (l *Liveness) SetLink(n NodeID, p Port, up bool) bool {
	i := l.linkIndex(n, p)
	if l.link[i] == up {
		return false
	}
	l.link[i] = up
	if up {
		l.downLinks--
	} else {
		l.downLinks++
	}
	return true
}

// RouterAlive reports whether router n is up.
func (l *Liveness) RouterAlive(n NodeID) bool { return l.rtr[n] }

// SetRouter sets the state of router n and reports whether it changed.
func (l *Liveness) SetRouter(n NodeID, up bool) bool {
	if !l.t.Valid(n) {
		panic(fmt.Sprintf("topology: bad node %d", n))
	}
	if l.rtr[n] == up {
		return false
	}
	l.rtr[n] = up
	if up {
		l.downRtrs--
	} else {
		l.downRtrs++
	}
	return true
}

// DownLinks returns the number of links whose raw state is down (excluding
// channels dead only because an endpoint router is down).
func (l *Liveness) DownLinks() int { return l.downLinks }

// DownRouters returns the number of routers currently down.
func (l *Liveness) DownRouters() int { return l.downRtrs }

// AllAlive reports whether no link or router is down.
func (l *Liveness) AllAlive() bool { return l.downLinks == 0 && l.downRtrs == 0 }
