package topology

import "testing"

// FuzzMinimalDirections fuzzes the coordinate/port algebra the routing
// engines are built on. For arbitrary torus geometries and node pairs it
// checks that MinimalDirs agrees with ring distances (including the k-even
// half-way tie, where both directions must be reported), that stepping in a
// reported direction shortens the ring distance by exactly one, that the
// port algebra round-trips, and that UsefulPorts is exactly the set of
// ports whose crossing decreases the torus distance.
func FuzzMinimalDirections(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint16(0), uint16(5))
	f.Add(uint8(8), uint8(3), uint16(1), uint16(321))
	f.Add(uint8(4), uint8(1), uint16(0), uint16(2)) // even k, half-way tie
	f.Add(uint8(6), uint8(2), uint16(3), uint16(21))
	f.Add(uint8(2), uint8(4), uint16(0), uint16(15))
	f.Add(uint8(5), uint8(2), uint16(7), uint16(24))
	f.Fuzz(func(t *testing.T, kRaw, nRaw uint8, srcRaw, dstRaw uint16) {
		k := 2 + int(kRaw)%15 // 2..16
		n := 1 + int(nRaw)%4  // 1..4
		tp := New(k, n)
		src := NodeID(int(srcRaw) % tp.Nodes())
		dst := NodeID(int(dstRaw) % tp.Nodes())

		for dim := 0; dim < n; dim++ {
			a, b := tp.Coord(src, dim), tp.Coord(dst, dim)
			plus, minus := tp.MinimalDirs(a, b)
			d := tp.RingDist(a, b)
			if (a == b) != (!plus && !minus) {
				t.Fatalf("k=%d a=%d b=%d: dirs (%v,%v), equality says %v", k, a, b, plus, minus, a == b)
			}
			if tie := k%2 == 0 && d == k/2; (plus && minus) != tie {
				t.Fatalf("k=%d a=%d b=%d d=%d: both-dirs=%v, half-way tie=%v", k, a, b, d, plus && minus, tie)
			}
			if plus && tp.RingDist((a+1)%k, b) != d-1 {
				t.Fatalf("k=%d a=%d b=%d: Plus reported but a+1 does not shorten (d=%d)", k, a, b, d)
			}
			if minus && tp.RingDist((a-1+k)%k, b) != d-1 {
				t.Fatalf("k=%d a=%d b=%d: Minus reported but a-1 does not shorten (d=%d)", k, a, b, d)
			}
		}

		for p := 0; p < tp.NumPorts(); p++ {
			port := Port(p)
			if PortFor(PortDim(port), PortDir(port)) != port {
				t.Fatalf("port %d: PortFor(PortDim, PortDir) does not round-trip", p)
			}
			if Opposite(Opposite(port)) != port || PortDim(Opposite(port)) != PortDim(port) {
				t.Fatalf("port %d: Opposite algebra broken", p)
			}
			nb := tp.Neighbor(src, port)
			if tp.Neighbor(nb, Opposite(port)) != src {
				t.Fatalf("node %d port %d: Neighbor/Opposite does not return", src, p)
			}
		}

		dist := tp.Distance(src, dst)
		ports := tp.UsefulPorts(src, dst, nil)
		if (src == dst) != (len(ports) == 0) {
			t.Fatalf("src=%d dst=%d: %d useful ports", src, dst, len(ports))
		}
		useful := make(map[Port]bool, len(ports))
		for _, p := range ports {
			if useful[p] {
				t.Fatalf("src=%d dst=%d: duplicate useful port %d", src, dst, p)
			}
			useful[p] = true
		}
		for p := 0; p < tp.NumPorts(); p++ {
			decreases := tp.Distance(tp.Neighbor(src, Port(p)), dst) == dist-1
			if decreases != useful[Port(p)] {
				t.Fatalf("src=%d dst=%d port %d: decreases=%v useful=%v (dist=%d)",
					src, dst, p, decreases, useful[Port(p)], dist)
			}
		}
	})
}
