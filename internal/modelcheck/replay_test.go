package modelcheck

import (
	"path/filepath"
	"testing"
)

// TestCommittedCounterexamples replays every counterexample committed under
// testdata/counterexamples. Each file documents a checker failure found by
// a past exploration; Replay returns nil only when the recorded failure no
// longer reproduces (for false negatives: the detector now fires). An empty
// corpus passes vacuously — that is the good outcome.
func TestCommittedCounterexamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "counterexamples", "*.wncp"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			cx, err := ReadCounterexample(path)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			t.Logf("replaying %s counterexample:\n%s", cx.Kind, cx.String())
			if err := cx.Replay(); err != nil {
				t.Errorf("still fails: %v", err)
			}
		})
	}
}

// TestCounterexampleRoundTrip pins the persistence format: a synthetic-miss
// exploration dumps at least one counterexample file, the file loads back,
// and its recorded state replays to the identical canonical hash. The
// Replay must REPORT the (synthetic) miss as still failing: the detector
// genuinely fires on this deadlock, but a dumped false-negative recording a
// detectable deadlock replays as "fixed" — so instead assert the dump's
// internal consistency directly.
func TestCounterexampleRoundTrip(t *testing.T) {
	spec := RingSpec()
	spec.MaxStates = 4000
	dir := t.TempDir()
	x, err := New(spec, Options{SyntheticMiss: true, CounterexampleDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FalseNegatives == 0 {
		t.Fatalf("synthetic-miss run reported no false negatives:\n%s", rep.Format())
	}
	files, err := filepath.Glob(filepath.Join(dir, "cx-*-false-negative.wncp"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no counterexample files dumped (err=%v)", err)
	}
	cx, err := ReadCounterexample(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if cx.Kind != CxFalseNegative || len(cx.GT) == 0 || cx.Snap == nil {
		t.Fatalf("malformed counterexample: kind=%s gt=%v snap=%v", cx.Kind, cx.GT, cx.Snap != nil)
	}
	// The synthetic miss records a deadlock the real detector catches, so
	// Replay — which checks hash identity, oracle agreement, and then the
	// real detector — must report it fixed.
	if err := cx.Replay(); err != nil {
		t.Fatalf("replay of a synthetic miss should pass (detector really fires): %v", err)
	}
}
