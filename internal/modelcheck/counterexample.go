package modelcheck

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"wormnet/internal/checkpoint"
	"wormnet/internal/sim"
	"wormnet/internal/trace"
)

// CxKind classifies a counterexample.
type CxKind string

// Counterexample kinds. The per-state check violations (invariants,
// alo-property, snapshot-roundtrip) reuse their check name as the kind.
const (
	CxFalseNegative CxKind = "false-negative"
	CxOracleUnsound CxKind = "oracle-unsound"
)

// Counterexample is a replayable checker failure: the spec, the schedule
// that reaches the failing state from the initial state, the state's
// snapshot, and the ground-truth deadlocked set the detector disagreed
// with. It is persisted in the WNCP checkpoint framing.
type Counterexample struct {
	Kind     CxKind
	Detail   string
	Digest   string // config digest the schedule and snapshot belong to
	Spec     Spec
	Schedule [][]int // catalog indices injected before each Step
	GT       []int64
	Snap     *sim.Snapshot
}

// WriteDir persists the counterexample into dir (created if needed) under
// a kind-tagged sequence name, returning the path.
func (c *Counterexample) WriteDir(dir string, seq int) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("modelcheck: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("cx-%03d-%s.wncp", seq, c.Kind))
	if err := checkpoint.WriteFileValue(path, c); err != nil {
		return "", err
	}
	return path, nil
}

// ReadCounterexample loads a counterexample file.
func ReadCounterexample(path string) (*Counterexample, error) {
	return checkpoint.ReadFileValue[Counterexample](path)
}

// Replay re-derives the counterexample's state from scratch — fresh
// engine, recorded schedule — and re-checks the recorded failure:
//
//  1. the replayed state must hash identically to the stored snapshot
//     (the counterexample is internally consistent and the engine is
//     still deterministic);
//  2. the ground-truth oracle must still report the stored deadlocked set;
//  3. for false negatives, the detector must now FIRE within the probe
//     budget — i.e. the bug the counterexample documents must be fixed.
//
// It returns nil when the original failure no longer reproduces (the fix
// holds), and an error describing the step that still fails otherwise.
// Committed counterexamples under test therefore act as regression tests
// for once-found detector misses.
func (c *Counterexample) Replay() error {
	cfg, err := c.Spec.Config()
	if err != nil {
		return err
	}
	digest, err := sim.ConfigDigest(cfg)
	if err != nil {
		return err
	}
	if digest != c.Digest {
		return fmt.Errorf("modelcheck: counterexample config drifted: stored %q, spec now builds %q", c.Digest, digest)
	}
	e, err := sim.New(cfg)
	if err != nil {
		return err
	}
	defer e.Close()
	for ci, inj := range c.Schedule {
		for _, i := range inj {
			if i < 0 || i >= len(c.Spec.Messages) {
				return fmt.Errorf("modelcheck: schedule cycle %d references catalog entry %d of %d", ci, i, len(c.Spec.Messages))
			}
			c.Spec.inject(e, i)
		}
		e.Step()
	}
	snap, err := e.Snapshot()
	if err != nil {
		return err
	}
	got, err := snap.CanonicalHash()
	if err != nil {
		return err
	}
	want, err := c.Snap.CanonicalHash()
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("modelcheck: replayed state hashes %x, counterexample recorded %x (nondeterminism?)", got[:8], want[:8])
	}
	gt := e.BuildWaitGraph().Deadlocked()
	if fmt.Sprint(gt) != fmt.Sprint(c.GT) {
		return fmt.Errorf("modelcheck: oracle now reports %v deadlocked, counterexample recorded %v", gt, c.GT)
	}
	switch c.Kind {
	case CxFalseNegative:
		if len(gt) == 0 {
			return fmt.Errorf("modelcheck: false-negative counterexample has empty ground truth")
		}
		detected := false
		e.SetListener(trace.Func(func(ev trace.Event) {
			if ev.Kind == trace.KindDeadlock && containsID(gt, ev.Msg) {
				detected = true
			}
		}))
		budget := c.Spec.probeBudget()
		for i := int64(0); i < budget && !detected; i++ {
			e.Step()
		}
		if !detected {
			return fmt.Errorf("modelcheck: detector still misses the deadlock of %v within %d cycles", gt, budget)
		}
		return nil
	default:
		// Other kinds (oracle-unsound, invariant violations) have no
		// automatic "fixed" criterion beyond reproducing the state; report
		// them for human attention.
		return fmt.Errorf("modelcheck: %s counterexample reproduces at the recorded state: %s", c.Kind, c.Detail)
	}
}

// String summarises the counterexample.
func (c *Counterexample) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", c.Kind, c.Detail)
	fmt.Fprintf(&b, "ground-truth deadlocked: %v\n", c.GT)
	fmt.Fprintf(&b, "schedule (%d cycles):\n", len(c.Schedule))
	for cyc, inj := range c.Schedule {
		if len(inj) == 0 {
			continue
		}
		for _, i := range inj {
			m := c.Spec.Messages[i]
			fmt.Fprintf(&b, "  cycle %3d: inject %d->%d len %d\n", cyc, m.Src, m.Dst, m.Length)
		}
	}
	return b.String()
}
