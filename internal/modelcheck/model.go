// Package modelcheck is the exhaustive validation lane: a bounded
// state-space explorer for tiny network configurations that drives the
// real sim.Engine — not a model of it — through every reachable injection
// schedule, and validates the FC3D deadlock machinery against ground
// truth at every reachable state.
//
// The nondeterminism of a run is exactly the injection schedule: the
// engine itself is deterministic (fixed seed, no autonomous sources at
// Rate 0), so branching over which of a bounded message catalog to inject
// before each cycle enumerates every reachable behaviour. States are
// deduplicated by the canonical snapshot hash (sim.Snapshot.CanonicalHash)
// and every newly visited state is put through the full check battery:
//
//   - ground-truth deadlock via the channel-wait graph
//     (sim.Engine.BuildWaitGraph + deadlock.WaitGraph liveness fixpoint);
//   - an FC3D probe on every ground-truth-deadlocked state: the engine
//     must fire recovery within the probe budget — a miss is a false
//     negative, dumped as a replayable counterexample; recovery of a
//     non-deadlocked message during expansion is counted as a false
//     positive (quantified per threshold, never fatal);
//   - the full engine invariant suite (free on every restore, plus an
//     explicit post-step check);
//   - ALO's "at least one free useful channel" injection property,
//     re-derived from raw router state (sim.Engine.VerifyInjectionProperty);
//   - snapshot round-trip identity (restore + re-snapshot hashes equal).
package modelcheck

import (
	"fmt"

	"wormnet/internal/core"
	"wormnet/internal/deadlock"
	"wormnet/internal/sim"
	"wormnet/internal/topology"
)

// MsgSpec is one catalog entry: a message the explorer may inject (at most
// once per schedule) at any cycle boundary.
type MsgSpec struct {
	Src, Dst int32
	Length   int
}

// Spec describes one bounded model: the tiny network plus the message
// catalog and the exploration budgets. The zero value is not runnable; use
// DefaultSpec or fill the fields and let Config validate them.
type Spec struct {
	// Network (kept tiny: the state space is exponential in all of these).
	K, N        int
	VCs         int
	BufDepth    int
	InjChannels int
	EjChannels  int
	Routing     string

	// Deadlock machinery under test.
	Threshold     int32
	RecoveryDelay int64
	Lenient       bool

	// Messages the explorer may inject. Sources must be pairwise distinct:
	// injections at different nodes commute (each lands in its own source
	// queue), so enumerating the *subsets* of remaining messages per cycle
	// is exhaustive. Two same-source entries would need ordered same-cycle
	// enumeration too; Config rejects them instead.
	Messages []MsgSpec

	// Budgets.
	MaxCycles   int64 // schedule horizon: states at this depth are not expanded
	MaxStates   int   // visited-state budget: exploration stops when reached
	ProbeBudget int64 // FN-probe step budget; 0 means 2*Threshold+4*RecoveryDelay+64
}

// DefaultSpec is the canonical tiny model from the issue: a 2-ary 2-cube
// with single-VC single-flit buffers, TFAR routing, the ALO limiter, and a
// 4-message diagonal catalog. Note that in a 2-ary cube every hop is
// minimal in *both* ring directions, so TFAR always has an escape channel
// and no reachable state of this model deadlocks — the exploration
// validates the invariant suite, the ALO property, snapshot round-trips and
// the oracle's all-live verdicts. Use RingSpec for a model whose reachable
// states include genuine cyclic deadlocks.
func DefaultSpec() Spec {
	return Spec{
		K: 2, N: 2,
		VCs: 1, BufDepth: 1,
		InjChannels: 1, EjChannels: 1,
		Routing:       "tfar",
		Threshold:     deadlock.DefaultThreshold,
		RecoveryDelay: 8,
		Messages: []MsgSpec{
			{Src: 0, Dst: 3, Length: 6},
			{Src: 3, Dst: 0, Length: 6},
			{Src: 1, Dst: 2, Length: 6},
			{Src: 2, Dst: 1, Length: 6},
		},
		MaxCycles:   96,
		MaxStates:   150000,
		ProbeBudget: 0,
	}
}

// RingSpec is the deadlock-prone tiny model: a 4-ary 1-cube (a ring of
// four routers) where each node sends one 6-flit worm to the node two hops
// away. Both ring directions are minimal at distance k/2, the first free
// candidate is the Plus direction for every header, and the four worms are
// long enough to hold their first channel while waiting for the next — the
// classic cyclic wait. Exploration reaches genuine ground-truth deadlock
// states, so the FC3D false-negative probe and the true-positive
// accounting are actually exercised.
func RingSpec() Spec {
	return Spec{
		K: 4, N: 1,
		VCs: 1, BufDepth: 1,
		InjChannels: 1, EjChannels: 1,
		Routing:       "tfar",
		Threshold:     deadlock.DefaultThreshold,
		RecoveryDelay: 8,
		Messages: []MsgSpec{
			{Src: 0, Dst: 2, Length: 6},
			{Src: 1, Dst: 3, Length: 6},
			{Src: 2, Dst: 0, Length: 6},
			{Src: 3, Dst: 1, Length: 6},
		},
		MaxCycles:   64,
		MaxStates:   150000,
		ProbeBudget: 0,
	}
}

// probeBudget resolves the effective FN-probe budget.
func (s Spec) probeBudget() int64 {
	if s.ProbeBudget > 0 {
		return s.ProbeBudget
	}
	return 2*int64(s.Threshold) + 4*s.RecoveryDelay + 64
}

// Config maps the spec onto a sim.Config: no autonomous traffic (Rate 0 —
// the explorer injects at cycle boundaries), serial engine, ALO limiter,
// and an effectively unbounded measurement window (the explorer owns the
// clock).
func (s Spec) Config() (sim.Config, error) {
	if len(s.Messages) == 0 {
		return sim.Config{}, fmt.Errorf("modelcheck: empty message catalog")
	}
	if len(s.Messages) > 8 {
		return sim.Config{}, fmt.Errorf("modelcheck: %d catalog messages; the action set is ordered subsequences, keep it <= 8", len(s.Messages))
	}
	if s.MaxCycles < 1 {
		return sim.Config{}, fmt.Errorf("modelcheck: MaxCycles %d < 1", s.MaxCycles)
	}
	if s.MaxStates < 1 {
		return sim.Config{}, fmt.Errorf("modelcheck: MaxStates %d < 1", s.MaxStates)
	}
	nodes := 1
	for i := 0; i < s.N; i++ {
		nodes *= s.K
	}
	srcSeen := make(map[int32]bool)
	maxLen := 1
	for i, m := range s.Messages {
		if srcSeen[m.Src] {
			return sim.Config{}, fmt.Errorf("modelcheck: two catalog messages share source %d; subset enumeration needs distinct sources", m.Src)
		}
		srcSeen[m.Src] = true
		if int(m.Src) < 0 || int(m.Src) >= nodes || int(m.Dst) < 0 || int(m.Dst) >= nodes {
			return sim.Config{}, fmt.Errorf("modelcheck: message %d endpoints %d->%d outside %d nodes", i, m.Src, m.Dst, nodes)
		}
		if m.Src == m.Dst {
			return sim.Config{}, fmt.Errorf("modelcheck: message %d is self-addressed", i)
		}
		if m.Length < 1 {
			return sim.Config{}, fmt.Errorf("modelcheck: message %d length %d < 1", i, m.Length)
		}
		if m.Length > maxLen {
			maxLen = m.Length
		}
	}
	cfg := sim.Config{
		K: s.K, N: s.N,
		VCs: s.VCs, BufDepth: s.BufDepth,
		InjChannels: s.InjChannels, EjChannels: s.EjChannels,
		Routing: s.Routing,
		Pattern: "uniform", MsgLen: maxLen, Rate: 0,
		Limiter: core.NewALO(), LimiterName: "alo",
		DetectionThreshold: s.Threshold,
		RecoveryDelay:      s.RecoveryDelay,
		LenientDetection:   s.Lenient,
		MeasureCycles:      1 << 40,
		Seed:               1,
		Workers:            1,
	}
	// Round-trip through the engine constructor once so spec errors surface
	// here, with modelcheck context, rather than deep in the explorer.
	e, err := sim.New(cfg)
	if err != nil {
		return sim.Config{}, fmt.Errorf("modelcheck: spec does not build: %w", err)
	}
	e.Close()
	return cfg, nil
}

// inject applies catalog entry i to the engine.
func (s Spec) inject(e *sim.Engine, i int) {
	m := s.Messages[i]
	e.Inject(topology.NodeID(m.Src), topology.NodeID(m.Dst), m.Length)
}
