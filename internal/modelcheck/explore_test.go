package modelcheck

import (
	"fmt"
	"path/filepath"
	"testing"

	"wormnet/internal/checkpoint"
)

// boundedDefault returns DefaultSpec with a test-sized state budget.
func boundedDefault(states int) Spec {
	s := DefaultSpec()
	s.MaxStates = states
	return s
}

// boundedRing returns RingSpec with a test-sized state budget.
func boundedRing(states int) Spec {
	s := RingSpec()
	s.MaxStates = states
	return s
}

// TestDefaultSpecExploration runs the issue's canonical 2-ary 2-cube model
// under a CI-sized budget: no checker failure of any kind, and — a model
// property worth pinning — no reachable deadlock, because every 2-ary hop
// is minimal in both ring directions so TFAR always has an escape channel.
func TestDefaultSpecExploration(t *testing.T) {
	x, err := New(boundedDefault(12000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("exploration failed:\n%s", rep.Format())
	}
	if rep.States != 12000 {
		t.Fatalf("States = %d, want the full 12000 budget", rep.States)
	}
	if rep.DeadlockStates != 0 {
		t.Errorf("2-ary 2-cube reached %d deadlock states; both-directions-minimal escape should prevent all", rep.DeadlockStates)
	}
	if rep.FalseNegatives != 0 || rep.OracleUnsound != 0 || len(rep.Violations) != 0 {
		t.Errorf("failures: %d FN, %d unsound, %v", rep.FalseNegatives, rep.OracleUnsound, rep.Violations)
	}
}

// TestRingSpecReachesDeadlock is the heart of the lane: the 4-ary ring
// model reaches genuine cyclic deadlocks, the oracle flags them, and FC3D
// detects every single one — zero false negatives over every reachable
// deadlock state in the budget.
func TestRingSpecReachesDeadlock(t *testing.T) {
	x, err := New(boundedRing(20000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("exploration failed:\n%s", rep.Format())
	}
	if rep.DeadlockStates == 0 {
		t.Fatalf("ring model reached no deadlock states — the FN probe was never exercised:\n%s", rep.Format())
	}
	if rep.Detected != rep.Probes {
		t.Errorf("detected %d of %d probes", rep.Detected, rep.Probes)
	}
	if rep.TruePositives == 0 {
		t.Errorf("no true-positive recoveries observed during expansion")
	}
}

// TestExplorationDeterministic pins that two explorations of the same spec
// produce identical reports — the foundation for counterexample replay and
// journal resume.
func TestExplorationDeterministic(t *testing.T) {
	run := func() string {
		x, err := New(boundedRing(5000), Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := x.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%d/%d/%d/%d/%d/%d/%d/%d", rep.States, rep.Edges, rep.DupEdges,
			rep.Terminals, rep.DeadlockStates, rep.Detected, rep.TruePositives, rep.FalsePositives)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical explorations diverged: %s vs %s", a, b)
	}
}

// TestSyntheticMissSelfTest proves the checker fails when FC3D and the
// oracle disagree: with the detector signal suppressed in probes, every
// ground-truth deadlock must surface as a reported false negative with a
// minimized, replayable counterexample — and the report must say FAILED.
func TestSyntheticMissSelfTest(t *testing.T) {
	dir := t.TempDir()
	x, err := New(boundedRing(4000), Options{SyntheticMiss: true, CounterexampleDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("synthetic miss not reported as failure:\n%s", rep.Format())
	}
	if rep.FalseNegatives == 0 {
		t.Fatalf("synthetic miss produced no false negatives:\n%s", rep.Format())
	}
	if len(rep.Counterexamples) != int(rep.FalseNegatives) {
		t.Errorf("%d false negatives but %d counterexample summaries", rep.FalseNegatives, len(rep.Counterexamples))
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.wncp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no counterexample files dumped")
	}
	// Minimization: the dumped schedule must still reproduce a ground-truth
	// deadlock, and no single injection can be dropped from it.
	cx, err := ReadCounterexample(files[0])
	if err != nil {
		t.Fatal(err)
	}
	injections := 0
	for _, cyc := range cx.Schedule {
		injections += len(cyc)
	}
	if injections == 0 || injections > len(cx.Spec.Messages) {
		t.Errorf("minimized schedule has %d injections (catalog %d)", injections, len(cx.Spec.Messages))
	}
}

// TestJournalResume pins crash-resume: a budget-truncated journaled run,
// resumed (with the budget raised, as a crash-resume continuation), must
// finish with exactly the report an uninterrupted run produces.
func TestJournalResume(t *testing.T) {
	const small, full = 1500, 6000
	dir := t.TempDir()
	journal := filepath.Join(dir, "explore.wncp")

	x, err := New(boundedRing(small), Options{Journal: journal, JournalEvery: 400})
	if err != nil {
		t.Fatal(err)
	}
	truncated, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !truncated.BudgetTruncated {
		t.Fatalf("run was not budget-truncated:\n%s", truncated.Format())
	}

	// Raise the budget inside the journal (the budgets are exploration
	// parameters, not part of the config digest) and resume.
	js, err := checkpoint.ReadFileValue[journalState](journal)
	if err != nil {
		t.Fatal(err)
	}
	js.Spec.MaxStates = full
	if err := checkpoint.WriteFileValue(journal, js); err != nil {
		t.Fatal(err)
	}
	r, err := Resume(journal, Options{Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}

	y, err := New(boundedRing(full), Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := y.Run()
	if err != nil {
		t.Fatal(err)
	}

	key := func(r *Report) string {
		return fmt.Sprintf("%d/%d/%d/%d/%d/%d/%d/%d", r.States, r.Edges, r.DupEdges,
			r.Terminals, r.DeadlockStates, r.Detected, r.TruePositives, r.FalsePositives)
	}
	if key(resumed) != key(direct) {
		t.Fatalf("resumed run %s != uninterrupted run %s", key(resumed), key(direct))
	}
}

// TestResumeRejectsForeignJournal pins the digest guard: a journal written
// for one model must not resume under a spec that builds a different
// engine configuration.
func TestResumeRejectsForeignJournal(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "explore.wncp")
	x, err := New(boundedRing(500), Options{Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.Run(); err != nil {
		t.Fatal(err)
	}
	js, err := checkpoint.ReadFileValue[journalState](journal)
	if err != nil {
		t.Fatal(err)
	}
	js.Spec.K = 2
	js.Spec.N = 2
	js.Spec.Messages = DefaultSpec().Messages
	if err := checkpoint.WriteFileValue(journal, js); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(journal, Options{}); err == nil {
		t.Fatalf("foreign journal resumed without error")
	}
}

// TestSpecValidation pins the Spec.Config error surface.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty catalog", func(s *Spec) { s.Messages = nil }},
		{"duplicate source", func(s *Spec) { s.Messages[1].Src = s.Messages[0].Src }},
		{"out of range dst", func(s *Spec) { s.Messages[0].Dst = 99 }},
		{"self addressed", func(s *Spec) { s.Messages[0].Dst = s.Messages[0].Src }},
		{"zero length", func(s *Spec) { s.Messages[0].Length = 0 }},
		{"zero cycles", func(s *Spec) { s.MaxCycles = 0 }},
		{"zero states", func(s *Spec) { s.MaxStates = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := DefaultSpec()
			tc.mutate(&s)
			if _, err := s.Config(); err == nil {
				t.Fatalf("invalid spec accepted")
			}
		})
	}
	if _, err := DefaultSpec().Config(); err != nil {
		t.Fatalf("DefaultSpec rejected: %v", err)
	}
	if _, err := RingSpec().Config(); err != nil {
		t.Fatalf("RingSpec rejected: %v", err)
	}
}
