package modelcheck

import "testing"

// TestFalsePositivePin pins FC3D's exact verdict counts on the ring model
// at a fixed 8000-state budget — the regression fingerprint of the
// detector's accuracy. Exploration is deterministic, so these are exact
// equalities, not bounds; an intentional engine or detector change that
// shifts them should update the pins (and the EXPERIMENTS.md table) in the
// same commit.
//
// At the paper's default threshold (32 cycles) every recovery is a true
// positive: FC3D never misfires on a live message in this model. At an
// aggressively low threshold (8 cycles) recovery fires on transient
// blocking 41 times against 3 genuine deadlocks — the quantified cost of
// impatience, and the reason the paper's threshold is conservative. Both
// rows detect every ground-truth deadlock: lowering the threshold buys
// nothing here and recovers live worms.
func TestFalsePositivePin(t *testing.T) {
	cases := []struct {
		threshold      int32
		deadlockStates int
		truePositives  int64
		falsePositives int64
	}{
		{threshold: 32, deadlockStates: 33, truePositives: 3, falsePositives: 0},
		{threshold: 8, deadlockStates: 9, truePositives: 3, falsePositives: 41},
	}
	for _, tc := range cases {
		spec := RingSpec()
		spec.Threshold = tc.threshold
		spec.MaxStates = 8000
		x, err := New(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := x.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.FalseNegatives != 0 || rep.OracleUnsound != 0 || len(rep.Violations) != 0 {
			t.Fatalf("threshold %d: checker failure:\n%s", tc.threshold, rep.Format())
		}
		if rep.DeadlockStates != tc.deadlockStates || rep.Detected != rep.Probes {
			t.Errorf("threshold %d: %d deadlock states (%d/%d detected), want %d with all detected",
				tc.threshold, rep.DeadlockStates, rep.Detected, rep.Probes, tc.deadlockStates)
		}
		if rep.TruePositives != tc.truePositives || rep.FalsePositives != tc.falsePositives {
			t.Errorf("threshold %d: verdicts TP=%d FP=%d, pinned TP=%d FP=%d",
				tc.threshold, rep.TruePositives, rep.FalsePositives, tc.truePositives, tc.falsePositives)
		}
	}
}

// TestExhaustiveTwoWormModel pins the one fully exhausted state space in
// the suite: the 2-ary 2-cube with two opposing diagonal worms has exactly
// 18 921 reachable states within the 40-cycle horizon, every one visited
// and checked, none deadlocked. Skipped under -short (the CI modelcheck
// job runs the same exploration through the CLI instead).
func TestExhaustiveTwoWormModel(t *testing.T) {
	if testing.Short() {
		t.Skip("full exhaustion is covered by the CI modelcheck-smoke job")
	}
	spec := DefaultSpec()
	spec.Messages = spec.Messages[:2] // 0->3 and 3->0
	spec.MaxCycles = 40
	spec.MaxStates = 25000
	x, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("exploration failed:\n%s", rep.Format())
	}
	if !rep.Exhausted || rep.BudgetTruncated {
		t.Fatalf("state space not exhausted: %d states, budget-truncated=%v", rep.States, rep.BudgetTruncated)
	}
	if rep.States != 18921 {
		t.Errorf("exhausted space has %d states, pinned 18921", rep.States)
	}
	if rep.DeadlockStates != 0 {
		t.Errorf("%d deadlock states in the 2-ary 2-cube; both-directions-minimal escape should prevent all", rep.DeadlockStates)
	}
}
