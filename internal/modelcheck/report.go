package modelcheck

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Report is the outcome of one exploration: coverage statistics, the FC3D
// verdict accounting, and any checker failures.
type Report struct {
	Spec      Spec
	Threshold int32

	// Coverage.
	States           int   // deduplicated reachable states visited
	Edges            int64 // actions executed (including ones landing on visited states)
	DupEdges         int64 // actions whose successor was already visited
	Terminals        int   // states with the full catalog delivered and the network empty
	HorizonTruncated int   // states not expanded because MaxCycles was reached
	MaxDepth         int   // deepest expanded schedule, in cycles
	BudgetTruncated  bool  // exploration stopped at MaxStates
	Exhausted        bool  // frontier drained: every reachable state within the horizon visited

	// Deadlock accounting.
	DeadlockStates int   // states whose ground truth has >= 1 deadlocked message
	Probes         int   // FN probes run (one per deadlock state)
	Detected       int   // probes where FC3D fired on a deadlocked message
	FalseNegatives int   // probes where FC3D stayed silent — checker failure
	OracleUnsound  int   // probes where an "oracle-deadlocked" message was delivered — checker failure
	TruePositives  int64 // expansion-step recoveries of ground-truth-deadlocked messages
	FalsePositives int64 // expansion-step recoveries of live messages

	// Failures.
	Violations      []string // invariant / ALO-property / round-trip failures
	Counterexamples []string // one summary line per dumped counterexample
}

// FPRate is the false-positive fraction of all recoveries observed during
// expansion (0 when no recovery fired).
func (r *Report) FPRate() float64 {
	total := r.TruePositives + r.FalsePositives
	if total == 0 {
		return 0
	}
	return float64(r.FalsePositives) / float64(total)
}

// Failed reports whether the exploration found any checker failure: a
// false negative, an unsound oracle verdict, or a per-state check
// violation. False positives are quantified, never fatal — FC3D is a
// heuristic detector and the paper expects conservative misfires.
func (r *Report) Failed() bool {
	return r.FalseNegatives > 0 || r.OracleUnsound > 0 || len(r.Violations) > 0
}

// finish derives nothing today but keeps a seam for summary fields.
func (r *Report) finish() {}

// Format renders the report for humans.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model: %d-ary %d-cube, %d VCs x %d flits, %s routing, threshold %d, %d catalog messages\n",
		r.Spec.K, r.Spec.N, r.Spec.VCs, r.Spec.BufDepth, r.Spec.Routing, r.Threshold, len(r.Spec.Messages))
	cov := "exhausted within horizon"
	if r.BudgetTruncated {
		cov = "truncated at state budget"
	} else if !r.Exhausted {
		cov = "incomplete"
	}
	fmt.Fprintf(&b, "coverage: %d states (%s), %d edges (%d to visited states), max depth %d/%d cycles\n",
		r.States, cov, r.Edges, r.DupEdges, r.MaxDepth, r.Spec.MaxCycles)
	fmt.Fprintf(&b, "          %d terminal states, %d schedules cut at the horizon\n",
		r.Terminals, r.HorizonTruncated)
	fmt.Fprintf(&b, "deadlock: %d ground-truth deadlock states, %d probes -> %d detected, %d false negatives, %d oracle-unsound\n",
		r.DeadlockStates, r.Probes, r.Detected, r.FalseNegatives, r.OracleUnsound)
	fmt.Fprintf(&b, "verdicts: %d true-positive recoveries, %d false-positive recoveries (FP rate %.4f)\n",
		r.TruePositives, r.FalsePositives, r.FPRate())
	if len(r.Violations) > 0 {
		fmt.Fprintf(&b, "VIOLATIONS (%d):\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	if len(r.Counterexamples) > 0 {
		fmt.Fprintf(&b, "counterexamples (%d):\n", len(r.Counterexamples))
		for _, c := range r.Counterexamples {
			fmt.Fprintf(&b, "  %s\n", c)
		}
	}
	if r.Failed() {
		b.WriteString("RESULT: FAILED\n")
	} else {
		b.WriteString("RESULT: ok — zero false negatives, all invariants held\n")
	}
	return b.String()
}

// JSON renders the report as indented JSON (for machine consumption and
// the experiment docs).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// SweepResult is one threshold's report in a detection-threshold sweep.
type SweepResult struct {
	Threshold int32
	Report    *Report
}

// RunSweep explores the same model at each detection threshold and
// collects the per-threshold reports — the data behind the
// FP-rate-vs-threshold table. Options apply to every run (journaling is
// disabled during sweeps: the journal format holds a single exploration).
func RunSweep(base Spec, thresholds []int32, opt Options) ([]SweepResult, error) {
	opt.Journal = ""
	out := make([]SweepResult, 0, len(thresholds))
	for _, th := range thresholds {
		spec := base
		spec.Threshold = th
		x, err := New(spec, opt)
		if err != nil {
			return nil, fmt.Errorf("modelcheck: threshold %d: %w", th, err)
		}
		rep, err := x.Run()
		if err != nil {
			return nil, fmt.Errorf("modelcheck: threshold %d: %w", th, err)
		}
		opt.logf("threshold %d: %d states, %d deadlock states, FP rate %.4f",
			th, rep.States, rep.DeadlockStates, rep.FPRate())
		out = append(out, SweepResult{Threshold: th, Report: rep})
	}
	return out, nil
}

// FormatSweep renders the FP-rate-vs-threshold table.
func FormatSweep(results []SweepResult) string {
	var b strings.Builder
	b.WriteString("threshold  states  deadlock  probes  detected  falseneg  truepos  falsepos  fp-rate\n")
	for _, sr := range results {
		r := sr.Report
		fmt.Fprintf(&b, "%9d  %6d  %8d  %6d  %8d  %8d  %7d  %8d  %7.4f\n",
			sr.Threshold, r.States, r.DeadlockStates, r.Probes, r.Detected,
			r.FalseNegatives, r.TruePositives, r.FalsePositives, r.FPRate())
	}
	return b.String()
}
