package modelcheck

import (
	"fmt"

	"wormnet/internal/checkpoint"
	"wormnet/internal/sim"
	"wormnet/internal/trace"
)

// Options tunes one exploration run.
type Options struct {
	// Journal, when non-empty, is the path of the crash-resume journal:
	// the visited set, the pending frontier (as schedules) and the report
	// so far, persisted in the WNCP checkpoint framing every JournalEvery
	// newly visited states. Resume continues from it.
	Journal      string
	JournalEvery int // default 2000

	// CounterexampleDir, when non-empty, receives one WNCP-framed
	// Counterexample file per checker failure.
	CounterexampleDir string

	// SyntheticMiss makes the false-negative probe deliberately ignore the
	// detector's recovery signal, so every ground-truth deadlock becomes a
	// reported false negative. It exists to prove the checker *fails* when
	// the oracle and FC3D disagree — the self-test of the whole lane.
	SyntheticMiss bool

	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

func (o Options) journalEvery() int {
	if o.JournalEvery > 0 {
		return o.JournalEvery
	}
	return 2000
}

// entry is one frontier state awaiting expansion.
type entry struct {
	snap     *sim.Snapshot
	schedule [][]int // catalog indices injected before each executed Step
	used     uint32  // catalog entries already injected
	gt       []int64 // ground-truth deadlocked message IDs at this state
	inFlight int64
	queued   int
}

// Explorer enumerates the reachable state space of a Spec.
type Explorer struct {
	spec         Spec
	cfg          sim.Config
	digest       string
	opt          Options
	visited      map[[32]byte]struct{}
	stack        []*entry
	rep          *Report
	sinceJournal int
}

// New prepares an exploration of spec from the initial (empty) state.
func New(spec Spec, opt Options) (*Explorer, error) {
	x, err := newExplorer(spec, opt)
	if err != nil {
		return nil, err
	}
	root, err := x.materialize(nil)
	if err != nil {
		return nil, err
	}
	h, err := root.snap.CanonicalHash()
	if err != nil {
		return nil, err
	}
	x.visited[h] = struct{}{}
	x.rep.States = 1
	x.stack = append(x.stack, root)
	return x, nil
}

func newExplorer(spec Spec, opt Options) (*Explorer, error) {
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	digest, err := sim.ConfigDigest(cfg)
	if err != nil {
		return nil, err
	}
	return &Explorer{
		spec:    spec,
		cfg:     cfg,
		digest:  digest,
		opt:     opt,
		visited: make(map[[32]byte]struct{}),
		rep:     &Report{Spec: spec, Threshold: spec.Threshold},
	}, nil
}

// materialize replays a schedule from the initial state and builds its
// frontier entry (snapshot, ground truth, occupancy).
func (x *Explorer) materialize(schedule [][]int) (*entry, error) {
	e, err := sim.New(x.cfg)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	var used uint32
	for _, inj := range schedule {
		for _, i := range inj {
			x.spec.inject(e, i)
			used |= 1 << uint(i)
		}
		e.Step()
	}
	return x.entryFrom(e, schedule, used)
}

// entryFrom captures a live engine as a frontier entry.
func (x *Explorer) entryFrom(e *sim.Engine, schedule [][]int, used uint32) (*entry, error) {
	snap, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	src, rec := e.QueueLengths()
	return &entry{
		snap:     snap,
		schedule: schedule,
		used:     used,
		gt:       e.BuildWaitGraph().Deadlocked(),
		inFlight: e.InFlight(),
		queued:   src + rec,
	}, nil
}

// Run explores until the frontier drains or the state budget is hit, then
// returns the report. It may be called once per Explorer.
func (x *Explorer) Run() (*Report, error) {
	allUsed := uint32(1)<<uint(len(x.spec.Messages)) - 1
	for len(x.stack) > 0 {
		if x.rep.States >= x.spec.MaxStates {
			x.rep.BudgetTruncated = true
			x.opt.logf("state budget %d reached with %d frontier states pending", x.spec.MaxStates, len(x.stack))
			break
		}
		parent := x.stack[len(x.stack)-1]
		x.stack = x.stack[:len(x.stack)-1]
		if err := x.expand(parent, allUsed); err != nil {
			return nil, err
		}
	}
	if len(x.stack) == 0 {
		x.rep.Exhausted = true
	}
	if x.opt.Journal != "" {
		if err := x.writeJournal(); err != nil {
			return nil, err
		}
	}
	x.rep.finish()
	return x.rep, nil
}

// Report returns the report accumulated so far (also valid after Run).
func (x *Explorer) Report() *Report { return x.rep }

// expand generates every successor of parent: one per subset of the
// not-yet-injected catalog (injected at the boundary, catalog order),
// followed by one engine Step.
func (x *Explorer) expand(parent *entry, allUsed uint32) error {
	if parent.used == allUsed && parent.inFlight == 0 && parent.queued == 0 {
		x.rep.Terminals++
		return nil
	}
	depth := len(parent.schedule)
	if int64(depth) >= x.spec.MaxCycles {
		x.rep.HorizonTruncated++
		return nil
	}
	if depth > x.rep.MaxDepth {
		x.rep.MaxDepth = depth
	}
	var remaining []int
	for i := range x.spec.Messages {
		if parent.used&(1<<uint(i)) == 0 {
			remaining = append(remaining, i)
		}
	}
	// Subsets in increasing binary order: the empty action is pushed first
	// and the all-in action last, so DFS (LIFO) dives into
	// inject-everything-now schedules first and reaches the deep blocked
	// states where detection fires early in the exploration.
	for sub := 0; sub < 1<<uint(len(remaining)); sub++ {
		var inject []int
		for b := 0; b < len(remaining); b++ {
			if sub&(1<<uint(b)) != 0 {
				inject = append(inject, remaining[b])
			}
		}
		if err := x.step(parent, inject); err != nil {
			return err
		}
	}
	return nil
}

// step executes one action (inject the given catalog entries, Step once)
// from parent, running the per-state check battery if the successor is new.
func (x *Explorer) step(parent *entry, inject []int) error {
	e, err := sim.RestoreEngine(x.cfg, parent.snap) // restore runs CheckInvariants
	if err != nil {
		return fmt.Errorf("modelcheck: restore at depth %d: %w", len(parent.schedule), err)
	}
	defer e.Close()
	used := parent.used
	for _, i := range inject {
		x.spec.inject(e, i)
		used |= 1 << uint(i)
	}
	var recovered []int64
	e.SetListener(trace.Func(func(ev trace.Event) {
		if ev.Kind == trace.KindDeadlock {
			recovered = append(recovered, ev.Msg)
		}
	}))
	e.Step()
	e.SetListener(nil)
	x.rep.Edges++

	// FC3D fired on this edge: recoveries of ground-truth-deadlocked
	// messages are true positives, the rest false positives. The parent's
	// ground truth still applies — boundary injections only touch source
	// queues, never in-network state.
	for _, id := range recovered {
		if containsID(parent.gt, id) {
			x.rep.TruePositives++
		} else {
			x.rep.FalsePositives++
		}
	}

	child, err := x.entryFrom(e, appendSchedule(parent.schedule, inject), used)
	if err != nil {
		return err
	}
	h, err := child.snap.CanonicalHash()
	if err != nil {
		return err
	}
	if _, dup := x.visited[h]; dup {
		x.rep.DupEdges++
		return nil
	}
	x.visited[h] = struct{}{}
	x.rep.States++

	// Check battery on the newly visited state.
	if err := e.CheckInvariants(); err != nil {
		x.violation(child, "invariants", err.Error())
	}
	if err := e.VerifyInjectionProperty(); err != nil {
		x.violation(child, "alo-property", err.Error())
	}
	if err := x.checkRoundTrip(child, h); err != nil {
		x.violation(child, "snapshot-roundtrip", err.Error())
	}
	if len(child.gt) > 0 {
		x.rep.DeadlockStates++
		if err := x.probe(child); err != nil {
			return err
		}
	}

	x.stack = append(x.stack, child)
	x.sinceJournal++
	if x.opt.Journal != "" && x.sinceJournal >= x.opt.journalEvery() {
		x.sinceJournal = 0
		if err := x.writeJournal(); err != nil {
			return err
		}
	}
	if x.opt.Log != nil && x.rep.States%5000 == 0 {
		x.opt.logf("%d states, %d edges, %d deadlock states, frontier %d",
			x.rep.States, x.rep.Edges, x.rep.DeadlockStates, len(x.stack))
	}
	return nil
}

// checkRoundTrip asserts restore identity: loading the child snapshot into
// a fresh engine and re-snapshotting reproduces the canonical hash.
func (x *Explorer) checkRoundTrip(child *entry, want [32]byte) error {
	r, err := sim.RestoreEngine(x.cfg, child.snap)
	if err != nil {
		return err
	}
	defer r.Close()
	rs, err := r.Snapshot()
	if err != nil {
		return err
	}
	got, err := rs.CanonicalHash()
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("restored state hashes %x, original %x", got[:8], want[:8])
	}
	return nil
}

// probe is the zero-false-negatives check: from a ground-truth-deadlocked
// state, the engine runs forward (no further injections) and FC3D must
// fire recovery for some deadlocked message within the probe budget. A
// silent run is a false-negative counterexample; a deadlocked message
// getting *delivered* instead refutes the oracle itself (also fatal —
// the two implementations disagree and the checker cannot tell which is
// right without a human).
func (x *Explorer) probe(state *entry) error {
	x.rep.Probes++
	e, err := sim.RestoreEngine(x.cfg, state.snap)
	if err != nil {
		return err
	}
	defer e.Close()
	var detected, unsoundID int64 = -1, -1
	intervened := false
	e.SetListener(trace.Func(func(ev trace.Event) {
		switch ev.Kind {
		case trace.KindDeadlock:
			intervened = true
			if containsID(state.gt, ev.Msg) && detected < 0 {
				detected = ev.Msg
			}
		case trace.KindDelivered:
			// Delivery refutes the oracle only while the engine has not
			// intervened: the oracle's claim is "stuck in the absence of
			// recovery", and recovering ANY message (killing its worm frees
			// the channels the cycle waits on) leaves that modeled world.
			if containsID(state.gt, ev.Msg) && !intervened && unsoundID < 0 {
				unsoundID = ev.Msg
			}
		}
	}))
	budget := x.spec.probeBudget()
	for i := int64(0); i < budget; i++ {
		e.Step()
		if unsoundID >= 0 {
			x.rep.OracleUnsound++
			return x.emitCounterexample(state, CxOracleUnsound,
				fmt.Sprintf("message %d is oracle-deadlocked but was delivered at cycle %d", unsoundID, e.Now()))
		}
		if detected >= 0 && !x.opt.SyntheticMiss {
			x.rep.Detected++
			return nil
		}
	}
	x.rep.FalseNegatives++
	detail := fmt.Sprintf("no recovery of messages %v within %d probe cycles", state.gt, budget)
	if x.opt.SyntheticMiss && detected >= 0 {
		detail = fmt.Sprintf("synthetic miss: detector signal for message %d suppressed", detected)
	}
	return x.emitCounterexample(state, CxFalseNegative, detail)
}

// violation records a fatal per-state check failure and dumps the state.
func (x *Explorer) violation(state *entry, kind, detail string) {
	x.rep.Violations = append(x.rep.Violations, fmt.Sprintf("%s at depth %d: %s", kind, len(state.schedule), detail))
	if err := x.emitCounterexample(state, CxKind(kind), detail); err != nil {
		x.rep.Violations = append(x.rep.Violations, fmt.Sprintf("counterexample dump failed: %v", err))
	}
}

// emitCounterexample minimizes (for deadlock-probe failures) and persists
// a replayable counterexample, recording it in the report.
func (x *Explorer) emitCounterexample(state *entry, kind CxKind, detail string) error {
	cx := &Counterexample{
		Kind:     kind,
		Detail:   detail,
		Digest:   x.digest,
		Spec:     x.spec,
		Schedule: state.schedule,
		GT:       state.gt,
		Snap:     state.snap,
	}
	if kind == CxFalseNegative {
		x.minimize(cx)
	}
	x.rep.Counterexamples = append(x.rep.Counterexamples, fmt.Sprintf("%s: %s", kind, cx.Detail))
	if x.opt.CounterexampleDir == "" {
		return nil
	}
	path, err := cx.WriteDir(x.opt.CounterexampleDir, len(x.rep.Counterexamples))
	if err != nil {
		return err
	}
	x.opt.logf("counterexample written: %s", path)
	return nil
}

// minimize greedily shrinks a false-negative schedule: drop one injection
// at a time (then empty trailing cycles) while the replayed state still
// has a ground-truth deadlock that the detector misses.
func (x *Explorer) minimize(cx *Counterexample) {
	current := cloneSchedule(cx.Schedule)
	for {
		shrunk := false
		for c := 0; c < len(current) && !shrunk; c++ {
			for k := 0; k < len(current[c]); k++ {
				cand := cloneSchedule(current)
				cand[c] = append(append([]int(nil), current[c][:k]...), current[c][k+1:]...)
				if gt := x.stillMisses(cand); gt != nil {
					current, shrunk = cand, true
					cx.GT = gt
					break
				}
			}
		}
		// Trim trailing injection-free cycles.
		for len(current) > 0 && len(current[len(current)-1]) == 0 {
			cand := current[:len(current)-1]
			gt := x.stillMisses(cand)
			if gt == nil {
				break
			}
			current, shrunk = cand, true
			cx.GT = gt
		}
		if !shrunk {
			break
		}
	}
	cx.Schedule = current
	if e, err := x.materialize(current); err == nil {
		cx.Snap = e.snap
	}
}

// stillMisses replays a candidate schedule and reports whether it still
// reproduces the failure: a ground-truth deadlock the probe (under the
// same detector policy, including SyntheticMiss) does not detect. Returns
// the deadlocked set, or nil if the candidate no longer fails.
func (x *Explorer) stillMisses(schedule [][]int) []int64 {
	st, err := x.materialize(schedule)
	if err != nil || len(st.gt) == 0 {
		return nil
	}
	e, err := sim.RestoreEngine(x.cfg, st.snap)
	if err != nil {
		return nil
	}
	defer e.Close()
	detected := false
	e.SetListener(trace.Func(func(ev trace.Event) {
		if ev.Kind == trace.KindDeadlock && containsID(st.gt, ev.Msg) {
			detected = true
		}
	}))
	budget := x.spec.probeBudget()
	for i := int64(0); i < budget; i++ {
		e.Step()
		if detected && !x.opt.SyntheticMiss {
			return nil
		}
	}
	return st.gt
}

// journalState is the crash-resume image: enough to rebuild the explorer
// exactly (frontier entries are stored as schedules and re-materialized by
// deterministic replay on resume).
type journalState struct {
	Digest   string
	Spec     Spec
	Visited  [][32]byte
	Frontier []journalEntry
	Report   Report
}

type journalEntry struct {
	Schedule [][]int
	Used     uint32
}

func (x *Explorer) writeJournal() error {
	js := &journalState{
		Digest: x.digest,
		Spec:   x.spec,
		Report: *x.rep,
	}
	js.Visited = make([][32]byte, 0, len(x.visited))
	for h := range x.visited {
		js.Visited = append(js.Visited, h)
	}
	js.Frontier = make([]journalEntry, len(x.stack))
	for i, en := range x.stack {
		js.Frontier[i] = journalEntry{Schedule: en.schedule, Used: en.used}
	}
	return checkpoint.WriteFileValue(x.opt.Journal, js)
}

// Resume rebuilds an explorer from a journal written by a previous run
// with the same spec (enforced via the config digest) and continues it.
func Resume(path string, opt Options) (*Explorer, error) {
	js, err := checkpoint.ReadFileValue[journalState](path)
	if err != nil {
		return nil, err
	}
	x, err := newExplorer(js.Spec, opt)
	if err != nil {
		return nil, err
	}
	if x.digest != js.Digest {
		return nil, fmt.Errorf("modelcheck: journal written with config %q, spec builds %q", js.Digest, x.digest)
	}
	rep := js.Report
	x.rep = &rep
	x.rep.BudgetTruncated = false
	x.rep.Exhausted = false
	for _, h := range js.Visited {
		x.visited[h] = struct{}{}
	}
	x.opt.logf("resuming: %d visited states, %d frontier schedules", len(js.Visited), len(js.Frontier))
	for _, je := range js.Frontier {
		en, err := x.materialize(je.Schedule)
		if err != nil {
			return nil, fmt.Errorf("modelcheck: re-materialize frontier schedule: %w", err)
		}
		x.stack = append(x.stack, en)
	}
	return x, nil
}

func containsID(ids []int64, id int64) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

func appendSchedule(schedule [][]int, inject []int) [][]int {
	out := make([][]int, len(schedule)+1)
	copy(out, schedule)
	out[len(schedule)] = inject
	return out
}

func cloneSchedule(s [][]int) [][]int {
	out := make([][]int, len(s))
	for i, c := range s {
		out[i] = append([]int(nil), c...)
	}
	return out
}
