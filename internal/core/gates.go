package core

import (
	"fmt"

	"wormnet/internal/topology"
)

// This file models the hardware implementation of ALO shown in the paper's
// Figure 3 as an explicit combinational gate network. The inputs are the
// virtual-channel status register (one free/busy bit per output virtual
// channel) and the routing function's useful-channel vector (one bit per
// physical channel). The output is the INJECTION PERMITTED signal.
//
// Gate inventory, following the figure's lettering:
//
//	C (per physical channel): OR of the channel's VC free bits — "at least
//	    one virtual channel free".
//	D (per physical channel): AND of the channel's VC free bits — "all
//	    virtual channels free" (completely free).
//	B (per physical channel): masks C with the routing output: a channel
//	    that is not useful must not veto rule (a), so B = C OR NOT useful.
//	E (per physical channel): masks D with the routing output:
//	    E = D AND useful.
//	A: AND of all B outputs — rule (a) holds for every useful channel.
//	F: OR of all E outputs — rule (b) holds for some useful channel.
//	G: A OR F — injection permitted.
//
// The network is pure combinational logic: no registers, comparators or
// thresholds, which is the paper's implementation-cost argument. The
// property test in gates_test.go proves the circuit equivalent to
// ALO.Allow for every reachable input.

// Signal is a boolean wire value in the gate model.
type Signal = bool

// andGate returns the conjunction of its inputs (true for no inputs,
// matching a physical AND gate's identity element).
func andGate(in ...Signal) Signal {
	for _, s := range in {
		if !s {
			return false
		}
	}
	return true
}

// orGate returns the disjunction of its inputs (false for no inputs).
func orGate(in ...Signal) Signal {
	for _, s := range in {
		if s {
			return true
		}
	}
	return false
}

// notGate inverts its input.
func notGate(s Signal) Signal { return !s }

// Circuit is an instance of the Figure-3 gate network for a router with a
// fixed number of physical channels and virtual channels per channel.
type Circuit struct {
	ports int
	vcs   int
	// scratch wires, reused across evaluations
	c, d, b, e []Signal
}

// NewCircuit builds the gate network for ports physical channels with vcs
// virtual channels each.
func NewCircuit(ports, vcs int) *Circuit {
	if ports < 1 || vcs < 1 {
		panic(fmt.Sprintf("core: circuit needs ports>=1, vcs>=1 (got %d, %d)", ports, vcs))
	}
	return &Circuit{
		ports: ports,
		vcs:   vcs,
		c:     make([]Signal, ports),
		d:     make([]Signal, ports),
		b:     make([]Signal, ports),
		e:     make([]Signal, ports),
	}
}

// Ports returns the number of physical channels the circuit was built for.
func (ck *Circuit) Ports() int { return ck.ports }

// VCs returns the number of virtual channels per physical channel.
func (ck *Circuit) VCs() int { return ck.vcs }

// Eval computes the INJECTION PERMITTED output.
//
// vcFree is the virtual-channel status register: vcFree[p*vcs+v] is true
// when virtual channel v of physical channel p is free. useful is the
// routing function's output: useful[p] is true when physical channel p can
// forward the message towards its destination. Eval panics if the input
// widths do not match the circuit.
func (ck *Circuit) Eval(vcFree []Signal, useful []Signal) Signal {
	if len(vcFree) != ck.ports*ck.vcs {
		panic(fmt.Sprintf("core: status register width %d, want %d", len(vcFree), ck.ports*ck.vcs))
	}
	if len(useful) != ck.ports {
		panic(fmt.Sprintf("core: routing vector width %d, want %d", len(useful), ck.ports))
	}
	for p := 0; p < ck.ports; p++ {
		bits := vcFree[p*ck.vcs : (p+1)*ck.vcs]
		ck.c[p] = orGate(bits...)                     // C: >=1 free VC
		ck.d[p] = andGate(bits...)                    // D: all VCs free
		ck.b[p] = orGate(ck.c[p], notGate(useful[p])) // B: useful -> C
		ck.e[p] = andGate(ck.d[p], useful[p])         // E: D masked by useful
	}
	a := andGate(ck.b...) // A: rule (a) over all useful channels
	f := orGate(ck.e...)  // F: rule (b) over all useful channels
	return orGate(a, f)   // G: injection permitted
}

// EvalView runs the circuit against a live ChannelView, deriving the status
// register and routing vector exactly as the hardware would: the register
// reports each virtual channel's free/busy state and the routing function
// asserts the useful-channel lines. It panics if the view's geometry does
// not match the circuit.
//
// Note the derived status register only distinguishes the *count* of free
// VCs per channel; that is sufficient because the ALO gates are symmetric
// in the VC bits of a channel (any VC of a physical channel is usable by
// any message under TFAR, as the paper's implementation note states).
func (ck *Circuit) EvalView(v ChannelView, dst topology.NodeID) Signal {
	if v.NumPorts() != ck.ports || v.VCs() != ck.vcs {
		panic("core: view geometry does not match circuit")
	}
	vcFree := make([]Signal, ck.ports*ck.vcs)
	for p := 0; p < ck.ports; p++ {
		free := v.FreeVCs(topology.Port(p))
		for i := 0; i < free; i++ {
			vcFree[p*ck.vcs+i] = true
		}
	}
	useful := make([]Signal, ck.ports)
	for _, p := range v.UsefulPorts(dst) {
		useful[p] = true
	}
	return ck.Eval(vcFree, useful)
}
