// Package core implements the paper's primary contribution: the ALO
// ("At Least One") message-injection limitation mechanism that prevents
// wormhole networks from entering saturation.
//
// Before a newly generated message is injected, the routing function is
// executed for it; injection is permitted iff
//
//   - rule (a): every useful physical output channel (every physical channel
//     returned by the routing function) has at least one free virtual
//     channel, OR
//   - rule (b): at least one useful physical channel is completely free
//     (none of its virtual channels is allocated).
//
// Otherwise the message waits in the source queue. The mechanism has no
// threshold to tune, adapts to arbitrary destination distributions because
// it only inspects channels the message could actually use, and reduces to a
// handful of logic gates in hardware (see gates.go, which models the
// paper's Figure 3 circuit and is property-tested against the predicate).
//
// The package also provides the Limiter interface that the simulation engine
// consults, ablation variants of ALO (rule a only, rule b only, counting all
// physical channels instead of the useful ones), and an instrumented wrapper
// used to reproduce the paper's Figure 2.
package core

import (
	"wormnet/internal/topology"
)

// ChannelView is the router-local state an injection limiter may inspect:
// exactly the information available to the injection control unit of a node
// (the routing function plus the virtual-channel status register).
type ChannelView interface {
	// UsefulPorts returns the physical output ports the routing function
	// yields for a locally generated message addressed to dst. The slice is
	// only valid until the next call.
	UsefulPorts(dst topology.NodeID) []topology.Port
	// FreeVCs returns the number of unallocated virtual channels of
	// physical output port p.
	FreeVCs(p topology.Port) int
	// VCs returns the number of virtual channels per physical channel.
	VCs() int
	// NumPorts returns the number of physical network output ports (2n).
	NumPorts() int
	// QueuedMessages returns the current source-queue length of the node,
	// used by threshold-adapting baseline mechanisms (not by ALO).
	QueuedMessages() int
	// HeadWait returns how many cycles the source queue's head message has
	// been waiting since generation (0 with an empty queue). Threshold
	// mechanisms use it for starvation avoidance; ALO does not need it.
	HeadWait() int64
}

// Limiter decides whether a newly generated message may be injected now.
// A Limiter instance belongs to a single node; stateful implementations
// (e.g. baseline.DRIL) keep per-node state across calls.
type Limiter interface {
	// Allow reports whether the message addressed to dst may enter the
	// network in the current cycle.
	Allow(v ChannelView, dst topology.NodeID) bool
	// Name returns the mechanism's short name as used in reports.
	Name() string
}

// CycleObserver is implemented by limiters that need a per-cycle hook (e.g.
// to adapt thresholds). The engine calls Tick once per node per cycle.
type CycleObserver interface {
	Tick(v ChannelView, now int64)
}

// Factory builds one Limiter instance per node. node identifies the node;
// vcs is the number of virtual channels per physical channel.
type Factory func(node topology.NodeID, t *topology.Torus, vcs int) Limiter

// StatefulLimiter is implemented by limiters that carry mutable per-node
// state across cycles (e.g. baseline.LF's EWMA, baseline.DRIL's frozen
// threshold) and therefore must be captured by engine snapshots. Stateless
// limiters (the ALO family) simply do not implement it. SaveState packs the
// state into words (floats as their IEEE-754 bits); LoadState restores it
// and fails on a word count its implementation does not recognise.
type StatefulLimiter interface {
	Limiter
	SaveState() []uint64
	LoadState([]uint64) error
}

// RuleClassifier is implemented by limiters whose decision decomposes into
// the paper's two rules. The engine's metrics layer uses it to attribute a
// denial to the rule(s) that failed — rule (a): some useful channel has no
// free virtual channel; rule (b): no useful channel is completely free —
// without re-deciding or altering the injection outcome.
type RuleClassifier interface {
	// ClassifyRules reports whether rule (a) and rule (b) hold for a
	// message addressed to dst, over the channel set the limiter inspects.
	ClassifyRules(v ChannelView, dst topology.NodeID) (ruleA, ruleB bool)
}

// EvalRules evaluates both ALO rules over the useful channels: ruleA is
// "every useful physical channel has at least one free virtual channel",
// ruleB "at least one useful physical channel is completely free". It is
// the shared classification behind the ALO-family RuleClassifier
// implementations and the Figure-2 probe.
func EvalRules(v ChannelView, dst topology.NodeID) (ruleA, ruleB bool) {
	vcs := v.VCs()
	ruleA = true
	for _, p := range v.UsefulPorts(dst) {
		free := v.FreeVCs(p)
		if free == 0 {
			ruleA = false
		}
		if free == vcs {
			ruleB = true
		}
	}
	return ruleA, ruleB
}

// ALO is the paper's At-Least-One injection limitation mechanism.
// The zero value is ready to use; ALO is stateless.
type ALO struct{}

// NewALO returns the ALO limiter factory.
func NewALO() Factory {
	return func(topology.NodeID, *topology.Torus, int) Limiter { return ALO{} }
}

// Allow implements Limiter: rule (a) OR rule (b) over the useful channels.
func (ALO) Allow(v ChannelView, dst topology.NodeID) bool {
	vcs := v.VCs()
	allPartiallyFree := true
	for _, p := range v.UsefulPorts(dst) {
		free := v.FreeVCs(p)
		if free == vcs {
			return true // rule (b): a completely free useful channel
		}
		if free == 0 {
			allPartiallyFree = false
		}
	}
	return allPartiallyFree // rule (a): every useful channel has a free VC
}

// Name implements Limiter.
func (ALO) Name() string { return "alo" }

// ClassifyRules implements RuleClassifier.
func (ALO) ClassifyRules(v ChannelView, dst topology.NodeID) (bool, bool) {
	return EvalRules(v, dst)
}

// RuleAOnly is the ablation variant that applies only ALO's first rule:
// inject iff every useful physical channel has at least one free virtual
// channel. The paper's Figure 2 shows this alone is a good but occasionally
// over-restrictive congestion indicator.
type RuleAOnly struct{}

// NewRuleAOnly returns the factory for the rule-(a)-only ablation.
func NewRuleAOnly() Factory {
	return func(topology.NodeID, *topology.Torus, int) Limiter { return RuleAOnly{} }
}

// Allow implements Limiter.
func (RuleAOnly) Allow(v ChannelView, dst topology.NodeID) bool {
	for _, p := range v.UsefulPorts(dst) {
		if v.FreeVCs(p) == 0 {
			return false
		}
	}
	return true
}

// Name implements Limiter.
func (RuleAOnly) Name() string { return "alo-rule-a" }

// ClassifyRules implements RuleClassifier.
func (RuleAOnly) ClassifyRules(v ChannelView, dst topology.NodeID) (bool, bool) {
	return EvalRules(v, dst)
}

// RuleBOnly is the ablation variant that applies only ALO's second rule:
// inject iff at least one useful physical channel is completely free. The
// paper's Figure 2 shows this alone is a poor congestion indicator.
type RuleBOnly struct{}

// NewRuleBOnly returns the factory for the rule-(b)-only ablation.
func NewRuleBOnly() Factory {
	return func(topology.NodeID, *topology.Torus, int) Limiter { return RuleBOnly{} }
}

// Allow implements Limiter.
func (RuleBOnly) Allow(v ChannelView, dst topology.NodeID) bool {
	vcs := v.VCs()
	for _, p := range v.UsefulPorts(dst) {
		if v.FreeVCs(p) == vcs {
			return true
		}
	}
	return false
}

// Name implements Limiter.
func (RuleBOnly) Name() string { return "alo-rule-b" }

// ClassifyRules implements RuleClassifier.
func (RuleBOnly) ClassifyRules(v ChannelView, dst topology.NodeID) (bool, bool) {
	return EvalRules(v, dst)
}

// AllChannels is the ablation variant that evaluates the ALO predicate over
// every physical channel of the node instead of only the useful ones. It
// demonstrates why restricting attention to the routing function's output
// matters: under non-uniform patterns it reacts to congestion in regions the
// message would never traverse.
type AllChannels struct{}

// NewAllChannels returns the factory for the all-channels ablation.
func NewAllChannels() Factory {
	return func(topology.NodeID, *topology.Torus, int) Limiter { return AllChannels{} }
}

// Allow implements Limiter.
func (AllChannels) Allow(v ChannelView, _ topology.NodeID) bool {
	vcs := v.VCs()
	allPartiallyFree := true
	for p := 0; p < v.NumPorts(); p++ {
		free := v.FreeVCs(topology.Port(p))
		if free == vcs {
			return true
		}
		if free == 0 {
			allPartiallyFree = false
		}
	}
	return allPartiallyFree
}

// Name implements Limiter.
func (AllChannels) Name() string { return "alo-all-channels" }

// ClassifyRules implements RuleClassifier over all physical channels (the
// set this ablation actually inspects).
func (AllChannels) ClassifyRules(v ChannelView, _ topology.NodeID) (bool, bool) {
	vcs := v.VCs()
	ruleA, ruleB := true, false
	for p := 0; p < v.NumPorts(); p++ {
		free := v.FreeVCs(topology.Port(p))
		if free == 0 {
			ruleA = false
		}
		if free == vcs {
			ruleB = true
		}
	}
	return ruleA, ruleB
}
