package core

import (
	"math/rand/v2"
	"testing"

	"wormnet/internal/topology"
)

// specAllow is a direct transliteration of the paper's injection condition,
// kept deliberately naive: rule (a) — every useful physical channel has at
// least one free virtual channel — OR rule (b) — some useful channel is
// completely free. It is the specification the production predicate, the
// ablation variants and the gate circuit are all checked against.
func specAllow(v ChannelView, dst topology.NodeID) bool {
	ruleA := true
	ruleB := false
	for _, p := range v.UsefulPorts(dst) {
		free := v.FreeVCs(p)
		if free == 0 {
			ruleA = false
		}
		if free == v.VCs() {
			ruleB = true
		}
	}
	return ruleA || ruleB
}

// TestALOSpecProperty drives ALO.Allow with randomly generated channel
// states over random router geometries and asserts, for every state, that
// injection is permitted iff the specification predicate holds; that ALO is
// exactly the disjunction of its two ablation rules; and that the Figure-3
// gate circuit agrees on matching geometries.
func TestALOSpecProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 42))
	alo := ALO{}
	ruleA := RuleAOnly{}
	ruleB := RuleBOnly{}
	for trial := 0; trial < 20000; trial++ {
		ports := 1 + rng.IntN(8)
		vcs := 1 + rng.IntN(4)
		free := map[topology.Port]int{}
		for p := 0; p < ports; p++ {
			free[topology.Port(p)] = rng.IntN(vcs + 1)
		}
		// A random subset of the ports is useful, including the empty set
		// (unreachable in the engine, but the predicate must stay total)
		// and duplicate entries (routing functions may repeat a port).
		var useful []topology.Port
		for p := 0; p < ports; p++ {
			if rng.IntN(2) == 0 {
				useful = append(useful, topology.Port(p))
			}
		}
		if len(useful) > 0 && rng.IntN(4) == 0 {
			useful = append(useful, useful[rng.IntN(len(useful))])
		}
		v := &fakeView{useful: useful, free: free, vcs: vcs, ports: ports}

		want := specAllow(v, 1)
		if got := alo.Allow(v, 1); got != want {
			t.Fatalf("trial %d (ports=%d vcs=%d useful=%v free=%v): Allow=%v spec=%v",
				trial, ports, vcs, useful, free, got, want)
		}
		if got := ruleA.Allow(v, 1) || ruleB.Allow(v, 1); got != want {
			t.Fatalf("trial %d: ruleA∨ruleB=%v spec=%v (useful=%v free=%v)",
				trial, got, want, useful, free)
		}
		if got := NewCircuit(ports, vcs).EvalView(v, 1); got != want {
			t.Fatalf("trial %d: circuit=%v spec=%v (ports=%d vcs=%d useful=%v free=%v)",
				trial, got, want, ports, vcs, useful, free)
		}
	}
}

// TestALOMonotoneInFreedom checks a structural consequence of the spec that
// random point sampling alone would miss: freeing one more virtual channel
// on a useful port never turns a permitted injection into a forbidden one.
func TestALOMonotoneInFreedom(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 23))
	alo := ALO{}
	for trial := 0; trial < 10000; trial++ {
		ports := 1 + rng.IntN(6)
		vcs := 1 + rng.IntN(4)
		free := map[topology.Port]int{}
		var useful []topology.Port
		for p := 0; p < ports; p++ {
			free[topology.Port(p)] = rng.IntN(vcs + 1)
			useful = append(useful, topology.Port(p))
		}
		v := &fakeView{useful: useful, free: free, vcs: vcs, ports: ports}
		before := alo.Allow(v, 1)

		p := topology.Port(rng.IntN(ports))
		if free[p] == vcs {
			continue
		}
		free[p]++
		if before && !alo.Allow(v, 1) {
			t.Fatalf("trial %d: freeing a VC on port %d revoked injection (vcs=%d free=%v)",
				trial, p, vcs, free)
		}
	}
}
