package core

import (
	"sync/atomic"

	"wormnet/internal/topology"
)

// ProbeStats accumulates, across all nodes of a run, how often each ALO
// condition held at injection-decision time. It reproduces the measurement
// behind the paper's Figure 2: the percentage of routing occurrences with
// (a) at least one free virtual channel in every useful physical channel,
// (b) at least one useful physical channel completely free, and (a)∨(b).
//
// Counters are updated atomically so a run may be sampled while in flight.
type ProbeStats struct {
	total  atomic.Int64
	condA  atomic.Int64
	condB  atomic.Int64
	either atomic.Int64
}

// Total returns the number of injection decisions observed.
func (s *ProbeStats) Total() int64 { return s.total.Load() }

// PercentA returns the percentage of decisions where rule (a) held.
func (s *ProbeStats) PercentA() float64 { return pct(s.condA.Load(), s.total.Load()) }

// PercentB returns the percentage of decisions where rule (b) held.
func (s *ProbeStats) PercentB() float64 { return pct(s.condB.Load(), s.total.Load()) }

// PercentEither returns the percentage of decisions where (a)∨(b) held.
func (s *ProbeStats) PercentEither() float64 { return pct(s.either.Load(), s.total.Load()) }

func pct(n, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// probe evaluates both ALO rules on every decision, records them into the
// shared ProbeStats, then delegates the actual decision to the wrapped
// limiter (typically the unrestricted baseline, so that the measured
// condition frequencies reflect the unthrottled network as in the paper).
type probe struct {
	inner Limiter
	stats *ProbeStats
}

// WrapProbe decorates a limiter factory with Figure-2 instrumentation.
// All per-node limiter instances share the returned ProbeStats.
func WrapProbe(inner Factory) (Factory, *ProbeStats) {
	stats := &ProbeStats{}
	f := func(node topology.NodeID, t *topology.Torus, vcs int) Limiter {
		return &probe{inner: inner(node, t, vcs), stats: stats}
	}
	return f, stats
}

// Allow implements Limiter.
func (p *probe) Allow(v ChannelView, dst topology.NodeID) bool {
	a, b := EvalRules(v, dst)
	p.stats.total.Add(1)
	if a {
		p.stats.condA.Add(1)
	}
	if b {
		p.stats.condB.Add(1)
	}
	if a || b {
		p.stats.either.Add(1)
	}
	return p.inner.Allow(v, dst)
}

// Name implements Limiter.
func (p *probe) Name() string { return p.inner.Name() + "+probe" }

// Tick forwards the per-cycle hook to the wrapped limiter if it needs one.
func (p *probe) Tick(v ChannelView, now int64) {
	if o, ok := p.inner.(CycleObserver); ok {
		o.Tick(v, now)
	}
}
