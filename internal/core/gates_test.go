package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"wormnet/internal/topology"
)

func TestGatePrimitives(t *testing.T) {
	if !andGate() || orGate() {
		t.Error("identity elements wrong")
	}
	if !andGate(true, true) || andGate(true, false) {
		t.Error("and gate wrong")
	}
	if !orGate(false, true) || orGate(false, false) {
		t.Error("or gate wrong")
	}
	if notGate(true) || !notGate(false) {
		t.Error("not gate wrong")
	}
}

func TestCircuitConstruction(t *testing.T) {
	ck := NewCircuit(6, 3)
	if ck.Ports() != 6 || ck.VCs() != 3 {
		t.Fatal("geometry")
	}
	for _, f := range []func(){
		func() { NewCircuit(0, 3) },
		func() { NewCircuit(6, 0) },
		func() { ck.Eval(make([]Signal, 5), make([]Signal, 6)) },
		func() { ck.Eval(make([]Signal, 18), make([]Signal, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCircuitTruthTableExamples(t *testing.T) {
	// 2 ports, 2 VCs: exhaustively checkable by hand.
	ck := NewCircuit(2, 2)
	cases := []struct {
		vcFree []Signal // [p0v0 p0v1 p1v0 p1v1]
		useful []Signal
		want   Signal
	}{
		// Both ports useful, each has one free VC -> rule a.
		{[]Signal{true, false, false, true}, []Signal{true, true}, true},
		// Port 0 exhausted, port 1 partially free -> neither rule.
		{[]Signal{false, false, true, false}, []Signal{true, true}, false},
		// Port 0 exhausted, port 1 completely free -> rule b.
		{[]Signal{false, false, true, true}, []Signal{true, true}, true},
		// Only port 1 useful and exhausted; port 0 completely free but
		// not useful -> forbid.
		{[]Signal{true, true, false, false}, []Signal{false, true}, false},
		// Nothing useful -> vacuous rule a permits.
		{[]Signal{false, false, false, false}, []Signal{false, false}, true},
	}
	for i, c := range cases {
		if got := ck.Eval(c.vcFree, c.useful); got != c.want {
			t.Errorf("case %d: Eval=%v want %v", i, got, c.want)
		}
	}
}

// referencePredicate is the ALO definition written independently of both the
// gate network and ALO.Allow: used as the oracle for equivalence testing.
func referencePredicate(vcFree []Signal, useful []Signal, vcs int) Signal {
	ruleA := true
	ruleB := false
	for p := range useful {
		if !useful[p] {
			continue
		}
		free := 0
		for v := 0; v < vcs; v++ {
			if vcFree[p*vcs+v] {
				free++
			}
		}
		if free == 0 {
			ruleA = false
		}
		if free == vcs {
			ruleB = true
		}
	}
	return ruleA || ruleB
}

// The gate circuit must agree with the reference predicate on the entire
// input space of the paper's configuration (6 ports x 3 VCs = 2^18 status
// registers x 2^6 routing vectors is too large to enumerate; we enumerate a
// 3x2 configuration exhaustively and fuzz the 6x3 one).
func TestGateCircuitExhaustiveSmall(t *testing.T) {
	const ports, vcs = 3, 2
	ck := NewCircuit(ports, vcs)
	vcFree := make([]Signal, ports*vcs)
	useful := make([]Signal, ports)
	for sr := 0; sr < 1<<(ports*vcs); sr++ {
		for i := range vcFree {
			vcFree[i] = sr&(1<<i) != 0
		}
		for u := 0; u < 1<<ports; u++ {
			for i := range useful {
				useful[i] = u&(1<<i) != 0
			}
			want := referencePredicate(vcFree, useful, vcs)
			if got := ck.Eval(vcFree, useful); got != want {
				t.Fatalf("sr=%b u=%b: circuit=%v reference=%v", sr, u, got, want)
			}
		}
	}
}

func TestGateCircuitFuzzPaperConfig(t *testing.T) {
	const ports, vcs = 6, 3
	ck := NewCircuit(ports, vcs)
	f := func(sr uint32, u uint8) bool {
		vcFree := make([]Signal, ports*vcs)
		for i := range vcFree {
			vcFree[i] = sr&(1<<i) != 0
		}
		useful := make([]Signal, ports)
		for i := range useful {
			useful[i] = u&(1<<i) != 0
		}
		return ck.Eval(vcFree, useful) == referencePredicate(vcFree, useful, vcs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestGateCircuitMatchesPredicate cross-checks the circuit against the
// production ALO.Allow through a live ChannelView, closing the loop between
// the hardware model (Figure 3) and the software predicate.
func TestGateCircuitMatchesPredicate(t *testing.T) {
	tp := topology.New(8, 3)
	ck := NewCircuit(tp.NumPorts(), 3)
	alo := ALO{}
	rng := rand.New(rand.NewPCG(3, 14))
	for trial := 0; trial < 3000; trial++ {
		free := map[topology.Port]int{}
		for p := 0; p < tp.NumPorts(); p++ {
			free[topology.Port(p)] = rng.IntN(4)
		}
		src := topology.NodeID(rng.IntN(tp.Nodes()))
		dst := topology.NodeID(rng.IntN(tp.Nodes()))
		if src == dst {
			continue
		}
		v := &fakeView{
			useful: tp.UsefulPorts(src, dst, nil),
			free:   free,
			vcs:    3,
			ports:  tp.NumPorts(),
		}
		if got, want := ck.EvalView(v, dst), alo.Allow(v, dst); got != want {
			t.Fatalf("trial %d (src=%d dst=%d free=%v): circuit=%v predicate=%v",
				trial, src, dst, free, got, want)
		}
	}
}

func TestEvalViewGeometryMismatch(t *testing.T) {
	ck := NewCircuit(6, 3)
	v := &fakeView{vcs: 2, ports: 6}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ck.EvalView(v, 1)
}
