package core

import (
	"testing"

	"wormnet/internal/topology"
)

// fakeView is a hand-built ChannelView for predicate tests.
type fakeView struct {
	useful   []topology.Port
	free     map[topology.Port]int
	vcs      int
	ports    int
	queued   int
	headWait int64
}

func (f *fakeView) HeadWait() int64 { return f.headWait }

func (f *fakeView) UsefulPorts(topology.NodeID) []topology.Port { return f.useful }
func (f *fakeView) FreeVCs(p topology.Port) int                 { return f.free[p] }
func (f *fakeView) VCs() int                                    { return f.vcs }
func (f *fakeView) NumPorts() int                               { return f.ports }
func (f *fakeView) QueuedMessages() int                         { return f.queued }

func view(vcs, ports int, useful []topology.Port, free map[topology.Port]int) *fakeView {
	return &fakeView{useful: useful, free: free, vcs: vcs, ports: ports}
}

func TestALOPredicate(t *testing.T) {
	alo := NewALO()(0, topology.New(8, 3), 3)
	if alo.Name() != "alo" {
		t.Fatalf("name %q", alo.Name())
	}
	cases := []struct {
		name  string
		v     *fakeView
		allow bool
	}{
		{
			// Paper's uniform example: all 6 channels useful, each with
			// >=1 free VC -> rule (a) permits.
			name: "all partially free",
			v: view(3, 6, []topology.Port{0, 1, 2, 3, 4, 5},
				map[topology.Port]int{0: 1, 1: 2, 2: 1, 3: 3, 4: 1, 5: 2}),
			allow: true,
		},
		{
			// One useful channel exhausted, none completely free -> forbid.
			name: "one exhausted",
			v: view(3, 6, []topology.Port{0, 1, 2, 3, 4, 5},
				map[topology.Port]int{0: 0, 1: 2, 2: 1, 3: 2, 4: 1, 5: 2}),
			allow: false,
		},
		{
			// One useful channel exhausted but another completely free ->
			// rule (b) permits.
			name: "rule b rescues",
			v: view(3, 6, []topology.Port{0, 1, 2, 3, 4, 5},
				map[topology.Port]int{0: 0, 1: 3, 2: 1, 3: 2, 4: 1, 5: 2}),
			allow: true,
		},
		{
			// Butterfly-style: only 2 useful channels; one busy one full.
			name: "subset busy, other completely free",
			v: view(3, 6, []topology.Port{1, 4},
				map[topology.Port]int{0: 0, 1: 0, 2: 0, 3: 0, 4: 3, 5: 0}),
			allow: true,
		},
		{
			// Subset with all channels exhausted -> forbid, even though a
			// non-useful channel is completely free.
			name: "non-useful free channel ignored",
			v: view(3, 6, []topology.Port{1, 4},
				map[topology.Port]int{0: 3, 1: 0, 2: 3, 3: 3, 4: 0, 5: 3}),
			allow: false,
		},
		{
			// All useful channels exhausted.
			name: "everything busy",
			v: view(3, 6, []topology.Port{0, 1, 2, 3, 4, 5},
				map[topology.Port]int{}),
			allow: false,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := alo.Allow(c.v, 1); got != c.allow {
				t.Errorf("Allow=%v want %v", got, c.allow)
			}
		})
	}
}

func TestALOEmptyUsefulSet(t *testing.T) {
	// A message with no useful ports cannot occur (dst != src), but the
	// predicate must degrade safely: rule (a) vacuously true.
	alo := ALO{}
	if !alo.Allow(view(3, 6, nil, nil), 1) {
		t.Error("empty useful set should permit (vacuous rule a)")
	}
}

func TestRuleAblations(t *testing.T) {
	tp := topology.New(8, 3)
	a := NewRuleAOnly()(0, tp, 3)
	b := NewRuleBOnly()(0, tp, 3)
	all := NewAllChannels()(0, tp, 3)
	if a.Name() != "alo-rule-a" || b.Name() != "alo-rule-b" || all.Name() != "alo-all-channels" {
		t.Fatal("names")
	}

	// One useful channel exhausted, another completely free.
	v := view(3, 6, []topology.Port{1, 4},
		map[topology.Port]int{1: 0, 4: 3})
	if a.Allow(v, 1) {
		t.Error("rule-a-only must forbid when a useful channel is exhausted")
	}
	if !b.Allow(v, 1) {
		t.Error("rule-b-only must permit when a useful channel is completely free")
	}

	// All useful channels partially free, none completely free.
	v = view(3, 6, []topology.Port{1, 4},
		map[topology.Port]int{1: 1, 4: 2})
	if !a.Allow(v, 1) {
		t.Error("rule-a-only must permit when all useful channels are partially free")
	}
	if b.Allow(v, 1) {
		t.Error("rule-b-only must forbid when no useful channel is completely free")
	}

	// AllChannels looks at every port: a distant exhausted channel vetoes
	// even though the useful ones are fine.
	v = view(3, 6, []topology.Port{1},
		map[topology.Port]int{0: 0, 1: 2, 2: 1, 3: 1, 4: 1, 5: 1})
	if all.Allow(v, 1) {
		t.Error("all-channels variant should veto on any exhausted port")
	}
	// ... and a completely free channel anywhere rescues it.
	v = view(3, 6, []topology.Port{1},
		map[topology.Port]int{0: 0, 1: 2, 2: 3, 3: 1, 4: 1, 5: 1})
	if !all.Allow(v, 1) {
		t.Error("all-channels variant should permit via any completely free port")
	}
}

func TestProbeCountsConditions(t *testing.T) {
	tp := topology.New(8, 3)
	inner := NewALO()
	factory, stats := WrapProbe(inner)
	lim := factory(0, tp, 3)
	if lim.Name() != "alo+probe" {
		t.Fatalf("name %q", lim.Name())
	}

	// Decision 1: a holds, b doesn't.
	lim.Allow(view(3, 6, []topology.Port{0, 1}, map[topology.Port]int{0: 1, 1: 1}), 1)
	// Decision 2: b holds, a doesn't.
	lim.Allow(view(3, 6, []topology.Port{0, 1}, map[topology.Port]int{0: 0, 1: 3}), 1)
	// Decision 3: neither holds.
	lim.Allow(view(3, 6, []topology.Port{0, 1}, map[topology.Port]int{0: 0, 1: 1}), 1)
	// Decision 4: both hold.
	lim.Allow(view(3, 6, []topology.Port{0, 1}, map[topology.Port]int{0: 3, 1: 1}), 1)

	if stats.Total() != 4 {
		t.Fatalf("Total=%d", stats.Total())
	}
	if got := stats.PercentA(); got != 50 {
		t.Errorf("PercentA=%v want 50", got)
	}
	if got := stats.PercentB(); got != 50 {
		t.Errorf("PercentB=%v want 50", got)
	}
	if got := stats.PercentEither(); got != 75 {
		t.Errorf("PercentEither=%v want 75", got)
	}
}

func TestProbeEmptyStats(t *testing.T) {
	var s ProbeStats
	if s.PercentA() != 0 || s.PercentB() != 0 || s.PercentEither() != 0 {
		t.Error("empty stats must report 0%")
	}
}

// tickingLimiter records Tick calls to verify probe forwarding.
type tickingLimiter struct {
	ticks int
}

func (l *tickingLimiter) Allow(ChannelView, topology.NodeID) bool { return true }
func (l *tickingLimiter) Name() string                            { return "ticking" }
func (l *tickingLimiter) Tick(ChannelView, int64)                 { l.ticks++ }

func TestProbeForwardsTick(t *testing.T) {
	tp := topology.New(8, 3)
	inner := &tickingLimiter{}
	factory, _ := WrapProbe(func(topology.NodeID, *topology.Torus, int) Limiter { return inner })
	lim := factory(0, tp, 3)
	obs, ok := lim.(CycleObserver)
	if !ok {
		t.Fatal("probe must implement CycleObserver")
	}
	obs.Tick(view(3, 6, nil, nil), 1)
	obs.Tick(view(3, 6, nil, nil), 2)
	if inner.ticks != 2 {
		t.Errorf("inner ticks=%d want 2", inner.ticks)
	}
	// Wrapping a non-observer inner must not panic on Tick.
	factory2, _ := WrapProbe(NewALO())
	factory2(0, tp, 3).(CycleObserver).Tick(view(3, 6, nil, nil), 1)
}

func TestProbeDelegates(t *testing.T) {
	tp := topology.New(8, 3)
	factory, _ := WrapProbe(NewRuleBOnly())
	lim := factory(0, tp, 3)
	// Rule b fails here, so the wrapped decision must be false even though
	// rule a holds.
	v := view(3, 6, []topology.Port{0}, map[topology.Port]int{0: 1})
	if lim.Allow(v, 1) {
		t.Error("probe must delegate the decision to the inner limiter")
	}
}
