package traffic

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"wormnet/internal/topology"
)

func rng() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

func TestUniformNeverSelf(t *testing.T) {
	tp := topology.New(4, 2)
	u := NewUniform(tp)
	r := rng()
	for src := 0; src < tp.Nodes(); src++ {
		for i := 0; i < 200; i++ {
			d := u.Destination(topology.NodeID(src), r)
			if d == topology.NodeID(src) {
				t.Fatalf("uniform returned self for %d", src)
			}
			if !tp.Valid(d) {
				t.Fatalf("uniform returned invalid node %d", d)
			}
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	tp := topology.New(4, 2)
	u := NewUniform(tp)
	r := rng()
	seen := make(map[topology.NodeID]int)
	const draws = 16000
	for i := 0; i < draws; i++ {
		seen[u.Destination(0, r)]++
	}
	if len(seen) != tp.Nodes()-1 {
		t.Fatalf("uniform covered %d destinations, want %d", len(seen), tp.Nodes()-1)
	}
	// Chi-square-ish sanity: each of the 15 destinations expects ~1066 hits.
	for d, c := range seen {
		if c < 800 || c > 1350 {
			t.Errorf("destination %d drawn %d times, expected ~%d", d, c, draws/(tp.Nodes()-1))
		}
	}
}

func TestButterflyExamples(t *testing.T) {
	tp := topology.New(8, 3) // 512 nodes, 9 bits
	b := NewButterfly(tp)
	cases := []struct{ src, dst int }{
		{0, 0},                // 000000000 fixed
		{1, 256},              // swap LSB into MSB
		{256, 1},              // and back
		{0x1FF, 0x1FF},        // all ones fixed
		{0x101, 0x101},        // msb==lsb fixed
		{0x100 | 0x02, 0x102}, // lsb=0,msb=1? 0x102: lsb=0 msb=1 -> swap -> 0x003? compute below
	}
	// Recompute last case properly: addr=0x102 = 1_0000_0010, msb=1,lsb=0 -> swapped: 0_0000_0011 = 0x003.
	cases[5].dst = 0x003
	for _, c := range cases {
		if got := b.Destination(topology.NodeID(c.src), nil); got != topology.NodeID(c.dst) {
			t.Errorf("butterfly(%#x)=%#x want %#x", c.src, got, c.dst)
		}
	}
}

func TestComplementExamples(t *testing.T) {
	tp := topology.New(8, 3)
	c := NewComplement(tp)
	if got := c.Destination(0, nil); got != 511 {
		t.Errorf("complement(0)=%d want 511", got)
	}
	if got := c.Destination(0x155, nil); got != 0x0AA {
		t.Errorf("complement(0x155)=%#x want 0xAA", got)
	}
}

func TestBitReversalExamples(t *testing.T) {
	tp := topology.New(8, 3)
	p := NewBitReversal(tp)
	cases := []struct{ src, dst int }{
		{0, 0},
		{1, 256}, // 000000001 -> 100000000
		{0b110000000, 0b000000011},
		{0b101010101, 0b101010101}, // palindrome
	}
	for _, c := range cases {
		if got := p.Destination(topology.NodeID(c.src), nil); got != topology.NodeID(c.dst) {
			t.Errorf("reversal(%#b)=%#b want %#b", c.src, got, c.dst)
		}
	}
}

func TestPerfectShuffleExamples(t *testing.T) {
	tp := topology.New(8, 3)
	p := NewPerfectShuffle(tp)
	cases := []struct{ src, dst int }{
		{0, 0},
		{1, 2},
		{256, 1}, // msb rotates to lsb
		{0b100000001, 0b000000011},
	}
	for _, c := range cases {
		if got := p.Destination(topology.NodeID(c.src), nil); got != topology.NodeID(c.dst) {
			t.Errorf("shuffle(%#b)=%#b want %#b", c.src, got, c.dst)
		}
	}
}

func TestTransposeExamples(t *testing.T) {
	tp := topology.New(4, 2) // 16 nodes, 4 bits
	p := NewTranspose(tp)
	cases := []struct{ src, dst int }{
		{0b0000, 0b0000},
		{0b0011, 0b1100},
		{0b1100, 0b0011},
		{0b0110, 0b1001},
	}
	for _, c := range cases {
		if got := p.Destination(topology.NodeID(c.src), nil); got != topology.NodeID(c.dst) {
			t.Errorf("transpose(%#b)=%#b want %#b", c.src, got, c.dst)
		}
	}
	// Odd bit count: middle bit fixed.
	tp9 := topology.New(8, 3)
	p9 := NewTranspose(tp9)
	if got := p9.Destination(0b000010000, nil); got != 0b000010000 {
		t.Errorf("transpose middle bit moved: %#b", got)
	}
}

// Property: all bit patterns are permutations (bijective on the node set).
func TestBitPatternsAreBijections(t *testing.T) {
	tp := topology.New(8, 3)
	pats := []Pattern{
		NewButterfly(tp), NewComplement(tp), NewBitReversal(tp),
		NewPerfectShuffle(tp), NewTranspose(tp),
	}
	for _, p := range pats {
		seen := make(map[topology.NodeID]bool, tp.Nodes())
		for s := 0; s < tp.Nodes(); s++ {
			d := p.Destination(topology.NodeID(s), nil)
			if !tp.Valid(d) {
				t.Fatalf("%s: invalid destination %d", p.Name(), d)
			}
			if seen[d] {
				t.Fatalf("%s: destination %d repeated — not a bijection", p.Name(), d)
			}
			seen[d] = true
		}
	}
}

// Property: butterfly, complement and bit-reversal are involutions.
func TestInvolutions(t *testing.T) {
	tp := topology.New(4, 4) // 256 nodes, 8 bits (even, exercises transpose too)
	for _, p := range []Pattern{NewButterfly(tp), NewComplement(tp), NewBitReversal(tp), NewTranspose(tp)} {
		f := func(x uint16) bool {
			s := topology.NodeID(int(x) % tp.Nodes())
			return p.Destination(p.Destination(s, nil), nil) == s
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s not an involution: %v", p.Name(), err)
		}
	}
}

// Perfect shuffle applied bits times is the identity.
func TestShuffleOrder(t *testing.T) {
	tp := topology.New(8, 3)
	p := NewPerfectShuffle(tp)
	for s := 0; s < tp.Nodes(); s++ {
		d := topology.NodeID(s)
		for i := 0; i < 9; i++ {
			d = p.Destination(d, nil)
		}
		if d != topology.NodeID(s) {
			t.Fatalf("shuffle^9(%d)=%d", s, d)
		}
	}
}

func TestTornado(t *testing.T) {
	tp := topology.New(8, 2)
	p := NewTornado(tp)
	// offset = ceil(8/2)-1 = 3 in each dimension.
	src := tp.FromCoords([]int{1, 2})
	want := tp.FromCoords([]int{4, 5})
	if got := p.Destination(src, nil); got != want {
		t.Errorf("tornado dest = %d want %d", got, want)
	}
	// Odd radix: offset = ceil(5/2)-1 = 2.
	tp5 := topology.New(5, 1)
	if got := NewTornado(tp5).Destination(0, nil); got != 2 {
		t.Errorf("tornado k=5 dest = %d want 2", got)
	}
}

func TestHotSpot(t *testing.T) {
	tp := topology.New(4, 2)
	p := NewHotSpot(tp, 5, 0.5)
	r := rng()
	hits := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if p.Destination(0, r) == 5 {
			hits++
		}
	}
	// 50% direct + ~1/15 of the uniform remainder ≈ 53%.
	frac := float64(hits) / draws
	if math.Abs(frac-0.533) > 0.03 {
		t.Errorf("hotspot fraction %.3f, want ≈0.533", frac)
	}
	if p.Name() != "hotspot" {
		t.Error("name")
	}
}

func TestHotSpotValidation(t *testing.T) {
	tp := topology.New(4, 2)
	for _, f := range []func(){
		func() { NewHotSpot(tp, 0, -0.1) },
		func() { NewHotSpot(tp, 0, 1.1) },
		func() { NewHotSpot(tp, 99, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestByName(t *testing.T) {
	tp := topology.New(8, 3)
	for _, name := range PaperPatterns() {
		p, err := ByName(name, tp)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	for _, alias := range []string{"shuffle", "bitreversal", "reversal", "transpose", "tornado"} {
		if _, err := ByName(alias, tp); err != nil {
			t.Errorf("alias %q: %v", alias, err)
		}
	}
	if _, err := ByName("nope", tp); err == nil {
		t.Error("unknown pattern must error")
	}
	// Bit patterns on non-power-of-two networks must error, not panic.
	tp3 := topology.New(3, 3)
	if _, err := ByName("butterfly", tp3); err == nil {
		t.Error("butterfly on 27 nodes must error")
	}
	if _, err := ByName("uniform", tp3); err != nil {
		t.Errorf("uniform on 27 nodes should work: %v", err)
	}
}

func TestPatternNames(t *testing.T) {
	tp := topology.New(8, 3)
	want := map[Pattern]string{
		NewUniform(tp):        "uniform",
		NewButterfly(tp):      "butterfly",
		NewComplement(tp):     "complement",
		NewBitReversal(tp):    "bit-reversal",
		NewPerfectShuffle(tp): "perfect-shuffle",
		NewTranspose(tp):      "transpose",
		NewTornado(tp):        "tornado",
	}
	for p, n := range want {
		if p.Name() != n {
			t.Errorf("Name()=%q want %q", p.Name(), n)
		}
	}
}
