package traffic

import (
	"math"
	"testing"
)

func TestScriptSourceReplay(t *testing.T) {
	s, err := NewScriptSource(0, []Event{
		{Cycle: 5, Dst: 3, Length: 4},
		{Cycle: 2, Dst: 1, Length: 8},
		{Cycle: 5, Dst: 2, Length: 6},
	})
	if err != nil {
		t.Fatalf("NewScriptSource: %v", err)
	}
	if got := s.NextAt(); got != 2 {
		t.Fatalf("NextAt = %d, want 2", got)
	}
	if out := s.Poll(1, nil); len(out) != 0 {
		t.Fatalf("Poll(1) = %v, want none", out)
	}
	out := s.Poll(2, nil)
	if len(out) != 1 || out[0].Dst != 1 || out[0].Length != 8 {
		t.Fatalf("Poll(2) = %v", out)
	}
	if got := s.Remaining(); got != 2 {
		t.Fatalf("Remaining = %d, want 2", got)
	}
	// Same-cycle events come out in the given (stable) order.
	out = s.Poll(10, nil)
	if len(out) != 2 || out[0].Dst != 3 || out[1].Dst != 2 {
		t.Fatalf("Poll(10) = %v", out)
	}
	if got := s.NextAt(); got != math.MaxInt64 {
		t.Fatalf("exhausted NextAt = %d, want MaxInt64", got)
	}
	if got := s.Remaining(); got != 0 {
		t.Fatalf("exhausted Remaining = %d", got)
	}
}

func TestScriptSourceValidation(t *testing.T) {
	if _, err := NewScriptSource(0, []Event{{Cycle: 0, Dst: 0, Length: 1}}); err == nil {
		t.Fatal("self-addressed event accepted")
	}
	if _, err := NewScriptSource(0, []Event{{Cycle: 0, Dst: 1, Length: 0}}); err == nil {
		t.Fatal("zero-length event accepted")
	}
	if _, err := NewScriptSource(0, []Event{{Cycle: -1, Dst: 1, Length: 1}}); err == nil {
		t.Fatal("negative-cycle event accepted")
	}
}

func TestScriptSourceState(t *testing.T) {
	events := []Event{{Cycle: 1, Dst: 1, Length: 2}, {Cycle: 3, Dst: 2, Length: 2}}
	s, err := NewScriptSource(0, events)
	if err != nil {
		t.Fatal(err)
	}
	s.Poll(1, nil)
	st, err := s.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Script || st.Pos != 1 {
		t.Fatalf("SaveState = %+v", st)
	}
	// Restore into a fresh source built from the same script.
	r, err := NewScriptSource(0, events)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadState(st); err != nil {
		t.Fatal(err)
	}
	out := r.Poll(10, nil)
	if len(out) != 1 || out[0].Dst != 2 {
		t.Fatalf("restored Poll = %v", out)
	}
	// Cross-type state loads are rejected in both directions.
	if err := r.LoadState(GenState{}); err == nil {
		t.Fatal("script source accepted steady state")
	}
	steady := NewSource(0, &Uniform{nodes: 4}, 0, 2, 1, 2)
	if err := steady.LoadState(st); err == nil {
		t.Fatal("steady source accepted script state")
	}
	if err := r.LoadState(GenState{Script: true, Pos: 99}); err == nil {
		t.Fatal("out-of-range cursor accepted")
	}
}
