package traffic

// ScriptSource: a fully deterministic, enumerable traffic generator that
// replays an explicit event list. The model checker (internal/modelcheck)
// uses it to re-drive an engine through a recorded injection schedule when
// replaying a counterexample, and it doubles as a general trace-driven
// source for experiments.

import (
	"errors"
	"fmt"
	"sort"

	"wormnet/internal/topology"
)

// Event is one scripted generation: at cycle Cycle the source emits a
// message of Length flits addressed to Dst.
type Event struct {
	Cycle  int64
	Dst    topology.NodeID
	Length int
}

// Enumerable is implemented by generators whose entire future event
// sequence is known in advance, so an exhaustive explorer can enumerate it
// rather than sample it. Remaining reports how many events are still
// pending; a generator with Remaining() == 0 is permanently silent.
type Enumerable interface {
	Generator
	Remaining() int
}

// SourceFactory builds the traffic generator for one node. It is the
// engine's hook for replacing the default Poisson/bursty sources with
// scripted or otherwise custom ones (sim.Config.Sources).
type SourceFactory func(node topology.NodeID) Generator

// ScriptSource replays a fixed event list for one node, in cycle order.
// The zero value is unusable; construct with NewScriptSource.
type ScriptSource struct {
	node   topology.NodeID
	events []Event
	pos    int
}

// NewScriptSource returns a scripted generator for node. The events are
// copied and stably sorted by cycle (ties keep the given order, so a script
// may emit several messages in one cycle in a chosen order). Events with
// Length < 1 or a self-addressed destination are rejected: silently
// dropping them would desynchronise a replay from the schedule it encodes.
func NewScriptSource(node topology.NodeID, events []Event) (*ScriptSource, error) {
	evs := append([]Event(nil), events...)
	for i, ev := range evs {
		if ev.Length < 1 {
			return nil, fmt.Errorf("traffic: script event %d: length %d < 1", i, ev.Length)
		}
		if ev.Dst == node {
			return nil, fmt.Errorf("traffic: script event %d: self-addressed (node %d)", i, node)
		}
		if ev.Cycle < 0 {
			return nil, fmt.Errorf("traffic: script event %d: negative cycle %d", i, ev.Cycle)
		}
	}
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].Cycle < evs[b].Cycle })
	return &ScriptSource{node: node, events: evs}, nil
}

// Poll implements Generator.
func (s *ScriptSource) Poll(now int64, dst []Generated) []Generated {
	for s.pos < len(s.events) && s.events[s.pos].Cycle <= now {
		ev := s.events[s.pos]
		dst = append(dst, Generated{Dst: ev.Dst, Length: ev.Length})
		s.pos++
	}
	return dst
}

// NextAt implements Generator.
func (s *ScriptSource) NextAt() int64 {
	if s.pos >= len(s.events) {
		return maxInt64
	}
	return s.events[s.pos].Cycle
}

// Node implements Generator.
func (s *ScriptSource) Node() topology.NodeID { return s.node }

// Remaining implements Enumerable.
func (s *ScriptSource) Remaining() int { return len(s.events) - s.pos }

// SaveState implements Stateful. Only the cursor is saved; the script
// itself is configuration, re-supplied on restore via the same factory.
func (s *ScriptSource) SaveState() (GenState, error) {
	return GenState{Script: true, Pos: int64(s.pos)}, nil
}

// LoadState implements Stateful.
func (s *ScriptSource) LoadState(st GenState) error {
	if !st.Script {
		return errors.New("traffic: non-script state loaded into script source")
	}
	if st.Pos < 0 || st.Pos > int64(len(s.events)) {
		return fmt.Errorf("traffic: script cursor %d of %d events", st.Pos, len(s.events))
	}
	s.pos = int(st.Pos)
	return nil
}

// ReplayFactory builds a SourceFactory replaying per-node event lists —
// the trace-driven workload path: record a run's generation events (e.g.
// obs.ReadReplay over a -trace-out JSONL stream), then re-drive any engine
// configuration with the identical offered schedule. Nodes absent from the
// map get an empty script (permanently silent). Invalid events (a factory
// has no error channel) panic when the node's generator is built; traces
// recorded by the engine are valid by construction, so this only fires on
// hand-edited input.
func ReplayFactory(events map[topology.NodeID][]Event) SourceFactory {
	return func(node topology.NodeID) Generator {
		s, err := NewScriptSource(node, events[node])
		if err != nil {
			panic(err)
		}
		return s
	}
}

const maxInt64 = int64(^uint64(0) >> 1)

// Compile-time interface checks.
var (
	_ Stateful   = (*ScriptSource)(nil)
	_ Enumerable = (*ScriptSource)(nil)
)
