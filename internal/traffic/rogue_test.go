package traffic

import "testing"

func TestRogueDeterminism(t *testing.T) {
	mk := func() *RogueSource {
		return NewRogueSource(2, 16, 5, 1.5, 4, 600, 250, 7, 99)
	}
	a, b := mk(), mk()
	var ga, gb []Generated
	for now := int64(0); now < 3000; now += 3 {
		ga = a.Poll(now, ga[:0])
		gb = b.Poll(now, gb[:0])
		if len(ga) != len(gb) {
			t.Fatalf("cycle %d: %d vs %d events", now, len(ga), len(gb))
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("cycle %d event %d: %+v vs %+v", now, i, ga[i], gb[i])
			}
		}
	}
}

// TestRogueStormTargeting pins the duty cycle: every message whose arrival
// falls in the ON window targets the hotspot, and the OFF window produces at
// least some non-hotspot destinations.
func TestRogueStormTargeting(t *testing.T) {
	const period, on = 600, 250
	s := NewRogueSource(2, 16, 5, 1.5, 4, period, on, 7, 99)
	var offWindowOther int
	prevAt := int64(-1)
	var batch []Generated
	for now := int64(0); now < 20000; now++ {
		at := s.NextAt()
		if at < prevAt {
			t.Fatalf("NextAt went backwards: %d after %d", at, prevAt)
		}
		prevAt = at
		batch = s.Poll(now, batch[:0])
		for _, g := range batch {
			// Every event Polled at cycle `now` arrived in (prev now, now], so
			// its nominal cycle is `now` exactly when polling every cycle.
			if now%period < on {
				if g.Dst != 5 {
					t.Fatalf("cycle %d (storm on): dst %d, want hotspot 5", now, g.Dst)
				}
			} else if g.Dst != 5 {
				offWindowOther++
			}
			if g.Dst == 2 {
				t.Fatalf("cycle %d: rogue sent to itself", now)
			}
		}
	}
	if offWindowOther == 0 {
		t.Error("no uniform traffic outside the storm window; duty cycle inert")
	}
}

// TestRogueAlwaysOn pins period 0 = permanent storm.
func TestRogueAlwaysOn(t *testing.T) {
	s := NewRogueSource(2, 16, 5, 2.0, 4, 0, 0, 1, 2)
	var batch []Generated
	for now := int64(0); now < 5000; now++ {
		batch = s.Poll(now, batch[:0])
		for _, g := range batch {
			if g.Dst != 5 {
				t.Fatalf("cycle %d: dst %d during permanent storm", now, g.Dst)
			}
		}
	}
}

// TestRogueHotspotSelfDest: a rogue placed on the hotspot node falls back to
// uniform destinations rather than sending to itself.
func TestRogueHotspotSelfDest(t *testing.T) {
	s := NewRogueSource(5, 16, 5, 2.0, 4, 0, 0, 1, 2)
	var batch []Generated
	seen := false
	for now := int64(0); now < 5000; now++ {
		batch = s.Poll(now, batch[:0])
		for _, g := range batch {
			seen = true
			if g.Dst == 5 {
				t.Fatalf("cycle %d: hotspot rogue sent to itself", now)
			}
		}
	}
	if !seen {
		t.Fatal("hotspot rogue generated nothing")
	}
}

func TestRogueStateRoundTrip(t *testing.T) {
	s := NewRogueSource(2, 16, 5, 1.5, 4, 600, 250, 7, 99)
	var batch []Generated
	for now := int64(0); now < 1000; now++ {
		batch = s.Poll(now, batch[:0])
	}
	st, err := s.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Rogue {
		t.Fatal("saved state not marked Rogue")
	}
	r := NewRogueSource(2, 16, 5, 1.5, 4, 600, 250, 0, 0) // different seeds
	if err := r.LoadState(st); err != nil {
		t.Fatal(err)
	}
	var gs, gr []Generated
	for now := int64(1000); now < 4000; now++ {
		gs = s.Poll(now, gs[:0])
		gr = r.Poll(now, gr[:0])
		if len(gs) != len(gr) {
			t.Fatalf("cycle %d: %d vs %d events after restore", now, len(gs), len(gr))
		}
		for i := range gs {
			if gs[i] != gr[i] {
				t.Fatalf("cycle %d event %d diverged after restore", now, i)
			}
		}
	}
	// Foreign state must be rejected in both directions.
	if err := r.LoadState(GenState{Bursty: true}); err == nil {
		t.Error("rogue source accepted bursty state")
	}
	plain := NewSource(2, &Uniform{nodes: 16}, 0.5, 4, 1, 2)
	if err := plain.LoadState(st); err == nil {
		t.Error("plain source accepted rogue state")
	}
	bs := NewBurstySource(2, &Uniform{nodes: 16}, 1.0, 4, BurstProfile{OnMean: 10, OffMean: 10}, 1, 2)
	if err := bs.LoadState(st); err == nil {
		t.Error("bursty source accepted rogue state")
	}
}

// TestRoguePanics pins constructor validation.
func TestRoguePanics(t *testing.T) {
	cases := map[string]func(){
		"zero-rate": func() { NewRogueSource(0, 16, 5, 0, 4, 0, 0, 1, 2) },
		"bad-len":   func() { NewRogueSource(0, 16, 5, 1, 0, 0, 0, 1, 2) },
		"bad-duty":  func() { NewRogueSource(0, 16, 5, 1, 4, 100, 200, 1, 2) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
