package traffic

import (
	"testing"

	"wormnet/internal/topology"
)

// pollTo drives g from cycle from to cycle to and returns the generated
// messages.
func pollTo(g Generator, from, to int64) []Generated {
	var out []Generated
	for c := from; c < to; c++ {
		out = g.Poll(c, out)
	}
	return out
}

// sameStream fails unless a and b are identical event sequences.
func sameStream(t *testing.T, name string, a, b []Generated) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d events vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: event %d differs: %v vs %v", name, i, a[i], b[i])
		}
	}
}

// TestSourceStateRoundTrip pins the generator checkpoint contract: saving a
// source mid-stream and loading the state into a fresh source reproduces the
// exact future event sequence — ids, destinations and cycles.
func TestSourceStateRoundTrip(t *testing.T) {
	tp := topology.New(4, 2)
	mk := func() *Source { return NewSource(3, NewUniform(tp), 0.5, 8, 11, 23) }

	orig := mk()
	pollTo(orig, 0, 3000)
	st, err := orig.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Bursty {
		t.Error("steady source saved Bursty state")
	}

	clone := mk()
	pollTo(clone, 0, 1234) // desynchronize before loading
	if err := clone.LoadState(st); err != nil {
		t.Fatal(err)
	}
	sameStream(t, "steady", pollTo(orig, 3000, 8000), pollTo(clone, 3000, 8000))

	bad := st
	bad.Bursty = true
	if err := mk().LoadState(bad); err == nil {
		t.Error("steady source accepted bursty state")
	}
}

// TestBurstySourceStateRoundTrip does the same for the on/off source, in both
// phase modes: the restored source must continue the identical burst schedule
// and generation stream.
func TestBurstySourceStateRoundTrip(t *testing.T) {
	tp := topology.New(4, 2)
	for _, sync := range []bool{false, true} {
		profile := BurstProfile{OnMean: 150, OffMean: 300, Synchronized: sync}
		mk := func() *BurstySource { return NewBurstySource(5, NewUniform(tp), 0.8, 8, profile, 31, 47) }

		orig := mk()
		pollTo(orig, 0, 4000)
		st, err := orig.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		if !st.Bursty {
			t.Error("bursty source saved non-bursty state")
		}

		clone := mk()
		pollTo(clone, 0, 777)
		if err := clone.LoadState(st); err != nil {
			t.Fatal(err)
		}
		if clone.On() != orig.On() {
			t.Errorf("sync=%v: restored phase %v, want %v", sync, clone.On(), orig.On())
		}
		sameStream(t, "bursty", pollTo(orig, 4000, 12000), pollTo(clone, 4000, 12000))

		bad := st
		bad.Bursty = false
		if err := mk().LoadState(bad); err == nil {
			t.Error("bursty source accepted steady state")
		}
	}
}
