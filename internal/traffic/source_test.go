package traffic

import (
	"math"
	"testing"

	"wormnet/internal/topology"
)

func TestSourceRate(t *testing.T) {
	tp := topology.New(4, 2)
	const (
		rate   = 0.4 // flits/node/cycle
		msgLen = 16
		cycles = 200000
	)
	s := NewSource(3, NewUniform(tp), rate, msgLen, 42, 7)
	var gen []Generated
	for c := int64(0); c < cycles; c++ {
		gen = s.Poll(c, gen)
	}
	gotRate := float64(len(gen)*msgLen) / cycles
	if math.Abs(gotRate-rate)/rate > 0.05 {
		t.Errorf("offered rate %.4f, want %.4f ±5%%", gotRate, rate)
	}
	for _, g := range gen {
		if g.Length != msgLen {
			t.Fatalf("length %d", g.Length)
		}
		if g.Dst == 3 {
			t.Fatal("self destination leaked")
		}
	}
}

func TestSourceZeroRate(t *testing.T) {
	tp := topology.New(4, 2)
	s := NewSource(0, NewUniform(tp), 0, 16, 1, 1)
	if got := s.Poll(1_000_000, nil); len(got) != 0 {
		t.Errorf("zero-rate source generated %d messages", len(got))
	}
}

func TestSourceDeterminism(t *testing.T) {
	tp := topology.New(4, 2)
	run := func() []Generated {
		s := NewSource(1, NewUniform(tp), 0.3, 8, 5, 9)
		var gen []Generated
		for c := int64(0); c < 5000; c++ {
			gen = s.Poll(c, gen)
		}
		return gen
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSourceSeedsIndependent(t *testing.T) {
	tp := topology.New(4, 2)
	s1 := NewSource(1, NewUniform(tp), 0.3, 8, 5, 9)
	s2 := NewSource(1, NewUniform(tp), 0.3, 8, 6, 9)
	var g1, g2 []Generated
	for c := int64(0); c < 5000; c++ {
		g1 = s1.Poll(c, g1)
		g2 = s2.Poll(c, g2)
	}
	if len(g1) == len(g2) {
		same := true
		for i := range g1 {
			if g1[i] != g2[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical streams")
		}
	}
}

func TestSourceFixedPointSuppression(t *testing.T) {
	tp := topology.New(8, 3)
	// Node 0 is a fixed point of the complement? No — complement(0)=511.
	// Butterfly fixes nodes whose msb==lsb, e.g. node 0.
	s := NewSource(0, NewButterfly(tp), 1.0, 4, 1, 1)
	if got := s.Poll(10000, nil); len(got) != 0 {
		t.Errorf("fixed-point source generated %d messages", len(got))
	}
	// Node 1 is not fixed (butterfly(1)=256).
	s = NewSource(1, NewButterfly(tp), 1.0, 4, 1, 1)
	got := s.Poll(10000, nil)
	if len(got) == 0 {
		t.Fatal("non-fixed-point source generated nothing")
	}
	for _, g := range got {
		if g.Dst != 256 {
			t.Fatalf("butterfly dest %d want 256", g.Dst)
		}
	}
}

func TestSourceValidation(t *testing.T) {
	tp := topology.New(4, 2)
	for _, f := range []func(){
		func() { NewSource(0, NewUniform(tp), -1, 16, 1, 1) },
		func() { NewSource(0, NewUniform(tp), 0.1, 0, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSourceExponentialGaps(t *testing.T) {
	// The coefficient of variation of exponential inter-arrivals is 1.
	tp := topology.New(4, 2)
	s := NewSource(0, NewUniform(tp), 0.2, 16, 11, 13)
	var times []int64
	var gen []Generated
	for c := int64(0); c < 400000; c++ {
		n := len(gen)
		gen = s.Poll(c, gen)
		for i := n; i < len(gen); i++ {
			times = append(times, c)
		}
	}
	if len(times) < 100 {
		t.Fatalf("too few events: %d", len(times))
	}
	var gaps []float64
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, float64(times[i]-times[i-1]))
	}
	mean, m2 := 0.0, 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		m2 += (g - mean) * (g - mean)
	}
	sd := math.Sqrt(m2 / float64(len(gaps)))
	cv := sd / mean
	if cv < 0.85 || cv > 1.15 {
		t.Errorf("inter-arrival CV=%.3f, want ≈1 (exponential)", cv)
	}
	if s.Node() != 0 {
		t.Error("Node()")
	}
}
