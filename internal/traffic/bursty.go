package traffic

import (
	"fmt"
	"math"
	"math/rand/v2"

	"wormnet/internal/topology"
)

// Generator is a per-node message generation process. Source (steady
// Poisson) and BurstySource (on/off modulated Poisson) implement it.
type Generator interface {
	// Poll appends all messages generated up to and including cycle now.
	Poll(now int64, dst []Generated) []Generated
	// NextAt returns the earliest cycle at which Poll may do anything
	// (generate a message or advance internal phase state); Poll calls
	// before that cycle are guaranteed no-ops. The simulation engine uses
	// it to skip idle sources without touching their state.
	NextAt() int64
	// Node returns the node this generator belongs to.
	Node() topology.NodeID
}

// BurstProfile parameterises an on/off modulated source. The paper's
// motivation (§1) cites studies showing real parallel applications produce
// bursty traffic whose peaks transiently saturate the network [Silla et
// al. ICPP'98, Flich et al. ICPP'99]; this profile reproduces that shape
// synthetically.
//
// The process alternates exponentially distributed ON and OFF periods with
// the given mean lengths (in cycles). During ON periods messages are
// generated at the peak rate; during OFF periods the source is silent. For
// a long-run average offered load R, the peak rate is
// R * (OnMean+OffMean) / OnMean.
//
// The zero value means "not bursty" (steady Poisson).
type BurstProfile struct {
	OnMean  float64 // mean ON period length in cycles
	OffMean float64 // mean OFF period length in cycles
	// Synchronized makes every node follow the *same* ON/OFF schedule,
	// modelling the phase behaviour of parallel applications (all ranks
	// compute, then all ranks communicate). Independent phases (the
	// default) model uncorrelated background burstiness, which largely
	// averages out across nodes; synchronized bursts are what transiently
	// saturate the whole network.
	Synchronized bool
}

// Enabled reports whether the profile describes a bursty source.
func (p BurstProfile) Enabled() bool { return p.OnMean > 0 && p.OffMean > 0 }

// PeakFactor returns the ratio of peak (ON-period) rate to the long-run
// average rate: (OnMean+OffMean)/OnMean. It returns 1 when disabled.
func (p BurstProfile) PeakFactor() float64 {
	if !p.Enabled() {
		return 1
	}
	return (p.OnMean + p.OffMean) / p.OnMean
}

// Validate reports whether the profile is usable.
func (p BurstProfile) Validate() error {
	if p.OnMean < 0 || p.OffMean < 0 {
		return fmt.Errorf("traffic: negative burst period means (%v, %v)", p.OnMean, p.OffMean)
	}
	if (p.OnMean > 0) != (p.OffMean > 0) {
		return fmt.Errorf("traffic: burst profile needs both period means set (got %v, %v)", p.OnMean, p.OffMean)
	}
	if p.Enabled() && (p.OnMean < 1 || p.OffMean < 1) {
		return fmt.Errorf("traffic: burst period means must be >= 1 cycle (got %v, %v)", p.OnMean, p.OffMean)
	}
	return nil
}

// BurstySource is an on/off modulated Poisson message generator: a Source
// whose generation events are gated by alternating ON/OFF periods.
type BurstySource struct {
	node    topology.NodeID
	pattern Pattern
	rng     *rand.Rand // generation events and destinations
	prng    *rand.Rand // ON/OFF phase process (shared stream when synchronized)
	pcg     *rand.PCG  // the PCG behind rng, retained for state save/load
	ppcg    *rand.PCG  // the PCG behind prng
	msgLen  int
	profile BurstProfile

	peakGap float64 // mean cycles between messages during ON periods

	on        bool
	phaseEnds float64 // cycle the current ON/OFF period ends
	next      float64 // next generation event (valid while on)
}

// NewBurstySource returns an on/off source with long-run average rate rate
// (flits/node/cycle). It panics on invalid parameters, mirroring NewSource.
func NewBurstySource(node topology.NodeID, pattern Pattern, rate float64, msgLen int,
	profile BurstProfile, seed1, seed2 uint64) *BurstySource {
	if rate < 0 {
		panic(fmt.Sprintf("traffic: negative rate %v", rate))
	}
	if msgLen < 1 {
		panic(fmt.Sprintf("traffic: message length %d < 1", msgLen))
	}
	if err := profile.Validate(); err != nil {
		panic(err.Error())
	}
	if !profile.Enabled() {
		panic("traffic: BurstySource needs an enabled profile; use NewSource for steady traffic")
	}
	pcg := rand.NewPCG(seed1, seed2)
	s := &BurstySource{
		node:    node,
		pattern: pattern,
		rng:     rand.New(pcg),
		pcg:     pcg,
		msgLen:  msgLen,
		profile: profile,
	}
	if profile.Synchronized {
		// All nodes draw the phase schedule from the same stream: the
		// phase seed depends only on the run seed, not on the node.
		s.ppcg = rand.NewPCG(seed1, 0xB0057)
	} else {
		s.ppcg = rand.NewPCG(seed2, seed1^0xB0057)
	}
	s.prng = rand.New(s.ppcg)
	if rate == 0 {
		s.peakGap = math.Inf(1)
	} else {
		peakRate := rate * profile.PeakFactor()
		s.peakGap = float64(msgLen) / peakRate
	}
	s.on = s.prng.Float64() < profile.OnMean/(profile.OnMean+profile.OffMean)
	s.phaseEnds = s.periodLen()
	s.next = s.rng.ExpFloat64() * s.peakGap
	return s
}

func (s *BurstySource) periodLen() float64 {
	if s.on {
		return s.prng.ExpFloat64() * s.profile.OnMean
	}
	return s.prng.ExpFloat64() * s.profile.OffMean
}

// Node implements Generator.
func (s *BurstySource) Node() topology.NodeID { return s.node }

// On reports whether the source is currently in an ON period (for tests
// and monitoring).
func (s *BurstySource) On() bool { return s.on }

// Poll implements Generator.
func (s *BurstySource) Poll(now int64, dst []Generated) []Generated {
	t := float64(now)
	for {
		// Advance through phase boundaries that occurred before t.
		if s.phaseEnds <= t {
			boundary := s.phaseEnds
			s.on = !s.on
			s.phaseEnds = boundary + s.periodLen()
			if s.on {
				// Re-arm the generation clock at the period start.
				s.next = boundary + s.rng.ExpFloat64()*s.peakGap
			}
			continue
		}
		if !s.on || s.next > t {
			return dst
		}
		if s.next >= s.phaseEnds {
			// The next event falls past this ON period: skip to the
			// boundary on the next loop iteration.
			s.next = math.Inf(1)
			continue
		}
		d := s.pattern.Destination(s.node, s.rng)
		if d != s.node {
			dst = append(dst, Generated{Dst: d, Length: s.msgLen})
		}
		s.next += s.rng.ExpFloat64() * s.peakGap
	}
}

// NextAt implements Generator: the next phase boundary, or the next
// generation event if it comes sooner during an ON period.
func (s *BurstySource) NextAt() int64 {
	t := s.phaseEnds
	if s.on && s.next < t {
		t = s.next
	}
	if math.IsInf(t, 1) {
		return math.MaxInt64
	}
	return int64(math.Ceil(t))
}

// Compile-time interface checks.
var (
	_ Generator = (*Source)(nil)
	_ Generator = (*BurstySource)(nil)
)
