package traffic

import (
	"fmt"
	"math"
	"math/rand/v2"

	"wormnet/internal/topology"
)

// Source is the per-node message generation process: a Poisson process whose
// rate is expressed in flits per node per cycle, matching the paper's
// "message injection rate is the same for all nodes. Each node generates
// messages independently, according to an exponential distribution."
type Source struct {
	node    topology.NodeID
	pattern Pattern
	rng     *rand.Rand
	pcg     *rand.PCG // the PCG behind rng, retained for state save/load
	msgLen  int
	next    float64 // cycle of the next generation event
	meanGap float64 // mean cycles between messages
}

// NewSource returns a generation process for one node.
//
// rate is the offered load in flits/node/cycle; msgLen is the message length
// in flits, so messages are generated with mean inter-arrival msgLen/rate
// cycles. A rate of 0 produces no messages. seed1/seed2 seed the node's
// private deterministic random stream.
func NewSource(node topology.NodeID, pattern Pattern, rate float64, msgLen int, seed1, seed2 uint64) *Source {
	if rate < 0 {
		panic(fmt.Sprintf("traffic: negative rate %v", rate))
	}
	if msgLen < 1 {
		panic(fmt.Sprintf("traffic: message length %d < 1", msgLen))
	}
	pcg := rand.NewPCG(seed1, seed2)
	s := &Source{
		node:    node,
		pattern: pattern,
		rng:     rand.New(pcg),
		pcg:     pcg,
		msgLen:  msgLen,
	}
	if rate == 0 {
		s.meanGap = math.Inf(1)
		s.next = math.Inf(1)
	} else {
		s.meanGap = float64(msgLen) / rate
		s.next = s.expGap()
	}
	return s
}

func (s *Source) expGap() float64 {
	return s.rng.ExpFloat64() * s.meanGap
}

// Generated is one generation event: a destination and a length.
type Generated struct {
	Dst    topology.NodeID
	Length int
}

// Poll appends to dst all messages generated up to and including cycle now,
// and returns the extended slice. Self-addressed messages (permutation fixed
// points) are suppressed, as they never enter the network.
func (s *Source) Poll(now int64, dst []Generated) []Generated {
	for s.next <= float64(now) {
		d := s.pattern.Destination(s.node, s.rng)
		if d != s.node {
			dst = append(dst, Generated{Dst: d, Length: s.msgLen})
		}
		s.next += s.expGap()
	}
	return dst
}

// NextAt implements Generator: the first cycle now satisfying
// s.next <= now.
func (s *Source) NextAt() int64 {
	if math.IsInf(s.next, 1) {
		return math.MaxInt64
	}
	return int64(math.Ceil(s.next))
}

// Node returns the node this source generates for.
func (s *Source) Node() topology.NodeID { return s.node }
