package traffic

// Generator state save/restore for engine snapshots. Both Source and
// BurstySource are driven entirely by their math/rand/v2 PCG streams plus a
// few scalars; rand.Rand itself buffers nothing across calls (ExpFloat64 and
// Float64 are stateless transforms of the next PCG output), so capturing the
// PCG words and the scalars reproduces the exact future event sequence.

import (
	"errors"
	"fmt"
)

// GenState is the serializable state of a traffic generator. PCG holds the
// marshalled primary stream; PhasePCG, On and PhaseEnds are used only by
// BurstySource (Bursty true).
type GenState struct {
	Bursty    bool
	PCG       []byte
	PhasePCG  []byte
	Next      float64
	On        bool
	PhaseEnds float64
	// Script and Pos belong to ScriptSource (Script true): the replay
	// cursor into its configured event list.
	Script bool
	Pos    int64
	// Rogue marks RogueSource state (rogue.go); it reuses PCG and Next.
	Rogue bool
}

// Stateful is implemented by generators whose full state can be captured and
// restored for checkpoint/restore. A restored generator continues with the
// exact event sequence of the original.
type Stateful interface {
	Generator
	SaveState() (GenState, error)
	LoadState(GenState) error
}

// SaveState implements Stateful.
func (s *Source) SaveState() (GenState, error) {
	b, err := s.pcg.MarshalBinary()
	if err != nil {
		return GenState{}, fmt.Errorf("traffic: marshal source rng: %w", err)
	}
	return GenState{PCG: b, Next: s.next}, nil
}

// LoadState implements Stateful.
func (s *Source) LoadState(st GenState) error {
	if st.Bursty || st.Script || st.Rogue {
		return errors.New("traffic: foreign generator state loaded into steady source")
	}
	if err := s.pcg.UnmarshalBinary(st.PCG); err != nil {
		return fmt.Errorf("traffic: unmarshal source rng: %w", err)
	}
	s.next = st.Next
	return nil
}

// SaveState implements Stateful.
func (s *BurstySource) SaveState() (GenState, error) {
	b, err := s.pcg.MarshalBinary()
	if err != nil {
		return GenState{}, fmt.Errorf("traffic: marshal bursty rng: %w", err)
	}
	pb, err := s.ppcg.MarshalBinary()
	if err != nil {
		return GenState{}, fmt.Errorf("traffic: marshal bursty phase rng: %w", err)
	}
	return GenState{
		Bursty:    true,
		PCG:       b,
		PhasePCG:  pb,
		Next:      s.next,
		On:        s.on,
		PhaseEnds: s.phaseEnds,
	}, nil
}

// LoadState implements Stateful.
func (s *BurstySource) LoadState(st GenState) error {
	if !st.Bursty || st.Script || st.Rogue {
		return errors.New("traffic: foreign generator state loaded into bursty source")
	}
	if err := s.pcg.UnmarshalBinary(st.PCG); err != nil {
		return fmt.Errorf("traffic: unmarshal bursty rng: %w", err)
	}
	if err := s.ppcg.UnmarshalBinary(st.PhasePCG); err != nil {
		return fmt.Errorf("traffic: unmarshal bursty phase rng: %w", err)
	}
	s.next = st.Next
	s.on = st.On
	s.phaseEnds = st.PhaseEnds
	return nil
}

// Compile-time interface checks.
var (
	_ Stateful = (*Source)(nil)
	_ Stateful = (*BurstySource)(nil)
)
