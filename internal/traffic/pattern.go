// Package traffic provides synthetic workload generation for the wormhole
// simulator: message-destination patterns and per-node Poisson (exponential
// inter-arrival) injection processes.
//
// The five patterns evaluated in the paper are implemented — uniform,
// butterfly, complement, bit-reversal and perfect-shuffle — plus transpose,
// tornado and hotspot as commonly used extensions. The bit-permutation
// patterns interpret node IDs as log2(N)-bit binary addresses and therefore
// require a power-of-two network size (the paper's 8-ary 3-cube has
// 512 = 2^9 nodes).
package traffic

import (
	"fmt"
	"math/rand/v2"

	"wormnet/internal/topology"
)

// Pattern produces a destination for each newly generated message.
//
// Implementations must be deterministic given the source node and the
// provided random stream, and safe for concurrent use as long as each
// goroutine uses its own *rand.Rand.
type Pattern interface {
	// Destination returns the destination node for a message generated at
	// src. The returned node may equal src only if the pattern maps a node
	// to itself (permutation fixed points are delivered locally and skipped
	// by the engine).
	Destination(src topology.NodeID, rng *rand.Rand) topology.NodeID
	// Name returns the pattern's short name (e.g. "uniform").
	Name() string
}

// Uniform sends each message to a destination chosen uniformly at random
// among all nodes other than the source.
type Uniform struct {
	nodes int
}

// NewUniform returns the uniform pattern for a network of t.Nodes() nodes.
func NewUniform(t *topology.Torus) *Uniform { return &Uniform{nodes: t.Nodes()} }

// Destination implements Pattern.
func (u *Uniform) Destination(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	d := topology.NodeID(rng.IntN(u.nodes - 1))
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (u *Uniform) Name() string { return "uniform" }

// bitPattern is a deterministic permutation of the binary node address.
type bitPattern struct {
	name string
	bits int
	perm func(addr, bits int) int
}

// Destination implements Pattern.
func (p *bitPattern) Destination(src topology.NodeID, _ *rand.Rand) topology.NodeID {
	return topology.NodeID(p.perm(int(src), p.bits))
}

// Name implements Pattern.
func (p *bitPattern) Name() string { return p.name }

func addressBits(t *topology.Torus, name string) int {
	b, ok := t.AddressBits()
	if !ok {
		panic(fmt.Sprintf("traffic: %s pattern requires a power-of-two node count, have %d", name, t.Nodes()))
	}
	return b
}

// butterflyPerm swaps the most and least significant address bits.
func butterflyPerm(addr, bits int) int {
	if bits < 2 {
		return addr
	}
	lo := addr & 1
	hi := (addr >> (bits - 1)) & 1
	if lo == hi {
		return addr
	}
	return addr ^ 1 ^ (1 << (bits - 1))
}

// NewButterfly returns the butterfly pattern: destination is the source with
// its most and least significant address bits swapped.
func NewButterfly(t *topology.Torus) Pattern {
	return &bitPattern{name: "butterfly", bits: addressBits(t, "butterfly"), perm: butterflyPerm}
}

// complementPerm inverts every address bit.
func complementPerm(addr, bits int) int {
	return ^addr & (1<<bits - 1)
}

// NewComplement returns the complement pattern: destination is the bitwise
// complement of the source address.
func NewComplement(t *topology.Torus) Pattern {
	return &bitPattern{name: "complement", bits: addressBits(t, "complement"), perm: complementPerm}
}

// reversalPerm mirrors the address bit string.
func reversalPerm(addr, bits int) int {
	out := 0
	for i := 0; i < bits; i++ {
		out = out<<1 | (addr>>i)&1
	}
	return out
}

// NewBitReversal returns the bit-reversal pattern: destination address is
// the source address with its bit string reversed.
func NewBitReversal(t *topology.Torus) Pattern {
	return &bitPattern{name: "bit-reversal", bits: addressBits(t, "bit-reversal"), perm: reversalPerm}
}

// shufflePerm rotates the address left by one bit.
func shufflePerm(addr, bits int) int {
	msb := (addr >> (bits - 1)) & 1
	return (addr<<1 | msb) & (1<<bits - 1)
}

// NewPerfectShuffle returns the perfect-shuffle pattern: destination address
// is the source address rotated left by one bit.
func NewPerfectShuffle(t *topology.Torus) Pattern {
	return &bitPattern{name: "perfect-shuffle", bits: addressBits(t, "perfect-shuffle"), perm: shufflePerm}
}

// transposePerm swaps the high and low halves of the address bit string
// (for odd bit counts the middle bit stays in place).
func transposePerm(addr, bits int) int {
	h := bits / 2
	low := addr & (1<<h - 1)
	high := (addr >> (bits - h)) & (1<<h - 1)
	mid := addr & ^((1<<h - 1) | ((1<<h - 1) << (bits - h)))
	return mid | low<<(bits-h) | high
}

// NewTranspose returns the matrix-transpose pattern: the high and low halves
// of the address bit string are exchanged.
func NewTranspose(t *topology.Torus) Pattern {
	return &bitPattern{name: "transpose", bits: addressBits(t, "transpose"), perm: transposePerm}
}

// Tornado sends each message ceil(k/2)-1 hops in the Plus direction of every
// dimension — the classic adversarial torus pattern. Unlike the bit
// permutations it works for any radix.
type Tornado struct {
	t *topology.Torus
}

// NewTornado returns the tornado pattern for the given torus.
func NewTornado(t *topology.Torus) *Tornado { return &Tornado{t: t} }

// Destination implements Pattern.
func (p *Tornado) Destination(src topology.NodeID, _ *rand.Rand) topology.NodeID {
	n := p.t.N()
	offset := (p.t.K()+1)/2 - 1
	coords := make([]int, n)
	p.t.Coords(src, coords)
	for i := range coords {
		coords[i] += offset
	}
	return p.t.FromCoords(coords)
}

// Name implements Pattern.
func (p *Tornado) Name() string { return "tornado" }

// HotSpot sends a fraction of the traffic to a single hotspot node and the
// remainder uniformly.
type HotSpot struct {
	uniform  *Uniform
	hot      topology.NodeID
	fraction float64
}

// NewHotSpot returns a pattern that directs fraction (0..1) of all messages
// to node hot and distributes the rest uniformly.
func NewHotSpot(t *topology.Torus, hot topology.NodeID, fraction float64) *HotSpot {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("traffic: hotspot fraction %v out of [0,1]", fraction))
	}
	if !t.Valid(hot) {
		panic(fmt.Sprintf("traffic: hotspot node %d invalid", hot))
	}
	return &HotSpot{uniform: NewUniform(t), hot: hot, fraction: fraction}
}

// Destination implements Pattern.
func (p *HotSpot) Destination(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	if rng.Float64() < p.fraction && src != p.hot {
		return p.hot
	}
	return p.uniform.Destination(src, rng)
}

// Name implements Pattern.
func (p *HotSpot) Name() string { return "hotspot" }

// ByName constructs one of the named patterns for torus t. Recognised names:
// uniform, butterfly, complement, bit-reversal, perfect-shuffle, transpose,
// tornado. It returns an error for unknown names or when a bit-permutation
// pattern is requested on a non-power-of-two network.
func ByName(name string, t *topology.Torus) (p Pattern, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("traffic: %v", r)
		}
	}()
	switch name {
	case "uniform":
		return NewUniform(t), nil
	case "butterfly":
		return NewButterfly(t), nil
	case "complement":
		return NewComplement(t), nil
	case "bit-reversal", "bitreversal", "reversal":
		return NewBitReversal(t), nil
	case "perfect-shuffle", "shuffle":
		return NewPerfectShuffle(t), nil
	case "transpose":
		return NewTranspose(t), nil
	case "tornado":
		return NewTornado(t), nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

// PaperPatterns lists the five pattern names evaluated in the paper, in the
// order of its figures.
func PaperPatterns() []string {
	return []string{"uniform", "butterfly", "complement", "bit-reversal", "perfect-shuffle"}
}
