package traffic

import (
	"math"
	"testing"

	"wormnet/internal/topology"
)

func TestBurstProfile(t *testing.T) {
	var zero BurstProfile
	if zero.Enabled() || zero.PeakFactor() != 1 || zero.Validate() != nil {
		t.Error("zero profile must be a valid no-op")
	}
	p := BurstProfile{OnMean: 100, OffMean: 300}
	if !p.Enabled() {
		t.Fatal("enabled")
	}
	if got := p.PeakFactor(); got != 4 {
		t.Errorf("PeakFactor=%v want 4", got)
	}
	bad := []BurstProfile{
		{OnMean: -1, OffMean: 100},
		{OnMean: 100, OffMean: 0},
		{OnMean: 0, OffMean: 100},
		{OnMean: 0.5, OffMean: 100},
	}
	for _, b := range bad {
		if b.Validate() == nil {
			t.Errorf("profile %+v should be invalid", b)
		}
	}
}

func TestBurstySourceLongRunRate(t *testing.T) {
	tp := topology.New(4, 2)
	const (
		rate   = 0.4
		msgLen = 16
		cycles = 400000
	)
	s := NewBurstySource(3, NewUniform(tp), rate, msgLen,
		BurstProfile{OnMean: 200, OffMean: 600}, 42, 7)
	var gen []Generated
	for c := int64(0); c < cycles; c++ {
		gen = s.Poll(c, gen)
	}
	got := float64(len(gen)*msgLen) / cycles
	if math.Abs(got-rate)/rate > 0.08 {
		t.Errorf("long-run rate %.4f, want %.4f ±8%%", got, rate)
	}
	if s.Node() != 3 {
		t.Error("Node")
	}
}

func TestBurstySourceIsActuallyBursty(t *testing.T) {
	tp := topology.New(4, 2)
	s := NewBurstySource(0, NewUniform(tp), 0.5, 4,
		BurstProfile{OnMean: 500, OffMean: 1500}, 9, 9)
	// Count messages per 100-cycle window; a bursty source must show both
	// silent windows and windows well above the average.
	const windows = 400
	counts := make([]int, windows)
	var gen []Generated
	for c := int64(0); c < windows*100; c++ {
		n := len(gen)
		gen = s.Poll(c, gen)
		counts[c/100] += len(gen) - n
	}
	silent, hot := 0, 0
	avg := float64(len(gen)) / windows
	for _, n := range counts {
		if n == 0 {
			silent++
		}
		if float64(n) > 2.5*avg {
			hot++
		}
	}
	if silent < windows/10 {
		t.Errorf("only %d/%d silent windows — not bursty enough", silent, windows)
	}
	if hot < windows/20 {
		t.Errorf("only %d/%d hot windows — peaks missing", hot, windows)
	}
}

func TestBurstySourceDeterminism(t *testing.T) {
	tp := topology.New(4, 2)
	run := func() []Generated {
		s := NewBurstySource(1, NewUniform(tp), 0.3, 8,
			BurstProfile{OnMean: 100, OffMean: 100}, 5, 9)
		var gen []Generated
		for c := int64(0); c < 20000; c++ {
			gen = s.Poll(c, gen)
		}
		return gen
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestBurstySourceZeroRate(t *testing.T) {
	tp := topology.New(4, 2)
	s := NewBurstySource(0, NewUniform(tp), 0, 16,
		BurstProfile{OnMean: 100, OffMean: 100}, 1, 1)
	if got := s.Poll(100000, nil); len(got) != 0 {
		t.Errorf("zero-rate bursty source generated %d messages", len(got))
	}
}

func TestBurstySourceValidation(t *testing.T) {
	tp := topology.New(4, 2)
	for _, f := range []func(){
		func() {
			NewBurstySource(0, NewUniform(tp), -1, 16, BurstProfile{OnMean: 10, OffMean: 10}, 1, 1)
		},
		func() {
			NewBurstySource(0, NewUniform(tp), 0.1, 0, BurstProfile{OnMean: 10, OffMean: 10}, 1, 1)
		},
		func() { NewBurstySource(0, NewUniform(tp), 0.1, 16, BurstProfile{}, 1, 1) },
		func() { NewBurstySource(0, NewUniform(tp), 0.1, 16, BurstProfile{OnMean: -5, OffMean: 5}, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
