package traffic

// RogueSource is the adversarial generation process: a node that offers
// load without regard for the injection limiter (the engine bypasses the
// limiter gate for rogue nodes; this source only shapes *what* they offer).
// Its destination choice is duty-cycled: during the ON part of each storm
// period every message targets a fixed hotspot node — a coordinated burst
// that concentrates saturation where it hurts — and outside it the rogue
// blends in with uniform traffic. A zero storm period keeps the storm
// permanently on.
//
// Arrivals are Poisson like the well-behaved Source, so rogue pressure is
// an offered *rate*, comparable with the x-axis of the paper's figures.

import (
	"fmt"
	"math"
	"math/rand/v2"

	"wormnet/internal/topology"
)

// RogueSource generates adversarial traffic for one node. Construct with
// NewRogueSource; the zero value is unusable.
type RogueSource struct {
	node    topology.NodeID
	uniform *Uniform
	hot     topology.NodeID
	period  int64 // storm duty-cycle period; 0 = storm always on
	on      int64 // leading cycles of each period spent storming
	rng     *rand.Rand
	pcg     *rand.PCG
	msgLen  int
	next    float64
	meanGap float64
}

// NewRogueSource returns an adversarial generator for node. rate is the
// rogue's offered load in flits/node/cycle (must be positive — a silent
// rogue is no rogue); msgLen the message length in flits. During cycles c
// with c%period < on, messages target hot; otherwise destinations are
// uniform. period 0 means the storm never pauses. seed1/seed2 seed the
// node's private stream, exactly like NewSource.
func NewRogueSource(node topology.NodeID, nodes int, hot topology.NodeID,
	rate float64, msgLen int, period, on int64, seed1, seed2 uint64) *RogueSource {
	if rate <= 0 {
		panic(fmt.Sprintf("traffic: rogue rate %v must be positive", rate))
	}
	if msgLen < 1 {
		panic(fmt.Sprintf("traffic: message length %d < 1", msgLen))
	}
	if period < 0 || on < 0 || (period > 0 && on > period) {
		panic(fmt.Sprintf("traffic: bad storm duty cycle %d/%d", on, period))
	}
	pcg := rand.NewPCG(seed1, seed2)
	s := &RogueSource{
		node:    node,
		uniform: &Uniform{nodes: nodes},
		hot:     hot,
		period:  period,
		on:      on,
		rng:     rand.New(pcg),
		pcg:     pcg,
		msgLen:  msgLen,
		meanGap: float64(msgLen) / rate,
	}
	s.next = s.rng.ExpFloat64() * s.meanGap
	return s
}

// storming reports whether the storm is on at the given cycle.
func (s *RogueSource) storming(cycle int64) bool {
	if s.period == 0 {
		return true
	}
	return cycle%s.period < s.on
}

// Poll implements Generator. Each event's storm-window decision uses the
// event's own nominal cycle (the ceiling of its arrival time), not the poll
// cycle, so the sequence is independent of how generation polls batch up.
func (s *RogueSource) Poll(now int64, dst []Generated) []Generated {
	for s.next <= float64(now) {
		cycle := int64(math.Ceil(s.next))
		var d topology.NodeID
		if s.storming(cycle) && s.node != s.hot {
			d = s.hot
		} else {
			d = s.uniform.Destination(s.node, s.rng)
		}
		if d != s.node {
			dst = append(dst, Generated{Dst: d, Length: s.msgLen})
		}
		s.next += s.rng.ExpFloat64() * s.meanGap
	}
	return dst
}

// NextAt implements Generator.
func (s *RogueSource) NextAt() int64 {
	if math.IsInf(s.next, 1) {
		return maxInt64
	}
	return int64(math.Ceil(s.next))
}

// Node implements Generator.
func (s *RogueSource) Node() topology.NodeID { return s.node }

// SaveState implements Stateful.
func (s *RogueSource) SaveState() (GenState, error) {
	b, err := s.pcg.MarshalBinary()
	if err != nil {
		return GenState{}, fmt.Errorf("traffic: marshal rogue rng: %w", err)
	}
	return GenState{Rogue: true, PCG: b, Next: s.next}, nil
}

// LoadState implements Stateful.
func (s *RogueSource) LoadState(st GenState) error {
	if !st.Rogue || st.Bursty || st.Script {
		return fmt.Errorf("traffic: foreign generator state loaded into rogue source")
	}
	if err := s.pcg.UnmarshalBinary(st.PCG); err != nil {
		return fmt.Errorf("traffic: unmarshal rogue rng: %w", err)
	}
	s.next = st.Next
	return nil
}

// Compile-time interface check.
var _ Stateful = (*RogueSource)(nil)
