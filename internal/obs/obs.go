// Package obs is the run-telemetry export layer on top of
// internal/metrics and internal/trace: it turns the registry the engine
// feeds into things an operator can consume while (or after) a run.
//
//   - Prometheus text-format exposition (WritePrometheus),
//   - a buffered streaming JSONL sink (JSONLWriter) with typed records: a
//     run-manifest header, periodic metric snapshots (MetricsLogger), trace
//     events (TraceSink) and final results,
//   - an HTTP monitor (Monitor) serving /metrics, /snapshot, /healthz and
//     /debug/pprof/*,
//   - a flight recorder (FlightRecorder) that keeps the recent trace-event
//     window and dumps it when deadlock/drop activity bursts.
//
// Everything here observes the simulation without touching it: the engine's
// results are bit-identical with and without the export layer attached (see
// internal/sim's TestMetricsDeterminism).
package obs

import (
	"bytes"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// Manifest identifies a run: what binary produced the stream, when, from
// which source revision, and with which configuration. It is the first
// record of every JSONL stream and part of every /snapshot response, so a
// result file is self-describing.
type Manifest struct {
	Record  string         `json:"t"` // always "manifest"
	Tool    string         `json:"tool"`
	Started string         `json:"started"` // RFC3339, wall clock
	Git     string         `json:"git,omitempty"`
	Go      string         `json:"go"`
	Seed    uint64         `json:"seed"`
	Config  map[string]any `json:"config,omitempty"`
}

// NewManifest builds a manifest for the named tool. config is typically
// sim.Config.Manifest(); git revision and timestamps are filled here.
func NewManifest(tool string, seed uint64, config map[string]any) Manifest {
	return Manifest{
		Record:  "manifest",
		Tool:    tool,
		Started: time.Now().Format(time.RFC3339),
		Git:     GitDescribe(),
		Go:      runtime.Version(),
		Seed:    seed,
		Config:  config,
	}
}

// BuildVersion identifies the running build: the module's VCS revision
// (plus -dirty) when the binary was built from a stamped checkout, the
// module version for a released build, or `git describe` of the working
// tree as a last resort (test binaries carry no VCS stamp). The campaign
// farm compares this string across processes: a coordinator refuses workers
// of a different build, because mixed-version fleets cannot promise
// bit-identical results. Computed once per process.
var BuildVersion = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", ""
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			return rev + dirty
		}
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
	}
	if g := GitDescribe(); g != "" {
		return g
	}
	return "unknown"
})

// GitDescribe returns `git describe --always --dirty` of the working tree,
// or "" when git (or a repository) is unavailable. Best effort only — a
// missing revision never fails a run.
func GitDescribe() string {
	ctxArgs := []string{"describe", "--always", "--dirty", "--tags"}
	cmd := exec.Command("git", ctxArgs...)
	var out bytes.Buffer
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		return ""
	}
	return strings.TrimSpace(out.String())
}
