// Package obs is the run-telemetry export layer on top of
// internal/metrics and internal/trace: it turns the registry the engine
// feeds into things an operator can consume while (or after) a run.
//
//   - Prometheus text-format exposition (WritePrometheus),
//   - a buffered streaming JSONL sink (JSONLWriter) with typed records: a
//     run-manifest header, periodic metric snapshots (MetricsLogger), trace
//     events (TraceSink) and final results,
//   - an HTTP monitor (Monitor) serving /metrics, /snapshot, /healthz and
//     /debug/pprof/*,
//   - a flight recorder (FlightRecorder) that keeps the recent trace-event
//     window and dumps it when deadlock/drop activity bursts.
//
// Everything here observes the simulation without touching it: the engine's
// results are bit-identical with and without the export layer attached (see
// internal/sim's TestMetricsDeterminism).
package obs

import (
	"bytes"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Manifest identifies a run: what binary produced the stream, when, from
// which source revision, and with which configuration. It is the first
// record of every JSONL stream and part of every /snapshot response, so a
// result file is self-describing.
type Manifest struct {
	Record  string         `json:"t"` // always "manifest"
	Tool    string         `json:"tool"`
	Started string         `json:"started"` // RFC3339, wall clock
	Git     string         `json:"git,omitempty"`
	Go      string         `json:"go"`
	Seed    uint64         `json:"seed"`
	Config  map[string]any `json:"config,omitempty"`
}

// NewManifest builds a manifest for the named tool. config is typically
// sim.Config.Manifest(); git revision and timestamps are filled here.
func NewManifest(tool string, seed uint64, config map[string]any) Manifest {
	return Manifest{
		Record:  "manifest",
		Tool:    tool,
		Started: time.Now().Format(time.RFC3339),
		Git:     GitDescribe(),
		Go:      runtime.Version(),
		Seed:    seed,
		Config:  config,
	}
}

// GitDescribe returns `git describe --always --dirty` of the working tree,
// or "" when git (or a repository) is unavailable. Best effort only — a
// missing revision never fails a run.
func GitDescribe() string {
	ctxArgs := []string{"describe", "--always", "--dirty", "--tags"}
	cmd := exec.Command("git", ctxArgs...)
	var out bytes.Buffer
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		return ""
	}
	return strings.TrimSpace(out.String())
}
