package obs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"wormnet/internal/metrics"
)

// Monitor is the live HTTP view of a running simulation:
//
//	/metrics        Prometheus text exposition of the registry
//	/snapshot       JSON: manifest + current cycle + flattened metrics
//	/healthz        200 "ok cycle=N" while serving; 503 "draining" during
//	                graceful shutdown (BeginDrain/Shutdown)
//	/debug/pprof/*  the standard Go profiling endpoints
//
// The handlers read only the registry's atomics (plus the caller-supplied
// cycle function, which should itself read an atomic), so serving requests
// races with nothing in the engine.
type Monitor struct {
	reg      *metrics.Registry
	manifest Manifest
	cycle    func() int64
	srv      *http.Server
	ln       net.Listener
	draining atomic.Bool
	status   atomic.Pointer[func() string]
	version  atomic.Pointer[string]
	digest   atomic.Pointer[func() string]
}

// NewMonitor builds a monitor for the registry. cycle reports the engine's
// most recently sampled cycle (may be nil: /healthz then only reports
// liveness of the process). Call Serve to bind it to an address.
func NewMonitor(reg *metrics.Registry, manifest Manifest, cycle func() int64) *Monitor {
	return &Monitor{reg: reg, manifest: manifest, cycle: cycle}
}

// Handler returns the monitor's route table; exposed separately so tests
// (and embedders) can serve it without binding a socket.
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", m.handleMetrics)
	mux.HandleFunc("/snapshot", m.handleSnapshot)
	mux.HandleFunc("/healthz", m.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (e.g. ":8080" or "127.0.0.1:0") and serves the monitor
// in a background goroutine until Close.
func (m *Monitor) Serve(addr string) error {
	return m.ServeHandler(addr, m.Handler())
}

// ServeHandler binds addr and serves h — typically a larger mux that falls
// back to Handler() — with the monitor owning the listener and shutdown
// lifecycle. Embedders (the campaign coordinator) use this to add routes
// while keeping the monitor's drain protocol.
func (m *Monitor) ServeHandler(addr string, h http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	m.ln = ln
	m.srv = &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go m.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return nil
}

// Addr returns the bound address ("" before Serve). Useful with ":0".
func (m *Monitor) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Close stops the server immediately, dropping in-flight requests. Safe to
// call on a monitor that never served. Prefer Shutdown for a clean exit.
func (m *Monitor) Close() error {
	if m.srv == nil {
		return nil
	}
	return m.srv.Close()
}

// BeginDrain flips /healthz to 503 "draining" without stopping the server,
// so load balancers and probes see the instance leaving before its sockets
// go away. Idempotent.
func (m *Monitor) BeginDrain() { m.draining.Store(true) }

// SetStatus attaches a status word (e.g. the supervisor's state name) that
// /healthz appends to its response. Pass nil to detach. Safe to call
// concurrently with serving.
func (m *Monitor) SetStatus(f func() string) {
	if f == nil {
		m.status.Store(nil)
		return
	}
	m.status.Store(&f)
}

// SetBuildInfo attaches the process's build version to /healthz (typically
// BuildVersion()). Pass "" to detach. Safe to call concurrently with
// serving.
func (m *Monitor) SetBuildInfo(version string) {
	if version == "" {
		m.version.Store(nil)
		return
	}
	m.version.Store(&version)
}

// SetConfigDigest attaches a configuration digest source to /healthz
// (typically the sim.ConfigDigest of the run the process is executing), so
// a farm coordinator — or a human probe — can tell at a glance whether two
// processes are really running the same experiment. Pass nil to detach.
// Safe to call concurrently with serving.
func (m *Monitor) SetConfigDigest(f func() string) {
	if f == nil {
		m.digest.Store(nil)
		return
	}
	m.digest.Store(&f)
}

// Shutdown drains the monitor gracefully: /healthz starts reporting
// draining, in-flight requests get up to timeout to finish, and the listener
// closes. If the deadline passes, remaining connections are cut hard.
// Safe to call on a monitor that never served.
func (m *Monitor) Shutdown(timeout time.Duration) error {
	m.BeginDrain()
	if m.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := m.srv.Shutdown(ctx); err != nil {
		return m.srv.Close()
	}
	return nil
}

// shortDigest compacts a config digest (a long key=value line) to a stable
// 12-hex-digit fingerprint that fits a health-probe line. Already-short
// strings pass through.
func shortDigest(d string) string {
	if len(d) <= 16 && !strings.ContainsAny(d, " \t\n") {
		return d
	}
	sum := sha256.Sum256([]byte(d))
	return hex.EncodeToString(sum[:6])
}

func (m *Monitor) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, m.reg) //nolint:errcheck // client went away
}

func (m *Monitor) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	var cycle int64
	if m.cycle != nil {
		cycle = m.cycle()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck // client went away
		"manifest": m.manifest,
		"cycle":    cycle,
		"metrics":  MetricsMap(m.reg),
	})
}

func (m *Monitor) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	state := "ok"
	if m.draining.Load() {
		// 503 tells orchestrators to stop routing here; the body still
		// carries the cycle so a human probe sees how far the run got.
		state = "draining"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	if sp := m.status.Load(); sp != nil {
		state += " state=" + (*sp)()
	}
	if vp := m.version.Load(); vp != nil {
		state += " version=" + *vp
	}
	if dp := m.digest.Load(); dp != nil {
		if d := (*dp)(); d != "" {
			state += " digest=" + shortDigest(d)
		}
	}
	if m.cycle != nil {
		fmt.Fprintf(w, "%s cycle=%d\n", state, m.cycle())
		return
	}
	fmt.Fprintln(w, state)
}
