package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"wormnet/internal/metrics"
	"wormnet/internal/sim"
)

// TestConcurrentScrapeWhileRunning is the export layer's race gate: several
// goroutines hammer /metrics and /snapshot while the sharded parallel engine
// (workers >= 2, spans and metrics on) mutates the registry from its own
// goroutines. Run under -race (the CI race job does), this pins that the
// scrape path shares no unsynchronized state with the hot path.
func TestConcurrentScrapeWhileRunning(t *testing.T) {
	cfg := sim.QuickConfig()
	cfg.Rate = 1.2
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 200, 3000, 200
	cfg.Workers = 2
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	reg := metrics.NewRegistry()
	e.EnableMetrics(reg, 16)
	e.EnableSpans(reg, 4, nil)
	var lastCycle atomic.Int64
	e.SetSampleHook(func(cycle int64) { lastCycle.Store(cycle) })

	mon := NewMonitor(reg, NewManifest("test", cfg.Seed, cfg.Manifest()), lastCycle.Load)
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Run()
	}()

	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/snapshot", "/metrics", "/snapshot", "/healthz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("%s read: %v", path, err)
				}
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}
	wg.Wait()
	<-done
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after scraped run: %v", err)
	}
}
