package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"

	"wormnet/internal/metrics"
	"wormnet/internal/trace"
)

// JSONLWriter streams records as JSON Lines through a buffered writer. It
// is safe for concurrent use (the engine thread writes snapshots while a
// trace listener writes events). Errors are sticky: the first write error
// is kept and every later call becomes a no-op returning it, so callers may
// write unchecked and inspect Close's result once.
type JSONLWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer // closed by Close when the sink owns the stream
	err error
}

// NewJSONLWriter wraps w in a buffered JSONL sink. The caller keeps
// ownership of w; Close flushes but does not close it.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// CreateJSONL creates (truncating) the file at path and returns a sink that
// owns it: Close flushes and closes the file.
func CreateJSONL(path string) (*JSONLWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := NewJSONLWriter(f)
	w.c = f
	return w, nil
}

// Write appends one record as a JSON line.
func (w *JSONLWriter) Write(v any) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.err = w.enc.Encode(v) // Encode appends the newline
	return w.err
}

// Flush pushes buffered bytes to the underlying writer.
func (w *JSONLWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// Close flushes and, when the sink owns the underlying file, closes it. It
// returns the first error the sink encountered.
func (w *JSONLWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if ferr := w.bw.Flush(); w.err == nil {
		w.err = ferr
	}
	if w.c != nil {
		if cerr := w.c.Close(); w.err == nil {
			w.err = cerr
		}
		w.c = nil
	}
	return w.err
}

// snapshotRecord is one periodic metrics sample in a JSONL stream.
type snapshotRecord struct {
	Record  string         `json:"t"` // "snapshot"
	Cycle   int64          `json:"cycle"`
	Metrics map[string]any `json:"metrics"`
}

// histogramJSON is the JSON shape of a histogram sample.
type histogramJSON struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per-bucket, last is +Inf
}

// MetricsMap flattens a registry snapshot into a JSON-friendly map:
// counters and gauges become numbers, histograms become
// {count, sum, bounds, counts} objects.
func MetricsMap(reg *metrics.Registry) map[string]any {
	snap := reg.Snapshot()
	out := make(map[string]any, len(snap))
	for _, s := range snap {
		switch s.Kind {
		case metrics.KindHistogram:
			out[s.Name] = histogramJSON{Count: s.N, Sum: s.Sum, Bounds: s.Bound, Counts: s.Count}
		default:
			out[s.Name] = s.Value
		}
	}
	return out
}

// MetricsLogger writes periodic registry snapshots to a JSONL sink. Drive
// it from the engine's sample hook so snapshot cycles are deterministic.
type MetricsLogger struct {
	w   *JSONLWriter
	reg *metrics.Registry
}

// NewMetricsLogger returns a logger snapshotting reg into w.
func NewMetricsLogger(w *JSONLWriter, reg *metrics.Registry) *MetricsLogger {
	return &MetricsLogger{w: w, reg: reg}
}

// Snapshot appends one snapshot record for the given cycle.
func (l *MetricsLogger) Snapshot(cycle int64) {
	l.w.Write(snapshotRecord{Record: "snapshot", Cycle: cycle, Metrics: MetricsMap(l.reg)})
}

// eventRecord is one trace event in a JSONL stream. Len (flits; omitted
// when zero) makes recorded generation events a complete injection
// schedule — see ReadReplay.
type eventRecord struct {
	Record string `json:"t"` // "event"
	Cycle  int64  `json:"cycle"`
	Kind   string `json:"kind"`
	Msg    int64  `json:"msg"`
	Src    int64  `json:"src"`
	Dst    int64  `json:"dst"`
	Node   int64  `json:"node"`
	Len    int32  `json:"len,omitempty"`
}

// newEventRecord converts a trace event.
func newEventRecord(ev trace.Event) eventRecord {
	return eventRecord{
		Record: "event",
		Cycle:  ev.Cycle,
		Kind:   ev.Kind.String(),
		Msg:    ev.Msg,
		Src:    int64(ev.Src),
		Dst:    int64(ev.Dst),
		Node:   int64(ev.Node),
		Len:    ev.Len,
	}
}

// TraceSink is a trace.Listener streaming every event to a JSONL sink. The
// engine emits synchronously, so attach it only when the serialization cost
// is acceptable (it is the -trace-out path, not the default).
type TraceSink struct {
	w *JSONLWriter
}

// NewTraceSink returns a listener writing events to w.
func NewTraceSink(w *JSONLWriter) *TraceSink { return &TraceSink{w: w} }

// Emit implements trace.Listener.
func (s *TraceSink) Emit(ev trace.Event) { s.w.Write(newEventRecord(ev)) }

// ResultRecord is the closing record of a run's JSONL stream: the run's
// final summary plus any fields the caller wants alongside it.
type ResultRecord struct {
	Record string `json:"t"` // "result"
	Cycle  int64  `json:"cycle"`
	Result any    `json:"result"`
}

// WriteResult appends the final result record.
func WriteResult(w *JSONLWriter, cycle int64, result any) error {
	return w.Write(ResultRecord{Record: "result", Cycle: cycle, Result: result})
}
