package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"wormnet/internal/metrics"
)

// TestMonitorGracefulShutdown walks the drain protocol over a real socket:
// healthy 200, then BeginDrain flips /healthz to 503 "draining" while the
// server still answers, then Shutdown closes the listener within its
// timeout. Shutdown is also safe repeated and on a monitor that never
// served.
func TestMonitorGracefulShutdown(t *testing.T) {
	mon := NewMonitor(metrics.NewRegistry(), Manifest{}, func() int64 { return 777 })
	state := "running"
	mon.SetStatus(func() string { return state })
	if err := mon.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	url := "http://" + mon.Addr() + "/healthz"

	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get(); code != 200 || !strings.Contains(body, "ok state=running cycle=777") {
		t.Fatalf("healthy: code %d body %q", code, body)
	}

	state = "draining"
	mon.BeginDrain()
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Errorf("draining: code %d, want 503", code)
	}
	if !strings.Contains(body, "draining state=draining cycle=777") {
		t.Errorf("draining body %q", body)
	}

	done := make(chan error, 1)
	go func() { done <- mon.Shutdown(2 * time.Second) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not return")
	}
	if _, err := http.Get(url); err == nil {
		t.Error("server still answering after shutdown")
	}
	if err := mon.Shutdown(time.Second); err != nil {
		t.Errorf("repeated shutdown: %v", err)
	}

	idle := NewMonitor(nil, Manifest{}, nil)
	if err := idle.Shutdown(time.Second); err != nil {
		t.Errorf("shutdown of never-served monitor: %v", err)
	}
}
