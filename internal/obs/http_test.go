package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"wormnet/internal/metrics"
)

func healthzBody(t *testing.T, m *Monitor) string {
	t.Helper()
	rr := httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	return rr.Body.String()
}

// TestHealthzBuildAndDigest covers the farm-facing identity lines: the
// build version and the (shortened) config digest a coordinator or probe
// reads off /healthz to tell whether two processes match.
func TestHealthzBuildAndDigest(t *testing.T) {
	m := NewMonitor(metrics.NewRegistry(), Manifest{}, func() int64 { return 42 })

	body := healthzBody(t, m)
	if strings.Contains(body, "version=") || strings.Contains(body, "digest=") {
		t.Fatalf("identity lines present before Set*: %q", body)
	}

	m.SetBuildInfo("abc123def456")
	longDigest := "rate=0.5 vcs=2 buf=4 k=8 n=2 limiter=alo seed=42"
	m.SetConfigDigest(func() string { return longDigest })
	body = healthzBody(t, m)
	if !strings.Contains(body, " version=abc123def456") {
		t.Errorf("version missing: %q", body)
	}
	dig := regexp.MustCompile(` digest=([0-9a-f]{12})`).FindStringSubmatch(body)
	if dig == nil {
		t.Fatalf("shortened digest missing: %q", body)
	}
	if dig[1] != shortDigest(longDigest) {
		t.Errorf("digest %s does not match shortDigest(%q)", dig[1], longDigest)
	}
	if !strings.Contains(body, "cycle=42") {
		t.Errorf("cycle lost from the identity line: %q", body)
	}

	// Detach both; the plain line comes back.
	m.SetBuildInfo("")
	m.SetConfigDigest(nil)
	body = healthzBody(t, m)
	if strings.Contains(body, "version=") || strings.Contains(body, "digest=") {
		t.Errorf("identity lines survive detach: %q", body)
	}

	// An empty digest source stays silent rather than printing "digest=".
	m.SetConfigDigest(func() string { return "" })
	if body = healthzBody(t, m); strings.Contains(body, "digest=") {
		t.Errorf("empty digest printed: %q", body)
	}
}

func TestShortDigest(t *testing.T) {
	if got := shortDigest("abc123"); got != "abc123" {
		t.Errorf("short clean string rewritten: %q", got)
	}
	long := strings.Repeat("k=v ", 20)
	got := shortDigest(long)
	if !regexp.MustCompile(`^[0-9a-f]{12}$`).MatchString(got) {
		t.Errorf("long digest not a 12-hex fingerprint: %q", got)
	}
	if got != shortDigest(long) {
		t.Error("fingerprint not stable")
	}
	// Even a short string with spaces gets hashed: it would break the
	// space-separated healthz line otherwise.
	if got := shortDigest("a b"); strings.Contains(got, " ") {
		t.Errorf("spaces leaked into the probe line: %q", got)
	}
}

// TestServeHandler proves an embedder can own the mux while the monitor
// owns listener and drain — the shape the campaign server uses.
func TestServeHandler(t *testing.T) {
	m := NewMonitor(metrics.NewRegistry(), Manifest{}, nil)
	mux := http.NewServeMux()
	mux.HandleFunc("/custom", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "custom ok") //nolint:errcheck // test
	})
	mux.Handle("/", m.Handler())
	if err := m.ServeHandler("127.0.0.1:0", mux); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + m.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/custom"); code != 200 || body != "custom ok" {
		t.Errorf("embedder route: %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.HasPrefix(body, "ok") {
		t.Errorf("fallback monitor route: %d %q", code, body)
	}
	if err := m.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestBuildVersionNonEmpty(t *testing.T) {
	v := BuildVersion()
	if v == "" {
		t.Fatal("BuildVersion returned empty")
	}
	if v != BuildVersion() {
		t.Fatal("BuildVersion not stable across calls")
	}
}
