package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"wormnet/internal/metrics"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE comment pairs, scalar samples, and
// cumulative _bucket/_sum/_count series for histograms.
func WritePrometheus(w io.Writer, reg *metrics.Registry) error {
	for _, s := range reg.Snapshot() {
		if s.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(s.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
			return err
		}
		var err error
		switch s.Kind {
		case metrics.KindHistogram:
			cum := int64(0)
			for i, n := range s.Count {
				cum += n
				le := "+Inf"
				if i < len(s.Bound) {
					le = formatFloat(s.Bound[i])
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, le, cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", s.Name, formatFloat(s.Sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", s.Name, s.N)
		default:
			_, err = fmt.Fprintf(w, "%s %s\n", s.Name, formatFloat(s.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
