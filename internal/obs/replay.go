package obs

// Trace-driven replay input: parse a JSONL event stream (the -trace-out
// format written by TraceSink) back into per-node injection schedules. The
// generation events alone determine the offered workload — cycle, source,
// destination, length — so a recorded run can be re-driven through
// traffic.ReplayFactory under a different limiter, routing engine or fault
// schedule, holding the workload fixed while one mechanism varies.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"wormnet/internal/topology"
	"wormnet/internal/traffic"
)

// ReadReplay scans a JSONL stream and collects every "generated" event into
// per-node traffic scripts, in stream order (TraceSink writes in simulation
// order, so the scripts come out cycle-sorted). Non-event records and other
// event kinds are skipped; malformed JSON lines and generation records
// without a positive length are errors — silently dropping them would
// desynchronise the replay from the run that produced the trace.
func ReadReplay(r io.Reader) (map[topology.NodeID][]traffic.Event, error) {
	out := make(map[topology.NodeID][]traffic.Event)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec eventRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("obs: replay line %d: %w", line, err)
		}
		if rec.Record != "event" || rec.Kind != "generated" {
			continue
		}
		if rec.Len < 1 {
			return nil, fmt.Errorf("obs: replay line %d: generated event without length (old trace format?)", line)
		}
		src := topology.NodeID(rec.Src)
		out[src] = append(out[src], traffic.Event{
			Cycle:  rec.Cycle,
			Dst:    topology.NodeID(rec.Dst),
			Length: int(rec.Len),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: replay scan: %w", err)
	}
	return out, nil
}
