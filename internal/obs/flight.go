package obs

import (
	"sync"

	"wormnet/internal/metrics"
	"wormnet/internal/trace"
)

// FlightRecorder is a trace.Listener that keeps the most recent events in a
// ring and, when deadlock/drop activity bursts — at least Threshold
// deadlock-or-drop events within a Window of cycles — dumps the retained
// window (plus a metrics snapshot, when a registry is attached) to a JSONL
// sink. The dump answers "what led up to this?" without paying for full
// event logging on healthy runs.
//
// A second, independently configured trigger fires on saturation onset: at
// least SatThreshold limiter-denial (throttle) events within SatWindow
// cycles — the ALO deny-rate spike that marks the network crossing into
// saturation (SetSaturationTrigger; off by default). The recorder can also
// retain the most recent finished message spans (RetainSpans, fed through
// trace.SpanSink) and dumps them alongside the event window, so each dump
// carries the latency decomposition of the messages leading up to it.
//
// Dumps are rate-limited: after firing, the recorder stays quiet for
// Cooldown cycles so a sustained collapse produces a bounded number of
// dumps rather than one per event. Both triggers share the cooldown.
type FlightRecorder struct {
	ring *trace.Recorder
	w    *JSONLWriter
	reg  *metrics.Registry // optional; attaches a snapshot to each dump

	// Window is the burst-detection window in cycles, Threshold the number
	// of deadlock/drop events within it that triggers a dump, Cooldown the
	// minimum number of cycles between dumps.
	Window    int64
	Threshold int
	Cooldown  int64

	// SatWindow/SatThreshold are the saturation-onset trigger: SatThreshold
	// throttle events within SatWindow cycles. SatThreshold <= 0 disables.
	SatWindow    int64
	SatThreshold int

	mu       sync.Mutex
	times    []int64 // emission cycles of recent deadlock/drop events (ring)
	next     int
	satTimes []int64 // emission cycles of recent throttle events (ring)
	satNext  int
	lastDump int64
	dumps    int

	spanRing  []*trace.SpanRecord // retained finished spans (cloned), ring
	spanNext  int
	spanCount int
}

// Default flight-recorder tuning, used by the CLI: retain the last 4096
// events and dump when 8 deadlock/drop events land within 1024 cycles.
// Healthy runs (sporadic recoveries) never trigger; a saturation collapse
// or a fault-driven drop storm does.
const (
	DefaultFlightCapacity  = 4096
	DefaultFlightWindow    = 1024
	DefaultFlightThreshold = 8
	// Saturation-trigger defaults (the trigger itself is opt-in): a dump
	// when 256 limiter denials land within 256 cycles — a sustained ≥1
	// denial/cycle network-wide, which steady sub-saturation traffic with a
	// working limiter does not produce.
	DefaultFlightSatWindow    = 256
	DefaultFlightSatThreshold = 256
	// DefaultFlightSpans is the CLI's span-retention depth.
	DefaultFlightSpans = 256
)

// NewFlightRecorder returns a recorder retaining the latest capacity events
// with the given burst window and threshold. reg may be nil.
func NewFlightRecorder(w *JSONLWriter, reg *metrics.Registry, capacity int, window int64, threshold int) *FlightRecorder {
	if threshold < 1 {
		panic("obs: flight-recorder threshold must be positive")
	}
	return &FlightRecorder{
		ring:      trace.NewRecorder(capacity),
		w:         w,
		reg:       reg,
		Window:    window,
		Threshold: threshold,
		Cooldown:  window,
		times:     make([]int64, threshold-1),
		lastDump:  -1 << 62,
	}
}

// SetSaturationTrigger arms (or, with threshold <= 0, disarms) the
// saturation-onset trigger: a dump fires when threshold throttle events
// land within window cycles, subject to the shared cooldown.
func (f *FlightRecorder) SetSaturationTrigger(window int64, threshold int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.SatWindow = window
	f.SatThreshold = threshold
	f.satTimes = nil
	f.satNext = 0
	if threshold > 1 {
		f.satTimes = make([]int64, threshold-1)
	}
}

// RetainSpans makes the recorder keep the most recent capacity finished
// message spans (attach the recorder as a trace.SpanSink, e.g. via
// Engine.EnableSpans); every dump then includes them.
func (f *FlightRecorder) RetainSpans(capacity int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.spanRing = make([]*trace.SpanRecord, capacity)
	f.spanNext, f.spanCount = 0, 0
}

// SpanDone implements trace.SpanSink. Records are transient, so the
// recorder retains a deep copy.
func (f *FlightRecorder) SpanDone(s *trace.SpanRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.spanRing) == 0 {
		return
	}
	f.spanRing[f.spanNext] = s.Clone()
	f.spanNext = (f.spanNext + 1) % len(f.spanRing)
	if f.spanCount < len(f.spanRing) {
		f.spanCount++
	}
}

// flightRecord is one dump in a JSONL stream.
type flightRecord struct {
	Record  string         `json:"t"`      // "flight"
	Reason  string         `json:"reason"` // "burst" or "saturation"
	Cycle   int64          `json:"cycle"`
	Window  int64          `json:"window"`
	Bursts  int            `json:"burst_events"` // trigger events in the window
	Events  []eventRecord  `json:"events"`
	Spans   []spanJSON     `json:"spans,omitempty"`
	Metrics map[string]any `json:"metrics,omitempty"`
}

// spanJSON is the JSON shape of one retained message span.
type spanJSON struct {
	ID         int64         `json:"id"`
	Src        int64         `json:"src"`
	Dst        int64         `json:"dst"`
	Len        int           `json:"len"`
	Gen        int64         `json:"gen"`
	Admit      int64         `json:"admit"`
	Inject     int64         `json:"inject"`
	Deliver    int64         `json:"deliver"`
	Denies     int64         `json:"denies"`
	DeniesA    int64         `json:"denies_rule_a"`
	DeniesB    int64         `json:"denies_rule_b"`
	Recoveries int           `json:"recoveries"`
	Retries    int           `json:"retries"`
	Hops       []spanHopJSON `json:"hops"`
}

// spanHopJSON is one hop of a retained span.
type spanHopJSON struct {
	Node   int64 `json:"node"`
	Arrive int64 `json:"arrive"`
	Alloc  int64 `json:"alloc"`
}

// newSpanJSON converts a retained span record.
func newSpanJSON(s *trace.SpanRecord) spanJSON {
	hops := make([]spanHopJSON, len(s.Hops))
	for i, h := range s.Hops {
		hops[i] = spanHopJSON{Node: int64(h.Node), Arrive: h.Arrive, Alloc: h.Alloc}
	}
	return spanJSON{
		ID: s.ID, Src: int64(s.Src), Dst: int64(s.Dst), Len: s.Len,
		Gen: s.Gen, Admit: s.Admit, Inject: s.Inject, Deliver: s.Deliver,
		Denies: s.Denies, DeniesA: s.DeniesRuleA, DeniesB: s.DeniesRuleB,
		Recoveries: s.Recoveries, Retries: s.Retries, Hops: hops,
	}
}

// slideWindow pushes cycle into the (threshold-1)-sized ring times at
// *next and reports whether threshold trigger events — this one included —
// landed within window cycles. The slot about to be overwritten holds the
// cycle of the event threshold-1 occurrences ago, so the check is exact; an
// empty ring (threshold 1) fires on every event, rate-limited by the
// caller's cooldown. Stored cycles are offset by +1 to keep cycle 0
// distinct from empty slots.
func slideWindow(times []int64, next *int, cycle, window int64) bool {
	if len(times) == 0 {
		return true
	}
	oldest := times[*next]
	times[*next] = cycle + 1
	*next = (*next + 1) % len(times)
	return oldest > 0 && cycle+1-oldest <= window
}

// Emit implements trace.Listener.
func (f *FlightRecorder) Emit(ev trace.Event) {
	f.ring.Emit(ev)
	var reason string
	switch ev.Kind {
	case trace.KindDeadlock, trace.KindDropped:
		reason = "burst"
	case trace.KindThrottled:
		if f.SatThreshold <= 0 {
			return
		}
		reason = "saturation"
	default:
		return
	}
	f.mu.Lock()
	var burst bool
	if reason == "burst" {
		burst = slideWindow(f.times, &f.next, ev.Cycle, f.Window)
	} else {
		burst = slideWindow(f.satTimes, &f.satNext, ev.Cycle, f.SatWindow)
	}
	fire := burst && ev.Cycle-f.lastDump >= f.Cooldown
	if fire {
		f.lastDump = ev.Cycle
		f.dumps++
	}
	f.mu.Unlock()
	if fire {
		f.dump(ev.Cycle, reason)
	}
}

// dump writes the retained window (and retained spans, oldest first).
func (f *FlightRecorder) dump(cycle int64, reason string) {
	evs := f.ring.Events()
	recs := make([]eventRecord, len(evs))
	for i, ev := range evs {
		recs[i] = newEventRecord(ev)
	}
	rec := flightRecord{
		Record: "flight",
		Reason: reason,
		Cycle:  cycle,
		Window: f.Window,
		Bursts: f.Threshold,
		Events: recs,
	}
	if reason == "saturation" {
		rec.Window, rec.Bursts = f.SatWindow, f.SatThreshold
	}
	f.mu.Lock()
	if f.spanCount > 0 {
		rec.Spans = make([]spanJSON, 0, f.spanCount)
		for i := 0; i < f.spanCount; i++ {
			idx := (f.spanNext - f.spanCount + i + len(f.spanRing)) % len(f.spanRing)
			rec.Spans = append(rec.Spans, newSpanJSON(f.spanRing[idx]))
		}
	}
	f.mu.Unlock()
	if f.reg != nil {
		rec.Metrics = MetricsMap(f.reg)
	}
	f.w.Write(rec) //nolint:errcheck // sticky error surfaces at Close
	f.w.Flush()    //nolint:errcheck // a flight dump should hit disk now
}

// Dumps returns how many dumps have fired.
func (f *FlightRecorder) Dumps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// Recorder exposes the underlying ring, e.g. to print the tail after a run.
func (f *FlightRecorder) Recorder() *trace.Recorder { return f.ring }
