package obs

import (
	"sync"

	"wormnet/internal/metrics"
	"wormnet/internal/trace"
)

// FlightRecorder is a trace.Listener that keeps the most recent events in a
// ring and, when deadlock/drop activity bursts — at least Threshold
// deadlock-or-drop events within a Window of cycles — dumps the retained
// window (plus a metrics snapshot, when a registry is attached) to a JSONL
// sink. The dump answers "what led up to this?" without paying for full
// event logging on healthy runs.
//
// Dumps are rate-limited: after firing, the recorder stays quiet for
// Cooldown cycles so a sustained collapse produces a bounded number of
// dumps rather than one per event.
type FlightRecorder struct {
	ring *trace.Recorder
	w    *JSONLWriter
	reg  *metrics.Registry // optional; attaches a snapshot to each dump

	// Window is the burst-detection window in cycles, Threshold the number
	// of deadlock/drop events within it that triggers a dump, Cooldown the
	// minimum number of cycles between dumps.
	Window    int64
	Threshold int
	Cooldown  int64

	mu       sync.Mutex
	times    []int64 // emission cycles of recent deadlock/drop events (ring)
	next     int
	lastDump int64
	dumps    int
}

// Default flight-recorder tuning, used by the CLI: retain the last 4096
// events and dump when 8 deadlock/drop events land within 1024 cycles.
// Healthy runs (sporadic recoveries) never trigger; a saturation collapse
// or a fault-driven drop storm does.
const (
	DefaultFlightCapacity  = 4096
	DefaultFlightWindow    = 1024
	DefaultFlightThreshold = 8
)

// NewFlightRecorder returns a recorder retaining the latest capacity events
// with the given burst window and threshold. reg may be nil.
func NewFlightRecorder(w *JSONLWriter, reg *metrics.Registry, capacity int, window int64, threshold int) *FlightRecorder {
	if threshold < 1 {
		panic("obs: flight-recorder threshold must be positive")
	}
	return &FlightRecorder{
		ring:      trace.NewRecorder(capacity),
		w:         w,
		reg:       reg,
		Window:    window,
		Threshold: threshold,
		Cooldown:  window,
		times:     make([]int64, threshold-1),
		lastDump:  -1 << 62,
	}
}

// flightRecord is one dump in a JSONL stream.
type flightRecord struct {
	Record  string         `json:"t"` // "flight"
	Cycle   int64          `json:"cycle"`
	Window  int64          `json:"window"`
	Bursts  int            `json:"burst_events"` // deadlock/drop events in the window
	Events  []eventRecord  `json:"events"`
	Metrics map[string]any `json:"metrics,omitempty"`
}

// Emit implements trace.Listener.
func (f *FlightRecorder) Emit(ev trace.Event) {
	f.ring.Emit(ev)
	if ev.Kind != trace.KindDeadlock && ev.Kind != trace.KindDropped {
		return
	}
	f.mu.Lock()
	// times is a (Threshold-1)-sized ring of the burst-relevant event
	// cycles: the slot about to be overwritten holds the cycle of the event
	// Threshold-1 occurrences ago, so "burst" is exactly "Threshold such
	// events, this one included, within Window cycles". Threshold 1 (empty
	// ring) fires on every deadlock/drop, rate-limited by the cooldown.
	burst := true
	if len(f.times) > 0 {
		oldest := f.times[f.next]
		f.times[f.next] = ev.Cycle + 1 // +1 keeps cycle 0 distinct from empty slots
		f.next = (f.next + 1) % len(f.times)
		burst = oldest > 0 && ev.Cycle+1-oldest <= f.Window
	}
	fire := burst && ev.Cycle-f.lastDump >= f.Cooldown
	if fire {
		f.lastDump = ev.Cycle
		f.dumps++
	}
	f.mu.Unlock()
	if fire {
		f.dump(ev.Cycle)
	}
}

// dump writes the retained window.
func (f *FlightRecorder) dump(cycle int64) {
	evs := f.ring.Events()
	recs := make([]eventRecord, len(evs))
	for i, ev := range evs {
		recs[i] = newEventRecord(ev)
	}
	rec := flightRecord{
		Record: "flight",
		Cycle:  cycle,
		Window: f.Window,
		Bursts: f.Threshold,
		Events: recs,
	}
	if f.reg != nil {
		rec.Metrics = MetricsMap(f.reg)
	}
	f.w.Write(rec) //nolint:errcheck // sticky error surfaces at Close
	f.w.Flush()    //nolint:errcheck // a flight dump should hit disk now
}

// Dumps returns how many dumps have fired.
func (f *FlightRecorder) Dumps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// Recorder exposes the underlying ring, e.g. to print the tail after a run.
func (f *FlightRecorder) Recorder() *trace.Recorder { return f.ring }
