package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"

	"wormnet/internal/trace"
)

// TraceJSONWriter streams finished message-lifecycle spans as Chrome
// trace-event JSON ({"traceEvents":[...]}), the format Perfetto and
// chrome://tracing load directly. Each sampled message becomes one track
// (pid 0, tid = message ID) holding nested complete ("X") slices: the whole
// lifetime, the source-queue wait, every per-hop channel-acquire block, and
// the final drain — so a saturated run opens as a track view in which the
// congestion tree is visible as stacked blocked-time slices. One simulation
// cycle maps to one microsecond (the trace format's time unit).
//
// Like JSONLWriter, errors are sticky: the first write error is kept and
// every later call is a no-op, so the engine can feed spans unchecked and
// the caller inspects Close once. Safe for concurrent use, though the
// engine emits spans from a single goroutine.
type TraceJSONWriter struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	c     io.Closer // closed by Close when the writer owns the stream
	err   error
	first bool // next event is the array's first (no leading comma)
	spans int64
}

// NewTraceJSONWriter wraps w in a trace-event stream and writes the header.
// The caller keeps ownership of w; Close flushes but does not close it.
func NewTraceJSONWriter(w io.Writer) *TraceJSONWriter {
	t := &TraceJSONWriter{bw: bufio.NewWriterSize(w, 1<<16), first: true}
	_, t.err = t.bw.WriteString(`{"traceEvents":[`)
	return t
}

// CreateTraceJSON creates (truncating) the file at path and returns a
// writer that owns it: Close writes the footer and closes the file.
func CreateTraceJSON(path string) (*TraceJSONWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := NewTraceJSONWriter(f)
	t.c = f
	return t, nil
}

// event appends one trace event object (body is the JSON after the opening
// brace, without the trailing brace), handling the array comma.
func (t *TraceJSONWriter) event(format string, args ...any) {
	if t.err != nil {
		return
	}
	if t.first {
		t.first = false
	} else {
		if _, t.err = t.bw.WriteString(","); t.err != nil {
			return
		}
	}
	_, t.err = fmt.Fprintf(t.bw, format, args...)
}

// SpanDone implements trace.SpanSink: append the span's track. Undelivered
// spans (drops) still emit their lifetime and any granted hops, with the
// drop cycle unknown — their open-ended phases are simply omitted.
func (t *TraceJSONWriter) SpanDone(s *trace.SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.spans++
	// Track name ("M" metadata): one row per sampled message.
	t.event(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"msg %d  %d->%d"}}`,
		s.ID, s.ID, int64(s.Src), int64(s.Dst))
	// Lifetime slice: encloses every other slice of the track, so viewers
	// nest them. Carries the span's scalar attribution as args.
	end := s.Deliver
	if end < 0 { // dropped or cut off: close the slice at the last known cycle
		end = s.Gen
		for _, h := range s.Hops {
			if h.Arrive > end {
				end = h.Arrive
			}
			if h.Alloc > end {
				end = h.Alloc
			}
		}
	}
	delivered := 0
	if s.Deliver >= 0 {
		delivered = 1
	}
	t.event(`{"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"name":"life","cat":"span","args":{"src":%d,"dst":%d,"len":%d,"delivered":%d,"denies":%d,"denies_rule_a":%d,"denies_rule_b":%d,"recoveries":%d,"retries":%d,"hops":%d}}`,
		s.ID, s.Gen, end-s.Gen, int64(s.Src), int64(s.Dst), s.Len, delivered,
		s.Denies, s.DeniesRuleA, s.DeniesRuleB, s.Recoveries, s.Retries, len(s.Hops))
	// Source-queue wait: generation to injection-channel claim.
	if s.Admit >= 0 {
		t.event(`{"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"name":"queue-wait","cat":"span","args":{"denies":%d}}`,
			s.ID, s.Gen, s.Admit-s.Gen, s.Denies)
	}
	// Per-hop channel-acquire block time.
	for _, h := range s.Hops {
		if h.Alloc < 0 {
			continue
		}
		t.event(`{"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"name":"hop n%d","cat":"span","args":{"node":%d}}`,
			s.ID, h.Arrive, h.Alloc-h.Arrive, int64(h.Node), int64(h.Node))
	}
	// Drain: last channel grant to tail delivery.
	if d := s.DrainCycles(); d >= 0 {
		t.event(`{"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"name":"drain","cat":"span","args":{}}`,
			s.ID, s.Deliver-d, d)
	}
}

// Spans returns the number of spans written so far.
func (t *TraceJSONWriter) Spans() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans
}

// Err returns the writer's sticky error, if any.
func (t *TraceJSONWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close writes the footer, flushes and, when the writer owns the underlying
// file, closes it. It returns the first error the writer encountered.
func (t *TraceJSONWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		_, t.err = t.bw.WriteString("]}\n")
	}
	if ferr := t.bw.Flush(); t.err == nil {
		t.err = ferr
	}
	if t.c != nil {
		if cerr := t.c.Close(); t.err == nil {
			t.err = cerr
		}
		t.c = nil
	}
	return t.err
}
