package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wormnet/internal/metrics"
	"wormnet/internal/trace"
)

func testRegistry() *metrics.Registry {
	r := metrics.NewRegistry()
	r.NewCounter("sim_delivered_total", "messages delivered").Add(42)
	r.NewGauge("sim_queue_depth", "queued messages").Set(3.5)
	h := r.NewHistogram("sim_phase_ns", "phase wall time", []float64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)
	return r
}

func TestWritePrometheus(t *testing.T) {
	var b bytes.Buffer
	if err := WritePrometheus(&b, testRegistry()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP sim_delivered_total messages delivered",
		"# TYPE sim_delivered_total counter",
		"sim_delivered_total 42",
		"# TYPE sim_queue_depth gauge",
		"sim_queue_depth 3.5",
		"# TYPE sim_phase_ns histogram",
		`sim_phase_ns_bucket{le="100"} 1`,
		`sim_phase_ns_bucket{le="1000"} 2`,
		`sim_phase_ns_bucket{le="+Inf"} 3`,
		"sim_phase_ns_sum 5550",
		"sim_phase_ns_count 3",
	} {
		if !strings.Contains(out, want+"\n") && !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONLStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	man := NewManifest("test", 7, map[string]any{"k": 4})
	if err := w.Write(man); err != nil {
		t.Fatal(err)
	}
	reg := testRegistry()
	NewMetricsLogger(w, reg).Snapshot(128)
	NewTraceSink(w).Emit(trace.Event{Cycle: 5, Kind: trace.KindInjected, Msg: 9, Src: 1, Dst: 2, Node: 1})
	if err := WriteResult(w, 256, map[string]any{"accepted": 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var kinds []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, rec["t"].(string))
		switch rec["t"] {
		case "manifest":
			if rec["tool"] != "test" || rec["seed"].(float64) != 7 {
				t.Errorf("bad manifest: %v", rec)
			}
		case "snapshot":
			m := rec["metrics"].(map[string]any)
			if m["sim_delivered_total"].(float64) != 42 {
				t.Errorf("bad snapshot metrics: %v", m)
			}
			if rec["cycle"].(float64) != 128 {
				t.Errorf("bad snapshot cycle: %v", rec)
			}
			h := m["sim_phase_ns"].(map[string]any)
			if h["count"].(float64) != 3 {
				t.Errorf("bad histogram in snapshot: %v", h)
			}
		case "event":
			if rec["kind"] != "injected" || rec["msg"].(float64) != 9 {
				t.Errorf("bad event: %v", rec)
			}
		}
	}
	want := []string{"manifest", "snapshot", "event", "result"}
	if len(kinds) != len(want) {
		t.Fatalf("record kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("record kinds %v, want %v", kinds, want)
		}
	}
}

// errWriter fails after n bytes to exercise sticky errors.
type errWriter struct{ n int }

func (e *errWriter) Write(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	e.n -= len(p)
	return len(p), nil
}

func TestJSONLStickyError(t *testing.T) {
	w := NewJSONLWriter(&errWriter{n: 8})
	for i := 0; i < 100000; i++ {
		w.Write(map[string]int{"i": i}) //nolint:errcheck // checking at Close
	}
	if err := w.Close(); err == nil {
		t.Fatal("want sticky write error at Close")
	}
	if err := w.Write("more"); err == nil {
		t.Fatal("writes after error must keep failing")
	}
}

func TestMonitorEndpoints(t *testing.T) {
	reg := testRegistry()
	man := NewManifest("wormsim", 1, map[string]any{"k": 8})
	mon := NewMonitor(reg, man, func() int64 { return 4096 })
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "sim_delivered_total 42") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok cycle=4096") {
		t.Errorf("/healthz: code %d body %q", code, body)
	}
	code, body := get("/snapshot")
	if code != 200 {
		t.Fatalf("/snapshot: code %d", code)
	}
	var snap struct {
		Manifest Manifest       `json:"manifest"`
		Cycle    int64          `json:"cycle"`
		Metrics  map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v\n%s", err, body)
	}
	if snap.Cycle != 4096 || snap.Manifest.Tool != "wormsim" || snap.Metrics["sim_queue_depth"].(float64) != 3.5 {
		t.Errorf("bad snapshot: %+v", snap)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}
}

func TestMonitorServeAndClose(t *testing.T) {
	mon := NewMonitor(metrics.NewRegistry(), Manifest{}, nil)
	if err := mon.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := mon.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz over socket: %d", resp.StatusCode)
	}
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFlightRecorder(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	fr := NewFlightRecorder(w, testRegistry(), 64, 100, 3)

	// Background traffic, no burst: deadlocks spread far apart.
	for c := int64(0); c < 1000; c += 200 {
		fr.Emit(trace.Event{Cycle: c, Kind: trace.KindInjected})
		fr.Emit(trace.Event{Cycle: c, Kind: trace.KindDeadlock})
	}
	if fr.Dumps() != 0 {
		t.Fatalf("no burst yet, got %d dumps", fr.Dumps())
	}

	// Burst: 3 drops within 100 cycles.
	fr.Emit(trace.Event{Cycle: 2000, Kind: trace.KindDropped})
	fr.Emit(trace.Event{Cycle: 2010, Kind: trace.KindDeadlock})
	fr.Emit(trace.Event{Cycle: 2020, Kind: trace.KindDropped})
	if fr.Dumps() != 1 {
		t.Fatalf("burst should dump once, got %d", fr.Dumps())
	}
	// Cooldown: more burst events right after must not re-fire.
	fr.Emit(trace.Event{Cycle: 2030, Kind: trace.KindDropped})
	fr.Emit(trace.Event{Cycle: 2040, Kind: trace.KindDropped})
	if fr.Dumps() != 1 {
		t.Fatalf("cooldown violated: %d dumps", fr.Dumps())
	}
	// After the cooldown, a new burst fires again.
	fr.Emit(trace.Event{Cycle: 2200, Kind: trace.KindDropped})
	fr.Emit(trace.Event{Cycle: 2210, Kind: trace.KindDropped})
	fr.Emit(trace.Event{Cycle: 2220, Kind: trace.KindDropped})
	if fr.Dumps() != 2 {
		t.Fatalf("post-cooldown burst should dump, got %d", fr.Dumps())
	}

	w.Close()
	var recs []flightRecord
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec flightRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("want 2 flight records, got %d", len(recs))
	}
	if recs[0].Record != "flight" || recs[0].Cycle != 2020 || len(recs[0].Events) == 0 {
		t.Errorf("bad flight record: %+v", recs[0])
	}
	if recs[0].Metrics == nil {
		t.Error("flight record should embed a metrics snapshot")
	}
}

func TestFlightRecorderSaturationTrigger(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	fr := NewFlightRecorder(w, nil, 64, 100, 3)
	fr.SetSaturationTrigger(50, 4)
	fr.RetainSpans(2)

	// Feed finished spans; only the last two survive the ring.
	for i := int64(0); i < 5; i++ {
		fr.SpanDone(&trace.SpanRecord{ID: i, Gen: i * 10, Admit: i*10 + 1, Deliver: i*10 + 5,
			Hops: []trace.SpanHop{{Node: 3, Arrive: i*10 + 1, Alloc: i*10 + 2}}})
	}

	// Throttle events too far apart: no dump.
	for c := int64(0); c < 400; c += 100 {
		fr.Emit(trace.Event{Cycle: c, Kind: trace.KindThrottled})
	}
	if fr.Dumps() != 0 {
		t.Fatalf("sparse throttles fired a dump: %d", fr.Dumps())
	}
	// 4 throttles within 50 cycles: saturation onset.
	for c := int64(1000); c < 1040; c += 10 {
		fr.Emit(trace.Event{Cycle: c, Kind: trace.KindThrottled})
	}
	if fr.Dumps() != 1 {
		t.Fatalf("saturation spike should dump once, got %d", fr.Dumps())
	}
	// Burst trigger still works independently and shares the cooldown.
	fr.Emit(trace.Event{Cycle: 1050, Kind: trace.KindDropped})
	fr.Emit(trace.Event{Cycle: 1051, Kind: trace.KindDropped})
	fr.Emit(trace.Event{Cycle: 1052, Kind: trace.KindDropped})
	if fr.Dumps() != 1 {
		t.Fatalf("cooldown should suppress the burst dump, got %d", fr.Dumps())
	}

	w.Close()
	var recs []flightRecord
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec flightRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 flight record, got %d", len(recs))
	}
	rec := recs[0]
	if rec.Reason != "saturation" || rec.Cycle != 1030 || rec.Window != 50 || rec.Bursts != 4 {
		t.Errorf("bad saturation record: %+v", rec)
	}
	if len(rec.Spans) != 2 || rec.Spans[0].ID != 3 || rec.Spans[1].ID != 4 {
		t.Fatalf("want retained spans [3 4], got %+v", rec.Spans)
	}
	if rec.Spans[1].Deliver != 45 || len(rec.Spans[1].Hops) != 1 || rec.Spans[1].Hops[0].Node != 3 {
		t.Errorf("bad span payload: %+v", rec.Spans[1])
	}
}

func TestFlightRecorderSaturationDisabledByDefault(t *testing.T) {
	var buf bytes.Buffer
	fr := NewFlightRecorder(NewJSONLWriter(&buf), nil, 64, 100, 1)
	for c := int64(0); c < 100; c++ {
		fr.Emit(trace.Event{Cycle: c, Kind: trace.KindThrottled})
	}
	if fr.Dumps() != 0 {
		t.Fatalf("throttle events must not dump when the trigger is off, got %d", fr.Dumps())
	}
}

func TestTraceJSONWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceJSONWriter(&buf)
	// A delivered span with a queue wait, two hops and a drain.
	w.SpanDone(&trace.SpanRecord{
		ID: 7, Src: 1, Dst: 4, Len: 16, Gen: 100, Admit: 110, Inject: 112, Deliver: 160,
		Denies: 3, DeniesRuleA: 2, DeniesRuleB: 1,
		Hops: []trace.SpanHop{
			{Node: 1, Arrive: 110, Alloc: 112},
			{Node: 2, Arrive: 113, Alloc: 120},
		},
	})
	// A dropped span: no Deliver, one hop never granted.
	w.SpanDone(&trace.SpanRecord{
		ID: 9, Src: 2, Dst: 5, Len: 16, Gen: 200, Admit: 210, Inject: -1, Deliver: -1,
		Hops: []trace.SpanHop{{Node: 2, Arrive: 210, Alloc: -1}},
	})
	if w.Spans() != 2 {
		t.Fatalf("Spans() = %d, want 2", w.Spans())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  *int           `json:"pid"`
			Tid  *int64         `json:"tid"`
			Name string         `json:"name"`
			Ts   *int64         `json:"ts"`
			Dur  *int64         `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name]++
		if ev.Ph != "X" && ev.Ph != "M" {
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.Pid == nil || ev.Tid == nil {
			t.Errorf("event %q missing pid/tid", ev.Name)
		}
		if ev.Ph == "X" {
			if ev.Ts == nil || ev.Dur == nil || *ev.Dur < 0 {
				t.Errorf("X event %q missing ts/dur or negative dur: %+v", ev.Name, ev)
			}
		}
	}
	if byName["thread_name"] != 2 || byName["life"] != 2 || byName["queue-wait"] != 2 {
		t.Errorf("unexpected event census: %v", byName)
	}
	// Two granted hops on the first span, the ungranted one omitted.
	if byName["hop n1"] != 1 || byName["hop n2"] != 1 {
		t.Errorf("hop slices missing: %v", byName)
	}
	if byName["drain"] != 1 {
		t.Errorf("want exactly one drain slice: %v", byName)
	}
}

func TestTraceJSONWriterStickyError(t *testing.T) {
	w := NewTraceJSONWriter(&errWriter{n: 8})
	for i := int64(0); i < 100000; i++ {
		w.SpanDone(&trace.SpanRecord{ID: i, Gen: 0, Deliver: 1})
	}
	if err := w.Close(); err == nil {
		t.Fatal("want sticky write error at Close")
	}
	if w.Err() == nil {
		t.Fatal("Err() should report the sticky error")
	}
}

func TestManifest(t *testing.T) {
	m := NewManifest("sweep", 99, map[string]any{"rate": 0.3})
	if m.Record != "manifest" || m.Tool != "sweep" || m.Seed != 99 || m.Go == "" {
		t.Errorf("bad manifest: %+v", m)
	}
	// GitDescribe inside this repo should find a revision; tolerate "" so
	// the test also passes from an exported tarball.
	_ = GitDescribe()
}
