// Package deadlock implements the deadlock-handling policy of the paper's
// network model: an FC3D-style distributed detection criterion and the
// parameters of the software-based recovery mechanism.
//
// Detection (approximating López, Martínez & Duato, HPCA'98 workshop): a
// message is *presumed* deadlocked when its header flit has been blocked
// for at least Threshold consecutive cycles while none of the output
// virtual channels its routing function admits is free. The criterion is
// conservative in both directions — like the original, it can flag
// messages that are merely very congested (the paper reports the detected
// fraction as a performance metric precisely because of this) — but it
// never flags a header that still has an unallocated useful channel.
//
// Recovery (approximating Martínez, López, Duato & Pinkston, ICPP'97):
// the presumed-deadlocked message is ejected from the network at the node
// holding its header, every virtual channel it occupies is released, and
// after ProcessingDelay cycles (the software ejection/re-injection cost)
// the whole message is re-injected from that node with priority over
// locally generated traffic. The actual teardown is performed by the
// simulation engine; this package owns the decision logic and its knobs.
package deadlock

import "fmt"

// DefaultThreshold is the paper's FC3D detection threshold (32 cycles).
const DefaultThreshold = 32

// DefaultProcessingDelay models the software cost of ejecting and
// re-injecting a recovered message at a node's local processor.
const DefaultProcessingDelay = 128

// Detector evaluates the detection criterion for blocked headers.
type Detector struct {
	// Threshold is the minimum number of consecutive blocked cycles before
	// a header may be presumed deadlocked.
	Threshold int32
}

// NewDetector returns a detector with the given threshold; threshold < 1
// disables detection entirely.
func NewDetector(threshold int32) Detector {
	return Detector{Threshold: threshold}
}

// Enabled reports whether detection is active.
func (d Detector) Enabled() bool { return d.Threshold >= 1 }

// Deadlocked reports whether a header blocked for blockedCycles consecutive
// cycles, with anyUsefulVCFree telling whether any of its admissible output
// virtual channels is currently unallocated, must be presumed deadlocked.
func (d Detector) Deadlocked(blockedCycles int32, anyUsefulVCFree bool) bool {
	return d.Enabled() && !anyUsefulVCFree && blockedCycles >= d.Threshold
}

// BlockTracker maintains per-virtual-channel consecutive-blockage counters.
// The simulation engine indexes it by a dense input-virtual-channel index.
type BlockTracker struct {
	counters []int32

	// watermark, when positive, maintains hot: the number of counters at or
	// above the watermark. The parallel engine sets it to Threshold-1 and
	// polls Hot to decide whether a recovery could fire in the upcoming
	// allocation phase — a counter can only reach Threshold this cycle if it
	// already stood at Threshold-1, since Blocked advances by one per cycle.
	watermark int32
	hot       int32
}

// NewBlockTracker returns a tracker for n input virtual channels.
func NewBlockTracker(n int) *BlockTracker {
	return &BlockTracker{counters: make([]int32, n)}
}

// SetWatermark arms hot-counter tracking at the given level (<= 0 disables).
// Call before any counter is non-zero.
func (t *BlockTracker) SetWatermark(w int32) { t.watermark = w }

// Hot returns the number of counters at or above the watermark (0 when
// tracking is disabled).
func (t *BlockTracker) Hot() int32 { return t.hot }

// Blocked records one more blocked cycle for channel i and returns the new
// consecutive count.
func (t *BlockTracker) Blocked(i int) int32 {
	t.counters[i]++
	c := t.counters[i]
	if c == t.watermark {
		t.hot++
	}
	return c
}

// Progress resets channel i's counter; call it whenever the header makes
// any forward progress (allocation or flit movement).
func (t *BlockTracker) Progress(i int) {
	if t.watermark > 0 && t.counters[i] >= t.watermark {
		t.hot--
	}
	t.counters[i] = 0
}

// Count returns channel i's current consecutive-blockage count.
func (t *BlockTracker) Count(i int) int32 { return t.counters[i] }

// Counters returns a copy of all per-channel counters (snapshot support).
func (t *BlockTracker) Counters() []int32 {
	return append([]int32(nil), t.counters...)
}

// RestoreCounters overwrites the per-channel counters and recomputes hot
// against the tracker's current watermark, so a restored tracker behaves
// identically whether or not watermark tracking is armed (the watermark
// depends on the engine's worker count, which may differ across a
// checkpoint/restore boundary).
func (t *BlockTracker) RestoreCounters(c []int32) error {
	if len(c) != len(t.counters) {
		return fmt.Errorf("deadlock: restoring %d counters into tracker of %d channels",
			len(c), len(t.counters))
	}
	copy(t.counters, c)
	t.hot = 0
	if t.watermark > 0 {
		for _, v := range t.counters {
			if v >= t.watermark {
				t.hot++
			}
		}
	}
	return nil
}
