package deadlock

import (
	"reflect"
	"testing"
)

// buildOp is one construction step of a hand-built wait graph.
type buildOp struct {
	id       int64
	live     bool
	blockers [][]int64 // nil: no options; each entry is one option's blockers
}

// TestWaitGraphTable exercises the oracle on hand-built configurations,
// independently of the explorer that normally feeds it.
func TestWaitGraphTable(t *testing.T) {
	cases := []struct {
		name string
		ops  []buildOp
		want []int64 // expected deadlocked set (nil = none)
	}{
		{
			name: "empty graph",
			ops:  nil,
			want: nil,
		},
		{
			name: "single live message",
			ops:  []buildOp{{id: 1, live: true}},
			want: nil,
		},
		{
			name: "blocked on a live message drains",
			ops: []buildOp{
				{id: 1, live: true},
				{id: 2, blockers: [][]int64{{1}}},
			},
			want: nil,
		},
		{
			name: "two-cycle deadlock",
			ops: []buildOp{
				{id: 1, blockers: [][]int64{{2}}},
				{id: 2, blockers: [][]int64{{1}}},
			},
			want: []int64{1, 2},
		},
		{
			name: "three-cycle deadlock",
			ops: []buildOp{
				{id: 1, blockers: [][]int64{{2}}},
				{id: 2, blockers: [][]int64{{3}}},
				{id: 3, blockers: [][]int64{{1}}},
			},
			want: []int64{1, 2, 3},
		},
		{
			// The recoverable near-cycle: 1→2→3→1 is a cycle shape, but 2
			// has a second, immediately free option (an unallocated useful
			// channel), so the whole ring eventually drains — exactly the
			// configuration ALO's "at least one free useful channel"
			// property keeps reachable.
			name: "near-cycle with one escape is recoverable",
			ops: []buildOp{
				{id: 1, blockers: [][]int64{{2}}},
				{id: 2, blockers: [][]int64{{3}, {}}},
				{id: 3, blockers: [][]int64{{1}}},
			},
			want: nil,
		},
		{
			name: "chain without cycle drains",
			ops: []buildOp{
				{id: 1, blockers: [][]int64{{2}}},
				{id: 2, blockers: [][]int64{{3}}},
				{id: 3, live: true},
			},
			want: nil,
		},
		{
			// A victim outside the core: 4 waits only on the deadlocked
			// cycle, so it is deadlocked too even though it is on no cycle.
			name: "victim blocked on a deadlocked core",
			ops: []buildOp{
				{id: 1, blockers: [][]int64{{2}}},
				{id: 2, blockers: [][]int64{{1}}},
				{id: 4, blockers: [][]int64{{1}, {2}}},
			},
			want: []int64{1, 2, 4},
		},
		{
			// An option blocked by an unknown message (not a waiting
			// network message, e.g. a draining one never registered): the
			// blocker counts as live, so the waiter escapes.
			name: "unknown blocker treated as live",
			ops: []buildOp{
				{id: 1, blockers: [][]int64{{99}}},
			},
			want: nil,
		},
		{
			// Options with several blockers (a free VC whose downstream
			// buffer drains only after two stacked messages pass): the
			// option clears only when all of them are live.
			name: "multi-blocker option needs all blockers live",
			ops: []buildOp{
				{id: 1, blockers: [][]int64{{2, 3}}},
				{id: 2, live: true},
				{id: 3, blockers: [][]int64{{1}}},
			},
			want: []int64{1, 3},
		},
		{
			name: "blocked with no options at all is deadlocked",
			ops: []buildOp{
				{id: 7, blockers: [][]int64{}},
			},
			want: []int64{7},
		},
		{
			// Two disjoint components: a live pair and a dead cycle; only
			// the cycle is reported.
			name: "mixed components",
			ops: []buildOp{
				{id: 1, live: true},
				{id: 2, blockers: [][]int64{{1}}},
				{id: 5, blockers: [][]int64{{6}}},
				{id: 6, blockers: [][]int64{{5}}},
			},
			want: []int64{5, 6},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewWaitGraph()
			for _, op := range tc.ops {
				if op.live {
					g.AddLive(op.id)
					continue
				}
				g.AddBlocked(op.id)
				for _, opt := range op.blockers {
					g.AddOption(op.id, opt...)
				}
			}
			got := g.Deadlocked()
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Deadlocked() = %v, want %v", got, tc.want)
			}
			if g.HasDeadlock() != (len(tc.want) > 0) {
				t.Fatalf("HasDeadlock() = %v inconsistent with %v", g.HasDeadlock(), tc.want)
			}
		})
	}
}

// TestWaitGraphWaitsOn checks the diagnostic edge listing.
func TestWaitGraphWaitsOn(t *testing.T) {
	g := NewWaitGraph()
	g.AddBlocked(1)
	g.AddOption(1, 3)
	g.AddOption(1, 2)
	g.AddOption(1, 3, 2)
	if got := g.WaitsOn(1); !reflect.DeepEqual(got, []int64{2, 3}) {
		t.Fatalf("WaitsOn(1) = %v, want [2 3]", got)
	}
	if got := g.WaitsOn(42); got != nil {
		t.Fatalf("WaitsOn(unknown) = %v, want nil", got)
	}
}

// TestWaitGraphOrderIndependence: the fixpoint must not depend on
// insertion order (the engine feeds messages in ID order, but the oracle
// should not rely on that).
func TestWaitGraphOrderIndependence(t *testing.T) {
	build := func(order []int64) []int64 {
		g := NewWaitGraph()
		for _, id := range order {
			switch id {
			case 1:
				g.AddBlocked(1)
				g.AddOption(1, 2)
			case 2:
				g.AddBlocked(2)
				g.AddOption(2, 3)
			case 3:
				g.AddLive(3)
			}
		}
		return g.Deadlocked()
	}
	want := build([]int64{1, 2, 3})
	for _, order := range [][]int64{{3, 2, 1}, {2, 3, 1}, {1, 3, 2}} {
		if got := build(order); !reflect.DeepEqual(got, want) {
			t.Fatalf("order %v: got %v, want %v", order, got, want)
		}
	}
}
