package deadlock

import "testing"

func TestDetectorCriterion(t *testing.T) {
	d := NewDetector(32)
	if !d.Enabled() {
		t.Fatal("enabled")
	}
	cases := []struct {
		blocked int32
		free    bool
		want    bool
	}{
		{0, false, false},
		{31, false, false},
		{32, false, true},
		{100, false, true},
		{32, true, false}, // a free useful VC always vetoes detection
		{1000, true, false},
	}
	for _, c := range cases {
		if got := d.Deadlocked(c.blocked, c.free); got != c.want {
			t.Errorf("Deadlocked(%d,%v)=%v want %v", c.blocked, c.free, got, c.want)
		}
	}
}

func TestDetectorDisabled(t *testing.T) {
	d := NewDetector(0)
	if d.Enabled() {
		t.Fatal("threshold 0 must disable detection")
	}
	if d.Deadlocked(1<<30, false) {
		t.Error("disabled detector flagged a deadlock")
	}
}

func TestBlockTracker(t *testing.T) {
	bt := NewBlockTracker(3)
	if bt.Count(1) != 0 {
		t.Fatal("fresh counter not zero")
	}
	for i := int32(1); i <= 5; i++ {
		if got := bt.Blocked(1); got != i {
			t.Fatalf("Blocked returned %d want %d", got, i)
		}
	}
	if bt.Count(0) != 0 || bt.Count(2) != 0 {
		t.Error("independent counters affected")
	}
	bt.Progress(1)
	if bt.Count(1) != 0 {
		t.Error("Progress did not reset")
	}
	if bt.Blocked(1) != 1 {
		t.Error("counter does not restart after Progress")
	}
}

func TestDefaults(t *testing.T) {
	if DefaultThreshold != 32 {
		t.Error("the paper specifies a 32-cycle threshold")
	}
	if DefaultProcessingDelay <= 0 {
		t.Error("recovery must have a positive software cost")
	}
}
