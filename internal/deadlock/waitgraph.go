package deadlock

import "sort"

// WaitGraph is the ground-truth deadlock oracle: an explicit channel-wait
// graph over the in-flight messages of a network state, with the OR
// semantics of adaptive wormhole routing. Each waiting message has one or
// more *options* (the output virtual channels its routing function admits);
// an option is either immediately available or blocked by the message that
// currently holds the resource (the virtual channel's owner, or the message
// draining the downstream buffer the channel feeds).
//
// A message can eventually advance — is *live* — iff it can advance
// immediately, or some option of it is blocked only by messages that are
// themselves live (the blocker eventually drains and releases the
// resource). The deadlocked set is the complement: the unique maximal set
// of messages every one of whose options depends on another member. This
// is the standard reduction ("drain the live messages, what remains is the
// deadlock") that Verbeek & Schmaltz formalise; Deadlocked computes it as
// a liveness fixpoint, which on a cycle-free wait graph always drains
// everything.
//
// The oracle is structural: it inspects one state, not the engine's future.
// The model checker cross-validates it against the engine's actual
// deterministic continuation (see internal/modelcheck), so a bug here is
// caught as an "oracle unsound" counterexample rather than trusted.
type WaitGraph struct {
	msgs  map[int64]*wgMsg
	order []int64 // insertion order, for deterministic iteration
}

// wgMsg is one in-flight message in the graph.
type wgMsg struct {
	live    bool
	blocked bool      // registered via AddBlocked
	opts    [][]int64 // each option: message IDs blocking it (empty = free)
}

// NewWaitGraph returns an empty wait graph.
func NewWaitGraph() *WaitGraph {
	return &WaitGraph{msgs: make(map[int64]*wgMsg)}
}

func (g *WaitGraph) get(id int64) *wgMsg {
	m, ok := g.msgs[id]
	if !ok {
		m = &wgMsg{}
		g.msgs[id] = m
		g.order = append(g.order, id)
	}
	return m
}

// AddLive registers message id as able to make progress on its own: its
// header holds a route (or is draining into an ejection channel), so no
// wait edge leaves it.
func (g *WaitGraph) AddLive(id int64) { g.get(id).live = true }

// AddBlocked registers message id as waiting for an output resource. Its
// options are added with AddOption; a blocked message with no options can
// never advance (faults removed every admissible channel).
func (g *WaitGraph) AddBlocked(id int64) { g.get(id).blocked = true }

// AddOption records one admissible output resource of blocked message id.
// blockers lists the messages currently standing in the way (the virtual
// channel's owner, or the message whose flits still occupy the downstream
// buffer); an option with no blockers is immediately available and makes
// the message live. A blocker never registered in the graph is treated as
// live — it is not a waiting network message, so it cannot sustain a cycle.
func (g *WaitGraph) AddOption(id int64, blockers ...int64) {
	m := g.get(id)
	if len(blockers) == 0 {
		m.live = true
		return
	}
	m.opts = append(m.opts, append([]int64(nil), blockers...))
}

// Len returns the number of messages in the graph.
func (g *WaitGraph) Len() int { return len(g.order) }

// Deadlocked computes the liveness fixpoint and returns the IDs of the
// messages that can never advance, in ascending order. An empty result
// means the state is deadlock-free.
func (g *WaitGraph) Deadlocked() []int64 {
	isLive := func(id int64) bool {
		m, ok := g.msgs[id]
		return !ok || m.live
	}
	// Propagate liveness to a fixpoint: a blocked message becomes live as
	// soon as one of its options is blocked only by live messages. The
	// graph is tiny (bounded messages), so the quadratic sweep is fine.
	for changed := true; changed; {
		changed = false
		for _, id := range g.order {
			m := g.msgs[id]
			if m.live {
				continue
			}
			for _, opt := range m.opts {
				ok := true
				for _, b := range opt {
					if !isLive(b) {
						ok = false
						break
					}
				}
				if ok {
					m.live = true
					changed = true
					break
				}
			}
		}
	}
	var dead []int64
	for _, id := range g.order {
		if m := g.msgs[id]; m.blocked && !m.live {
			dead = append(dead, id)
		}
	}
	sort.Slice(dead, func(a, b int) bool { return dead[a] < dead[b] })
	return dead
}

// HasDeadlock reports whether the fixpoint leaves any message deadlocked.
func (g *WaitGraph) HasDeadlock() bool { return len(g.Deadlocked()) > 0 }

// WaitsOn returns, for a blocked message, the union of messages blocking
// any of its options (diagnostics for counterexample reports), ascending.
func (g *WaitGraph) WaitsOn(id int64) []int64 {
	m, ok := g.msgs[id]
	if !ok {
		return nil
	}
	seen := make(map[int64]struct{})
	var out []int64
	for _, opt := range m.opts {
		for _, b := range opt {
			if _, dup := seen[b]; !dup {
				seen[b] = struct{}{}
				out = append(out, b)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
