package deadlock

import "testing"

// TestBlockTrackerRestore pins the checkpoint path: restored counters must
// behave identically to counters that were accumulated live, and hot must be
// recomputed against the *receiver's* watermark — which may differ from the
// watermark of the tracker that produced the counters, since it depends on
// the engine's worker count.
func TestBlockTrackerRestore(t *testing.T) {
	src := NewBlockTracker(6)
	for i := 0; i < 4; i++ {
		src.Blocked(1)
		src.Blocked(3)
	}
	src.Blocked(3) // counters: [0 4 0 5 0 0]
	saved := src.Counters()

	// Restore into an armed tracker: hot counts entries >= its watermark.
	armed := NewBlockTracker(6)
	armed.SetWatermark(4)
	if err := armed.RestoreCounters(saved); err != nil {
		t.Fatal(err)
	}
	if got := armed.Hot(); got != 2 {
		t.Errorf("hot after restore = %d, want 2", got)
	}
	if got := armed.Count(3); got != 5 {
		t.Errorf("counter 3 = %d, want 5", got)
	}
	// Hot bookkeeping stays consistent through further live updates.
	armed.Progress(3)
	if got := armed.Hot(); got != 1 {
		t.Errorf("hot after progress = %d, want 1", got)
	}
	armed.Blocked(1)
	if got := armed.Hot(); got != 1 {
		t.Errorf("hot after re-block of already-hot channel = %d, want 1", got)
	}

	// Restore into a disarmed tracker: hot stays zero.
	idle := NewBlockTracker(6)
	if err := idle.RestoreCounters(saved); err != nil {
		t.Fatal(err)
	}
	if got := idle.Hot(); got != 0 {
		t.Errorf("hot on disarmed tracker = %d, want 0", got)
	}

	// Length mismatch is an error, not a truncation.
	if err := NewBlockTracker(4).RestoreCounters(saved); err == nil {
		t.Error("restoring 6 counters into a 4-channel tracker succeeded")
	}
	// A second restore replaces the first outright.
	if err := armed.RestoreCounters(make([]int32, 6)); err != nil {
		t.Fatal(err)
	}
	if got := armed.Hot(); got != 0 {
		t.Errorf("hot after zero restore = %d, want 0", got)
	}
}
