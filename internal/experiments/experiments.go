// Package experiments defines one reproducible experiment per figure of the
// paper's evaluation section and a runner that executes them. Each
// experiment maps onto the sim.Config space; the runner executes the runs
// of an experiment (in parallel when more than one CPU is available) and
// renders the same rows/series the paper plots.
//
// Index (see DESIGN.md for the full mapping):
//
//	fig1  — performance degradation without throttling (latency, accepted
//	        traffic and detected deadlocks vs offered traffic)
//	fig2  — percentage of routing occurrences satisfying ALO's rules
//	fig4  — per-node injection fairness at 0.65 flits/node/cycle, 64-flit
//	fig5  — latency and its standard deviation vs traffic, uniform 16-flit
//	fig6  — latency vs traffic, uniform 64-flit
//	fig7  — latency vs traffic, butterfly 16-flit
//	fig8  — latency vs traffic, complement 16-flit
//	fig9  — latency vs traffic, bit-reversal 16-flit
//	fig10 — latency vs traffic, perfect-shuffle 16-flit
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"wormnet/internal/baseline"
	"wormnet/internal/core"
	"wormnet/internal/fault"
	"wormnet/internal/sim"
	"wormnet/internal/stats"
	"wormnet/internal/topology"
)

// Scale selects the execution scale of an experiment: the paper's full
// 8-ary 3-cube or a reduced configuration whose curves have the same shape.
type Scale struct {
	Name    string
	K, N    int
	Warmup  int64
	Measure int64
	Drain   int64
	// Rates is the offered-load grid for uniform traffic; permutation
	// patterns use PermRates (they saturate earlier).
	Rates     []float64
	PermRates []float64
	// FairRate is the beyond-saturation operating point of the fairness
	// experiment (the paper uses 0.65 flits/node/cycle).
	FairRate float64
	// FaultRate is the below-saturation operating point of the faults
	// experiment, where degradation comes from failures, not congestion.
	FaultRate float64
	Seed      uint64
}

// Full is the paper's configuration: an 8-ary 3-cube (512 nodes).
func Full() Scale {
	return Scale{
		Name: "full", K: 8, N: 3,
		Warmup: 4000, Measure: 12000, Drain: 1000,
		Rates:     []float64{0.1, 0.3, 0.5, 0.6, 0.65, 0.7, 0.8, 0.9},
		PermRates: []float64{0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0},
		FairRate:  0.65,
		FaultRate: 0.3,
		Seed:      1,
	}
}

// Quick is a reduced 4-ary 2-cube (16 nodes) configuration used by tests
// and benchmarks.
func Quick() Scale {
	// A 4-ary torus has roughly 8/k = 2 flits/node/cycle of uniform
	// capacity, so the quick grids reach further than the full-scale ones.
	return Scale{
		Name: "quick", K: 4, N: 2,
		Warmup: 1000, Measure: 4000, Drain: 500,
		Rates:     []float64{0.2, 0.6, 1.0, 1.4, 1.7, 2.0},
		PermRates: []float64{0.1, 0.3, 0.6, 0.9, 1.2},
		FairRate:  1.8,
		FaultRate: 0.8,
		Seed:      1,
	}
}

// baseConfig builds the shared simulator configuration of a scale.
func (s Scale) baseConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.K, cfg.N = s.K, s.N
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = s.Warmup, s.Measure, s.Drain
	cfg.Seed = s.Seed
	return cfg
}

// Point is one measured operating point of a series.
type Point struct {
	Offered float64
	Result  stats.Result
	// Probe carries the ALO-condition percentages for fig2 points.
	Probe *core.ProbeStats
	// Deviations carries per-node injection deviations for fig4 points.
	Deviations []float64
	// Classes carries the per-traffic-class split (good vs rogue) for
	// adversarial points; nil elsewhere.
	Classes []stats.ClassResult
}

// ClassAccepted returns the accepted traffic of the named class at this
// point, or the overall accepted figure when no class split exists.
func (p Point) ClassAccepted(name string) float64 {
	for _, c := range p.Classes {
		if c.Class == name {
			return c.Accepted
		}
	}
	return p.Result.Accepted
}

// Series is a named curve: one injection mechanism swept over offered load.
type Series struct {
	Name   string
	Points []Point
}

// Report is the outcome of one experiment: the regenerated figure.
type Report struct {
	ID     string
	Title  string
	Series []Series
}

// Experiment is a runnable reproduction of one paper figure.
type Experiment struct {
	ID    string
	Title string
	// run executes the experiment at the given scale.
	run func(s Scale, exec Executor) Report
}

// Executor runs simulation configs; it exists so the runner can schedule
// runs across goroutines. Execute must return the engine after Run.
type Executor func(cfg sim.Config) *sim.Engine

// SerialExecutor runs each config inline.
func SerialExecutor(cfg sim.Config) *sim.Engine {
	e, err := sim.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: bad config: %v", err))
	}
	e.Run()
	return e
}

// mechanisms returns the paper's §4.2 comparison set in presentation order.
func mechanisms() []struct {
	name string
	f    core.Factory
} {
	return []struct {
		name string
		f    core.Factory
	}{
		{"none", baseline.NewNone()},
		{"lf", baseline.NewLF()},
		{"dril", baseline.NewDRIL()},
		{"alo", core.NewALO()},
	}
}

// runAll executes every config through exec, at most runtime.GOMAXPROCS(0)
// at a time, preserving order.
func runAll(cfgs []sim.Config, exec Executor) []*sim.Engine {
	engines := make([]*sim.Engine, len(cfgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg sim.Config) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			engines[i] = exec(cfg)
		}(i, cfg)
	}
	wg.Wait()
	return engines
}

// fairnessReplicas is how many seed-shifted replicas the fairness figure
// pools; per-node injection counts need more messages per node than one
// latency-figure window provides.
const fairnessReplicas = 3

// replicate runs cfg under replicas consecutive seeds through exec and
// returns the pooled collector: stats.Collector.Merge pools latency samples
// and per-node counters and averages the per-cycle rates over the runs.
func replicate(cfg sim.Config, replicas int, exec Executor) *stats.Collector {
	cfgs := make([]sim.Config, replicas)
	for i := range cfgs {
		cfgs[i] = cfg
		cfgs[i].Seed = cfg.Seed + uint64(i)
	}
	engines := runAll(cfgs, exec)
	col := engines[0].Collector()
	for _, e := range engines[1:] {
		col.Merge(e.Collector())
	}
	return col
}

// sweep runs one mechanism over a rate grid and returns its series.
func sweep(base sim.Config, name string, f core.Factory, rates []float64, exec Executor) Series {
	cfgs := make([]sim.Config, len(rates))
	for i, r := range rates {
		cfgs[i] = base.WithLimiter(name, f).WithRate(r)
	}
	engines := runAll(cfgs, exec)
	ser := Series{Name: name}
	for i, e := range engines {
		ser.Points = append(ser.Points, Point{Offered: rates[i], Result: e.Collector().Result()})
	}
	return ser
}

// All returns every experiment in paper order. The "deadlocks" experiment
// (the §4.2 text numbers) is not part of All because it needs the lenient
// timeout-style detector and deep-saturation runs; request it explicitly.
func All() []Experiment {
	return []Experiment{
		Fig1(), Fig2(), Fig4(), Fig5(), Fig6(), Fig7(), Fig8(), Fig9(), Fig10(),
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, ex := range append(All(), DeadlockRates(), Faults(), Adversarial()) {
		if ex.ID == id {
			return ex, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// DeadlockRates reproduces the detected-deadlock percentages quoted in the
// paper's §4.2 text: without injection limitation and with a timeout-style
// (lenient) detector, the permutation patterns reach very high detection
// rates at saturation — the paper quotes >70% for complement, >35% for
// perfect-shuffle and >20% for bit-reversal — while any limiter collapses
// them. One beyond-saturation point per pattern, none vs alo.
func DeadlockRates() Experiment {
	return Experiment{
		ID:    "deadlocks",
		Title: "Peak detected-deadlock rates at saturation (lenient detection)",
		run: func(s Scale, exec Executor) Report {
			rep := Report{ID: "deadlocks", Title: "Detected deadlocks at saturation"}
			rate := s.PermRates[len(s.PermRates)-1]
			for _, pattern := range []string{"complement", "perfect-shuffle", "bit-reversal"} {
				for _, m := range mechanisms() {
					if m.name != "none" && m.name != "alo" {
						continue
					}
					cfg := s.baseConfig()
					cfg.Pattern, cfg.MsgLen = pattern, 16
					cfg.LenientDetection = true
					cfg = cfg.WithLimiter(m.name, m.f).WithRate(rate)
					e := exec(cfg)
					rep.Series = append(rep.Series, Series{
						Name:   pattern + "/" + m.name,
						Points: []Point{{Offered: rate, Result: e.Collector().Result()}},
					})
				}
			}
			return rep
		},
	}
}

// FaultFractions is the failed-link grid of the faults experiment: from the
// healthy network up to 10% of channels dead.
func FaultFractions() []float64 {
	return []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10}
}

// Faults measures graceful degradation under permanent link failures:
// accepted traffic and latency versus the fraction of failed channels
// (0–10%), per injection mechanism, at a below-saturation uniform load.
// Failed links shrink the useful-channel set the limiters measure, so ALO
// throttles into the reduced capacity instead of collapsing; killed
// wormholes retry from their sources. Points use Offered to carry the
// failed-link fraction, not the injection rate.
func Faults() Experiment {
	return Experiment{
		ID:    "faults",
		Title: "Graceful degradation under link failures (uniform, 16-flit)",
		run: func(s Scale, exec Executor) Report {
			base := s.baseConfig()
			base.Pattern, base.MsgLen = "uniform", 16
			topo := topology.New(s.K, s.N)
			fractions := FaultFractions()
			rep := Report{ID: "faults", Title: "Accepted traffic and latency vs failed links"}
			for _, m := range mechanisms() {
				cfgs := make([]sim.Config, len(fractions))
				for i, frac := range fractions {
					cfg := base.WithLimiter(m.name, m.f).WithRate(s.FaultRate)
					if frac > 0 {
						sched, err := fault.Plan(topo, fault.Profile{
							LinkFraction: frac, Seed: s.Seed,
						})
						if err != nil {
							panic(fmt.Sprintf("experiments: bad fault profile: %v", err))
						}
						cfg = cfg.WithFaults(sched)
					}
					cfgs[i] = cfg
				}
				engines := runAll(cfgs, exec)
				ser := Series{Name: m.name}
				for i, e := range engines {
					ser.Points = append(ser.Points, Point{
						Offered: fractions[i],
						Result:  e.Collector().Result(),
					})
				}
				rep.Series = append(rep.Series, ser)
			}
			return rep
		},
	}
}

// Run executes the experiment.
func (ex Experiment) Run(s Scale, exec Executor) Report {
	if exec == nil {
		exec = SerialExecutor
	}
	return ex.run(s, exec)
}

// Fig1 reproduces Figure 1: latency, accepted traffic and detected
// deadlocks versus offered traffic with no injection limitation — the
// performance-degradation motivation plot.
func Fig1() Experiment {
	return Experiment{
		ID:    "fig1",
		Title: "Performance degradation without injection limitation (uniform, 16-flit)",
		run: func(s Scale, exec Executor) Report {
			base := s.baseConfig()
			base.Pattern, base.MsgLen = "uniform", 16
			ser := sweep(base, "none", baseline.NewNone(), s.Rates, exec)
			return Report{ID: "fig1", Title: "Figure 1", Series: []Series{ser}}
		},
	}
}

// Fig2 reproduces Figure 2: the percentage of injection-time routing
// occurrences satisfying ALO rule (a), rule (b) and (a)∨(b), measured on an
// unthrottled network across traffic levels.
func Fig2() Experiment {
	return Experiment{
		ID:    "fig2",
		Title: "Routing occurrences satisfying the ALO conditions (uniform, 16-flit)",
		run: func(s Scale, exec Executor) Report {
			base := s.baseConfig()
			base.Pattern, base.MsgLen = "uniform", 16
			ser := Series{Name: "none+probe"}
			for _, r := range s.Rates {
				f, probe := core.WrapProbe(baseline.NewNone())
				cfg := base.WithLimiter("none", f).WithRate(r)
				e := exec(cfg)
				ser.Points = append(ser.Points, Point{
					Offered: r,
					Result:  e.Collector().Result(),
					Probe:   probe,
				})
			}
			return Report{ID: "fig2", Title: "Figure 2", Series: []Series{ser}}
		},
	}
}

// Fig4 reproduces Figure 4: the distribution of per-node sent-message
// deviations for LF, DRIL and ALO at the paper's beyond-saturation
// operating point (uniform, 64-flit messages).
func Fig4() Experiment {
	return Experiment{
		ID:    "fig4",
		Title: "Per-node injection fairness (uniform, 64-flit, beyond saturation)",
		run: func(s Scale, exec Executor) Report {
			base := s.baseConfig()
			base.Pattern, base.MsgLen = "uniform", 64
			rep := Report{ID: "fig4", Title: "Figure 4"}
			for _, m := range mechanisms() {
				if m.name == "none" {
					continue // the paper compares the three limiters
				}
				// Per-node fairness needs more messages per node than the
				// latency figures: pool seed-shifted replicas instead of
				// stretching one measurement window.
				cfg := base.WithLimiter(m.name, m.f).WithRate(s.FairRate)
				col := replicate(cfg, fairnessReplicas, exec)
				rep.Series = append(rep.Series, Series{
					Name: m.name,
					Points: []Point{{
						Offered:    s.FairRate,
						Result:     col.Result(),
						Deviations: col.Fairness().SortedDeviations(),
					}},
				})
			}
			return rep
		},
	}
}

// latencyFigure builds the common latency-vs-traffic experiment of Figures
// 5 through 10.
func latencyFigure(id, pattern string, msgLen int, perm bool) Experiment {
	title := fmt.Sprintf("Latency vs traffic (%s, %d-flit)", pattern, msgLen)
	return Experiment{
		ID:    id,
		Title: title,
		run: func(s Scale, exec Executor) Report {
			base := s.baseConfig()
			base.Pattern, base.MsgLen = pattern, msgLen
			rates := s.Rates
			if perm {
				rates = s.PermRates
			}
			rep := Report{ID: id, Title: title}
			for _, m := range mechanisms() {
				rep.Series = append(rep.Series, sweep(base, m.name, m.f, rates, exec))
			}
			return rep
		},
	}
}

// Fig5 reproduces Figure 5 (uniform, 16-flit; includes latency std-dev).
func Fig5() Experiment { return latencyFigure("fig5", "uniform", 16, false) }

// Fig6 reproduces Figure 6 (uniform, 64-flit).
func Fig6() Experiment { return latencyFigure("fig6", "uniform", 64, false) }

// Fig7 reproduces Figure 7 (butterfly, 16-flit).
func Fig7() Experiment { return latencyFigure("fig7", "butterfly", 16, true) }

// Fig8 reproduces Figure 8 (complement, 16-flit).
func Fig8() Experiment { return latencyFigure("fig8", "complement", 16, true) }

// Fig9 reproduces Figure 9 (bit-reversal, 16-flit).
func Fig9() Experiment { return latencyFigure("fig9", "bit-reversal", 16, true) }

// Fig10 reproduces Figure 10 (perfect-shuffle, 16-flit).
func Fig10() Experiment { return latencyFigure("fig10", "perfect-shuffle", 16, true) }

// PlateauThroughput returns a series' sustained accepted traffic: the
// maximum accepted value over its points (the plateau of the throughput
// curve; for degraded curves the pre-collapse peak).
func PlateauThroughput(ser Series) float64 {
	max := 0.0
	for _, p := range ser.Points {
		if p.Result.Accepted > max {
			max = p.Result.Accepted
		}
	}
	return max
}

// FinalAccepted returns the accepted traffic at the highest offered load —
// the post-saturation behaviour (collapses for "none", holds for limiters).
func FinalAccepted(ser Series) float64 {
	if len(ser.Points) == 0 {
		return 0
	}
	pts := make([]Point, len(ser.Points))
	copy(pts, ser.Points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Offered < pts[j].Offered })
	return pts[len(pts)-1].Result.Accepted
}

// PeakDeadlockPct returns the worst detected-deadlock percentage across a
// series' points.
func PeakDeadlockPct(ser Series) float64 {
	max := 0.0
	for _, p := range ser.Points {
		if p.Result.DeadlockPct > max {
			max = p.Result.DeadlockPct
		}
	}
	return max
}
