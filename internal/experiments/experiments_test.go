package experiments

import (
	"strings"
	"testing"

	"wormnet/internal/sim"
	"wormnet/internal/stats"
)

// tinyScale keeps experiment tests fast: an 8-node ring-pair with short
// windows and few points.
func tinyScale() Scale {
	return Scale{
		Name: "tiny", K: 4, N: 2,
		Warmup: 300, Measure: 1200, Drain: 300,
		Rates:     []float64{0.1, 0.8},
		PermRates: []float64{0.1, 0.6},
		FairRate:  0.8,
		FaultRate: 0.5,
		Seed:      7,
	}
}

func TestAllAndByID(t *testing.T) {
	all := All()
	want := []string{"fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}
	if len(all) != len(want) {
		t.Fatalf("got %d experiments want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d is %q want %q", i, all[i].ID, id)
		}
		if _, err := ByID(id); err != nil {
			t.Errorf("ByID(%q): %v", id, err)
		}
	}
	if _, err := ByID("fig3"); err == nil {
		t.Error("fig3 is a hardware schematic, not a runnable experiment")
	}
	if _, err := ByID("deadlocks"); err != nil {
		t.Errorf("deadlocks experiment missing: %v", err)
	}
	if _, err := ByID("faults"); err != nil {
		t.Errorf("faults experiment missing: %v", err)
	}
	if _, err := ByID("adversarial"); err != nil {
		t.Errorf("adversarial experiment missing: %v", err)
	}
}

func TestAdversarialExperiment(t *testing.T) {
	rep := Adversarial().Run(tinyScale(), nil)
	if len(rep.Series) != 4 {
		t.Fatalf("adversarial series: %d want 4 mechanisms", len(rep.Series))
	}
	fracs := AdversaryFractions()
	for _, s := range rep.Series {
		if len(s.Points) != len(fracs) {
			t.Fatalf("series %s points: %d want %d", s.Name, len(s.Points), len(fracs))
		}
		for i, p := range s.Points {
			if p.Offered != fracs[i] {
				t.Fatalf("series %s point %d carries %v want fraction %v",
					s.Name, i, p.Offered, fracs[i])
			}
			if fracs[i] == 0 {
				if p.Classes != nil {
					t.Errorf("series %s: clean baseline has class split", s.Name)
				}
				continue
			}
			if len(p.Classes) != 2 {
				t.Fatalf("series %s at %.0f%% rogues: %d classes, want good+rogue",
					s.Name, fracs[i]*100, len(p.Classes))
			}
			if p.Classes[0].Class != "good" || p.Classes[1].Class != "rogue" {
				t.Fatalf("series %s class names: %q, %q",
					s.Name, p.Classes[0].Class, p.Classes[1].Class)
			}
			if p.ClassAccepted("good") <= 0 {
				t.Errorf("series %s at %.0f%% rogues: good class starved to zero",
					s.Name, fracs[i]*100)
			}
		}
		if c := Containment(s); c <= 0 || c > 2 {
			t.Errorf("series %s containment %.3f out of range", s.Name, c)
		}
	}
	// The limiter must contain the attack better than the unthrottled run
	// does... at minimum it must not starve the good class.
	out := rep.Render()
	for _, want := range []string{"rogue%", "good-acc", "rogue-acc", "containment="} {
		if !strings.Contains(out, want) {
			t.Errorf("adversarial renderer misses %q", want)
		}
	}
	if !strings.Contains(rep.CSV(), ",goodaccepted,rogueaccepted") {
		t.Error("CSV header misses class columns")
	}
}

func TestFaultsExperiment(t *testing.T) {
	rep := Faults().Run(tinyScale(), nil)
	if len(rep.Series) != 4 {
		t.Fatalf("faults series: %d want 4 mechanisms", len(rep.Series))
	}
	fracs := FaultFractions()
	for _, s := range rep.Series {
		if len(s.Points) != len(fracs) {
			t.Fatalf("series %s points: %d want %d", s.Name, len(s.Points), len(fracs))
		}
		healthy := s.Points[0].Result
		worst := s.Points[len(s.Points)-1].Result
		if healthy.Aborted != 0 || healthy.Dropped != 0 {
			t.Errorf("series %s: healthy point has fault counters %+v", s.Name, healthy)
		}
		if worst.Aborted == 0 {
			t.Errorf("series %s: 10%% dead links aborted nothing", s.Name)
		}
		// Graceful degradation: the network keeps moving the bulk of its
		// traffic — reduced capacity, not collapse.
		if worst.Accepted < 0.5*healthy.Accepted {
			t.Errorf("series %s collapsed: accepted %.4f -> %.4f",
				s.Name, healthy.Accepted, worst.Accepted)
		}
		for i, p := range s.Points {
			if p.Offered != fracs[i] {
				t.Fatalf("series %s point %d carries %v want fraction %v",
					s.Name, i, p.Offered, fracs[i])
			}
		}
	}
	out := rep.Render()
	for _, want := range []string{"failed%", "aborted", "retried", "dropped"} {
		if !strings.Contains(out, want) {
			t.Errorf("faults renderer misses %q", want)
		}
	}
	if !strings.Contains(rep.CSV(), ",aborted,retried,dropped") {
		t.Error("CSV header misses fault columns")
	}
}

func TestDeadlockRatesExperiment(t *testing.T) {
	rep := DeadlockRates().Run(tinyScale(), nil)
	if len(rep.Series) != 6 { // 3 patterns x {none, alo}
		t.Fatalf("series: %d", len(rep.Series))
	}
	names := map[string]bool{}
	for _, s := range rep.Series {
		names[s.Name] = true
		if len(s.Points) != 1 {
			t.Fatalf("series %s has %d points", s.Name, len(s.Points))
		}
	}
	for _, want := range []string{"complement/none", "complement/alo", "perfect-shuffle/none", "bit-reversal/alo"} {
		if !names[want] {
			t.Errorf("missing series %q", want)
		}
	}
	if !strings.Contains(rep.Render(), "deadlocks") {
		t.Error("render")
	}
}

func TestFig1Shape(t *testing.T) {
	rep := Fig1().Run(tinyScale(), nil)
	if len(rep.Series) != 1 || rep.Series[0].Name != "none" {
		t.Fatalf("fig1 series: %+v", rep.Series)
	}
	pts := rep.Series[0].Points
	if len(pts) != 2 {
		t.Fatalf("points: %d", len(pts))
	}
	// Low load: accepted tracks offered; high load: latency must be larger.
	if pts[0].Result.Accepted < 0.05 {
		t.Errorf("low-load accepted %.4f", pts[0].Result.Accepted)
	}
	if pts[1].Result.AvgLatency <= pts[0].Result.AvgLatency {
		t.Errorf("latency must grow with load: %.1f vs %.1f",
			pts[1].Result.AvgLatency, pts[0].Result.AvgLatency)
	}
	out := rep.Render()
	for _, want := range []string{"fig1", "none", "plateau="} {
		if !strings.Contains(out, want) {
			t.Errorf("render misses %q:\n%s", want, out)
		}
	}
}

func TestFig2Probe(t *testing.T) {
	rep := Fig2().Run(tinyScale(), nil)
	pts := rep.Series[0].Points
	if len(pts) != 2 {
		t.Fatalf("points: %d", len(pts))
	}
	for _, p := range pts {
		if p.Probe == nil || p.Probe.Total() == 0 {
			t.Fatal("probe did not record decisions")
		}
		if p.Probe.PercentEither() < p.Probe.PercentA()-1e-9 {
			t.Error("a-or-b below a")
		}
	}
	// The conditions must hold less often under higher load.
	if pts[1].Probe.PercentEither() > pts[0].Probe.PercentEither() {
		t.Errorf("ALO conditions should degrade with load: %.1f%% -> %.1f%%",
			pts[0].Probe.PercentEither(), pts[1].Probe.PercentEither())
	}
	if !strings.Contains(rep.Render(), "%rule-a") {
		t.Error("fig2 renderer")
	}
}

func TestFig4Fairness(t *testing.T) {
	rep := Fig4().Run(tinyScale(), nil)
	names := map[string]bool{}
	for _, s := range rep.Series {
		names[s.Name] = true
		if len(s.Points) != 1 || len(s.Points[0].Deviations) == 0 {
			t.Fatalf("series %s has no deviations", s.Name)
		}
		devs := s.Points[0].Deviations
		for i := 1; i < len(devs); i++ {
			if devs[i] < devs[i-1] {
				t.Fatal("deviations not sorted")
			}
		}
	}
	for _, want := range []string{"lf", "dril", "alo"} {
		if !names[want] {
			t.Errorf("fig4 missing mechanism %s", want)
		}
	}
	if names["none"] {
		t.Error("fig4 must not include the unthrottled run")
	}
	if !strings.Contains(rep.Render(), "median%") {
		t.Error("fig4 renderer")
	}
}

func TestLatencyFigureAllMechanisms(t *testing.T) {
	rep := Fig5().Run(tinyScale(), nil)
	if len(rep.Series) != 4 {
		t.Fatalf("fig5 series: %d", len(rep.Series))
	}
	for _, s := range rep.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %s points: %d", s.Name, len(s.Points))
		}
	}
	csv := rep.CSV()
	if !strings.HasPrefix(csv, "figure,series,") {
		t.Error("CSV header")
	}
	if got := strings.Count(csv, "\n"); got != 1+4*2 {
		t.Errorf("CSV rows: %d", got)
	}
}

func TestPermutationFigureUsesPermRates(t *testing.T) {
	s := tinyScale()
	rep := Fig8().Run(s, nil)
	for _, ser := range rep.Series {
		for i, p := range ser.Points {
			if p.Offered != s.PermRates[i] {
				t.Fatalf("fig8 rate grid: got %v want %v", p.Offered, s.PermRates[i])
			}
		}
	}
}

func TestSeriesHelpers(t *testing.T) {
	ser := Series{Name: "x", Points: []Point{
		{Offered: 0.1, Result: resultWith(0.1, 0.5)},
		{Offered: 0.5, Result: resultWith(0.45, 2.0)},
		{Offered: 0.9, Result: resultWith(0.30, 9.0)},
	}}
	if got := PlateauThroughput(ser); got != 0.45 {
		t.Errorf("plateau %v", got)
	}
	if got := FinalAccepted(ser); got != 0.30 {
		t.Errorf("final %v", got)
	}
	if got := PeakDeadlockPct(ser); got != 9.0 {
		t.Errorf("peak deadlock %v", got)
	}
	if FinalAccepted(Series{}) != 0 {
		t.Error("empty series")
	}
}

func resultWith(accepted, deadlockPct float64) stats.Result {
	return stats.Result{Accepted: accepted, DeadlockPct: deadlockPct}
}

func TestScalesValidate(t *testing.T) {
	for _, s := range []Scale{Full(), Quick()} {
		cfg := s.baseConfig()
		if _, err := sim.New(cfg); err != nil {
			t.Errorf("scale %s yields invalid config: %v", s.Name, err)
		}
		if len(s.Rates) == 0 || len(s.PermRates) == 0 || s.FairRate <= 0 {
			t.Errorf("scale %s incomplete", s.Name)
		}
		// Bit-permutation patterns require power-of-two node counts.
		nodes := 1
		for i := 0; i < s.N; i++ {
			nodes *= s.K
		}
		if nodes&(nodes-1) != 0 {
			t.Errorf("scale %s: %d nodes is not a power of two", s.Name, nodes)
		}
	}
}
