package experiments

import (
	"fmt"

	"wormnet/internal/fault"
	"wormnet/internal/sim"
	"wormnet/internal/topology"
)

// AdversaryFractions is the rogue-node grid of the adversarial experiment:
// from the well-behaved network up to 20% of nodes ignoring the limiter.
func AdversaryFractions() []float64 {
	return []float64{0, 0.05, 0.10, 0.20}
}

// Adversarial measures injection-limiter containment under hostile
// conditions: a fraction of nodes turn rogue — they bypass the limiter
// entirely and mount duty-cycled hotspot storms — while 5% of the links
// flap (fail, heal, re-fail) throughout the measurement window. The offered
// load sits beyond saturation (the scale's FairRate), where an unprotected
// network collapses on its own and the rogues pile on.
//
// Each series is one injection mechanism swept over the rogue fraction
// (carried in Offered, like the faults experiment carries its failed-link
// fraction); the 0% point is the fault-free, adversary-free baseline the
// containment ratio compares against. Points carry the per-class split, so
// the figure plots what the *well-behaved* nodes still get — the paper's
// question, transplanted to a hostile network: does the limiter keep
// protecting the nodes that obey it?
func Adversarial() Experiment {
	return Experiment{
		ID:    "adversarial",
		Title: "Limiter containment under rogue injectors and link flaps (uniform, 16-flit)",
		run: func(s Scale, exec Executor) Report {
			base := s.baseConfig()
			base.Pattern, base.MsgLen = "uniform", 16
			topo := topology.New(s.K, s.N)
			fractions := AdversaryFractions()
			rep := Report{ID: "adversarial", Title: "Good-class traffic vs rogue fraction"}
			for _, m := range mechanisms() {
				cfgs := make([]sim.Config, len(fractions))
				for i, frac := range fractions {
					cfg := base.WithLimiter(m.name, m.f).WithRate(s.FairRate)
					if frac > 0 {
						cfg.Adversary = sim.AdversaryProfile{
							RogueFraction: frac,
							RogueRate:     2 * s.FairRate,
							StormPeriod:   s.Measure / 8,
							StormOn:       s.Measure / 20,
							Hotspot:       topology.NodeID(topo.Nodes() / 2),
							Seed:          s.Seed,
						}
						sched, err := fault.Plan(topo, fault.Profile{
							LinkFraction:      0.05,
							At:                s.Warmup,
							Stagger:           s.Measure / 4,
							TransientFraction: 1.0,
							RepairAfter:       s.Measure / 8,
							FlapCount:         2,
							FlapPeriod:        s.Measure / 4,
							Seed:              s.Seed,
						})
						if err != nil {
							panic(fmt.Sprintf("experiments: bad flap profile: %v", err))
						}
						cfg = cfg.WithFaults(sched)
					}
					cfgs[i] = cfg
				}
				engines := runAll(cfgs, exec)
				ser := Series{Name: m.name}
				for i, e := range engines {
					ser.Points = append(ser.Points, Point{
						Offered: fractions[i],
						Result:  e.Collector().Result(),
						Classes: e.Collector().ClassResults(),
					})
				}
				rep.Series = append(rep.Series, ser)
			}
			return rep
		},
	}
}

// Containment returns the worst-case good-class retention of an adversarial
// series: the minimum, over its attacked points, of good-class accepted
// traffic relative to the clean 0%-rogue baseline point. 1 means the
// well-behaved nodes never lost anything; 0 means they were starved out.
func Containment(ser Series) float64 {
	var baseline float64
	for _, p := range ser.Points {
		if p.Offered == 0 {
			baseline = p.Result.Accepted
		}
	}
	if baseline <= 0 {
		return 0
	}
	worst := 1.0
	for _, p := range ser.Points {
		if p.Offered == 0 {
			continue
		}
		if r := p.ClassAccepted("good") / baseline; r < worst {
			worst = r
		}
	}
	return worst
}
