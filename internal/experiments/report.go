package experiments

import (
	"fmt"
	"strings"
)

// Render formats a report as the text table(s) corresponding to the paper
// figure: one row per operating point with the measures the figure plots.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	switch r.ID {
	case "fig2":
		r.renderFig2(&b)
	case "fig4":
		r.renderFig4(&b)
	case "faults":
		r.renderFaults(&b)
	case "adversarial":
		r.renderAdversarial(&b)
	default:
		r.renderLatency(&b)
	}
	return b.String()
}

// renderLatency prints the latency/throughput/deadlock table common to
// Figures 1 and 5-10.
func (r Report) renderLatency(b *strings.Builder) {
	fmt.Fprintf(b, "%-10s %8s %10s %10s %10s %10s %9s\n",
		"mechanism", "offered", "accepted", "latency", "stddev", "net-lat", "deadlk%")
	for _, s := range r.Series {
		for _, p := range s.Points {
			res := p.Result
			fmt.Fprintf(b, "%-10s %8.3f %10.4f %10.1f %10.1f %10.1f %9.3f\n",
				s.Name, p.Offered, res.Accepted, res.AvgLatency, res.StdLatency,
				res.AvgNetLatency, res.DeadlockPct)
		}
		fmt.Fprintf(b, "%-10s plateau=%.4f final=%.4f peak-deadlock=%.3f%%\n\n",
			s.Name, PlateauThroughput(s), FinalAccepted(s), PeakDeadlockPct(s))
	}
}

// renderFig2 prints the ALO-condition percentages per traffic level.
func (r Report) renderFig2(b *strings.Builder) {
	fmt.Fprintf(b, "%8s %10s %10s %10s %12s\n",
		"offered", "accepted", "%rule-a", "%rule-b", "%a-or-b")
	for _, s := range r.Series {
		for _, p := range s.Points {
			fmt.Fprintf(b, "%8.3f %10.4f %10.2f %10.2f %12.2f\n",
				p.Offered, p.Result.Accepted,
				p.Probe.PercentA(), p.Probe.PercentB(), p.Probe.PercentEither())
		}
	}
}

// renderFig4 prints the fairness summary and deviation percentiles per
// mechanism.
func (r Report) renderFig4(b *strings.Builder) {
	fmt.Fprintf(b, "%-10s %10s %10s %10s %10s %10s %10s\n",
		"mechanism", "accepted", "worst%", "p10%", "median%", "p90%", "best%")
	for _, s := range r.Series {
		for _, p := range s.Points {
			d := p.Deviations
			if len(d) == 0 {
				continue
			}
			fmt.Fprintf(b, "%-10s %10.4f %10.1f %10.1f %10.1f %10.1f %10.1f\n",
				s.Name, p.Result.Accepted,
				d[0], percentile(d, 0.10), percentile(d, 0.50), percentile(d, 0.90), d[len(d)-1])
		}
	}
}

// renderFaults prints the degradation table of the faults experiment: one
// row per failed-link fraction (carried in Offered) per mechanism, with the
// fault-recovery counters next to the usual performance measures.
func (r Report) renderFaults(b *strings.Builder) {
	fmt.Fprintf(b, "%-10s %8s %10s %10s %9s %8s %8s %8s\n",
		"mechanism", "failed%", "accepted", "latency", "deadlk%", "aborted", "retried", "dropped")
	for _, s := range r.Series {
		for _, p := range s.Points {
			res := p.Result
			fmt.Fprintf(b, "%-10s %8.1f %10.4f %10.1f %9.3f %8d %8d %8d\n",
				s.Name, p.Offered*100, res.Accepted, res.AvgLatency,
				res.DeadlockPct, res.Aborted, res.Retried, res.Dropped)
		}
		b.WriteString("\n")
	}
}

// renderAdversarial prints the containment table of the adversarial
// experiment: one row per rogue fraction (carried in Offered) per mechanism,
// splitting accepted traffic into the well-behaved and rogue classes, with
// the series' worst-case good-class retention as the summary line.
func (r Report) renderAdversarial(b *strings.Builder) {
	fmt.Fprintf(b, "%-10s %7s %10s %10s %10s %10s %9s\n",
		"mechanism", "rogue%", "accepted", "good-acc", "rogue-acc", "latency", "deadlk%")
	for _, s := range r.Series {
		for _, p := range s.Points {
			res := p.Result
			goodAcc, rogueAcc := "-", "-"
			for _, c := range p.Classes {
				switch c.Class {
				case "good":
					goodAcc = fmt.Sprintf("%.4f", c.Accepted)
				case "rogue":
					rogueAcc = fmt.Sprintf("%.4f", c.Accepted)
				}
			}
			fmt.Fprintf(b, "%-10s %7.1f %10.4f %10s %10s %10.1f %9.3f\n",
				s.Name, p.Offered*100, res.Accepted, goodAcc, rogueAcc,
				res.AvgLatency, res.DeadlockPct)
		}
		fmt.Fprintf(b, "%-10s containment=%.3f (worst good-class retention vs clean baseline)\n\n",
			s.Name, Containment(s))
	}
}

// percentile reads the q-quantile of an ascending-sorted slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// CSV renders the report's points as comma-separated rows for external
// plotting: figure, series, offered, accepted, latency, stddev, deadlock%,
// fault counters, and the per-class accepted split (empty outside the
// adversarial experiment).
func (r Report) CSV() string {
	var b strings.Builder
	b.WriteString("figure,series,offered,accepted,latency,stddev,netlatency,deadlockpct,aborted,retried,dropped,goodaccepted,rogueaccepted\n")
	for _, s := range r.Series {
		for _, p := range s.Points {
			res := p.Result
			goodAcc, rogueAcc := "", ""
			for _, c := range p.Classes {
				switch c.Class {
				case "good":
					goodAcc = fmt.Sprintf("%.5f", c.Accepted)
				case "rogue":
					rogueAcc = fmt.Sprintf("%.5f", c.Accepted)
				}
			}
			fmt.Fprintf(&b, "%s,%s,%.4f,%.5f,%.2f,%.2f,%.2f,%.4f,%d,%d,%d,%s,%s\n",
				r.ID, s.Name, p.Offered, res.Accepted, res.AvgLatency,
				res.StdLatency, res.AvgNetLatency, res.DeadlockPct,
				res.Aborted, res.Retried, res.Dropped, goodAcc, rogueAcc)
		}
	}
	return b.String()
}
