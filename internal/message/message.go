// Package message defines the unit of communication of the wormhole
// simulator: multi-flit messages and the per-flit buffer entries the router
// model stores.
//
// A wormhole message is a header flit followed by data flits and a tail flit
// (a 1-flit message is both head and tail). The simulator does not carry
// payload bytes; a Flit records only which message it belongs to and its
// sequence number, which is all flit-level switching needs.
package message

import (
	"fmt"

	"wormnet/internal/topology"
)

// ID uniquely identifies a message within a simulation run.
type ID int64

// State describes where a message currently is in its lifecycle.
type State int8

// Message lifecycle states, in normal progression order. A recovered
// (deadlocked) message moves back from StateInNetwork to StateQueued on the
// recovery queue of the node that held its header.
const (
	StateQueued    State = iota // waiting in a source or recovery queue
	StateInjecting              // holds an injection channel, flits streaming in
	StateInNetwork              // fully injected, some flits still in transit
	StateDelivered              // tail flit ejected at the destination
	StateDropped                // permanently dropped by the fault machinery
)

// String returns a short name for the state.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateInjecting:
		return "injecting"
	case StateInNetwork:
		return "in-network"
	case StateDelivered:
		return "delivered"
	case StateDropped:
		return "dropped"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Message is a multi-flit wormhole message.
//
// All time fields are in simulation cycles. A Message is owned by a single
// simulation engine and is not safe for concurrent mutation.
type Message struct {
	ID     ID
	Src    topology.NodeID
	Dst    topology.NodeID
	Length int // flits, including head and tail

	GenTime     int64 // cycle the source generated the message
	InjectTime  int64 // cycle the head flit entered the network (-1 until then)
	DeliverTime int64 // cycle the tail flit was ejected (-1 until then)

	State State

	// Injector is the node currently responsible for injecting the message:
	// the original source, or — after a deadlock recovery — the node that
	// held the header when the deadlock was detected.
	Injector topology.NodeID

	// FlitsSent counts flits that have left the injection channel.
	FlitsSent int
	// FlitsEjected counts flits consumed by the destination.
	FlitsEjected int

	// Recoveries counts how many times the message was presumed deadlocked
	// and re-injected by the software recovery mechanism.
	Recoveries int

	// Retries counts how many times a fault killed the message and the
	// source re-enqueued it (capped exponential backoff between attempts).
	Retries int

	// DropReason is set when the fault machinery permanently drops the
	// message (State == StateDropped); empty otherwise.
	DropReason DropReason

	// Measured marks messages generated inside the measurement window;
	// only these contribute to latency statistics.
	Measured bool

	// Pooled marks messages owned by the engine's free list: they are
	// recycled (reset and reused for a new message) after delivery or a
	// permanent drop. Callers outside the engine must not retain pointers
	// to pooled messages past those events.
	Pooled bool

	// Path tracks the input virtual-channel buffers currently holding (or
	// allocated to receive) this message's flits, in path order, oldest
	// first. The engine maintains it for deadlock recovery and fault
	// teardown; the backing array is reused across pool recycles.
	Path []PathLoc
}

// PathLoc identifies one input virtual-channel buffer on a message's path:
// virtual channel vc of input port Port at node Node.
type PathLoc struct {
	Node topology.NodeID
	Port topology.Port
	VC   int8
}

// New returns a freshly generated message in StateQueued.
func New(id ID, src, dst topology.NodeID, length int, now int64) *Message {
	if length < 1 {
		panic(fmt.Sprintf("message: length %d < 1", length))
	}
	return &Message{
		ID:          id,
		Src:         src,
		Dst:         dst,
		Length:      length,
		GenTime:     now,
		InjectTime:  -1,
		DeliverTime: -1,
		Injector:    src,
		State:       StateQueued,
	}
}

// Reuse re-initialises a recycled message in place, as if freshly built by
// New, preserving the Path backing array (and the Pooled mark) so that
// steady-state simulation does not allocate.
func (m *Message) Reuse(id ID, src, dst topology.NodeID, length int, now int64) {
	if length < 1 {
		panic(fmt.Sprintf("message: length %d < 1", length))
	}
	*m = Message{
		ID:          id,
		Src:         src,
		Dst:         dst,
		Length:      length,
		GenTime:     now,
		InjectTime:  -1,
		DeliverTime: -1,
		Injector:    src,
		State:       StateQueued,
		Pooled:      m.Pooled,
		Path:        m.Path[:0],
	}
}

// Latency returns the delivery latency in cycles (including source-queue
// time). It panics if the message has not been delivered.
func (m *Message) Latency() int64 {
	if m.DeliverTime < 0 {
		panic(fmt.Sprintf("message %d not delivered", m.ID))
	}
	return m.DeliverTime - m.GenTime
}

// NetworkLatency returns cycles spent between first-flit injection and
// delivery, excluding source-queue time.
func (m *Message) NetworkLatency() int64 {
	if m.DeliverTime < 0 || m.InjectTime < 0 {
		panic(fmt.Sprintf("message %d not delivered", m.ID))
	}
	return m.DeliverTime - m.InjectTime
}

// DropReason explains why the fault machinery permanently dropped a
// message.
type DropReason string

// Drop reasons.
const (
	DropNone             DropReason = ""                  // not dropped
	DropRetriesExhausted DropReason = "retries-exhausted" // retry limit reached
	DropUnreachable      DropReason = "unreachable"       // destination router dead
	DropSourceFailed     DropReason = "source-failed"     // source router died holding it
)

// ResetForReinjection prepares a recovered message for re-injection at node
// injector: all flit progress is discarded and the message returns to the
// queued state. Generation time is preserved so the extra latency of the
// recovery is charged to the message.
func (m *Message) ResetForReinjection(injector topology.NodeID) {
	m.Injector = injector
	m.FlitsSent = 0
	m.FlitsEjected = 0
	m.State = StateQueued
	m.Recoveries++
}

// ResetForRetry prepares a fault-killed message for a fresh injection
// attempt at node injector (normally its original source): like
// ResetForReinjection, but counted as a fault retry. Generation time is
// preserved so backoff delays are charged to the message's latency.
func (m *Message) ResetForRetry(injector topology.NodeID) {
	m.Injector = injector
	m.FlitsSent = 0
	m.FlitsEjected = 0
	m.State = StateQueued
	m.Retries++
}

// Drop marks the message permanently dropped for the given reason.
func (m *Message) Drop(reason DropReason) {
	m.State = StateDropped
	m.DropReason = reason
}

// String summarises the message for debugging.
func (m *Message) String() string {
	return fmt.Sprintf("msg %d %d->%d len=%d %s", m.ID, m.Src, m.Dst, m.Length, m.State)
}

// Flit is one buffer-entry's worth of a message. Flits are small values
// copied between buffers; they carry no payload. The struct is kept at 16
// bytes (four flits per cache line) because buffer pops and pushes dominate
// the simulator's flit-movement phase; Seq is an int32 accordingly, which
// bounds messages at 2^31 flits.
type Flit struct {
	Msg  *Message
	Seq  int32 // 0-based flit index within the message
	Head bool
	Tail bool
}

// MakeFlit builds flit number seq of message m.
func MakeFlit(m *Message, seq int) Flit {
	return Flit{
		Msg:  m,
		Seq:  int32(seq),
		Head: seq == 0,
		Tail: seq == m.Length-1,
	}
}

// String summarises the flit for debugging.
func (f Flit) String() string {
	kind := "body"
	switch {
	case f.Head && f.Tail:
		kind = "head+tail"
	case f.Head:
		kind = "head"
	case f.Tail:
		kind = "tail"
	}
	return fmt.Sprintf("flit %d/%d of msg %d (%s)", f.Seq, f.Msg.Length, f.Msg.ID, kind)
}
