package message

import "testing"

func TestNetworkLatencyPanicsWithoutInjection(t *testing.T) {
	m := New(1, 0, 1, 4, 10)
	m.DeliverTime = 50 // delivered but InjectTime unset: inconsistent
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = m.NetworkLatency()
}

func TestMultipleRecoveries(t *testing.T) {
	m := New(1, 0, 9, 8, 5)
	for i := 1; i <= 3; i++ {
		m.State = StateInNetwork
		m.FlitsSent = i
		m.ResetForReinjection(2)
		if m.Recoveries != i {
			t.Fatalf("Recoveries=%d want %d", m.Recoveries, i)
		}
	}
	if m.Injector != 2 || m.FlitsSent != 0 {
		t.Error("reset state wrong after repeated recoveries")
	}
}
