package message

import (
	"strings"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	m := New(7, 1, 2, 16, 100)
	if m.ID != 7 || m.Src != 1 || m.Dst != 2 || m.Length != 16 {
		t.Fatalf("fields wrong: %+v", m)
	}
	if m.GenTime != 100 || m.InjectTime != -1 || m.DeliverTime != -1 {
		t.Fatalf("times wrong: %+v", m)
	}
	if m.State != StateQueued || m.Injector != m.Src {
		t.Fatalf("initial state wrong: %+v", m)
	}
}

func TestNewPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length 0")
		}
	}()
	New(1, 0, 1, 0, 0)
}

func TestLatency(t *testing.T) {
	m := New(1, 0, 1, 4, 10)
	m.InjectTime = 25
	m.DeliverTime = 60
	if got := m.Latency(); got != 50 {
		t.Errorf("Latency=%d want 50", got)
	}
	if got := m.NetworkLatency(); got != 35 {
		t.Errorf("NetworkLatency=%d want 35", got)
	}
}

func TestLatencyPanicsUndelivered(t *testing.T) {
	m := New(1, 0, 1, 4, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = m.Latency()
}

func TestResetForReinjection(t *testing.T) {
	m := New(1, 0, 9, 8, 5)
	m.State = StateInNetwork
	m.FlitsSent = 8
	m.FlitsEjected = 3
	m.InjectTime = 12
	m.ResetForReinjection(4)
	if m.Injector != 4 {
		t.Errorf("Injector=%d want 4", m.Injector)
	}
	if m.FlitsSent != 0 || m.FlitsEjected != 0 {
		t.Error("flit progress not reset")
	}
	if m.State != StateQueued {
		t.Errorf("State=%v want queued", m.State)
	}
	if m.Recoveries != 1 {
		t.Errorf("Recoveries=%d want 1", m.Recoveries)
	}
	if m.GenTime != 5 {
		t.Error("GenTime must be preserved so recovery latency is charged")
	}
	if m.Src != 0 || m.Dst != 9 {
		t.Error("endpoints must not change")
	}
}

func TestMakeFlit(t *testing.T) {
	m := New(1, 0, 1, 3, 0)
	h := MakeFlit(m, 0)
	b := MakeFlit(m, 1)
	tl := MakeFlit(m, 2)
	if !h.Head || h.Tail {
		t.Errorf("flit 0 flags wrong: %v", h)
	}
	if b.Head || b.Tail {
		t.Errorf("flit 1 flags wrong: %v", b)
	}
	if tl.Head || !tl.Tail {
		t.Errorf("flit 2 flags wrong: %v", tl)
	}

	single := MakeFlit(New(2, 0, 1, 1, 0), 0)
	if !single.Head || !single.Tail {
		t.Error("1-flit message must be head+tail")
	}
}

func TestStrings(t *testing.T) {
	m := New(3, 1, 2, 4, 0)
	if !strings.Contains(m.String(), "msg 3") {
		t.Errorf("Message.String=%q", m.String())
	}
	f := MakeFlit(m, 0)
	if !strings.Contains(f.String(), "head") {
		t.Errorf("Flit.String=%q", f.String())
	}
	if !strings.Contains(MakeFlit(m, 1).String(), "body") {
		t.Error("body flit string")
	}
	one := MakeFlit(New(4, 0, 1, 1, 0), 0)
	if !strings.Contains(one.String(), "head+tail") {
		t.Error("head+tail flit string")
	}
	for s, want := range map[State]string{
		StateQueued: "queued", StateInjecting: "injecting",
		StateInNetwork: "in-network", StateDelivered: "delivered",
		State(9): "state(9)",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String=%q want %q", s, s.String(), want)
		}
	}
}
