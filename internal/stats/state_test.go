package stats

import (
	"strings"
	"testing"
)

// populatedCollector builds a collector with every accumulator non-trivial:
// in/out-of-window events, a delivery series, fairness spread across nodes.
func populatedCollector() *Collector {
	c := NewCollector(8, 100, 900)
	c.EnableDeliverySeries(50, 20)
	for i := int64(0); i < 40; i++ {
		t := i * 25 // straddles the window on both sides
		c.OnGenerated(t, int(i%8))
		c.OnInjected(int(i%8), t)
		c.OnDelivered(t+60, t, t+5, 16, c.InWindow(t), int(i%8))
		if i%7 == 0 {
			c.OnDeadlock(t)
		}
		if i%11 == 0 {
			c.OnFault(t)
			c.OnAborted(t)
			c.OnRetried(t)
		}
		if i%13 == 0 {
			c.OnDropped(t)
		}
	}
	return c
}

// TestCollectorStateRoundTrip pins that State/Restore is lossless: a restored
// collector produces the identical Result, keeps accepting events, and ends
// exactly where the original does.
func TestCollectorStateRoundTrip(t *testing.T) {
	orig := populatedCollector()
	st := orig.State()

	fresh := NewCollector(8, 100, 900)
	if err := fresh.Restore(st); err != nil {
		t.Fatal(err)
	}
	if got, want := fresh.Result(), orig.Result(); got != want {
		t.Fatalf("restored result diverged:\n got  %+v\n want %+v", got, want)
	}
	if fresh.DeliverySeries() == nil {
		t.Fatal("restore did not recreate the delivery series")
	}

	// Both sides keep counting identically after the restore point.
	for _, c := range []*Collector{orig, fresh} {
		c.OnGenerated(500, 3)
		c.OnDelivered(550, 500, 505, 16, true, 3)
	}
	if got, want := fresh.Result(), orig.Result(); got != want {
		t.Fatalf("post-restore accounting diverged:\n got  %+v\n want %+v", got, want)
	}
	a, b := orig.DeliverySeries().State(), fresh.DeliverySeries().State()
	if a.Interval != b.Interval || len(a.Buckets) != len(b.Buckets) {
		t.Fatal("delivery series geometry diverged")
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			t.Fatalf("delivery series bucket %d diverged: %v vs %v", i, a.Buckets[i], b.Buckets[i])
		}
	}
}

// TestCollectorRestoreGeometryMismatch pins that every geometry field is
// validated: a snapshot from a differently shaped run must not restore.
func TestCollectorRestoreGeometryMismatch(t *testing.T) {
	st := populatedCollector().State()
	cases := map[string]*Collector{
		"node count": NewCollector(9, 100, 900),
		"window":     NewCollector(8, 0, 900),
	}
	for name, c := range cases {
		if err := c.Restore(st); err == nil {
			t.Errorf("%s mismatch restored without error", name)
		} else if !strings.Contains(err.Error(), "mismatch") {
			t.Errorf("%s: unexpected error text: %v", name, err)
		}
	}

	// Sub-accumulator geometry: a tampered histogram state must fail too.
	bad := st
	bad.Hist.Buckets = bad.Hist.Buckets[:len(bad.Hist.Buckets)-1]
	if err := NewCollector(8, 100, 900).Restore(bad); err == nil {
		t.Error("histogram geometry mismatch restored without error")
	}
	bad = st
	bad.Fairness.Counts = append([]int64(nil), bad.Fairness.Counts...)
	bad.Fairness.Counts = bad.Fairness.Counts[:4]
	if err := NewCollector(8, 100, 900).Restore(bad); err == nil {
		t.Error("fairness length mismatch restored without error")
	}
}
