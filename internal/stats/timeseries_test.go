package stats

import "testing"

func TestTimeSeriesBasics(t *testing.T) {
	ts := NewTimeSeries(100, 5)
	if ts.Interval() != 100 || ts.Len() != 5 {
		t.Fatal("geometry")
	}
	ts.Add(0, 3)
	ts.Add(99, 2)
	ts.Add(100, 7)
	ts.Add(499, 1)
	ts.Add(500, 100) // out of range: dropped
	ts.Add(-5, 100)  // negative: dropped
	if ts.Bucket(0) != 5 || ts.Bucket(1) != 7 || ts.Bucket(4) != 1 {
		t.Errorf("buckets: %v", ts.Values())
	}
	if got := ts.Rate(1); got != 0.07 {
		t.Errorf("Rate=%v", got)
	}
	idx, v := ts.Peak()
	if idx != 1 || v != 7 {
		t.Errorf("Peak=(%d,%v)", idx, v)
	}
	vals := ts.Values()
	vals[0] = 999
	if ts.Bucket(0) == 999 {
		t.Error("Values must copy")
	}
}

func TestTimeSeriesPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTimeSeries(0, 5) },
		func() { NewTimeSeries(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCollectorDeliverySeries(t *testing.T) {
	c := NewCollector(2, 0, 1000)
	if c.DeliverySeries() != nil {
		t.Fatal("series enabled by default")
	}
	ts := c.EnableDeliverySeries(100, 10)
	if ts != c.DeliverySeries() {
		t.Fatal("accessor mismatch")
	}
	c.OnDelivered(50, 0, 10, 16, true, 0)
	c.OnDelivered(150, 0, 10, 16, true, 0)
	c.OnDelivered(155, 0, 10, 16, true, 0)
	if ts.Bucket(0) != 16 || ts.Bucket(1) != 32 {
		t.Errorf("series buckets: %v", ts.Values())
	}
}
