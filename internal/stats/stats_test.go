package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.StdDev() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Fatal("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count=%d", w.Count())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean=%v", w.Mean())
	}
	if !almost(w.StdDev(), 2, 1e-12) { // classic example: sigma = 2
		t.Errorf("StdDev=%v", w.StdDev())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max=%v/%v", w.Min(), w.Max())
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Variance() != 0 || w.Min() != 3.5 || w.Max() != 3.5 {
		t.Error("single-sample stats wrong")
	}
}

// Property: Welford matches the two-pass definition.
func TestWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range raw {
			x := float64(v)
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, v := range raw {
			d := float64(v) - mean
			m2 += d * d
		}
		wantVar := 0.0
		if len(raw) > 1 {
			wantVar = m2 / float64(len(raw))
		}
		scale := math.Max(1, math.Abs(mean))
		return almost(w.Mean(), mean, 1e-9*scale) &&
			almost(w.Variance(), wantVar, 1e-6*math.Max(1, wantVar))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestWelfordMerge(t *testing.T) {
	f := func(a, b []int16) bool {
		var wa, wb, wall Welford
		for _, v := range a {
			wa.Add(float64(v))
			wall.Add(float64(v))
		}
		for _, v := range b {
			wb.Add(float64(v))
			wall.Add(float64(v))
		}
		wa.Merge(&wb)
		if wa.Count() != wall.Count() {
			return false
		}
		if wall.Count() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(wall.Mean()))
		return almost(wa.Mean(), wall.Mean(), 1e-9*scale) &&
			almost(wa.Variance(), wall.Variance(), 1e-6*math.Max(1, wall.Variance())) &&
			wa.Min() == wall.Min() && wa.Max() == wall.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, x := range []float64{0, 5, 9.99, 10, 25, 49, 50, 1000, -3} {
		h.Add(x)
	}
	if h.Total() != 9 {
		t.Fatalf("Total=%d", h.Total())
	}
	if h.Bucket(0) != 4 { // 0, 5, 9.99, -3
		t.Errorf("bucket0=%d", h.Bucket(0))
	}
	if h.Bucket(1) != 1 || h.Bucket(2) != 1 || h.Bucket(4) != 1 {
		t.Error("mid buckets wrong")
	}
	if h.Overflow() != 2 { // 50, 1000
		t.Errorf("overflow=%d", h.Overflow())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if q := h.Quantile(0.5); q != 50 {
		t.Errorf("median=%v", q)
	}
	if q := h.Quantile(0.99); q != 99 {
		t.Errorf("p99=%v", q)
	}
	empty := NewHistogram(1, 10)
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile")
	}
	over := NewHistogram(1, 2)
	over.Add(100)
	if !math.IsInf(over.Quantile(0.9), 1) {
		t.Error("overflow quantile must be +Inf")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 5) },
		func() { NewHistogram(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFairness(t *testing.T) {
	f := NewFairness(4)
	// Counts: 100, 100, 50, 150 -> mean 100.
	for i := 0; i < 100; i++ {
		f.Inc(0)
		f.Inc(1)
	}
	for i := 0; i < 50; i++ {
		f.Inc(2)
	}
	for i := 0; i < 150; i++ {
		f.Inc(3)
	}
	if f.Mean() != 100 {
		t.Fatalf("Mean=%v", f.Mean())
	}
	devs := f.Deviations()
	want := []float64{0, 0, -50, 50}
	for i := range want {
		if !almost(devs[i], want[i], 1e-12) {
			t.Errorf("dev[%d]=%v want %v", i, devs[i], want[i])
		}
	}
	worst, best := f.Spread()
	if worst != -50 || best != 50 {
		t.Errorf("Spread=(%v,%v)", worst, best)
	}
	if f.MaxAbsDeviation() != 50 {
		t.Errorf("MaxAbsDeviation=%v", f.MaxAbsDeviation())
	}
	sorted := f.SortedDeviations()
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			t.Fatal("SortedDeviations not sorted")
		}
	}
	if f.Count(3) != 150 {
		t.Errorf("Count(3)=%d", f.Count(3))
	}
}

func TestFairnessZeroMean(t *testing.T) {
	f := NewFairness(3)
	for _, d := range f.Deviations() {
		if d != 0 {
			t.Fatal("zero-mean deviations must be 0")
		}
	}
}

func TestCollectorWindowing(t *testing.T) {
	c := NewCollector(4, 100, 200)
	if s, e := c.Window(); s != 100 || e != 200 {
		t.Fatal("window")
	}
	if c.OnGenerated(50, 0) {
		t.Error("pre-window generation measured")
	}
	if !c.OnGenerated(150, 0) {
		t.Error("in-window generation not measured")
	}
	if c.OnGenerated(200, 0) {
		t.Error("post-window generation measured")
	}
	c.OnInjected(1, 50)  // ignored
	c.OnInjected(1, 150) // counted
	c.OnDeadlock(99)     // ignored
	c.OnDeadlock(150)    // counted
	if c.Injected() != 1 || c.Deadlocks() != 1 || c.Generated() != 1 {
		t.Errorf("counters: inj=%d dl=%d gen=%d", c.Injected(), c.Deadlocks(), c.Generated())
	}
}

func TestCollectorMetrics(t *testing.T) {
	// 2 nodes, window of 100 cycles.
	c := NewCollector(2, 0, 100)
	// Deliver 10 messages of 16 flits inside the window, latency 40 each.
	for i := 0; i < 10; i++ {
		c.OnInjected(i%2, 10)
		c.OnDelivered(50, 10, 20, 16, true, 0)
	}
	// One delivery outside the window: not counted in traffic.
	c.OnDelivered(150, 10, 20, 16, false, 0)
	if got, want := c.AcceptedTraffic(), 10.0*16/2/100; !almost(got, want, 1e-12) {
		t.Errorf("Accepted=%v want %v", got, want)
	}
	if c.Latency.Mean() != 40 || c.Latency.Count() != 10 {
		t.Errorf("latency mean=%v n=%d", c.Latency.Mean(), c.Latency.Count())
	}
	if c.NetLatency.Mean() != 30 {
		t.Errorf("net latency=%v", c.NetLatency.Mean())
	}
	c.OnDeadlock(50)
	if !almost(c.DeadlockRate(), 10, 1e-12) { // 1 deadlock / 10 injected
		t.Errorf("DeadlockRate=%v", c.DeadlockRate())
	}
	r := c.Result()
	if r.AvgLatency != 40 || r.Delivered != 11-1 || r.Injected != 10 {
		t.Errorf("Result=%+v", r)
	}
	if r.DeadlockPct != c.DeadlockRate() || r.Accepted != c.AcceptedTraffic() {
		t.Error("Result disagrees with collector")
	}
}

func TestCollectorZeroInjections(t *testing.T) {
	c := NewCollector(2, 0, 10)
	if c.DeadlockRate() != 0 {
		t.Error("deadlock rate with no injections must be 0")
	}
}

func TestCollectorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCollector(0, 0, 10) },
		func() { NewCollector(2, 10, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCollectorMeasuredOutsideDelivery(t *testing.T) {
	// A measured message delivered after the window still contributes to
	// latency but not to accepted traffic.
	c := NewCollector(1, 0, 100)
	c.OnDelivered(500, 50, 60, 16, true, 0)
	if c.Latency.Count() != 1 || c.Delivered() != 0 {
		t.Errorf("latency n=%d delivered=%d", c.Latency.Count(), c.Delivered())
	}
	if c.Latency.Mean() != 450 {
		t.Errorf("latency=%v", c.Latency.Mean())
	}
}

func TestWelfordRandomizedMergeStress(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	var parts [8]Welford
	var all Welford
	for i := 0; i < 10000; i++ {
		x := rng.NormFloat64()*12 + 100
		parts[i%8].Add(x)
		all.Add(x)
	}
	var merged Welford
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if !almost(merged.Mean(), all.Mean(), 1e-9) || !almost(merged.Variance(), all.Variance(), 1e-6) {
		t.Errorf("merged=(%v,%v) all=(%v,%v)", merged.Mean(), merged.Variance(), all.Mean(), all.Variance())
	}
}
