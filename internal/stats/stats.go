// Package stats provides the measurement machinery of the simulator:
// streaming mean/variance accumulators, latency histograms, per-node
// fairness summaries and the per-run metrics collector whose outputs map
// one-to-one onto the quantities the paper reports (average message latency,
// standard deviation of latency, accepted traffic in flits/node/cycle,
// percentage of detected deadlocks, and per-node sent-message deviations).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford is a streaming mean/variance accumulator using Welford's
// algorithm, numerically stable for long runs. The zero value is ready to
// use.
type Welford struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates a sample.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of samples.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 with fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample (0 with no samples).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest sample (0 with no samples).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// Merge folds other into w (parallel-reduction support).
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	d := other.mean - w.mean
	w.m2 += other.m2 + d*d*float64(w.n)*float64(other.n)/float64(n)
	w.mean += d * float64(other.n) / float64(n)
	w.n = n
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
}

// Histogram counts samples in fixed-width buckets with an overflow bucket.
type Histogram struct {
	width   float64
	buckets []int64
	over    int64
	total   int64
}

// NewHistogram returns a histogram of n buckets of the given width; samples
// at or beyond n*width land in the overflow bucket.
func NewHistogram(width float64, n int) *Histogram {
	if width <= 0 || n < 1 {
		panic(fmt.Sprintf("stats: bad histogram geometry width=%v n=%d", width, n))
	}
	return &Histogram{width: width, buckets: make([]int64, n)}
}

// Add incorporates a sample. Negative samples count into bucket 0.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < 0 {
		h.buckets[0]++
		return
	}
	i := int(x / h.width)
	if i >= len(h.buckets) {
		h.over++
		return
	}
	h.buckets[i]++
}

// Total returns the number of samples.
func (h *Histogram) Total() int64 { return h.total }

// Bucket returns the count of bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Overflow returns the overflow count.
func (h *Histogram) Overflow() int64 { return h.over }

// Merge folds other into h. Both histograms must have identical geometry
// (bucket width and count); Merge panics otherwise.
func (h *Histogram) Merge(other *Histogram) {
	if h.width != other.width || len(h.buckets) != len(other.buckets) {
		panic(fmt.Sprintf("stats: merging histograms of different geometry (%vx%d vs %vx%d)",
			h.width, len(h.buckets), other.width, len(other.buckets)))
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.over += other.over
	h.total += other.total
}

// Quantile returns an upper bound for the q-quantile (0<=q<=1) based on
// bucket boundaries; it returns +Inf if the quantile lies in the overflow
// bucket and 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return float64(i+1) * h.width
		}
	}
	return math.Inf(1)
}

// Fairness summarises per-node sent-message counts the way the paper's
// Figure 4 does: each node's deviation, in percent, from the all-node mean.
type Fairness struct {
	counts []int64
}

// NewFairness returns a fairness tracker for n nodes.
func NewFairness(n int) *Fairness {
	return &Fairness{counts: make([]int64, n)}
}

// Inc counts one sent message for node i.
func (f *Fairness) Inc(i int) { f.counts[i]++ }

// Count returns node i's sent-message count.
func (f *Fairness) Count(i int) int64 { return f.counts[i] }

// Merge folds other's per-node counts into f. Both trackers must cover the
// same number of nodes; Merge panics otherwise.
func (f *Fairness) Merge(other *Fairness) {
	if len(f.counts) != len(other.counts) {
		panic(fmt.Sprintf("stats: merging fairness trackers of %d and %d nodes",
			len(f.counts), len(other.counts)))
	}
	for i, c := range other.counts {
		f.counts[i] += c
	}
}

// Mean returns the mean sent-message count over all nodes.
func (f *Fairness) Mean() float64 {
	var sum int64
	for _, c := range f.counts {
		sum += c
	}
	return float64(sum) / float64(len(f.counts))
}

// Deviations returns each node's percentage deviation from the mean
// ((count-mean)/mean*100). With a zero mean all deviations are 0.
func (f *Fairness) Deviations() []float64 {
	mean := f.Mean()
	out := make([]float64, len(f.counts))
	if mean == 0 {
		return out
	}
	for i, c := range f.counts {
		out[i] = (float64(c) - mean) / mean * 100
	}
	return out
}

// Spread returns the most negative and most positive node deviations in
// percent — the paper's "differences in sent messages per node" headline
// numbers.
func (f *Fairness) Spread() (worst, best float64) {
	devs := f.Deviations()
	if len(devs) == 0 {
		return 0, 0
	}
	worst, best = devs[0], devs[0]
	for _, d := range devs[1:] {
		if d < worst {
			worst = d
		}
		if d > best {
			best = d
		}
	}
	return worst, best
}

// MaxAbsDeviation returns the largest |deviation| in percent.
func (f *Fairness) MaxAbsDeviation() float64 {
	worst, best := f.Spread()
	return math.Max(math.Abs(worst), math.Abs(best))
}

// SortedDeviations returns the deviations in ascending order (useful for
// plotting Figure-4-style curves).
func (f *Fairness) SortedDeviations() []float64 {
	devs := f.Deviations()
	sort.Float64s(devs)
	return devs
}
