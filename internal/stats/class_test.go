package stats

import (
	"math"
	"testing"
)

// classFixture returns a 4-node collector with nodes {0,2} good and {1,3}
// rogue, window [100, 200).
func classFixture() *Collector {
	c := NewCollector(4, 100, 200)
	c.EnableClasses([]string{"good", "rogue"}, []uint8{0, 1, 0, 1})
	return c
}

func TestClassAttribution(t *testing.T) {
	c := classFixture()
	if !c.ClassesEnabled() {
		t.Fatal("classes not enabled")
	}
	// Two good generations, one rogue; deliveries split likewise.
	c.OnGenerated(150, 0)
	c.OnGenerated(150, 2)
	c.OnGenerated(150, 1)
	c.OnInjected(0, 150)
	c.OnInjected(1, 150)
	c.OnDelivered(180, 150, 155, 16, true, 0) // good, latency 30
	c.OnDelivered(190, 150, 155, 8, true, 1)  // rogue, latency 40
	c.OnDelivered(250, 150, 155, 8, true, 2)  // good, out of window: latency only

	rs := c.ClassResults()
	if len(rs) != 2 {
		t.Fatalf("got %d class results", len(rs))
	}
	good, rogue := rs[0], rs[1]
	if good.Class != "good" || good.Nodes != 2 || rogue.Class != "rogue" || rogue.Nodes != 2 {
		t.Fatalf("class config: %+v %+v", good, rogue)
	}
	if good.Generated != 2 || rogue.Generated != 1 {
		t.Errorf("generated: good=%d rogue=%d", good.Generated, rogue.Generated)
	}
	if good.Injected != 1 || rogue.Injected != 1 {
		t.Errorf("injected: good=%d rogue=%d", good.Injected, rogue.Injected)
	}
	if good.Delivered != 1 || good.DeliveredFlits != 16 || rogue.Delivered != 1 || rogue.DeliveredFlits != 8 {
		t.Errorf("delivered: good=%d/%d rogue=%d/%d",
			good.Delivered, good.DeliveredFlits, rogue.Delivered, rogue.DeliveredFlits)
	}
	// Good latency pools the in-window 30 and the out-of-window 100.
	if want := (30.0 + 100.0) / 2; math.Abs(good.AvgLatency-want) > 1e-12 {
		t.Errorf("good latency %v want %v", good.AvgLatency, want)
	}
	if math.Abs(rogue.AvgLatency-40) > 1e-12 {
		t.Errorf("rogue latency %v want 40", rogue.AvgLatency)
	}
	// Accepted: flits / class nodes / window cycles.
	if want := 16.0 / 2 / 100; math.Abs(good.Accepted-want) > 1e-12 {
		t.Errorf("good accepted %v want %v", good.Accepted, want)
	}
	// Global counters unaffected by the class split.
	if c.Generated() != 3 || c.Delivered() != 2 {
		t.Errorf("global counters gen=%d del=%d", c.Generated(), c.Delivered())
	}
}

func TestClassResultsDisabled(t *testing.T) {
	c := NewCollector(4, 100, 200)
	if c.ClassesEnabled() || c.ClassResults() != nil || c.ClassOf() != nil {
		t.Fatal("class accounting active without EnableClasses")
	}
}

func TestClassMerge(t *testing.T) {
	a, b := classFixture(), classFixture()
	a.OnDelivered(150, 100, 110, 16, true, 0)
	b.OnDelivered(160, 100, 110, 16, true, 0)
	b.OnDelivered(170, 100, 110, 8, true, 3)
	a.Merge(b)
	rs := a.ClassResults()
	if rs[0].Delivered != 2 || rs[0].DeliveredFlits != 32 || rs[1].Delivered != 1 {
		t.Errorf("merged: %+v", rs)
	}
	// Accepted averages over runs: 32 flits / 2 nodes / (100 cycles * 2 runs).
	if want := 32.0 / 2 / 200; math.Abs(rs[0].Accepted-want) > 1e-12 {
		t.Errorf("merged accepted %v want %v", rs[0].Accepted, want)
	}

	// Mismatched class maps must refuse to merge.
	c := NewCollector(4, 100, 200)
	c.EnableClasses([]string{"good", "rogue"}, []uint8{1, 0, 1, 0})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("merge of different class maps did not panic")
			}
		}()
		a.Merge(c)
	}()
	// A classless collector must not merge into a classed one.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("merge of classless into classed did not panic")
			}
		}()
		a.Merge(NewCollector(4, 100, 200))
	}()
}

func TestClassStateRoundTrip(t *testing.T) {
	orig := classFixture()
	orig.OnGenerated(150, 1)
	orig.OnInjected(1, 150)
	orig.OnDelivered(180, 150, 155, 16, true, 1)

	// A fresh collector without classes adopts the snapshot's configuration.
	fresh := NewCollector(4, 100, 200)
	if err := fresh.Restore(orig.State()); err != nil {
		t.Fatal(err)
	}
	rsO, rsF := orig.ClassResults(), fresh.ClassResults()
	if len(rsF) != len(rsO) {
		t.Fatalf("restored %d classes, want %d", len(rsF), len(rsO))
	}
	for i := range rsO {
		if rsF[i] != rsO[i] {
			t.Errorf("class %d diverged:\n got  %+v\n want %+v", i, rsF[i], rsO[i])
		}
	}

	// Both keep counting identically after the restore point.
	for _, c := range []*Collector{orig, fresh} {
		c.OnDelivered(190, 150, 155, 8, true, 2)
	}
	rsO, rsF = orig.ClassResults(), fresh.ClassResults()
	for i := range rsO {
		if rsF[i] != rsO[i] {
			t.Errorf("post-restore class %d diverged:\n got  %+v\n want %+v", i, rsF[i], rsO[i])
		}
	}

	// A conflicting class map must be rejected.
	bad := NewCollector(4, 100, 200)
	bad.EnableClasses([]string{"good", "rogue"}, []uint8{1, 1, 0, 0})
	if err := bad.Restore(orig.State()); err == nil {
		t.Error("restore over conflicting class map succeeded")
	}
	// A classless snapshot cannot land in a classed collector.
	plain := NewCollector(4, 100, 200)
	if err := classFixture().Restore(plain.State()); err == nil {
		t.Error("classless snapshot restored into classed collector")
	}
}
