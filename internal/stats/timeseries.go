package stats

import "fmt"

// TimeSeries accumulates a quantity into fixed-width time buckets — e.g.
// flits delivered per 100-cycle interval — so that transient behaviour
// (bursts, saturation episodes, recovery storms) can be observed, not just
// run-wide averages. Samples beyond the last bucket are dropped.
type TimeSeries struct {
	interval int64
	buckets  []float64
}

// NewTimeSeries returns a series of n buckets of interval cycles each,
// covering cycles [0, n*interval).
func NewTimeSeries(interval int64, n int) *TimeSeries {
	if interval < 1 || n < 1 {
		panic(fmt.Sprintf("stats: bad time series geometry interval=%d n=%d", interval, n))
	}
	return &TimeSeries{interval: interval, buckets: make([]float64, n)}
}

// Add accumulates v into the bucket covering cycle t. Out-of-range cycles
// are ignored.
func (ts *TimeSeries) Add(t int64, v float64) {
	if t < 0 {
		return
	}
	i := t / ts.interval
	if i >= int64(len(ts.buckets)) {
		return
	}
	ts.buckets[i] += v
}

// Merge accumulates other's buckets into ts. Both series must have
// identical geometry (interval and bucket count); Merge panics otherwise.
func (ts *TimeSeries) Merge(other *TimeSeries) {
	if ts.interval != other.interval || len(ts.buckets) != len(other.buckets) {
		panic(fmt.Sprintf("stats: merging time series of different geometry (%dx%d vs %dx%d)",
			ts.interval, len(ts.buckets), other.interval, len(other.buckets)))
	}
	for i, v := range other.buckets {
		ts.buckets[i] += v
	}
}

// Interval returns the bucket width in cycles.
func (ts *TimeSeries) Interval() int64 { return ts.interval }

// Len returns the number of buckets.
func (ts *TimeSeries) Len() int { return len(ts.buckets) }

// Bucket returns the accumulated value of bucket i.
func (ts *TimeSeries) Bucket(i int) float64 { return ts.buckets[i] }

// Values returns a copy of all bucket values.
func (ts *TimeSeries) Values() []float64 {
	out := make([]float64, len(ts.buckets))
	copy(out, ts.buckets)
	return out
}

// Rate returns bucket i's value normalised per cycle (value/interval).
func (ts *TimeSeries) Rate(i int) float64 {
	return ts.buckets[i] / float64(ts.interval)
}

// Peak returns the largest bucket value and its index.
func (ts *TimeSeries) Peak() (idx int, v float64) {
	for i, b := range ts.buckets {
		if b > v {
			idx, v = i, b
		}
	}
	return idx, v
}
