package stats

import (
	"math"
	"testing"
)

// Merging accumulators fed disjoint halves of a sample stream must be
// indistinguishable from one accumulator fed the whole stream — that is the
// contract the experiment runner relies on when it pools replica runs.

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestHistogramMerge(t *testing.T) {
	samples := []float64{3, 47, 51, 120, 999, 10500, -2, 0, 49.9, 260}
	whole := NewHistogram(50, 200)
	a := NewHistogram(50, 200)
	b := NewHistogram(50, 200)
	for i, s := range samples {
		whole.Add(s)
		if i%2 == 0 {
			a.Add(s)
		} else {
			b.Add(s)
		}
	}
	a.Merge(b)
	if a.Total() != whole.Total() || a.Overflow() != whole.Overflow() {
		t.Fatalf("merged total/overflow %d/%d, want %d/%d",
			a.Total(), a.Overflow(), whole.Total(), whole.Overflow())
	}
	for i := 0; i < 200; i++ {
		if a.Bucket(i) != whole.Bucket(i) {
			t.Fatalf("bucket %d: merged %d, whole %d", i, a.Bucket(i), whole.Bucket(i))
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("quantile %v: merged %v, whole %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramMergeGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging histograms of different geometry did not panic")
		}
	}()
	NewHistogram(50, 200).Merge(NewHistogram(25, 200))
}

func TestFairnessMerge(t *testing.T) {
	whole := NewFairness(8)
	a := NewFairness(8)
	b := NewFairness(8)
	for i := 0; i < 100; i++ {
		n := (i * 5) % 8
		whole.Inc(n)
		if i < 60 {
			a.Inc(n)
		} else {
			b.Inc(n)
		}
	}
	a.Merge(b)
	for n := 0; n < 8; n++ {
		if a.Count(n) != whole.Count(n) {
			t.Fatalf("node %d: merged count %d, whole %d", n, a.Count(n), whole.Count(n))
		}
	}
	aw, ab := a.Spread()
	ww, wb := whole.Spread()
	if aw != ww || ab != wb {
		t.Fatalf("merged spread (%v,%v), whole (%v,%v)", aw, ab, ww, wb)
	}
}

func TestFairnessMergeGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging fairness trackers of different sizes did not panic")
		}
	}()
	NewFairness(8).Merge(NewFairness(16))
}

func TestTimeSeriesMerge(t *testing.T) {
	whole := NewTimeSeries(100, 10)
	a := NewTimeSeries(100, 10)
	b := NewTimeSeries(100, 10)
	for i := 0; i < 50; i++ {
		tm := int64(i * 37)
		v := float64(i%7) + 0.5
		whole.Add(tm, v)
		if i%3 == 0 {
			a.Add(tm, v)
		} else {
			b.Add(tm, v)
		}
	}
	a.Merge(b)
	for i := 0; i < 10; i++ {
		if !almostEqual(a.Bucket(i), whole.Bucket(i)) {
			t.Fatalf("bucket %d: merged %v, whole %v", i, a.Bucket(i), whole.Bucket(i))
		}
	}
}

func TestTimeSeriesMergeGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging time series of different geometry did not panic")
		}
	}()
	NewTimeSeries(100, 10).Merge(NewTimeSeries(50, 10))
}

// feedCollector plays a deterministic synthetic run into c, with every event
// stream offset by phase so two replicas differ.
func feedCollector(c *Collector, phase int64) {
	for i := int64(0); i < 40; i++ {
		t := 100 + (i*13+phase*7)%300 // inside the [100, 400) window
		gen := t - 20 - phase
		measured := c.OnGenerated(t, int(i+phase)%4)
		c.OnInjected(int(i+phase)%4, t)
		c.OnDelivered(t, gen, gen+5, 4, measured, int(i+phase)%4)
		if i%9 == phase%9 {
			c.OnDeadlock(t)
		}
		if i%11 == 0 {
			c.OnFault(t)
			c.OnAborted(t)
			c.OnRetried(t)
		}
		if i%17 == 0 {
			c.OnDropped(t)
		}
	}
}

func TestCollectorMerge(t *testing.T) {
	a := NewCollector(4, 100, 400)
	b := NewCollector(4, 100, 400)
	a.EnableDeliverySeries(50, 10)
	b.EnableDeliverySeries(50, 10)
	feedCollector(a, 0)
	feedCollector(b, 3)

	// A reference collector fed both streams back to back: the merged
	// result must pool samples and counters exactly the same way.
	ref := NewCollector(4, 100, 400)
	ref.EnableDeliverySeries(50, 10)
	feedCollector(ref, 0)
	feedCollector(ref, 3)

	accA, accB := a.AcceptedTraffic(), b.AcceptedTraffic()
	a.Merge(b)

	if got, want := a.Runs(), int64(2); got != want {
		t.Fatalf("Runs() = %d, want %d", got, want)
	}
	// Counters and pooled samples match the reference stream.
	got, want := a.Result(), ref.Result()
	if got.Delivered != want.Delivered || got.Injected != want.Injected ||
		got.Generated != want.Generated ||
		got.FaultEvents != want.FaultEvents || got.Aborted != want.Aborted ||
		got.Retried != want.Retried || got.Dropped != want.Dropped {
		t.Fatalf("merged counters %+v, reference %+v", got, want)
	}
	if !almostEqual(got.AvgLatency, want.AvgLatency) ||
		!almostEqual(got.StdLatency, want.StdLatency) ||
		!almostEqual(got.AvgNetLatency, want.AvgNetLatency) ||
		got.P99Latency != want.P99Latency {
		t.Fatalf("merged latency stats %+v, reference %+v", got, want)
	}
	if got.DeadlockPct != want.DeadlockPct {
		t.Fatalf("merged deadlock pct %v, reference %v", got.DeadlockPct, want.DeadlockPct)
	}
	if got.WorstNodeDev != want.WorstNodeDev || got.BestNodeDev != want.BestNodeDev {
		t.Fatalf("merged fairness (%v,%v), reference (%v,%v)",
			got.WorstNodeDev, got.BestNodeDev, want.WorstNodeDev, want.BestNodeDev)
	}
	// Accepted traffic averages over runs rather than summing: two runs
	// over the same window do not double the per-cycle rate.
	if wantAcc := (accA + accB) / 2; !almostEqual(got.Accepted, wantAcc) {
		t.Fatalf("merged accepted %v, want mean of replicas %v", got.Accepted, wantAcc)
	}
	// The delivery series accumulated both replicas.
	for i := 0; i < 10; i++ {
		if !almostEqual(a.DeliverySeries().Bucket(i), ref.DeliverySeries().Bucket(i)) {
			t.Fatalf("series bucket %d: merged %v, reference %v",
				i, a.DeliverySeries().Bucket(i), ref.DeliverySeries().Bucket(i))
		}
	}
}

func TestCollectorMergeWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging collectors with different windows did not panic")
		}
	}()
	NewCollector(4, 100, 400).Merge(NewCollector(4, 100, 500))
}
