package stats

// Per-traffic-class accounting. The adversarial workloads split nodes into
// classes — well-behaved sources that obey the injection limiter versus
// rogue sources that bypass it — and the question the experiments answer is
// how much of the *well-behaved* class's throughput and latency survives
// the attack. Global counters cannot answer that, so the collector can
// optionally attribute every generated/injected/delivered message to the
// class of its source node.
//
// Classes are identified by a per-node class index fixed for the whole run
// (a node cannot change class mid-run; the adversary model picks rogues up
// front from a seeded shuffle). Class accounting is pure observation: it
// never feeds back into simulation behaviour, so enabling it cannot perturb
// golden digests.

import "fmt"

// classAcc accumulates one class's window counters and latency samples.
type classAcc struct {
	generated      int64
	injected       int64
	delivered      int64
	deliveredFlits int64
	latency        Welford
}

// EnableClasses turns on per-class accounting. names gives the class labels
// (class i is names[i]); classOf maps each node to its class index and must
// cover every node of the collector's network. Call before the run starts;
// panics on geometry errors, mirroring NewCollector.
func (c *Collector) EnableClasses(names []string, classOf []uint8) {
	if len(names) == 0 || len(names) > 255 {
		panic("stats: class count out of range")
	}
	if len(classOf) != c.nodes {
		panic(fmt.Sprintf("stats: classOf covers %d nodes, collector has %d", len(classOf), c.nodes))
	}
	counts := make([]int, len(names))
	for n, cl := range classOf {
		if int(cl) >= len(names) {
			panic(fmt.Sprintf("stats: node %d assigned class %d, only %d classes", n, cl, len(names)))
		}
		counts[cl]++
	}
	c.classNames = append([]string(nil), names...)
	c.classOf = append([]uint8(nil), classOf...)
	c.classNodes = counts
	c.classes = make([]classAcc, len(names))
}

// ClassesEnabled reports whether per-class accounting is on.
func (c *Collector) ClassesEnabled() bool { return c.classes != nil }

// ClassOf returns the per-node class map (nil when classes are disabled).
// Callers must not mutate it.
func (c *Collector) ClassOf() []uint8 { return c.classOf }

// ClassResult is an immutable per-class summary of a finished run. It is
// comparable, so equivalence tests can require bit-identical class results
// across worker counts.
type ClassResult struct {
	Class          string  // class label
	Nodes          int     // nodes assigned to this class
	Generated      int64   // messages generated in the window
	Injected       int64   // messages injected in the window
	Delivered      int64   // messages delivered in the window
	DeliveredFlits int64   // flits delivered in the window
	Accepted       float64 // flits per class-node per cycle
	AvgLatency     float64 // mean end-to-end latency of measured messages
}

// ClassResults summarises each class, in class-index order. It returns nil
// when class accounting is disabled.
func (c *Collector) ClassResults() []ClassResult {
	if c.classes == nil {
		return nil
	}
	out := make([]ClassResult, len(c.classes))
	cycles := (c.winEnd - c.winStart) * c.runs
	for i := range c.classes {
		a := &c.classes[i]
		accepted := 0.0
		if c.classNodes[i] > 0 {
			accepted = float64(a.deliveredFlits) / float64(c.classNodes[i]) / float64(cycles)
		}
		out[i] = ClassResult{
			Class:          c.classNames[i],
			Nodes:          c.classNodes[i],
			Generated:      a.generated,
			Injected:       a.injected,
			Delivered:      a.delivered,
			DeliveredFlits: a.deliveredFlits,
			Accepted:       accepted,
			AvgLatency:     a.latency.Mean(),
		}
	}
	return out
}

// mergeClasses folds other's class accumulators into c. Both sides must
// carry the same class configuration (or both none); panics otherwise,
// mirroring Merge's geometry check.
func (c *Collector) mergeClasses(other *Collector) {
	if (c.classes == nil) != (other.classes == nil) {
		panic("stats: merging collectors with mismatched class accounting")
	}
	if c.classes == nil {
		return
	}
	if len(c.classNames) != len(other.classNames) {
		panic("stats: merging collectors with different class counts")
	}
	for i := range c.classNames {
		if c.classNames[i] != other.classNames[i] {
			panic("stats: merging collectors with different class names")
		}
	}
	for n := range c.classOf {
		if c.classOf[n] != other.classOf[n] {
			panic("stats: merging collectors with different class maps")
		}
	}
	for i := range c.classes {
		c.classes[i].generated += other.classes[i].generated
		c.classes[i].injected += other.classes[i].injected
		c.classes[i].delivered += other.classes[i].delivered
		c.classes[i].deliveredFlits += other.classes[i].deliveredFlits
		c.classes[i].latency.Merge(&other.classes[i].latency)
	}
}
