package stats

// State export/import for checkpoint/restore. Every accumulator exposes a
// plain-data State struct (exported fields only, so encoding/gob can carry
// it) and a Restore that loads it back. Restores validate geometry — bucket
// widths, node counts, window bounds — and fail loudly on mismatch rather
// than silently continuing with a collector that would merge wrongly.

import "fmt"

// WelfordState is the serializable state of a Welford accumulator.
type WelfordState struct {
	N        int64
	Mean, M2 float64
	Min, Max float64
}

// State exports the accumulator.
func (w *Welford) State() WelfordState {
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2, Min: w.min, Max: w.max}
}

// Restore loads a previously exported state.
func (w *Welford) Restore(s WelfordState) {
	w.n, w.mean, w.m2, w.min, w.max = s.N, s.Mean, s.M2, s.Min, s.Max
}

// HistogramState is the serializable state of a Histogram.
type HistogramState struct {
	Width   float64
	Buckets []int64
	Over    int64
	Total   int64
}

// State exports the histogram.
func (h *Histogram) State() HistogramState {
	return HistogramState{
		Width:   h.width,
		Buckets: append([]int64(nil), h.buckets...),
		Over:    h.over,
		Total:   h.total,
	}
}

// Restore loads a previously exported state. The receiver's geometry (bucket
// width and count) must match.
func (h *Histogram) Restore(s HistogramState) error {
	if h.width != s.Width || len(h.buckets) != len(s.Buckets) {
		return fmt.Errorf("stats: histogram geometry mismatch (%vx%d vs %vx%d)",
			h.width, len(h.buckets), s.Width, len(s.Buckets))
	}
	copy(h.buckets, s.Buckets)
	h.over, h.total = s.Over, s.Total
	return nil
}

// FairnessState is the serializable state of a Fairness tracker.
type FairnessState struct {
	Counts []int64
}

// State exports the tracker.
func (f *Fairness) State() FairnessState {
	return FairnessState{Counts: append([]int64(nil), f.counts...)}
}

// Restore loads a previously exported state. The node count must match.
func (f *Fairness) Restore(s FairnessState) error {
	if len(f.counts) != len(s.Counts) {
		return fmt.Errorf("stats: fairness node count mismatch (%d vs %d)",
			len(f.counts), len(s.Counts))
	}
	copy(f.counts, s.Counts)
	return nil
}

// TimeSeriesState is the serializable state of a TimeSeries.
type TimeSeriesState struct {
	Interval int64
	Buckets  []float64
}

// State exports the series.
func (ts *TimeSeries) State() TimeSeriesState {
	return TimeSeriesState{Interval: ts.interval, Buckets: append([]float64(nil), ts.buckets...)}
}

// Restore loads a previously exported state. The geometry must match.
func (ts *TimeSeries) Restore(s TimeSeriesState) error {
	if ts.interval != s.Interval || len(ts.buckets) != len(s.Buckets) {
		return fmt.Errorf("stats: time series geometry mismatch (%dx%d vs %dx%d)",
			ts.interval, len(ts.buckets), s.Interval, len(s.Buckets))
	}
	copy(ts.buckets, s.Buckets)
	return nil
}

// ClassAccState is the serializable state of one traffic class accumulator.
type ClassAccState struct {
	Generated      int64
	Injected       int64
	Delivered      int64
	DeliveredFlits int64
	Latency        WelfordState
}

// ClassesState is the serializable state of a collector's per-class
// accounting: the class configuration (labels and per-node map) plus the
// accumulators.
type ClassesState struct {
	Names   []string
	ClassOf []uint8
	Accs    []ClassAccState
}

// CollectorState is the serializable state of a Collector, including its
// geometry so a restore can verify it lands in a matching collector.
type CollectorState struct {
	Nodes    int
	WinStart int64
	WinEnd   int64

	Latency    WelfordState
	NetLatency WelfordState
	Hist       HistogramState

	GeneratedMsgs  int64
	DeliveredMsgs  int64
	DeliveredFlits int64
	InjectedMsgs   int64
	Deadlocks      int64
	FaultEvents    int64
	AbortedMsgs    int64
	RetriedMsgs    int64
	DroppedMsgs    int64

	Fairness FairnessState
	Runs     int64

	// DeliveredSeries is nil when the collector recorded no delivery series.
	DeliveredSeries *TimeSeriesState

	// Classes is nil when the collector has no per-class accounting.
	Classes *ClassesState
}

// State exports the collector.
func (c *Collector) State() CollectorState {
	s := CollectorState{
		Nodes:          c.nodes,
		WinStart:       c.winStart,
		WinEnd:         c.winEnd,
		Latency:        c.Latency.State(),
		NetLatency:     c.NetLatency.State(),
		Hist:           c.Hist.State(),
		GeneratedMsgs:  c.generatedMsgs,
		DeliveredMsgs:  c.deliveredMsgs,
		DeliveredFlits: c.deliveredFlits,
		InjectedMsgs:   c.injectedMsgs,
		Deadlocks:      c.deadlocks,
		FaultEvents:    c.faultEvents,
		AbortedMsgs:    c.abortedMsgs,
		RetriedMsgs:    c.retriedMsgs,
		DroppedMsgs:    c.droppedMsgs,
		Fairness:       c.fairness.State(),
		Runs:           c.runs,
	}
	if c.deliveredSeries != nil {
		ts := c.deliveredSeries.State()
		s.DeliveredSeries = &ts
	}
	if c.classes != nil {
		cs := ClassesState{
			Names:   append([]string(nil), c.classNames...),
			ClassOf: append([]uint8(nil), c.classOf...),
			Accs:    make([]ClassAccState, len(c.classes)),
		}
		for i := range c.classes {
			a := &c.classes[i]
			cs.Accs[i] = ClassAccState{
				Generated:      a.generated,
				Injected:       a.injected,
				Delivered:      a.delivered,
				DeliveredFlits: a.deliveredFlits,
				Latency:        a.latency.State(),
			}
		}
		s.Classes = &cs
	}
	return s
}

// Restore loads a previously exported state into c. The collector's geometry
// (node count and measurement window) must match the snapshot's. If the
// snapshot carries a delivery series the collector does not have yet, one is
// created with the snapshot's geometry, so restore order does not depend on
// the caller re-enabling the series first.
func (c *Collector) Restore(s CollectorState) error {
	if c.nodes != s.Nodes || c.winStart != s.WinStart || c.winEnd != s.WinEnd {
		return fmt.Errorf("stats: collector geometry mismatch (nodes %d win [%d,%d) vs nodes %d win [%d,%d))",
			c.nodes, c.winStart, c.winEnd, s.Nodes, s.WinStart, s.WinEnd)
	}
	if err := c.Hist.Restore(s.Hist); err != nil {
		return err
	}
	if err := c.fairness.Restore(s.Fairness); err != nil {
		return err
	}
	c.Latency.Restore(s.Latency)
	c.NetLatency.Restore(s.NetLatency)
	c.generatedMsgs = s.GeneratedMsgs
	c.deliveredMsgs = s.DeliveredMsgs
	c.deliveredFlits = s.DeliveredFlits
	c.injectedMsgs = s.InjectedMsgs
	c.deadlocks = s.Deadlocks
	c.faultEvents = s.FaultEvents
	c.abortedMsgs = s.AbortedMsgs
	c.retriedMsgs = s.RetriedMsgs
	c.droppedMsgs = s.DroppedMsgs
	c.runs = s.Runs
	if s.DeliveredSeries != nil {
		if c.deliveredSeries == nil {
			c.deliveredSeries = NewTimeSeries(s.DeliveredSeries.Interval, len(s.DeliveredSeries.Buckets))
		}
		if err := c.deliveredSeries.Restore(*s.DeliveredSeries); err != nil {
			return err
		}
	}
	if s.Classes != nil {
		if c.classes == nil {
			// The restore target was built without class accounting (restore
			// order does not depend on re-enabling it first): adopt the
			// snapshot's configuration.
			c.EnableClasses(s.Classes.Names, s.Classes.ClassOf)
		} else if len(c.classNames) != len(s.Classes.Names) {
			return fmt.Errorf("stats: class count mismatch (%d vs %d)", len(c.classNames), len(s.Classes.Names))
		}
		for i, name := range s.Classes.Names {
			if c.classNames[i] != name {
				return fmt.Errorf("stats: class %d named %q, snapshot has %q", i, c.classNames[i], name)
			}
		}
		for n := range c.classOf {
			if c.classOf[n] != s.Classes.ClassOf[n] {
				return fmt.Errorf("stats: node %d in class %d, snapshot has %d", n, c.classOf[n], s.Classes.ClassOf[n])
			}
		}
		if len(s.Classes.Accs) != len(c.classes) {
			return fmt.Errorf("stats: class accumulator count mismatch (%d vs %d)", len(c.classes), len(s.Classes.Accs))
		}
		for i, a := range s.Classes.Accs {
			c.classes[i].generated = a.Generated
			c.classes[i].injected = a.Injected
			c.classes[i].delivered = a.Delivered
			c.classes[i].deliveredFlits = a.DeliveredFlits
			c.classes[i].latency.Restore(a.Latency)
		}
	} else if c.classes != nil {
		return fmt.Errorf("stats: collector has class accounting but snapshot does not")
	}
	return nil
}
