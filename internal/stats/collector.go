package stats

// Collector gathers the per-run metrics the paper reports. The simulation
// engine drives it through the On* hooks; measurement is restricted to a
// window so that warm-up transients are excluded, mirroring the evaluation
// methodology of Duato & López the paper adopts.
//
// Conventions:
//   - "accepted traffic" is flits delivered during the measurement window,
//     normalised per node per cycle;
//   - latency statistics cover messages *generated* inside the window and
//     delivered before the run ends (source-queue time included);
//   - the deadlock rate is detected deadlocks per injected message, both
//     counted inside the window;
//   - fairness counts messages injected per node inside the window.
type Collector struct {
	nodes      int
	winStart   int64
	winEnd     int64
	histWidth  float64
	histBucket int

	// Latency holds end-to-end latency samples (cycles) of measured
	// messages; NetLatency excludes source-queue time.
	Latency    Welford
	NetLatency Welford
	Hist       *Histogram

	generatedMsgs  int64
	deliveredMsgs  int64
	deliveredFlits int64
	injectedMsgs   int64
	deadlocks      int64

	// Fault-injection counters (all zero when faults are disabled).
	faultEvents int64 // link/router failures applied in the window
	abortedMsgs int64 // messages killed because their path died
	retriedMsgs int64 // source retries scheduled for killed messages
	droppedMsgs int64 // messages dropped (retries exhausted or unreachable)

	fairness *Fairness

	// runs counts the measurement windows folded into this collector (one
	// for a plain run, more after Merge). Per-cycle normalisations divide
	// by it so merged replicas report averages, not sums.
	runs int64

	// deliveredSeries, when enabled, tracks flits delivered per interval
	// over the whole run (not just the window).
	deliveredSeries *TimeSeries

	// Per-class accounting (see class.go); all nil when disabled.
	classNames []string
	classOf    []uint8
	classNodes []int
	classes    []classAcc
}

// NewCollector returns a collector for a run over nodes nodes that measures
// activity in cycles [winStart, winEnd).
func NewCollector(nodes int, winStart, winEnd int64) *Collector {
	if nodes < 1 || winEnd <= winStart {
		panic("stats: bad collector window")
	}
	return &Collector{
		nodes:    nodes,
		winStart: winStart,
		winEnd:   winEnd,
		Hist:     NewHistogram(50, 200), // 50-cycle buckets up to 10k cycles
		fairness: NewFairness(nodes),
		runs:     1,
	}
}

// Merge folds other — a collector from a replica run over the same network
// and measurement window — into c. Latency statistics and histograms pool
// the samples, counters and per-node fairness counts accumulate, and
// per-cycle rates (accepted traffic) average over the merged runs. Both
// collectors must have identical geometry (nodes and window); Merge panics
// otherwise. The delivery time series is merged only when both sides
// recorded one.
func (c *Collector) Merge(other *Collector) {
	if c.nodes != other.nodes || c.winStart != other.winStart || c.winEnd != other.winEnd {
		panic("stats: merging collectors of different geometry")
	}
	c.Latency.Merge(&other.Latency)
	c.NetLatency.Merge(&other.NetLatency)
	c.Hist.Merge(other.Hist)
	c.generatedMsgs += other.generatedMsgs
	c.deliveredMsgs += other.deliveredMsgs
	c.deliveredFlits += other.deliveredFlits
	c.injectedMsgs += other.injectedMsgs
	c.deadlocks += other.deadlocks
	c.faultEvents += other.faultEvents
	c.abortedMsgs += other.abortedMsgs
	c.retriedMsgs += other.retriedMsgs
	c.droppedMsgs += other.droppedMsgs
	c.fairness.Merge(other.fairness)
	c.mergeClasses(other)
	c.runs += other.runs
	if c.deliveredSeries != nil && other.deliveredSeries != nil {
		c.deliveredSeries.Merge(other.deliveredSeries)
	}
}

// Runs returns the number of measurement windows folded into this collector.
func (c *Collector) Runs() int64 { return c.runs }

// InWindow reports whether cycle t falls inside the measurement window.
func (c *Collector) InWindow(t int64) bool { return t >= c.winStart && t < c.winEnd }

// Window returns the measurement window [start, end).
func (c *Collector) Window() (start, end int64) { return c.winStart, c.winEnd }

// OnGenerated records the generation of a message by node src at cycle t
// and reports whether the message is measured (generated inside the window).
func (c *Collector) OnGenerated(t int64, src int) bool {
	if !c.InWindow(t) {
		return false
	}
	c.generatedMsgs++
	if c.classes != nil {
		c.classes[c.classOf[src]].generated++
	}
	return true
}

// OnInjected records that node injected a message at cycle t.
func (c *Collector) OnInjected(node int, t int64) {
	if !c.InWindow(t) {
		return
	}
	c.injectedMsgs++
	c.fairness.Inc(node)
	if c.classes != nil {
		c.classes[c.classOf[node]].injected++
	}
}

// OnDelivered records the delivery of a message from node src at cycle t.
// measured tells whether the message was generated inside the window;
// genTime and injTime are its generation and first-injection cycles.
func (c *Collector) OnDelivered(t, genTime, injTime int64, flits int, measured bool, src int) {
	inWin := c.InWindow(t)
	if inWin {
		c.deliveredMsgs++
		c.deliveredFlits += int64(flits)
	}
	if c.deliveredSeries != nil {
		c.deliveredSeries.Add(t, float64(flits))
	}
	var acc *classAcc
	if c.classes != nil {
		acc = &c.classes[c.classOf[src]]
		if inWin {
			acc.delivered++
			acc.deliveredFlits += int64(flits)
		}
	}
	if measured {
		lat := float64(t - genTime)
		c.Latency.Add(lat)
		c.Hist.Add(lat)
		if acc != nil {
			acc.latency.Add(lat)
		}
		if injTime >= 0 {
			c.NetLatency.Add(float64(t - injTime))
		}
	}
}

// OnDeadlock records a detected deadlock at cycle t.
func (c *Collector) OnDeadlock(t int64) {
	if c.InWindow(t) {
		c.deadlocks++
	}
}

// OnFault records the application of a fault event (a link or router
// failure — repairs are not counted) at cycle t.
func (c *Collector) OnFault(t int64) {
	if c.InWindow(t) {
		c.faultEvents++
	}
}

// OnAborted records a message killed at cycle t because a fault severed its
// path (or left it unroutable).
func (c *Collector) OnAborted(t int64) {
	if c.InWindow(t) {
		c.abortedMsgs++
	}
}

// OnRetried records a source retry scheduled at cycle t for a killed
// message.
func (c *Collector) OnRetried(t int64) {
	if c.InWindow(t) {
		c.retriedMsgs++
	}
}

// OnDropped records a message permanently dropped at cycle t.
func (c *Collector) OnDropped(t int64) {
	if c.InWindow(t) {
		c.droppedMsgs++
	}
}

// AcceptedTraffic returns the measured accepted traffic in
// flits/node/cycle, averaged over all merged runs.
func (c *Collector) AcceptedTraffic() float64 {
	cycles := (c.winEnd - c.winStart) * c.runs
	return float64(c.deliveredFlits) / float64(c.nodes) / float64(cycles)
}

// DeadlockRate returns detected deadlocks per injected message, in percent.
// It returns 0 when nothing was injected.
func (c *Collector) DeadlockRate() float64 {
	if c.injectedMsgs == 0 {
		return 0
	}
	return 100 * float64(c.deadlocks) / float64(c.injectedMsgs)
}

// Generated returns the number of measured generated messages.
func (c *Collector) Generated() int64 { return c.generatedMsgs }

// Delivered returns the number of messages delivered inside the window.
func (c *Collector) Delivered() int64 { return c.deliveredMsgs }

// Injected returns the number of messages injected inside the window.
func (c *Collector) Injected() int64 { return c.injectedMsgs }

// Deadlocks returns the number of deadlocks detected inside the window.
func (c *Collector) Deadlocks() int64 { return c.deadlocks }

// FaultEvents returns the number of failures applied inside the window.
func (c *Collector) FaultEvents() int64 { return c.faultEvents }

// Aborted returns the number of fault-killed messages inside the window.
func (c *Collector) Aborted() int64 { return c.abortedMsgs }

// Retried returns the number of source retries scheduled inside the window.
func (c *Collector) Retried() int64 { return c.retriedMsgs }

// Dropped returns the number of messages dropped inside the window.
func (c *Collector) Dropped() int64 { return c.droppedMsgs }

// Fairness returns the per-node injection counters.
func (c *Collector) Fairness() *Fairness { return c.fairness }

// EnableDeliverySeries starts recording flits delivered per interval across
// buckets covering cycles [0, n*interval). Call before the run starts.
func (c *Collector) EnableDeliverySeries(interval int64, n int) *TimeSeries {
	c.deliveredSeries = NewTimeSeries(interval, n)
	return c.deliveredSeries
}

// DeliverySeries returns the per-interval delivered-flit series, or nil if
// not enabled.
func (c *Collector) DeliverySeries() *TimeSeries { return c.deliveredSeries }

// Result is an immutable summary of a finished run, convenient for tables.
type Result struct {
	AvgLatency    float64 // cycles, including source-queue time
	StdLatency    float64 // standard deviation of latency
	AvgNetLatency float64 // cycles, network only
	P99Latency    float64 // 99th percentile upper bound
	Accepted      float64 // flits/node/cycle
	DeadlockPct   float64 // detected deadlocks per injected message (%)
	Delivered     int64
	Injected      int64
	Generated     int64
	WorstNodeDev  float64 // most negative per-node injection deviation (%)
	BestNodeDev   float64 // most positive per-node injection deviation (%)

	// Fault-injection measures (window counts; zero when faults are off).
	FaultEvents int64 // failures applied
	Aborted     int64 // messages killed by faults
	Retried     int64 // source retries scheduled
	Dropped     int64 // messages permanently dropped
}

// Result summarises the collector.
func (c *Collector) Result() Result {
	worst, best := c.fairness.Spread()
	return Result{
		AvgLatency:    c.Latency.Mean(),
		StdLatency:    c.Latency.StdDev(),
		AvgNetLatency: c.NetLatency.Mean(),
		P99Latency:    c.Hist.Quantile(0.99),
		Accepted:      c.AcceptedTraffic(),
		DeadlockPct:   c.DeadlockRate(),
		Delivered:     c.deliveredMsgs,
		Injected:      c.injectedMsgs,
		Generated:     c.generatedMsgs,
		WorstNodeDev:  worst,
		BestNodeDev:   best,
		FaultEvents:   c.faultEvents,
		Aborted:       c.abortedMsgs,
		Retried:       c.retriedMsgs,
		Dropped:       c.droppedMsgs,
	}
}
