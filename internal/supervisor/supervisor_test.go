package supervisor

import (
	"errors"
	"os"
	"syscall"
	"testing"
	"time"

	"wormnet/internal/baseline"
	"wormnet/internal/sim"
)

// quickConfig is a short healthy scenario.
func quickConfig() sim.Config {
	cfg := sim.QuickConfig()
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 300, 1200, 500
	return cfg
}

// stallConfig saturates the network without an injection limiter.
func stallConfig() sim.Config {
	cfg := sim.QuickConfig()
	cfg.Rate = 2.0
	cfg.Limiter = baseline.Factories()["none"]
	cfg.LimiterName = "none"
	return cfg
}

// stalledEngine manufactures a genuine livelock: saturate until deadlock
// knots form, stop the sources, and make software recovery never re-inject
// (its delay outlasts the run). The network drains except for the recovered
// messages, which stay in flight forever with zero progress.
func stalledEngine(t *testing.T) *sim.Engine {
	t.Helper()
	cfg := stallConfig()
	cfg.RecoveryDelay = 1 << 40
	e := newEngine(t, cfg)
	for e.Now() < 3000 {
		e.Step()
	}
	e.StopSources()
	return e
}

func newEngine(t *testing.T, cfg sim.Config) *sim.Engine {
	t.Helper()
	e, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// stateRecorder captures the lifecycle transitions.
type stateRecorder struct{ states []State }

func (r *stateRecorder) hook() func(State) {
	return func(s State) { r.states = append(r.states, s) }
}

// TestCompleted pins the happy path: same result as a bare Engine.Run, the
// full cycle range, and a running→stopped state sequence.
func TestCompleted(t *testing.T) {
	cfg := quickConfig()
	want := newEngine(t, cfg).Run()

	var rec stateRecorder
	e := newEngine(t, cfg)
	rep := Run(e, Options{OnState: rec.hook()})
	if rep.Outcome != Completed || rep.Err != nil {
		t.Fatalf("outcome %v err %v, want completed/nil", rep.Outcome, rep.Err)
	}
	if rep.Result != want {
		t.Errorf("supervised result diverged:\n got  %+v\n want %+v", rep.Result, want)
	}
	if rep.StartCycle != 0 || rep.EndCycle != cfg.TotalCycles() {
		t.Errorf("cycle range [%d,%d], want [0,%d]", rep.StartCycle, rep.EndCycle, cfg.TotalCycles())
	}
	if len(rec.states) != 2 || rec.states[0] != Running || rec.states[1] != Stopped {
		t.Errorf("state sequence %v, want [running stopped]", rec.states)
	}
}

// TestStalled pins livelock detection: a permanently deadlocked network is
// classified Stalled (not run to the bitter end), with a final checkpoint.
func TestStalled(t *testing.T) {
	e := stalledEngine(t)
	checkpoints := 0
	rep := Run(e, Options{
		StallWindow: 1000,
		CheckEvery:  128,
		Checkpoint:  func(*sim.Engine) error { checkpoints++; return nil },
	})
	if rep.Outcome != Stalled || !errors.Is(rep.Err, ErrStalled) {
		t.Fatalf("outcome %v err %v, want stalled/ErrStalled", rep.Outcome, rep.Err)
	}
	if rep.EndCycle >= stallConfig().TotalCycles() {
		t.Error("stalled run was not cut short")
	}
	if checkpoints != 1 {
		t.Errorf("%d final checkpoints, want 1", checkpoints)
	}
	if rep.CheckpointErr != nil {
		t.Errorf("final checkpoint error: %v", rep.CheckpointErr)
	}
}

// TestHealthySaturationIsNotStalled guards against false positives: the
// saturated scenario *with* recovery enabled keeps delivering and must
// complete under the same stall window.
func TestHealthySaturationIsNotStalled(t *testing.T) {
	rep := Run(newEngine(t, stallConfig()), Options{StallWindow: 1000, CheckEvery: 128})
	if rep.Outcome != Completed {
		t.Fatalf("outcome %v (err %v), want completed", rep.Outcome, rep.Err)
	}
}

// TestBudgets pins both budget types: each ends the run early with
// DeadlineExceeded, ErrBudget and a final checkpoint.
func TestBudgets(t *testing.T) {
	t.Run("cycles", func(t *testing.T) {
		e := newEngine(t, quickConfig())
		rep := Run(e, Options{CycleBudget: 500, CheckEvery: 64})
		if rep.Outcome != DeadlineExceeded || !errors.Is(rep.Err, ErrBudget) {
			t.Fatalf("outcome %v err %v, want deadline/ErrBudget", rep.Outcome, rep.Err)
		}
		// The budget is enforced at burst granularity.
		if ran := rep.EndCycle - rep.StartCycle; ran < 500 || ran >= 500+64 {
			t.Errorf("ran %d cycles on a 500-cycle budget (check every 64)", ran)
		}
	})
	t.Run("wall", func(t *testing.T) {
		e := newEngine(t, quickConfig())
		rep := Run(e, Options{WallBudget: time.Nanosecond})
		if rep.Outcome != DeadlineExceeded || !errors.Is(rep.Err, ErrBudget) {
			t.Fatalf("outcome %v err %v, want deadline/ErrBudget", rep.Outcome, rep.Err)
		}
	})
}

// TestCrashed pins panic containment: a panic anywhere in the supervised
// section becomes a Crashed report with a *PanicError (stack attached), and
// no final checkpoint is attempted afterwards.
func TestCrashed(t *testing.T) {
	e := newEngine(t, quickConfig())
	calls := 0
	rep := Run(e, Options{
		CheckpointEvery: 200,
		Checkpoint: func(*sim.Engine) error {
			calls++
			panic("disk on fire")
		},
	})
	if rep.Outcome != Crashed {
		t.Fatalf("outcome %v, want crashed", rep.Outcome)
	}
	var pe *PanicError
	if !errors.As(rep.Err, &pe) {
		t.Fatalf("err %v, want *PanicError", rep.Err)
	}
	if pe.Value != "disk on fire" || len(pe.Stack) == 0 {
		t.Errorf("PanicError{%v, %d bytes of stack}", pe.Value, len(pe.Stack))
	}
	if calls != 1 {
		t.Errorf("checkpoint called %d times after panic, want exactly 1 (no post-panic flush)", calls)
	}
}

// TestCheckpointWriteFailure pins that a failing periodic checkpoint crashes
// the run rather than silently continuing without durability.
func TestCheckpointWriteFailure(t *testing.T) {
	e := newEngine(t, quickConfig())
	boom := errors.New("enospc")
	rep := Run(e, Options{
		CheckpointEvery: 200,
		Checkpoint:      func(*sim.Engine) error { return boom },
	})
	if rep.Outcome != Crashed || !errors.Is(rep.Err, boom) {
		t.Fatalf("outcome %v err %v, want crashed wrapping the write error", rep.Outcome, rep.Err)
	}
}

// TestPeriodicCheckpointCadence counts periodic flushes on a healthy run.
func TestPeriodicCheckpointCadence(t *testing.T) {
	cfg := quickConfig()
	e := newEngine(t, cfg)
	var at []int64
	rep := Run(e, Options{
		CheckpointEvery: 500,
		CheckEvery:      64,
		Checkpoint:      func(e *sim.Engine) error { at = append(at, e.Now()); return nil },
	})
	if rep.Outcome != Completed {
		t.Fatalf("outcome %v (err %v)", rep.Outcome, rep.Err)
	}
	want := int(cfg.TotalCycles() / 500)
	if len(at) < want-1 || len(at) > want+1 {
		t.Errorf("%d periodic checkpoints over %d cycles at every=500", len(at), cfg.TotalCycles())
	}
	for i, c := range at {
		if c%64 != 0 && c != cfg.TotalCycles() {
			t.Errorf("checkpoint %d at cycle %d, not on a burst boundary", i, c)
		}
	}
}

// TestInterrupted pins graceful signal shutdown: a SIGUSR1 mid-run yields
// Interrupted, records the signal, flushes a final checkpoint and walks the
// running→draining→stopped states.
func TestInterrupted(t *testing.T) {
	cfg := quickConfig()
	e := newEngine(t, cfg)
	var rec stateRecorder
	fired := false
	finals := 0
	rep := Run(e, Options{
		Signals:         []os.Signal{syscall.SIGUSR1},
		CheckEvery:      32,
		CheckpointEvery: 100,
		OnState:         rec.hook(),
		Checkpoint: func(e *sim.Engine) error {
			if !fired {
				fired = true
				if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
					t.Fatal(err)
				}
				// Signal delivery is asynchronous (runtime signal goroutine →
				// channel); give it time to land before the next check.
				time.Sleep(100 * time.Millisecond)
			} else {
				finals++ // any call after the signal was raised
			}
			return nil
		},
	})
	if rep.Outcome != Interrupted || rep.Err != nil {
		t.Fatalf("outcome %v err %v, want interrupted/nil", rep.Outcome, rep.Err)
	}
	if rep.Signal != syscall.SIGUSR1 {
		t.Errorf("signal %v, want SIGUSR1", rep.Signal)
	}
	if rep.EndCycle >= cfg.TotalCycles() {
		t.Error("interrupted run was not cut short")
	}
	if finals == 0 {
		t.Error("no checkpoint flushed after the signal")
	}
	n := len(rec.states)
	if n < 3 || rec.states[0] != Running || rec.states[n-2] != Draining || rec.states[n-1] != Stopped {
		t.Errorf("state sequence %v, want running…draining,stopped", rec.states)
	}
}

// TestResumeComposition is the end-to-end robustness story: a run cut off by
// a cycle budget flushes a checkpoint, a fresh engine restores it, and the
// supervised remainder completes with exactly the uninterrupted result —
// at a different worker count than the first half.
func TestResumeComposition(t *testing.T) {
	cfg := quickConfig()
	want := newEngine(t, cfg).Run()

	var snap *sim.Snapshot
	first := newEngine(t, cfg)
	rep := Run(first, Options{
		CycleBudget: cfg.TotalCycles() / 2,
		Checkpoint: func(e *sim.Engine) error {
			s, err := e.Snapshot()
			snap = s
			return err
		},
	})
	if rep.Outcome != DeadlineExceeded || snap == nil {
		t.Fatalf("first half: outcome %v, snapshot %v", rep.Outcome, snap != nil)
	}

	rcfg := cfg
	rcfg.Workers = 4
	second, err := sim.RestoreEngine(rcfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	rep2 := Run(second, Options{StallWindow: 2000})
	if rep2.Outcome != Completed {
		t.Fatalf("second half: outcome %v (err %v)", rep2.Outcome, rep2.Err)
	}
	if rep2.StartCycle != rep.EndCycle {
		t.Errorf("resume started at %d, first half ended at %d", rep2.StartCycle, rep.EndCycle)
	}
	if rep2.Result != want {
		t.Errorf("resumed result diverged:\n got  %+v\n want %+v", rep2.Result, want)
	}
}
