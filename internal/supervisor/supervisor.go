// Package supervisor wraps an engine run with a watchdog: wall-clock and
// cycle budgets, stall detection, panic containment, signal-driven graceful
// shutdown, and periodic checkpoint flushing. It turns "the process died three
// hours in" into "the run ended with a classified outcome and a resumable
// checkpoint on disk".
//
// The supervisor drives the engine in short bursts of Step calls (CheckEvery
// cycles) and runs its checks between bursts, so every check — and every
// checkpoint — happens on a cycle boundary, where the engine's snapshot
// contract holds. The state machine is linear:
//
//	idle ──Run──▶ running ──signal──▶ draining ──▶ stopped
//	                 │
//	                 └──completed / stalled / budget / panic──▶ stopped
//
// Draining exists for observability (a /healthz endpoint can report it while
// the final checkpoint is written); the supervisor never runs further cycles
// once it leaves running.
package supervisor

import (
	"errors"
	"fmt"
	"os"
	"os/signal"
	"runtime/debug"
	"time"

	"wormnet/internal/sim"
	"wormnet/internal/stats"
)

// Outcome classifies how a supervised run ended.
type Outcome int

// Run outcomes.
const (
	// Completed: the engine reached its configured total cycle count.
	Completed Outcome = iota
	// Stalled: no message made terminal progress for StallWindow cycles
	// while work was still in flight — a livelock or unrecovered deadlock.
	Stalled
	// DeadlineExceeded: the wall-clock or cycle budget ran out.
	DeadlineExceeded
	// Crashed: the engine (or a checkpoint callback) panicked or errored;
	// Report.Err carries the typed cause.
	Crashed
	// Interrupted: a subscribed signal arrived; the run shut down cleanly.
	Interrupted
)

// String returns the outcome's stable lower-case name (used in manifests).
func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case Stalled:
		return "stalled"
	case DeadlineExceeded:
		return "deadline"
	case Crashed:
		return "crashed"
	case Interrupted:
		return "interrupted"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// State is the supervisor's externally visible lifecycle state.
type State int32

// Lifecycle states.
const (
	Idle State = iota
	Running
	Draining
	Stopped
)

// StateName returns the state's lower-case name (used by health endpoints).
func (s State) StateName() string {
	switch s {
	case Idle:
		return "idle"
	case Running:
		return "running"
	case Draining:
		return "draining"
	case Stopped:
		return "stopped"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// PanicError wraps a recovered panic from the supervised run.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("supervisor: run panicked: %v", e.Value)
}

// ErrStalled is the error carried by a Stalled report.
var ErrStalled = errors.New("supervisor: no progress while messages in flight")

// ErrBudget is the error carried by a DeadlineExceeded report.
var ErrBudget = errors.New("supervisor: budget exhausted")

// DefaultCheckEvery is the default burst length between watchdog checks.
const DefaultCheckEvery = 64

// Options configures a supervised run. The zero value runs the engine to
// completion with no budgets, no stall detection, no checkpoints and no
// signal handling — equivalent to Engine.Run with panic containment.
type Options struct {
	// WallBudget bounds the run's wall-clock time (0 = unlimited).
	WallBudget time.Duration
	// CycleBudget bounds how many cycles this invocation may execute,
	// counted from the engine's starting cycle (0 = unlimited). A resumed
	// run therefore gets a fresh budget.
	CycleBudget int64
	// StallWindow declares the run stalled when no message reaches a
	// terminal state (delivery or drop) for this many cycles while
	// messages are in flight (0 = disabled). Size it well above the
	// recovery re-injection delay, or a deep saturation transient will be
	// misread as a livelock.
	StallWindow int64
	// CheckEvery is the burst length between watchdog checks (and the
	// granularity of budgets, stall detection, signals and checkpoints).
	// <= 0 selects DefaultCheckEvery.
	CheckEvery int64
	// CheckpointEvery triggers the Checkpoint callback every so many
	// cycles (0 = periodic checkpoints off).
	CheckpointEvery int64
	// Checkpoint persists the engine's state; it is called on cycle
	// boundaries only — periodically per CheckpointEvery, and once more
	// on any non-completed, non-crashed exit. A returned error crashes
	// the run (a checkpoint that cannot be written is a broken contract,
	// not a warning); after a panic it is not called at all, since the
	// engine may be mid-cycle and its snapshot inconsistent.
	Checkpoint func(e *sim.Engine) error
	// Signals lists the signals that interrupt the run gracefully
	// (typically os.Interrupt and SIGTERM). Empty = no signal handling.
	Signals []os.Signal
	// OnState, if set, observes every lifecycle state change (health
	// endpoints hook here). Called synchronously from the run goroutine.
	OnState func(State)
}

// Report is the result of a supervised run.
type Report struct {
	Outcome Outcome
	// Err is nil for Completed and Interrupted; ErrStalled, ErrBudget or
	// a *PanicError (possibly wrapped) otherwise.
	Err error
	// StartCycle and EndCycle delimit the cycles this invocation ran.
	StartCycle, EndCycle int64
	// Wall is the elapsed wall-clock time.
	Wall time.Duration
	// Result is the run summary; only meaningful when Outcome is
	// Completed (partial-run statistics are still mid-measurement).
	Result stats.Result
	// CheckpointErr reports a failed *final* checkpoint flush — the run
	// outcome stands, but resuming it will replay from the last periodic
	// checkpoint instead.
	CheckpointErr error
	// Signal is the signal that ended an Interrupted run.
	Signal os.Signal
}

// Run drives e until it completes, breaks a budget, stalls, panics or is
// interrupted, and reports how it ended. The engine is stepped from its
// current cycle, so Run composes with checkpoint restore: restore, then
// supervise the remainder.
func Run(e *sim.Engine, opts Options) (rep Report) {
	checkEvery := opts.CheckEvery
	if checkEvery <= 0 {
		checkEvery = DefaultCheckEvery
	}
	setState := func(s State) {
		if opts.OnState != nil {
			opts.OnState(s)
		}
	}

	start := e.Now()
	total := e.Config().TotalCycles()
	t0 := time.Now()
	rep = Report{Outcome: Completed, StartCycle: start}
	finish := func() {
		rep.EndCycle = e.Now()
		rep.Wall = time.Since(t0)
		setState(Stopped)
	}

	// Panic containment: anything thrown by the engine or a callback
	// becomes a Crashed report. No checkpoint is flushed on this path —
	// the panic may have left the engine mid-cycle, and persisting an
	// inconsistent snapshot would poison the resume chain.
	defer func() {
		if r := recover(); r != nil {
			rep.Outcome = Crashed
			rep.Err = &PanicError{Value: r, Stack: debug.Stack()}
			rep.Result = stats.Result{}
			finish()
		}
	}()

	var sigCh chan os.Signal
	if len(opts.Signals) > 0 {
		sigCh = make(chan os.Signal, 1)
		signal.Notify(sigCh, opts.Signals...)
		defer signal.Stop(sigCh)
	}

	// finalCheckpoint flushes state for a resumable (non-completed) exit.
	finalCheckpoint := func() {
		if opts.Checkpoint != nil {
			rep.CheckpointErr = opts.Checkpoint(e)
		}
	}

	setState(Running)
	lastProgress := start // cycle of the last terminal-progress observation
	progress := e.Delivered() + e.Dropped()
	nextCheckpoint := int64(0)
	if opts.CheckpointEvery > 0 {
		nextCheckpoint = e.Now() + opts.CheckpointEvery
	}

	for e.Now() < total {
		burst := checkEvery
		if left := total - e.Now(); left < burst {
			burst = left
		}
		for i := int64(0); i < burst; i++ {
			e.Step()
		}

		// Signal: graceful interruption with a final checkpoint.
		if sigCh != nil {
			select {
			case sig := <-sigCh:
				setState(Draining)
				rep.Outcome = Interrupted
				rep.Signal = sig
				finalCheckpoint()
				finish()
				return rep
			default:
			}
		}

		// Budgets.
		if (opts.WallBudget > 0 && time.Since(t0) >= opts.WallBudget) ||
			(opts.CycleBudget > 0 && e.Now()-start >= opts.CycleBudget) {
			setState(Draining)
			rep.Outcome = DeadlineExceeded
			rep.Err = ErrBudget
			finalCheckpoint()
			finish()
			return rep
		}

		// Stall: nothing reached a terminal state for StallWindow cycles
		// while messages are still in flight.
		if p := e.Delivered() + e.Dropped(); p != progress {
			progress = p
			lastProgress = e.Now()
		} else if opts.StallWindow > 0 && e.InFlight() > 0 &&
			e.Now()-lastProgress >= opts.StallWindow {
			setState(Draining)
			rep.Outcome = Stalled
			rep.Err = fmt.Errorf("%w: stuck for %d cycles at cycle %d with %d in flight",
				ErrStalled, e.Now()-lastProgress, e.Now(), e.InFlight())
			finalCheckpoint()
			finish()
			return rep
		}

		// Periodic checkpoint.
		if nextCheckpoint > 0 && e.Now() >= nextCheckpoint {
			if err := opts.Checkpoint(e); err != nil {
				setState(Draining)
				rep.Outcome = Crashed
				rep.Err = fmt.Errorf("supervisor: periodic checkpoint at cycle %d: %w", e.Now(), err)
				finish()
				return rep
			}
			for nextCheckpoint <= e.Now() {
				nextCheckpoint += opts.CheckpointEvery
			}
		}
	}

	e.FlushMetrics()
	rep.Outcome = Completed
	rep.Result = e.Collector().Result()
	finish()
	return rep
}
