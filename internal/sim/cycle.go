package sim

import (
	"math/bits"

	"wormnet/internal/message"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
)

// Step advances the simulation by one cycle, running the five phases in
// order: generation, injection, virtual-channel allocation (with deadlock
// detection), switch allocation, and flit movement. When fault injection
// is active a fault phase runs first, applying scheduled failures at the
// cycle boundary; without a fault schedule the extra phase reduces to one
// nil check and the cycle is exactly the seed simulator's.
//
// Every phase is active-set scheduled: nodes with no buffered flits, no
// streaming injection channel and no pending source work are skipped
// outright, so an idle region of the network costs (close to) nothing per
// cycle. The skips are exact no-op eliminations — a skipped node would not
// have changed any state, including arbiter pointers — so results are
// bit-for-bit identical to exhaustive iteration (see TestGoldenDeterminism).
func (e *Engine) Step() {
	if e.par != nil {
		e.stepParallel()
		return
	}
	if e.metricsSampled() {
		// Sampling cycles run the identical phases with per-phase timers
		// and a gauge sample appended (metrics.go); results are unchanged.
		e.stepSerialSampled()
		e.now++
		return
	}
	if e.live != nil {
		e.phaseFaults()
	}
	e.phaseGenerate()
	e.phaseInject()
	e.phaseAllocate()
	e.phaseSwitch()
	e.phaseMove()
	if e.met != nil {
		e.met.flits.Add(int64(len(e.moves)))
	}
	e.now++
}

// phaseGenerate polls every node's traffic source and appends fresh
// messages to the source queues. Nodes whose source cannot fire yet
// (cached NextAt) are skipped without touching the source.
func (e *Engine) phaseGenerate() {
	if e.sourcesStopped {
		return
	}
	for i := range e.nodes {
		nd := &e.nodes[i]
		if e.now < nd.nextGen {
			continue // Poll is guaranteed a no-op before nextGen
		}
		if e.live != nil && !e.live.RouterAlive(nd.id) {
			continue // a dead router generates nothing
		}
		e.genScratch = nd.src.Poll(e.now, e.genScratch[:0])
		nd.nextGen = nd.src.NextAt()
		for _, g := range e.genScratch {
			m := e.newMessage(nd.id, g.Dst, g.Length)
			m.Measured = e.col.OnGenerated(e.now, int(nd.id))
			nd.queue.Push(m)
			e.emit(trace.KindGenerated, m, nd.id)
		}
	}
}

// phaseInject runs the per-node limiter tick, then assigns free injection
// channels: recovered messages first (they bypass the limiter — draining
// them relieves the congestion that deadlocked them), then source-queue
// messages in FIFO order, each gated by the injection limiter. A denied
// queue head blocks the messages behind it, preserving the paper's
// "pending messages have higher priority than newer ones".
func (e *Engine) phaseInject() {
	for i := range e.nodes {
		nd := &e.nodes[i]
		if e.live != nil {
			if !e.live.RouterAlive(nd.id) {
				continue // a dead router injects nothing
			}
			// Shed head-of-line messages whose destination router died:
			// they can never be delivered, and letting them enter would
			// only wedge traffic near the failure.
			for len(nd.recovery) > 0 && nd.recovery[0].readyAt <= e.now &&
				!e.live.RouterAlive(nd.recovery[0].msg.Dst) {
				m := nd.recovery[0].msg
				nd.recovery[0] = pendingRecovery{}
				nd.recovery = nd.recovery[1:]
				e.drop(m, nd.id, message.DropUnreachable)
			}
			for !nd.queue.Empty() && !e.live.RouterAlive(nd.queue.Front().Dst) {
				e.drop(nd.queue.PopFront(), nd.id, message.DropUnreachable)
			}
		}
		// Nothing to tick and nothing to inject: skip. Limiters with a
		// per-cycle hook (DRIL's window counter) must tick every cycle, so
		// their nodes never take this fast path.
		if nd.limObs == nil && nd.queue.Empty() && len(nd.recovery) == 0 {
			continue
		}
		if nd.limObs != nil {
			nd.limObs.Tick(nd.view, e.now)
		}
		for c := range nd.inj {
			ic := &nd.inj[c]
			if ic.msg != nil {
				continue
			}
			if len(nd.recovery) > 0 && nd.recovery[0].readyAt <= e.now {
				ic.msg = nd.recovery[0].msg
				nd.recovery[0] = pendingRecovery{}
				nd.recovery = nd.recovery[1:]
				ic.msg.State = message.StateInjecting
				ic.route = routeInfo{}
				ic.left = int32(ic.msg.Length)
				ic.len = ic.left
				ic.dst = ic.msg.Dst
				nd.busyInj++
				if e.spans != nil {
					e.spanClaim(ic.msg, nd.id)
				}
				continue
			}
			if nd.queue.Empty() {
				continue
			}
			m := nd.queue.Front()
			// Rogue nodes (Config.Adversary) never consult the limiter:
			// bypassing it is the whole attack.
			if !nd.rogue && !nd.limiter.Allow(nd.view, m.Dst) {
				if e.met != nil {
					e.noteDeny(nd, m.Dst)
				}
				if e.spans != nil {
					e.spanDeny(nd, m)
				}
				e.emit(trace.KindThrottled, m, nd.id)
				break // FIFO: do not bypass a throttled queue head
			}
			if e.met != nil {
				e.met.admitted.Inc()
			}
			nd.queue.PopFront()
			ic.msg = m
			ic.route = routeInfo{}
			ic.left = int32(m.Length)
			ic.len = ic.left
			ic.dst = m.Dst
			nd.busyInj++
			m.State = message.StateInjecting
			if e.spans != nil {
				e.spanClaim(m, nd.id)
			}
		}
	}
}

// phaseAllocate routes header flits: every input virtual channel whose
// front flit is an unrouted header executes the routing function and tries
// to claim an output virtual channel (or an ejection channel at the
// destination); injection channels do the same for messages about to enter
// the network. Headers that fail allocation feed the deadlock detector.
//
// The rotating start index is derived from the cycle counter rather than
// stored per node: the per-node pointer advanced by exactly one every
// cycle regardless of activity, so it always equalled now % nAgents —
// deriving it makes skipping idle nodes free of state drift.
func (e *Engine) phaseAllocate() {
	e.allocRange(0, len(e.nodes))
}

// allocRange runs the allocation phase for nodes [lo, hi). It is the whole
// phase on the serial path and one shard's slice of it on the parallel path:
// every read outside the node itself — neighbour empty-status words, the
// candidate table — is stable for the duration of the phase, and every write
// lands on the node's own state, so disjoint ranges commute (see
// parallel.go for the full argument, including why recovery and fault kills
// never run inside a parallel allocation phase).
func (e *Engine) allocRange(lo, hi int) {
	nVC := e.numPhys * e.cfg.VCs
	start := int(e.now % int64(nVC))
	// The rotating agent order start, start+1, …, nVC-1, 0, …, start-1 is
	// equivalent to: the start port's VCs from the start VC up, the
	// remaining ports in wrapping order, then the start port's VCs below
	// the start VC. Each port's occupied VCs come off its not-empty status
	// word, so empty channels are never touched.
	ps := start / e.cfg.VCs
	vcsMask := uint32(1)<<uint(e.cfg.VCs) - 1
	hiMask := vcsMask &^ (uint32(1)<<uint(start%e.cfg.VCs) - 1)
	for i := lo; i < hi; i++ {
		nd := &e.nodes[i]
		if nd.occVCs == 0 && nd.busyInj == 0 {
			continue
		}
		if nd.occVCs > 0 {
			e.allocWalk(nd, ps, hiMask)
			for p := ps + 1; p < e.numPhys; p++ {
				e.allocWalk(nd, p, vcsMask)
			}
			for p := 0; p < ps; p++ {
				e.allocWalk(nd, p, vcsMask)
			}
			e.allocWalk(nd, ps, vcsMask&^hiMask)
		}
		// Injection channels route after the network traffic.
		if nd.busyInj > 0 {
			for c := range nd.inj {
				ic := &nd.inj[c]
				if ic.msg == nil || ic.route.valid || ic.left < ic.len {
					continue
				}
				route, ok, _, unroutable := e.allocate(nd, ic.msg, ic.dst)
				switch {
				case ok:
					ic.route = route
					nd.freshInj |= 1 << uint(c)
					if e.spans != nil {
						e.spanAlloc(ic.msg)
					}
				case unroutable:
					e.kill(ic.msg, nd.id)
				}
			}
		}
	}
}

// allocWalk runs header allocation for the occupied, unrouted input VCs of
// one port (restricted to the VCs in mask), in ascending VC order. Channels
// that already hold a route never reach allocateVC: they are masked out by
// the routed status word.
func (e *Engine) allocWalk(nd *node, p int, mask uint32) {
	w := ^nd.inEmpty[p] &^ nd.routed[p] & mask
	base := p * e.cfg.VCs
	for w != 0 {
		v := bits.TrailingZeros32(w)
		w &= w - 1
		e.allocateVC(nd, base+v)
	}
}

// allocateVC is one iteration of the allocation walk: route the header at
// input virtual channel (agent index) a of node nd, feeding the deadlock
// detector on failure.
func (e *Engine) allocateVC(nd *node, a int) {
	ivc := &nd.in[a]
	// The status words are sampled at the start of each port's walk; a
	// deadlock recovery triggered behind it can empty a buffer mid-walk, so
	// the emptiness check stays live.
	if ivc.buf.Empty() {
		return
	}
	// An unrouted, non-empty VC fronts the message's header flit (routes
	// outlive the message's traversal of the buffer), so the owner cache
	// identifies it without touching flit storage, and the dst cache spares
	// the allocator the message dereference entirely.
	m := ivc.owner
	route, ok, vital, unroutable := e.allocate(nd, m, ivc.dst)
	if ok {
		nd.routes[a] = route
		p := e.portTab[a]
		nd.routed[p] |= e.vcBit[a]
		nd.fresh[p] |= e.vcBit[a]
		if route.eject {
			nd.swDesc[a] = uint16(e.numPhys+int(route.ejCh)) << 8
		} else {
			nd.swDesc[a] = uint16(route.outPort)<<8 | uint16(route.outVC)
		}
		nd.blocked.Progress(a)
		if e.spans != nil {
			e.spanAlloc(m)
		}
		return
	}
	if unroutable {
		// Faults left the header with no admissible channel at all: the
		// wormhole can never advance from here. Sever it and hand it back
		// to the source-retry machinery.
		e.kill(m, nd.id)
		return
	}
	if ivc.dst == nd.id {
		// Waiting for an ejection channel: always drains eventually, never
		// a deadlock.
		nd.blocked.Progress(a)
		return
	}
	// FC3D-style criterion: only sustained stillness counts. Any sign of
	// life on the header's candidate channels — a free virtual channel or a
	// recent flit transmission — resets the blockage counter.
	if vital {
		nd.blocked.Progress(a)
		return
	}
	if e.det.Deadlocked(nd.blocked.Blocked(a), false) {
		nd.blocked.Progress(a)
		e.recover(m, nd)
	}
}

// allocate claims an output virtual channel (or ejection channel) for
// message m (dst is the caller's cached copy of m.Dst, so the common
// retry path never loads the message struct) whose header is at node nd.
// It reports whether allocation
// succeeded, whether the candidate set shows any "vital sign" — an
// unallocated virtual channel or one that transmitted a flit within the
// last cycle — which vetoes the deadlock presumption, and whether faults
// left the header with no admissible channel at all (unroutable; only ever
// true when fault injection is active, since minimal routing otherwise
// always yields candidates).
//
// The selection runs entirely on the per-port status words: a port's
// allocatable VCs are freeMask & candidates & downstream-empty, its first
// admissible VC the lowest set bit (candidates are emitted in ascending VC
// order), and its load score a popcount. The vital-sign scan — the only
// part needing per-VC timestamps — runs only when allocation failed.
func (e *Engine) allocate(nd *node, m *message.Message, dst topology.NodeID) (routeInfo, bool, bool, bool) {
	if dst == nd.id {
		for c := range nd.ej {
			if nd.ej[c].msg == nil {
				nd.ej[c].msg = m
				return routeInfo{valid: true, eject: true, ejCh: int8(c), epoch: uint16(e.epoch)}, true, false, false
			}
		}
		return routeInfo{}, false, false, false
	}
	// Candidate lookup: the deduplicated table serves every lookup — the set
	// id array is the only sizeable state it touches, and a blocked header
	// retrying the same destination re-reads the same entry every cycle, so
	// retries stay cache-hot. Fault-capable runs rebuild the table at every
	// routing epoch flip, so the entry always reflects the current liveness
	// mask; faults can leave a header with no candidates at all.
	cands := e.cand.get(nd.id, dst)
	if len(cands) == 0 {
		return routeInfo{}, false, false, true
	}

	bestPort := topology.Port(-1)
	bestVC := int8(-1)
	bestScore := -1
	bestPref := 1 << 30
	rot := int(e.now) % e.numPhys // rotating tie-break among equal ports

	// anyFree doubles as the first vital sign (an unallocated candidate VC):
	// computing it here lets ports with no free candidate VC skip the
	// downstream-status dereference, and the failure path below skip a
	// second scan.
	anyFree := false
	for _, pc := range cands {
		fm := nd.freeMask[pc.port] & pc.mask
		if fm == 0 {
			continue
		}
		anyFree = true
		avail := fm & e.emptyArena[nd.downWord[pc.port]]
		if avail == 0 {
			continue
		}
		// Prefer the least-multiplexed useful channel (most free VCs); the
		// paper's model assumes adaptive routing spreads virtual-channel
		// load across physical channels this way. Ties rotate.
		score := bits.OnesCount32(nd.freeMask[pc.port])
		pref := int(pc.port) - rot // rotating distance, without the division
		if pref < 0 {
			pref += e.numPhys
		}
		if score > bestScore || (score == bestScore && pref < bestPref) {
			bestScore, bestPref = score, pref
			bestPort = pc.port
			bestVC = int8(bits.TrailingZeros32(avail))
		}
	}
	if bestPort < 0 {
		// Nothing allocatable: the deadlock detector's remaining vital sign
		// is a recent transmission on a busy candidate VC.
		vital := anyFree
		if !vital && !e.cfg.LenientDetection {
		active:
			for _, pc := range cands {
				busy := pc.mask &^ nd.freeMask[pc.port]
				base := int(pc.port) * e.cfg.VCs
				for busy != 0 {
					v := bits.TrailingZeros32(busy)
					busy &= busy - 1
					if nd.lastTx[base+v] >= e.now-1 {
						vital = true
						break active
					}
				}
			}
		}
		return routeInfo{}, false, vital, false
	}
	nd.out[bestPort].VCs[bestVC].Allocate(m)
	nd.freeMask[bestPort] &^= 1 << uint(bestVC)
	m.Path = append(m.Path, pathLoc{
		Node: nd.nbr[bestPort].id, Port: topology.Opposite(bestPort), VC: bestVC,
	})
	return routeInfo{valid: true, outPort: bestPort, outVC: bestVC, epoch: uint16(e.epoch)}, true, true, false
}

// phaseSwitch performs separable switch allocation per node — at most one
// flit per input port and per output port per cycle, round-robin at both
// stages — and plans the cycle's flit moves against start-of-cycle buffer
// state.
func (e *Engine) phaseSwitch() {
	e.moves = e.switchRange(0, len(e.nodes), e.reqsFlat, e.moves[:0])
}

// switchRange runs switch allocation for nodes [lo, hi), appending the
// planned moves to moves and returning it. reqsFlat is the caller's request
// scratch (the engine's own on the serial path, per-shard on the parallel
// path, where concurrent shards must not share it). Arbiters and status
// words are all per-node state; the only outside reads are the downstream
// full-status words, which no one writes during the phase.
func (e *Engine) switchRange(lo, hi int, reqsFlat []int32, moves []move) []move {
	// Hot engine state hoisted into locals: the loop bodies below call no
	// function that could change any of it, and keeping the values out of
	// pointer-chased fields lets the compiler hold them in registers.
	numPhys := e.numPhys
	vcs := e.cfg.VCs
	nVC := numPhys * vcs
	nAgents := e.agentCount()
	fullArena := e.fullArena
	// reqLen[o] counts the requests collected for output port o of the node
	// currently under allocation; the requests themselves sit in the flat
	// per-engine scratch at reqsFlat[o*nAgents:], each packed as
	// agent<<16 | outVC<<8 | crossbar-input-port. Port and output VC are
	// known for free at collection time, so the grant stage below runs on
	// the packed words alone — no route or injection-channel loads per
	// candidate. Re-zeroing a 32-entry stack array per active node
	// replaces the stamped-slice bookkeeping.
	var reqLen [32]uint16
	for ni := lo; ni < hi; ni++ {
		nd := &e.nodes[ni]
		if nd.occVCs == 0 && nd.busyInj == 0 {
			continue // no flit anywhere: no requests, no arbiter movement
		}
		reqLen = [32]uint16{}
		// reqMask collects which output ports received at least one request,
		// so the grant stage iterates exactly those instead of scanning all.
		reqMask := uint32(0)

		// Collect requests from the occupied AND routed input virtual
		// channels, skipping ones routed this very cycle (fresh masks;
		// movement starts the cycle after allocation): an unrouted channel
		// has nothing to forward yet, a routed but drained one nothing to
		// forward with. The forwarding data comes from the two-byte switch
		// descriptors written at allocation, not the routeInfo structs.
		for p := 0; p < numPhys; p++ {
			w := ^nd.inEmpty[p] & nd.routed[p] &^ nd.fresh[p]
			nd.fresh[p] = 0
			for w != 0 {
				v := bits.TrailingZeros32(w)
				w &= w - 1
				a := p*vcs + v
				d := nd.swDesc[a]
				o := int(d >> 8)
				if o < numPhys &&
					fullArena[nd.downWord[o]]&(1<<uint(d&0xff)) != 0 {
					continue // no credit: the downstream buffer is full
				}
				reqsFlat[o*nAgents+int(reqLen[o])] = int32(a)<<16 |
					int32(d&0xff)<<8 | int32(p)
				reqLen[o]++
				reqMask |= 1 << uint(o)
			}
		}
		// ... and from injection channels.
		freshInj := nd.freshInj
		nd.freshInj = 0
		if nd.busyInj > 0 {
			for c := range nd.inj {
				ic := &nd.inj[c]
				if ic.msg == nil || !ic.route.valid || freshInj>>uint(c)&1 != 0 ||
					ic.left <= 0 {
					continue
				}
				o := int(ic.route.outPort)
				if ic.route.eject {
					o = numPhys + int(ic.route.ejCh)
				} else if fullArena[nd.downWord[o]]&(1<<uint(ic.route.outVC)) != 0 {
					continue
				}
				reqsFlat[o*nAgents+int(reqLen[o])] = int32(nVC+c)<<16 |
					int32(ic.route.outVC)<<8 | int32(numPhys+c)
				reqLen[o]++
				reqMask |= 1 << uint(o)
			}
		}

		// Grant one requester per output port, honouring the one-flit-per-
		// input-port crossbar constraint (grantedMask: crossbar input ports
		// already granted this node). Walking the request mask from the top,
		// ejection "ports" (the highest indices) go first so that draining
		// traffic is never starved by through traffic.
		grantedMask := uint32(0)
		for reqMask != 0 {
			o := bits.Len32(reqMask) - 1
			reqMask &^= 1 << uint(o)
			// Inline router.RoundRobin.GrantFrom with the input-port-free
			// admissibility check: among the candidates whose crossbar input
			// port is still ungranted, pick the one closest after the
			// arbiter's rotating pointer. Inlining avoids an indirect
			// closure call per candidate on the hottest arbitration loop.
			arb := &nd.outArb[o]
			next := arb.Next()
			best := int32(-1)
			bestDist := nAgents
			base := o * nAgents
			for _, c := range reqsFlat[base : base+int(reqLen[o])] {
				if grantedMask>>uint(c&0xff)&1 != 0 {
					continue
				}
				d := int(c>>16) - next
				if d < 0 {
					d += nAgents
				}
				if d < bestDist {
					bestDist = d
					best = c
				}
			}
			if best < 0 {
				continue
			}
			agent := best >> 16
			arb.Advance(int(agent))
			grantedMask |= 1 << uint(best&0xff)
			mv := move{node: int32(ni), agent: agent}
			if o >= numPhys {
				mv.eject = true
				mv.ejCh = int8(o - numPhys)
			} else {
				mv.outPort = topology.Port(o)
				mv.outVC = int8(best >> 8 & 0xff)
			}
			moves = append(moves, mv)
		}
	}
	return moves
}

// The credit condition for a forward move is that the receiving
// virtual-channel buffer (node.down[port*VCs+vc]) has a slot free at the
// start of the cycle: a one-cycle credit loop. Each buffer has a single
// upstream sender and one grant per output port, so the check is exact.

// phaseMove applies the planned flit transfers: pops from input buffers or
// injection channels, pushes into downstream buffers or ejection sinks, and
// performs all the bookkeeping that head and tail flits trigger (channel
// release, path tracking, delivery accounting, active-set counters).
func (e *Engine) phaseMove() {
	// Hot engine state hoisted into locals (no callee below mutates any of
	// it), so the compiler need not reload the fields across calls.
	vcs := e.cfg.VCs
	nVC := e.numPhys * vcs
	now := e.now
	portTab := e.portTab
	vcBit := e.vcBit
	vcOf := e.vcOf
	emptyArena := e.emptyArena
	fullArena := e.fullArena
	for _, mv := range e.moves {
		nd := &e.nodes[mv.node]
		var flit message.Flit

		if a := int(mv.agent); a < nVC {
			ivc := &nd.in[a]
			flit = ivc.buf.Pop()
			p := portTab[a]
			bit := vcBit[a]
			nd.inFull[p] &^= bit
			if ivc.buf.Empty() {
				nd.inEmpty[p] |= bit
				nd.occVCs--
			}
			if flit.Tail {
				nd.routes[a] = routeInfo{}
				nd.routed[p] &^= bit
				nd.blocked.Progress(a)
				e.removePathLoc(flit.Msg, pathLoc{
					Node: nd.id, Port: topology.Port(p), VC: vcOf[a],
				})
			}
		} else {
			// The flit is built from the channel's cached counters, and the
			// message's FlitsSent is settled when the tail leaves: body
			// flits never touch the (cold) message struct.
			ic := &nd.inj[a-nVC]
			m := ic.msg
			seq := ic.len - ic.left
			flit = message.Flit{Msg: m, Seq: seq, Head: seq == 0, Tail: ic.left == 1}
			ic.left--
			if flit.Head && m.InjectTime < 0 {
				m.InjectTime = now
				e.col.OnInjected(int(nd.id), now)
				e.emit(trace.KindInjected, m, nd.id)
				if e.spans != nil {
					e.spanInject(m)
				}
			}
			if flit.Tail {
				m.FlitsSent = int(ic.len)
				ic.msg = nil
				ic.route = routeInfo{}
				nd.busyInj--
				m.State = message.StateInNetwork
			}
		}

		m := flit.Msg
		if mv.eject {
			// Body flits charge the ejection channel's pending counter;
			// the message is debited once, when the tail arrives — so
			// consuming a flit touches only this hot little struct.
			ej := &nd.ej[mv.ejCh]
			if !flit.Tail {
				ej.pending++
				continue
			}
			m.FlitsEjected += int(ej.pending) + 1
			ej.pending = 0
			ej.msg = nil
			m.State = message.StateDelivered
			m.DeliverTime = now
			e.delivered++
			m.Path = m.Path[:0]
			e.col.OnDelivered(now, m.GenTime, m.InjectTime, m.Length, m.Measured, int(m.Src))
			e.emit(trace.KindDelivered, m, nd.id)
			if e.spans != nil {
				e.spanDeliver(m)
			}
			e.releaseMessage(m)
			continue
		}

		nd.lastTx[int(mv.outPort)*vcs+int(mv.outVC)] = now
		bit := uint32(1) << uint(mv.outVC)
		if flit.Tail && nd.out[mv.outPort].VCs[mv.outVC].ReleaseIfOwner(m) {
			nd.freeMask[mv.outPort] |= bit
		}
		dvc := nd.down[int(mv.outPort)*vcs+int(mv.outVC)]
		if dvc.buf.Empty() {
			nd.nbr[mv.outPort].occVCs++
			emptyArena[nd.downWord[mv.outPort]] &^= bit
		}
		if flit.Head {
			// The buffer holds one message at a time, so the owner/dst
			// caches only need (re-)writing when a new head moves in.
			dvc.owner = m
			dvc.dst = m.Dst
			if e.spans != nil {
				e.spanHopArrive(m, nd.nbr[mv.outPort].id)
			}
		}
		dvc.buf.Push(flit)
		if dvc.buf.Full() {
			fullArena[nd.downWord[mv.outPort]] |= bit
		}
	}
}

// removePathLoc drops one location from a message's tracked path. The tail
// leaves buffers in path order, so the match is normally the front entry;
// the scan is defensive.
func (e *Engine) removePathLoc(m *message.Message, loc pathLoc) {
	for i, l := range m.Path {
		if l == loc {
			m.Path = append(m.Path[:i], m.Path[i+1:]...)
			return
		}
	}
}
