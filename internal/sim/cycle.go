package sim

import (
	"wormnet/internal/core"
	"wormnet/internal/message"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
)

// Step advances the simulation by one cycle, running the five phases in
// order: generation, injection, virtual-channel allocation (with deadlock
// detection), switch allocation, and flit movement. When fault injection
// is active a fault phase runs first, applying scheduled failures at the
// cycle boundary; without a fault schedule the extra phase reduces to one
// nil check and the cycle is exactly the seed simulator's.
func (e *Engine) Step() {
	if e.live != nil {
		e.phaseFaults()
	}
	e.phaseGenerate()
	e.phaseInject()
	e.phaseAllocate()
	e.phaseSwitch()
	e.phaseMove()
	e.now++
}

// phaseGenerate polls every node's traffic source and appends fresh
// messages to the source queues.
func (e *Engine) phaseGenerate() {
	if e.sourcesStopped {
		return
	}
	for _, nd := range e.nodes {
		if e.live != nil && !e.live.RouterAlive(nd.id) {
			continue // a dead router generates nothing
		}
		e.genScratch = nd.src.Poll(e.now, e.genScratch[:0])
		for _, g := range e.genScratch {
			m := message.New(e.nextID, nd.id, g.Dst, g.Length, e.now)
			e.nextID++
			m.Measured = e.col.OnGenerated(e.now)
			nd.queue = append(nd.queue, m)
			e.generated++
			e.emit(trace.KindGenerated, m, nd.id)
		}
	}
}

// phaseInject runs the per-node limiter tick, then assigns free injection
// channels: recovered messages first (they bypass the limiter — draining
// them relieves the congestion that deadlocked them), then source-queue
// messages in FIFO order, each gated by the injection limiter. A denied
// queue head blocks the messages behind it, preserving the paper's
// "pending messages have higher priority than newer ones".
func (e *Engine) phaseInject() {
	for _, nd := range e.nodes {
		if e.live != nil {
			if !e.live.RouterAlive(nd.id) {
				continue // a dead router injects nothing
			}
			// Shed head-of-line messages whose destination router died:
			// they can never be delivered, and letting them enter would
			// only wedge traffic near the failure.
			for len(nd.recovery) > 0 && nd.recovery[0].readyAt <= e.now &&
				!e.live.RouterAlive(nd.recovery[0].msg.Dst) {
				m := nd.recovery[0].msg
				nd.recovery[0] = pendingRecovery{}
				nd.recovery = nd.recovery[1:]
				e.drop(m, nd.id, message.DropUnreachable)
			}
			for len(nd.queue) > 0 && !e.live.RouterAlive(nd.queue[0].Dst) {
				m := nd.queue[0]
				nd.queue[0] = nil
				nd.queue = nd.queue[1:]
				e.drop(m, nd.id, message.DropUnreachable)
			}
		}
		view := channelView{e: e, nd: nd}
		if obs, ok := nd.limiter.(core.CycleObserver); ok {
			obs.Tick(view, e.now)
		}
		for i := range nd.inj {
			ic := &nd.inj[i]
			if ic.msg != nil {
				continue
			}
			if len(nd.recovery) > 0 && nd.recovery[0].readyAt <= e.now {
				ic.msg = nd.recovery[0].msg
				nd.recovery[0] = pendingRecovery{}
				nd.recovery = nd.recovery[1:]
				ic.msg.State = message.StateInjecting
				ic.route = routeInfo{}
				continue
			}
			if len(nd.queue) == 0 {
				continue
			}
			m := nd.queue[0]
			if !nd.limiter.Allow(view, m.Dst) {
				e.emit(trace.KindThrottled, m, nd.id)
				break // FIFO: do not bypass a throttled queue head
			}
			nd.queue[0] = nil
			nd.queue = nd.queue[1:]
			ic.msg = m
			ic.route = routeInfo{}
			m.State = message.StateInjecting
		}
	}
}

// phaseAllocate routes header flits: every input virtual channel whose
// front flit is an unrouted header executes the routing function and tries
// to claim an output virtual channel (or an ejection channel at the
// destination); injection channels do the same for messages about to enter
// the network. Headers that fail allocation feed the deadlock detector.
func (e *Engine) phaseAllocate() {
	for _, nd := range e.nodes {
		nAgents := e.numPhys * e.cfg.VCs
		start := nd.allocRR
		nd.allocRR = (nd.allocRR + 1) % nAgents
		for off := 0; off < nAgents; off++ {
			idx := (start + off) % nAgents
			p := topology.Port(idx / e.cfg.VCs)
			v := int8(idx % e.cfg.VCs)
			ivc := &nd.in[p][v]
			if ivc.route.valid || ivc.buf.Empty() {
				continue
			}
			front := ivc.buf.Front()
			if !front.Head {
				// A body flit at the front of an unrouted VC cannot happen:
				// routes outlive the message's traversal of the buffer.
				continue
			}
			m := front.Msg
			route, ok, vital, unroutable := e.allocate(nd, m)
			if ok {
				ivc.route = route
				nd.blocked.Progress(idx)
				continue
			}
			if unroutable {
				// Faults left the header with no admissible channel at
				// all: the wormhole can never advance from here. Sever it
				// and hand it back to the source-retry machinery.
				e.kill(m, nd.id)
				continue
			}
			if m.Dst == nd.id {
				// Waiting for an ejection channel: always drains
				// eventually, never a deadlock.
				nd.blocked.Progress(idx)
				continue
			}
			// FC3D-style criterion: only sustained stillness counts. Any
			// sign of life on the header's candidate channels — a free
			// virtual channel or a recent flit transmission — resets the
			// blockage counter.
			if vital {
				nd.blocked.Progress(idx)
				continue
			}
			if e.det.Deadlocked(nd.blocked.Blocked(idx), false) {
				nd.blocked.Progress(idx)
				e.recover(m, nd)
			}
		}
		// Injection channels route after the network traffic.
		for i := range nd.inj {
			ic := &nd.inj[i]
			if ic.msg == nil || ic.route.valid || ic.msg.FlitsSent > 0 {
				continue
			}
			route, ok, _, unroutable := e.allocate(nd, ic.msg)
			switch {
			case ok:
				ic.route = route
			case unroutable:
				e.kill(ic.msg, nd.id)
			}
		}
	}
}

// allocate claims an output virtual channel (or ejection channel) for
// message m whose header is at node nd. It reports whether allocation
// succeeded, whether the candidate set shows any "vital sign" — an
// unallocated virtual channel or one that transmitted a flit within the
// last cycle — which vetoes the deadlock presumption, and whether faults
// left the header with no admissible channel at all (unroutable; only ever
// true when fault injection is active, since minimal routing otherwise
// always yields candidates).
func (e *Engine) allocate(nd *node, m *message.Message) (routeInfo, bool, bool, bool) {
	if m.Dst == nd.id {
		for c := range nd.ej {
			if nd.ej[c].msg == nil {
				nd.ej[c].msg = m
				return routeInfo{valid: true, eject: true, ejCh: int8(c), assignedAt: e.now}, true, false, false
			}
		}
		return routeInfo{}, false, false, false
	}
	cands := e.alg.Candidates(nd.id, m.Dst, nd.scratchCands[:0])
	nd.scratchCands = cands[:0]
	if e.live != nil && len(cands) == 0 {
		return routeInfo{}, false, false, true
	}

	anyFree := false
	bestPort := topology.Port(-1)
	bestVC := int8(-1)
	bestScore := -1
	bestPref := 1 << 30
	rot := int(e.now) % e.numPhys // rotating tie-break among equal ports

	anyActive := false
	for i := 0; i < len(cands); {
		p := cands[i].Port
		allocVC := int8(-1)
		for ; i < len(cands) && cands[i].Port == p; i++ {
			v := cands[i].VC
			if !nd.out[p].VCs[v].Free() {
				if !e.cfg.LenientDetection && nd.lastTx[int(p)*e.cfg.VCs+int(v)] >= e.now-1 {
					anyActive = true
				}
				continue
			}
			anyFree = true
			if allocVC >= 0 {
				continue
			}
			if nd.downBuf[p][v].Empty() {
				allocVC = v
			}
		}
		if allocVC < 0 {
			continue
		}
		// Prefer the least-multiplexed useful channel (most free VCs); the
		// paper's model assumes adaptive routing spreads virtual-channel
		// load across physical channels this way. Ties rotate.
		score := nd.out[p].FreeVCs()
		pref := (int(p) - rot + e.numPhys) % e.numPhys
		if score > bestScore || (score == bestScore && pref < bestPref) {
			bestScore, bestPref = score, pref
			bestPort, bestVC = p, allocVC
		}
	}
	if bestPort < 0 {
		return routeInfo{}, false, anyFree || anyActive, false
	}
	nd.out[bestPort].VCs[bestVC].Allocate(m)
	e.paths[m] = append(e.paths[m], pathLoc{
		node: nd.nbr[bestPort].id, port: topology.Opposite(bestPort), vc: bestVC,
	})
	return routeInfo{valid: true, outPort: bestPort, outVC: bestVC, assignedAt: e.now}, true, true, false
}

// phaseSwitch performs separable switch allocation per node — at most one
// flit per input port and per output port per cycle, round-robin at both
// stages — and plans the cycle's flit moves against start-of-cycle buffer
// state.
func (e *Engine) phaseSwitch() {
	e.moves = e.moves[:0]
	numOut := e.numPhys + e.cfg.EjChannels
	if e.reqs == nil {
		e.reqs = make([][]int32, numOut)
	}
	for ni, nd := range e.nodes {
		granted := e.inputGranted[ni]
		for i := range granted {
			granted[i] = false
		}
		for i := range e.reqs {
			e.reqs[i] = e.reqs[i][:0]
		}

		// Collect requests from input virtual channels...
		for p := 0; p < e.numPhys; p++ {
			for v := 0; v < e.cfg.VCs; v++ {
				ivc := &nd.in[p][v]
				if ivc.buf.Empty() || !ivc.route.valid || ivc.route.assignedAt >= e.now {
					continue
				}
				agent := int32(e.inVCIndex(topology.Port(p), int8(v)))
				if ivc.route.eject {
					out := e.numPhys + int(ivc.route.ejCh)
					e.reqs[out] = append(e.reqs[out], agent)
				} else if !nd.downBuf[ivc.route.outPort][ivc.route.outVC].Full() {
					e.reqs[ivc.route.outPort] = append(e.reqs[ivc.route.outPort], agent)
				}
			}
		}
		// ... and from injection channels.
		for i := range nd.inj {
			ic := &nd.inj[i]
			if ic.msg == nil || !ic.route.valid || ic.route.assignedAt >= e.now ||
				ic.msg.FlitsSent >= ic.msg.Length {
				continue
			}
			agent := int32(e.injIndex(i))
			if ic.route.eject {
				out := e.numPhys + int(ic.route.ejCh)
				e.reqs[out] = append(e.reqs[out], agent)
			} else if !nd.downBuf[ic.route.outPort][ic.route.outVC].Full() {
				e.reqs[ic.route.outPort] = append(e.reqs[ic.route.outPort], agent)
			}
		}

		// Grant one requester per output port, honouring the one-flit-per-
		// input-port crossbar constraint. Ejection "ports" go first so that
		// draining traffic is never starved by through traffic.
		for o := numOut - 1; o >= 0; o-- {
			lst := e.reqs[o]
			if len(lst) == 0 {
				continue
			}
			agent := nd.outArb[o].GrantFrom(lst, func(a int32) bool {
				return !granted[e.inputPortOf(int(a))]
			})
			if agent < 0 {
				continue
			}
			granted[e.inputPortOf(int(agent))] = true
			mv := move{node: int32(ni), agent: agent}
			if o >= e.numPhys {
				mv.eject = true
				mv.ejCh = int8(o - e.numPhys)
			} else {
				mv.outPort = topology.Port(o)
				mv.outVC = e.routeOf(nd, int(agent)).outVC
			}
			e.moves = append(e.moves, mv)
		}
	}
}

// inputPortOf maps an agent index to its crossbar input port index
// (physical ports first, then one port per injection channel).
func (e *Engine) inputPortOf(agent int) int {
	if agent < e.numPhys*e.cfg.VCs {
		return agent / e.cfg.VCs
	}
	return e.numPhys + (agent - e.numPhys*e.cfg.VCs)
}

// routeOf returns the route of the given agent of node nd.
func (e *Engine) routeOf(nd *node, agent int) routeInfo {
	if agent < e.numPhys*e.cfg.VCs {
		return nd.in[agent/e.cfg.VCs][agent%e.cfg.VCs].route
	}
	return nd.inj[agent-e.numPhys*e.cfg.VCs].route
}

// The credit condition for a forward move is that the receiving
// virtual-channel buffer (node.downBuf[port][vc]) has a slot free at the
// start of the cycle: a one-cycle credit loop. Each buffer has a single
// upstream sender and one grant per output port, so the check is exact.

// phaseMove applies the planned flit transfers: pops from input buffers or
// injection channels, pushes into downstream buffers or ejection sinks, and
// performs all the bookkeeping that head and tail flits trigger (channel
// release, path tracking, delivery accounting).
func (e *Engine) phaseMove() {
	for _, mv := range e.moves {
		nd := e.nodes[mv.node]
		var flit message.Flit

		if a := int(mv.agent); a < e.numPhys*e.cfg.VCs {
			p, v := a/e.cfg.VCs, a%e.cfg.VCs
			ivc := &nd.in[p][v]
			flit = ivc.buf.Pop()
			if flit.Tail {
				ivc.route = routeInfo{}
				nd.blocked.Progress(a)
				e.removePathLoc(flit.Msg, pathLoc{node: nd.id, port: topology.Port(p), vc: int8(v)})
			}
		} else {
			ic := &nd.inj[a-e.numPhys*e.cfg.VCs]
			m := ic.msg
			flit = message.MakeFlit(m, m.FlitsSent)
			m.FlitsSent++
			if flit.Head && m.InjectTime < 0 {
				m.InjectTime = e.now
				e.col.OnInjected(int(nd.id), e.now)
				e.emit(trace.KindInjected, m, nd.id)
			}
			if flit.Tail {
				ic.msg = nil
				ic.route = routeInfo{}
				m.State = message.StateInNetwork
			}
		}

		m := flit.Msg
		if mv.eject {
			m.FlitsEjected++
			if flit.Tail {
				nd.ej[mv.ejCh].msg = nil
				m.State = message.StateDelivered
				m.DeliverTime = e.now
				e.delivered++
				delete(e.paths, m)
				e.col.OnDelivered(e.now, m.GenTime, m.InjectTime, m.Length, m.Measured)
				e.emit(trace.KindDelivered, m, nd.id)
			}
			continue
		}

		nd.lastTx[int(mv.outPort)*e.cfg.VCs+int(mv.outVC)] = e.now
		if flit.Tail {
			nd.out[mv.outPort].VCs[mv.outVC].ReleaseIfOwner(m)
		}
		nd.downBuf[mv.outPort][mv.outVC].Push(flit)
	}
}

// removePathLoc drops one location from a message's tracked path. The tail
// leaves buffers in path order, so the match is normally the front entry;
// the scan is defensive.
func (e *Engine) removePathLoc(m *message.Message, loc pathLoc) {
	path := e.paths[m]
	for i, l := range path {
		if l == loc {
			e.paths[m] = append(path[:i], path[i+1:]...)
			return
		}
	}
}
