package sim

import (
	"fmt"

	"wormnet/internal/core"
	"wormnet/internal/deadlock"
	"wormnet/internal/fault"
	"wormnet/internal/message"
	"wormnet/internal/metrics"
	"wormnet/internal/router"
	"wormnet/internal/routing"
	"wormnet/internal/stats"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
	"wormnet/internal/traffic"
)

// routeInfo is the forwarding decision attached to an input virtual channel
// or injection channel while a message traverses it. Allocation cycle is not
// recorded here: the node's fresh masks mark routes assigned in the current
// cycle (movement starts the next one). epoch stamps the routing epoch the
// decision belongs to: routes are allocated at the engine's current epoch,
// and every liveness reconfiguration revalidates surviving routes to the new
// epoch (see reconfigure), so a valid route's stamp always equals the
// engine's epoch — the epoch-consistency invariant. The stamp is the low 16
// bits of Engine.epoch; the revalidation sweep keeps equality exact across
// wrap.
type routeInfo struct {
	valid   bool
	eject   bool
	outPort topology.Port // valid when !eject
	outVC   int8          // valid when !eject
	ejCh    int8          // valid when eject
	epoch   uint16
}

// inVC is one input virtual channel: its flit buffer. Input VCs are stored
// by value in node.in, flat-indexed by the channel id port*VCs+vc, so a
// node's entire input state is contiguous in memory. The forwarding
// decisions live in the parallel node.routes array: the switch phase walks
// routes alone, four to a cache line, without pulling in buffer state.
type inVC struct {
	buf router.Buffer
	// owner caches the message whose flits the buffer holds (buffers are
	// exclusive to one message). It is written when a head flit is pushed
	// and only read while the buffer is non-empty, so it needs no
	// clearing; the allocator reads the blocked header from it without
	// touching flit storage. dst mirrors owner.Dst so allocation retries
	// never touch the (cold) message struct at all.
	owner *message.Message
	dst   topology.NodeID
}

// injChannel is one of the node's injection channels: a message being
// streamed into the network flit by flit. left caches the flits still to
// send (Length - FlitsSent), so the switch phase's done-streaming check
// never dereferences the message.
type injChannel struct {
	msg   *message.Message
	route routeInfo
	left  int32
	len   int32           // msg.Length, cached when the channel is claimed
	dst   topology.NodeID // msg.Dst, cached when the channel is claimed
}

// ejChannel is one of the node's ejection channels. pending counts flits
// consumed but not yet folded into msg.FlitsEjected: the per-flit counter
// update happens on this hot little struct, and the message is charged in
// one go when its tail arrives (or the message is torn down).
type ejChannel struct {
	msg     *message.Message // nil when free
	pending int32
}

// pendingRecovery is a recovered message waiting out the software
// re-injection cost at its recovery node.
type pendingRecovery struct {
	msg     *message.Message
	readyAt int64
}

// pendingRetry is a fault-killed message waiting out its source-retry
// backoff; at readyAt it rejoins the front of the source queue.
type pendingRetry struct {
	msg     *message.Message
	readyAt int64
}

// node is one network endpoint: a router plus its local injection state.
// Nodes are stored by value in Engine.nodes; all code must take the
// address (&e.nodes[i]) rather than copy.
type node struct {
	id topology.NodeID

	// in[p*VCs+v] is input virtual channel v of physical port p — the
	// flat channel id doubles as the agent index of the allocation and
	// switch phases. outVCs is the matching flat output-side state;
	// out[p] wraps the per-port subslice of it.
	in     []inVC
	routes []routeInfo
	outVCs []router.OutVC
	out    []router.OutPort
	inj    []injChannel
	ej     []ejChannel

	// Active-set counters: input VCs currently holding at least one flit
	// and injection channels currently streaming a message. The
	// allocation and switch phases skip a node outright when both are
	// zero, so idle regions of the network cost nothing per cycle.
	occVCs  int
	busyInj int

	queue    msgFIFO           // source queue (FIFO; paper: older first)
	recovery []pendingRecovery // software-recovery queue (priority)
	retry    []pendingRetry    // fault-retry queue (backoff; faults only)

	src traffic.Generator
	// nextGen caches src.NextAt(): the generation phase skips the node
	// while now is before it, without touching the source.
	nextGen int64
	// rogue marks an adversarial node (Config.Adversary): its injections
	// bypass the limiter gate entirely.
	rogue bool

	limiter core.Limiter
	// limObs caches the limiter's CycleObserver assertion (nil when the
	// limiter has no per-cycle hook) and view the node's preallocated
	// ChannelView, so the injection phase performs no per-cycle interface
	// conversions. limClass likewise caches the RuleClassifier assertion;
	// the metrics layer consults it to attribute denials to rule (a)/(b).
	limObs   core.CycleObserver
	limClass core.RuleClassifier
	view     *channelView

	// blocked tracks consecutive cycles each input VC's header failed to
	// obtain an output virtual channel (deadlock detection input).
	blocked *deadlock.BlockTracker
	// lastTx records, per output virtual channel (flat channel id), the
	// last cycle a flit was transmitted through it. The FC3D-style
	// detector uses it to distinguish a dead knot (no movement anywhere
	// the header could go) from plain congestion.
	lastTx []int64

	// Status registers, one word per physical port, bit v = virtual
	// channel v. freeMask tracks which output VCs are unallocated,
	// inEmpty/inFull which of the node's own input buffers are empty/at
	// capacity, and routed which input VCs hold a valid forwarding
	// decision (bit set iff routes[p*VCs+v].valid). The allocator and
	// switch phases test whole candidate sets against these words instead
	// of walking per-VC state: the allocation walk visits occupied AND
	// unrouted channels, the switch walk occupied AND routed ones.
	freeMask []uint32
	inEmpty  []uint32
	inFull   []uint32
	routed   []uint32
	// fresh marks input VCs (and freshInj injection channels) whose route
	// was assigned in the current cycle: the switch phase skips them — a
	// flit moves no earlier than the cycle after allocation — and clears
	// the masks as it goes. This replaces a per-route assignment
	// timestamp, halving routeInfo.
	fresh    []uint32
	freshInj uint32
	// swDesc[a] is the packed switch descriptor of input VC a's current
	// route — output index (ejection offset by numPhys) in the high byte,
	// output VC in the low — written at allocation so the switch phase
	// reads two bytes per routed channel instead of a routeInfo.
	swDesc []uint16

	// nbr caches the neighbouring node behind each physical output port
	// and down[p*VCs+v] the input VC a flit sent on (p, v) lands in;
	// downWord[p] is the index of the downstream node's status word for
	// the buffers this port feeds, in the engine's dense emptyArena and
	// fullArena (the same index addresses both). An index into a dense
	// array beats a pointer here: the credit checks become a single
	// dependent load off a base the compiler keeps in a register. All are
	// precomputed at construction.
	nbr      []*node
	down     []*inVC
	downWord []int32

	// outArb arbitrates each output port (physical + ejection) among the
	// node's input agents.
	outArb []router.RoundRobin

	// scratchPorts is a buffer reused by the limiter's channel view.
	scratchPorts []topology.Port
}

// agent indices: input VCs first (flat channel id), then injection channels.
func (e *Engine) agentCount() int { return e.numPhys*e.cfg.VCs + e.cfg.InjChannels }

// move is one planned flit transfer of the current cycle.
type move struct {
	node  int32 // node whose crossbar the flit traverses
	agent int32 // source agent index (input VC or injection channel)
	eject bool
	ejCh  int8
	// destination (forward moves): filled from the agent's route
	outPort topology.Port
	outVC   int8
}

// pathLoc identifies a buffer holding flits of an in-flight message: the
// input virtual channel (port, vc) of a node. Paths live on the messages
// themselves (message.Message.Path) so that path tracking needs no map.
type pathLoc = message.PathLoc

// Engine is a single simulation run. It is not safe for concurrent use;
// run independent Engines on separate goroutines instead (see
// internal/experiments).
type Engine struct {
	cfg     Config
	topo    *topology.Torus
	alg     routing.Algorithm
	det     deadlock.Detector
	col     *stats.Collector
	nodes   []node
	numPhys int
	now     int64

	nextID message.ID

	// cand is the precomputed per-(node, destination) routing candidate
	// table, built whenever the routing function is static over the run
	// (i.e. no fault schedule). nil means candidates are computed on the
	// fly (fault runs, where liveness changes them mid-run).
	cand *candTable

	// pool is the free list of recycled messages: a delivered or dropped
	// pool-born message is reset and reused, so steady-state traffic
	// allocates nothing. Messages handed out by Inject are not pooled —
	// callers may keep pointers to them.
	pool []*message.Message

	// moves is the per-cycle plan, rebuilt each cycle.
	moves []move
	// reqsFlat is the switch-allocation scratch of the node currently being
	// arbitrated (reused across nodes and cycles): the requester list for
	// output port o occupies reqsFlat[o*agentCount():], with the live
	// lengths kept in a stack array inside phaseSwitch. One flat array
	// avoids the per-port slice headers and stamp bookkeeping.
	reqsFlat []int32

	// emptyArena and fullArena are the dense input-buffer status words of
	// the whole network: every node's inEmpty/inFull slices are subslices
	// of them, and a node reaches its *downstream* words by index
	// (node.downWord) instead of chasing pointers into neighbour structs.
	emptyArena []uint32
	fullArena  []uint32

	// portTab maps an agent index to its crossbar input port; vcBit and
	// vcOf map an input-VC agent to its status-register bit and virtual
	// channel. Lookup tables replace the divisions the hot phases would
	// otherwise do per flit.
	portTab []int32
	vcBit   []uint32
	vcOf    []int8

	// genScratch reuses the traffic-generation slice.
	genScratch []traffic.Generated

	// par is the sharded parallel runtime (see parallel.go); nil selects
	// the serial path. Parallel and serial execution are bit-identical.
	par *parRuntime

	// sourcesStopped suppresses traffic generation (see StopSources).
	sourcesStopped bool

	// live is the channel/router liveness mask; nil whenever fault
	// injection is off, which keeps the fault-free path identical to the
	// seed simulator (every fault hook is behind a nil check).
	live *topology.Liveness
	// faultEvents is the run's sorted fault schedule; faultIdx is the next
	// event to apply.
	faultEvents []fault.Event
	faultIdx    int
	// killScratch reuses the kill-collection slice of fault application.
	killScratch []*message.Message
	// epoch counts routing reconfigurations: it starts at 0 and increments
	// once per applied liveness-changing fault or repair event. Every epoch
	// flip rebuilds the candidate table under the new mask and revalidates
	// surviving routes (reconfigure), so healed capacity re-enters routing
	// decisions online, without draining the network.
	epoch uint64
	// onReconfig, when non-nil, runs after each reconfiguration (serially,
	// before the cycle's phases — deterministic at any worker count). Tests
	// hang transition-safety checks here: epoch invariants and the
	// wait-graph oracle at every flip.
	onReconfig func(epoch uint64)

	// listener, when non-nil, receives message lifecycle events.
	listener trace.Listener

	// met, when non-nil, is the live-metrics instrumentation (metrics.go);
	// metEvery is its gauge-sampling period and onSample the optional
	// post-sample hook. Disabled instrumentation is one nil check per site.
	// metReg retains the registry behind met so snapshots can capture it.
	met      *engineMetrics
	metEvery int64
	metReg   *metrics.Registry
	onSample func(cycle int64)

	// spans, when non-nil, is the message-lifecycle span tracker (spans.go).
	// Like met, disabled span instrumentation is one nil check per site.
	spans *engineSpans

	// delivered counts all-time delivered messages (not just in-window).
	delivered int64
	// generated counts all-time generated messages.
	generated int64
	// recovered counts all-time deadlock recoveries.
	recovered int64
	// aborted counts all-time fault kills; retried and dropped count their
	// outcomes (aborted == retried + dropped-at-abort; drops also happen at
	// injection time for unreachable destinations).
	aborted int64
	retried int64
	dropped int64
}

// New builds a simulation engine from cfg. It validates the configuration
// and pre-allocates all routers, channels and statistics state — including
// the packed per-(node, destination) candidate table when the routing
// function is static, and contiguous arenas for the per-virtual-channel hot
// state.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.VCs > 32 {
		return nil, fmt.Errorf("sim: at most 32 virtual channels supported (got %d)", cfg.VCs)
	}
	// The switch allocator tracks its requested output ports (physical +
	// ejection) in one 32-bit mask.
	if out := 2*cfg.N + cfg.EjChannels; out > 32 {
		return nil, fmt.Errorf("sim: at most 32 output ports supported (got %d)", out)
	}
	topo := topology.New(cfg.K, cfg.N)
	var alg routing.Algorithm
	switch cfg.Routing {
	case "tfar":
		alg = routing.NewTFAR(topo, cfg.VCs)
	case "dor":
		alg = routing.NewDOR(topo, cfg.VCs)
	case "duato":
		alg = routing.NewDuato(topo, cfg.VCs)
	default:
		return nil, fmt.Errorf("sim: unknown routing %q", cfg.Routing)
	}
	pattern, err := traffic.ByName(cfg.Pattern, topo)
	if err != nil {
		return nil, err
	}

	// A deadlock-free routing engine needs no detection; running the
	// FC3D-style criterion anyway would only produce false positives (it
	// presumes deadlock from sustained blockage, which plain congestion can
	// cause too). Faults void deadlock-freedom guarantees (an escape path
	// may die), so with a fault schedule detection stays on regardless.
	threshold := cfg.DetectionThreshold
	if alg.DeadlockFree() && cfg.Faults.Empty() {
		threshold = 0
	}
	e := &Engine{
		cfg:     cfg,
		topo:    topo,
		alg:     alg,
		det:     deadlock.NewDetector(threshold),
		col:     stats.NewCollector(topo.Nodes(), cfg.WarmupCycles, cfg.WarmupCycles+cfg.MeasureCycles),
		numPhys: topo.NumPorts(),
	}
	if !cfg.Faults.Empty() {
		e.live = topology.NewLiveness(topo)
		e.faultEvents = cfg.Faults.Events()
		fa, ok := alg.(routing.FaultAware)
		if !ok {
			return nil, fmt.Errorf("sim: routing %q is not fault-aware", cfg.Routing)
		}
		fa.SetLiveness(e.live)
	}
	// The routing function is a pure function of (current, destination)
	// between liveness changes: precompute every candidate set once and turn
	// the per-header routing call into a packed table lookup. Fault-capable
	// runs rebuild the table at every epoch flip (reconfigure), so the table
	// always reflects the current mask — including healed channels, which
	// re-enter candidate sets the cycle their repair commits.
	e.cand = buildCandTable(alg, topo.Nodes())

	nNodes := topo.Nodes()
	nVC := e.numPhys * cfg.VCs
	e.nodes = make([]node, nNodes)
	// Adversarial overlay: fix rogue placement up front (seeded shuffle) and
	// split the collector's accounting by class, so results separate the
	// well-behaved population from the attackers.
	var rogueMask []bool
	if cfg.Adversary.Enabled() {
		rogueMask = cfg.Adversary.pickRogues(nNodes)
		classOf := make([]uint8, nNodes)
		for n, r := range rogueMask {
			if r {
				classOf[n] = ClassRogue
			}
		}
		e.col.EnableClasses([]string{"good", "rogue"}, classOf)
	}
	numOut := e.numPhys + cfg.EjChannels

	nAgents := e.agentCount()
	e.portTab = make([]int32, nAgents)
	e.vcBit = make([]uint32, nVC)
	e.vcOf = make([]int8, nVC)
	for a := 0; a < nAgents; a++ {
		if a < nVC {
			e.portTab[a] = int32(a / cfg.VCs)
			e.vcBit[a] = 1 << uint(a%cfg.VCs)
			e.vcOf[a] = int8(a % cfg.VCs)
		} else {
			e.portTab[a] = int32(e.numPhys + (a - nVC))
		}
	}
	e.reqsFlat = make([]int32, numOut*nAgents)

	// Contiguous arenas for the hot per-virtual-channel state: input VCs
	// (with one shared flit arena), output VC ownership, transmission
	// timestamps and arbiters.
	inArena := make([]inVC, nNodes*nVC)
	flitArena := make([]message.Flit, nNodes*nVC*cfg.BufDepth)
	outArena := make([]router.OutVC, nNodes*nVC)
	outPortArena := make([]router.OutPort, nNodes*e.numPhys)
	lastTxArena := make([]int64, nNodes*nVC)
	arbArena := make([]router.RoundRobin, nNodes*numOut)
	for i := range lastTxArena {
		lastTxArena[i] = -1
	}
	// The status words of the whole network pack into dense arrays a few
	// kilobytes each, so the credit checks against *neighbour* words
	// (indexed through node.downWord) stay cache-resident instead of
	// chasing into 512 scattered node structs.
	freeArena := make([]uint32, nNodes*e.numPhys)
	e.emptyArena = make([]uint32, nNodes*e.numPhys)
	e.fullArena = make([]uint32, nNodes*e.numPhys)
	routedArena := make([]uint32, nNodes*e.numPhys)
	freshArena := make([]uint32, nNodes*e.numPhys)
	routeArena := make([]routeInfo, nNodes*nVC)
	swDescArena := make([]uint16, nNodes*nVC)

	for i := 0; i < nNodes; i++ {
		nd := &e.nodes[i]
		nd.id = topology.NodeID(i)
		nd.in = inArena[i*nVC : (i+1)*nVC : (i+1)*nVC]
		nd.routes = routeArena[i*nVC : (i+1)*nVC : (i+1)*nVC]
		for c := range nd.in {
			base := (i*nVC + c) * cfg.BufDepth
			nd.in[c].buf.InitOver(flitArena[base : base+cfg.BufDepth : base+cfg.BufDepth])
		}
		nd.outVCs = outArena[i*nVC : (i+1)*nVC : (i+1)*nVC]
		nd.out = outPortArena[i*e.numPhys : (i+1)*e.numPhys : (i+1)*e.numPhys]
		for p := range nd.out {
			nd.out[p] = router.OutPortOver(nd.outVCs[p*cfg.VCs : (p+1)*cfg.VCs : (p+1)*cfg.VCs])
		}
		nd.inj = make([]injChannel, cfg.InjChannels)
		nd.ej = make([]ejChannel, cfg.EjChannels)
		switch {
		case rogueMask != nil && rogueMask[i]:
			nd.rogue = true
			nd.src = traffic.NewRogueSource(nd.id, nNodes, cfg.Adversary.Hotspot,
				cfg.Adversary.RogueRate, cfg.MsgLen,
				cfg.Adversary.StormPeriod, cfg.Adversary.StormOn,
				cfg.Seed, splitSeed(cfg.Seed, uint64(i)))
		case cfg.Sources != nil:
			nd.src = cfg.Sources(nd.id)
			if nd.src == nil || nd.src.Node() != nd.id {
				return nil, fmt.Errorf("sim: Sources factory returned a bad generator for node %d", nd.id)
			}
		case cfg.Burst.Enabled():
			nd.src = traffic.NewBurstySource(nd.id, pattern, cfg.Rate, cfg.MsgLen,
				cfg.Burst, cfg.Seed, splitSeed(cfg.Seed, uint64(i)))
		default:
			nd.src = traffic.NewSource(nd.id, pattern, cfg.Rate, cfg.MsgLen,
				cfg.Seed, splitSeed(cfg.Seed, uint64(i)))
		}
		nd.limiter = cfg.Limiter(nd.id, topo, cfg.VCs)
		nd.limObs, _ = nd.limiter.(core.CycleObserver)
		nd.limClass, _ = nd.limiter.(core.RuleClassifier)
		nd.view = &channelView{e: e, nd: nd}
		nd.blocked = deadlock.NewBlockTracker(nVC)
		nd.lastTx = lastTxArena[i*nVC : (i+1)*nVC : (i+1)*nVC]
		nd.freeMask = freeArena[i*e.numPhys : (i+1)*e.numPhys : (i+1)*e.numPhys]
		nd.inEmpty = e.emptyArena[i*e.numPhys : (i+1)*e.numPhys : (i+1)*e.numPhys]
		nd.inFull = e.fullArena[i*e.numPhys : (i+1)*e.numPhys : (i+1)*e.numPhys]
		nd.routed = routedArena[i*e.numPhys : (i+1)*e.numPhys : (i+1)*e.numPhys]
		nd.fresh = freshArena[i*e.numPhys : (i+1)*e.numPhys : (i+1)*e.numPhys]
		nd.swDesc = swDescArena[i*nVC : (i+1)*nVC : (i+1)*nVC]
		allVCs := uint32(1)<<uint(cfg.VCs) - 1
		for p := 0; p < e.numPhys; p++ {
			nd.freeMask[p] = allVCs
			nd.inEmpty[p] = allVCs
		}
		nd.outArb = arbArena[i*numOut : (i+1)*numOut : (i+1)*numOut]
		for p := range nd.outArb {
			nd.outArb[p].Init(nAgents)
		}
	}
	// Wire the neighbour and downstream caches once all routers exist.
	for i := range e.nodes {
		nd := &e.nodes[i]
		nd.nbr = make([]*node, e.numPhys)
		nd.down = make([]*inVC, nVC)
		nd.downWord = make([]int32, e.numPhys)
		for p := 0; p < e.numPhys; p++ {
			nbID := topo.Neighbor(nd.id, topology.Port(p))
			nb := &e.nodes[nbID]
			nd.nbr[p] = nb
			opp := int(topology.Opposite(topology.Port(p)))
			nd.downWord[p] = int32(int(nbID)*e.numPhys + opp)
			for v := 0; v < cfg.VCs; v++ {
				nd.down[p*cfg.VCs+v] = &nb.in[opp*cfg.VCs+v]
			}
		}
	}
	if cfg.Workers > 1 {
		e.par = newParRuntime(e, cfg.Workers)
	}
	return e, nil
}

// splitSeed derives a per-node stream seed from the run seed
// (SplitMix64-style mixing).
func splitSeed(seed, node uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15*(node+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// candidates returns the admissible output virtual channels of a header at
// nd addressed to dst, as per-port masks: always a packed table lookup. The
// table is exact for the current routing epoch — fault-capable runs rebuild
// it at every liveness change (reconfigure), so the lookup equals a fresh
// routing call under the current mask.
func (e *Engine) candidates(nd *node, dst topology.NodeID) []portCand {
	return e.cand.get(nd.id, dst)
}

// newMessage builds a message for traffic generation, recycling a pooled
// message when one is free.
func (e *Engine) newMessage(src, dst topology.NodeID, length int) *message.Message {
	var m *message.Message
	if n := len(e.pool); n > 0 {
		m = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		m.Reuse(e.nextID, src, dst, length, e.now)
	} else {
		m = message.New(e.nextID, src, dst, length, e.now)
		m.Pooled = true
	}
	e.nextID++
	e.generated++
	if e.spans != nil {
		e.spanGenerate(m)
	}
	return m
}

// releaseMessage returns a finished (delivered or permanently dropped)
// pool-born message to the free list.
func (e *Engine) releaseMessage(m *message.Message) {
	if m.Pooled {
		e.pool = append(e.pool, m)
	}
}

// Now returns the current simulation cycle.
func (e *Engine) Now() int64 { return e.now }

// Collector returns the run's metrics collector.
func (e *Engine) Collector() *stats.Collector { return e.col }

// Config returns the run's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Topology returns the run's torus.
func (e *Engine) Topology() *topology.Torus { return e.topo }

// InFlight returns the number of generated messages that are neither
// delivered nor dropped yet.
func (e *Engine) InFlight() int64 { return e.generated - e.delivered - e.dropped }

// Recovered returns the all-time count of deadlock recoveries.
func (e *Engine) Recovered() int64 { return e.recovered }

// Aborted returns the all-time count of messages killed by faults.
func (e *Engine) Aborted() int64 { return e.aborted }

// Retried returns the all-time count of scheduled source retries.
func (e *Engine) Retried() int64 { return e.retried }

// Dropped returns the all-time count of permanently dropped messages.
func (e *Engine) Dropped() int64 { return e.dropped }

// Liveness returns the engine's channel/router liveness mask, or nil when
// fault injection is off.
func (e *Engine) Liveness() *topology.Liveness { return e.live }

// Delivered returns the all-time count of delivered messages.
func (e *Engine) Delivered() int64 { return e.delivered }

// Generated returns the all-time count of generated messages.
func (e *Engine) Generated() int64 { return e.generated }

// Run executes the configured number of cycles and returns the summary.
// With metrics enabled, a final gauge sample runs after the last cycle so
// the exported series end on the run's exact final state.
func (e *Engine) Run() stats.Result {
	total := e.cfg.TotalCycles()
	for e.now < total {
		e.Step()
	}
	e.FlushMetrics()
	return e.col.Result()
}

// SetListener attaches a trace listener receiving message lifecycle events
// (generation, injection, delivery, deadlock, recovery, throttling). Pass
// nil to detach. Tracing costs one branch per event when detached.
func (e *Engine) SetListener(l trace.Listener) { e.listener = l }

// emit publishes a lifecycle event if a listener is attached.
func (e *Engine) emit(kind trace.Kind, m *message.Message, at topology.NodeID) {
	if e.listener == nil {
		return
	}
	e.listener.Emit(trace.Event{
		Cycle: e.now,
		Kind:  kind,
		Msg:   int64(m.ID),
		Src:   m.Src,
		Dst:   m.Dst,
		Node:  at,
		Len:   int32(m.Length),
	})
}

// StopSources turns off traffic generation for the rest of the run. The
// network then drains: with a deadlock-handling configuration every
// in-flight and queued message is eventually delivered, which tests and
// checkpoint-style workloads rely on.
func (e *Engine) StopSources() { e.sourcesStopped = true }

// Inject enqueues a message directly into src's source queue, bypassing the
// traffic source. It is the hook for hand-built scenarios (tests, examples).
// The message is generated at the current cycle and participates in
// measurement like any other. Injected messages are never pooled, so the
// returned pointer stays valid after delivery.
func (e *Engine) Inject(src, dst topology.NodeID, length int) *message.Message {
	if !e.topo.Valid(src) || !e.topo.Valid(dst) {
		panic(fmt.Sprintf("sim: invalid endpoints %d -> %d", src, dst))
	}
	if src == dst {
		panic("sim: self-addressed message")
	}
	m := message.New(e.nextID, src, dst, length, e.now)
	e.nextID++
	m.Measured = e.col.OnGenerated(e.now, int(src))
	e.nodes[src].queue.Push(m)
	e.generated++
	if e.spans != nil {
		e.spanGenerate(m)
	}
	return m
}

// inVCIndex flattens (port, vc) into the node's agent index space.
func (e *Engine) inVCIndex(p topology.Port, vc int8) int {
	return int(p)*e.cfg.VCs + int(vc)
}

// injIndex returns the agent index of injection channel i.
func (e *Engine) injIndex(i int) int { return e.numPhys*e.cfg.VCs + i }
