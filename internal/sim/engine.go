package sim

import (
	"fmt"

	"wormnet/internal/core"
	"wormnet/internal/deadlock"
	"wormnet/internal/fault"
	"wormnet/internal/message"
	"wormnet/internal/router"
	"wormnet/internal/routing"
	"wormnet/internal/stats"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
	"wormnet/internal/traffic"
)

// routeInfo is the forwarding decision attached to an input virtual channel
// or injection channel while a message traverses it.
type routeInfo struct {
	valid      bool
	eject      bool
	outPort    topology.Port // valid when !eject
	outVC      int8          // valid when !eject
	ejCh       int8          // valid when eject
	assignedAt int64         // cycle of allocation; movement starts the next cycle
}

// inVC is one input virtual channel: its flit buffer plus routing state.
type inVC struct {
	buf   *router.Buffer
	route routeInfo
}

// injChannel is one of the node's injection channels: a message being
// streamed into the network flit by flit.
type injChannel struct {
	msg   *message.Message
	route routeInfo
}

// ejChannel is one of the node's ejection channels.
type ejChannel struct {
	msg *message.Message // nil when free
}

// pendingRecovery is a recovered message waiting out the software
// re-injection cost at its recovery node.
type pendingRecovery struct {
	msg     *message.Message
	readyAt int64
}

// pendingRetry is a fault-killed message waiting out its source-retry
// backoff; at readyAt it rejoins the front of the source queue.
type pendingRetry struct {
	msg     *message.Message
	readyAt int64
}

// node is one network endpoint: a router plus its local injection state.
type node struct {
	id topology.NodeID

	in  [][]inVC          // [physical input port][vc]
	out []*router.OutPort // [physical output port]
	inj []injChannel
	ej  []ejChannel

	queue    []*message.Message // source queue (FIFO; paper: older first)
	recovery []pendingRecovery  // software-recovery queue (priority)
	retry    []pendingRetry     // fault-retry queue (backoff; faults only)

	src     traffic.Generator
	limiter core.Limiter

	// blocked tracks consecutive cycles each input VC's header failed to
	// obtain an output virtual channel (deadlock detection input).
	blocked *deadlock.BlockTracker
	// lastTx records, per output virtual channel (flattened port*VCs+vc),
	// the last cycle a flit was transmitted through it. The FC3D-style
	// detector uses it to distinguish a dead knot (no movement anywhere the
	// header could go) from plain congestion.
	lastTx []int64

	// nbr caches the neighbouring node behind each physical output port and
	// downBuf the input buffer a flit sent on (port, vc) lands in; both are
	// hot-path lookups precomputed at construction.
	nbr     []*node
	downBuf [][]*router.Buffer

	// outArb arbitrates each output port (physical + ejection) among the
	// node's input agents.
	outArb []*router.RoundRobin
	// allocRR rotates the starting input VC of the allocation phase.
	allocRR int

	// scratch buffers reused every cycle.
	scratchCands []routing.Candidate
	scratchPorts []topology.Port
}

// agent indices: input VCs first ([port*VCs+vc]), then injection channels.
func (e *Engine) agentCount() int { return e.numPhys*e.cfg.VCs + e.cfg.InjChannels }

// move is one planned flit transfer of the current cycle.
type move struct {
	node  int32 // node whose crossbar the flit traverses
	agent int32 // source agent index (input VC or injection channel)
	eject bool
	ejCh  int8
	// destination (forward moves): filled from the agent's route
	outPort topology.Port
	outVC   int8
}

// pathLoc identifies a buffer holding flits of an in-flight message: the
// input virtual channel (port, vc) of a node.
type pathLoc struct {
	node topology.NodeID
	port topology.Port
	vc   int8
}

// Engine is a single simulation run. It is not safe for concurrent use;
// run independent Engines on separate goroutines instead (see
// internal/experiments).
type Engine struct {
	cfg     Config
	topo    *topology.Torus
	alg     routing.Algorithm
	det     deadlock.Detector
	col     *stats.Collector
	nodes   []*node
	numPhys int
	now     int64

	nextID message.ID
	// paths tracks which buffers hold each in-flight message's flits, in
	// path order (oldest first), for deadlock recovery.
	paths map[*message.Message][]pathLoc

	// moves is the per-cycle plan, rebuilt each cycle.
	moves []move
	// reqs holds the per-output-port requester lists of the node currently
	// being switch-allocated (reused across nodes and cycles).
	reqs [][]int32
	// inputGranted marks input ports already granted this cycle, per node;
	// indexed [node][inputPort], where injection channels occupy ports
	// numPhys..numPhys+InjChannels-1.
	inputGranted [][]bool

	// genScratch reuses the traffic-generation slice.
	genScratch []traffic.Generated

	// sourcesStopped suppresses traffic generation (see StopSources).
	sourcesStopped bool

	// live is the channel/router liveness mask; nil whenever fault
	// injection is off, which keeps the fault-free path identical to the
	// seed simulator (every fault hook is behind a nil check).
	live *topology.Liveness
	// faultEvents is the run's sorted fault schedule; faultIdx is the next
	// event to apply.
	faultEvents []fault.Event
	faultIdx    int
	// killScratch reuses the kill-collection slice of fault application.
	killScratch []*message.Message

	// listener, when non-nil, receives message lifecycle events.
	listener trace.Listener

	// delivered counts all-time delivered messages (not just in-window).
	delivered int64
	// generated counts all-time generated messages.
	generated int64
	// recovered counts all-time deadlock recoveries.
	recovered int64
	// aborted counts all-time fault kills; retried and dropped count their
	// outcomes (aborted == retried + dropped-at-abort; drops also happen at
	// injection time for unreachable destinations).
	aborted int64
	retried int64
	dropped int64
}

// New builds a simulation engine from cfg. It validates the configuration
// and pre-allocates all routers, channels and statistics state.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	topo := topology.New(cfg.K, cfg.N)
	var alg routing.Algorithm
	switch cfg.Routing {
	case "tfar":
		alg = routing.NewTFAR(topo, cfg.VCs)
	case "dor":
		alg = routing.NewDOR(topo, cfg.VCs)
	case "duato":
		alg = routing.NewDuato(topo, cfg.VCs)
	default:
		return nil, fmt.Errorf("sim: unknown routing %q", cfg.Routing)
	}
	pattern, err := traffic.ByName(cfg.Pattern, topo)
	if err != nil {
		return nil, err
	}

	// A deadlock-free routing engine needs no detection; running the
	// FC3D-style criterion anyway would only produce false positives (it
	// presumes deadlock from sustained blockage, which plain congestion can
	// cause too). Faults void deadlock-freedom guarantees (an escape path
	// may die), so with a fault schedule detection stays on regardless.
	threshold := cfg.DetectionThreshold
	if alg.DeadlockFree() && cfg.Faults.Empty() {
		threshold = 0
	}
	e := &Engine{
		cfg:     cfg,
		topo:    topo,
		alg:     alg,
		det:     deadlock.NewDetector(threshold),
		col:     stats.NewCollector(topo.Nodes(), cfg.WarmupCycles, cfg.WarmupCycles+cfg.MeasureCycles),
		numPhys: topo.NumPorts(),
		paths:   make(map[*message.Message][]pathLoc),
	}
	if !cfg.Faults.Empty() {
		e.live = topology.NewLiveness(topo)
		e.faultEvents = cfg.Faults.Events()
		fa, ok := alg.(routing.FaultAware)
		if !ok {
			return nil, fmt.Errorf("sim: routing %q is not fault-aware", cfg.Routing)
		}
		fa.SetLiveness(e.live)
	}

	nNodes := topo.Nodes()
	e.nodes = make([]*node, nNodes)
	e.inputGranted = make([][]bool, nNodes)
	numOut := e.numPhys + cfg.EjChannels
	for i := 0; i < nNodes; i++ {
		nd := &node{id: topology.NodeID(i)}
		nd.in = make([][]inVC, e.numPhys)
		for p := range nd.in {
			nd.in[p] = make([]inVC, cfg.VCs)
			for v := range nd.in[p] {
				nd.in[p][v].buf = router.NewBuffer(cfg.BufDepth)
			}
		}
		nd.out = make([]*router.OutPort, e.numPhys)
		for p := range nd.out {
			nd.out[p] = router.NewOutPort(cfg.VCs)
		}
		nd.inj = make([]injChannel, cfg.InjChannels)
		nd.ej = make([]ejChannel, cfg.EjChannels)
		if cfg.Burst.Enabled() {
			nd.src = traffic.NewBurstySource(nd.id, pattern, cfg.Rate, cfg.MsgLen,
				cfg.Burst, cfg.Seed, splitSeed(cfg.Seed, uint64(i)))
		} else {
			nd.src = traffic.NewSource(nd.id, pattern, cfg.Rate, cfg.MsgLen,
				cfg.Seed, splitSeed(cfg.Seed, uint64(i)))
		}
		nd.limiter = cfg.Limiter(nd.id, topo, cfg.VCs)
		nd.blocked = deadlock.NewBlockTracker(e.numPhys * cfg.VCs)
		nd.lastTx = make([]int64, e.numPhys*cfg.VCs)
		for t := range nd.lastTx {
			nd.lastTx[t] = -1
		}
		nd.outArb = make([]*router.RoundRobin, numOut)
		for p := range nd.outArb {
			nd.outArb[p] = router.NewRoundRobin(e.agentCount())
		}
		e.nodes[i] = nd
		e.inputGranted[i] = make([]bool, e.numPhys+cfg.InjChannels)
	}
	// Wire the neighbour and downstream-buffer caches once all routers
	// exist.
	for _, nd := range e.nodes {
		nd.nbr = make([]*node, e.numPhys)
		nd.downBuf = make([][]*router.Buffer, e.numPhys)
		for p := 0; p < e.numPhys; p++ {
			nb := e.nodes[topo.Neighbor(nd.id, topology.Port(p))]
			nd.nbr[p] = nb
			nd.downBuf[p] = make([]*router.Buffer, cfg.VCs)
			for v := 0; v < cfg.VCs; v++ {
				nd.downBuf[p][v] = nb.in[topology.Opposite(topology.Port(p))][v].buf
			}
		}
	}
	return e, nil
}

// splitSeed derives a per-node stream seed from the run seed
// (SplitMix64-style mixing).
func splitSeed(seed, node uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15*(node+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Now returns the current simulation cycle.
func (e *Engine) Now() int64 { return e.now }

// Collector returns the run's metrics collector.
func (e *Engine) Collector() *stats.Collector { return e.col }

// Config returns the run's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Topology returns the run's torus.
func (e *Engine) Topology() *topology.Torus { return e.topo }

// InFlight returns the number of generated messages that are neither
// delivered nor dropped yet.
func (e *Engine) InFlight() int64 { return e.generated - e.delivered - e.dropped }

// Recovered returns the all-time count of deadlock recoveries.
func (e *Engine) Recovered() int64 { return e.recovered }

// Aborted returns the all-time count of messages killed by faults.
func (e *Engine) Aborted() int64 { return e.aborted }

// Retried returns the all-time count of scheduled source retries.
func (e *Engine) Retried() int64 { return e.retried }

// Dropped returns the all-time count of permanently dropped messages.
func (e *Engine) Dropped() int64 { return e.dropped }

// Liveness returns the engine's channel/router liveness mask, or nil when
// fault injection is off.
func (e *Engine) Liveness() *topology.Liveness { return e.live }

// Delivered returns the all-time count of delivered messages.
func (e *Engine) Delivered() int64 { return e.delivered }

// Generated returns the all-time count of generated messages.
func (e *Engine) Generated() int64 { return e.generated }

// Run executes the configured number of cycles and returns the summary.
func (e *Engine) Run() stats.Result {
	total := e.cfg.TotalCycles()
	for e.now < total {
		e.Step()
	}
	return e.col.Result()
}

// SetListener attaches a trace listener receiving message lifecycle events
// (generation, injection, delivery, deadlock, recovery, throttling). Pass
// nil to detach. Tracing costs one branch per event when detached.
func (e *Engine) SetListener(l trace.Listener) { e.listener = l }

// emit publishes a lifecycle event if a listener is attached.
func (e *Engine) emit(kind trace.Kind, m *message.Message, at topology.NodeID) {
	if e.listener == nil {
		return
	}
	e.listener.Emit(trace.Event{
		Cycle: e.now,
		Kind:  kind,
		Msg:   int64(m.ID),
		Src:   m.Src,
		Dst:   m.Dst,
		Node:  at,
	})
}

// StopSources turns off traffic generation for the rest of the run. The
// network then drains: with a deadlock-handling configuration every
// in-flight and queued message is eventually delivered, which tests and
// checkpoint-style workloads rely on.
func (e *Engine) StopSources() { e.sourcesStopped = true }

// Inject enqueues a message directly into src's source queue, bypassing the
// traffic source. It is the hook for hand-built scenarios (tests, examples).
// The message is generated at the current cycle and participates in
// measurement like any other.
func (e *Engine) Inject(src, dst topology.NodeID, length int) *message.Message {
	if !e.topo.Valid(src) || !e.topo.Valid(dst) {
		panic(fmt.Sprintf("sim: invalid endpoints %d -> %d", src, dst))
	}
	if src == dst {
		panic("sim: self-addressed message")
	}
	m := message.New(e.nextID, src, dst, length, e.now)
	e.nextID++
	m.Measured = e.col.OnGenerated(e.now)
	e.nodes[src].queue = append(e.nodes[src].queue, m)
	e.generated++
	return m
}

// inVCIndex flattens (port, vc) into the node's agent index space.
func (e *Engine) inVCIndex(p topology.Port, vc int8) int {
	return int(p)*e.cfg.VCs + int(vc)
}

// injIndex returns the agent index of injection channel i.
func (e *Engine) injIndex(i int) int { return e.numPhys*e.cfg.VCs + i }
