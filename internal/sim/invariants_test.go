package sim

import (
	"strings"
	"testing"

	"wormnet/internal/baseline"
	"wormnet/internal/message"
)

// The invariant checker is itself load-bearing for the test suite, so these
// tests corrupt engine state deliberately and verify each class of
// violation is caught. Direct buffer pushes must keep the occVCs active-set
// counter consistent, or the counter check would mask the targeted one.

func TestInvariantCatchesUntrackedFlit(t *testing.T) {
	e := idle(t, nil)
	m := message.New(999, 0, 5, 4, 0)
	m.FlitsSent = 1
	// A flit parked in a buffer with no path entry.
	e.nodes[3].in[0].buf.Push(message.MakeFlit(m, 0))
	e.nodes[3].in[0].owner = m
	e.nodes[3].occVCs++
	e.nodes[3].inEmpty[0] &^= 1
	err := e.CheckInvariants()
	if err == nil {
		t.Fatal("untracked buffered flit not caught")
	}
	if !strings.Contains(err.Error(), "path") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestInvariantCatchesMixedBuffer(t *testing.T) {
	e := idle(t, nil)
	m1 := message.New(1, 0, 5, 4, 0)
	m2 := message.New(2, 0, 5, 4, 0)
	m1.Path = []pathLoc{{Node: 3, Port: 0, VC: 0}}
	buf := &e.nodes[3].in[0].buf
	buf.Push(message.MakeFlit(m1, 0))
	buf.Push(message.MakeFlit(m2, 0))
	e.nodes[3].in[0].owner = m1
	e.nodes[3].occVCs++
	e.nodes[3].inEmpty[0] &^= 1
	err := e.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "share a buffer") {
		t.Fatalf("mixed buffer not caught: %v", err)
	}
}

func TestInvariantCatchesFlitCountMismatch(t *testing.T) {
	e := idle(t, nil)
	m := message.New(1, 0, 5, 4, 0)
	m.FlitsSent = 3 // three sent, only one buffered
	m.Path = []pathLoc{{Node: 3, Port: 0, VC: 0}}
	e.nodes[3].in[0].buf.Push(message.MakeFlit(m, 0))
	e.nodes[3].in[0].owner = m
	e.nodes[3].occVCs++
	e.nodes[3].inEmpty[0] &^= 1
	err := e.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "buffered") {
		t.Fatalf("flit conservation not caught: %v", err)
	}
}

func TestInvariantCatchesNonAscendingSeq(t *testing.T) {
	e := idle(t, nil)
	m := message.New(1, 0, 5, 8, 0)
	m.FlitsSent = 2
	m.Path = []pathLoc{{Node: 3, Port: 0, VC: 0}}
	buf := &e.nodes[3].in[0].buf
	buf.Push(message.MakeFlit(m, 2))
	buf.Push(message.MakeFlit(m, 1)) // out of order
	e.nodes[3].in[0].owner = m
	e.nodes[3].occVCs++
	e.nodes[3].inEmpty[0] &^= 1
	err := e.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "ascending") {
		t.Fatalf("sequence violation not caught: %v", err)
	}
}

func TestInvariantCatchesDeliveredOwner(t *testing.T) {
	e := idle(t, nil)
	m := message.New(1, 0, 5, 4, 0)
	m.State = message.StateDelivered
	e.nodes[2].out[1].VCs[0].Allocate(m)
	e.nodes[2].freeMask[1] &^= 1
	err := e.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "delivered") {
		t.Fatalf("stale allocation not caught: %v", err)
	}
}

func TestInvariantCatchesDeliveredEjection(t *testing.T) {
	e := idle(t, nil)
	m := message.New(1, 0, 5, 4, 0)
	m.State = message.StateDelivered
	e.nodes[2].ej[0].msg = m
	err := e.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "ej") {
		t.Fatalf("stale ejection channel not caught: %v", err)
	}
}

func TestInvariantCatchesDuplicatePathEntry(t *testing.T) {
	e := idle(t, nil)
	m1 := message.New(1, 0, 5, 4, 0)
	m2 := message.New(2, 0, 5, 4, 0)
	loc := pathLoc{Node: 3, Port: 0, VC: 0}
	m1.Path = []pathLoc{loc}
	m2.Path = []pathLoc{loc}
	// Both messages must be discoverable from network state: give each an
	// output virtual-channel allocation.
	e.nodes[0].out[0].VCs[0].Allocate(m1)
	e.nodes[0].out[0].VCs[1].Allocate(m2)
	e.nodes[0].freeMask[0] &^= 3
	err := e.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "both") {
		t.Fatalf("duplicate path entry not caught: %v", err)
	}
}

func TestInvariantCatchesRouteOwnershipMismatch(t *testing.T) {
	e := idle(t, nil)
	m1 := message.New(1, 0, 5, 4, 0)
	m2 := message.New(2, 0, 5, 4, 0)
	m1.Path = []pathLoc{{Node: 3, Port: 0, VC: 0}}
	m1.FlitsSent = 1
	nd := &e.nodes[3]
	nd.in[0].buf.Push(message.MakeFlit(m1, 0))
	nd.in[0].owner = m1
	nd.occVCs++
	nd.inEmpty[0] &^= 1
	// Route on the VC points at an output channel owned by a different
	// message.
	nd.out[2].VCs[1].Allocate(m2)
	nd.freeMask[2] &^= 2
	nd.routes[0] = routeInfo{valid: true, outPort: 2, outVC: 1}
	nd.routed[0] |= 1
	err := e.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "owned by") {
		t.Fatalf("route ownership mismatch not caught: %v", err)
	}
}

func TestInvariantCatchesCounterDrift(t *testing.T) {
	e := idle(t, nil)
	e.nodes[5].occVCs = 2 // no buffers hold flits
	if err := e.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "occVCs") {
		t.Fatalf("occVCs drift not caught: %v", err)
	}
	e.nodes[5].occVCs = 0
	e.nodes[5].busyInj = 1 // no injection channel is busy
	if err := e.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "busyInj") {
		t.Fatalf("busyInj drift not caught: %v", err)
	}
}

// Running every limiter inside the engine exercises the channelView glue
// (UsefulPorts/FreeVCs/QueuedMessages/HeadWait) and DRIL's Tick hook.
func TestAllLimitersInsideEngine(t *testing.T) {
	for name, f := range baseline.Factories() {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := QuickConfig()
			cfg.Rate = 1.6 // beyond saturation so limiters actually bind
			cfg.Limiter, cfg.LimiterName = f, name
			cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 500, 2500, 300
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < cfg.TotalCycles(); i++ {
				e.Step()
				if i%173 == 0 {
					if err := e.CheckInvariants(); err != nil {
						t.Fatalf("cycle %d: %v", i, err)
					}
				}
			}
			if e.Delivered() == 0 {
				t.Fatal("nothing delivered")
			}
		})
	}
}

func TestChannelViewQueueReporting(t *testing.T) {
	e := idle(t, nil)
	nd := &e.nodes[0]
	v := channelView{e: e, nd: nd}
	if v.QueuedMessages() != 0 || v.HeadWait() != 0 {
		t.Fatal("empty queue must report zeros")
	}
	e.Inject(0, 5, 4)
	e.Inject(0, 6, 4)
	if v.QueuedMessages() != 2 {
		t.Fatalf("QueuedMessages=%d", v.QueuedMessages())
	}
	// Advance time without injecting (freeze injection by filling all
	// injection channels? simpler: check HeadWait grows with now).
	e.now += 25
	if v.HeadWait() != 25 {
		t.Fatalf("HeadWait=%d want 25", v.HeadWait())
	}
	if v.VCs() != e.cfg.VCs || v.NumPorts() != e.numPhys {
		t.Error("geometry accessors")
	}
	ports := v.UsefulPorts(5)
	if len(ports) == 0 {
		t.Error("UsefulPorts empty for a remote destination")
	}
	for _, p := range ports {
		if v.FreeVCs(p) != e.cfg.VCs {
			t.Error("idle network must have all VCs free")
		}
	}
}
