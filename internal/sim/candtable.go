package sim

import (
	"wormnet/internal/routing"
	"wormnet/internal/topology"
)

// portCand is a routing candidate set restricted to one physical port: the
// admissible virtual channels as a bitmask (bit v = VC v admissible). The
// allocator works on this form so that checking a whole port's candidates
// against the free/empty status registers is a handful of mask operations
// rather than a per-VC pointer chase. Within a port the routing algorithms
// emit candidates in ascending VC order, so "first admissible VC" is the
// lowest set bit.
type portCand struct {
	port topology.Port
	mask uint32
}

// packCands converts an ordered candidate list (same-port candidates
// contiguous, as Algorithm.Candidates guarantees) into per-port masks,
// appending to out.
func packCands(cands []routing.Candidate, out []portCand) []portCand {
	for i := 0; i < len(cands); {
		p := cands[i].Port
		var mask uint32
		for ; i < len(cands) && cands[i].Port == p; i++ {
			mask |= 1 << uint(cands[i].VC)
		}
		out = append(out, portCand{port: p, mask: mask})
	}
	return out
}

// candTable is the packed per-(node, destination) routing candidate table.
// On fault-free runs every routing algorithm in the simulator is a pure
// function of (current, destination), so the candidate sets can be computed
// once at construction and the per-header routing call becomes a slice
// lookup.
//
// Candidate sets repeat heavily: they depend on the per-dimension offsets
// (and, for dateline schemes, which wraparounds remain), not on the quarter
// of a million (current, destination) pairs individually, so a 512-node
// torus has a few hundred distinct sets at most. The table therefore stores
// each distinct set once in a pool small enough to stay cache-resident and
// keeps only a per-pair set id — without the dedup, allocation-heavy runs
// spend much of their time missing on megabytes of repeated portCand data.
type candTable struct {
	n      int
	setID  []int32    // per (cur*n+dst): index into setOff
	setOff []int32    // per set id: [setOff[id], setOff[id+1]) in pool
	pool   []portCand // deduplicated candidate sets, back to back
}

// buildCandTable evaluates alg for every (current, destination) pair of an
// n-node network, deduplicating identical candidate sets.
func buildCandTable(alg routing.Algorithm, n int) *candTable {
	t := &candTable{
		n:      n,
		setID:  make([]int32, n*n),
		setOff: []int32{0},
	}
	seen := make(map[string]int32)
	var scratch []routing.Candidate
	var packed []portCand
	var key []byte
	for cur := 0; cur < n; cur++ {
		for dst := 0; dst < n; dst++ {
			packed = packed[:0]
			if cur != dst {
				scratch = alg.Candidates(topology.NodeID(cur), topology.NodeID(dst), scratch[:0])
				packed = packCands(scratch, packed)
			}
			key = key[:0]
			for _, pc := range packed {
				key = append(key, byte(pc.port),
					byte(pc.mask), byte(pc.mask>>8), byte(pc.mask>>16), byte(pc.mask>>24))
			}
			id, ok := seen[string(key)]
			if !ok {
				id = int32(len(t.setOff) - 1)
				seen[string(key)] = id
				t.pool = append(t.pool, packed...)
				t.setOff = append(t.setOff, int32(len(t.pool)))
			}
			t.setID[cur*n+dst] = id
		}
	}
	return t
}

// get returns the candidate set of a header at cur addressed to dst.
func (t *candTable) get(cur, dst topology.NodeID) []portCand {
	id := t.setID[int(cur)*t.n+int(dst)]
	return t.pool[t.setOff[id]:t.setOff[id+1]:t.setOff[id+1]]
}
