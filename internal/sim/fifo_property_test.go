package sim

import (
	"math/rand/v2"
	"testing"

	"wormnet/internal/message"
)

// TestFIFOPropertyNeverReorders drives msgFIFO with random operation
// sequences against a plain-slice reference model and asserts after every
// operation that the queue holds exactly the model's messages in the
// model's order. The FIFO's rewind and compaction heuristics make its
// internal layout depend on the operation history; this test pins that none
// of that ever reorders or loses a pending message — the paper's injection
// policy (older messages first, retries ahead of fresh traffic) depends
// on it.
func TestFIFOPropertyNeverReorders(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 99))
	var q msgFIFO
	var model []*message.Message
	nextID := message.ID(0)
	mk := func() *message.Message {
		m := message.New(nextID, 0, 1, 1, 0)
		nextID++
		return m
	}
	check := func(op string) {
		t.Helper()
		if q.Len() != len(model) {
			t.Fatalf("after %s: Len=%d model=%d", op, q.Len(), len(model))
		}
		if q.Empty() != (len(model) == 0) {
			t.Fatalf("after %s: Empty=%v model=%d", op, q.Empty(), len(model))
		}
		for i := range model {
			if q.At(i) != model[i] {
				t.Fatalf("after %s: At(%d)=msg %d, model has msg %d",
					op, i, q.At(i).ID, model[i].ID)
			}
		}
		if len(model) > 0 && q.Front() != model[0] {
			t.Fatalf("after %s: Front=msg %d, model front is msg %d", op, q.Front().ID, model[0].ID)
		}
	}
	for op := 0; op < 50000; op++ {
		switch r := rng.IntN(100); {
		case r < 45: // push a fresh message at the back
			m := mk()
			q.Push(m)
			model = append(model, m)
			check("Push")
		case r < 85: // pop the front
			if len(model) == 0 {
				continue
			}
			got := q.PopFront()
			want := model[0]
			model = model[1:]
			if got != want {
				t.Fatalf("op %d: PopFront=msg %d, model front was msg %d", op, got.ID, want.ID)
			}
			check("PopFront")
		case r < 97: // prepend a retry batch, order preserved
			batch := make([]*message.Message, rng.IntN(4))
			for i := range batch {
				batch[i] = mk()
			}
			q.PushFront(batch)
			model = append(append([]*message.Message{}, batch...), model...)
			check("PushFront")
		default:
			q.Clear()
			model = model[:0]
			check("Clear")
		}
	}
}
