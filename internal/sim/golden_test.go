package sim

import (
	"fmt"
	"testing"

	"wormnet/internal/baseline"
)

// TestGoldenDeterminism pins the simulation results of every injection
// limiter × traffic pattern combination at Quick scale to digests recorded
// from the engine as of PR 1 (before the hot-path optimisations of PR 2).
// The digests cover accepted traffic, average latency and the detected
// deadlock percentage, formatted to 10 significant digits, at an offered
// load well beyond saturation so that throttling, head-of-line blocking and
// deadlock recovery are all active.
//
// This test is the safety net for engine rewrites: any change to iteration
// order, arbitration state, or allocation decisions shows up here as a
// digest mismatch. Performance work must keep it passing bit-for-bit.
func TestGoldenDeterminism(t *testing.T) {
	cases := []struct {
		limiter string
		pattern string
		digest  string
	}{
		{"none", "uniform", "1.294833333|2203.439873|0.05146680391"},
		{"none", "complement", "0.8378333333|4033.832432|0"},
		{"lf", "uniform", "1.297833333|2255.887377|0.03854554799"},
		{"lf", "complement", "0.8378333333|4033.832432|0"},
		{"dril", "uniform", "0.8116666667|3493.101397|0"},
		{"dril", "complement", "0.7608333333|2719.859125|0"},
		{"alo", "uniform", "1.274666667|2282.33952|0"},
		{"alo", "complement", "0.8353333333|4062.28637|0"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.limiter+"/"+c.pattern, func(t *testing.T) {
			t.Parallel()
			cfg := QuickConfig()
			cfg.Pattern = c.pattern
			cfg.Rate = 2.0 // far beyond saturation
			cfg.Limiter = baseline.Factories()[c.limiter]
			cfg.LimiterName = c.limiter
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := e.Run()
			got := fmt.Sprintf("%.10g|%.10g|%.10g", r.Accepted, r.AvgLatency, r.DeadlockPct)
			if got != c.digest {
				t.Errorf("result digest changed:\n got  %s\n want %s", got, c.digest)
			}
		})
	}
}
