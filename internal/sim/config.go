// Package sim is the cycle-driven flit-level wormhole network simulator.
//
// It composes the substrate packages — topology, router, routing, traffic,
// deadlock, stats — into the network model of the paper's §4.1: a
// bidirectional k-ary n-cube whose routers have four injection and four
// ejection channels, physical channels split into virtual channels with
// four-flit buffers, one-cycle routing/crossbar/link stages, true fully
// adaptive routing with FC3D-style deadlock detection and software-based
// recovery, and a pluggable message-injection limitation mechanism
// (internal/core, internal/baseline).
//
// Time advances in global synchronous cycles. Each cycle runs five phases:
// message generation, injection-limitation decisions, virtual-channel
// allocation (routing), separable switch allocation, and two-phase flit
// movement (all moves are planned against start-of-cycle state, then
// applied). A buffer slot freed in cycle t becomes usable in cycle t+1,
// which models a one-cycle credit loop.
package sim

import (
	"fmt"
	"runtime"

	"wormnet/internal/baseline"
	"wormnet/internal/core"
	"wormnet/internal/deadlock"
	"wormnet/internal/fault"
	"wormnet/internal/topology"
	"wormnet/internal/traffic"
)

// Config describes one simulation run. The zero value is not runnable; use
// DefaultConfig or fill the fields and let New validate them.
type Config struct {
	// Topology.
	K int // radix of the k-ary n-cube
	N int // dimensions

	// Router microarchitecture.
	VCs         int // virtual channels per physical channel (paper: up to 3)
	BufDepth    int // flits per virtual-channel buffer (paper: 4)
	InjChannels int // injection channels per node (paper: 4)
	EjChannels  int // ejection channels per node (paper: 4)

	// Routing engine: "tfar" (default, needs deadlock recovery), "duato"
	// (adaptive with escape channels, deadlock-free) or "dor"
	// (deterministic dateline dimension-order, deadlock-free).
	Routing string

	// Workload.
	Pattern string  // traffic pattern name, see traffic.ByName
	MsgLen  int     // message length in flits (paper: 16 or 64)
	Rate    float64 // offered load in flits/node/cycle

	// Burst enables on/off modulated sources with the given mean ON/OFF
	// period lengths; the zero value keeps the steady Poisson process. The
	// long-run average load stays Rate, the ON-period peak is
	// Rate*Burst.PeakFactor().
	Burst traffic.BurstProfile

	// Sources, when non-nil, overrides the built-in Poisson/bursty traffic
	// generators: each node's generator comes from this factory instead
	// (e.g. a traffic.ScriptSource replaying a recorded schedule). Pattern,
	// Rate and Burst are ignored for generation when set. SourceName must
	// then be set too: factories are funcs and carry no identity of their
	// own, and the name stands in for the factory in ConfigDigest — two
	// configs with the same SourceName are assumed to produce identical
	// generators.
	Sources traffic.SourceFactory
	// SourceName labels the custom source in manifests and the config
	// digest; it must uniquely describe the factory's behaviour.
	SourceName string

	// Adversary is the adversarial workload overlay: a seeded fraction of
	// rogue nodes offering duty-cycled hotspot storms that bypass the
	// injection limiter (see AdversaryProfile). The zero value disables it.
	// Mutually exclusive with Sources — the overlay decides per-node
	// generators itself. When enabled, the collector splits its accounting
	// into "good" and "rogue" classes (stats.ClassResult).
	Adversary AdversaryProfile

	// Injection limitation mechanism. Nil means no limitation.
	Limiter core.Factory
	// LimiterName labels the mechanism in results (factories are funcs and
	// carry no name of their own).
	LimiterName string

	// Deadlock handling.
	DetectionThreshold int32 // consecutive blocked cycles (paper: 32); <1 disables
	RecoveryDelay      int64 // software re-injection cost in cycles
	// LenientDetection drops the flit-activity "vital sign" from the
	// detection criterion: a header is presumed deadlocked after
	// DetectionThreshold blocked cycles whenever none of its candidate
	// virtual channels is free, even if flits are still moving through
	// them. This matches cruder timeout-style detectors (and produces much
	// higher detected-deadlock percentages at saturation, like the paper's
	// 20-70% figures); the default strict criterion fires only on total
	// stillness.
	LenientDetection bool

	// Faults is the fault-injection schedule: timed link and router
	// failures (and repairs) applied at cycle boundaries. Nil or empty
	// disables fault injection entirely — the engine then runs the exact
	// fault-free code path of the seed simulator.
	Faults *fault.Schedule
	// Retry is the source-retry policy for messages killed by faults. The
	// zero value selects fault.DefaultRetryPolicy; ignored when Faults is
	// empty.
	Retry fault.RetryPolicy

	// Measurement.
	WarmupCycles  int64 // cycles before the measurement window opens
	MeasureCycles int64 // length of the measurement window
	DrainCycles   int64 // extra cycles after the window to let messages finish

	// Seed drives all of the run's (deterministic) randomness.
	Seed uint64

	// Workers is the number of goroutines the engine shards each cycle
	// across. 0 and 1 select the serial path; higher values partition the
	// node arenas into Workers contiguous shards and run the engine phases
	// shard-parallel with barriers in between. Results are bit-identical to
	// serial for any worker count (see TestGoldenParallelEquivalence); an
	// engine with Workers > 1 owns background goroutines and should be
	// released with Engine.Close when the run is done.
	Workers int
}

// DefaultConfig returns the paper's standard configuration: an 8-ary 3-cube
// with 3 virtual channels of 4-flit buffers, TFAR routing, FC3D detection at
// 32 cycles, software recovery, uniform traffic with 16-flit messages, and
// the ALO limiter.
func DefaultConfig() Config {
	return Config{
		K: 8, N: 3,
		VCs: 3, BufDepth: 4,
		InjChannels: 4, EjChannels: 4,
		Routing: "tfar",
		Pattern: "uniform", MsgLen: 16, Rate: 0.3,
		Limiter: core.NewALO(), LimiterName: "alo",
		DetectionThreshold: deadlock.DefaultThreshold,
		RecoveryDelay:      deadlock.DefaultProcessingDelay,
		WarmupCycles:       8000, MeasureCycles: 24000, DrainCycles: 2000,
		Seed: 1,
	}
}

// QuickConfig returns a scaled-down configuration (4-ary 2-cube, shorter
// run) that preserves the model's behaviour at a fraction of the cost; it
// is what the test suite and the benchmark harness use.
func QuickConfig() Config {
	c := DefaultConfig()
	c.K, c.N = 4, 2
	c.WarmupCycles, c.MeasureCycles, c.DrainCycles = 2000, 6000, 1000
	return c
}

// validate checks the configuration and applies the few defaults that have
// unambiguous values.
func (c *Config) validate() error {
	switch {
	case c.K < 2 || c.N < 1:
		return fmt.Errorf("sim: bad topology %d-ary %d-cube", c.K, c.N)
	case c.VCs < 1:
		return fmt.Errorf("sim: need at least 1 virtual channel, got %d", c.VCs)
	case c.BufDepth < 1:
		return fmt.Errorf("sim: need buffer depth >= 1, got %d", c.BufDepth)
	case c.InjChannels < 1 || c.EjChannels < 1:
		return fmt.Errorf("sim: need at least 1 injection and ejection channel")
	case c.MsgLen < 1:
		return fmt.Errorf("sim: message length %d < 1", c.MsgLen)
	case c.Rate < 0:
		return fmt.Errorf("sim: negative offered rate %v", c.Rate)
	case c.MeasureCycles < 1:
		return fmt.Errorf("sim: measurement window must be positive")
	case c.WarmupCycles < 0 || c.DrainCycles < 0:
		return fmt.Errorf("sim: negative warmup or drain")
	case c.RecoveryDelay < 0:
		return fmt.Errorf("sim: negative recovery delay")
	case c.Workers < 0:
		return fmt.Errorf("sim: negative worker count %d", c.Workers)
	}
	if c.Routing == "" {
		c.Routing = "tfar"
	}
	switch c.Routing {
	case "tfar", "dor", "duato":
	default:
		return fmt.Errorf("sim: unknown routing %q", c.Routing)
	}
	if c.Routing == "dor" && c.VCs < 2 && c.K > 2 {
		return fmt.Errorf("sim: dor routing needs >= 2 virtual channels")
	}
	if c.Routing == "duato" && c.VCs < 3 {
		return fmt.Errorf("sim: duato routing needs >= 3 virtual channels")
	}
	if c.Pattern == "" {
		c.Pattern = "uniform"
	}
	if _, err := traffic.ByName(c.Pattern, topology.New(c.K, c.N)); err != nil {
		return err
	}
	if err := c.Burst.Validate(); err != nil {
		return err
	}
	if !c.Faults.Empty() {
		if err := c.Faults.Validate(topology.New(c.K, c.N)); err != nil {
			return err
		}
		if c.Retry == (fault.RetryPolicy{}) {
			c.Retry = fault.DefaultRetryPolicy()
		}
		if err := c.Retry.Validate(); err != nil {
			return err
		}
	}
	if c.Limiter == nil {
		c.Limiter = baseline.NewNone()
		if c.LimiterName == "" {
			c.LimiterName = "none"
		}
	}
	if c.LimiterName == "" {
		c.LimiterName = "custom"
	}
	if c.Adversary.Enabled() {
		if c.Sources != nil {
			return fmt.Errorf("sim: Adversary and custom Sources are mutually exclusive")
		}
		if err := c.Adversary.Validate(topology.New(c.K, c.N)); err != nil {
			return err
		}
	}
	if c.Sources != nil && c.SourceName == "" {
		return fmt.Errorf("sim: custom Sources needs a SourceName for the config digest")
	}
	if c.Sources == nil && c.SourceName != "" {
		return fmt.Errorf("sim: SourceName %q set without custom Sources", c.SourceName)
	}
	return nil
}

// TotalCycles returns the full run length.
func (c Config) TotalCycles() int64 {
	return c.WarmupCycles + c.MeasureCycles + c.DrainCycles
}

// Manifest returns the configuration as a flat, JSON-marshalable map for
// run manifests (obs.NewManifest). Func-typed fields (the limiter factory)
// are represented by their name; the fault schedule by its event count.
func (c Config) Manifest() map[string]any {
	m := map[string]any{
		"k": c.K, "n": c.N,
		"vcs": c.VCs, "buf_depth": c.BufDepth,
		"inj_channels": c.InjChannels, "ej_channels": c.EjChannels,
		"routing": c.Routing,
		"pattern": c.Pattern, "msg_len": c.MsgLen, "rate": c.Rate,
		"limiter":             c.LimiterName,
		"detection_threshold": c.DetectionThreshold,
		"recovery_delay":      c.RecoveryDelay,
		"lenient_detection":   c.LenientDetection,
		"warmup_cycles":       c.WarmupCycles,
		"measure_cycles":      c.MeasureCycles,
		"drain_cycles":        c.DrainCycles,
		"seed":                c.Seed,
		"workers":             c.Workers,
	}
	if c.Burst.Enabled() {
		m["burst_on"], m["burst_off"] = c.Burst.OnMean, c.Burst.OffMean
	}
	if c.Sources != nil {
		m["source"] = c.SourceName
	}
	if !c.Faults.Empty() {
		m["fault_events"] = len(c.Faults.Events())
	}
	if c.Adversary.Enabled() {
		m["adv_rogue_fraction"] = c.Adversary.RogueFraction
		m["adv_rogue_rate"] = c.Adversary.RogueRate
		m["adv_storm_period"] = c.Adversary.StormPeriod
		m["adv_storm_on"] = c.Adversary.StormOn
		m["adv_hotspot"] = int(c.Adversary.Hotspot)
		m["adv_seed"] = c.Adversary.Seed
	}
	return m
}

// DefaultWorkers returns a reasonable Workers value for running one engine
// on the current machine: GOMAXPROCS — the number of goroutines that can
// actually run, which the scheduler may cap well below NumCPU in
// containers or under explicit limits — capped at 8 (the phase barriers
// outgrow the per-shard work beyond that on the paper's network sizes).
// Callers running many engines concurrently (sweeps) should stay at 1.
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// WithLimiter returns a copy of the config using the named limiter factory.
func (c Config) WithLimiter(name string, f core.Factory) Config {
	c.Limiter = f
	c.LimiterName = name
	return c
}

// WithRate returns a copy of the config at a different offered load.
func (c Config) WithRate(rate float64) Config {
	c.Rate = rate
	return c
}

// WithFaults returns a copy of the config using the given fault schedule.
func (c Config) WithFaults(s *fault.Schedule) Config {
	c.Faults = s
	return c
}
