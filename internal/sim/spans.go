package sim

// Message-lifecycle span instrumentation. A span decomposes one message's
// latency into source-queue wait, per-hop channel-acquire block time and
// drain time, with the injection limiter's denial pushback attributed to the
// ALO rules — the "where did the cycles go" view the saturation analysis
// needs (DESIGN.md §15).
//
// Like the metrics layer, spans are strictly observational: every hook reads
// engine state and writes only span state, so results are bit-identical with
// spans on or off (TestSpanDeterminism pins this at workers 1 and 4), and a
// disabled engine (e.spans == nil) pays one nil check per site.
//
// Sampling is deterministic: message IDs are assigned in serial commit order
// on every path, so "ID % every == 0" selects the same messages — and
// produces the same records in the same order — for any worker count.
//
// Concurrency (parallel engine): the live-record map is mutated only in
// serial contexts — generation commits, delivery/drop commits, recovery and
// retry teardowns, all of which run at barrier arrival or between cycles.
// The parallel sections only *read* the map and write fields of the looked-up
// record, and every such write is exclusive for the cycle: deny/admit run on
// the message's source-node shard, allocation on the shard holding its
// header, and the head flit (a single flit) arrives at most once per cycle —
// its cross-shard hop-append is ordered behind the ring publish the
// consumer's acquire-load synchronizes with.

import (
	"wormnet/internal/message"
	"wormnet/internal/metrics"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
)

// DefaultSpanSampleEvery is the default span-sampling period: one in every
// N generated messages carries a span.
const DefaultSpanSampleEvery = 16

// spanCycleBounds are the cycle-valued histogram buckets shared by the
// blocked-time decompositions (queue wait, per-hop block, drain, latency).
var spanCycleBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// engineSpans is the span tracker: the live records of sampled in-flight
// messages, a free list that recycles finished records (steady state
// allocates nothing once Hops capacities have grown to the path lengths the
// workload produces), the optional sink, and the aggregated histograms.
type engineSpans struct {
	every int64
	sink  trace.SpanSink
	live  map[message.ID]*trace.SpanRecord
	free  []*trace.SpanRecord

	// Aggregates (nil metrics when spans run without a registry).
	queueWait  *metrics.Histogram
	hopBlock   *metrics.Histogram
	drainTime  *metrics.Histogram
	netLatency *metrics.Histogram
	latency    *metrics.Histogram
	hopCount   *metrics.Histogram
	sampled    *metrics.Counter
	completed  *metrics.Counter
	discarded  *metrics.Counter
}

// EnableSpans attaches message-lifecycle span tracking to a fresh engine
// (before the first Step). One in every sampleEvery generated messages
// (<= 0 selects DefaultSpanSampleEvery) is tracked; finished spans are
// aggregated into reg's sim_span_* series and handed to sink. Either reg or
// sink may be nil (aggregate-only / export-only); passing both nil detaches.
// Spans never change simulation results.
func (e *Engine) EnableSpans(reg *metrics.Registry, sampleEvery int64, sink trace.SpanSink) {
	if reg == nil && sink == nil {
		e.spans = nil
		return
	}
	if sampleEvery <= 0 {
		sampleEvery = DefaultSpanSampleEvery
	}
	s := &engineSpans{
		every: sampleEvery,
		sink:  sink,
		live:  make(map[message.ID]*trace.SpanRecord),
	}
	if reg != nil {
		h := func(name, help string) *metrics.Histogram {
			return reg.NewHistogram(name, help, spanCycleBounds)
		}
		s.queueWait = h("sim_span_queue_wait_cycles", "sampled spans: source-queue wait (generation to injection-channel claim)")
		s.hopBlock = h("sim_span_hop_block_cycles", "sampled spans: per-hop channel-acquire block time (one observation per hop)")
		s.drainTime = h("sim_span_drain_cycles", "sampled spans: drain time (last channel grant to tail delivery)")
		s.netLatency = h("sim_span_net_latency_cycles", "sampled spans: in-network latency (claim to delivery)")
		s.latency = h("sim_span_latency_cycles", "sampled spans: total latency (generation to delivery)")
		s.hopCount = reg.NewHistogram("sim_span_hops", "sampled spans: channel acquisitions of the final attempt",
			[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24})
		s.sampled = reg.NewCounter("sim_spans_sampled_total", "messages selected for span tracking")
		s.completed = reg.NewCounter("sim_spans_completed_total", "sampled spans finished by delivery")
		s.discarded = reg.NewCounter("sim_spans_discarded_total", "sampled spans finished by a permanent drop")
	}
	e.spans = s
}

// spanGenerate starts a span for m if its ID selects it. Serial contexts
// only (phaseGenerate, commitGenerate, Inject).
func (e *Engine) spanGenerate(m *message.Message) {
	s := e.spans
	if int64(m.ID)%s.every != 0 {
		return
	}
	var rec *trace.SpanRecord
	if n := len(s.free); n > 0 {
		rec = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		rec = &trace.SpanRecord{}
	}
	rec.Reset()
	rec.ID = int64(m.ID)
	rec.Src, rec.Dst, rec.Len = m.Src, m.Dst, m.Length
	rec.Gen = e.now
	s.live[m.ID] = rec
	if s.sampled != nil {
		s.sampled.Inc()
	}
}

// spanDeny charges one limiter denial (with ALO rule attribution) to m's
// span. Runs on the source node's shard; map read only.
func (e *Engine) spanDeny(nd *node, m *message.Message) {
	rec, ok := e.spans.live[m.ID]
	if !ok {
		return
	}
	rec.Denies++
	if nd.limClass == nil {
		return
	}
	a, b := nd.limClass.ClassifyRules(nd.view, m.Dst)
	if !a {
		rec.DeniesRuleA++
	}
	if !b {
		rec.DeniesRuleB++
	}
}

// spanClaim records m leaving the source queue (or the recovery/retry queue)
// into an injection channel: the admit time on the first claim, and the
// source hop of the current attempt. Runs on the source node's shard.
func (e *Engine) spanClaim(m *message.Message, at topology.NodeID) {
	rec, ok := e.spans.live[m.ID]
	if !ok {
		return
	}
	if rec.Admit < 0 {
		rec.Admit = e.now
	}
	rec.Hops = append(rec.Hops, trace.SpanHop{Node: at, Arrive: e.now, Alloc: -1})
}

// spanAlloc records the channel grant that unblocks m's newest hop (the
// source hop for injection routing, the head's current hop in the network,
// the ejection-channel grant at the destination). Runs on the shard holding
// the header.
func (e *Engine) spanAlloc(m *message.Message) {
	rec, ok := e.spans.live[m.ID]
	if !ok {
		return
	}
	if n := len(rec.Hops); n > 0 && rec.Hops[n-1].Alloc < 0 {
		rec.Hops[n-1].Alloc = e.now
	}
}

// spanInject records the head flit entering the network. Like the engine's
// own InjectTime, the inject mark is first-attempt-only (teardown resets do
// not clear it).
func (e *Engine) spanInject(m *message.Message) {
	if rec, ok := e.spans.live[m.ID]; ok && rec.Inject < 0 {
		rec.Inject = e.now
	}
}

// spanHopArrive records m's head flit landing in node at's input buffer,
// opening the hop whose block time runs until spanAlloc. Runs on the shard
// owning the receiving node (the head arrives at most once per cycle, and
// cross-shard arrivals are ordered behind the push-ring publish).
func (e *Engine) spanHopArrive(m *message.Message, at topology.NodeID) {
	rec, ok := e.spans.live[m.ID]
	if !ok {
		return
	}
	rec.Hops = append(rec.Hops, trace.SpanHop{Node: at, Arrive: e.now, Alloc: -1})
}

// spanTeardown truncates the span's hops after a recovery or fault-kill
// teardown: the next claim starts the record of a fresh attempt. Serial /
// barrier-exclusive contexts only (teardowns never run inside a parallel
// section).
func (e *Engine) spanTeardown(m *message.Message) {
	if rec, ok := e.spans.live[m.ID]; ok {
		rec.Hops = rec.Hops[:0]
	}
}

// spanDeliver finishes m's span at delivery: aggregate, hand to the sink,
// recycle. Serial contexts only (serial phaseMove, parallel commitEvents),
// so sinks see spans in delivery order on every path.
func (e *Engine) spanDeliver(m *message.Message) {
	s := e.spans
	rec, ok := s.live[m.ID]
	if !ok {
		return
	}
	rec.Deliver = e.now
	rec.Recoveries, rec.Retries = m.Recoveries, m.Retries
	if s.queueWait != nil {
		s.queueWait.Observe(float64(rec.QueueWait()))
		for _, hp := range rec.Hops {
			if hp.Alloc >= 0 {
				s.hopBlock.Observe(float64(hp.Alloc - hp.Arrive))
			}
		}
		if d := rec.DrainCycles(); d >= 0 {
			s.drainTime.Observe(float64(d))
		}
		s.netLatency.Observe(float64(rec.NetLatency()))
		s.latency.Observe(float64(rec.Deliver - rec.Gen))
		s.hopCount.Observe(float64(len(rec.Hops)))
		s.completed.Inc()
	}
	s.finish(m.ID, rec)
}

// spanDiscard finishes m's span at a permanent drop: the partial record
// (Deliver stays -1) still reaches the sink. Serial contexts only.
func (e *Engine) spanDiscard(m *message.Message) {
	s := e.spans
	rec, ok := s.live[m.ID]
	if !ok {
		return
	}
	rec.Recoveries, rec.Retries = m.Recoveries, m.Retries
	if s.discarded != nil {
		s.discarded.Inc()
	}
	s.finish(m.ID, rec)
}

// finish emits the record, removes it from the live set and recycles it.
func (s *engineSpans) finish(id message.ID, rec *trace.SpanRecord) {
	if s.sink != nil {
		s.sink.SpanDone(rec)
	}
	delete(s.live, id)
	s.free = append(s.free, rec)
}
