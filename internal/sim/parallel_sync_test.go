package sim

import (
	"runtime"
	"testing"

	"wormnet/internal/baseline"
)

// TestBarrierBudget pins the synchronisation cost of the parallel cycle:
// a steady-state cycle (no recovery or fault trigger possible) must cross
// exactly 4 barriers, and even a trigger cycle — where the allocation
// phase splits around the serial suffix — at most 5. The barrier
// generation counter advances by one per barrier, so the per-Step delta
// is the barrier count.
func TestBarrierBudget(t *testing.T) {
	// Light load under the default limiter: no blockage counter ever nears
	// the detection threshold, so every cycle takes the trigger-free path.
	cfg := QuickConfig()
	cfg.Rate = 0.3
	cfg.Workers = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for c := 0; c < 500; c++ {
		before := e.par.bar.gen.Load()
		e.Step()
		if d := e.par.bar.gen.Load() - before; d != 4 {
			t.Fatalf("steady-state cycle %d crossed %d barriers, want 4", c, d)
		}
	}

	// Saturated with recoveries firing: trigger cycles add exactly one
	// barrier for the serial allocation suffix, never more.
	hot := QuickConfig()
	hot.Rate = 2.0
	hot.Limiter = baseline.Factories()["none"]
	hot.LimiterName = "none"
	hot.Workers = 4
	eh, err := New(hot)
	if err != nil {
		t.Fatal(err)
	}
	defer eh.Close()
	saw5 := false
	for c := 0; c < 3000; c++ {
		before := eh.par.bar.gen.Load()
		eh.Step()
		switch d := eh.par.bar.gen.Load() - before; d {
		case 4:
		case 5:
			saw5 = true
		default:
			t.Fatalf("cycle %d crossed %d barriers, want 4 or 5", c, d)
		}
	}
	if !saw5 {
		t.Error("saturated run never took the 5-barrier trigger path; scenario is vacuous")
	}
}

// TestBarrierSpinAdaptive checks that the barrier's spin budget is chosen
// from GOMAXPROCS at construction: a single-P host gets no spin at all
// (spinning can never make another shard arrive there), oversubscribed
// partitions a short one, and a P-per-shard machine the full budget.
func TestBarrierSpinAdaptive(t *testing.T) {
	restore := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(restore)

	cfg := QuickConfig()
	cfg.Workers = 4
	spinAt := func(procs int) int32 {
		runtime.GOMAXPROCS(procs)
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		return e.par.bar.spin
	}
	if s := spinAt(1); s != 0 {
		t.Errorf("GOMAXPROCS=1: spin = %d, want 0 (yield immediately)", s)
	}
	if s := spinAt(2); s <= 0 || s >= 200 {
		t.Errorf("GOMAXPROCS=2, 4 shards: spin = %d, want reduced (0 < spin < 200)", s)
	}
	if s := spinAt(4); s != 200 {
		t.Errorf("GOMAXPROCS=4, 4 shards: spin = %d, want full budget 200", s)
	}
}

// TestParallelGoroutinePath forces the worker-pool schedule on hosts where
// newParRuntime would latch the inline one: with GOMAXPROCS raised above
// one before construction, real workers spawn, and their preemptive
// interleaving (plus, under -race, the race detector) exercises the
// barrier protocol and the push rings no matter what machine the suite
// runs on. The saturated-recovery scenario keeps the trigger path and its
// serial allocation suffix in play.
func TestParallelGoroutinePath(t *testing.T) {
	restore := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(restore)
	runtime.GOMAXPROCS(2)

	cfg := equivalenceConfigs()["saturated-recovery"]
	probe, err := New(func() Config { c := cfg; c.Workers = 4; return c }())
	if err != nil {
		t.Fatal(err)
	}
	if probe.par == nil || probe.par.inline || len(probe.par.wake) == 0 {
		probe.Close()
		t.Fatal("GOMAXPROCS=2 engine did not take the worker-pool path")
	}
	probe.Close()

	baseRes, _, baseEvents, baseCounters := runTraced(t, cfg, 1)
	res, _, events, counters := runTraced(t, cfg, 4)
	if res != baseRes || counters != baseCounters || len(events) != len(baseEvents) {
		t.Fatalf("goroutine path diverged: %+v vs %+v (%d vs %d events)",
			res, baseRes, len(events), len(baseEvents))
	}
	for i := range events {
		if events[i] != baseEvents[i] {
			t.Fatalf("event %d diverged:\n got  %+v\n want %+v", i, events[i], baseEvents[i])
		}
	}
}

// TestDefaultWorkersClamp covers the GOMAXPROCS clamp of DefaultWorkers —
// containers and explicit limits can cap runnable goroutines well below
// NumCPU, and spawning more shards than Ps only adds barrier overhead —
// plus Engine.Close at the clamped counts.
func TestDefaultWorkersClamp(t *testing.T) {
	restore := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(restore)

	for _, tc := range []struct{ procs, want int }{
		{1, 1}, {3, 3}, {8, 8}, {16, 8}, // capped at 8
	} {
		runtime.GOMAXPROCS(tc.procs)
		if got := DefaultWorkers(); got != tc.want {
			t.Errorf("GOMAXPROCS=%d: DefaultWorkers() = %d, want %d", tc.procs, got, tc.want)
		}
	}

	// An engine built at each clamped count must start, step and Close
	// cleanly — including workers=1, where no parallel runtime exists and
	// Close is a no-op.
	for _, procs := range []int{1, 3, 16} {
		runtime.GOMAXPROCS(procs)
		cfg := QuickConfig()
		cfg.Rate = 0.5
		cfg.Workers = DefaultWorkers()
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		for c := 0; c < 100; c++ {
			e.Step()
		}
		e.Close()
		e.Step() // serial continuation after Close
		if err := e.CheckInvariants(); err != nil {
			t.Errorf("procs=%d (workers=%d): %v", procs, cfg.Workers, err)
		}
		e.Close() // double Close is a no-op
	}
}

// TestShardAlignmentPartition checks the cache-line-aligned shard split:
// boundaries are rounded to whole status-word cache lines when the node
// count allows, the partition always covers [0, n) exactly with non-empty
// shards, and — since golden equivalence already proves results are
// partition-independent — a large aligned topology still reproduces the
// plain split's invariants.
func TestShardAlignmentPartition(t *testing.T) {
	cfg := QuickConfig()
	cfg.K, cfg.N = 8, 2 // 64 nodes, 4 ports: 4 nodes per 64-byte line
	cfg.Rate = 0.7
	cfg.Workers = 3
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	p := e.par
	unit := alignNodes(e.numPhys)
	prev := 0
	for i := range p.shards {
		sh := &p.shards[i]
		if sh.lo != prev {
			t.Fatalf("shard %d starts at %d, previous ended at %d", i, sh.lo, prev)
		}
		if sh.hi <= sh.lo {
			t.Fatalf("shard %d is empty [%d,%d)", i, sh.lo, sh.hi)
		}
		if i > 0 && sh.lo%unit != 0 {
			t.Errorf("shard %d boundary %d not aligned to %d-node cache-line unit", i, sh.lo, unit)
		}
		prev = sh.hi
	}
	if prev != len(e.nodes) {
		t.Fatalf("partition ends at %d, want %d", prev, len(e.nodes))
	}
	for c := 0; c < 300; c++ {
		e.Step()
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
