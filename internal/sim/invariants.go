package sim

import (
	"fmt"

	"wormnet/internal/message"
	"wormnet/internal/topology"
)

// CheckInvariants validates the global consistency of the simulation state.
// It is O(network size) and intended for tests, which interleave it with
// Step calls; it returns the first violation found.
//
// Checked invariants:
//  1. Flit conservation: for every message with flits in the network, the
//     flits buffered across all routers equal FlitsSent - FlitsEjected.
//  2. Buffer exclusivity: a virtual-channel buffer only holds flits of a
//     single message, in ascending sequence order.
//  3. Path tracking: every buffer holding flits of a message appears in the
//     message's tracked path, and path entries never point at buffers
//     holding another message's flits.
//  4. Allocation consistency: every allocated output virtual channel is
//     owned by a live (undelivered) message, and every valid forward route
//     points at an output virtual channel owned by the routed message.
//  5. Ejection consistency: a busy ejection channel belongs to exactly one
//     in-flight message.
//  6. Fault consistency (only with fault injection active): no flit sits in
//     a buffer fed by a dead channel or anywhere on a dead router, no
//     route or sender-side allocation crosses a dead channel, a dead
//     router holds no queued work, and no tracked message is dropped.
func (e *Engine) CheckInvariants() error {
	buffered := make(map[*message.Message]int)
	inPath := make(map[pathLoc]*message.Message)
	for m, path := range e.paths {
		for _, loc := range path {
			if prev, dup := inPath[loc]; dup {
				return fmt.Errorf("path loc %+v tracked for both msg %d and msg %d", loc, prev.ID, m.ID)
			}
			inPath[loc] = m
		}
	}

	for _, nd := range e.nodes {
		for p := range nd.in {
			for v := range nd.in[p] {
				ivc := &nd.in[p][v]
				loc := pathLoc{node: nd.id, port: topology.Port(p), vc: int8(v)}
				var owner *message.Message
				prevSeq := -1
				for i := 0; i < ivc.buf.Len(); i++ {
					f := ivc.buf.Pop()
					ivc.buf.Push(f) // rotate through
					if owner == nil {
						owner = f.Msg
					} else if owner != f.Msg {
						return fmt.Errorf("node %d in[%d][%d]: flits of msgs %d and %d share a buffer",
							nd.id, p, v, owner.ID, f.Msg.ID)
					}
					if f.Seq <= prevSeq {
						return fmt.Errorf("node %d in[%d][%d]: flit sequence not ascending", nd.id, p, v)
					}
					prevSeq = f.Seq
					buffered[f.Msg]++
				}
				if owner != nil {
					if inPath[loc] != owner {
						return fmt.Errorf("node %d in[%d][%d]: holds msg %d flits but path tracks %v",
							nd.id, p, v, owner.ID, inPath[loc])
					}
				}
				if tracked := inPath[loc]; tracked != nil && owner != nil && tracked != owner {
					return fmt.Errorf("path entry %+v mismatch", loc)
				}
				// A valid forward route must point at a VC owned by the
				// buffer's message (or the message that just drained it).
				if ivc.route.valid && !ivc.route.eject && owner != nil {
					oc := nd.out[ivc.route.outPort].VCs[ivc.route.outVC]
					if oc.Owner() != owner {
						return fmt.Errorf("node %d in[%d][%d]: route points at VC owned by %v, buffer holds msg %d",
							nd.id, p, v, oc.Owner(), owner.ID)
					}
				}
			}
		}
		for p := range nd.out {
			for v := range nd.out[p].VCs {
				if m := nd.out[p].VCs[v].Owner(); m != nil && m.State == message.StateDelivered {
					return fmt.Errorf("node %d out[%d].vc[%d] owned by delivered msg %d", nd.id, p, v, m.ID)
				}
			}
		}
		for c := range nd.ej {
			if m := nd.ej[c].msg; m != nil && m.State == message.StateDelivered {
				return fmt.Errorf("node %d ej[%d] held by delivered msg %d", nd.id, c, m.ID)
			}
		}
	}

	for m, n := range buffered {
		if want := m.FlitsSent - m.FlitsEjected; n != want {
			return fmt.Errorf("msg %d: %d flits buffered, want sent-ejected=%d-%d=%d",
				m.ID, n, m.FlitsSent, m.FlitsEjected, want)
		}
		if m.State == message.StateDelivered {
			return fmt.Errorf("msg %d delivered but still has %d buffered flits", m.ID, n)
		}
	}
	if e.live != nil {
		return e.checkFaultInvariants()
	}
	return nil
}

// checkFaultInvariants validates the liveness-dependent state: the fault
// machinery must leave no flit, route, allocation or queued work on dead
// hardware, and a permanently dropped message must be gone from tracking.
func (e *Engine) checkFaultInvariants() error {
	for m := range e.paths {
		if m.State == message.StateDropped {
			return fmt.Errorf("dropped msg %d still tracked in paths", m.ID)
		}
	}
	for _, nd := range e.nodes {
		alive := e.live.RouterAlive(nd.id)
		if !alive {
			if len(nd.queue) != 0 || len(nd.recovery) != 0 || len(nd.retry) != 0 {
				return fmt.Errorf("dead node %d still holds queued work (%d/%d/%d)",
					nd.id, len(nd.queue), len(nd.recovery), len(nd.retry))
			}
			for i := range nd.inj {
				if nd.inj[i].msg != nil {
					return fmt.Errorf("dead node %d inj[%d] holds msg %d", nd.id, i, nd.inj[i].msg.ID)
				}
			}
			for c := range nd.ej {
				if nd.ej[c].msg != nil {
					return fmt.Errorf("dead node %d ej[%d] holds msg %d", nd.id, c, nd.ej[c].msg.ID)
				}
			}
		}
		for p := range nd.in {
			port := topology.Port(p)
			// The channel feeding nd.in[p][*] leaves the neighbour through
			// the opposite port.
			feeder := e.topo.Neighbor(nd.id, port)
			feederAlive := e.live.LinkAlive(feeder, topology.Opposite(port))
			for v := range nd.in[p] {
				ivc := &nd.in[p][v]
				if (!alive || !feederAlive) && !ivc.buf.Empty() {
					return fmt.Errorf("node %d in[%d][%d]: %d flits behind a dead channel",
						nd.id, p, v, ivc.buf.Len())
				}
				if ivc.route.valid && !ivc.route.eject &&
					!e.live.LinkAlive(nd.id, ivc.route.outPort) {
					return fmt.Errorf("node %d in[%d][%d]: route crosses dead channel (port %d)",
						nd.id, p, v, ivc.route.outPort)
				}
			}
		}
		for p := range nd.out {
			if e.live.LinkAlive(nd.id, topology.Port(p)) {
				continue
			}
			for v := range nd.out[p].VCs {
				if m := nd.out[p].VCs[v].Owner(); m != nil {
					return fmt.Errorf("node %d out[%d].vc[%d] on a dead channel owned by msg %d",
						nd.id, p, v, m.ID)
				}
			}
		}
	}
	return nil
}

// QueueLengths returns the total source-queue and recovery-queue lengths
// across all nodes (a congestion indicator used by tests and examples).
func (e *Engine) QueueLengths() (source, recovery int) {
	for _, nd := range e.nodes {
		source += len(nd.queue)
		recovery += len(nd.recovery)
	}
	return source, recovery
}
