package sim

import (
	"fmt"

	"wormnet/internal/message"
	"wormnet/internal/topology"
)

// CheckInvariants validates the global consistency of the simulation state.
// It is O(network size) and intended for tests, which interleave it with
// Step calls; it returns the first violation found.
//
// Checked invariants:
//  1. Flit conservation: for every message with flits in the network, the
//     flits buffered across all routers equal FlitsSent - FlitsEjected.
//  2. Buffer exclusivity: a virtual-channel buffer only holds flits of a
//     single message, in ascending sequence order.
//  3. Path tracking: every buffer holding flits of a message appears in the
//     message's tracked path, and path entries never point at buffers
//     holding another message's flits.
//  4. Allocation consistency: every allocated output virtual channel is
//     owned by a live (undelivered) message, and every valid forward route
//     points at an output virtual channel owned by the routed message.
//  5. Ejection consistency: a busy ejection channel belongs to exactly one
//     in-flight message.
func (e *Engine) CheckInvariants() error {
	buffered := make(map[*message.Message]int)
	inPath := make(map[pathLoc]*message.Message)
	for m, path := range e.paths {
		for _, loc := range path {
			if prev, dup := inPath[loc]; dup {
				return fmt.Errorf("path loc %+v tracked for both msg %d and msg %d", loc, prev.ID, m.ID)
			}
			inPath[loc] = m
		}
	}

	for _, nd := range e.nodes {
		for p := range nd.in {
			for v := range nd.in[p] {
				ivc := &nd.in[p][v]
				loc := pathLoc{node: nd.id, port: topology.Port(p), vc: int8(v)}
				var owner *message.Message
				prevSeq := -1
				for i := 0; i < ivc.buf.Len(); i++ {
					f := ivc.buf.Pop()
					ivc.buf.Push(f) // rotate through
					if owner == nil {
						owner = f.Msg
					} else if owner != f.Msg {
						return fmt.Errorf("node %d in[%d][%d]: flits of msgs %d and %d share a buffer",
							nd.id, p, v, owner.ID, f.Msg.ID)
					}
					if f.Seq <= prevSeq {
						return fmt.Errorf("node %d in[%d][%d]: flit sequence not ascending", nd.id, p, v)
					}
					prevSeq = f.Seq
					buffered[f.Msg]++
				}
				if owner != nil {
					if inPath[loc] != owner {
						return fmt.Errorf("node %d in[%d][%d]: holds msg %d flits but path tracks %v",
							nd.id, p, v, owner.ID, inPath[loc])
					}
				}
				if tracked := inPath[loc]; tracked != nil && owner != nil && tracked != owner {
					return fmt.Errorf("path entry %+v mismatch", loc)
				}
				// A valid forward route must point at a VC owned by the
				// buffer's message (or the message that just drained it).
				if ivc.route.valid && !ivc.route.eject && owner != nil {
					oc := nd.out[ivc.route.outPort].VCs[ivc.route.outVC]
					if oc.Owner() != owner {
						return fmt.Errorf("node %d in[%d][%d]: route points at VC owned by %v, buffer holds msg %d",
							nd.id, p, v, oc.Owner(), owner.ID)
					}
				}
			}
		}
		for p := range nd.out {
			for v := range nd.out[p].VCs {
				if m := nd.out[p].VCs[v].Owner(); m != nil && m.State == message.StateDelivered {
					return fmt.Errorf("node %d out[%d].vc[%d] owned by delivered msg %d", nd.id, p, v, m.ID)
				}
			}
		}
		for c := range nd.ej {
			if m := nd.ej[c].msg; m != nil && m.State == message.StateDelivered {
				return fmt.Errorf("node %d ej[%d] held by delivered msg %d", nd.id, c, m.ID)
			}
		}
	}

	for m, n := range buffered {
		if want := m.FlitsSent - m.FlitsEjected; n != want {
			return fmt.Errorf("msg %d: %d flits buffered, want sent-ejected=%d-%d=%d",
				m.ID, n, m.FlitsSent, m.FlitsEjected, want)
		}
		if m.State == message.StateDelivered {
			return fmt.Errorf("msg %d delivered but still has %d buffered flits", m.ID, n)
		}
	}
	return nil
}

// QueueLengths returns the total source-queue and recovery-queue lengths
// across all nodes (a congestion indicator used by tests and examples).
func (e *Engine) QueueLengths() (source, recovery int) {
	for _, nd := range e.nodes {
		source += len(nd.queue)
		recovery += len(nd.recovery)
	}
	return source, recovery
}
