package sim

import (
	"fmt"

	"wormnet/internal/message"
	"wormnet/internal/topology"
)

// CheckInvariants validates the global consistency of the simulation state.
// It is O(network size) and intended for tests, which interleave it with
// Step calls; it returns the first violation found.
//
// Checked invariants:
//  1. Flit conservation: for every message with flits in the network, the
//     flits buffered across all routers equal FlitsSent - FlitsEjected.
//  2. Buffer exclusivity: a virtual-channel buffer only holds flits of a
//     single message, in ascending sequence order, and the buffer's owner
//     cache names that message.
//  3. Path tracking: every buffer holding flits of a message appears in the
//     message's tracked path (message.Message.Path), and path entries never
//     point at buffers holding another message's flits.
//  4. Allocation consistency: every allocated output virtual channel is
//     owned by a live (undelivered) message, and every valid forward route
//     points at an output virtual channel owned by the routed message.
//  5. Ejection consistency: a busy ejection channel belongs to exactly one
//     in-flight message.
//  6. Active-set counters: each node's occVCs equals its count of non-empty
//     input virtual-channel buffers and busyInj its count of busy injection
//     channels (the phase-skipping optimisation depends on these).
//  7. Fault consistency (only with fault injection active): no flit sits in
//     a buffer fed by a dead channel or anywhere on a dead router, no
//     route or sender-side allocation crosses a dead channel, a dead
//     router holds no queued work, and no in-flight message is dropped.
func (e *Engine) CheckInvariants() error {
	// Enumerate every message reachable from network state: buffer fronts,
	// output virtual-channel owners, injection and ejection channels. Every
	// in-flight message holds at least one of those. The channel scans also
	// collect the deferred flit accounting: flits already streamed in (or
	// consumed) but not yet folded into the message's own counters, which
	// happens only when the tail passes.
	inFlight := make(map[*message.Message]bool)
	pendingSent := make(map[*message.Message]int)
	pendingEj := make(map[*message.Message]int)
	for i := range e.nodes {
		nd := &e.nodes[i]
		for a := range nd.in {
			if m := nd.in[a].buf.FrontMessage(); m != nil {
				inFlight[m] = true
			}
		}
		for v := range nd.outVCs {
			if m := nd.outVCs[v].Owner(); m != nil {
				inFlight[m] = true
			}
		}
		for c := range nd.inj {
			if m := nd.inj[c].msg; m != nil {
				inFlight[m] = true
				pendingSent[m] += int(nd.inj[c].len - nd.inj[c].left)
			}
		}
		for c := range nd.ej {
			if m := nd.ej[c].msg; m != nil {
				inFlight[m] = true
				pendingEj[m] += int(nd.ej[c].pending)
			}
		}
	}
	inPath := make(map[pathLoc]*message.Message)
	for m := range inFlight {
		for _, loc := range m.Path {
			if prev, dup := inPath[loc]; dup {
				return fmt.Errorf("path loc %+v tracked for both msg %d and msg %d", loc, prev.ID, m.ID)
			}
			inPath[loc] = m
		}
	}

	buffered := make(map[*message.Message]int)
	for i := range e.nodes {
		nd := &e.nodes[i]
		occ := 0
		for a := range nd.in {
			ivc := &nd.in[a]
			p := a / e.cfg.VCs
			v := a % e.cfg.VCs
			loc := pathLoc{Node: nd.id, Port: topology.Port(p), VC: int8(v)}
			var owner *message.Message
			prevSeq := int32(-1)
			for j := 0; j < ivc.buf.Len(); j++ {
				f := ivc.buf.Pop()
				ivc.buf.Push(f) // rotate through
				if owner == nil {
					owner = f.Msg
				} else if owner != f.Msg {
					return fmt.Errorf("node %d in[%d][%d]: flits of msgs %d and %d share a buffer",
						nd.id, p, v, owner.ID, f.Msg.ID)
				}
				if f.Seq <= prevSeq {
					return fmt.Errorf("node %d in[%d][%d]: flit sequence not ascending", nd.id, p, v)
				}
				prevSeq = f.Seq
				buffered[f.Msg]++
			}
			if owner != nil {
				occ++
				if ivc.owner != owner {
					return fmt.Errorf("node %d in[%d][%d]: owner cache holds msg %v but flits belong to msg %d",
						nd.id, p, v, ivc.owner, owner.ID)
				}
				if inPath[loc] != owner {
					return fmt.Errorf("node %d in[%d][%d]: holds msg %d flits but path tracks %v",
						nd.id, p, v, owner.ID, inPath[loc])
				}
			}
			// A valid forward route must point at a VC owned by the
			// buffer's message (or the message that just drained it).
			if rt := nd.routes[a]; rt.valid && !rt.eject && owner != nil {
				oc := nd.out[rt.outPort].VCs[rt.outVC]
				if oc.Owner() != owner {
					return fmt.Errorf("node %d in[%d][%d]: route points at VC owned by %v, buffer holds msg %d",
						nd.id, p, v, oc.Owner(), owner.ID)
				}
			}
		}
		if occ != nd.occVCs {
			return fmt.Errorf("node %d: occVCs=%d but %d input buffers are non-empty", nd.id, nd.occVCs, occ)
		}
		busy := 0
		for c := range nd.inj {
			if nd.inj[c].msg != nil {
				busy++
			}
		}
		if busy != nd.busyInj {
			return fmt.Errorf("node %d: busyInj=%d but %d injection channels are busy", nd.id, nd.busyInj, busy)
		}
		for p := range nd.out {
			var free, empty, full, routed uint32
			for v := range nd.out[p].VCs {
				if m := nd.out[p].VCs[v].Owner(); m != nil && m.State == message.StateDelivered {
					return fmt.Errorf("node %d out[%d].vc[%d] owned by delivered msg %d", nd.id, p, v, m.ID)
				}
				if nd.out[p].VCs[v].Free() {
					free |= 1 << uint(v)
				}
				buf := &nd.in[p*e.cfg.VCs+v].buf
				if buf.Empty() {
					empty |= 1 << uint(v)
				}
				if buf.Full() {
					full |= 1 << uint(v)
				}
				if nd.routes[p*e.cfg.VCs+v].valid {
					routed |= 1 << uint(v)
				}
			}
			if free != nd.freeMask[p] {
				return fmt.Errorf("node %d port %d: freeMask=%#x but owners say %#x", nd.id, p, nd.freeMask[p], free)
			}
			if empty != nd.inEmpty[p] {
				return fmt.Errorf("node %d port %d: inEmpty=%#x but buffers say %#x", nd.id, p, nd.inEmpty[p], empty)
			}
			if full != nd.inFull[p] {
				return fmt.Errorf("node %d port %d: inFull=%#x but buffers say %#x", nd.id, p, nd.inFull[p], full)
			}
			if routed != nd.routed[p] {
				return fmt.Errorf("node %d port %d: routed=%#x but routes say %#x", nd.id, p, nd.routed[p], routed)
			}
		}
		for c := range nd.ej {
			if m := nd.ej[c].msg; m != nil && m.State == message.StateDelivered {
				return fmt.Errorf("node %d ej[%d] held by delivered msg %d", nd.id, c, m.ID)
			}
		}
	}

	for m, n := range buffered {
		sent := m.FlitsSent + pendingSent[m]
		ejected := m.FlitsEjected + pendingEj[m]
		if want := sent - ejected; n != want {
			return fmt.Errorf("msg %d: %d flits buffered, want sent-ejected=%d-%d=%d",
				m.ID, n, sent, ejected, want)
		}
		if m.State == message.StateDelivered {
			return fmt.Errorf("msg %d delivered but still has %d buffered flits", m.ID, n)
		}
	}
	if p := e.par; p != nil {
		// Between cycles every parallel deferral buffer must be drained:
		// generation records and globally-ordered events are committed
		// within the cycle that produced them, and every planned cross-shard
		// push is applied by the destination shard before the cycle ends
		// (the consumer's seen stamp must have caught up with every
		// published ring batch).
		for i := range p.shards {
			sh := &p.shards[i]
			if len(sh.gen) != 0 {
				return fmt.Errorf("shard %d: %d uncommitted generation records", i, len(sh.gen))
			}
			if len(sh.events) != 0 {
				return fmt.Errorf("shard %d: %d uncommitted deferred events", i, len(sh.events))
			}
		}
		n := len(p.shards)
		for i := range p.rings {
			r := &p.rings[i]
			if v := r.pub.Load(); v != 0 && r.seen != v {
				return fmt.Errorf("ring %d->%d: published batch (stamp %d, %d pushes) not drained (seen %d)",
					i/n, i%n, v>>32, uint32(v), r.seen)
			}
		}
	}
	// Epoch consistency: every valid route carries the current routing
	// epoch's stamp and claims live capacity (trivially epoch 0 on
	// fault-free runs).
	if err := e.checkRouteEpochs(); err != nil {
		return err
	}
	if e.live != nil {
		return e.checkFaultInvariants(inFlight)
	}
	return nil
}

// checkFaultInvariants validates the liveness-dependent state: the fault
// machinery must leave no flit, route, allocation or queued work on dead
// hardware, and a permanently dropped message must be gone from the
// network.
func (e *Engine) checkFaultInvariants(inFlight map[*message.Message]bool) error {
	for m := range inFlight {
		if m.State == message.StateDropped {
			return fmt.Errorf("dropped msg %d still holds network state", m.ID)
		}
	}
	for i := range e.nodes {
		nd := &e.nodes[i]
		alive := e.live.RouterAlive(nd.id)
		if !alive {
			if nd.queue.Len() != 0 || len(nd.recovery) != 0 || len(nd.retry) != 0 {
				return fmt.Errorf("dead node %d still holds queued work (%d/%d/%d)",
					nd.id, nd.queue.Len(), len(nd.recovery), len(nd.retry))
			}
			for c := range nd.inj {
				if nd.inj[c].msg != nil {
					return fmt.Errorf("dead node %d inj[%d] holds msg %d", nd.id, c, nd.inj[c].msg.ID)
				}
			}
			for c := range nd.ej {
				if nd.ej[c].msg != nil {
					return fmt.Errorf("dead node %d ej[%d] holds msg %d", nd.id, c, nd.ej[c].msg.ID)
				}
			}
		}
		for a := range nd.in {
			p := a / e.cfg.VCs
			v := a % e.cfg.VCs
			port := topology.Port(p)
			// The channel feeding nd.in[p*VCs+v] leaves the neighbour
			// through the opposite port.
			feeder := e.topo.Neighbor(nd.id, port)
			feederAlive := e.live.LinkAlive(feeder, topology.Opposite(port))
			ivc := &nd.in[a]
			if (!alive || !feederAlive) && !ivc.buf.Empty() {
				return fmt.Errorf("node %d in[%d][%d]: %d flits behind a dead channel",
					nd.id, p, v, ivc.buf.Len())
			}
			if rt := nd.routes[a]; rt.valid && !rt.eject &&
				!e.live.LinkAlive(nd.id, rt.outPort) {
				return fmt.Errorf("node %d in[%d][%d]: route crosses dead channel (port %d)",
					nd.id, p, v, rt.outPort)
			}
		}
		for p := range nd.out {
			if e.live.LinkAlive(nd.id, topology.Port(p)) {
				continue
			}
			for v := range nd.out[p].VCs {
				if m := nd.out[p].VCs[v].Owner(); m != nil {
					return fmt.Errorf("node %d out[%d].vc[%d] on a dead channel owned by msg %d",
						nd.id, p, v, m.ID)
				}
			}
		}
	}
	return nil
}

// QueueLengths returns the total source-queue and recovery-queue lengths
// across all nodes (a congestion indicator used by tests and examples).
func (e *Engine) QueueLengths() (source, recovery int) {
	for i := range e.nodes {
		source += e.nodes[i].queue.Len()
		recovery += len(e.nodes[i].recovery)
	}
	return source, recovery
}
