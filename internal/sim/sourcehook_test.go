package sim

import (
	"testing"

	"wormnet/internal/topology"
	"wormnet/internal/traffic"
)

// TestScriptSourceMatchesBoundaryInject cross-validates the two ways the
// model checker drives schedules: boundary Engine.Inject calls during
// exploration, and a traffic.ScriptSource replaying the recorded schedule
// (counterexample replay). A message injected at the boundary before the
// Step of cycle t and a script event at cycle t both reach the source
// queue before cycle t's injection phase, so the runs must stay in
// canonical-hash lockstep. (Canonical, not raw: the config digests differ
// — one config carries a source name — and the message IDs may too.)
func TestScriptSourceMatchesBoundaryInject(t *testing.T) {
	schedule := []struct {
		cycle int64
		src   topology.NodeID
		dst   topology.NodeID
		len   int
	}{
		{0, 0, 3, 4},
		{0, 3, 0, 4},
		{2, 1, 2, 4},
		{5, 2, 1, 4},
	}
	const horizon = 40

	// Engine A: boundary injection.
	a, err := New(tinyManualConfig())
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for cyc := int64(0); cyc < horizon; cyc++ {
		for next < len(schedule) && schedule[next].cycle == cyc {
			in := schedule[next]
			a.Inject(in.src, in.dst, in.len)
			next++
		}
		a.Step()
	}

	// Engine B: the same schedule as per-node scripts.
	events := make(map[topology.NodeID][]traffic.Event)
	for _, in := range schedule {
		events[in.src] = append(events[in.src], traffic.Event{Cycle: in.cycle, Dst: in.dst, Length: in.len})
	}
	cfg := tinyManualConfig()
	cfg.SourceName = "test-script"
	cfg.Sources = func(node topology.NodeID) traffic.Generator {
		s, err := traffic.NewScriptSource(node, events[node])
		if err != nil {
			t.Fatalf("script for node %d: %v", node, err)
		}
		return s
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < horizon; cyc++ {
		b.Step()
	}

	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// The generator sections legitimately differ (idle Poisson state vs a
	// drained script cursor — both permanently silent); zero them so the
	// comparison covers the entire *network* state structurally.
	for i := range sa.Nodes {
		sa.Nodes[i].Gen = traffic.GenState{}
		sb.Nodes[i].Gen = traffic.GenState{}
	}
	ha, err := sa.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := sb.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatal("scripted run diverged from boundary-injected run")
	}
	if a.Delivered() != b.Delivered() {
		t.Fatalf("delivered %d vs %d", a.Delivered(), b.Delivered())
	}
}

// TestSourcesConfigValidation pins the SourceName coupling rules.
func TestSourcesConfigValidation(t *testing.T) {
	cfg := tinyManualConfig()
	cfg.Sources = func(node topology.NodeID) traffic.Generator {
		s, _ := traffic.NewScriptSource(node, nil)
		return s
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("Sources without SourceName accepted")
	}
	cfg2 := tinyManualConfig()
	cfg2.SourceName = "orphan"
	if _, err := New(cfg2); err == nil {
		t.Fatal("SourceName without Sources accepted")
	}
}
