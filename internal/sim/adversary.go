package sim

// Adversarial workload overlay: a configured fraction of nodes go rogue —
// they generate traffic through traffic.RogueSource (duty-cycled hotspot
// storms) and, crucially, bypass the injection limiter entirely. The paper's
// mechanism only ever throttles the node applying it, so the question this
// overlay answers is containment: how much of the *well-behaved* population's
// throughput and latency survives when part of the network refuses to
// cooperate? The collector's per-class split (stats.ClassResult) measures
// exactly that; the overlay itself is deterministic — rogue placement comes
// from a seeded shuffle, rogue traffic from the same per-node PCG streams as
// regular sources — so adversarial runs stay bit-identical across worker
// counts like every other configuration.

import (
	"fmt"
	"math"
	"math/rand/v2"

	"wormnet/internal/topology"
)

// Traffic class indices the engine assigns when an adversary is configured.
const (
	ClassGood  = 0 // nodes that obey the injection limiter
	ClassRogue = 1 // nodes that bypass it
)

// AdversaryProfile configures the adversarial overlay. The zero value
// disables it.
type AdversaryProfile struct {
	// RogueFraction is the fraction of nodes that go rogue (0 disables the
	// overlay; a positive fraction always corrupts at least one node).
	RogueFraction float64
	// RogueRate is each rogue's offered load in flits/node/cycle, applied
	// without limiter consent. Required when the overlay is enabled.
	RogueRate float64
	// StormPeriod/StormOn duty-cycle the rogues' hotspot storms: during the
	// first StormOn cycles of every StormPeriod-cycle period, all rogue
	// traffic targets Hotspot; outside it rogues blend in as uniform
	// traffic. StormPeriod 0 keeps the storm permanently on.
	StormPeriod int64
	StormOn     int64
	// Hotspot is the storm's victim node.
	Hotspot topology.NodeID
	// Seed drives rogue placement (a seeded shuffle), independently of the
	// run seed so experiments can vary placement while holding the
	// well-behaved workload fixed.
	Seed uint64
}

// Enabled reports whether the overlay is active.
func (a AdversaryProfile) Enabled() bool { return a.RogueFraction > 0 }

// Validate checks the profile against the network it will run on.
func (a AdversaryProfile) Validate(t *topology.Torus) error {
	if !a.Enabled() {
		return nil
	}
	switch {
	case a.RogueFraction < 0 || a.RogueFraction > 1:
		return fmt.Errorf("sim: rogue fraction %v out of [0,1]", a.RogueFraction)
	case a.RogueRate <= 0:
		return fmt.Errorf("sim: adversary needs a positive rogue rate, got %v", a.RogueRate)
	case a.StormPeriod < 0 || a.StormOn < 0:
		return fmt.Errorf("sim: negative storm duty cycle %d/%d", a.StormOn, a.StormPeriod)
	case a.StormPeriod > 0 && a.StormOn > a.StormPeriod:
		return fmt.Errorf("sim: storm on-time %d exceeds period %d", a.StormOn, a.StormPeriod)
	case !t.Valid(a.Hotspot):
		return fmt.Errorf("sim: hotspot node %d outside the network", a.Hotspot)
	}
	return nil
}

// pickRogues returns the per-node rogue mask: a seeded shuffle of the node
// IDs, taking the first round(fraction*nodes) — at least one, so any
// positive fraction actually fields an adversary.
func (a AdversaryProfile) pickRogues(nodes int) []bool {
	k := int(math.Round(a.RogueFraction * float64(nodes)))
	if k < 1 {
		k = 1
	}
	if k > nodes {
		k = nodes
	}
	rng := rand.New(rand.NewPCG(a.Seed, 0x9E3779B97F4A7C15))
	perm := rng.Perm(nodes)
	mask := make([]bool, nodes)
	for _, n := range perm[:k] {
		mask[n] = true
	}
	return mask
}

// Rogues returns the IDs of the rogue nodes, ascending; nil when no
// adversary is configured.
func (e *Engine) Rogues() []topology.NodeID {
	var out []topology.NodeID
	for i := range e.nodes {
		if e.nodes[i].rogue {
			out = append(out, e.nodes[i].id)
		}
	}
	return out
}
