package sim

import (
	"testing"

	"wormnet/internal/traffic"
)

func TestBurstySimulationRuns(t *testing.T) {
	cfg := QuickConfig()
	cfg.Rate = 0.8
	// Synchronized phases so the aggregate timeline shows the bursts
	// (independent per-node phases average out across nodes).
	cfg.Burst = traffic.BurstProfile{OnMean: 200, OffMean: 400, Synchronized: true}
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 500, 4000, 1000
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := e.Collector().EnableDeliverySeries(250, 22)
	for i := int64(0); i < cfg.TotalCycles(); i++ {
		e.Step()
		if i%211 == 0 {
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
		}
	}
	r := e.Collector().Result()
	if r.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// The long-run accepted rate should be near the average offered rate
	// (the network is below saturation on average).
	if r.Accepted < 0.5*cfg.Rate {
		t.Errorf("accepted %.4f far below offered average %.2f", r.Accepted, cfg.Rate)
	}
	// The delivery timeline must show real variance: some interval well
	// above the mean and some well below.
	vals := series.Values()
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	var above, below bool
	for _, v := range vals {
		if v > 1.3*mean {
			above = true
		}
		if v < 0.7*mean {
			below = true
		}
	}
	if !above || !below {
		t.Errorf("delivery series looks steady (mean %.1f): %v", mean, vals)
	}
}

func TestBurstConfigValidation(t *testing.T) {
	cfg := QuickConfig()
	cfg.Burst = traffic.BurstProfile{OnMean: 100} // missing OffMean
	if _, err := New(cfg); err == nil {
		t.Error("half-specified burst profile accepted")
	}
}
