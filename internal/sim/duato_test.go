package sim

import (
	"testing"

	"wormnet/internal/baseline"
)

// Duato's protocol must be deadlock-free in the engine's semantics: after
// sustained overload on an adversarial ring workload, stopping the sources
// must drain the network completely with zero recoveries.
func TestDuatoDeadlockFreedomUnderOverload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K, cfg.N = 8, 1 // single ring: the hardest case for escape channels
	cfg.VCs = 3
	cfg.Routing = "duato"
	cfg.Pattern = "tornado" // everyone sends halfway around the ring
	cfg.MsgLen, cfg.Rate = 24, 1.5
	cfg.Limiter, cfg.LimiterName = baseline.NewNone(), "none"
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 0, 3000, 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3000; i++ {
		e.Step()
		if i%37 == 0 {
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
		}
	}
	if e.Recovered() != 0 {
		t.Fatalf("duato produced %d recoveries; detection must be off", e.Recovered())
	}
	e.StopSources()
	deadline := e.Now() + 200_000
	for e.InFlight() > 0 && e.Now() < deadline {
		e.Step()
	}
	if e.InFlight() != 0 {
		t.Fatalf("duato deadlocked: %d messages stuck after drain", e.InFlight())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The same drain property on a 2D torus under complement traffic.
func TestDuatoDrains2D(t *testing.T) {
	cfg := QuickConfig()
	cfg.Routing = "duato"
	cfg.Pattern = "complement"
	cfg.Rate = 2.0
	cfg.Limiter, cfg.LimiterName = baseline.NewNone(), "none"
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 0, 2500, 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 2500; i++ {
		e.Step()
	}
	e.StopSources()
	deadline := e.Now() + 200_000
	for e.InFlight() > 0 && e.Now() < deadline {
		e.Step()
	}
	if e.InFlight() != 0 {
		t.Fatalf("duato deadlocked on 2D complement: %d stuck", e.InFlight())
	}
	if e.Delivered() == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestDuatoConfigValidation(t *testing.T) {
	cfg := QuickConfig()
	cfg.Routing = "duato"
	cfg.VCs = 2
	if _, err := New(cfg); err == nil {
		t.Error("duato with 2 VCs accepted")
	}
}

// TFAR and Duato throughput should be in the same ballpark below
// saturation; this guards against the escape restriction crippling the
// adaptive channels.
func TestDuatoComparableToTFARBelowSaturation(t *testing.T) {
	base := QuickConfig()
	base.Rate = 0.8
	base.Limiter, base.LimiterName = baseline.NewNone(), "none"
	run := func(routing string) float64 {
		cfg := base
		cfg.Routing = routing
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run().Accepted
	}
	tfar, duato := run("tfar"), run("duato")
	if duato < 0.8*tfar {
		t.Errorf("duato accepted %.4f far below tfar %.4f", duato, tfar)
	}
}
