package sim

import (
	"runtime"
	"testing"

	"wormnet/internal/metrics"
	"wormnet/internal/stats"
	"wormnet/internal/trace"
)

// spanTap records every finished span in completion order. Records are
// transient, so the tap keeps deep copies.
type spanTap struct {
	spans []*trace.SpanRecord
}

func (s *spanTap) SpanDone(rec *trace.SpanRecord) { s.spans = append(s.spans, rec.Clone()) }

// runSpanned runs cfg to completion with metrics AND span tracking enabled
// (dense span sampling so every scenario produces records) and returns the
// summary, event stream, counters, registry and the finished-span stream.
func runSpanned(t *testing.T, cfg Config, workers int) (stats.Result, []trace.Event, [6]int64, *metrics.Registry, []*trace.SpanRecord) {
	t.Helper()
	cfg.Workers = workers
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	reg := metrics.NewRegistry()
	e.EnableMetrics(reg, 64)
	tap := &spanTap{}
	e.EnableSpans(reg, 4, tap)
	etap := &eventTap{}
	e.SetListener(etap)
	r := e.Run()
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("workers=%d: invariants violated at end of run: %v", workers, err)
	}
	counters := [6]int64{
		e.Generated(), e.Delivered(), e.Recovered(),
		e.Aborted(), e.Retried(), e.Dropped(),
	}
	return r, etap.events, counters, reg, tap.spans
}

// TestSpanDeterminism is the span layer's core contract, mirroring
// TestMetricsDeterminism: a run with span tracking enabled produces
// bit-identical results — summary, counters, full event stream — to the same
// run without it, at workers 1 and 4; and the finished-span stream itself is
// bit-identical across worker counts (spans finish in serial commit order on
// every path).
func TestSpanDeterminism(t *testing.T) {
	for name, cfg := range equivalenceConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			baseRes, _, baseEvents, baseCounters := runTraced(t, cfg, 1)
			var baseSpans []*trace.SpanRecord
			for _, workers := range []int{1, 4} {
				res, events, counters, _, spans := runSpanned(t, cfg, workers)
				if res != baseRes {
					t.Errorf("workers=%d spanned: result diverged:\n got  %+v\n want %+v",
						workers, res, baseRes)
				}
				if counters != baseCounters {
					t.Errorf("workers=%d spanned: counters diverged: got %v want %v",
						workers, counters, baseCounters)
				}
				if len(events) != len(baseEvents) {
					t.Errorf("workers=%d spanned: %d events, plain run emitted %d",
						workers, len(events), len(baseEvents))
					continue
				}
				for i := range events {
					if events[i] != baseEvents[i] {
						t.Errorf("workers=%d spanned: event %d diverged:\n got  %+v\n want %+v",
							workers, i, events[i], baseEvents[i])
						break
					}
				}
				if len(spans) == 0 {
					t.Fatalf("workers=%d: no spans finished", workers)
				}
				if baseSpans == nil {
					baseSpans = spans
					continue
				}
				if len(spans) != len(baseSpans) {
					t.Errorf("workers=%d: %d spans, workers=1 produced %d",
						workers, len(spans), len(baseSpans))
					continue
				}
				for i := range spans {
					if !spanEqual(spans[i], baseSpans[i]) {
						t.Errorf("workers=%d: span %d diverged:\n got  %+v\n want %+v",
							workers, i, spans[i], baseSpans[i])
						break
					}
				}
			}
		})
	}
}

// spanEqual compares two span records field by field, hops included.
func spanEqual(a, b *trace.SpanRecord) bool {
	if a.ID != b.ID || a.Src != b.Src || a.Dst != b.Dst || a.Len != b.Len ||
		a.Gen != b.Gen || a.Admit != b.Admit || a.Inject != b.Inject || a.Deliver != b.Deliver ||
		a.Denies != b.Denies || a.DeniesRuleA != b.DeniesRuleA || a.DeniesRuleB != b.DeniesRuleB ||
		a.Recoveries != b.Recoveries || a.Retries != b.Retries || len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			return false
		}
	}
	return true
}

// TestSpansPopulated checks span records and aggregates carry real data on a
// saturated ALO run: every record is well-formed (sampling selected its ID,
// timestamps are ordered, hops alternate arrive/alloc consistently),
// denials show up with rule attribution, and the registered sim_span_*
// series are non-trivial.
func TestSpansPopulated(t *testing.T) {
	cfg := QuickConfig()
	cfg.Rate = 1.5 // past saturation: ALO must throttle
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 500, 2000, 200
	_, _, _, reg, spans := runSpanned(t, cfg, 1)

	if len(spans) == 0 {
		t.Fatal("saturated run finished no spans")
	}
	var delivered, denied int
	for _, s := range spans {
		if s.ID%4 != 0 {
			t.Fatalf("span for unsampled message %d", s.ID)
		}
		if s.Gen < 0 {
			t.Fatalf("span %d missing generation time", s.ID)
		}
		if s.Admit >= 0 && s.Admit < s.Gen {
			t.Fatalf("span %d admitted before generation: %+v", s.ID, s)
		}
		if s.Deliver >= 0 {
			delivered++
			if s.Admit < 0 || s.Deliver < s.Admit {
				t.Fatalf("delivered span %d has disordered times: %+v", s.ID, s)
			}
			if len(s.Hops) == 0 {
				t.Fatalf("delivered span %d has no hops", s.ID)
			}
			if qw := s.QueueWait(); qw < 0 {
				t.Fatalf("delivered span %d has negative queue wait", s.ID)
			}
		}
		for _, h := range s.Hops {
			if h.Alloc >= 0 && h.Alloc < h.Arrive {
				t.Fatalf("span %d hop granted before arrival: %+v", s.ID, h)
			}
		}
		if s.Denies > 0 {
			denied++
			// ALO denial means both rules failed.
			if s.DeniesRuleA != s.Denies || s.DeniesRuleB != s.Denies {
				t.Fatalf("span %d: ALO denies %d but rules a=%d b=%d",
					s.ID, s.Denies, s.DeniesRuleA, s.DeniesRuleB)
			}
		}
	}
	if delivered == 0 {
		t.Fatal("no delivered spans")
	}
	if denied == 0 {
		t.Fatal("saturated ALO run produced no span with denials")
	}

	if n := metricValue(t, reg, "sim_spans_sampled_total"); n == 0 {
		t.Error("sampled counter empty")
	}
	if n := metricValue(t, reg, "sim_spans_completed_total"); int(n) != delivered {
		t.Errorf("completed counter %v, want %d delivered spans", n, delivered)
	}
	for _, name := range []string{
		"sim_span_queue_wait_cycles", "sim_span_hop_block_cycles",
		"sim_span_drain_cycles", "sim_span_net_latency_cycles",
		"sim_span_latency_cycles", "sim_span_hops",
	} {
		if n := metricValue(t, reg, name); n == 0 {
			t.Errorf("%s histogram empty", name)
		}
	}
}

// TestSpanSampling pins the deterministic sampling rule: with period N only
// messages whose ID is a multiple of N are tracked, and every tracked
// delivery reaches the sink.
func TestSpanSampling(t *testing.T) {
	cfg := QuickConfig()
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 0, 1500, 300
	cfg.Workers = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tap := &spanTap{}
	e.EnableSpans(nil, 8, tap) // sink-only: no registry attached
	e.Run()
	if len(tap.spans) == 0 {
		t.Fatal("no spans reached the sink")
	}
	seen := map[int64]bool{}
	for _, s := range tap.spans {
		if s.ID%8 != 0 {
			t.Fatalf("sampling leak: span for message %d with period 8", s.ID)
		}
		if seen[s.ID] {
			t.Fatalf("message %d finished two spans", s.ID)
		}
		seen[s.ID] = true
	}
}

// TestSpanSyncProfilePopulated checks the parallel engine's sync-profile
// series fill in on a worker-pool run: barrier waits, shard busy times and
// the ring counters. The barrier/busy series exist only on the worker-pool
// schedule — at GOMAXPROCS=1 the engine latches the inline single-goroutine
// path, which has no barrier waits to measure, so that part is skipped.
func TestSpanSyncProfilePopulated(t *testing.T) {
	cfg := QuickConfig()
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 200, 800, 100
	_, _, _, reg, _ := runSpanned(t, cfg, 4)
	if n := metricValue(t, reg, "sim_ring_pushes_total"); n == 0 {
		t.Error("no cross-shard ring pushes recorded on a sharded torus run")
	}
	if runtime.GOMAXPROCS(0) == 1 {
		t.Skip("inline parallel schedule (GOMAXPROCS=1): no barrier waits to profile")
	}
	for _, name := range []string{
		"sim_barrier_wait_b1_ns", "sim_barrier_wait_b2_ns",
		"sim_barrier_wait_b3_ns", "sim_barrier_wait_b4_ns",
		"sim_shard_busy_ns",
	} {
		if n := metricValue(t, reg, name); n == 0 {
			t.Errorf("%s empty on a workers=4 run", name)
		}
	}
}
