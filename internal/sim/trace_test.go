package sim

import (
	"testing"

	"wormnet/internal/core"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
)

func TestEngineEmitsLifecycleEvents(t *testing.T) {
	e := idle(t, nil)
	rec := trace.NewRecorder(64)
	e.SetListener(rec)
	m := e.Inject(0, 5, 4)
	stepN(t, e, 60)
	if m.DeliverTime < 0 {
		t.Fatal("not delivered")
	}
	hist := rec.MessageHistory(int64(m.ID))
	kinds := make([]trace.Kind, len(hist))
	for i, ev := range hist {
		kinds[i] = ev.Kind
	}
	// Inject() bypasses generation, so the first event is the injection.
	if len(kinds) != 2 || kinds[0] != trace.KindInjected || kinds[1] != trace.KindDelivered {
		t.Fatalf("lifecycle events: %v", kinds)
	}
	if hist[1].Node != 5 {
		t.Errorf("delivery node %d want 5", hist[1].Node)
	}
	// Detach: no more events.
	e.SetListener(nil)
	e.Inject(0, 6, 4)
	stepN(t, e, 60)
	if rec.Count(trace.KindDelivered) != 1 {
		t.Error("listener not detached")
	}
}

func TestEngineEmitsGenerationAndThrottle(t *testing.T) {
	cfg := QuickConfig()
	cfg.K, cfg.N = 4, 1
	cfg.Rate = 2.5 // far beyond a ring's capacity: ALO must throttle
	cfg.Limiter, cfg.LimiterName = core.NewALO(), "alo"
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 0, 800, 0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(128)
	e.SetListener(rec)
	e.Run()
	if rec.Count(trace.KindGenerated) == 0 {
		t.Error("no generation events")
	}
	if rec.Count(trace.KindThrottled) == 0 {
		t.Error("ALO at 2.5 flits/node/cycle should have throttled at least once")
	}
	if rec.Count(trace.KindDelivered) == 0 {
		t.Error("no deliveries")
	}
}

func TestEngineEmitsDeadlockEvents(t *testing.T) {
	e := idle(t, func(c *Config) {
		c.K, c.N, c.VCs = 8, 1, 1
		c.MsgLen = 64
		c.DetectionThreshold, c.RecoveryDelay = 16, 8
		c.WarmupCycles = 0
	})
	rec := trace.NewRecorder(256)
	e.SetListener(rec)
	for s := 0; s < 8; s++ {
		e.Inject(topology.NodeID(s), topology.NodeID((s+3)%8), 64)
	}
	stepN(t, e, 3000)
	if rec.Count(trace.KindDeadlock) == 0 || rec.Count(trace.KindRecovered) == 0 {
		t.Fatalf("deadlock events missing: deadlock=%d recovered=%d",
			rec.Count(trace.KindDeadlock), rec.Count(trace.KindRecovered))
	}
	// Every deadlock event pairs with a recovery event.
	if rec.Count(trace.KindDeadlock) != rec.Count(trace.KindRecovered) {
		t.Errorf("deadlock/recovery counts diverge: %d vs %d",
			rec.Count(trace.KindDeadlock), rec.Count(trace.KindRecovered))
	}
}
