package sim

import (
	"testing"

	"wormnet/internal/core"
	"wormnet/internal/topology"
)

// circuitCheckedALO decides with the software predicate and asserts the
// Figure-3 gate circuit agrees, on every live injection decision.
type circuitCheckedALO struct {
	alo     core.ALO
	circuit *core.Circuit
	t       *testing.T
	checks  *int64
}

func (l *circuitCheckedALO) Allow(v core.ChannelView, dst topology.NodeID) bool {
	sw := l.alo.Allow(v, dst)
	hw := l.circuit.EvalView(v, dst)
	if sw != hw {
		l.t.Errorf("gate circuit (%v) disagrees with ALO predicate (%v) for dst %d", hw, sw, dst)
	}
	*l.checks++
	return sw
}

func (l *circuitCheckedALO) Name() string { return "alo+circuit" }

// TestCircuitMatchesALOInLiveEngine drives a saturated network where every
// injection decision is taken twice — once by the software predicate, once
// by the hardware gate model — and they must never disagree. This closes
// the loop between Figure 3 and the simulator across thousands of real
// (not synthetic) router states.
func TestCircuitMatchesALOInLiveEngine(t *testing.T) {
	cfg := QuickConfig()
	cfg.Rate = 1.8 // saturated: decisions span the whole state space
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 0, 3000, 0
	var checks int64
	cfg.Limiter = func(_ topology.NodeID, tp *topology.Torus, vcs int) core.Limiter {
		return &circuitCheckedALO{
			circuit: core.NewCircuit(tp.NumPorts(), vcs),
			t:       t,
			checks:  &checks,
		}
	}
	cfg.LimiterName = "alo+circuit"
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if checks < 1000 {
		t.Fatalf("only %d live decisions checked; expected thousands", checks)
	}
}
