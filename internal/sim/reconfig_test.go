package sim

import (
	"testing"

	"wormnet/internal/fault"
	"wormnet/internal/topology"
)

// TestEpochAdvancesPerEvent pins the epoch bookkeeping: every
// state-changing fault or repair event advances the routing epoch by
// exactly one, and redundant events (failing a dead component, repairing a
// healthy one) advance nothing.
func TestEpochAdvancesPerEvent(t *testing.T) {
	up := topology.PortFor(0, topology.Plus)
	cfg := QuickConfig()
	cfg.Rate = 0.3
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, 400, 100
	cfg.Faults = (&fault.Schedule{}).
		FailLink(50, 1, up).
		FailLink(60, 1, up). // redundant: already down
		RestoreLink(80, 1, up).
		RestoreLink(90, 1, up). // redundant: already up
		FailRouter(120, 5).
		RestoreRouter(150, 5).
		RestoreRouter(160, 6) // redundant: router 6 never failed
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Epoch() != 0 {
		t.Fatalf("fresh engine at epoch %d", e.Epoch())
	}
	want := map[int64]uint64{49: 0, 55: 1, 75: 1, 85: 2, 115: 2, 130: 3, 200: 4}
	for c := int64(0); c < 200; c++ {
		e.Step()
		if w, ok := want[e.Now()]; ok && e.Epoch() != w {
			t.Errorf("cycle %d: epoch %d, want %d", e.Now(), e.Epoch(), w)
		}
	}
	if e.Epoch() != 4 {
		t.Errorf("final epoch %d, want 4 (redundant events must not count)", e.Epoch())
	}
}

// TestReconfigurationInvariants is the transition-safety battery: under a
// planner-generated link/router flap storm, every epoch flip must leave the
// engine with a fresh candidate table, epoch-consistent routes, and no
// unrecoverable wait cycle — checked *at the flip itself* via the reconfig
// hook, at worker counts 1, 2 and 4.
func TestReconfigurationInvariants(t *testing.T) {
	sched, err := fault.Plan(topology.New(4, 2), fault.Profile{
		LinkFraction:      0.08,
		RouterFraction:    0.05,
		At:                400,
		Stagger:           300,
		TransientFraction: 1.0,
		RepairAfter:       250,
		FlapCount:         2,
		FlapPeriod:        700,
		Seed:              42,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		cfg := QuickConfig()
		cfg.Rate = 0.8
		cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 500, 2500, 500
		cfg.Faults = sched
		cfg.Workers = workers
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var flips []uint64
		e.SetReconfigHook(func(epoch uint64) {
			flips = append(flips, epoch)
			if err := e.CheckReconfiguration(); err != nil {
				t.Errorf("workers=%d: epoch %d: %v", workers, epoch, err)
			}
		})
		e.Run()
		e.Close()
		if len(flips) == 0 {
			t.Fatalf("workers=%d: no reconfigurations fired; scenario is vacuous", workers)
		}
		// Epochs must be observed strictly ascending, ending at the final one.
		for i := 1; i < len(flips); i++ {
			if flips[i] <= flips[i-1] {
				t.Fatalf("workers=%d: non-monotonic epochs %v", workers, flips)
			}
		}
		if flips[len(flips)-1] != e.Epoch() {
			t.Errorf("workers=%d: last hook epoch %d, engine at %d",
				workers, flips[len(flips)-1], e.Epoch())
		}
	}
}

// TestHealedLinkReadmission pins the online repair semantics: a failed
// channel leaves every candidate set the cycle its failure applies, and
// re-enters them the cycle its repair applies — without constructing a new
// engine.
func TestHealedLinkReadmission(t *testing.T) {
	up := topology.PortFor(0, topology.Plus)
	cfg := QuickConfig()
	cfg.Rate = 0 // no traffic: this test watches the table alone
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 50, 200, 0
	cfg.Faults = (&fault.Schedule{}).
		FailLink(20, 0, up).
		RestoreLink(120, 0, up)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// dst is node 0's +dim0 neighbour: the direct route uses the failed port.
	dst := e.topo.Neighbor(0, up)
	uses := func() bool {
		for _, pc := range e.cand.get(0, dst) {
			if pc.port == up {
				return true
			}
		}
		return false
	}
	if !uses() {
		t.Fatal("healthy table lacks the direct port; test premise broken")
	}
	for e.Now() <= 20 {
		e.Step()
	}
	if uses() {
		t.Errorf("cycle %d (epoch %d): dead channel still in candidate table", e.Now(), e.Epoch())
	}
	if e.Epoch() != 1 {
		t.Errorf("epoch %d after failure, want 1", e.Epoch())
	}
	for e.Now() <= 120 {
		e.Step()
	}
	if !uses() {
		t.Errorf("cycle %d (epoch %d): healed channel not re-admitted", e.Now(), e.Epoch())
	}
	if e.Epoch() != 2 {
		t.Errorf("epoch %d after repair, want 2", e.Epoch())
	}
	if err := e.CheckReconfiguration(); err != nil {
		t.Error(err)
	}
}

// TestReconfigRecovery is the end-to-end recovery contract: after the final
// repair of a flapping schedule, the network must return to useful service —
// traffic keeps flowing, and stopping the sources drains every in-flight
// message with the full invariant battery clean.
func TestReconfigRecovery(t *testing.T) {
	up := topology.PortFor(0, topology.Plus)
	down := topology.PortFor(1, topology.Minus)
	cfg := QuickConfig()
	cfg.Rate = 0.6
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 500, 4000, 0
	sched := &fault.Schedule{}
	for i := 0; i < 3; i++ {
		at := int64(800 + 600*i)
		sched.FailLink(at, 2, up).RestoreLink(at+300, 2, up)
		sched.FailLink(at+150, 7, down).RestoreLink(at+450, 7, down)
	}
	sched.FailRouter(1400, 11).RestoreRouter(2000, 11).
		FailRouter(2600, 11).RestoreRouter(3200, 11)
	cfg.Faults = sched
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const finalRepair = int64(3200)
	for e.Now() < finalRepair+1 {
		e.Step()
	}
	deliveredAtRepair := e.Delivered()
	for e.Now() < finalRepair+1000 {
		e.Step()
	}
	if e.Delivered() <= deliveredAtRepair {
		t.Errorf("no deliveries in the 1000 cycles after the final repair (stuck at %d)", deliveredAtRepair)
	}
	if err := e.CheckReconfiguration(); err != nil {
		t.Errorf("post-repair reconfiguration state: %v", err)
	}
	e.StopSources()
	for c := 0; c < 20000 && e.InFlight() > 0; c++ {
		e.Step()
	}
	if fl := e.InFlight(); fl != 0 {
		t.Fatalf("%d messages stuck after post-repair drain", fl)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants after recovery drain: %v", err)
	}
}
