package sim

import (
	"bytes"
	"testing"

	"wormnet/internal/fault"
	"wormnet/internal/obs"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
	"wormnet/internal/traffic"
)

// quickAdversary returns a QuickConfig with a 10%-rogue overlay storming
// node 5.
func quickAdversary(rogueRate float64) Config {
	cfg := QuickConfig()
	cfg.Adversary = AdversaryProfile{
		RogueFraction: 0.10,
		RogueRate:     rogueRate,
		StormPeriod:   500,
		StormOn:       200,
		Hotspot:       5,
		Seed:          9,
	}
	return cfg
}

func TestAdversaryValidate(t *testing.T) {
	topo := topology.New(4, 2)
	ok := AdversaryProfile{RogueFraction: 0.1, RogueRate: 1, Hotspot: 3}
	if err := ok.Validate(topo); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	if err := (AdversaryProfile{}).Validate(topo); err != nil {
		t.Errorf("disabled profile rejected: %v", err)
	}
	for name, p := range map[string]AdversaryProfile{
		"fraction>1":  {RogueFraction: 1.5, RogueRate: 1},
		"no-rate":     {RogueFraction: 0.1},
		"bad-duty":    {RogueFraction: 0.1, RogueRate: 1, StormPeriod: 100, StormOn: 200},
		"bad-hotspot": {RogueFraction: 0.1, RogueRate: 1, Hotspot: 99},
		"neg-period":  {RogueFraction: 0.1, RogueRate: 1, StormPeriod: -1},
	} {
		if err := p.Validate(topo); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Adversary and custom Sources are mutually exclusive.
	cfg := quickAdversary(1)
	cfg.Sources = func(n topology.NodeID) traffic.Generator {
		s, _ := traffic.NewScriptSource(n, nil)
		return s
	}
	cfg.SourceName = "empty"
	if _, err := New(cfg); err == nil {
		t.Error("Adversary + Sources accepted")
	}
}

// TestRogueBypassesLimiter pins the attack semantics: rogue nodes are never
// throttled — the limiter gate is skipped outright — while well-behaved
// nodes under the same pressure are. It also pins seeded rogue placement.
func TestRogueBypassesLimiter(t *testing.T) {
	cfg := quickAdversary(2.0) // heavy rogue pressure
	cfg.Rate = 1.0             // good nodes near saturation: ALO must throttle
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 500, 3000, 500
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rogues := e.Rogues()
	// 16 nodes at 10%: round(1.6) = 2 rogues.
	if len(rogues) != 2 {
		t.Fatalf("rogue count %d, want 2", len(rogues))
	}
	rogueSet := map[topology.NodeID]bool{}
	for _, n := range rogues {
		rogueSet[n] = true
	}
	tap := &eventTap{}
	e.SetListener(tap)
	e.Run()
	var goodThrottles, rogueThrottles, rogueGen int
	for _, ev := range tap.events {
		switch ev.Kind {
		case trace.KindThrottled:
			if rogueSet[ev.Node] {
				rogueThrottles++
			} else {
				goodThrottles++
			}
		case trace.KindGenerated:
			if rogueSet[ev.Src] {
				rogueGen++
			}
		}
	}
	if rogueThrottles != 0 {
		t.Errorf("%d throttle events at rogue nodes; rogues must bypass the limiter", rogueThrottles)
	}
	if rogueGen == 0 {
		t.Error("rogues generated nothing; scenario is vacuous")
	}
	if goodThrottles == 0 {
		t.Error("no good node was ever throttled; scenario is vacuous")
	}
	// Same profile, same placement.
	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	r2 := e2.Rogues()
	for i := range rogues {
		if r2[i] != rogues[i] {
			t.Errorf("rogue placement not deterministic: %v vs %v", rogues, r2)
			break
		}
	}
}

// TestAdversaryContainment is the ISSUE's acceptance criterion: with 5% of
// links flapping and 10% of nodes rogue at saturation, the ALO limiter must
// keep the well-behaved class's delivered throughput within 25% of the
// fault-free, adversary-free baseline.
func TestAdversaryContainment(t *testing.T) {
	base := QuickConfig() // ALO limiter, uniform
	base.Rate = 1.0       // past saturation: the limiter holds the plateau
	base.Seed = 1

	baseline := func() float64 {
		e, err := New(base)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		return e.Run().Accepted
	}()
	if baseline <= 0 {
		t.Fatal("baseline run delivered nothing")
	}

	attacked := base
	attacked.Adversary = AdversaryProfile{
		RogueFraction: 0.10,
		RogueRate:     2.0,
		StormPeriod:   500,
		StormOn:       200,
		Hotspot:       5,
		Seed:          9,
	}
	sched, err := fault.Plan(topology.New(base.K, base.N), fault.Profile{
		LinkFraction:      0.05,
		At:                2500,
		Stagger:           500,
		TransientFraction: 1.0,
		RepairAfter:       300,
		FlapCount:         3,
		FlapPeriod:        800,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	attacked.Faults = sched

	e, err := New(attacked)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()
	classes := e.Collector().ClassResults()
	if len(classes) != 2 {
		t.Fatalf("expected good/rogue class results, got %d", len(classes))
	}
	good := classes[ClassGood]
	if good.Class != "good" || good.Delivered == 0 {
		t.Fatalf("good class malformed: %+v", good)
	}
	if min := 0.75 * baseline; good.Accepted < min {
		t.Errorf("good-class accepted %.4f below 75%% of fault-free baseline %.4f (floor %.4f)",
			good.Accepted, baseline, min)
	}
	t.Logf("baseline %.4f, good-class under attack %.4f (%.0f%%), rogue-class %.4f",
		baseline, good.Accepted, 100*good.Accepted/baseline, classes[ClassRogue].Accepted)
}

// TestReplayRoundTrip closes the trace-driven loop: record a run's JSONL
// trace, parse it back with obs.ReadReplay, re-drive a fresh engine through
// traffic.ReplayFactory, and require the replay to reproduce the original
// event stream bit for bit.
func TestReplayRoundTrip(t *testing.T) {
	up := topology.PortFor(0, topology.Plus)
	cfg := QuickConfig()
	cfg.Rate = 0.7
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 500, 2500, 500
	cfg.Faults = (&fault.Schedule{}).FailLink(1200, 1, up).RestoreLink(2400, 1, up)

	// Original run, streamed through the real JSONL encoder.
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	tap := &eventTap{}
	e.SetListener(trace.Multi{obs.NewTraceSink(w), tap})
	origRes := e.Run()
	e.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	scripts, err := obs.ReadReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) == 0 {
		t.Fatal("trace produced no replay scripts")
	}

	replay := cfg
	replay.Sources = traffic.ReplayFactory(scripts)
	replay.SourceName = "replay-test"
	replay.Rate = 0 // ignored under Sources; make that explicit
	e2, err := New(replay)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tap2 := &eventTap{}
	e2.SetListener(tap2)
	replayRes := e2.Run()

	if replayRes != origRes {
		t.Errorf("replay result diverged:\n got  %+v\n want %+v", replayRes, origRes)
	}
	if len(tap2.events) != len(tap.events) {
		t.Fatalf("replay emitted %d events, original %d", len(tap2.events), len(tap.events))
	}
	for i := range tap.events {
		if tap.events[i] != tap2.events[i] {
			t.Fatalf("event %d diverged:\n got  %+v\n want %+v", i, tap2.events[i], tap.events[i])
		}
	}
}
