package sim

import (
	"fmt"

	"wormnet/internal/topology"
)

// Online fault/repair reconfiguration. Every liveness-changing fault event —
// Down and Up alike — advances the engine's routing epoch; when a cycle's
// due-event batch changed anything, the engine reconfigures in place,
// without draining the network:
//
//   - The packed candidate table is rebuilt under the new mask. This is what
//     re-admits healed capacity: a repaired link's virtual channels re-enter
//     candidate sets (and thereby the limiters' useful-channel views) the
//     very cycle the repair commits, instead of staying invisible until the
//     next run.
//   - Surviving routes are revalidated to the new epoch (drain-or-reroute):
//     a route whose output channel is still alive keeps its claim and drains
//     under the new epoch — wormholes never switch channels mid-flight, so
//     draining the held channel is the only consistent continuation — while
//     routes crossing dead capacity never survive to this point (the kill
//     sweep severed their messages). Unrouted headers simply re-route
//     against the new table.
//
// The revalidation keeps the epoch-consistency invariant checkable in O(1)
// per route: every valid route's stamp equals the engine's current epoch,
// and its claimed channel is alive. No packet ever crosses a hop decision
// from a stale epoch.
//
// Determinism: reconfiguration runs where fault application runs — serially
// at the cycle boundary, before any phase, on both the serial and the
// sharded path (stepParallel applies due faults before waking workers) — so
// epoch flips, table rebuilds and revalidation sweeps are bit-identical at
// any worker count.

// Epoch returns the current routing epoch: the number of liveness-changing
// fault and repair events applied so far. Fault-free runs stay at epoch 0.
func (e *Engine) Epoch() uint64 { return e.epoch }

// SetReconfigHook installs f to run after every reconfiguration (epoch
// flip), with the new epoch. It runs at the cycle boundary before any phase,
// on the engine's goroutine. Tests hang transition-safety checks here — the
// epoch invariants and the wait-graph oracle at every flip; the hook must
// not mutate engine state.
func (e *Engine) SetReconfigHook(f func(epoch uint64)) { e.onReconfig = f }

// reconfigure rebuilds the routing state after a batch of liveness changes:
// a fresh candidate table under the new mask, then the revalidation sweep
// stamping every surviving route to the new epoch.
func (e *Engine) reconfigure() {
	e.cand = buildCandTable(e.alg, e.topo.Nodes())
	for i := range e.nodes {
		nd := &e.nodes[i]
		for a := range nd.routes {
			if nd.routes[a].valid {
				nd.routes[a].epoch = uint16(e.epoch)
			}
		}
		for c := range nd.inj {
			if nd.inj[c].route.valid {
				nd.inj[c].route.epoch = uint16(e.epoch)
			}
		}
	}
	if e.onReconfig != nil {
		e.onReconfig(e.epoch)
	}
}

// CheckReconfiguration validates the transition-safety contract after an
// epoch flip (or at any cycle boundary):
//
//  1. Epoch consistency — every valid route is stamped with the current
//     epoch, every forward route's claimed output channel is alive, and
//     every ejection route's router is alive: no hop decision from a stale
//     epoch survives, so no packet can cross an epoch inconsistently.
//  2. Table freshness — the packed candidate table matches a fresh
//     evaluation of the routing function under the current liveness mask
//     for every (node, destination) pair.
//  3. Recoverability — if the wait-graph oracle finds a deadlocked set in
//     the post-flip state, deadlock detection must be armed to recover it:
//     a reconfiguration must never introduce a wait cycle the watermark
//     machinery cannot break.
//
// It is test-grade (table freshness is O(nodes²)); the cheap per-route
// epoch checks also run inside CheckInvariants on every fault-capable run.
func (e *Engine) CheckReconfiguration() error {
	if err := e.checkRouteEpochs(); err != nil {
		return err
	}
	fresh := buildCandTable(e.alg, e.topo.Nodes())
	for n := 0; n < e.topo.Nodes(); n++ {
		for d := 0; d < e.topo.Nodes(); d++ {
			got := e.cand.get(topology.NodeID(n), topology.NodeID(d))
			want := fresh.get(topology.NodeID(n), topology.NodeID(d))
			if len(got) != len(want) {
				return fmt.Errorf("sim: stale candidate table at (%d,%d): %d port sets, fresh rebuild has %d",
					n, d, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					return fmt.Errorf("sim: stale candidate table at (%d,%d): set %d is %+v, fresh rebuild has %+v",
						n, d, i, got[i], want[i])
				}
			}
		}
	}
	if g := e.BuildWaitGraph(); g.HasDeadlock() && !e.det.Enabled() {
		return fmt.Errorf("sim: epoch %d: wait graph holds a deadlocked set of %d messages with detection disarmed — unrecoverable transition",
			e.epoch, len(g.Deadlocked()))
	}
	return nil
}

// checkRouteEpochs walks every valid route and verifies the epoch stamp and
// channel liveness: the cheap core of the epoch-consistency invariant.
func (e *Engine) checkRouteEpochs() error {
	stamp := uint16(e.epoch)
	check := func(nd *node, r routeInfo, what string, idx int) error {
		if !r.valid {
			return nil
		}
		if r.epoch != stamp {
			return fmt.Errorf("sim: node %d %s %d: route stamped epoch %d, engine at %d (mod 2^16: %d)",
				nd.id, what, idx, r.epoch, e.epoch, stamp)
		}
		if e.live != nil {
			if r.eject {
				if !e.live.RouterAlive(nd.id) {
					return fmt.Errorf("sim: node %d %s %d: ejection route at dead router", nd.id, what, idx)
				}
			} else if !e.live.LinkAlive(nd.id, r.outPort) {
				return fmt.Errorf("sim: node %d %s %d: route claims dead channel port %d", nd.id, what, idx, r.outPort)
			}
		}
		return nil
	}
	for i := range e.nodes {
		nd := &e.nodes[i]
		for a := range nd.routes {
			if err := check(nd, nd.routes[a], "agent", a); err != nil {
				return err
			}
		}
		for c := range nd.inj {
			if err := check(nd, nd.inj[c].route, "inj", c); err != nil {
				return err
			}
		}
	}
	return nil
}
