package sim

// Live-metrics instrumentation of the engine. The layer is strictly
// observational: it reads engine state and never writes any, so a run
// produces bit-identical message-level results and counters with metrics
// enabled or disabled (TestMetricsDeterminism pins this), serial and
// parallel alike. A disabled engine (e.met == nil) pays one nil check per
// instrumentation site and allocates nothing — the CI bench job gates
// allocs/op == 0 on exactly that path.
//
// Cost model, per the overhead budget in DESIGN.md §10:
//   - every cycle (metrics on): one counter add for moved flits, plus one
//     atomic add per denied injection (deny classification re-runs the
//     limiter's rule predicate, a handful of status-word reads);
//   - every SampleEvery cycles: an O(nodes) walk setting the gauges, the
//     per-phase wall-clock timers, and the optional sample hook (JSONL
//     snapshot). Amortised per cycle this stays O(nodes/SampleEvery).

import (
	"math/bits"
	"time"

	"wormnet/internal/metrics"
	"wormnet/internal/topology"
)

// DefaultMetricsSampleEvery is the default gauge-sampling period in cycles.
const DefaultMetricsSampleEvery = 256

// phaseTimingBounds are the nanosecond histogram buckets of the per-phase
// timers: wide enough for an 8-ary 3-cube phase (tens of µs) and for whole
// parallel cycles, coarse enough to stay at ten buckets.
var phaseTimingBounds = []float64{500, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 1e6}

// engineMetrics is the engine's registered metric set. All pointers come
// from one Registry; the struct exists so hot-path sites reach their metric
// with a field load instead of a map lookup.
type engineMetrics struct {
	// Mirrored monotone totals (Set from the engine's own counters at
	// sample time — no hot-path cost).
	generated *metrics.Counter
	delivered *metrics.Counter
	recovered *metrics.Counter
	aborted   *metrics.Counter
	retried   *metrics.Counter
	dropped   *metrics.Counter

	// Live event counters (incremented at the event site).
	admitted  *metrics.Counter
	denied    *metrics.Counter
	denyRuleA *metrics.Counter
	denyRuleB *metrics.Counter
	flits     *metrics.Counter

	// Sampled gauges.
	cycle        *metrics.Gauge
	inflight     *metrics.Gauge
	queueDepth   *metrics.Gauge
	recoveryWait *metrics.Gauge
	retryWait    *metrics.Gauge
	occupiedVCs  *metrics.Gauge
	occupancy    *metrics.Gauge // occupied input VCs / all input VCs
	freeOutVCs   *metrics.Gauge // unallocated output VCs / all output VCs
	busyInj      *metrics.Gauge
	flitsSampled *metrics.Gauge // flits moved on the sampled cycle

	// Sampled distributions across nodes (one Observe per node per sample).
	queueHist *metrics.Histogram
	occHist   *metrics.Histogram

	// Per-phase wall-clock timing, sampled cycles only.
	phaseGenerate *metrics.Histogram
	phaseInject   *metrics.Histogram
	phaseRoute    *metrics.Histogram
	phaseSwitch   *metrics.Histogram
	phaseMove     *metrics.Histogram
	cycleTime     *metrics.Histogram // whole cycle (the parallel path times this)

	// Parallel-engine sync profile, sampled cycles only. Barrier waits and
	// shard busy time come from the worker-pool path (the inline single-P
	// schedule has no waits to measure); the ring series cover both paths.
	barrierWait    [4]*metrics.Histogram // per-shard wait at B1..B4
	shardBusy      *metrics.Histogram    // per-shard cycle time minus barrier waits
	shardImbalance *metrics.Gauge        // (max-min)/max shard busy on the sampled cycle
	ringHW         *metrics.Gauge        // push-ring fill high watermark, sampled cycle
	ringPushes     *metrics.Counter      // cross-shard ring pushes (all-time, mirrored)
}

// newEngineMetrics registers the engine's metric inventory in reg.
func newEngineMetrics(reg *metrics.Registry) *engineMetrics {
	c := func(name, help string) *metrics.Counter { return reg.NewCounter(name, help) }
	g := func(name, help string) *metrics.Gauge { return reg.NewGauge(name, help) }
	h := func(name, help string, b []float64) *metrics.Histogram { return reg.NewHistogram(name, help, b) }
	m := &engineMetrics{
		generated: c("sim_messages_generated_total", "messages created by traffic sources (all-time)"),
		delivered: c("sim_messages_delivered_total", "messages fully consumed at their destination (all-time)"),
		recovered: c("sim_deadlock_recoveries_total", "presumed-deadlocked messages handed to software recovery (all-time)"),
		aborted:   c("sim_messages_aborted_total", "messages killed because a fault severed their path (all-time)"),
		retried:   c("sim_messages_retried_total", "source retries scheduled for fault-killed messages (all-time)"),
		dropped:   c("sim_messages_dropped_total", "messages permanently dropped (all-time)"),

		admitted:  c("sim_injection_admitted_total", "source-queue heads the limiter admitted"),
		denied:    c("sim_injection_denied_total", "source-queue heads the limiter denied (throttle events)"),
		denyRuleA: c("sim_injection_deny_rule_a_total", "denials where rule (a) failed: a useful channel had no free VC"),
		denyRuleB: c("sim_injection_deny_rule_b_total", "denials where rule (b) failed: no useful channel was completely free"),
		flits:     c("sim_flits_moved_total", "flit transfers applied (crossbar traversals incl. ejection)"),

		cycle:        g("sim_cycle", "current simulation cycle (last sample)"),
		inflight:     g("sim_inflight_messages", "generated minus delivered minus dropped"),
		queueDepth:   g("sim_source_queue_depth", "messages waiting in source queues, network-wide"),
		recoveryWait: g("sim_recovery_pending", "recovered messages waiting out the re-injection delay"),
		retryWait:    g("sim_retry_pending", "fault-killed messages waiting out their retry backoff"),
		occupiedVCs:  g("sim_occupied_input_vcs", "input virtual channels holding at least one flit"),
		occupancy:    g("sim_input_vc_occupancy_ratio", "occupied input VCs over all input VCs"),
		freeOutVCs:   g("sim_free_output_vc_ratio", "unallocated output VCs over all output VCs"),
		busyInj:      g("sim_busy_injection_channels", "injection channels currently streaming a message"),
		flitsSampled: g("sim_flits_moved_per_cycle", "flit transfers on the sampled cycle (utilization proxy)"),

		queueHist: h("sim_node_queue_depth", "per-node source-queue depth at sample time",
			[]float64{0, 1, 2, 4, 8, 16, 32, 64, 128}),
		occHist: h("sim_node_occupied_vcs", "per-node occupied input VCs at sample time",
			[]float64{0, 1, 2, 4, 8, 12, 16, 24}),

		phaseGenerate: h("sim_phase_generate_ns", "generation-phase wall time (sampled cycles)", phaseTimingBounds),
		phaseInject:   h("sim_phase_inject_ns", "injection-phase wall time (sampled cycles)", phaseTimingBounds),
		phaseRoute:    h("sim_phase_route_ns", "VC-allocation/routing-phase wall time (sampled cycles)", phaseTimingBounds),
		phaseSwitch:   h("sim_phase_switch_ns", "switch-allocation-phase wall time (sampled cycles)", phaseTimingBounds),
		phaseMove:     h("sim_phase_move_ns", "flit-movement-phase wall time (sampled cycles)", phaseTimingBounds),
		cycleTime:     h("sim_cycle_ns", "whole-cycle wall time (sampled cycles)", phaseTimingBounds),
	}
	m.barrierWait = [4]*metrics.Histogram{
		h("sim_barrier_wait_b1_ns", "per-shard wait at barrier B1 (generation commit; sampled cycles)", phaseTimingBounds),
		h("sim_barrier_wait_b2_ns", "per-shard wait at barrier B2 (injection commit + alloc cut; sampled cycles)", phaseTimingBounds),
		h("sim_barrier_wait_b3_ns", "per-shard wait at barrier B3 (switch to move; sampled cycles)", phaseTimingBounds),
		h("sim_barrier_wait_b4_ns", "per-shard wait at barrier B4 (move commit; sampled cycles)", phaseTimingBounds),
	}
	m.shardBusy = h("sim_shard_busy_ns", "per-shard cycle time minus barrier waits (sampled cycles)", phaseTimingBounds)
	m.shardImbalance = g("sim_shard_imbalance_ratio", "(max-min)/max shard busy time on the sampled cycle")
	m.ringHW = g("sim_push_ring_high_watermark", "largest push-ring batch published on the sampled cycle")
	m.ringPushes = c("sim_ring_pushes_total", "cross-shard flit pushes routed through SPSC rings (all-time)")
	return m
}

// EnableMetrics attaches a metrics registry to the engine: event counters
// update live, gauges are sampled every sampleEvery cycles (<= 0 selects
// DefaultMetricsSampleEvery). Pass a nil registry to detach. Enabling
// metrics never changes simulation results; it may be called on a fresh
// engine only (before the first Step), so mirrored totals stay exact.
func (e *Engine) EnableMetrics(reg *metrics.Registry, sampleEvery int64) {
	if reg == nil {
		e.met = nil
		e.metReg = nil
		return
	}
	if sampleEvery <= 0 {
		sampleEvery = DefaultMetricsSampleEvery
	}
	e.met = newEngineMetrics(reg)
	e.metEvery = sampleEvery
	e.metReg = reg
}

// SetSampleHook registers a function called right after each metrics sample
// (every sampleEvery cycles, on the simulation goroutine) with the sampled
// cycle. It is the deterministic attachment point for periodic exporters —
// the JSONL snapshot stream in cmd/wormsim. Pass nil to detach; the hook
// never fires while metrics are disabled.
func (e *Engine) SetSampleHook(h func(cycle int64)) { e.onSample = h }

// FlushMetrics forces a gauge sample (and sample-hook firing) at the
// current cycle, outside the periodic cadence. Run calls it after the last
// cycle; step-driven callers can use it before reading final totals. It is
// a no-op with metrics disabled.
func (e *Engine) FlushMetrics() {
	if e.met != nil {
		e.sampleMetrics()
	}
}

// metricsSampled reports whether the current cycle is a sampling cycle.
func (e *Engine) metricsSampled() bool {
	return e.met != nil && e.now%e.metEvery == 0
}

// noteDeny records a limiter denial and, when the limiter exposes the
// paper's rule decomposition, which rule(s) failed. Runs on the node's own
// goroutine in parallel mode; counters are atomic, and the classification
// touches only the node's own scratch state.
func (e *Engine) noteDeny(nd *node, dst topology.NodeID) {
	e.met.denied.Inc()
	if nd.limClass == nil {
		return
	}
	a, b := nd.limClass.ClassifyRules(nd.view, dst)
	if !a {
		e.met.denyRuleA.Inc()
	}
	if !b {
		e.met.denyRuleB.Inc()
	}
}

// sampleMetrics walks the network once and refreshes every gauge, then
// fires the sample hook. It runs between cycles on the coordinator, so all
// reads are race-free; it writes nothing but metrics.
func (e *Engine) sampleMetrics() {
	m := e.met
	var queued, recPend, retryPend, occ, busy, freeOut int
	for i := range e.nodes {
		nd := &e.nodes[i]
		q := nd.queue.Len()
		queued += q
		recPend += len(nd.recovery)
		retryPend += len(nd.retry)
		occ += nd.occVCs
		busy += nd.busyInj
		for p := range nd.freeMask {
			freeOut += bits.OnesCount32(nd.freeMask[p])
		}
		m.queueHist.Observe(float64(q))
		m.occHist.Observe(float64(nd.occVCs))
	}
	totalVCs := len(e.nodes) * e.numPhys * e.cfg.VCs

	m.cycle.SetInt(e.now)
	m.inflight.SetInt(e.InFlight())
	m.queueDepth.SetInt(int64(queued))
	m.recoveryWait.SetInt(int64(recPend))
	m.retryWait.SetInt(int64(retryPend))
	m.occupiedVCs.SetInt(int64(occ))
	m.occupancy.Set(float64(occ) / float64(totalVCs))
	m.freeOutVCs.Set(float64(freeOut) / float64(totalVCs))
	m.busyInj.SetInt(int64(busy))

	m.generated.Set(e.generated)
	m.delivered.Set(e.delivered)
	m.recovered.Set(e.recovered)
	m.aborted.Set(e.aborted)
	m.retried.Set(e.retried)
	m.dropped.Set(e.dropped)

	if e.onSample != nil {
		e.onSample(e.now)
	}
}

// stepSerialSampled is the serial Step body of a sampling cycle: the same
// five phases in the same order, wrapped in wall-clock timers, followed by
// the gauge sample. Split from Step so the common path carries no timer
// reads at all.
func (e *Engine) stepSerialSampled() {
	m := e.met
	t0 := time.Now()
	if e.live != nil {
		e.phaseFaults()
	}
	t := time.Now()
	e.phaseGenerate()
	t = observePhase(m.phaseGenerate, t)
	e.phaseInject()
	t = observePhase(m.phaseInject, t)
	e.phaseAllocate()
	t = observePhase(m.phaseRoute, t)
	e.phaseSwitch()
	t = observePhase(m.phaseSwitch, t)
	e.phaseMove()
	observePhase(m.phaseMove, t)
	m.cycleTime.Observe(float64(time.Since(t0).Nanoseconds()))

	m.flits.Add(int64(len(e.moves)))
	m.flitsSampled.SetInt(int64(len(e.moves)))
	e.sampleMetrics()
}

// observePhase records the time since t into h and returns a fresh mark.
func observePhase(h *metrics.Histogram, t time.Time) time.Time {
	now := time.Now()
	h.Observe(float64(now.Sub(t).Nanoseconds()))
	return now
}
