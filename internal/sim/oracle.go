package sim

// Ground-truth oracle exports for the exhaustive model checker
// (internal/modelcheck): the channel-wait graph of the current state and an
// independent re-evaluation of the ALO injection property. Both are
// read-only over engine state and must be called between Step calls.

import (
	"fmt"
	"math/bits"
	"sort"

	"wormnet/internal/core"
	"wormnet/internal/deadlock"
	"wormnet/internal/message"
	"wormnet/internal/topology"
)

// BuildWaitGraph constructs the channel-wait graph of the current state:
// every in-flight message classified at the site of its header flit. A
// message whose header holds a route (or is draining into an ejection
// channel, or waits only for an ejection channel at its destination) is
// live; a message whose header sits unrouted is blocked, with one option
// per admissible output virtual channel — blocked by the channel's owner,
// or by the message whose flits still occupy the (otherwise free)
// channel's downstream buffer. See deadlock.WaitGraph for the liveness
// fixpoint that turns this into the ground-truth deadlocked set.
func (e *Engine) BuildWaitGraph() *deadlock.WaitGraph {
	g := deadlock.NewWaitGraph()
	type headerSite struct {
		nd    *node
		agent int // input VC index, or injection-channel index when inj
		inj   bool
	}
	// Collect every in-flight message and locate its header flit. Messages
	// waiting in source/recovery/retry queues hold no network resources and
	// are outside the graph.
	headers := make(map[*message.Message]headerSite)
	seen := make(map[*message.Message]struct{})
	var msgs []*message.Message
	add := func(m *message.Message) {
		if _, ok := seen[m]; !ok {
			seen[m] = struct{}{}
			msgs = append(msgs, m)
		}
	}
	for i := range e.nodes {
		nd := &e.nodes[i]
		for a := range nd.in {
			b := &nd.in[a].buf
			for j := 0; j < b.Len(); j++ {
				f := b.At(j)
				add(f.Msg)
				if f.Head {
					headers[f.Msg] = headerSite{nd: nd, agent: a}
				}
			}
		}
		for c := range nd.inj {
			ic := &nd.inj[c]
			if ic.msg == nil {
				continue
			}
			add(ic.msg)
			if ic.left == ic.len {
				// The head flit has not been streamed yet: the header is
				// the injection channel itself.
				headers[ic.msg] = headerSite{nd: nd, agent: c, inj: true}
			}
		}
		for c := range nd.ej {
			if m := nd.ej[c].msg; m != nil {
				add(m)
			}
		}
		for v := range nd.outVCs {
			if m := nd.outVCs[v].Owner(); m != nil {
				add(m)
			}
		}
	}
	sort.Slice(msgs, func(a, b int) bool { return msgs[a].ID < msgs[b].ID })

	for _, m := range msgs {
		id := int64(m.ID)
		s, ok := headers[m]
		switch {
		case !ok:
			// Header already consumed by an ejection channel (or the
			// message holds only body/tail flits behind a routed header):
			// the message is draining and always finishes.
			g.AddLive(id)
		case s.inj && s.nd.inj[s.agent].route.valid,
			!s.inj && s.nd.routes[s.agent].valid:
			// Routed header: it claimed an output virtual channel with an
			// empty downstream buffer (or an ejection channel) and only its
			// own flits enter that buffer, so it always advances.
			g.AddLive(id)
		case m.Dst == s.nd.id:
			// Waiting for an ejection channel at the destination: ejection
			// channels drain unconditionally, never a deadlock.
			g.AddLive(id)
		default:
			g.AddBlocked(id)
			e.addWaitOptions(g, id, s.nd, m.Dst)
		}
	}
	return g
}

// addWaitOptions emits one wait-graph option per admissible output virtual
// channel of a blocked header at nd addressed to dst.
func (e *Engine) addWaitOptions(g *deadlock.WaitGraph, id int64, nd *node, dst topology.NodeID) {
	vcs := e.cfg.VCs
	for _, pc := range e.candidates(nd, dst) {
		base := int(pc.port) * vcs
		for w := pc.mask; w != 0; w &= w - 1 {
			v := bits.TrailingZeros32(w)
			ovc := &nd.outVCs[base+v]
			if owner := ovc.Owner(); owner != nil {
				g.AddOption(id, int64(owner.ID))
				continue
			}
			// Channel free: allocatable once the downstream buffer is
			// empty. Non-empty means the previous worm's flits are still
			// draining through it — the option waits on that message.
			down := nd.down[base+v]
			if down.buf.Empty() {
				g.AddOption(id) // immediately available
			} else {
				g.AddOption(id, int64(down.buf.FrontMessage().ID))
			}
		}
	}
}

// VerifyInjectionProperty re-derives the paper's ALO predicate — rule (a):
// every useful physical channel has at least one free virtual channel;
// rule (b): some useful physical channel is completely free — directly from
// raw output-VC ownership state for every node with a queued head message,
// and checks three implementations against it: the limiter's live Allow
// decision, the shared EvalRules classification, and the Figure-3 gate
// circuit evaluated on the raw status register. Nodes whose limiter is not
// ALO are skipped. It is read-only (ALO is stateless) and must run between
// Step calls.
func (e *Engine) VerifyInjectionProperty() error {
	vcs := e.cfg.VCs
	var circuit *core.Circuit
	vcFree := make([]core.Signal, e.numPhys*vcs)
	useful := make([]core.Signal, e.numPhys)
	for i := range e.nodes {
		nd := &e.nodes[i]
		if nd.queue.Empty() {
			continue
		}
		alo, ok := nd.limiter.(core.ALO)
		if !ok {
			continue
		}
		dst := nd.queue.Front().Dst
		// Ground truth straight from the output-VC ownership state.
		ruleA, ruleB := true, false
		for p := range useful {
			useful[p] = false
		}
		for _, pc := range e.candidates(nd, dst) {
			useful[pc.port] = true
			free := 0
			for v := 0; v < vcs; v++ {
				if nd.outVCs[int(pc.port)*vcs+v].Free() {
					free++
				}
			}
			if free == 0 {
				ruleA = false
			}
			if free == vcs {
				ruleB = true
			}
		}
		want := ruleA || ruleB
		if got := alo.Allow(nd.view, dst); got != want {
			return fmt.Errorf("sim: node %d dst %d: ALO.Allow=%v but rules say a=%v b=%v",
				nd.id, dst, got, ruleA, ruleB)
		}
		if a, b := core.EvalRules(nd.view, dst); a != ruleA || b != ruleB {
			return fmt.Errorf("sim: node %d dst %d: EvalRules=(%v,%v), state says (%v,%v)",
				nd.id, dst, a, b, ruleA, ruleB)
		}
		if circuit == nil {
			circuit = core.NewCircuit(e.numPhys, vcs)
		}
		for v := range vcFree {
			vcFree[v] = nd.outVCs[v].Free()
		}
		if got := circuit.Eval(vcFree, useful); got != want {
			return fmt.Errorf("sim: node %d dst %d: gate circuit=%v, rules say %v",
				nd.id, dst, got, want)
		}
	}
	return nil
}
