package sim

import (
	"testing"

	"wormnet/internal/fault"
	"wormnet/internal/message"
	"wormnet/internal/stats"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
)

// faulty returns a zero-rate engine with the given fault schedule, for
// hand-built scenarios.
func faulty(t *testing.T, s *fault.Schedule, mutate func(*Config)) *Engine {
	t.Helper()
	return idle(t, func(c *Config) {
		c.Faults = s
		if mutate != nil {
			mutate(c)
		}
	})
}

// TestFaultTransientLinkRetryDelivers severs a streaming wormhole on a ring,
// watches the kill/retry machinery fight the outage, and checks the message
// finally gets through once the link heals.
func TestFaultTransientLinkRetryDelivers(t *testing.T) {
	up := topology.PortFor(0, topology.Plus)
	sched := (&fault.Schedule{}).FailLink(6, 1, up).RestoreLink(300, 1, up)
	e := faulty(t, sched, func(c *Config) {
		c.K, c.N = 8, 1
	})
	rec := trace.NewRecorder(256)
	e.SetListener(rec)

	// 0 -> 3 is minimal only in the Plus direction: the wormhole must cross
	// (1, Plus), which dies at cycle 6 with the 64-flit message mid-stream.
	m := e.Inject(0, 3, 64)
	stepN(t, e, 1000)

	if m.State != message.StateDelivered {
		t.Fatalf("message not delivered after the link healed: %v", m)
	}
	if m.Retries == 0 || e.Aborted() == 0 || e.Retried() == 0 {
		t.Fatalf("no retry happened: retries=%d aborted=%d retried=%d",
			m.Retries, e.Aborted(), e.Retried())
	}
	if e.Dropped() != 0 {
		t.Fatalf("%d messages dropped; the outage was transient", e.Dropped())
	}
	if rec.Count(trace.KindFault) == 0 || rec.Count(trace.KindRepair) == 0 {
		t.Error("fault/repair events not emitted")
	}
	// Every abort was answered the same cycle: a retry or a drop.
	checkAbortOutcomes(t, rec, int64(m.ID))
}

// TestFaultPermanentLinkExhaustsRetries checks the retry limit: a message
// whose only minimal path is permanently dead is retried MaxRetries times
// and then dropped with the retries-exhausted reason.
func TestFaultPermanentLinkExhaustsRetries(t *testing.T) {
	up := topology.PortFor(0, topology.Plus)
	sched := (&fault.Schedule{}).FailLink(0, 1, up)
	e := faulty(t, sched, func(c *Config) {
		c.K, c.N = 8, 1
		c.Retry = fault.RetryPolicy{MaxRetries: 3, BackoffBase: 4, BackoffCap: 16}
	})
	rec := trace.NewRecorder(256)
	e.SetListener(rec)

	m := e.Inject(0, 3, 8)
	stepN(t, e, 500)

	if m.State != message.StateDropped {
		t.Fatalf("message not dropped: %v (retries=%d)", m, m.Retries)
	}
	if m.DropReason != message.DropRetriesExhausted {
		t.Fatalf("drop reason %q want %q", m.DropReason, message.DropRetriesExhausted)
	}
	if m.Retries != 3 {
		t.Errorf("retried %d times want 3", m.Retries)
	}
	if e.Dropped() != 1 {
		t.Errorf("dropped counter %d want 1", e.Dropped())
	}
	checkAbortOutcomes(t, rec, int64(m.ID))
}

// TestFaultDeadDestinationUnreachable checks that traffic addressed to a
// dead router is dropped as unreachable instead of wandering forever.
func TestFaultDeadDestinationUnreachable(t *testing.T) {
	sched := (&fault.Schedule{}).FailRouter(0, 9)
	e := faulty(t, sched, nil)
	m := e.Inject(0, 9, 8)
	stepN(t, e, 50)
	if m.State != message.StateDropped || m.DropReason != message.DropUnreachable {
		t.Fatalf("message to dead router: state=%v reason=%q", m.State, m.DropReason)
	}
}

// TestFaultRouterDownKillsResidentTraffic fails a router mid-simulation and
// checks that everything it held — its source backlog and the wormholes
// crossing it — is killed, then that invariants hold on the wreckage.
func TestFaultRouterDownKillsResidentTraffic(t *testing.T) {
	// Node 2 on the 0->4 path dies at cycle 8.
	sched := (&fault.Schedule{}).FailRouter(8, 2)
	e := faulty(t, sched, func(c *Config) {
		c.K, c.N = 8, 1
	})
	through := e.Inject(0, 4, 64) // streams across node 2 when it dies
	queued := e.Inject(2, 5, 8)   // in node 2's injection path when it dies
	// The default policy's eight capped-exponential backoffs sum to ~3000
	// cycles; run past them so the through-message burns out.
	stepN(t, e, 3500)

	if e.Aborted() == 0 {
		t.Fatal("router failure aborted nothing")
	}
	if queued.State != message.StateDropped || queued.DropReason != message.DropSourceFailed {
		t.Errorf("backlog of dead source: state=%v reason=%q", queued.State, queued.DropReason)
	}
	// The through-message's source and destination are alive but its only
	// minimal path crosses the dead router: retries burn out, then drop.
	if through.State != message.StateDropped || through.DropReason != message.DropRetriesExhausted {
		t.Errorf("through-message: state=%v reason=%q retries=%d",
			through.State, through.DropReason, through.Retries)
	}
}

// checkAbortOutcomes asserts that every abort event of the message was
// resolved in the same cycle by a retry or a drop — no kill may leave a
// message in limbo.
func checkAbortOutcomes(t *testing.T, rec *trace.Recorder, msgID int64) {
	t.Helper()
	hist := rec.MessageHistory(msgID)
	for i, ev := range hist {
		if ev.Kind != trace.KindAborted {
			continue
		}
		resolved := false
		for _, nxt := range hist[i+1:] {
			if nxt.Cycle != ev.Cycle {
				break
			}
			if nxt.Kind == trace.KindRetried || nxt.Kind == trace.KindDropped {
				resolved = true
				break
			}
		}
		if !resolved {
			t.Fatalf("abort at cycle %d not resolved by retry/drop: %v", ev.Cycle, hist)
		}
	}
	last := hist[len(hist)-1].Kind
	if last != trace.KindDelivered && last != trace.KindDropped && last != trace.KindRetried {
		t.Fatalf("terminal event %v; want delivered or dropped (or retried, still pending)", last)
	}
}

// TestFaultInvariantsUnderLoad runs a loaded network through a barrage of
// link and router failures (some transient) with invariant checks every
// cycle — the strongest exercise of the teardown machinery.
func TestFaultInvariantsUnderLoad(t *testing.T) {
	tp := topology.New(4, 2)
	sched, err := fault.Plan(tp, fault.Profile{
		LinkFraction:      0.10,
		RouterFraction:    0.10,
		At:                100,
		Stagger:           400,
		TransientFraction: 0.5,
		RepairAfter:       150,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := faulty(t, sched, func(c *Config) {
		c.Rate = 0.8
		c.WarmupCycles, c.MeasureCycles, c.DrainCycles = 0, 1200, 0
	})
	stepN(t, e, 1200)
	if e.Aborted() == 0 {
		t.Error("barrage aborted nothing; faults not biting")
	}
	// Conservation: everything generated is delivered, dropped, or still
	// accounted in flight (queued, retrying, recovering, or in the network).
	if e.InFlight() < 0 {
		t.Errorf("negative in-flight count %d", e.InFlight())
	}
}

// TestFaultDeterminism is the determinism guard: the same configuration and
// seed must yield bit-identical results, with faults off and on, and an
// empty schedule must be indistinguishable from no schedule (the
// zero-overhead off path).
func TestFaultDeterminism(t *testing.T) {
	base := QuickConfig()
	base.Rate = 0.8
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 200, 1000, 200

	run := func(c Config) stats.Result {
		e, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run()
	}

	// Faults off: two runs agree.
	if a, b := run(base), run(base); a != b {
		t.Errorf("fault-free runs diverge:\n%+v\n%+v", a, b)
	}

	// Empty schedule == nil schedule, field for field.
	empty := base
	empty.Faults = &fault.Schedule{}
	if a, b := run(base), run(empty); a != b {
		t.Errorf("empty fault schedule changed the run:\n%+v\n%+v", a, b)
	}

	// Faults on: two runs agree.
	sched, err := fault.Plan(topology.New(base.K, base.N), fault.Profile{
		LinkFraction: 0.08, RouterFraction: 0.05, At: 300,
		TransientFraction: 0.5, RepairAfter: 200, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	withFaults := base.WithFaults(sched)
	if a, b := run(withFaults), run(withFaults); a != b {
		t.Errorf("faulty runs diverge:\n%+v\n%+v", a, b)
	}
}

// TestFaultRequiresFaultAwareRouting is a config guard: every bundled
// routing engine is fault-aware, so New accepts faults with each of them.
func TestFaultRequiresFaultAwareRouting(t *testing.T) {
	for _, alg := range []string{"tfar", "dor", "duato"} {
		cfg := QuickConfig()
		cfg.Routing = alg
		cfg.Faults = (&fault.Schedule{}).FailLink(10, 0, 0)
		if _, err := New(cfg); err != nil {
			t.Errorf("routing %q rejected faults: %v", alg, err)
		}
	}
}

// TestFaultScheduleValidation checks that bad schedules are rejected at
// config time, not at apply time.
func TestFaultScheduleValidation(t *testing.T) {
	cfg := QuickConfig()
	cfg.Faults = (&fault.Schedule{}).FailRouter(0, 9999)
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range fault event accepted")
	}
	cfg = QuickConfig()
	cfg.Faults = (&fault.Schedule{}).FailLink(10, 0, 0)
	cfg.Retry = fault.RetryPolicy{MaxRetries: 1, BackoffBase: 8, BackoffCap: 4}
	if _, err := New(cfg); err == nil {
		t.Error("invalid retry policy accepted")
	}
}
