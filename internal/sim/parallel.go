package sim

// Deterministic sharded parallel execution of the cycle engine.
//
// The node arena is partitioned into Config.Workers contiguous shards, one
// goroutine each, and the cycle runs as four fused parallel sections with
// one barrier after each (a fifth barrier appears only on the rare cycles
// where a recovery or fault kill could fire — see the trigger pre-scan
// below). Results are bit-identical to the serial path for any worker
// count. The scheme rests on three rules:
//
//  1. Own-node writes only. Inside a parallel section a shard writes nothing
//     but the state of its own nodes. The one phase that naturally crosses
//     shards — flit movement into a neighbour's input buffer — applies
//     pushes whose destination is inside the shard directly (serial style,
//     fused with the pop pass) and routes the rest through a preallocated
//     single-producer/single-consumer ring per ordered shard pair: the
//     source shard fills its rings while popping, publishes each ring once
//     with a cycle-stamped atomic store, and the destination shard drains
//     the rings addressed to it, applying every push to its own nodes. At
//     most one push lands in any buffer per cycle (one upstream sender,
//     one grant per output port) and all the status-word and counter
//     updates it triggers are consumer-local, so pushes commute with each
//     other and with the consumer's own remaining pops — which is what
//     lets pass 1 and pass 2 of the move phase share a single section with
//     no barrier between them.
//
//  2. Phase-stable cross-shard reads. The only remote state a parallel
//     section reads — the downstream empty words during allocation, the
//     downstream full words during switch allocation, the liveness mask —
//     is written by no one during that section: the empty/full arenas are
//     written only by the move phase (and by teardowns, which run under
//     barrier-arrival exclusivity), the liveness mask only by the serial
//     fault application before the cycle starts. This is also why
//     generation, injection, allocation and switch allocation fuse into so
//     few sections: none of them writes anything another node's slice of
//     the same section reads.
//
//  3. Serial commits at barrier arrival. Everything globally ordered —
//     message id assignment and pooling, collector hooks, trace emission,
//     drop accounting — is deferred into per-shard buffers during the
//     parallel sections and committed by the *last shard to arrive* at the
//     next barrier, before it releases the generation. The atomic arrival
//     counter orders every shard's buffered writes before the commit, and
//     the generation release publishes the commit to every waiter, so no
//     dedicated commit barriers are needed. Commits walk shards in
//     ascending order; shards are contiguous ascending node ranges, so the
//     commit order equals the serial engine's node/move order and the event
//     stream, the RNG-independent counters and the message pool all evolve
//     identically to serial. Per-node RNG streams (splitSeed) make
//     generation itself partition-independent.
//
// Deadlock recovery and fault kills tear state out of arbitrary nodes, so
// they never run inside a parallel section. Instead of serialising whole
// cycles, each shard pre-scans its own nodes after injection for the two
// exact trigger conditions — a blockage counter at Threshold-1 (counters
// grow by at most one per cycle; see deadlock.BlockTracker.SetWatermark)
// or, on fault runs, an unrouted header whose candidate set faults have
// emptied (candidate sets depend only on the liveness mask, which is
// stable for the whole cycle) — and the allocation phase splits at the
// first flagged node: the prefix, where no trigger can fire, allocates
// shard-parallel; the suffix runs the exact serial allocation code (with
// its inline teardowns) under barrier-arrival exclusivity. Fault
// application itself stays serial before the cycle (it is rare and
// inherently global); the fault-retry promotion walk runs shard-parallel
// with drops deferred.

import (
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"

	"wormnet/internal/message"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
	"wormnet/internal/traffic"
)

// genRec is one deferred traffic-generation event: the message is created
// (id assignment, pooling, collector hook) at commit time, in node order.
type genRec struct {
	node   topology.NodeID
	dst    topology.NodeID
	length int32
}

// deferredEvent is one globally-ordered side effect recorded during a
// parallel section and committed serially.
type deferredEvent struct {
	kind   uint8
	reason message.DropReason
	node   topology.NodeID
	m      *message.Message
}

const (
	evDrop      uint8 = iota // unreachable-destination drop (fault/inject phases)
	evThrottle               // limiter denial (inject phase, listener only)
	evInjected               // head flit entered the network (move phase)
	evDelivered              // tail flit consumed at destination (move phase)
)

// outFlit is one planned cross-shard flit push: everything the destination
// shard needs to apply it without touching the source node.
type outFlit struct {
	dvc  *inVC
	nbr  *node
	word int32
	bit  uint32
	flit message.Flit
}

// pushRing is the single-producer/single-consumer channel for the planned
// flit pushes of one ordered shard pair. buf is sized at construction to
// the number of physical channels crossing from the source shard into the
// destination shard — the exact per-cycle maximum (one grant per output
// port) — so the steady state allocates nothing. The producer writes
// records plainly and publishes the whole batch with one atomic store of
// the cycle stamp and count; rings are published every cycle (count 0
// included), so the consumer's cycle-stamp check distinguishes this
// cycle's batch from last cycle's without any reset traffic against the
// SPSC discipline. seen is consumer-owned: the stamp it last drained.
type pushRing struct {
	buf  []outFlit
	seen uint64
	pub  atomic.Uint64 // (uint32(cycle)+1)<<32 | count
	_    [3]uint64     // pad: neighbouring rings' pub words off this line
}

// parShard is one worker's slice of the network plus its private scratch
// and deferral buffers.
type parShard struct {
	lo, hi   int    // node range [lo, hi)
	localGen uint32 // barriers passed so far

	genScratch   []traffic.Generated
	gen          []genRec
	events       []deferredEvent
	moves        []move
	reqsFlat     []int32
	retryScratch []*message.Message

	ringN   []int32 // per-destination-shard fill count of this cycle's rings
	outDsts []int32 // destination shards reachable from this one (ring exists)
	inSrcs  []int32 // source shards with a ring into this one

	// allocCut is this shard's trigger pre-scan result: the first own node
	// at which a recovery or fault kill could fire this cycle, or
	// len(nodes) when none can (see injectRange).
	allocCut int32

	// Sync-profile scratch, shard-private: busyNS is the last sampled
	// cycle's elapsed time minus barrier waits (written before the B4
	// arrival, read by the coordinator after it), ringMax the sampled
	// cycle's push-ring batch high watermark, ringPushes the running
	// cross-shard push total (accumulated whenever metrics are on).
	busyNS     int64
	ringMax    int32
	ringPushes int64

	_ [64]byte // pad: adjacent shards' hot fields on separate cache lines
}

// phaseBarrier is a reusable centralized barrier, split into arrival and
// release so the last arriver can run the cycle's serial commits between
// the two without any closure indirection (arrival actions are inlined at
// the call sites in cycleShard). Waiters spin briefly and then yield; the
// spin budget is chosen at construction from GOMAXPROCS — on a single-P
// host no amount of spinning can make another shard arrive, so waiters go
// straight to runtime.Gosched.
type phaseBarrier struct {
	n     int32
	spin  int32
	_     [56]byte // count and gen each on their own cache line
	count atomic.Int32
	_     [60]byte
	gen   atomic.Uint32
}

// arrive reports whether the caller is the last of the n participants to
// reach the barrier. The last arriver must call release(target) — after
// performing any serial commit work — and everyone else wait(target),
// where target is the caller's barriers-passed count plus one.
func (b *phaseBarrier) arrive() bool { return b.count.Add(1) == b.n }

// release opens barrier generation target, publishing every write the
// releaser made (the atomic store orders before the waiters' loads).
func (b *phaseBarrier) release(target uint32) {
	b.count.Store(0)
	b.gen.Store(target)
}

// wait blocks until generation target is released. gen can never advance
// past target while this caller still waits (the next barrier needs this
// caller's arrival to complete), so the equality spin is safe, including
// across uint32 wraparound.
func (b *phaseBarrier) wait(target uint32) {
	for i := int32(0); b.gen.Load() != target; i++ {
		if i >= b.spin {
			runtime.Gosched()
		}
	}
}

// barrierSpin picks the barrier spin budget for a partition of s shards on
// the current GOMAXPROCS: on a single-P host a spinning waiter only delays
// the shard it is waiting for, so yield immediately; with more shards than
// Ps some shard is always descheduled, so spin barely; with a P per shard
// a short spin beats the scheduler round-trip.
func barrierSpin(s int) int32 {
	procs := runtime.GOMAXPROCS(0)
	switch {
	case procs <= 1:
		return 0
	case s > procs:
		return 32
	default:
		return 200
	}
}

// parRuntime is the parallel mode of one engine: the shard partition, the
// push rings and the worker pool. It exists only when Config.Workers > 1
// resolves to at least two shards.
type parRuntime struct {
	shards  []parShard
	shardOf []int32 // node -> shard index
	// rings[src*len(shards)+dst] is the SPSC push ring from shard src to
	// shard dst; pairs no physical channel crosses have a nil buf and are
	// skipped by both sides (outDsts/inSrcs index the live ones).
	rings []pushRing
	bar   phaseBarrier
	wake  []chan struct{} // one per non-coordinator worker, buffered

	// inline, latched at construction when GOMAXPROCS is 1, replaces the
	// worker pool with cycleInline: goroutines on a single-P host can only
	// time-slice one core, and their barrier switches shred the allocation
	// phase's cache locality (measured ~8% per-cycle overhead; inline mode
	// reduces the cost to the deferral buffers and rings alone). The
	// schedule, commit points and therefore results are identical.
	inline bool

	// sampled mirrors the coordinator's metricsSampled decision for the
	// current cycle: latched in stepParallel before the workers wake (the
	// channel send orders the write), it tells every shard whether to run
	// the sync-profile timers this cycle.
	sampled bool

	// allocCut, written by the last arriver at the post-injection barrier
	// and read by every shard after it, is the global minimum of the
	// per-shard trigger pre-scans: allocation runs shard-parallel for
	// nodes below it and serially (under barrier-arrival exclusivity,
	// where teardowns are safe) from it onward. len(nodes) on the — vastly
	// dominant — cycles where no trigger can fire.
	allocCut int32
	// watermarked records that the detector is armed with the Threshold-1
	// watermark (threshold >= 2), making BlockTracker.Hot an exact
	// one-cycle-ahead recovery predictor.
	watermarked bool
	// alwaysSerialAlloc forces allocCut to 0 for configurations whose
	// detection threshold is too low for the watermark gate (< 2).
	alwaysSerialAlloc bool
}

// alignNodes is the shard-boundary alignment quantum: boundaries are
// rounded so every shard's slice of the per-port status-word arenas
// (numPhys uint32 words per node) starts on its own 64-byte cache line,
// eliminating false sharing between adjacent shards' hottest writes.
func alignNodes(numPhys int) int {
	stride := numPhys * 4 // bytes of status words per node
	g := 64
	for b := stride; b != 0; { // gcd(stride, 64)
		g, b = b, g%b
	}
	return 64 / g // lcm(stride, 64) / stride
}

// newParRuntime partitions the engine into at most workers shards and
// starts the worker goroutines — or, on a single-P host, selects the
// inline schedule and starts none. It returns nil when the partition would
// leave fewer than two shards (the serial path is then used). The
// GOMAXPROCS decisions (spin budget, inline mode) are latched here, once.
func newParRuntime(e *Engine, workers int) *parRuntime {
	n := len(e.nodes)
	s := workers
	if s > n {
		s = n
	}
	if s < 2 {
		return nil
	}
	p := &parRuntime{
		shards:  make([]parShard, s),
		shardOf: make([]int32, n),
		rings:   make([]pushRing, s*s),
	}
	p.bar.n = int32(s)
	p.bar.spin = barrierSpin(s)
	// Cache-line-aligned shard boundaries (plain n/s split when the node
	// count is too small to keep every shard non-empty after rounding).
	unit := alignNodes(e.numPhys)
	for i := 0; i <= s; i++ {
		b := i * n / s
		if r := b % unit; r != 0 {
			if r*2 >= unit {
				b += unit - r
			} else {
				b -= r
			}
		}
		if b > n {
			b = n
		}
		if i < s {
			p.shards[i].lo = b
		}
		if i > 0 {
			p.shards[i-1].hi = b
		}
	}
	p.shards[0].lo, p.shards[s-1].hi = 0, n
	for i := range p.shards {
		if p.shards[i].lo >= p.shards[i].hi { // alignment emptied a shard
			for j := range p.shards {
				p.shards[j].lo = j * n / s
				p.shards[j].hi = (j + 1) * n / s
			}
			break
		}
	}
	numOut := e.numPhys + e.cfg.EjChannels
	nAgents := e.agentCount()
	for i := range p.shards {
		sh := &p.shards[i]
		sh.reqsFlat = make([]int32, numOut*nAgents)
		sh.ringN = make([]int32, s)
		sh.allocCut = int32(n)
		for j := sh.lo; j < sh.hi; j++ {
			p.shardOf[j] = int32(i)
		}
	}
	// Ring capacities: the number of physical channels from shard src into
	// shard dst bounds the pushes src can plan against dst per cycle (one
	// grant per output port), so buf never reallocates.
	caps := make([]int32, s*s)
	for i := range e.nodes {
		nd := &e.nodes[i]
		src := p.shardOf[i]
		for pp := 0; pp < e.numPhys; pp++ {
			caps[int(src)*s+int(p.shardOf[nd.nbr[pp].id])]++
		}
	}
	for src := 0; src < s; src++ {
		sh := &p.shards[src]
		for dst := 0; dst < s; dst++ {
			c := caps[src*s+dst]
			if src == dst || c == 0 {
				continue
			}
			p.rings[src*s+dst].buf = make([]outFlit, c)
			sh.outDsts = append(sh.outDsts, int32(dst))
			p.shards[dst].inSrcs = append(p.shards[dst].inSrcs, int32(src))
		}
	}
	p.alwaysSerialAlloc = e.det.Enabled() && e.det.Threshold < 2
	p.watermarked = e.det.Enabled() && e.det.Threshold >= 2
	if p.watermarked {
		for i := range e.nodes {
			e.nodes[i].blocked.SetWatermark(e.det.Threshold - 1)
		}
	}
	if runtime.GOMAXPROCS(0) == 1 {
		p.inline = true
		return p
	}
	p.wake = make([]chan struct{}, s-1)
	for i := range p.wake {
		p.wake[i] = make(chan struct{}, 1)
		go e.parWorker(p, i+1)
	}
	return p
}

// Close releases the engine's worker goroutines (a no-op on serial
// engines). The engine stays usable afterwards: the state between cycles is
// identical to serial, so further Steps simply run the serial path.
func (e *Engine) Close() {
	if e.par == nil {
		return
	}
	for _, ch := range e.par.wake {
		close(ch)
	}
	e.par = nil
}

// parWorker is the body of one non-coordinator worker: run the shard's
// slice of each cycle whenever woken, exit when the engine closes.
// The runtime is passed in rather than read from e.par, which New has not
// assigned yet when the workers start.
func (e *Engine) parWorker(p *parRuntime, id int) {
	for range p.wake[id-1] {
		e.cycleShard(p, id)
	}
}

// stepParallel is the parallel Step: scheduled fault events (rare,
// inherently global — teardowns cross shards) apply serially up front,
// then all shards — the caller acting as shard 0 — execute the cycle in
// lockstep. The final barrier inside cycleShard doubles as the completion
// signal.
func (e *Engine) stepParallel() {
	sampled := e.metricsSampled()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	if e.live != nil {
		e.applyDueFaults()
	}
	p := e.par
	// Latch the sampling decision for the shards before any worker wakes:
	// the channel send (or the inline call) orders the store.
	p.sampled = sampled
	if p.inline {
		e.cycleInline(p)
	} else {
		for _, ch := range p.wake {
			ch <- struct{}{}
		}
		e.cycleShard(p, 0)
	}
	if e.met != nil {
		// The shards' move plans survive until next cycle's reslice, so the
		// coordinator can total them here, after all workers are done.
		var flits int64
		for i := range p.shards {
			flits += int64(len(p.shards[i].moves))
		}
		e.met.flits.Add(flits)
		if sampled {
			// The lockstep cycle has no serial per-phase boundaries to time,
			// so parallel runs record whole-cycle wall time only.
			e.met.cycleTime.Observe(float64(time.Since(t0).Nanoseconds()))
			e.met.flitsSampled.SetInt(flits)
			e.sampleSyncProfile(p)
			e.sampleMetrics()
		}
	}
	e.now++
}

// sampleSyncProfile folds the shards' sync-profile scratch into the
// registry after a sampled parallel cycle: per-shard busy time and the
// busy-imbalance gauge (worker-pool path only — the inline schedule has no
// concurrent shards to balance), the push-ring batch high watermark, and
// the mirrored cross-shard push total. Runs on the coordinator after the
// final barrier, so every shard's writes are visible.
func (e *Engine) sampleSyncProfile(p *parRuntime) {
	m := e.met
	var pushes int64
	var hw int32
	for i := range p.shards {
		sh := &p.shards[i]
		pushes += sh.ringPushes
		if sh.ringMax > hw {
			hw = sh.ringMax
		}
		sh.ringMax = 0
	}
	m.ringHW.SetInt(int64(hw))
	m.ringPushes.Set(pushes)
	if p.inline {
		return
	}
	minB, maxB := int64(-1), int64(0)
	for i := range p.shards {
		b := p.shards[i].busyNS
		m.shardBusy.Observe(float64(b))
		if minB < 0 || b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	if maxB > 0 {
		m.shardImbalance.Set(float64(maxB-minB) / float64(maxB))
	}
}

// cycleShard runs one shard's slice of a cycle: four fused sections, one
// barrier after each. The serial commits run inline at barrier arrival —
// whichever shard arrives last executes them before releasing the
// generation (they walk all shards in ascending order, so the executor's
// identity is irrelevant to the result).
func (e *Engine) cycleShard(p *parRuntime, id int) {
	sh := &p.shards[id]
	gen := sh.localGen
	n := len(e.nodes)
	// Sync profile (sampled cycles with metrics on): time each barrier wait
	// and derive the shard's busy time — elapsed to the B4 arrival minus the
	// waits. The timers read the clock only on the waiter branch, so the
	// last arriver (whose "wait" is the commit work itself) records nothing.
	timed := p.sampled && e.met != nil
	var start time.Time
	var waitNS int64
	if timed {
		start = time.Now()
	}

	// Section 1 — fault-retry promotion (fault runs; drops deferred) and
	// traffic-generation polling (per-node RNG streams; creation deferred).
	if e.live != nil {
		e.promoteRetriesRange(sh)
	}
	if !e.sourcesStopped {
		e.pollRange(sh)
	}
	// B1: commit the deferred retry drops, then create the polled messages,
	// both in node order — the serial engine's fault-phase/generate order.
	gen++
	if p.bar.arrive() {
		e.commitEvents(p)
		e.commitGenerate(p)
		p.bar.release(gen)
	} else {
		waitNS += e.timedWait(p, gen, timed, 0)
	}

	// Section 2 — injection (pure own-node work; drops and throttle traces
	// deferred) with the trigger pre-scan for the allocation split fused
	// into the same node walk.
	e.injectRange(p, sh)
	// B2: commit the injection-phase events (they precede any allocation
	// event in the serial stream) and resolve the global allocation cut.
	gen++
	if p.bar.arrive() {
		e.commitEvents(p)
		cut := int32(n)
		if p.alwaysSerialAlloc {
			cut = 0
		} else {
			for i := range p.shards {
				if c := p.shards[i].allocCut; c < cut {
					cut = c
				}
			}
		}
		p.allocCut = cut
		p.bar.release(gen)
	} else {
		waitNS += e.timedWait(p, gen, timed, 1)
	}

	// Section 3 — allocation and switch allocation. Allocation of disjoint
	// nodes commutes (own-node writes; the downstream empty words are
	// move-phase state), and switch allocation reads only its own nodes'
	// routes/status plus downstream full words, none of which allocation
	// writes — so on trigger-free cycles the whole section is barrier-free.
	// On trigger cycles the prefix below the cut allocates in parallel and
	// the suffix — where recoveries and fault kills fire, with their
	// cross-shard teardowns — runs the exact serial code at the extra
	// barrier's arrival.
	cut := int(p.allocCut)
	lo, hi := sh.lo, sh.hi
	if cut < n {
		if ahi := min(hi, cut); lo < ahi {
			e.allocRange(lo, ahi)
		}
		gen++
		if p.bar.arrive() {
			e.allocRange(cut, n)
			p.bar.release(gen)
		} else {
			p.bar.wait(gen)
		}
	} else {
		e.allocRange(lo, hi)
	}
	sh.moves = e.switchRange(lo, hi, sh.reqsFlat, sh.moves[:0])
	// B3: movement writes the empty/full words the switch phase reads.
	gen++
	if p.bar.arrive() {
		p.bar.release(gen)
	} else {
		waitNS += e.timedWait(p, gen, timed, 2)
	}

	// Section 4 — movement, fused: pop own moves (cross-shard pushes into
	// the rings, published once per ring), then drain the rings addressed
	// to this shard. Pushes commute (at most one per buffer per cycle, all
	// effects consumer-local), so no barrier separates the passes; the
	// cycle-stamp check makes each consumer wait exactly for its producers.
	e.moveSourceRange(p, sh, id)
	e.moveDrainRings(p, sh, id)
	// B4: commit the deferred injection-head and delivery events in shard
	// (= serial move) order.
	gen++
	if timed {
		// Written before the B4 arrival, so the atomic arrival counter (and
		// the generation release behind it) orders this store before the
		// coordinator's post-cycle read.
		sh.busyNS = time.Since(start).Nanoseconds() - waitNS
	}
	if p.bar.arrive() {
		e.commitEvents(p)
		p.bar.release(gen)
	} else {
		e.timedWait(p, gen, timed, 3)
	}

	sh.localGen = gen
}

// timedWait waits out barrier generation gen; when timing is on it also
// records the wait into the sync-profile histogram of barrier b and returns
// the nanoseconds waited (0 untimed).
func (e *Engine) timedWait(p *parRuntime, gen uint32, timed bool, b int) int64 {
	if !timed {
		p.bar.wait(gen)
		return 0
	}
	t := time.Now()
	p.bar.wait(gen)
	w := time.Since(t).Nanoseconds()
	e.met.barrierWait[b].Observe(float64(w))
	return w
}

// cycleInline is the single-P form of cycleShard: the same four fused
// sections with the same commit points, run over every shard in ascending
// order by the one goroutine there is. Each section is an interleaving the
// barrier schedule already admits (shard work within a section commutes;
// the commits sit exactly where the barrier arrivals run them), so the
// results are bit-identical to both the worker pool and the serial engine.
// Within section 3 the switch pass runs per shard right after its
// allocation pass — legal because switch allocation never reads what
// allocation writes (see cycleShard) — which keeps the shard's node arena
// hot across the two walks. The barrier generation counter still ticks
// once per fused barrier so the synchronisation budget stays observable.
func (e *Engine) cycleInline(p *parRuntime) {
	n := len(e.nodes)
	shards := p.shards

	// Section 1 + B1.
	for i := range shards {
		sh := &shards[i]
		if e.live != nil {
			e.promoteRetriesRange(sh)
		}
		if !e.sourcesStopped {
			e.pollRange(sh)
		}
	}
	e.commitEvents(p)
	e.commitGenerate(p)
	p.bar.gen.Add(1)

	// Section 2 + B2.
	for i := range shards {
		e.injectRange(p, &shards[i])
	}
	e.commitEvents(p)
	cut := int32(n)
	if p.alwaysSerialAlloc {
		cut = 0
	} else {
		for i := range shards {
			if c := shards[i].allocCut; c < cut {
				cut = c
			}
		}
	}
	p.allocCut = cut
	p.bar.gen.Add(1)

	// Section 3 (+ B2a on trigger cycles) + B3.
	if int(cut) < n {
		for i := range shards {
			sh := &shards[i]
			if ahi := min(sh.hi, int(cut)); sh.lo < ahi {
				e.allocRange(sh.lo, ahi)
			}
		}
		e.allocRange(int(cut), n)
		p.bar.gen.Add(1)
		for i := range shards {
			sh := &shards[i]
			sh.moves = e.switchRange(sh.lo, sh.hi, sh.reqsFlat, sh.moves[:0])
		}
	} else {
		for i := range shards {
			sh := &shards[i]
			e.allocRange(sh.lo, sh.hi)
			sh.moves = e.switchRange(sh.lo, sh.hi, sh.reqsFlat, sh.moves[:0])
		}
	}
	p.bar.gen.Add(1)

	// Section 4 + B4. Every ring is published before any is drained, so the
	// drain pass never waits.
	for i := range shards {
		e.moveSourceRange(p, &shards[i], i)
	}
	for i := range shards {
		e.moveDrainRings(p, &shards[i], i)
	}
	e.commitEvents(p)
	p.bar.gen.Add(1)
}

// promoteRetriesRange is the shard-parallel fault-retry promotion walk:
// identical to promoteRetries over the shard's own nodes, except that
// drops (globally-ordered accounting) are deferred to the next commit.
func (e *Engine) promoteRetriesRange(sh *parShard) {
	for i := sh.lo; i < sh.hi; i++ {
		nd := &e.nodes[i]
		if len(nd.retry) == 0 {
			continue
		}
		ready := sh.retryScratch[:0]
		rest := nd.retry[:0]
		for _, pr := range nd.retry {
			switch {
			case pr.readyAt > e.now:
				rest = append(rest, pr)
			case !e.live.RouterAlive(pr.msg.Dst):
				sh.events = append(sh.events, deferredEvent{
					kind: evDrop, reason: message.DropUnreachable, node: nd.id, m: pr.msg,
				})
			default:
				ready = append(ready, pr.msg)
			}
		}
		nd.retry = rest
		nd.queue.PushFront(ready)
		sh.retryScratch = ready[:0]
	}
}

// pollRange is the parallel half of phaseGenerate: drain each source's due
// events into the shard's buffer. Message creation waits for the commit —
// ids, the pool and the collector are global.
func (e *Engine) pollRange(sh *parShard) {
	for i := sh.lo; i < sh.hi; i++ {
		nd := &e.nodes[i]
		if e.now < nd.nextGen {
			continue // Poll is guaranteed a no-op before nextGen
		}
		if e.live != nil && !e.live.RouterAlive(nd.id) {
			continue // a dead router generates nothing
		}
		sh.genScratch = nd.src.Poll(e.now, sh.genScratch[:0])
		nd.nextGen = nd.src.NextAt()
		for _, g := range sh.genScratch {
			sh.gen = append(sh.gen, genRec{node: nd.id, dst: g.Dst, length: int32(g.Length)})
		}
	}
}

// commitGenerate creates the polled messages in node order — bit-identical
// to phaseGenerate's serial loop.
func (e *Engine) commitGenerate(p *parRuntime) {
	for si := range p.shards {
		sh := &p.shards[si]
		for _, g := range sh.gen {
			nd := &e.nodes[g.node]
			m := e.newMessage(nd.id, g.dst, int(g.length))
			m.Measured = e.col.OnGenerated(e.now, int(nd.id))
			nd.queue.Push(m)
			e.emit(trace.KindGenerated, m, nd.id)
		}
		sh.gen = sh.gen[:0]
	}
}

// injectRange is the parallel variant of phaseInject over the shard's
// nodes, with the trigger pre-scan for the allocation split fused into the
// same walk. The injection body mirrors the serial one exactly, except
// that drops and throttle traces are deferred (their accounting is
// global); the queue and recovery-list pops themselves happen inline, so
// the injection decisions are identical.
//
// The fused pre-scan records in sh.allocCut the first own node at which
// the upcoming allocation phase could fire a recovery or a fault kill (or
// len(nodes) when none can). Both predicates are exact one-cycle-ahead
// predictions, and both are per-node over state that later nodes'
// injections cannot touch — which is what makes evaluating node i right
// after node i's own injections equal to a separate post-injection sweep:
//
//   - Recovery fires only where a blockage counter reaches Threshold, and
//     counters grow by at most one per cycle, so only nodes with a counter
//     already at Threshold-1 — watermark-tracked by BlockTracker.Hot —
//     qualify. A hot counter implies a still-blocked header, so nodes with
//     no occupied VC skip the check.
//
//   - A fault kill fires only for an unrouted header whose candidate set is
//     empty. Candidate sets depend solely on (node, destination, liveness),
//     and the liveness mask is stable for the whole cycle, so scanning the
//     post-injection unrouted headers (their set only shrinks during
//     allocation; teardowns run after the cut) is exact.
//
// A node below the cut therefore allocates exactly as it would serially;
// conservative-only flagging (a flagged node need not actually fire) costs
// serial suffix width, never correctness.
func (e *Engine) injectRange(p *parRuntime, sh *parShard) {
	faults := e.live != nil
	scan := p.watermarked || faults
	cut := int32(len(e.nodes))
	for i := sh.lo; i < sh.hi; i++ {
		nd := &e.nodes[i]
		alive := true
		if faults {
			if !e.live.RouterAlive(nd.id) {
				alive = false // a dead router injects nothing
			} else {
				for len(nd.recovery) > 0 && nd.recovery[0].readyAt <= e.now &&
					!e.live.RouterAlive(nd.recovery[0].msg.Dst) {
					m := nd.recovery[0].msg
					nd.recovery[0] = pendingRecovery{}
					nd.recovery = nd.recovery[1:]
					sh.events = append(sh.events, deferredEvent{
						kind: evDrop, reason: message.DropUnreachable, node: nd.id, m: m,
					})
				}
				for !nd.queue.Empty() && !e.live.RouterAlive(nd.queue.Front().Dst) {
					sh.events = append(sh.events, deferredEvent{
						kind: evDrop, reason: message.DropUnreachable, node: nd.id,
						m: nd.queue.PopFront(),
					})
				}
			}
		}
		if alive && (nd.limObs != nil || !nd.queue.Empty() || len(nd.recovery) > 0) {
			e.injectNode(nd, sh)
		}
		// Pre-scan this node now that its injections are settled.
		if scan {
			if (p.watermarked && nd.occVCs > 0 && nd.blocked.Hot() > 0) ||
				(faults && (nd.occVCs > 0 || nd.busyInj > 0) && e.deadEnd(nd)) {
				cut = int32(i)
				scan = false
			}
		}
	}
	sh.allocCut = cut
}

// injectNode runs one node's injection-limitation decisions and channel
// claims — the per-node body of the serial injection phase, with drop and
// throttle traces deferred to the shard's event buffer.
func (e *Engine) injectNode(nd *node, sh *parShard) {
	if nd.limObs != nil {
		nd.limObs.Tick(nd.view, e.now)
	}
	for c := range nd.inj {
		ic := &nd.inj[c]
		if ic.msg != nil {
			continue
		}
		if len(nd.recovery) > 0 && nd.recovery[0].readyAt <= e.now {
			ic.msg = nd.recovery[0].msg
			nd.recovery[0] = pendingRecovery{}
			nd.recovery = nd.recovery[1:]
			ic.msg.State = message.StateInjecting
			ic.route = routeInfo{}
			ic.left = int32(ic.msg.Length)
			ic.len = ic.left
			ic.dst = ic.msg.Dst
			nd.busyInj++
			if e.spans != nil {
				e.spanClaim(ic.msg, nd.id)
			}
			continue
		}
		if nd.queue.Empty() {
			continue
		}
		m := nd.queue.Front()
		// Rogue bypass, mirroring the serial injection gate exactly.
		if !nd.rogue && !nd.limiter.Allow(nd.view, m.Dst) {
			// Deny metrics update inline: the counters are commutative
			// atomics, so the totals are worker-order-independent.
			if e.met != nil {
				e.noteDeny(nd, m.Dst)
			}
			// Span deny counts are inline too: the record is exclusive to
			// this shard for the whole injection section (the message sits
			// in an own-node source queue).
			if e.spans != nil {
				e.spanDeny(nd, m)
			}
			if e.listener != nil {
				sh.events = append(sh.events, deferredEvent{
					kind: evThrottle, node: nd.id, m: m,
				})
			}
			break // FIFO: do not bypass a throttled queue head
		}
		if e.met != nil {
			e.met.admitted.Inc()
		}
		nd.queue.PopFront()
		ic.msg = m
		ic.route = routeInfo{}
		ic.left = int32(m.Length)
		ic.len = ic.left
		ic.dst = m.Dst
		nd.busyInj++
		m.State = message.StateInjecting
		if e.spans != nil {
			e.spanClaim(m, nd.id)
		}
	}
}

// deadEnd reports whether any header that allocation will route at nd this
// cycle has an empty candidate set (fault runs only: minimal routing
// otherwise always yields candidates). Ejection-bound headers never kill —
// the destination router's liveness was already checked at injection.
func (e *Engine) deadEnd(nd *node) bool {
	vcs := e.cfg.VCs
	vcsMask := uint32(1)<<uint(vcs) - 1
	if nd.occVCs > 0 {
		for p := 0; p < e.numPhys; p++ {
			w := ^nd.inEmpty[p] &^ nd.routed[p] & vcsMask
			for w != 0 {
				v := bits.TrailingZeros32(w)
				w &= w - 1
				ivc := &nd.in[p*vcs+v]
				if ivc.buf.Empty() || ivc.dst == nd.id {
					continue
				}
				if len(e.candidates(nd, ivc.dst)) == 0 {
					return true
				}
			}
		}
	}
	if nd.busyInj > 0 {
		for c := range nd.inj {
			ic := &nd.inj[c]
			if ic.msg == nil || ic.route.valid || ic.left < ic.len || ic.dst == nd.id {
				continue
			}
			if len(e.candidates(nd, ic.dst)) == 0 {
				return true
			}
		}
	}
	return false
}

// moveSourceRange is pass 1 of the fused move phase over the shard's own
// moves: identical to phaseMove except that pushes into another shard's
// nodes are recorded into the per-destination rings instead of applied,
// and delivery/injection accounting is deferred. Pushes staying inside the
// shard touch only own-node state and commute with the shard's remaining
// pops (a push was planned against start-of-cycle credit, so it fits
// whether the destination buffer's own pop has run yet or not), so they
// apply directly in serial phaseMove's fused single-pass style — no
// round-trip through a staging buffer. Each ring is published exactly
// once, after the walk, so the destination shard sees the complete batch
// or nothing.
func (e *Engine) moveSourceRange(p *parRuntime, sh *parShard, id int) {
	vcs := e.cfg.VCs
	nVC := e.numPhys * vcs
	now := e.now
	portTab := e.portTab
	vcBit := e.vcBit
	vcOf := e.vcOf
	emptyArena := e.emptyArena
	fullArena := e.fullArena
	nShards := len(p.shards)
	for _, mv := range sh.moves {
		nd := &e.nodes[mv.node]
		var flit message.Flit

		if a := int(mv.agent); a < nVC {
			ivc := &nd.in[a]
			flit = ivc.buf.Pop()
			pp := portTab[a]
			bit := vcBit[a]
			nd.inFull[pp] &^= bit
			if ivc.buf.Empty() {
				nd.inEmpty[pp] |= bit
				nd.occVCs--
			}
			if flit.Tail {
				nd.routes[a] = routeInfo{}
				nd.routed[pp] &^= bit
				nd.blocked.Progress(a)
				e.removePathLoc(flit.Msg, pathLoc{
					Node: nd.id, Port: topology.Port(pp), VC: vcOf[a],
				})
			}
		} else {
			ic := &nd.inj[a-nVC]
			m := ic.msg
			seq := ic.len - ic.left
			flit = message.Flit{Msg: m, Seq: seq, Head: seq == 0, Tail: ic.left == 1}
			ic.left--
			if flit.Head && m.InjectTime < 0 {
				m.InjectTime = now
				sh.events = append(sh.events, deferredEvent{
					kind: evInjected, node: nd.id, m: m,
				})
				if e.spans != nil {
					e.spanInject(m)
				}
			}
			if flit.Tail {
				m.FlitsSent = int(ic.len)
				ic.msg = nil
				ic.route = routeInfo{}
				nd.busyInj--
				m.State = message.StateInNetwork
			}
		}

		m := flit.Msg
		if mv.eject {
			ej := &nd.ej[mv.ejCh]
			if !flit.Tail {
				ej.pending++
				continue
			}
			m.FlitsEjected += int(ej.pending) + 1
			ej.pending = 0
			ej.msg = nil
			m.State = message.StateDelivered
			m.DeliverTime = now
			m.Path = m.Path[:0]
			sh.events = append(sh.events, deferredEvent{
				kind: evDelivered, node: nd.id, m: m,
			})
			continue
		}

		nd.lastTx[int(mv.outPort)*vcs+int(mv.outVC)] = now
		bit := uint32(1) << uint(mv.outVC)
		if flit.Tail && nd.out[mv.outPort].VCs[mv.outVC].ReleaseIfOwner(m) {
			nd.freeMask[mv.outPort] |= bit
		}
		nb := nd.nbr[mv.outPort]
		if d := p.shardOf[nb.id]; int(d) != id {
			r := &p.rings[id*nShards+int(d)]
			r.buf[sh.ringN[d]] = outFlit{
				dvc:  nd.down[int(mv.outPort)*vcs+int(mv.outVC)],
				nbr:  nb,
				word: nd.downWord[mv.outPort],
				bit:  bit,
				flit: flit,
			}
			sh.ringN[d]++
			continue
		}
		dvc := nd.down[int(mv.outPort)*vcs+int(mv.outVC)]
		if dvc.buf.Empty() {
			nb.occVCs++
			emptyArena[nd.downWord[mv.outPort]] &^= bit
		}
		if flit.Head {
			dvc.owner = m
			dvc.dst = m.Dst
			if e.spans != nil {
				e.spanHopArrive(m, nb.id)
			}
		}
		dvc.buf.Push(flit)
		if dvc.buf.Full() {
			fullArena[nd.downWord[mv.outPort]] |= bit
		}
	}
	// Publish every outbound ring — including empty ones, so consumers
	// never wait on a quiet producer. One release-store per ring per cycle.
	stamp := (uint64(uint32(now)) + 1) << 32
	met := e.met != nil
	for _, d := range sh.outDsts {
		r := &p.rings[id*nShards+int(d)]
		cnt := sh.ringN[d]
		r.pub.Store(stamp | uint64(uint32(cnt)))
		sh.ringN[d] = 0
		if met {
			sh.ringPushes += int64(cnt)
			if p.sampled && cnt > sh.ringMax {
				sh.ringMax = cnt
			}
		}
	}
}

// moveDrainRings is pass 2 of the fused move phase: apply every inbound
// ring's batch as it is published. Application order across source shards
// is irrelevant — each buffer receives at most one push per cycle and all
// updates are consumer-local — so rings drain opportunistically rather
// than in source order.
func (e *Engine) moveDrainRings(p *parRuntime, sh *parShard, id int) {
	nShards := len(p.shards)
	stampHi := uint64(uint32(e.now)) + 1
	pending := len(sh.inSrcs)
	for spins := int32(0); pending > 0; {
		progressed := false
		for _, s := range sh.inSrcs {
			r := &p.rings[int(s)*nShards+id]
			if r.seen>>32 == stampHi {
				continue // already drained this cycle
			}
			v := r.pub.Load()
			if v>>32 != stampHi {
				continue // producer not done yet
			}
			e.applyPushes(r.buf[:uint32(v)])
			r.seen = v
			pending--
			progressed = true
		}
		if pending > 0 && !progressed {
			if spins++; spins > p.bar.spin {
				runtime.Gosched()
			}
		}
	}
}

// applyPushes applies one batch of planned pushes to this shard's own
// nodes. All pops already happened or commute with these pushes: a push
// was planned against start-of-cycle credit, so it fits whether the
// destination buffer's own pop (if any) has run or not, and the
// empty/full/active-set updates reach the same final state either way.
func (e *Engine) applyPushes(bucket []outFlit) {
	emptyArena := e.emptyArena
	fullArena := e.fullArena
	for i := range bucket {
		rec := &bucket[i]
		dvc := rec.dvc
		if dvc.buf.Empty() {
			rec.nbr.occVCs++
			emptyArena[rec.word] &^= rec.bit
		}
		if rec.flit.Head {
			dvc.owner = rec.flit.Msg
			dvc.dst = rec.flit.Msg.Dst
			if e.spans != nil {
				// The hop-append is exclusive: this consumer owns the
				// receiving node, the head arrives at most once per cycle,
				// and the producer's same-cycle record writes happened
				// before the ring publish this drain synchronized with.
				e.spanHopArrive(rec.flit.Msg, rec.nbr.id)
			}
		}
		dvc.buf.Push(rec.flit)
		if dvc.buf.Full() {
			fullArena[rec.word] |= rec.bit
		}
	}
}

// commitEvents applies the deferred side effects of the last parallel
// section in shard order — equal to the serial engine's node (fault and
// inject phases) or move (move phase) order.
func (e *Engine) commitEvents(p *parRuntime) {
	for si := range p.shards {
		sh := &p.shards[si]
		for i := range sh.events {
			ev := &sh.events[i]
			switch ev.kind {
			case evDrop:
				e.drop(ev.m, ev.node, ev.reason)
			case evThrottle:
				e.emit(trace.KindThrottled, ev.m, ev.node)
			case evInjected:
				e.col.OnInjected(int(ev.node), e.now)
				e.emit(trace.KindInjected, ev.m, ev.node)
			case evDelivered:
				e.delivered++
				e.col.OnDelivered(e.now, ev.m.GenTime, ev.m.InjectTime, ev.m.Length, ev.m.Measured, int(ev.m.Src))
				e.emit(trace.KindDelivered, ev.m, ev.node)
				if e.spans != nil {
					e.spanDeliver(ev.m)
				}
				e.releaseMessage(ev.m)
			}
			ev.m = nil
		}
		sh.events = sh.events[:0]
	}
}
