package sim

// Deterministic sharded parallel execution of the cycle engine.
//
// The node arena is partitioned into Config.Workers contiguous shards, one
// goroutine each, and every engine phase runs shard-parallel with barriers
// in between. Results are bit-identical to the serial path for any worker
// count. The scheme rests on three rules:
//
//  1. Own-node writes only. Inside a parallel section a shard writes nothing
//     but the state of its own nodes. The one phase that naturally crosses
//     shards — flit movement into a neighbour's input buffer — is split into
//     two passes around a barrier: the source pass pops flits and records
//     planned pushes into per-(source,destination)-shard buckets, the push
//     pass applies each destination node's pushes on the destination node's
//     own shard. A buffer sees at most one pop and one push per cycle (one
//     upstream sender, one grant per output port), and pop-then-push leaves
//     the ring, the empty/full status bits and the active-set counters in
//     exactly the state any serial interleaving would.
//
//  2. Phase-stable cross-shard reads. The only remote state a parallel
//     section reads — the downstream empty words during allocation, the
//     downstream full words during switch allocation, the liveness mask —
//     is written by no one during that section, so no double-buffering is
//     needed: the words *are* the previous phase's values. (An earlier
//     design copied the credit words per phase; the phase split already
//     guarantees stability, so the copy would buy nothing.)
//
//  3. Serial commits in node order. Everything globally ordered — message
//     id assignment and pooling, collector hooks, trace emission, drop
//     accounting — is deferred into per-shard buffers during the parallel
//     sections and committed by the coordinator between barriers, walking
//     shards in order. Shards are contiguous ascending node ranges, so the
//     commit order equals the serial engine's node/move order and the
//     event stream, the RNG-independent counters and the message pool all
//     evolve identically to serial. Per-node RNG streams (splitSeed) make
//     generation itself partition-independent.
//
// Deadlock recovery and fault kills tear state out of arbitrary nodes, so
// they never run inside a parallel section. Fault runs (e.live != nil)
// always allocate serially; fault-free runs with detection enabled fall
// back to a serial allocation phase exactly on the cycles where a recovery
// could fire — some blockage counter stands at Threshold-1 (counters grow
// by at most one per cycle, so this is a precise, conservative gate; see
// deadlock.BlockTracker.SetWatermark). Everything else in those cycles
// still runs parallel.

import (
	"runtime"
	"sync/atomic"
	"time"

	"wormnet/internal/message"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
	"wormnet/internal/traffic"
)

// genRec is one deferred traffic-generation event: the message is created
// (id assignment, pooling, collector hook) at commit time, in node order.
type genRec struct {
	node   topology.NodeID
	dst    topology.NodeID
	length int32
}

// deferredEvent is one globally-ordered side effect recorded during a
// parallel section and committed serially.
type deferredEvent struct {
	kind   uint8
	reason message.DropReason
	node   topology.NodeID
	m      *message.Message
}

const (
	evDrop      uint8 = iota // unreachable-destination drop (inject phase)
	evThrottle               // limiter denial (inject phase, listener only)
	evInjected               // head flit entered the network (move phase)
	evDelivered              // tail flit consumed at destination (move phase)
)

// outFlit is one planned cross-shard flit push: everything the destination
// shard needs to apply it without touching the source node.
type outFlit struct {
	dvc  *inVC
	nbr  *node
	word int32
	bit  uint32
	flit message.Flit
}

// parShard is one worker's slice of the network plus its private scratch
// and deferral buffers.
type parShard struct {
	lo, hi   int    // node range [lo, hi)
	localGen uint32 // barriers passed so far

	genScratch []traffic.Generated
	gen        []genRec
	events     []deferredEvent
	moves      []move
	reqsFlat   []int32
	out        [][]outFlit // planned pushes, indexed by destination shard
}

// phaseBarrier is a reusable centralized barrier. Waiters spin briefly and
// then yield, so it parks gracefully when the machine has fewer cores than
// the engine has shards.
type phaseBarrier struct {
	n     int32
	spin  int
	count atomic.Int32
	gen   atomic.Uint32
}

// await blocks until all n participants have arrived, then returns the new
// barrier generation. localGen is the caller's count of barriers passed.
// gen can never advance past localGen+1 while this caller still waits (the
// next barrier needs this caller's arrival to complete), so the equality
// spin is safe, including across uint32 wraparound.
func (b *phaseBarrier) await(localGen uint32) uint32 {
	target := localGen + 1
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Store(target)
		return target
	}
	for i := 0; b.gen.Load() != target; i++ {
		if i >= b.spin {
			runtime.Gosched()
		}
	}
	return target
}

// parRuntime is the parallel mode of one engine: the shard partition and
// the worker pool. It exists only when Config.Workers > 1 resolves to at
// least two shards.
type parRuntime struct {
	shards  []parShard
	shardOf []int32 // node -> shard index
	bar     phaseBarrier
	wake    []chan struct{} // one per non-coordinator worker, buffered

	// serialAlloc, decided by the coordinator each cycle before the
	// allocation barrier, routes the allocation phase through the exact
	// serial code when a recovery or fault kill could fire.
	serialAlloc bool
	// alwaysSerialAlloc forces that fallback for configurations whose
	// detection threshold is too low for the watermark gate (< 2).
	alwaysSerialAlloc bool
}

// newParRuntime partitions the engine into at most workers shards and
// starts the worker goroutines. It returns nil when the partition would
// leave fewer than two shards (the serial path is then used).
func newParRuntime(e *Engine, workers int) *parRuntime {
	n := len(e.nodes)
	s := workers
	if s > n {
		s = n
	}
	if s < 2 {
		return nil
	}
	p := &parRuntime{
		shards:  make([]parShard, s),
		shardOf: make([]int32, n),
	}
	p.bar.n = int32(s)
	if runtime.GOMAXPROCS(0) > 1 {
		p.bar.spin = 200
	}
	numOut := e.numPhys + e.cfg.EjChannels
	nAgents := e.agentCount()
	for i := range p.shards {
		sh := &p.shards[i]
		sh.lo = i * n / s
		sh.hi = (i + 1) * n / s
		sh.reqsFlat = make([]int32, numOut*nAgents)
		sh.out = make([][]outFlit, s)
		for j := sh.lo; j < sh.hi; j++ {
			p.shardOf[j] = int32(i)
		}
	}
	p.alwaysSerialAlloc = e.det.Enabled() && e.det.Threshold < 2
	if e.det.Enabled() && e.det.Threshold >= 2 {
		for i := range e.nodes {
			e.nodes[i].blocked.SetWatermark(e.det.Threshold - 1)
		}
	}
	p.wake = make([]chan struct{}, s-1)
	for i := range p.wake {
		p.wake[i] = make(chan struct{}, 1)
		go e.parWorker(p, i+1)
	}
	return p
}

// Close releases the engine's worker goroutines (a no-op on serial
// engines). The engine stays usable afterwards: the state between cycles is
// identical to serial, so further Steps simply run the serial path.
func (e *Engine) Close() {
	if e.par == nil {
		return
	}
	for _, ch := range e.par.wake {
		close(ch)
	}
	e.par = nil
}

// parWorker is the body of one non-coordinator worker: run the shard's
// slice of each cycle whenever woken, exit when the engine closes.
// The runtime is passed in rather than read from e.par, which New has not
// assigned yet when the workers start.
func (e *Engine) parWorker(p *parRuntime, id int) {
	for range p.wake[id-1] {
		e.cycleShard(p, id)
	}
}

// stepParallel is the parallel Step: the fault phase (rare, inherently
// global) runs serially up front, then all shards — the caller acting as
// shard 0 — execute the cycle in lockstep. The final barrier inside
// cycleShard doubles as the completion signal.
func (e *Engine) stepParallel() {
	sampled := e.metricsSampled()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	if e.live != nil {
		e.phaseFaults()
	}
	p := e.par
	for _, ch := range p.wake {
		ch <- struct{}{}
	}
	e.cycleShard(p, 0)
	if e.met != nil {
		// The shards' move plans survive until next cycle's reslice, so the
		// coordinator can total them here, after all workers are done.
		var flits int64
		for i := range p.shards {
			flits += int64(len(p.shards[i].moves))
		}
		e.met.flits.Add(flits)
		if sampled {
			// The lockstep cycle has no serial per-phase boundaries to time,
			// so parallel runs record whole-cycle wall time only.
			e.met.cycleTime.Observe(float64(time.Since(t0).Nanoseconds()))
			e.met.flitsSampled.SetInt(flits)
			e.sampleMetrics()
		}
	}
	e.now++
}

// cycleShard runs one shard's slice of a cycle. Every shard executes the
// same barrier sequence; the coordinator (id 0) additionally performs the
// serial commits between barriers while the other shards wait.
func (e *Engine) cycleShard(p *parRuntime, id int) {
	sh := &p.shards[id]
	gen := sh.localGen

	// Generation: poll the per-node sources in parallel (per-node RNG
	// streams), create the messages serially in node order.
	if !e.sourcesStopped {
		e.pollRange(sh)
	}
	gen = p.bar.await(gen)
	if id == 0 {
		e.commitGenerate(p)
	}
	gen = p.bar.await(gen)

	// Injection: pure own-node work; unreachable-destination drops and
	// throttle traces are deferred.
	e.injectRange(sh)
	gen = p.bar.await(gen)
	if id == 0 {
		e.commitEvents(p)
		p.serialAlloc = e.needSerialAlloc()
		if p.serialAlloc {
			e.phaseAllocate()
		}
	}
	gen = p.bar.await(gen)

	// Allocation (unless the serial fallback just ran) and switch
	// allocation. Fusing them into one section is safe: switch reads only
	// its own nodes' routes/status plus downstream full words, none of
	// which allocation writes.
	if !p.serialAlloc {
		e.allocRange(sh.lo, sh.hi)
	}
	sh.moves = e.switchRange(sh.lo, sh.hi, sh.reqsFlat, sh.moves[:0])
	gen = p.bar.await(gen)

	// Movement, pass 1: pops, ejection, source-side bookkeeping; forward
	// flits land in per-destination-shard buckets. Deliveries and
	// injection-head accounting are deferred and committed in shard order,
	// which equals the serial engine's move order.
	e.moveSourceRange(p, sh)
	gen = p.bar.await(gen)
	if id == 0 {
		e.commitEvents(p)
	}
	gen = p.bar.await(gen)

	// Movement, pass 2: each shard applies the pushes addressed to its own
	// nodes, walking source shards in order.
	e.movePushRange(p, id)
	gen = p.bar.await(gen)

	sh.localGen = gen
}

// pollRange is the parallel half of phaseGenerate: drain each source's due
// events into the shard's buffer. Message creation waits for the commit —
// ids, the pool and the collector are global.
func (e *Engine) pollRange(sh *parShard) {
	for i := sh.lo; i < sh.hi; i++ {
		nd := &e.nodes[i]
		if e.now < nd.nextGen {
			continue // Poll is guaranteed a no-op before nextGen
		}
		if e.live != nil && !e.live.RouterAlive(nd.id) {
			continue // a dead router generates nothing
		}
		sh.genScratch = nd.src.Poll(e.now, sh.genScratch[:0])
		nd.nextGen = nd.src.NextAt()
		for _, g := range sh.genScratch {
			sh.gen = append(sh.gen, genRec{node: nd.id, dst: g.Dst, length: int32(g.Length)})
		}
	}
}

// commitGenerate creates the polled messages in node order — bit-identical
// to phaseGenerate's serial loop.
func (e *Engine) commitGenerate(p *parRuntime) {
	for si := range p.shards {
		sh := &p.shards[si]
		for _, g := range sh.gen {
			nd := &e.nodes[g.node]
			m := e.newMessage(nd.id, g.dst, int(g.length))
			m.Measured = e.col.OnGenerated(e.now)
			nd.queue.Push(m)
			e.emit(trace.KindGenerated, m, nd.id)
		}
		sh.gen = sh.gen[:0]
	}
}

// injectRange is the parallel variant of phaseInject over the shard's
// nodes. It mirrors the serial body exactly, except that drops and
// throttle traces are deferred (their accounting is global); the queue and
// recovery-list pops themselves happen inline, so the injection decisions
// are identical.
func (e *Engine) injectRange(sh *parShard) {
	for i := sh.lo; i < sh.hi; i++ {
		nd := &e.nodes[i]
		if e.live != nil {
			if !e.live.RouterAlive(nd.id) {
				continue // a dead router injects nothing
			}
			for len(nd.recovery) > 0 && nd.recovery[0].readyAt <= e.now &&
				!e.live.RouterAlive(nd.recovery[0].msg.Dst) {
				m := nd.recovery[0].msg
				nd.recovery[0] = pendingRecovery{}
				nd.recovery = nd.recovery[1:]
				sh.events = append(sh.events, deferredEvent{
					kind: evDrop, reason: message.DropUnreachable, node: nd.id, m: m,
				})
			}
			for !nd.queue.Empty() && !e.live.RouterAlive(nd.queue.Front().Dst) {
				sh.events = append(sh.events, deferredEvent{
					kind: evDrop, reason: message.DropUnreachable, node: nd.id,
					m: nd.queue.PopFront(),
				})
			}
		}
		if nd.limObs == nil && nd.queue.Empty() && len(nd.recovery) == 0 {
			continue
		}
		if nd.limObs != nil {
			nd.limObs.Tick(nd.view, e.now)
		}
		for c := range nd.inj {
			ic := &nd.inj[c]
			if ic.msg != nil {
				continue
			}
			if len(nd.recovery) > 0 && nd.recovery[0].readyAt <= e.now {
				ic.msg = nd.recovery[0].msg
				nd.recovery[0] = pendingRecovery{}
				nd.recovery = nd.recovery[1:]
				ic.msg.State = message.StateInjecting
				ic.route = routeInfo{}
				ic.left = int32(ic.msg.Length)
				ic.len = ic.left
				ic.dst = ic.msg.Dst
				nd.busyInj++
				continue
			}
			if nd.queue.Empty() {
				continue
			}
			m := nd.queue.Front()
			if !nd.limiter.Allow(nd.view, m.Dst) {
				// Deny metrics update inline: the counters are commutative
				// atomics, so the totals are worker-order-independent.
				if e.met != nil {
					e.noteDeny(nd, m.Dst)
				}
				if e.listener != nil {
					sh.events = append(sh.events, deferredEvent{
						kind: evThrottle, node: nd.id, m: m,
					})
				}
				break // FIFO: do not bypass a throttled queue head
			}
			if e.met != nil {
				e.met.admitted.Inc()
			}
			nd.queue.PopFront()
			ic.msg = m
			ic.route = routeInfo{}
			ic.left = int32(m.Length)
			ic.len = ic.left
			ic.dst = m.Dst
			nd.busyInj++
			m.State = message.StateInjecting
		}
	}
}

// needSerialAlloc reports whether the upcoming allocation phase could
// trigger a recovery or a fault kill, both of which mutate state across
// shards and therefore force the exact serial allocation path this cycle.
func (e *Engine) needSerialAlloc() bool {
	if e.live != nil {
		return true // fault kills can fire on any unroutable header
	}
	if !e.det.Enabled() {
		return false
	}
	if e.par.alwaysSerialAlloc {
		return true
	}
	for i := range e.nodes {
		if e.nodes[i].blocked.Hot() > 0 {
			return true
		}
	}
	return false
}

// moveSourceRange is pass 1 of the parallel move phase over the shard's own
// moves: identical to phaseMove except that forward pushes are recorded
// instead of applied, and delivery/injection accounting is deferred.
func (e *Engine) moveSourceRange(p *parRuntime, sh *parShard) {
	vcs := e.cfg.VCs
	nVC := e.numPhys * vcs
	now := e.now
	portTab := e.portTab
	vcBit := e.vcBit
	vcOf := e.vcOf
	for _, mv := range sh.moves {
		nd := &e.nodes[mv.node]
		var flit message.Flit

		if a := int(mv.agent); a < nVC {
			ivc := &nd.in[a]
			flit = ivc.buf.Pop()
			pp := portTab[a]
			bit := vcBit[a]
			nd.inFull[pp] &^= bit
			if ivc.buf.Empty() {
				nd.inEmpty[pp] |= bit
				nd.occVCs--
			}
			if flit.Tail {
				nd.routes[a] = routeInfo{}
				nd.routed[pp] &^= bit
				nd.blocked.Progress(a)
				e.removePathLoc(flit.Msg, pathLoc{
					Node: nd.id, Port: topology.Port(pp), VC: vcOf[a],
				})
			}
		} else {
			ic := &nd.inj[a-nVC]
			m := ic.msg
			seq := ic.len - ic.left
			flit = message.Flit{Msg: m, Seq: seq, Head: seq == 0, Tail: ic.left == 1}
			ic.left--
			if flit.Head && m.InjectTime < 0 {
				m.InjectTime = now
				sh.events = append(sh.events, deferredEvent{
					kind: evInjected, node: nd.id, m: m,
				})
			}
			if flit.Tail {
				m.FlitsSent = int(ic.len)
				ic.msg = nil
				ic.route = routeInfo{}
				nd.busyInj--
				m.State = message.StateInNetwork
			}
		}

		m := flit.Msg
		if mv.eject {
			ej := &nd.ej[mv.ejCh]
			if !flit.Tail {
				ej.pending++
				continue
			}
			m.FlitsEjected += int(ej.pending) + 1
			ej.pending = 0
			ej.msg = nil
			m.State = message.StateDelivered
			m.DeliverTime = now
			m.Path = m.Path[:0]
			sh.events = append(sh.events, deferredEvent{
				kind: evDelivered, node: nd.id, m: m,
			})
			continue
		}

		nd.lastTx[int(mv.outPort)*vcs+int(mv.outVC)] = now
		bit := uint32(1) << uint(mv.outVC)
		if flit.Tail && nd.out[mv.outPort].VCs[mv.outVC].ReleaseIfOwner(m) {
			nd.freeMask[mv.outPort] |= bit
		}
		nb := nd.nbr[mv.outPort]
		d := p.shardOf[nb.id]
		sh.out[d] = append(sh.out[d], outFlit{
			dvc:  nd.down[int(mv.outPort)*vcs+int(mv.outVC)],
			nbr:  nb,
			word: nd.downWord[mv.outPort],
			bit:  bit,
			flit: flit,
		})
	}
}

// movePushRange is pass 2 of the parallel move phase: apply every push
// addressed to shard id's nodes, walking source shards in ascending order.
// All pops already happened, and pop-then-push leaves a buffer in the same
// state as any serial interleaving (the push was planned against
// start-of-cycle credit, so it fits either way).
func (e *Engine) movePushRange(p *parRuntime, id int) {
	emptyArena := e.emptyArena
	fullArena := e.fullArena
	for s := range p.shards {
		bucket := p.shards[s].out[id]
		for i := range bucket {
			rec := &bucket[i]
			dvc := rec.dvc
			if dvc.buf.Empty() {
				rec.nbr.occVCs++
				emptyArena[rec.word] &^= rec.bit
			}
			if rec.flit.Head {
				dvc.owner = rec.flit.Msg
				dvc.dst = rec.flit.Msg.Dst
			}
			dvc.buf.Push(rec.flit)
			if dvc.buf.Full() {
				fullArena[rec.word] |= rec.bit
			}
		}
		p.shards[s].out[id] = bucket[:0]
	}
}

// commitEvents applies the deferred side effects of the last parallel
// section in shard order — equal to the serial engine's node (inject
// phase) or move (move phase) order.
func (e *Engine) commitEvents(p *parRuntime) {
	for si := range p.shards {
		sh := &p.shards[si]
		for i := range sh.events {
			ev := &sh.events[i]
			switch ev.kind {
			case evDrop:
				e.drop(ev.m, ev.node, ev.reason)
			case evThrottle:
				e.emit(trace.KindThrottled, ev.m, ev.node)
			case evInjected:
				e.col.OnInjected(int(ev.node), e.now)
				e.emit(trace.KindInjected, ev.m, ev.node)
			case evDelivered:
				e.delivered++
				e.col.OnDelivered(e.now, ev.m.GenTime, ev.m.InjectTime, ev.m.Length, ev.m.Measured)
				e.emit(trace.KindDelivered, ev.m, ev.node)
				e.releaseMessage(ev.m)
			}
			ev.m = nil
		}
		sh.events = sh.events[:0]
	}
}
