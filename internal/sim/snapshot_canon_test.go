package sim

import (
	"bytes"
	"testing"

	"wormnet/internal/topology"
)

// tinyManualConfig is a 2-ary 2-cube with no autonomous traffic: messages
// enter only via Engine.Inject, which is what the model checker's branching
// layer (and these tests) need for schedule control.
func tinyManualConfig() Config {
	return Config{
		K: 2, N: 2,
		VCs: 1, BufDepth: 1,
		InjChannels: 1, EjChannels: 1,
		Routing: "tfar",
		Pattern: "uniform", MsgLen: 4, Rate: 0,
		DetectionThreshold: 32,
		RecoveryDelay:      8,
		MeasureCycles:      1 << 30,
		Seed:               1,
	}
}

// TestCanonicalHashScheduleIndependent is the dedup soundness test: two
// engines that reach the same logical state through different injection
// orders (hence different message IDs) must hash identically, and a third
// engine in a genuinely different state must not.
func TestCanonicalHashScheduleIndependent(t *testing.T) {
	run := func(order [][3]int) *Engine {
		e, err := New(tinyManualConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range order {
			e.Inject(topology.NodeID(in[0]), topology.NodeID(in[1]), in[2])
		}
		for i := 0; i < 6; i++ {
			e.Step()
		}
		return e
	}
	// Same two messages, swapped Inject order: IDs 0/1 swap, nothing else.
	a := run([][3]int{{0, 3, 4}, {3, 0, 4}})
	b := run([][3]int{{3, 0, 4}, {0, 3, 4}})
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ba, err := sa.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := sb.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatalf("swapped injection order changed canonical bytes (len %d vs %d)", len(ba), len(bb))
	}
	ha, err := sa.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := sb.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatal("swapped injection order changed canonical hash")
	}

	// A different state (one message instead of two) must differ.
	c := run([][3]int{{0, 3, 4}})
	sc, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	hc, err := sc.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Fatal("different states collided in canonical hash")
	}
}

// TestCanonicalBytesDeterministic: encoding the same snapshot twice, and
// encoding a snapshot of an untouched engine again, yields identical bytes
// (no map-iteration or pointer-order nondeterminism in the encoder).
func TestCanonicalBytesDeterministic(t *testing.T) {
	e, err := New(tinyManualConfig())
	if err != nil {
		t.Fatal(err)
	}
	e.Inject(0, 3, 4)
	e.Inject(1, 2, 4)
	e.Inject(3, 0, 4)
	for i := 0; i < 5; i++ {
		e.Step()
	}
	s, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b1, err := s.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("re-encoding the same snapshot changed bytes")
	}
	s2, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b3, err := s2.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatal("re-snapshotting an untouched engine changed canonical bytes")
	}
}

// TestCanonicalHashRestoreRoundTrip: restore is canonical-identity — the
// restored engine's snapshot hashes identically to the original's, and
// stepping both keeps them in lockstep.
func TestCanonicalHashRestoreRoundTrip(t *testing.T) {
	cfg := tinyManualConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Inject(0, 3, 4)
	e.Inject(3, 0, 4)
	e.Inject(1, 2, 4)
	for i := 0; i < 7; i++ {
		e.Step()
	}
	s, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreEngine(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rh, err := rs.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if rh != h {
		t.Fatal("restore changed canonical hash")
	}
	for i := 0; i < 20; i++ {
		e.Step()
		r.Step()
	}
	s1, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	h1, err := s1.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s2.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("restored engine diverged from original under identical steps")
	}
}
