package sim

import (
	"testing"

	"wormnet/internal/baseline"
	"wormnet/internal/fault"
	"wormnet/internal/stats"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
	"wormnet/internal/traffic"
)

// eventTap records every lifecycle event in order. Unlike trace.Recorder it
// keeps the full stream, so two runs can be compared event by event.
type eventTap struct {
	events []trace.Event
}

func (l *eventTap) Emit(ev trace.Event) { l.events = append(l.events, ev) }

// runTraced runs cfg to completion at the given worker count and returns the
// summary, the per-class results (nil unless an adversary is configured),
// the full event stream, and the engine's all-time counters.
func runTraced(t *testing.T, cfg Config, workers int) (stats.Result, []stats.ClassResult, []trace.Event, [6]int64) {
	t.Helper()
	cfg.Workers = workers
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tap := &eventTap{}
	e.SetListener(tap)
	r := e.Run()
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("workers=%d: invariants violated at end of run: %v", workers, err)
	}
	counters := [6]int64{
		e.Generated(), e.Delivered(), e.Recovered(),
		e.Aborted(), e.Retried(), e.Dropped(),
	}
	return r, e.Collector().ClassResults(), tap.events, counters
}

// equivalenceConfigs returns the seeded scenarios the serial↔parallel
// equivalence suite runs: saturated uniform traffic with active deadlock
// recovery, bursty traffic under the ALO limiter, and a fault schedule
// exercising kills, retries, unreachable drops and repair.
func equivalenceConfigs() map[string]Config {
	// Saturated uniform, no limiter: past saturation TFAR deadlocks and
	// recoveries fire (the golden digest pins DeadlockPct > 0 here).
	saturated := QuickConfig()
	saturated.Rate = 2.0
	saturated.Limiter = baseline.Factories()["none"]
	saturated.LimiterName = "none"

	bursty := QuickConfig()
	bursty.Rate = 1.2
	bursty.Burst = traffic.BurstProfile{OnMean: 200, OffMean: 400}

	up := topology.PortFor(0, topology.Plus)
	faulty := QuickConfig()
	faulty.Rate = 0.8
	faulty.Faults = (&fault.Schedule{}).
		FailLink(2200, 1, up).RestoreLink(4800, 1, up).
		FailRouter(3000, 5).RestoreRouter(6500, 5)

	// Fault-cycle-heavy: saturated traffic (recoveries fire throughout) under
	// a dense, staggered link/router schedule, so nearly every cycle runs the
	// fault path and the allocation phase keeps crossing between its parallel
	// prefix and serial suffix (kills, retries, unreachable drops, repairs and
	// watermark-predicted recoveries all interleave).
	storm := QuickConfig()
	storm.Rate = 2.0
	storm.Limiter = baseline.Factories()["none"]
	storm.LimiterName = "none"
	sched := &fault.Schedule{}
	down := topology.PortFor(1, topology.Minus)
	for i := 0; i < 6; i++ {
		at := int64(1200 + 700*i)
		n := topology.NodeID(2*i + 1)
		sched.FailLink(at, n, up).RestoreLink(at+500, n, up)
		sched.FailLink(at+250, n, down).RestoreLink(at+950, n, down)
	}
	sched.FailRouter(2600, 9).RestoreRouter(5200, 9)
	storm.Faults = sched

	// Flapping faults: planner-generated down→repair→re-down cycles, so the
	// suite pins the online reconfiguration path (epoch flips on every
	// transition, healed capacity re-admitted, then yanked again) across
	// worker counts.
	flap := QuickConfig()
	flap.Rate = 0.8
	flapSched, err := fault.Plan(topology.New(flap.K, flap.N), fault.Profile{
		LinkFraction:      0.05,
		RouterFraction:    0.05,
		At:                1500,
		Stagger:           400,
		TransientFraction: 1.0,
		RepairAfter:       350,
		FlapCount:         2,
		FlapPeriod:        900,
		Seed:              11,
	})
	if err != nil {
		panic(err)
	}
	flap.Faults = flapSched

	// Adversarial: rogue nodes bypassing the ALO limiter with duty-cycled
	// hotspot storms, on top of a link-flap schedule — the per-class
	// accounting and the rogue bypass must be bit-identical too.
	adv := QuickConfig()
	adv.Rate = 0.6
	adv.Adversary = AdversaryProfile{
		RogueFraction: 0.15,
		RogueRate:     1.5,
		StormPeriod:   600,
		StormOn:       250,
		Hotspot:       5,
		Seed:          3,
	}
	adv.Faults = (&fault.Schedule{}).
		FailLink(2000, 3, up).RestoreLink(2600, 3, up).
		FailLink(3400, 3, up).RestoreLink(4000, 3, up)

	return map[string]Config{
		"saturated-recovery": saturated,
		"bursty-alo":         bursty,
		"faults-retry":       faulty,
		"faults-storm":       storm,
		"faults-flap":        flap,
		"adversarial":        adv,
	}
}

// TestGoldenParallelEquivalence is the determinism contract of the sharded
// parallel engine: for every scenario, every worker count must reproduce the
// serial run bit for bit — the same summary statistics, the same all-time
// counters, and the *same trace event stream*, event by event in the same
// order. The event stream is the strongest practical probe of message-level
// equality: it pins the id, source, destination, cycle and location of every
// generation, injection, throttle, deadlock, recovery, fault kill, retry,
// drop and delivery of the run.
func TestGoldenParallelEquivalence(t *testing.T) {
	for name, cfg := range equivalenceConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			baseRes, baseClasses, baseEvents, baseCounters := runTraced(t, cfg, 1)
			if len(baseEvents) == 0 {
				t.Fatal("serial run emitted no events; scenario is vacuous")
			}
			for _, workers := range []int{2, 3, 4, 7} {
				res, classes, events, counters := runTraced(t, cfg, workers)
				if res != baseRes {
					t.Errorf("workers=%d: result diverged:\n got  %+v\n want %+v", workers, res, baseRes)
				}
				if len(classes) != len(baseClasses) {
					t.Errorf("workers=%d: %d class results, serial has %d", workers, len(classes), len(baseClasses))
				} else {
					for i := range classes {
						if classes[i] != baseClasses[i] {
							t.Errorf("workers=%d: class %d diverged:\n got  %+v\n want %+v",
								workers, i, classes[i], baseClasses[i])
						}
					}
				}
				if counters != baseCounters {
					t.Errorf("workers=%d: counters diverged: got %v want %v", workers, counters, baseCounters)
				}
				if len(events) != len(baseEvents) {
					t.Errorf("workers=%d: %d events, serial emitted %d", workers, len(events), len(baseEvents))
					continue
				}
				for i := range events {
					if events[i] != baseEvents[i] {
						t.Errorf("workers=%d: event %d diverged:\n got  %+v\n want %+v",
							workers, i, events[i], baseEvents[i])
						break
					}
				}
			}
		})
	}
}

// TestParallelInvariants interleaves parallel Steps with the full invariant
// checker, including a drain phase. The checker also validates that the
// parallel runtime's deferral buffers are empty between cycles.
func TestParallelInvariants(t *testing.T) {
	cfg := QuickConfig()
	cfg.Rate = 1.5
	cfg.Limiter = baseline.Factories()["none"]
	cfg.LimiterName = "none"
	cfg.Workers = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for c := 0; c < 2000; c++ {
		e.Step()
		if c%250 == 0 {
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", e.Now(), err)
			}
		}
	}
	e.StopSources()
	for c := 0; c < 4000 && e.InFlight() > 0; c++ {
		e.Step()
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("after drain: %v", err)
	}
	if fl := e.InFlight(); fl != 0 {
		t.Fatalf("%d messages stuck after drain", fl)
	}
}

// TestParallelWorkerClamp checks the degenerate partitions: more workers
// than nodes clamps to one shard per node, and a single-node-per-shard
// engine still reproduces serial results.
func TestParallelWorkerClamp(t *testing.T) {
	cfg := QuickConfig()
	cfg.Rate = 0.6
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 200, 1000, 200
	base, _, _, _ := runTraced(t, cfg, 1)
	over, _, _, _ := runTraced(t, cfg, 1000) // 16 nodes: clamps to 16 shards
	if over != base {
		t.Errorf("overclamped run diverged:\n got  %+v\n want %+v", over, base)
	}
}

// TestParallelCloseMidRun closes the worker pool halfway through a run and
// finishes on the serial path: between cycles the parallel engine's state is
// exactly the serial engine's state, so the mixed run must reproduce the
// all-serial result bit for bit.
func TestParallelCloseMidRun(t *testing.T) {
	cfg := QuickConfig()
	cfg.Rate = 2.0
	cfg.Limiter = baseline.Factories()["none"]
	cfg.LimiterName = "none"
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 500, 2000, 500

	serial, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Run()

	cfg.Workers = 4
	mixed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	half := cfg.TotalCycles() / 2
	for mixed.Now() < half {
		mixed.Step()
	}
	mixed.Close()
	var got stats.Result
	for mixed.Now() < cfg.TotalCycles() {
		mixed.Step()
	}
	got = mixed.Collector().Result()
	if got != want {
		t.Errorf("serial continuation after Close diverged:\n got  %+v\n want %+v", got, want)
	}
	mixed.Close() // second Close is a no-op
}
