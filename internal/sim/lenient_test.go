package sim

import (
	"testing"

	"wormnet/internal/baseline"
)

// The lenient (timeout-style) detector must flag far more presumed
// deadlocks at saturation than the strict vital-sign criterion — the
// difference behind the paper's 20-70% detection figures.
func TestLenientDetectionFlagsMore(t *testing.T) {
	base := QuickConfig()
	base.Pattern = "complement"
	base.Rate = 1.6 // beyond saturation
	base.Limiter, base.LimiterName = baseline.NewNone(), "none"
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 500, 3000, 200

	run := func(lenient bool) float64 {
		cfg := base
		cfg.LenientDetection = lenient
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Run().DeadlockPct
	}
	strict := run(false)
	lenient := run(true)
	if lenient <= strict {
		t.Errorf("lenient detection %.3f%% should exceed strict %.3f%%", lenient, strict)
	}
	if lenient < 1 {
		t.Errorf("lenient detection at deep saturation should be substantial, got %.3f%%", lenient)
	}
}

// Lenient detection must not fire below saturation.
func TestLenientDetectionQuietAtLowLoad(t *testing.T) {
	cfg := QuickConfig()
	cfg.Rate = 0.2
	cfg.LenientDetection = true
	cfg.Limiter, cfg.LimiterName = baseline.NewNone(), "none"
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 500, 3000, 200
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pct := e.Run().DeadlockPct; pct > 0.5 {
		t.Errorf("lenient detection fired at low load: %.3f%%", pct)
	}
}
