package sim

import (
	"wormnet/internal/message"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
)

// recover implements the software-based recovery of a presumed-deadlocked
// message: every flit the message holds in the network is removed, every
// virtual channel it occupies (sender-side allocations and routes) is
// released, and the complete message is queued for re-injection at the node
// that held its header — charged with the configured software processing
// delay. The message keeps its generation timestamp, so the recovery cost
// shows up in its latency.
func (e *Engine) recover(m *message.Message, at *node) {
	e.recovered++
	e.col.OnDeadlock(e.now)
	e.emit(trace.KindDeadlock, m, at.id)

	e.teardown(m)

	m.ResetForReinjection(at.id)
	if e.spans != nil {
		e.spanTeardown(m)
	}
	at.recovery = append(at.recovery, pendingRecovery{
		msg:     m,
		readyAt: e.now + e.cfg.RecoveryDelay,
	})
	e.emit(trace.KindRecovered, m, at.id)
}

// teardown removes every trace of message m from the network: the
// injection channel it may still hold, every buffered flit, every route and
// every virtual channel (sender-side allocations up- and downstream of each
// buffer) it occupies, keeping the active-set counters consistent. The
// message's own progress counters are untouched; callers reset or drop the
// message afterwards. Both deadlock recovery and the fault-kill machinery
// run exactly this teardown.
func (e *Engine) teardown(m *message.Message) {
	// Free the injection channel if the message is still streaming in.
	inj := &e.nodes[m.Injector]
	for i := range inj.inj {
		ic := &inj.inj[i]
		if ic.msg != m {
			continue
		}
		if ic.route.valid {
			if ic.route.eject {
				if ej := &inj.ej[ic.route.ejCh]; ej.msg == m {
					m.FlitsEjected += int(ej.pending)
					ej.pending = 0
					ej.msg = nil
				}
			} else if inj.out[ic.route.outPort].VCs[ic.route.outVC].ReleaseIfOwner(m) {
				inj.freeMask[ic.route.outPort] |= 1 << uint(ic.route.outVC)
			}
		}
		// Settle the deferred flit accounting before the channel forgets
		// how much of the message it had streamed.
		m.FlitsSent = int(ic.len - ic.left)
		ic.msg = nil
		ic.route = routeInfo{}
		inj.freshInj &^= 1 << uint(i)
		inj.busyInj--
	}

	// Tear down the path: remove buffered flits, clear routes, release the
	// virtual channels feeding and leaving every buffer the message holds.
	for _, loc := range m.Path {
		nd := &e.nodes[loc.Node]
		a := e.inVCIndex(loc.Port, loc.VC)
		ivc := &nd.in[a]
		bit := uint32(1) << uint(loc.VC)
		if ivc.buf.RemoveMessage(m.ID) > 0 {
			if ivc.buf.Empty() {
				nd.occVCs--
				nd.inEmpty[loc.Port] |= bit
			}
			if !ivc.buf.Full() {
				nd.inFull[loc.Port] &^= bit
			}
		}
		// The buffer held only this message's flits, so a valid route on it
		// belongs to the message: release the onward channel it claimed.
		if rt := &nd.routes[a]; rt.valid {
			if rt.eject {
				if ej := &nd.ej[rt.ejCh]; ej.msg == m {
					m.FlitsEjected += int(ej.pending)
					ej.pending = 0
					ej.msg = nil
				}
			} else if nd.out[rt.outPort].VCs[rt.outVC].ReleaseIfOwner(m) {
				nd.freeMask[rt.outPort] |= 1 << uint(rt.outVC)
			}
			*rt = routeInfo{}
			nd.routed[loc.Port] &^= bit
			nd.fresh[loc.Port] &^= bit
		}
		nd.blocked.Progress(a)
		// Release the upstream allocation feeding this buffer (a no-op when
		// the tail already passed through it).
		opp := topology.Opposite(loc.Port)
		up := &e.nodes[e.topo.Neighbor(loc.Node, loc.Port)]
		if up.out[opp].VCs[loc.VC].ReleaseIfOwner(m) {
			up.freeMask[opp] |= bit
		}
	}
	m.Path = m.Path[:0]
}
