package sim

import (
	"wormnet/internal/message"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
)

// recover implements the software-based recovery of a presumed-deadlocked
// message: every flit the message holds in the network is removed, every
// virtual channel it occupies (sender-side allocations and routes) is
// released, and the complete message is queued for re-injection at the node
// that held its header — charged with the configured software processing
// delay. The message keeps its generation timestamp, so the recovery cost
// shows up in its latency.
func (e *Engine) recover(m *message.Message, at *node) {
	e.recovered++
	e.col.OnDeadlock(e.now)
	e.emit(trace.KindDeadlock, m, at.id)

	e.teardown(m)

	m.ResetForReinjection(at.id)
	at.recovery = append(at.recovery, pendingRecovery{
		msg:     m,
		readyAt: e.now + e.cfg.RecoveryDelay,
	})
	e.emit(trace.KindRecovered, m, at.id)
}

// teardown removes every trace of message m from the network: the
// injection channel it may still hold, every buffered flit, every route and
// every virtual channel (sender-side allocations up- and downstream of each
// buffer) it occupies. The message's own progress counters are untouched;
// callers reset or drop the message afterwards. Both deadlock recovery and
// the fault-kill machinery run exactly this teardown.
func (e *Engine) teardown(m *message.Message) {
	// Free the injection channel if the message is still streaming in.
	inj := e.nodes[m.Injector]
	for i := range inj.inj {
		ic := &inj.inj[i]
		if ic.msg != m {
			continue
		}
		if ic.route.valid {
			if ic.route.eject {
				if inj.ej[ic.route.ejCh].msg == m {
					inj.ej[ic.route.ejCh].msg = nil
				}
			} else {
				inj.out[ic.route.outPort].VCs[ic.route.outVC].ReleaseIfOwner(m)
			}
		}
		ic.msg = nil
		ic.route = routeInfo{}
	}

	// Tear down the path: remove buffered flits, clear routes, release the
	// virtual channels feeding and leaving every buffer the message holds.
	for _, loc := range e.paths[m] {
		nd := e.nodes[loc.node]
		ivc := &nd.in[loc.port][loc.vc]
		ivc.buf.RemoveMessage(m.ID)
		// The buffer held only this message's flits, so a valid route on it
		// belongs to the message: release the onward channel it claimed.
		if ivc.route.valid {
			if ivc.route.eject {
				if nd.ej[ivc.route.ejCh].msg == m {
					nd.ej[ivc.route.ejCh].msg = nil
				}
			} else {
				nd.out[ivc.route.outPort].VCs[ivc.route.outVC].ReleaseIfOwner(m)
			}
			ivc.route = routeInfo{}
		}
		nd.blocked.Progress(e.inVCIndex(loc.port, loc.vc))
		// Release the upstream allocation feeding this buffer (a no-op when
		// the tail already passed through it).
		up := e.nodes[e.topo.Neighbor(loc.node, loc.port)]
		up.out[topology.Opposite(loc.port)].VCs[loc.vc].ReleaseIfOwner(m)
	}
	delete(e.paths, m)
}
