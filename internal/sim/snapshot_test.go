package sim

import (
	"bytes"
	"encoding/gob"
	"errors"
	"strings"
	"testing"

	"wormnet/internal/metrics"
	"wormnet/internal/stats"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
)

// gobRoundTrip pushes a snapshot through its wire encoding and back, so every
// restore in this file exercises exactly what a checkpoint file would carry
// (the checkpoint package adds framing and a CRC around the same gob payload).
func gobRoundTrip(t *testing.T, snap *Snapshot) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var out Snapshot
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return &out
}

// snapshotAt runs cfg at the given worker count up to cycle snapAt, feeding
// events into tap, and returns the engine's snapshot after a gob round trip.
func snapshotAt(t *testing.T, cfg Config, workers int, snapAt int64, tap *eventTap) *Snapshot {
	t.Helper()
	cfg.Workers = workers
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetListener(tap)
	for e.Now() < snapAt {
		e.Step()
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatalf("snapshot at cycle %d: %v", snapAt, err)
	}
	return gobRoundTrip(t, snap)
}

// runResumed snapshots cfg at snapWorkers after snapAt cycles, restores the
// snapshot into a fresh engine at resumeWorkers, runs it to completion and
// returns the summary, the concatenated (pre + post restore) event stream,
// and the final all-time counters — directly comparable to runTraced.
func runResumed(t *testing.T, cfg Config, snapWorkers, resumeWorkers int, snapAt int64) (stats.Result, []trace.Event, [6]int64) {
	t.Helper()
	tap := &eventTap{}
	snap := snapshotAt(t, cfg, snapWorkers, snapAt, tap)

	cfg.Workers = resumeWorkers
	e, err := RestoreEngine(cfg, snap)
	if err != nil {
		t.Fatalf("restore at workers=%d: %v", resumeWorkers, err)
	}
	defer e.Close()
	if got := e.Now(); got != snapAt {
		t.Fatalf("restored engine resumed at cycle %d, snapshot taken at %d", got, snapAt)
	}
	e.SetListener(tap)
	r := e.Run()
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated at end of resumed run: %v", err)
	}
	counters := [6]int64{
		e.Generated(), e.Delivered(), e.Recovered(),
		e.Aborted(), e.Retried(), e.Dropped(),
	}
	return r, tap.events, counters
}

// TestSnapshotResumeEquivalence is the checkpoint determinism contract: a run
// snapshotted at an arbitrary mid-run cycle and resumed in a fresh process
// image (here: a fresh engine built from the gob-round-tripped snapshot) must
// reproduce the uninterrupted run bit for bit — the same summary, the same
// counters, and the same trace event stream. The worker-count combinations
// pin the cross-worker clause: a snapshot taken at any Workers value restores
// at any other, because the snapshot carries only worker-independent state.
func TestSnapshotResumeEquivalence(t *testing.T) {
	combos := []struct{ snapW, resumeW int }{
		{1, 1}, {1, 4}, {4, 1}, {2, 2}, {4, 4},
	}
	for name, cfg := range equivalenceConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			baseRes, _, baseEvents, baseCounters := runTraced(t, cfg, 1)
			if len(baseEvents) == 0 {
				t.Fatal("golden run emitted no events; scenario is vacuous")
			}
			// One snapshot point in warmup-heavy early traffic, one deep in
			// the measurement window with recoveries/faults in flight.
			for _, snapAt := range []int64{1500, cfg.TotalCycles() / 2} {
				for _, w := range combos {
					res, events, counters := runResumed(t, cfg, w.snapW, w.resumeW, snapAt)
					if res != baseRes {
						t.Errorf("snap@%d %d→%d: result diverged:\n got  %+v\n want %+v",
							snapAt, w.snapW, w.resumeW, res, baseRes)
					}
					if counters != baseCounters {
						t.Errorf("snap@%d %d→%d: counters diverged: got %v want %v",
							snapAt, w.snapW, w.resumeW, counters, baseCounters)
					}
					if len(events) != len(baseEvents) {
						t.Errorf("snap@%d %d→%d: %d events, golden emitted %d",
							snapAt, w.snapW, w.resumeW, len(events), len(baseEvents))
						continue
					}
					for i := range events {
						if events[i] != baseEvents[i] {
							t.Errorf("snap@%d %d→%d: event %d diverged:\n got  %+v\n want %+v",
								snapAt, w.snapW, w.resumeW, i, events[i], baseEvents[i])
							break
						}
					}
				}
			}
		})
	}
}

// TestSnapshotDoesNotPerturb proves Snapshot is a pure read: an engine that
// is snapshotted mid-run and then keeps going matches the never-snapshotted
// golden run exactly.
func TestSnapshotDoesNotPerturb(t *testing.T) {
	cfg := equivalenceConfigs()["saturated-recovery"]
	baseRes, _, baseEvents, _ := runTraced(t, cfg, 1)

	cfg.Workers = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tap := &eventTap{}
	e.SetListener(tap)
	for e.Now() < cfg.TotalCycles() {
		e.Step()
		if e.Now()%1000 == 0 {
			if _, err := e.Snapshot(); err != nil {
				t.Fatalf("snapshot at cycle %d: %v", e.Now(), err)
			}
		}
	}
	e.FlushMetrics()
	if r := e.Collector().Result(); r != baseRes {
		t.Errorf("snapshotting perturbed the run:\n got  %+v\n want %+v", r, baseRes)
	}
	if len(tap.events) != len(baseEvents) {
		t.Errorf("snapshotting changed the event count: %d vs %d", len(tap.events), len(baseEvents))
	}
}

// TestSnapshotConfigMismatch pins that a snapshot only restores into the
// configuration that produced it: any divergence outside the worker count is
// rejected with ErrSnapshotConfig before any state is loaded.
func TestSnapshotConfigMismatch(t *testing.T) {
	cfg := QuickConfig()
	snap := snapshotAt(t, cfg, 1, 500, &eventTap{})

	bad := cfg
	bad.Rate = cfg.Rate * 2
	if _, err := RestoreEngine(bad, snap); !errors.Is(err, ErrSnapshotConfig) {
		t.Errorf("rate mismatch: got %v, want ErrSnapshotConfig", err)
	}

	// Workers is explicitly excluded from the digest.
	ok := cfg
	ok.Workers = 4
	e, err := RestoreEngine(ok, snap)
	if err != nil {
		t.Fatalf("worker-count change must restore cleanly: %v", err)
	}
	e.Close()
}

// TestSnapshotRejectsCorruptState pins that structurally valid but internally
// inconsistent snapshots fail loudly with ErrSnapshotInvalid instead of
// producing a quietly wrong engine.
func TestSnapshotRejectsCorruptState(t *testing.T) {
	cfg := equivalenceConfigs()["saturated-recovery"]
	pristine := snapshotAt(t, cfg, 1, 2000, &eventTap{})

	corrupt := func(name string, mutate func(s *Snapshot)) {
		t.Helper()
		s := gobRoundTrip(t, pristine) // deep copy
		mutate(s)
		if _, err := RestoreEngine(cfg, s); !errors.Is(err, ErrSnapshotInvalid) {
			t.Errorf("%s: got %v, want ErrSnapshotInvalid", name, err)
		}
	}

	corrupt("dangling queue reference", func(s *Snapshot) {
		for i := range s.Nodes {
			if len(s.Nodes[i].Queue) > 0 {
				s.Nodes[i].Queue[0] = 1 << 40
				return
			}
		}
		t.Skip("no queued messages at snapshot point")
	})
	corrupt("duplicate message id", func(s *Snapshot) {
		if len(s.Messages) < 2 {
			t.Skip("too few in-flight messages")
		}
		s.Messages[1].ID = s.Messages[0].ID
	})
	corrupt("node count mismatch", func(s *Snapshot) {
		s.Nodes = s.Nodes[:len(s.Nodes)-1]
	})
	corrupt("stats geometry mismatch", func(s *Snapshot) {
		s.Stats.Nodes = s.Stats.Nodes + 3
	})
}

// TestSnapshotMetricsContinuity checks the documented restore ordering for
// metrics (EnableMetrics, then Registry.Restore from the snapshot): every
// deterministic metric — counters, gauges, and the state-derived histograms —
// finishes a resumed run with exactly the value of the uninterrupted run.
// Wall-clock timing histograms (*_ns) are inherently nondeterministic and are
// excluded.
func TestSnapshotMetricsContinuity(t *testing.T) {
	cfg := equivalenceConfigs()["bursty-alo"]
	cfg.Workers = 1
	const every = 100
	const snapAt = 2500

	// Golden: uninterrupted run with metrics on.
	golden, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer golden.Close()
	goldenReg := metrics.NewRegistry()
	golden.EnableMetrics(goldenReg, every)
	golden.Run()

	// Interrupted: run to snapAt, snapshot (captures the registry), restore,
	// re-enable metrics on a fresh registry and replay the samples into it.
	e1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	e1.EnableMetrics(metrics.NewRegistry(), every)
	for e1.Now() < snapAt {
		e1.Step()
	}
	snap, err := e1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Metrics) == 0 {
		t.Fatal("snapshot of a metrics-enabled engine carried no samples")
	}
	snap = gobRoundTrip(t, snap)

	e2, err := RestoreEngine(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	reg := metrics.NewRegistry()
	e2.EnableMetrics(reg, every)
	if err := reg.Restore(snap.Metrics); err != nil {
		t.Fatal(err)
	}
	e2.Run()

	want := deterministicSamples(goldenReg.Snapshot())
	got := deterministicSamples(reg.Snapshot())
	if len(got) != len(want) {
		t.Fatalf("metric inventories differ: %d vs %d deterministic samples", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Name != w.Name || g.Value != w.Value || g.Sum != w.Sum || g.N != w.N {
			t.Errorf("metric %q diverged after resume:\n got  value=%v sum=%v n=%d\n want value=%v sum=%v n=%d",
				w.Name, g.Value, g.Sum, g.N, w.Value, w.Sum, w.N)
		}
		for j := range w.Count {
			if g.Count[j] != w.Count[j] {
				t.Errorf("metric %q bucket %d diverged: got %d want %d", w.Name, j, g.Count[j], w.Count[j])
				break
			}
		}
	}
}

// deterministicSamples filters out the wall-clock timing histograms, whose
// observations depend on host scheduling rather than simulation state.
func deterministicSamples(in []metrics.Sample) []metrics.Sample {
	out := in[:0:0]
	for _, s := range in {
		if strings.HasSuffix(s.Name, "_ns") {
			continue
		}
		out = append(out, s)
	}
	return out
}

// TestSnapshotRestoresDrainedChannelOwner pins a hazard the generic
// equivalence combos can miss: an input virtual channel whose head flit has
// moved on while the tail is still upstream has an *empty* buffer but a live
// route and a live owner — the body flits that keep arriving never carry the
// Head flag that rewrites the owner cache, so a restore that derived owners
// only from buffer fronts brought such channels back ownerless (the sweep
// chaos self-test caught this as a post-resume invariant violation). The test
// scans a saturated run for the first cycle exhibiting the hazard, snapshots
// exactly there, and demands the restored engine carries the owners and
// finishes bit-identical to the uninterrupted run.
func TestSnapshotRestoresDrainedChannelOwner(t *testing.T) {
	cfg := equivalenceConfigs()["saturated-recovery"]
	goldRes, _, goldEvents, goldCtr := runTraced(t, cfg, 1)

	cfg.Workers = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tap := &eventTap{}
	e.SetListener(tap)

	// A hazard channel: empty buffer, valid forward route, owner whose path
	// still tracks the channel (its tail has not drained through yet).
	hazards := func(en *Engine) []pathLoc {
		var locs []pathLoc
		for i := range en.nodes {
			nd := &en.nodes[i]
			for a := range nd.in {
				if !nd.routes[a].valid || nd.routes[a].eject || !nd.in[a].buf.Empty() {
					continue
				}
				m := nd.in[a].owner
				if m == nil {
					continue
				}
				loc := pathLoc{Node: nd.id, Port: topology.Port(a / cfg.VCs), VC: int8(a % cfg.VCs)}
				for _, pl := range m.Path {
					if pl == loc {
						locs = append(locs, loc)
						break
					}
				}
			}
		}
		return locs
	}

	total := cfg.TotalCycles()
	var locs []pathLoc
	for e.Now() < total {
		if locs = hazards(e); len(locs) != 0 {
			break
		}
		e.Step()
	}
	if len(locs) == 0 {
		t.Fatal("no drained-but-owned channel appeared; the scenario lost its bite")
	}
	snapAt := e.Now()
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatalf("snapshot at cycle %d: %v", snapAt, err)
	}
	snap = gobRoundTrip(t, snap)

	cfg.Workers = 4
	r, err := RestoreEngine(cfg, snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer r.Close()
	for _, loc := range locs {
		ivc := &r.nodes[loc.Node].in[r.inVCIndex(loc.Port, loc.VC)]
		want := e.nodes[loc.Node].in[e.inVCIndex(loc.Port, loc.VC)].owner
		if ivc.owner == nil {
			t.Fatalf("cycle %d: restored channel %v lost its owner (msg %d)", snapAt, loc, want.ID)
		}
		if ivc.owner.ID != want.ID || ivc.dst != want.Dst {
			t.Fatalf("cycle %d: restored channel %v owned by msg %d dst %d, want msg %d dst %d",
				snapAt, loc, ivc.owner.ID, ivc.dst, want.ID, want.Dst)
		}
	}

	r.SetListener(tap)
	res := r.Run()
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("invariants after resume at cycle %d: %v", snapAt, err)
	}
	if res != goldRes {
		t.Errorf("result diverged after resume at cycle %d:\n got  %+v\n want %+v", snapAt, res, goldRes)
	}
	ctr := [6]int64{r.Generated(), r.Delivered(), r.Recovered(), r.Aborted(), r.Retried(), r.Dropped()}
	if ctr != goldCtr {
		t.Errorf("counters diverged: got %v want %v", ctr, goldCtr)
	}
	if len(tap.events) != len(goldEvents) {
		t.Fatalf("%d events, golden emitted %d", len(tap.events), len(goldEvents))
	}
	for i := range tap.events {
		if tap.events[i] != goldEvents[i] {
			t.Fatalf("event %d diverged:\n got  %+v\n want %+v", i, tap.events[i], goldEvents[i])
		}
	}
}
