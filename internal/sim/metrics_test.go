package sim

import (
	"testing"

	"wormnet/internal/metrics"
	"wormnet/internal/stats"
	"wormnet/internal/trace"
)

// runObserved runs cfg to completion with the full observability stack
// attached — metrics registry, dense sampling, sample hook, trace listener —
// and returns the summary, event stream and counters exactly like runTraced,
// plus the registry for inspection.
func runObserved(t *testing.T, cfg Config, workers int) (stats.Result, []trace.Event, [6]int64, *metrics.Registry) {
	t.Helper()
	cfg.Workers = workers
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	reg := metrics.NewRegistry()
	e.EnableMetrics(reg, 64)
	samples := 0
	e.SetSampleHook(func(int64) { samples++ })
	tap := &eventTap{}
	e.SetListener(tap)
	r := e.Run()
	if err := e.CheckInvariants(); err != nil {
		t.Fatalf("workers=%d: invariants violated at end of run: %v", workers, err)
	}
	if samples == 0 {
		t.Fatal("sample hook never fired")
	}
	counters := [6]int64{
		e.Generated(), e.Delivered(), e.Recovered(),
		e.Aborted(), e.Retried(), e.Dropped(),
	}
	return r, tap.events, counters, reg
}

// TestMetricsDeterminism is the observability layer's core contract: a run
// with metrics, sampling and export hooks enabled produces bit-identical
// results — summary statistics, all-time counters, and the full trace event
// stream — to the same run without any of it, on the serial path and on the
// sharded parallel path alike. The metrics layer may read the simulation;
// it must never steer it.
func TestMetricsDeterminism(t *testing.T) {
	for name, cfg := range equivalenceConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			baseRes, _, baseEvents, baseCounters := runTraced(t, cfg, 1)
			for _, workers := range []int{1, 4} {
				res, events, counters, _ := runObserved(t, cfg, workers)
				if res != baseRes {
					t.Errorf("workers=%d observed: result diverged:\n got  %+v\n want %+v",
						workers, res, baseRes)
				}
				if counters != baseCounters {
					t.Errorf("workers=%d observed: counters diverged: got %v want %v",
						workers, counters, baseCounters)
				}
				if len(events) != len(baseEvents) {
					t.Errorf("workers=%d observed: %d events, plain run emitted %d",
						workers, len(events), len(baseEvents))
					continue
				}
				for i := range events {
					if events[i] != baseEvents[i] {
						t.Errorf("workers=%d observed: event %d diverged:\n got  %+v\n want %+v",
							workers, i, events[i], baseEvents[i])
						break
					}
				}
			}
		})
	}
}

// metricValue returns the sampled value of a metric by name.
func metricValue(t *testing.T, reg *metrics.Registry, name string) float64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			if s.Kind == metrics.KindHistogram {
				return float64(s.N)
			}
			return s.Value
		}
	}
	t.Fatalf("metric %q not registered", name)
	return 0
}

// TestMetricsPopulated checks the registered series carry real data after a
// saturated ALO run: mirrored totals match the engine counters, the limiter
// denial counters fire (with ALO a denial means both rules failed, so the
// per-rule counters equal the total), and the sampled gauges and timing
// histograms are non-trivial.
func TestMetricsPopulated(t *testing.T) {
	cfg := QuickConfig()
	cfg.Rate = 1.5 // past saturation: ALO must throttle
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 500, 2000, 200
	_, _, counters, reg := runObserved(t, cfg, 1)

	if got := metricValue(t, reg, "sim_messages_generated_total"); int64(got) != counters[0] {
		t.Errorf("generated mirror = %v, engine counter %d", got, counters[0])
	}
	if got := metricValue(t, reg, "sim_messages_delivered_total"); int64(got) != counters[1] {
		t.Errorf("delivered mirror = %v, engine counter %d", got, counters[1])
	}
	denied := metricValue(t, reg, "sim_injection_denied_total")
	if denied == 0 {
		t.Fatal("saturated ALO run recorded no denials")
	}
	if a := metricValue(t, reg, "sim_injection_deny_rule_a_total"); a != denied {
		t.Errorf("ALO denial implies rule (a) failed: ruleA=%v denied=%v", a, denied)
	}
	if b := metricValue(t, reg, "sim_injection_deny_rule_b_total"); b != denied {
		t.Errorf("ALO denial implies rule (b) failed: ruleB=%v denied=%v", b, denied)
	}
	if adm := metricValue(t, reg, "sim_injection_admitted_total"); adm == 0 {
		t.Error("no admissions recorded")
	}
	if fl := metricValue(t, reg, "sim_flits_moved_total"); fl == 0 {
		t.Error("no flit movement recorded")
	}
	if occ := metricValue(t, reg, "sim_input_vc_occupancy_ratio"); occ < 0 || occ > 1 {
		t.Errorf("occupancy ratio %v outside [0,1]", occ)
	}
	if n := metricValue(t, reg, "sim_phase_inject_ns"); n == 0 {
		t.Error("per-phase timing histogram empty on a serial run")
	}
	if n := metricValue(t, reg, "sim_node_queue_depth"); n == 0 {
		t.Error("per-node queue-depth histogram empty")
	}
}

// TestMetricsParallelCycleTiming checks the parallel path records whole-cycle
// wall time (it has no serial phase boundaries to time individually).
func TestMetricsParallelCycleTiming(t *testing.T) {
	cfg := QuickConfig()
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 200, 800, 100
	_, _, _, reg := runObserved(t, cfg, 4)
	if n := metricValue(t, reg, "sim_cycle_ns"); n == 0 {
		t.Error("parallel run recorded no cycle timing samples")
	}
	if fl := metricValue(t, reg, "sim_flits_moved_total"); fl == 0 {
		t.Error("parallel run recorded no flit movement")
	}
}

// TestMetricsSampleHook pins the sampling cadence: the hook fires exactly on
// the cycles where now % every == 0, in order, on the simulation goroutine.
func TestMetricsSampleHook(t *testing.T) {
	cfg := QuickConfig()
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 0, 256, 0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableMetrics(metrics.NewRegistry(), 100)
	var fired []int64
	e.SetSampleHook(func(cycle int64) { fired = append(fired, cycle) })
	for i := 0; i < 256; i++ {
		e.Step()
	}
	want := []int64{0, 100, 200}
	if len(fired) != len(want) {
		t.Fatalf("hook fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("hook fired at %v, want %v", fired, want)
		}
	}
	// Detaching the registry silences both sampling and the hook.
	e.EnableMetrics(nil, 0)
	for i := 0; i < 256; i++ {
		e.Step()
	}
	if len(fired) != len(want) {
		t.Errorf("hook fired after detach: %v", fired)
	}
}
