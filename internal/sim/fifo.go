package sim

import "wormnet/internal/message"

// msgFIFO is the per-node source queue: a FIFO of message pointers with an
// explicit head index, so popping the front does not re-slice (the old
// queue[1:] idiom kept the backing array's dead prefix alive and forced a
// fresh allocation every time the queue refilled). The buffer rewinds
// whenever the queue empties and compacts when the dead prefix dominates,
// so steady-state traffic reuses one backing array indefinitely.
type msgFIFO struct {
	buf  []*message.Message
	head int
}

// Len returns the number of queued messages.
func (q *msgFIFO) Len() int { return len(q.buf) - q.head }

// Empty reports whether the queue holds no messages.
func (q *msgFIFO) Empty() bool { return q.head == len(q.buf) }

// Front returns the oldest queued message. It panics if the queue is empty.
func (q *msgFIFO) Front() *message.Message { return q.buf[q.head] }

// At returns the i-th queued message (0 = front).
func (q *msgFIFO) At(i int) *message.Message { return q.buf[q.head+i] }

// Push appends a message at the back.
func (q *msgFIFO) Push(m *message.Message) {
	if q.head == len(q.buf) {
		// Empty: rewind so the backing array is reused from the start.
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 32 && 2*q.head >= len(q.buf) {
		// The dead prefix dominates: compact in place.
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, m)
}

// PopFront removes and returns the oldest queued message. It panics if the
// queue is empty.
func (q *msgFIFO) PopFront() *message.Message {
	m := q.buf[q.head]
	q.buf[q.head] = nil // release the reference
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return m
}

// PushFront prepends ms before the current front, preserving ms's order
// (ms[0] becomes the new front). The retry machinery uses it to give
// recovered traffic priority over newer messages.
func (q *msgFIFO) PushFront(ms []*message.Message) {
	if len(ms) == 0 {
		return
	}
	if len(ms) <= q.head {
		// Fits in the dead prefix: place in front of head in place.
		q.head -= len(ms)
		copy(q.buf[q.head:], ms)
		return
	}
	merged := make([]*message.Message, 0, len(ms)+q.Len())
	merged = append(merged, ms...)
	merged = append(merged, q.buf[q.head:]...)
	q.buf = merged
	q.head = 0
}

// Clear drops every queued message reference.
func (q *msgFIFO) Clear() {
	for i := q.head; i < len(q.buf); i++ {
		q.buf[i] = nil
	}
	q.buf = q.buf[:0]
	q.head = 0
}
