package sim

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkPhaseBarrier measures one barrier round — arrive, release, wait
// — across the shard counts the engine uses, with the same adaptive spin
// budget newParRuntime would pick on this host. ns/op is the pure
// synchronisation cost the cycle pays per barrier (4 per steady-state
// cycle); multiplying it out against BenchmarkEngineCyclesParallel
// separates sync overhead from per-shard work.
func BenchmarkPhaseBarrier(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var bar phaseBarrier
			bar.n = int32(shards)
			bar.spin = barrierSpin(shards)
			var wg sync.WaitGroup
			for id := 1; id < shards; id++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var gen uint32
					for i := 0; i < b.N; i++ {
						gen++
						if bar.arrive() {
							bar.release(gen)
						} else {
							bar.wait(gen)
						}
					}
				}()
			}
			var gen uint32
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gen++
				if bar.arrive() {
					bar.release(gen)
				} else {
					bar.wait(gen)
				}
			}
			b.StopTimer()
			wg.Wait()
		})
	}
}
