package sim

import (
	"wormnet/internal/topology"
)

// channelView adapts a node's router state to the core.ChannelView
// interface consumed by injection limiters: the routing function plus the
// virtual-channel status register, exactly the information the paper's
// injection control unit sees. Each node caches one *channelView (node.view)
// so handing it to a limiter converts a pointer to an interface without
// allocating.
type channelView struct {
	e  *Engine
	nd *node
}

// UsefulPorts implements core.ChannelView by executing the run's routing
// function for a locally generated message and collapsing its candidates to
// distinct physical ports. On fault-free runs the candidates come from the
// precomputed table.
func (v channelView) UsefulPorts(dst topology.NodeID) []topology.Port {
	ports := v.nd.scratchPorts[:0]
	for _, pc := range v.e.candidates(v.nd, dst) {
		ports = append(ports, pc.port)
	}
	v.nd.scratchPorts = ports
	return ports
}

// FreeVCs implements core.ChannelView.
func (v channelView) FreeVCs(p topology.Port) int { return v.nd.out[p].FreeVCs() }

// VCs implements core.ChannelView.
func (v channelView) VCs() int { return v.e.cfg.VCs }

// NumPorts implements core.ChannelView.
func (v channelView) NumPorts() int { return v.e.numPhys }

// QueuedMessages implements core.ChannelView.
func (v channelView) QueuedMessages() int { return v.nd.queue.Len() }

// HeadWait implements core.ChannelView.
func (v channelView) HeadWait() int64 {
	if v.nd.queue.Empty() {
		return 0
	}
	return v.e.now - v.nd.queue.Front().GenTime
}
