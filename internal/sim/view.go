package sim

import (
	"wormnet/internal/routing"
	"wormnet/internal/topology"
)

// channelView adapts a node's router state to the core.ChannelView
// interface consumed by injection limiters: the routing function plus the
// virtual-channel status register, exactly the information the paper's
// injection control unit sees.
type channelView struct {
	e  *Engine
	nd *node
}

// UsefulPorts implements core.ChannelView by executing the run's routing
// function for a locally generated message and collapsing its candidates to
// distinct physical ports.
func (v channelView) UsefulPorts(dst topology.NodeID) []topology.Port {
	v.nd.scratchCands = v.e.alg.Candidates(v.nd.id, dst, v.nd.scratchCands[:0])
	v.nd.scratchPorts = routing.Ports(v.nd.scratchCands, v.nd.scratchPorts[:0])
	return v.nd.scratchPorts
}

// FreeVCs implements core.ChannelView.
func (v channelView) FreeVCs(p topology.Port) int { return v.nd.out[p].FreeVCs() }

// VCs implements core.ChannelView.
func (v channelView) VCs() int { return v.e.cfg.VCs }

// NumPorts implements core.ChannelView.
func (v channelView) NumPorts() int { return v.e.numPhys }

// QueuedMessages implements core.ChannelView.
func (v channelView) QueuedMessages() int { return len(v.nd.queue) }

// HeadWait implements core.ChannelView.
func (v channelView) HeadWait() int64 {
	if len(v.nd.queue) == 0 {
		return 0
	}
	return v.e.now - v.nd.queue[0].GenTime
}
