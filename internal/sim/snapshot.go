package sim

// Engine state snapshot and restore — the simulator side of the
// checkpoint/restore layer (internal/checkpoint frames and persists the
// Snapshot; this file enumerates and rebuilds the state).
//
// Contract: a Snapshot taken between Step calls captures everything that
// influences future simulation behaviour, so that RestoreEngine continues
// with bit-identical results, counters and event streams — at any Workers
// count, which may differ from the snapshotting engine's. That works
// because the parallel engine is itself bit-identical to serial, and every
// piece of state that depends on the worker count (shard scratch buffers,
// the BlockTracker watermark/hot pair) is either transient between cycles
// or recomputed on restore.
//
// What is serialized: the cycle clock, message-ID allocator, all-time
// counters, the full reachable message table, per-node durable router state
// (input-VC buffer contents, forwarding decisions, output-VC ownership,
// injection/ejection channels, source and recovery/retry queues, generator
// RNG streams, stateful-limiter words, blockage counters, per-VC last-
// transmission cycles, arbiter pointers), fault machinery position (liveness
// masks, next-event index), the stats collector, and — when metrics are
// enabled — the registry's samples.
//
// What is deliberately NOT serialized, and why that is sound:
//   - derived state (occVCs/busyInj, the inEmpty/inFull/freeMask/routed
//     status words, swDesc, input-VC owner/dst caches, nextGen): recomputed
//     exactly from the durable state;
//   - per-cycle scratch (moves, reqsFlat, genScratch, killScratch, shard
//     buffers): dead between cycles;
//   - the fresh masks and freshInj: provably zero between cycles — a set
//     fresh bit implies a non-empty routed VC (or busy injection channel) on
//     that node, which keeps the node in the active set through the switch
//     phase, and the switch phase unconditionally clears the masks of every
//     active node (teardown clears the bits of routes it releases);
//   - the message pool: a recycled message is indistinguishable from a
//     freshly allocated one (Reuse == New up to the Pooled flag and Path
//     backing array, neither observable), so restored runs simply allocate
//     where the original recycled.

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"wormnet/internal/core"
	"wormnet/internal/message"
	"wormnet/internal/metrics"
	"wormnet/internal/stats"
	"wormnet/internal/topology"
	"wormnet/internal/traffic"
)

// Snapshot errors.
var (
	// ErrSnapshotConfig marks a restore into a configuration whose digest
	// does not match the snapshot's.
	ErrSnapshotConfig = errors.New("sim: snapshot config mismatch")
	// ErrSnapshotInvalid marks a snapshot whose contents are internally
	// inconsistent (references to unknown messages, wrong slice lengths, a
	// restored engine failing its invariant check).
	ErrSnapshotInvalid = errors.New("sim: invalid snapshot")
)

// SnapRoute is a serialized routeInfo.
type SnapRoute struct {
	Valid   bool
	Eject   bool
	OutPort int8
	OutVC   int8
	EjCh    int8
	Epoch   uint16
}

// SnapFlit is one buffered flit: a message reference plus its position.
type SnapFlit struct {
	Msg  int64
	Seq  int32
	Head bool
	Tail bool
}

// SnapVC is one input virtual channel: its buffered flits in FIFO order and
// its forwarding decision.
type SnapVC struct {
	Flits []SnapFlit
	Route SnapRoute
}

// SnapInj is one injection channel (Msg < 0 when free).
type SnapInj struct {
	Msg   int64
	Route SnapRoute
	Left  int32
	Len   int32
	Dst   int32
}

// SnapEj is one ejection channel (Msg < 0 when free).
type SnapEj struct {
	Msg     int64
	Pending int32
}

// SnapPending is one recovery- or retry-queue entry.
type SnapPending struct {
	Msg     int64
	ReadyAt int64
}

// SnapPath is one message path location.
type SnapPath struct {
	Node int32
	Port int8
	VC   int8
}

// SnapMessage is the full serialized state of one reachable message.
type SnapMessage struct {
	ID           int64
	Src, Dst     int32
	Length       int32
	GenTime      int64
	InjectTime   int64
	DeliverTime  int64
	State        int8
	Injector     int32
	FlitsSent    int32
	FlitsEjected int32
	Recoveries   int32
	Retries      int32
	DropReason   string
	Measured     bool
	Pooled       bool
	Path         []SnapPath
}

// SnapNode is the durable state of one node.
type SnapNode struct {
	In       []SnapVC
	OutOwner []int64 // flat output VC -> owning message ID, -1 when free
	Inj      []SnapInj
	Ej       []SnapEj
	Queue    []int64 // source queue, front first
	Recovery []SnapPending
	Retry    []SnapPending
	Gen      traffic.GenState
	Limiter  []uint64 // nil for stateless limiters
	Blocked  []int32
	LastTx   []int64
	ArbNext  []int32
}

// Snapshot is the complete serializable state of an Engine between cycles.
// All fields are exported plain data so encoding/gob handles it without
// custom marshalling.
type Snapshot struct {
	// Config is the canonical digest of the engine's configuration
	// (ConfigDigest). RestoreEngine refuses a config whose digest differs —
	// except for Workers, which is deliberately excluded so a run may resume
	// at a different parallelism.
	Config string

	Now            int64
	NextID         int64
	Generated      int64
	Delivered      int64
	Recovered      int64
	Aborted        int64
	Retried        int64
	Dropped        int64
	SourcesStopped bool

	// Fault machinery position; the liveness slices are nil when fault
	// injection is off. Epoch is the routing epoch (liveness-changing events
	// applied so far; 0 on fault-free runs and on snapshots from engines
	// predating epoched routing).
	FaultIdx  int
	Epoch     uint64
	LinksUp   []bool
	RoutersUp []bool

	Messages []SnapMessage
	Nodes    []SnapNode
	Stats    stats.CollectorState

	// Metrics holds the registry samples of a metrics-enabled engine (nil
	// otherwise). RestoreEngine does not touch metrics; callers re-enable
	// them on the restored engine and Registry.Restore these samples so
	// mirrored totals continue seamlessly.
	Metrics []metrics.Sample
}

// ConfigDigest returns a canonical one-line description of everything in
// cfg that influences simulation results, EXCLUDING the worker count (the
// parallel engine is bit-identical to serial, so a checkpoint may be resumed
// at any parallelism). Func-typed fields are represented by their names; the
// fault schedule and retry policy are spelled out event by event.
func ConfigDigest(cfg Config) (string, error) {
	if err := cfg.validate(); err != nil {
		return "", err
	}
	m := cfg.Manifest()
	delete(m, "workers")
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%v ", k, m[k])
	}
	if !cfg.Faults.Empty() {
		fmt.Fprintf(&b, "retry=%d/%d/%d ", cfg.Retry.MaxRetries, cfg.Retry.BackoffBase, cfg.Retry.BackoffCap)
		b.WriteString("faults=[")
		for _, ev := range cfg.Faults.Events() {
			fmt.Fprintf(&b, "%d:%d:%d:%d ", ev.Cycle, ev.Kind, ev.Node, ev.Port)
		}
		b.WriteString("]")
	}
	return strings.TrimSpace(b.String()), nil
}

func snapRoute(r routeInfo) SnapRoute {
	return SnapRoute{Valid: r.valid, Eject: r.eject, OutPort: int8(r.outPort), OutVC: r.outVC, EjCh: r.ejCh, Epoch: r.epoch}
}

func loadRoute(s SnapRoute) routeInfo {
	return routeInfo{valid: s.Valid, eject: s.Eject, outPort: topology.Port(s.OutPort), outVC: s.OutVC, ejCh: s.EjCh, epoch: s.Epoch}
}

// Snapshot captures the engine's complete state. It must be called between
// Step calls (never from inside a listener or sample hook). The engine is
// not modified; the returned snapshot shares nothing with it.
func (e *Engine) Snapshot() (*Snapshot, error) {
	digest, err := ConfigDigest(e.cfg)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		Config:         digest,
		Now:            e.now,
		NextID:         int64(e.nextID),
		Generated:      e.generated,
		Delivered:      e.delivered,
		Recovered:      e.recovered,
		Aborted:        e.aborted,
		Retried:        e.retried,
		Dropped:        e.dropped,
		SourcesStopped: e.sourcesStopped,
		FaultIdx:       e.faultIdx,
		Epoch:          e.epoch,
		Stats:          e.col.State(),
	}
	if e.live != nil {
		nPorts := e.topo.NumPorts()
		s.LinksUp = make([]bool, len(e.nodes)*nPorts)
		s.RoutersUp = make([]bool, len(e.nodes))
		for n := range e.nodes {
			id := topology.NodeID(n)
			s.RoutersUp[n] = e.live.RouterAlive(id)
			for p := 0; p < nPorts; p++ {
				s.LinksUp[n*nPorts+p] = e.live.LinkUp(id, topology.Port(p))
			}
		}
	}
	if e.metReg != nil {
		s.Metrics = e.metReg.Snapshot()
	}

	// Collect every reachable message exactly once, then serialize the
	// per-node state referencing them by ID.
	seen := make(map[*message.Message]struct{})
	var msgs []*message.Message
	add := func(m *message.Message) {
		if m == nil {
			return
		}
		if _, ok := seen[m]; ok {
			return
		}
		seen[m] = struct{}{}
		msgs = append(msgs, m)
	}
	nVC := e.numPhys * e.cfg.VCs
	s.Nodes = make([]SnapNode, len(e.nodes))
	for i := range e.nodes {
		nd := &e.nodes[i]
		sn := &s.Nodes[i]

		sn.In = make([]SnapVC, nVC)
		for c := 0; c < nVC; c++ {
			ivc := &nd.in[c]
			n := ivc.buf.Len()
			if n > 0 {
				flits := make([]SnapFlit, n)
				for j := 0; j < n; j++ {
					f := ivc.buf.At(j)
					add(f.Msg)
					flits[j] = SnapFlit{Msg: int64(f.Msg.ID), Seq: f.Seq, Head: f.Head, Tail: f.Tail}
				}
				sn.In[c].Flits = flits
			}
			sn.In[c].Route = snapRoute(nd.routes[c])
		}

		sn.OutOwner = make([]int64, nVC)
		for v := 0; v < nVC; v++ {
			if m := nd.outVCs[v].Owner(); m != nil {
				add(m)
				sn.OutOwner[v] = int64(m.ID)
			} else {
				sn.OutOwner[v] = -1
			}
		}

		sn.Inj = make([]SnapInj, len(nd.inj))
		for j := range nd.inj {
			ic := &nd.inj[j]
			si := SnapInj{Msg: -1}
			if ic.msg != nil {
				add(ic.msg)
				si = SnapInj{
					Msg:   int64(ic.msg.ID),
					Route: snapRoute(ic.route),
					Left:  ic.left,
					Len:   ic.len,
					Dst:   int32(ic.dst),
				}
			}
			sn.Inj[j] = si
		}

		sn.Ej = make([]SnapEj, len(nd.ej))
		for j := range nd.ej {
			ec := &nd.ej[j]
			se := SnapEj{Msg: -1}
			if ec.msg != nil {
				add(ec.msg)
				se = SnapEj{Msg: int64(ec.msg.ID), Pending: ec.pending}
			}
			sn.Ej[j] = se
		}

		if n := nd.queue.Len(); n > 0 {
			sn.Queue = make([]int64, n)
			for j := 0; j < n; j++ {
				m := nd.queue.At(j)
				add(m)
				sn.Queue[j] = int64(m.ID)
			}
		}
		for _, pr := range nd.recovery {
			add(pr.msg)
			sn.Recovery = append(sn.Recovery, SnapPending{Msg: int64(pr.msg.ID), ReadyAt: pr.readyAt})
		}
		for _, pr := range nd.retry {
			add(pr.msg)
			sn.Retry = append(sn.Retry, SnapPending{Msg: int64(pr.msg.ID), ReadyAt: pr.readyAt})
		}

		gen, ok := nd.src.(traffic.Stateful)
		if !ok {
			return nil, fmt.Errorf("sim: generator %T is not snapshot-capable", nd.src)
		}
		gs, err := gen.SaveState()
		if err != nil {
			return nil, err
		}
		sn.Gen = gs

		if sl, ok := nd.limiter.(core.StatefulLimiter); ok {
			sn.Limiter = sl.SaveState()
		}

		sn.Blocked = nd.blocked.Counters()
		sn.LastTx = append([]int64(nil), nd.lastTx...)
		sn.ArbNext = make([]int32, len(nd.outArb))
		for j := range nd.outArb {
			sn.ArbNext[j] = int32(nd.outArb[j].Next())
		}
	}

	sort.Slice(msgs, func(a, b int) bool { return msgs[a].ID < msgs[b].ID })
	s.Messages = make([]SnapMessage, len(msgs))
	for i, m := range msgs {
		sm := SnapMessage{
			ID:           int64(m.ID),
			Src:          int32(m.Src),
			Dst:          int32(m.Dst),
			Length:       int32(m.Length),
			GenTime:      m.GenTime,
			InjectTime:   m.InjectTime,
			DeliverTime:  m.DeliverTime,
			State:        int8(m.State),
			Injector:     int32(m.Injector),
			FlitsSent:    int32(m.FlitsSent),
			FlitsEjected: int32(m.FlitsEjected),
			Recoveries:   int32(m.Recoveries),
			Retries:      int32(m.Retries),
			DropReason:   string(m.DropReason),
			Measured:     m.Measured,
			Pooled:       m.Pooled,
		}
		if len(m.Path) > 0 {
			sm.Path = make([]SnapPath, len(m.Path))
			for j, pl := range m.Path {
				sm.Path[j] = SnapPath{Node: int32(pl.Node), Port: int8(pl.Port), VC: pl.VC}
			}
		}
		s.Messages[i] = sm
	}
	return s, nil
}

// RestoreEngine builds a fresh engine from cfg and loads snap into it,
// returning an engine that continues the snapshotted run bit-identically.
// cfg must describe the same run as the snapshotting engine's config
// (ConfigDigest equality); only Workers may differ. Trace listeners, metrics
// and sample hooks are not restored — re-attach them on the returned engine
// (and Registry.Restore snap.Metrics after EnableMetrics to continue
// mirrored totals).
func RestoreEngine(cfg Config, snap *Snapshot) (*Engine, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	digest, err := ConfigDigest(e.cfg)
	if err != nil {
		return nil, err
	}
	if digest != snap.Config {
		e.Close()
		return nil, fmt.Errorf("%w: snapshot taken with config %q, restoring into %q",
			ErrSnapshotConfig, snap.Config, digest)
	}
	if err := e.load(snap); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

// load populates a freshly constructed engine from snap.
func (e *Engine) load(snap *Snapshot) error {
	nVC := e.numPhys * e.cfg.VCs
	if len(snap.Nodes) != len(e.nodes) {
		return fmt.Errorf("%w: %d nodes, engine has %d", ErrSnapshotInvalid, len(snap.Nodes), len(e.nodes))
	}

	e.now = snap.Now
	e.nextID = message.ID(snap.NextID)
	e.generated = snap.Generated
	e.delivered = snap.Delivered
	e.recovered = snap.Recovered
	e.aborted = snap.Aborted
	e.retried = snap.Retried
	e.dropped = snap.Dropped
	e.sourcesStopped = snap.SourcesStopped

	// Fault machinery position.
	if e.live != nil {
		nPorts := e.topo.NumPorts()
		if len(snap.LinksUp) != len(e.nodes)*nPorts || len(snap.RoutersUp) != len(e.nodes) {
			return fmt.Errorf("%w: liveness masks sized %d/%d, want %d/%d",
				ErrSnapshotInvalid, len(snap.LinksUp), len(snap.RoutersUp), len(e.nodes)*nPorts, len(e.nodes))
		}
		for n := range e.nodes {
			id := topology.NodeID(n)
			e.live.SetRouter(id, snap.RoutersUp[n])
			for p := 0; p < nPorts; p++ {
				e.live.SetLink(id, topology.Port(p), snap.LinksUp[n*nPorts+p])
			}
		}
		if snap.FaultIdx < 0 || snap.FaultIdx > len(e.faultEvents) {
			return fmt.Errorf("%w: fault index %d of %d events", ErrSnapshotInvalid, snap.FaultIdx, len(e.faultEvents))
		}
		e.faultIdx = snap.FaultIdx
		e.epoch = snap.Epoch
		// The candidate table built at construction assumed an all-alive
		// mask; rebuild it under the restored liveness so routing decisions
		// continue exactly where the snapshotted engine left off.
		e.cand = buildCandTable(e.alg, e.topo.Nodes())
	} else if len(snap.LinksUp) != 0 || len(snap.RoutersUp) != 0 {
		return fmt.Errorf("%w: snapshot carries liveness state but faults are off", ErrSnapshotInvalid)
	}

	// Rebuild the message table.
	msgs := make(map[int64]*message.Message, len(snap.Messages))
	for i := range snap.Messages {
		sm := &snap.Messages[i]
		if _, dup := msgs[sm.ID]; dup {
			return fmt.Errorf("%w: duplicate message %d", ErrSnapshotInvalid, sm.ID)
		}
		if sm.Length < 1 {
			return fmt.Errorf("%w: message %d length %d", ErrSnapshotInvalid, sm.ID, sm.Length)
		}
		m := &message.Message{
			ID:           message.ID(sm.ID),
			Src:          topology.NodeID(sm.Src),
			Dst:          topology.NodeID(sm.Dst),
			Length:       int(sm.Length),
			GenTime:      sm.GenTime,
			InjectTime:   sm.InjectTime,
			DeliverTime:  sm.DeliverTime,
			State:        message.State(sm.State),
			Injector:     topology.NodeID(sm.Injector),
			FlitsSent:    int(sm.FlitsSent),
			FlitsEjected: int(sm.FlitsEjected),
			Recoveries:   int(sm.Recoveries),
			Retries:      int(sm.Retries),
			DropReason:   message.DropReason(sm.DropReason),
			Measured:     sm.Measured,
			Pooled:       sm.Pooled,
		}
		if len(sm.Path) > 0 {
			m.Path = make([]message.PathLoc, len(sm.Path))
			for j, pl := range sm.Path {
				m.Path[j] = message.PathLoc{Node: topology.NodeID(pl.Node), Port: topology.Port(pl.Port), VC: pl.VC}
			}
		}
		msgs[sm.ID] = m
	}
	get := func(id int64) (*message.Message, error) {
		m, ok := msgs[id]
		if !ok {
			return nil, fmt.Errorf("%w: reference to unknown message %d", ErrSnapshotInvalid, id)
		}
		return m, nil
	}

	for i := range e.nodes {
		nd := &e.nodes[i]
		sn := &snap.Nodes[i]
		if len(sn.In) != nVC || len(sn.OutOwner) != nVC ||
			len(sn.Inj) != len(nd.inj) || len(sn.Ej) != len(nd.ej) ||
			len(sn.Blocked) != nVC || len(sn.LastTx) != nVC ||
			len(sn.ArbNext) != len(nd.outArb) {
			return fmt.Errorf("%w: node %d state shape mismatch", ErrSnapshotInvalid, i)
		}

		// Input VC buffers + forwarding decisions; derive the occupancy
		// counters, status words and owner caches as we go.
		for c := 0; c < nVC; c++ {
			sv := &sn.In[c]
			ivc := &nd.in[c]
			p := int(e.portTab[c])
			bit := e.vcBit[c]
			for _, sf := range sv.Flits {
				m, err := get(sf.Msg)
				if err != nil {
					return err
				}
				if ivc.buf.Full() {
					return fmt.Errorf("%w: node %d vc %d overflows its buffer", ErrSnapshotInvalid, i, c)
				}
				ivc.buf.Push(message.Flit{Msg: m, Seq: sf.Seq, Head: sf.Head, Tail: sf.Tail})
			}
			if !ivc.buf.Empty() {
				nd.occVCs++
				nd.inEmpty[p] &^= bit
				if ivc.buf.Full() {
					nd.inFull[p] |= bit
				}
				owner := ivc.buf.FrontMessage()
				ivc.owner = owner
				ivc.dst = owner.Dst
			}
			if sv.Route.Valid {
				r := loadRoute(sv.Route)
				nd.routes[c] = r
				nd.routed[p] |= bit
				if r.eject {
					nd.swDesc[c] = uint16(e.numPhys+int(r.ejCh)) << 8
				} else {
					nd.swDesc[c] = uint16(r.outPort)<<8 | uint16(r.outVC)
				}
			}
		}

		for v := 0; v < nVC; v++ {
			if id := sn.OutOwner[v]; id >= 0 {
				m, err := get(id)
				if err != nil {
					return err
				}
				nd.outVCs[v].Allocate(m)
				nd.freeMask[v/e.cfg.VCs] &^= uint32(1) << uint(v%e.cfg.VCs)
			}
		}

		for j := range nd.inj {
			si := &sn.Inj[j]
			if si.Msg < 0 {
				continue
			}
			m, err := get(si.Msg)
			if err != nil {
				return err
			}
			nd.inj[j] = injChannel{
				msg:   m,
				route: loadRoute(si.Route),
				left:  si.Left,
				len:   si.Len,
				dst:   topology.NodeID(si.Dst),
			}
			nd.busyInj++
		}

		for j := range nd.ej {
			se := &sn.Ej[j]
			if se.Msg < 0 {
				continue
			}
			m, err := get(se.Msg)
			if err != nil {
				return err
			}
			nd.ej[j] = ejChannel{msg: m, pending: se.Pending}
		}

		for _, id := range sn.Queue {
			m, err := get(id)
			if err != nil {
				return err
			}
			nd.queue.Push(m)
		}
		for _, sp := range sn.Recovery {
			m, err := get(sp.Msg)
			if err != nil {
				return err
			}
			nd.recovery = append(nd.recovery, pendingRecovery{msg: m, readyAt: sp.ReadyAt})
		}
		for _, sp := range sn.Retry {
			m, err := get(sp.Msg)
			if err != nil {
				return err
			}
			nd.retry = append(nd.retry, pendingRetry{msg: m, readyAt: sp.ReadyAt})
		}

		gen, ok := nd.src.(traffic.Stateful)
		if !ok {
			return fmt.Errorf("sim: generator %T is not snapshot-capable", nd.src)
		}
		if err := gen.LoadState(sn.Gen); err != nil {
			return fmt.Errorf("%w: node %d: %v", ErrSnapshotInvalid, i, err)
		}
		nd.nextGen = nd.src.NextAt()

		sl, stateful := nd.limiter.(core.StatefulLimiter)
		if stateful != (sn.Limiter != nil) {
			return fmt.Errorf("%w: node %d limiter statefulness mismatch", ErrSnapshotInvalid, i)
		}
		if stateful {
			if err := sl.LoadState(sn.Limiter); err != nil {
				return fmt.Errorf("%w: node %d: %v", ErrSnapshotInvalid, i, err)
			}
		}

		if err := nd.blocked.RestoreCounters(sn.Blocked); err != nil {
			return fmt.Errorf("%w: node %d: %v", ErrSnapshotInvalid, i, err)
		}
		copy(nd.lastTx, sn.LastTx)
		for j := range nd.outArb {
			nx := int(sn.ArbNext[j])
			if nx < 0 || nx >= nd.outArb[j].N() {
				return fmt.Errorf("%w: node %d arbiter %d pointer %d", ErrSnapshotInvalid, i, j, nx)
			}
			nd.outArb[j].SetNext(nx)
		}
	}

	// The input-VC owner/dst caches follow message *paths*, not buffer
	// contents: a channel the head has already left but whose tail is still
	// upstream has an empty buffer yet stays owned — its route is live and
	// the body flits that keep arriving never carry the Head flag that
	// rewrites the cache. Restore the caches from each message's path so
	// drained-but-owned channels don't come back ownerless.
	for _, sm := range snap.Messages {
		m := msgs[sm.ID]
		for _, loc := range m.Path {
			if loc.Node < 0 || int(loc.Node) >= len(e.nodes) ||
				loc.Port < 0 || int(loc.Port) >= e.numPhys ||
				loc.VC < 0 || int(loc.VC) >= e.cfg.VCs {
				return fmt.Errorf("%w: message %d path entry (%d,%d,%d) out of range",
					ErrSnapshotInvalid, m.ID, loc.Node, loc.Port, loc.VC)
			}
			ivc := &e.nodes[loc.Node].in[e.inVCIndex(loc.Port, loc.VC)]
			ivc.owner = m
			ivc.dst = m.Dst
		}
	}

	if err := e.col.Restore(snap.Stats); err != nil {
		return fmt.Errorf("%w: %v", ErrSnapshotInvalid, err)
	}
	if err := e.CheckInvariants(); err != nil {
		return fmt.Errorf("%w: restored engine fails invariants: %v", ErrSnapshotInvalid, err)
	}
	return nil
}
