package sim

import (
	"sort"

	"wormnet/internal/fault"
	"wormnet/internal/message"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
)

// This file is the engine side of fault injection: applying scheduled link
// and router failures to the liveness mask at cycle boundaries, killing the
// in-flight messages whose wormhole paths die, and feeding the killed
// messages back to their sources with capped exponential backoff (or
// dropping them once the retry limit is exhausted or an endpoint is gone).
//
// Everything here runs only when the run has a fault schedule (e.live is
// non-nil); a fault-free engine never reaches this code.
//
// Kill sets are collected from router state rather than a global message
// index: a message's tracked path lives on the message itself
// (message.Message.Path), and every in-flight message is reachable from
// some buffer front, output virtual-channel owner or injection channel —
// each path entry implies the upstream allocation is still held or the
// buffer still holds flits. processKills sorts and deduplicates, so the
// collection order never leaks into simulation state.

// phaseFaults applies every scheduled fault event whose cycle has arrived,
// then promotes fault retries whose backoff has expired back to the front
// of their source queues. It runs before traffic generation, so a failure
// at cycle t is visible to every decision of cycle t. The parallel path
// splits the two halves: applyDueFaults stays serial (teardowns cross
// shards) while the promotion walk runs sharded (promoteRetriesRange).
func (e *Engine) phaseFaults() {
	e.applyDueFaults()
	for i := range e.nodes {
		nd := &e.nodes[i]
		if len(nd.retry) > 0 {
			e.promoteRetries(nd)
		}
	}
}

// applyDueFaults executes the scheduled fault events that have come due.
// Each state-changing event bumps the routing epoch; when the batch changed
// anything, the engine reconfigures once before the cycle's phases: the
// candidate table is rebuilt under the new mask and surviving routes are
// revalidated to the new epoch. On the parallel path this runs serially in
// stepParallel before the shards wake, so epoch flips are bit-identical at
// any worker count.
func (e *Engine) applyDueFaults() {
	before := e.epoch
	for e.faultIdx < len(e.faultEvents) && e.faultEvents[e.faultIdx].Cycle <= e.now {
		e.applyFault(e.faultEvents[e.faultIdx])
		e.faultIdx++
	}
	if e.epoch != before {
		e.reconfigure()
	}
}

// applyFault executes one schedule event against the liveness mask and
// tears down whatever the failure severed. Events that do not change state
// (failing a failed component, repairing a healthy one) are ignored; every
// effective event — repairs included — advances the routing epoch.
func (e *Engine) applyFault(ev fault.Event) {
	switch ev.Kind {
	case fault.LinkDown:
		if !e.live.SetLink(ev.Node, ev.Port, false) {
			return
		}
		e.epoch++
		e.col.OnFault(e.now)
		e.emitFault(trace.KindFault, ev.Node)
		e.killOnLink(ev.Node, ev.Port)
	case fault.LinkUp:
		if e.live.SetLink(ev.Node, ev.Port, true) {
			e.epoch++
			e.emitFault(trace.KindRepair, ev.Node)
		}
	case fault.RouterDown:
		if !e.live.SetRouter(ev.Node, false) {
			return
		}
		e.epoch++
		e.col.OnFault(e.now)
		e.emitFault(trace.KindFault, ev.Node)
		e.killOnRouter(ev.Node)
	case fault.RouterUp:
		if e.live.SetRouter(ev.Node, true) {
			e.epoch++
			e.emitFault(trace.KindRepair, ev.Node)
		}
	}
}

// emitFault publishes a component-level fault/repair event; there is no
// associated message, so the message ID is -1.
func (e *Engine) emitFault(kind trace.Kind, node topology.NodeID) {
	if e.listener == nil {
		return
	}
	e.listener.Emit(trace.Event{
		Cycle: e.now, Kind: kind, Msg: -1, Src: node, Dst: node, Node: node,
	})
}

// killOnLink kills every in-flight message whose occupied path crosses the
// now-dead channel (node, port). A wormhole that loses any link of its path
// is severed: the whole message is torn down and handed back to its source.
//
// A message holds the link exactly while its path tracks the downstream
// input buffer, and for that whole window it either still owns the upstream
// output virtual channel or still has flits in the buffer (the entry is
// removed the moment the tail pops). Scanning the link's virtual channels
// therefore finds exactly the messages the old global path index would.
func (e *Engine) killOnLink(n topology.NodeID, p topology.Port) {
	src := &e.nodes[n]
	down := &e.nodes[e.topo.Neighbor(n, p)]
	inPort := topology.Opposite(p)
	kills := e.killScratch[:0]
	for v := 0; v < e.cfg.VCs; v++ {
		if m := src.out[p].VCs[v].Owner(); m != nil {
			kills = append(kills, m)
		}
		if m := down.in[int(inPort)*e.cfg.VCs+v].buf.FrontMessage(); m != nil {
			kills = append(kills, m)
		}
	}
	e.processKills(kills, n)
}

// killOnRouter kills every in-flight message touching the now-dead router
// n — flits buffered at n, paths crossing a channel into or out of n, or
// messages addressed to n — drops everything queued at n (a crashed node
// loses its volatile state), and kills whatever its injection channels were
// streaming in.
func (e *Engine) killOnRouter(n topology.NodeID) {
	kills := e.killScratch[:0]
	hit := func(m *message.Message) {
		if m.Dst == n {
			kills = append(kills, m)
			return
		}
		for _, loc := range m.Path {
			if loc.Node == n || e.topo.Neighbor(loc.Node, loc.Port) == n {
				kills = append(kills, m)
				return
			}
		}
	}
	// Every in-flight message holds at least one buffer front, output
	// virtual channel or injection channel somewhere, so this scan
	// enumerates them all; processKills deduplicates the overlap.
	for i := range e.nodes {
		nd := &e.nodes[i]
		for a := range nd.in {
			if m := nd.in[a].buf.FrontMessage(); m != nil {
				hit(m)
			}
		}
		for v := range nd.outVCs {
			if m := nd.outVCs[v].Owner(); m != nil {
				hit(m)
			}
		}
		for c := range nd.inj {
			m := nd.inj[c].msg
			if m == nil {
				continue
			}
			if nd.id == n {
				kills = append(kills, m)
			} else {
				hit(m)
			}
		}
	}
	e.processKills(kills, n)

	// The dead node's own backlog is lost with it.
	nd := &e.nodes[n]
	for i := 0; i < nd.queue.Len(); i++ {
		e.drop(nd.queue.At(i), n, message.DropSourceFailed)
	}
	nd.queue.Clear()
	for _, pr := range nd.recovery {
		e.drop(pr.msg, n, message.DropSourceFailed)
	}
	nd.recovery = nil
	for _, pr := range nd.retry {
		e.drop(pr.msg, n, message.DropSourceFailed)
	}
	nd.retry = nil
}

// processKills deduplicates the collected messages, orders them by ID
// (collection order must not leak into simulation state) and kills each.
func (e *Engine) processKills(kills []*message.Message, at topology.NodeID) {
	sort.Slice(kills, func(i, j int) bool { return kills[i].ID < kills[j].ID })
	for i, m := range kills {
		if i > 0 && kills[i-1] == m {
			continue
		}
		e.kill(m, at)
	}
	e.killScratch = kills[:0]
}

// kill tears message m out of the network and decides its fate: a source
// retry after backoff, or a permanent drop when an endpoint router is dead
// or the retry budget is spent.
func (e *Engine) kill(m *message.Message, at topology.NodeID) {
	e.teardown(m)
	e.aborted++
	e.col.OnAborted(e.now)
	e.emit(trace.KindAborted, m, at)
	switch {
	case !e.live.RouterAlive(m.Dst):
		e.drop(m, at, message.DropUnreachable)
	case !e.live.RouterAlive(m.Src):
		e.drop(m, at, message.DropSourceFailed)
	case e.cfg.Retry.Exhausted(m.Retries):
		e.drop(m, at, message.DropRetriesExhausted)
	default:
		e.scheduleRetry(m)
	}
}

// scheduleRetry re-arms a killed message at its original source with the
// policy's capped exponential backoff.
func (e *Engine) scheduleRetry(m *message.Message) {
	m.ResetForRetry(m.Src)
	if e.spans != nil {
		e.spanTeardown(m)
	}
	delay := e.cfg.Retry.Delay(m.Retries - 1)
	src := &e.nodes[m.Src]
	src.retry = append(src.retry, pendingRetry{msg: m, readyAt: e.now + delay})
	e.retried++
	e.col.OnRetried(e.now)
	e.emit(trace.KindRetried, m, m.Src)
}

// drop permanently removes a message from the workload with the given
// reason. The caller has already detached it from all network state, so a
// pool-born message can be recycled immediately.
func (e *Engine) drop(m *message.Message, at topology.NodeID, reason message.DropReason) {
	m.Drop(reason)
	e.dropped++
	e.col.OnDropped(e.now)
	e.emit(trace.KindDropped, m, at)
	if e.spans != nil {
		e.spanDiscard(m)
	}
	e.releaseMessage(m)
}

// promoteRetries moves retries whose backoff expired to the front of the
// source queue (oldest first — retried traffic keeps the paper's
// pending-before-new priority), dropping any whose destination died while
// they waited.
func (e *Engine) promoteRetries(nd *node) {
	var ready []*message.Message
	rest := nd.retry[:0]
	for _, pr := range nd.retry {
		switch {
		case pr.readyAt > e.now:
			rest = append(rest, pr)
		case !e.live.RouterAlive(pr.msg.Dst):
			e.drop(pr.msg, nd.id, message.DropUnreachable)
		default:
			ready = append(ready, pr.msg)
		}
	}
	nd.retry = rest
	nd.queue.PushFront(ready)
}
