package sim

import (
	"sort"

	"wormnet/internal/fault"
	"wormnet/internal/message"
	"wormnet/internal/topology"
	"wormnet/internal/trace"
)

// This file is the engine side of fault injection: applying scheduled link
// and router failures to the liveness mask at cycle boundaries, killing the
// in-flight messages whose wormhole paths die, and feeding the killed
// messages back to their sources with capped exponential backoff (or
// dropping them once the retry limit is exhausted or an endpoint is gone).
//
// Everything here runs only when the run has a fault schedule (e.live is
// non-nil); a fault-free engine never reaches this code.

// phaseFaults applies every scheduled fault event whose cycle has arrived,
// then promotes fault retries whose backoff has expired back to the front
// of their source queues. It runs before traffic generation, so a failure
// at cycle t is visible to every decision of cycle t.
func (e *Engine) phaseFaults() {
	for e.faultIdx < len(e.faultEvents) && e.faultEvents[e.faultIdx].Cycle <= e.now {
		e.applyFault(e.faultEvents[e.faultIdx])
		e.faultIdx++
	}
	for _, nd := range e.nodes {
		if len(nd.retry) > 0 {
			e.promoteRetries(nd)
		}
	}
}

// applyFault executes one schedule event against the liveness mask and
// tears down whatever the failure severed. Events that do not change state
// (failing a failed component, repairing a healthy one) are ignored.
func (e *Engine) applyFault(ev fault.Event) {
	switch ev.Kind {
	case fault.LinkDown:
		if !e.live.SetLink(ev.Node, ev.Port, false) {
			return
		}
		e.col.OnFault(e.now)
		e.emitFault(trace.KindFault, ev.Node)
		e.killOnLink(ev.Node, ev.Port)
	case fault.LinkUp:
		if e.live.SetLink(ev.Node, ev.Port, true) {
			e.emitFault(trace.KindRepair, ev.Node)
		}
	case fault.RouterDown:
		if !e.live.SetRouter(ev.Node, false) {
			return
		}
		e.col.OnFault(e.now)
		e.emitFault(trace.KindFault, ev.Node)
		e.killOnRouter(ev.Node)
	case fault.RouterUp:
		if e.live.SetRouter(ev.Node, true) {
			e.emitFault(trace.KindRepair, ev.Node)
		}
	}
}

// emitFault publishes a component-level fault/repair event; there is no
// associated message, so the message ID is -1.
func (e *Engine) emitFault(kind trace.Kind, node topology.NodeID) {
	if e.listener == nil {
		return
	}
	e.listener.Emit(trace.Event{
		Cycle: e.now, Kind: kind, Msg: -1, Src: node, Dst: node, Node: node,
	})
}

// killOnLink kills every in-flight message whose occupied path crosses the
// now-dead channel (node, port). A wormhole that loses any link of its path
// is severed: the whole message is torn down and handed back to its source.
func (e *Engine) killOnLink(n topology.NodeID, p topology.Port) {
	// The channel (n, p) feeds the input buffer (Opposite(p)) of the
	// neighbouring node; any tracked path containing that buffer (on any
	// virtual channel) crosses the link.
	down := e.topo.Neighbor(n, p)
	inPort := topology.Opposite(p)
	kills := e.killScratch[:0]
	for m, path := range e.paths {
		for _, loc := range path {
			if loc.node == down && loc.port == inPort {
				kills = append(kills, m)
				break
			}
		}
	}
	e.processKills(kills, n)
}

// killOnRouter kills every in-flight message touching the now-dead router
// n — flits buffered at n, paths crossing a channel into or out of n, or
// messages addressed to n — drops everything queued at n (a crashed node
// loses its volatile state), and kills whatever its injection channels were
// streaming in.
func (e *Engine) killOnRouter(n topology.NodeID) {
	kills := e.killScratch[:0]
	for m, path := range e.paths {
		if m.Dst == n {
			kills = append(kills, m)
			continue
		}
		for _, loc := range path {
			if loc.node == n || e.topo.Neighbor(loc.node, loc.port) == n {
				kills = append(kills, m)
				break
			}
		}
	}
	// Messages without tracked paths: unrouted injection channels at n, and
	// unrouted injection channels anywhere streaming toward n.
	for _, nd := range e.nodes {
		for i := range nd.inj {
			m := nd.inj[i].msg
			if m != nil && (nd.id == n || m.Dst == n) {
				kills = append(kills, m)
			}
		}
	}
	e.processKills(kills, n)

	// The dead node's own backlog is lost with it.
	nd := e.nodes[n]
	for _, m := range nd.queue {
		e.drop(m, n, message.DropSourceFailed)
	}
	nd.queue = nil
	for _, pr := range nd.recovery {
		e.drop(pr.msg, n, message.DropSourceFailed)
	}
	nd.recovery = nil
	for _, pr := range nd.retry {
		e.drop(pr.msg, n, message.DropSourceFailed)
	}
	nd.retry = nil
}

// processKills deduplicates the collected messages, orders them by ID (map
// iteration order must not leak into simulation state) and kills each.
func (e *Engine) processKills(kills []*message.Message, at topology.NodeID) {
	sort.Slice(kills, func(i, j int) bool { return kills[i].ID < kills[j].ID })
	for i, m := range kills {
		if i > 0 && kills[i-1] == m {
			continue
		}
		e.kill(m, at)
	}
	e.killScratch = kills[:0]
}

// kill tears message m out of the network and decides its fate: a source
// retry after backoff, or a permanent drop when an endpoint router is dead
// or the retry budget is spent.
func (e *Engine) kill(m *message.Message, at topology.NodeID) {
	e.teardown(m)
	e.aborted++
	e.col.OnAborted(e.now)
	e.emit(trace.KindAborted, m, at)
	switch {
	case !e.live.RouterAlive(m.Dst):
		e.drop(m, at, message.DropUnreachable)
	case !e.live.RouterAlive(m.Src):
		e.drop(m, at, message.DropSourceFailed)
	case e.cfg.Retry.Exhausted(m.Retries):
		e.drop(m, at, message.DropRetriesExhausted)
	default:
		e.scheduleRetry(m)
	}
}

// scheduleRetry re-arms a killed message at its original source with the
// policy's capped exponential backoff.
func (e *Engine) scheduleRetry(m *message.Message) {
	m.ResetForRetry(m.Src)
	delay := e.cfg.Retry.Delay(m.Retries - 1)
	src := e.nodes[m.Src]
	src.retry = append(src.retry, pendingRetry{msg: m, readyAt: e.now + delay})
	e.retried++
	e.col.OnRetried(e.now)
	e.emit(trace.KindRetried, m, m.Src)
}

// drop permanently removes a message from the workload with the given
// reason. The caller has already detached it from all network state.
func (e *Engine) drop(m *message.Message, at topology.NodeID, reason message.DropReason) {
	m.Drop(reason)
	e.dropped++
	e.col.OnDropped(e.now)
	e.emit(trace.KindDropped, m, at)
}

// promoteRetries moves retries whose backoff expired to the front of the
// source queue (oldest first — retried traffic keeps the paper's
// pending-before-new priority), dropping any whose destination died while
// they waited.
func (e *Engine) promoteRetries(nd *node) {
	var ready []*message.Message
	rest := nd.retry[:0]
	for _, pr := range nd.retry {
		switch {
		case pr.readyAt > e.now:
			rest = append(rest, pr)
		case !e.live.RouterAlive(pr.msg.Dst):
			e.drop(pr.msg, nd.id, message.DropUnreachable)
		default:
			ready = append(ready, pr.msg)
		}
	}
	nd.retry = rest
	if len(ready) > 0 {
		nd.queue = append(ready, nd.queue...)
	}
}
