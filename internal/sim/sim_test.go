package sim

import (
	"math"
	"testing"

	"wormnet/internal/baseline"
	"wormnet/internal/core"
	"wormnet/internal/message"
	"wormnet/internal/topology"
)

// idle returns a zero-rate engine for hand-built scenarios.
func idle(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := QuickConfig()
	cfg.Rate = 0
	cfg.Limiter, cfg.LimiterName = baseline.NewNone(), "none"
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func stepN(t *testing.T, e *Engine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		e.Step()
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: invariant violated: %v", e.Now(), err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.K = 1 },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.VCs = 0 },
		func(c *Config) { c.BufDepth = 0 },
		func(c *Config) { c.InjChannels = 0 },
		func(c *Config) { c.EjChannels = 0 },
		func(c *Config) { c.MsgLen = 0 },
		func(c *Config) { c.Rate = -0.1 },
		func(c *Config) { c.MeasureCycles = 0 },
		func(c *Config) { c.WarmupCycles = -1 },
		func(c *Config) { c.RecoveryDelay = -1 },
		func(c *Config) { c.Routing = "magic" },
		func(c *Config) { c.Routing = "dor"; c.VCs = 1 },
		func(c *Config) { c.Pattern = "nope" },
		func(c *Config) { c.K = 5; c.Pattern = "butterfly" }, // non-power-of-2
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// Defaults resolve.
	cfg := DefaultConfig()
	cfg.Routing, cfg.Pattern = "", ""
	cfg.Limiter, cfg.LimiterName = nil, ""
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Config().Routing != "tfar" || e.Config().Pattern != "uniform" || e.Config().LimiterName != "none" {
		t.Errorf("defaults not applied: %+v", e.Config())
	}
	if got := cfg.TotalCycles(); got != cfg.WarmupCycles+cfg.MeasureCycles+cfg.DrainCycles {
		t.Error("TotalCycles")
	}
}

func TestSingleMessageDelivery(t *testing.T) {
	e := idle(t, nil)
	tp := e.Topology()
	src := tp.FromCoords([]int{0, 0})
	dst := tp.FromCoords([]int{2, 1}) // distance 3
	m := e.Inject(src, dst, 16)

	stepN(t, e, 100)
	if m.State != message.StateDelivered {
		t.Fatalf("message not delivered after 100 cycles: %v", m)
	}
	// Expected latency: ~1 cycle queue + 1 routing per hop + 1 cycle/flit
	// pipeline: header needs ~2 cycles/hop, then 15 more flits drain.
	lat := m.Latency()
	minLat := int64(3 + 16 - 1) // absolute lower bound: hops + serialization
	if lat < minLat || lat > 4*minLat {
		t.Errorf("latency %d outside sanity range [%d, %d]", lat, minLat, 4*minLat)
	}
	if m.FlitsSent != 16 || m.FlitsEjected != 16 {
		t.Errorf("flit counts %d/%d", m.FlitsSent, m.FlitsEjected)
	}
	if e.Delivered() != 1 || e.InFlight() != 0 {
		t.Errorf("delivered=%d inflight=%d", e.Delivered(), e.InFlight())
	}
}

func TestNeighborMessageMinimalLatency(t *testing.T) {
	e := idle(t, nil)
	m := e.Inject(0, e.Topology().Neighbor(0, 0), 1)
	stepN(t, e, 20)
	if m.State != message.StateDelivered {
		t.Fatal("not delivered")
	}
	// 1 hop, 1 flit: inject-route(1) + move to neighbor(1) + route to
	// ejector(1) + eject(1) plus one cycle of queue/injection setup.
	if m.Latency() > 8 {
		t.Errorf("single-flit neighbor latency %d too high", m.Latency())
	}
}

func TestInjectValidation(t *testing.T) {
	e := idle(t, nil)
	for _, f := range []func(){
		func() { e.Inject(0, 0, 4) },
		func() { e.Inject(-1, 2, 4) },
		func() { e.Inject(0, 999, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestManyMessagesAllDelivered(t *testing.T) {
	e := idle(t, nil)
	tp := e.Topology()
	var msgs []*message.Message
	// Every node sends to every other node at distance <= 2, staggered.
	for s := 0; s < tp.Nodes(); s++ {
		for d := 0; d < tp.Nodes(); d++ {
			if s == d || tp.Distance(topology.NodeID(s), topology.NodeID(d)) > 2 {
				continue
			}
			msgs = append(msgs, e.Inject(topology.NodeID(s), topology.NodeID(d), 8))
		}
	}
	stepN(t, e, 600)
	for _, m := range msgs {
		if m.State != message.StateDelivered {
			t.Fatalf("undelivered: %v (recoveries=%d)", m, m.Recoveries)
		}
	}
	if e.InFlight() != 0 {
		t.Errorf("inflight=%d", e.InFlight())
	}
}

func TestLowLoadRunDeliversEverything(t *testing.T) {
	cfg := QuickConfig()
	cfg.Rate = 0.1
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 500, 2000, 1500
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < cfg.TotalCycles(); i++ {
		e.Step()
		if i%97 == 0 {
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
		}
	}
	r := e.Collector().Result()
	if r.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// At 0.1 flits/node/cycle the network is far below saturation:
	// accepted must track offered within statistical noise.
	if math.Abs(r.Accepted-0.1) > 0.015 {
		t.Errorf("accepted %.4f, offered 0.1", r.Accepted)
	}
	// Latency must be close to the no-load bound (a few tens of cycles on a
	// 4-ary 2-cube with 16-flit messages), far from saturation values.
	if r.AvgLatency < 16 || r.AvgLatency > 80 {
		t.Errorf("avg latency %.1f outside low-load range", r.AvgLatency)
	}
	if r.DeadlockPct > 0.5 {
		t.Errorf("deadlock rate %.2f%% at low load", r.DeadlockPct)
	}
	// Virtually everything generated must eventually be delivered.
	if e.InFlight() > int64(e.Topology().Nodes()) {
		t.Errorf("too many in flight after drain: %d", e.InFlight())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Result1 float64, d, g int64) {
		cfg := QuickConfig()
		cfg.Rate = 0.25
		cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 300, 1200, 300
		cfg.Seed = 99
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := e.Run()
		return r.AvgLatency, e.Delivered(), e.Generated()
	}
	l1, d1, g1 := run()
	l2, d2, g2 := run()
	if l1 != l2 || d1 != d2 || g1 != g2 {
		t.Errorf("runs differ: (%v,%d,%d) vs (%v,%d,%d)", l1, d1, g1, l2, d2, g2)
	}
}

func TestSeedsMatter(t *testing.T) {
	run := func(seed uint64) int64 {
		cfg := QuickConfig()
		cfg.Rate = 0.25
		cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 300, 1200, 300
		cfg.Seed = seed
		e, _ := New(cfg)
		e.Run()
		return e.Generated()
	}
	if run(1) == run(2) {
		t.Log("generated counts equal across seeds (possible but unlikely); checking latency")
		// Not a hard failure: counts can coincide. Determinism test above
		// covers the core property.
	}
}

// A ring of long messages each addressed 3 hops Plus with a single virtual
// channel is the classic wormhole deadlock: every header waits for the
// channel held by the next message around the ring. The detector must fire
// and recovery must still deliver every message.
func TestDeadlockDetectionAndRecovery(t *testing.T) {
	e := idle(t, func(c *Config) {
		c.K, c.N = 8, 1
		c.VCs = 1
		c.MsgLen = 64 // long enough to span several routers
		c.DetectionThreshold = 32
		c.RecoveryDelay = 16
		c.WarmupCycles = 0 // deadlocks happen immediately; measure from cycle 0
	})
	var msgs []*message.Message
	for s := 0; s < 8; s++ {
		msgs = append(msgs, e.Inject(topology.NodeID(s), topology.NodeID((s+3)%8), 64))
	}
	stepN(t, e, 4000)
	for _, m := range msgs {
		if m.State != message.StateDelivered {
			t.Fatalf("undelivered after recovery: %v (recoveries=%d, inflight=%d)",
				m, m.Recoveries, e.InFlight())
		}
	}
	if e.Recovered() == 0 {
		t.Error("expected at least one deadlock recovery in the ring scenario")
	}
	if e.Collector().Deadlocks() == 0 {
		t.Error("collector missed the deadlocks")
	}
}

// With 3 virtual channels and TFAR the same ring scenario usually resolves
// without deadlock; whatever happens, everything must be delivered and
// invariants must hold.
func TestRingWithVirtualChannels(t *testing.T) {
	e := idle(t, func(c *Config) {
		c.K, c.N = 8, 1
		c.VCs = 3
		c.RecoveryDelay = 16
	})
	var msgs []*message.Message
	for s := 0; s < 8; s++ {
		msgs = append(msgs, e.Inject(topology.NodeID(s), topology.NodeID((s+3)%8), 32))
	}
	stepN(t, e, 3000)
	for _, m := range msgs {
		if m.State != message.StateDelivered {
			t.Fatalf("undelivered: %v", m)
		}
	}
}

func TestRecoveredMessageKeepsLatencyCharge(t *testing.T) {
	e := idle(t, func(c *Config) {
		c.K, c.N = 8, 1
		c.VCs = 1
		c.DetectionThreshold = 16
		c.RecoveryDelay = 100
	})
	var msgs []*message.Message
	for s := 0; s < 8; s++ {
		msgs = append(msgs, e.Inject(topology.NodeID(s), topology.NodeID((s+3)%8), 64))
	}
	stepN(t, e, 6000)
	recovered := false
	for _, m := range msgs {
		if m.Recoveries > 0 && m.State == message.StateDelivered {
			recovered = true
			if m.Latency() < 100 {
				t.Errorf("recovered message latency %d below the recovery delay", m.Latency())
			}
		}
	}
	if !recovered {
		t.Skip("no message was recovered in this run (timing-dependent)")
	}
}

func TestDORRoutingRuns(t *testing.T) {
	cfg := QuickConfig()
	cfg.Routing = "dor"
	cfg.Rate = 0.15
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 300, 1500, 500
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < cfg.TotalCycles(); i++ {
		e.Step()
		if i%101 == 0 {
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
		}
	}
	r := e.Collector().Result()
	if r.Delivered == 0 {
		t.Fatal("DOR delivered nothing")
	}
	// DOR with dateline is deadlock-free: detector should stay quiet.
	if e.Recovered() != 0 {
		t.Errorf("DOR produced %d recoveries; the dateline scheme must be deadlock-free", e.Recovered())
	}
}

func TestALOThrottlesAtInjection(t *testing.T) {
	// Saturate a tiny ring with ALO: the source queue must hold messages
	// back rather than pile them into injection channels.
	cfg := QuickConfig()
	cfg.K, cfg.N = 4, 1
	cfg.VCs = 2
	cfg.Rate = 2.0 // far beyond capacity
	cfg.Limiter, cfg.LimiterName = core.NewALO(), "alo"
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 200, 1000, 200
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rALO := e.Run()
	// The paper reports <= 0.6% detected deadlocks with any limiter; allow
	// statistical headroom on this tiny ring.
	if rALO.DeadlockPct > 2.0 {
		t.Errorf("ALO deadlock rate %.2f%% should be negligible", rALO.DeadlockPct)
	}
	if rALO.Delivered == 0 {
		t.Fatal("ALO delivered nothing")
	}
	sq, _ := e.QueueLengths()
	if sq == 0 {
		t.Error("ALO at 2.0 flits/node/cycle should leave messages queued at sources")
	}
}

func TestStatsAccessors(t *testing.T) {
	e := idle(t, nil)
	if e.Now() != 0 || e.Collector() == nil || e.Topology() == nil {
		t.Error("accessors")
	}
	e.Step()
	if e.Now() != 1 {
		t.Error("Now after Step")
	}
	if e.Recovered() != 0 || e.Delivered() != 0 || e.Generated() != 0 {
		t.Error("counters on idle engine")
	}
	s, r := e.QueueLengths()
	if s != 0 || r != 0 {
		t.Error("queues on idle engine")
	}
}

func TestPatternsRunCleanly(t *testing.T) {
	for _, pat := range []string{"uniform", "butterfly", "complement", "bit-reversal", "perfect-shuffle", "transpose", "tornado"} {
		pat := pat
		t.Run(pat, func(t *testing.T) {
			t.Parallel()
			cfg := QuickConfig()
			cfg.Pattern = pat
			cfg.Rate = 0.12
			cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 300, 1200, 400
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := int64(0); i < cfg.TotalCycles(); i++ {
				e.Step()
				if i%211 == 0 {
					if err := e.CheckInvariants(); err != nil {
						t.Fatalf("cycle %d: %v", i, err)
					}
				}
			}
			if e.Delivered() == 0 {
				t.Fatal("nothing delivered")
			}
		})
	}
}

func TestWithHelpers(t *testing.T) {
	cfg := DefaultConfig()
	c2 := cfg.WithRate(0.55)
	if c2.Rate != 0.55 || cfg.Rate == 0.55 {
		t.Error("WithRate must copy")
	}
	c3 := cfg.WithLimiter("dril", baseline.NewDRIL())
	if c3.LimiterName != "dril" || cfg.LimiterName != "alo" {
		t.Error("WithLimiter must copy")
	}
}
