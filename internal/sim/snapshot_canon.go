package sim

// Canonical snapshot form — the model checker's state identity.
//
// Two engine states must hash equal iff their future behaviour is
// identical. The gob checkpoint encoding is unsuitable for that directly:
// it carries the config digest, all-time counters, stats and metrics
// (observers, not behaviour), and raw message IDs, which depend on the
// *order* messages were created — two schedules reaching the same logical
// state through different injection orders hold the same messages under
// different IDs. CanonicalBytes therefore re-encodes the snapshot with:
//
//   - message IDs remapped to dense indices in a fixed traversal order
//     (per node: input-VC flits, output-VC owners, injection channels,
//     ejection channels, source queue, recovery queue, retry queue) so any
//     schedule reaching the same configuration of worms yields the same
//     bytes;
//   - observer-only state dropped: config digest (the explorer pins the
//     config separately), NextID and the all-time generated/delivered/
//     recovered/aborted/retried/dropped counters, stats, metrics, and the
//     unobservable Pooled flag;
//   - everything behavioural kept, deliberately over-inclusive — merging
//     two states that differ in a behavioural field would be unsound
//     (the explorer would silently skip reachable futures), while keeping
//     a redundant field only costs dedup rate. That includes the absolute
//     clock, per-VC blockage counters and last-transmission cycles,
//     arbiter pointers, generator and limiter state, and message
//     timestamps/paths.
//
// The encoding is a flat deterministic byte stream (fixed-width
// little-endian scalars, length-prefixed slices) — no maps, no gob.
//
// The one place the engine orders by raw message ID is the fault-kill
// batch sort (fault.go), so on fault-capable configs the dense remap alone
// would merge states whose kill order differs. Fault-capable snapshots
// (liveness masks present) therefore also encode the permutation of
// canonical indices in ascending raw-ID order: states with the same worms
// but different relative creation order hash apart, making fault and repair
// actions soundly hashable — fault-schedule branching in the explorer needs
// no further care. Fault-free snapshots omit the permutation and keep the
// full cross-schedule dedup.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// canonWriter accumulates the canonical byte stream.
type canonWriter struct{ b []byte }

func (w *canonWriter) u64(v uint64) {
	var x [8]byte
	binary.LittleEndian.PutUint64(x[:], v)
	w.b = append(w.b, x[:]...)
}
func (w *canonWriter) i64(v int64) { w.u64(uint64(v)) }
func (w *canonWriter) i32(v int32) {
	var x [4]byte
	binary.LittleEndian.PutUint32(x[:], uint32(v))
	w.b = append(w.b, x[:]...)
}
func (w *canonWriter) boolean(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}
func (w *canonWriter) bytes(v []byte) {
	w.i32(int32(len(v)))
	w.b = append(w.b, v...)
}
func (w *canonWriter) str(v string) {
	w.i32(int32(len(v)))
	w.b = append(w.b, v...)
}
func (w *canonWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

// CanonicalBytes returns the canonical encoding of the snapshot. Snapshots
// of engines with the same ConfigDigest have equal CanonicalBytes iff they
// represent the same logical state; the config itself is NOT part of the
// encoding, so callers comparing across configs must pin the digest
// separately.
func (s *Snapshot) CanonicalBytes() ([]byte, error) {
	// Pass 1: assign dense canonical indices to message IDs in the fixed
	// traversal order.
	canon := make(map[int64]int32, len(s.Messages))
	assign := func(id int64) {
		if id < 0 {
			return
		}
		if _, ok := canon[id]; !ok {
			canon[id] = int32(len(canon))
		}
	}
	for i := range s.Nodes {
		sn := &s.Nodes[i]
		for c := range sn.In {
			for _, f := range sn.In[c].Flits {
				assign(f.Msg)
			}
		}
		for _, id := range sn.OutOwner {
			assign(id)
		}
		for _, si := range sn.Inj {
			assign(si.Msg)
		}
		for _, se := range sn.Ej {
			assign(se.Msg)
		}
		for _, id := range sn.Queue {
			assign(id)
		}
		for _, sp := range sn.Recovery {
			assign(sp.Msg)
		}
		for _, sp := range sn.Retry {
			assign(sp.Msg)
		}
	}
	// Snapshot() only stores reachable messages, so every message has been
	// assigned; s.Messages is sorted by raw ID, making any defensive
	// leftover ordering deterministic too.
	for i := range s.Messages {
		assign(s.Messages[i].ID)
	}
	ref := func(id int64) int32 {
		if id < 0 {
			return -1
		}
		return canon[id]
	}

	w := &canonWriter{b: make([]byte, 0, 1024)}
	w.str("wncanon2") // format tag, bump on layout change
	w.i64(s.Now)
	w.boolean(s.SourcesStopped)
	w.i32(int32(s.FaultIdx))
	w.u64(s.Epoch)
	w.i32(int32(len(s.LinksUp)))
	for _, up := range s.LinksUp {
		w.boolean(up)
	}
	w.i32(int32(len(s.RoutersUp)))
	for _, up := range s.RoutersUp {
		w.boolean(up)
	}

	// Messages in canonical order.
	byCanon := make([]*SnapMessage, len(canon))
	for i := range s.Messages {
		sm := &s.Messages[i]
		ci, ok := canon[sm.ID]
		if !ok {
			return nil, fmt.Errorf("%w: message %d in table but unreferenced", ErrSnapshotInvalid, sm.ID)
		}
		byCanon[ci] = sm
	}
	w.i32(int32(len(byCanon)))
	for ci, sm := range byCanon {
		if sm == nil {
			return nil, fmt.Errorf("%w: reference to message missing from table (canonical index %d)", ErrSnapshotInvalid, ci)
		}
		w.i32(sm.Src)
		w.i32(sm.Dst)
		w.i32(sm.Length)
		w.i64(sm.GenTime)
		w.i64(sm.InjectTime)
		w.i64(sm.DeliverTime)
		w.b = append(w.b, byte(sm.State))
		w.i32(sm.Injector)
		w.i32(sm.FlitsSent)
		w.i32(sm.FlitsEjected)
		w.i32(sm.Recoveries)
		w.i32(sm.Retries)
		w.str(sm.DropReason)
		w.boolean(sm.Measured)
		w.i32(int32(len(sm.Path)))
		for _, pl := range sm.Path {
			w.i32(pl.Node)
			w.b = append(w.b, byte(pl.Port), byte(pl.VC))
		}
	}

	// Fault-capable configs: the kill batch sort orders by raw message ID,
	// so the relative creation order of the in-flight messages is
	// behavioural state. Encode it as the canonical indices in ascending
	// raw-ID order (s.Messages is already raw-ID-sorted). Fault-free
	// configs skip this, keeping the full cross-schedule dedup.
	if len(s.LinksUp) > 0 || len(s.RoutersUp) > 0 {
		w.i32(int32(len(s.Messages)))
		for i := range s.Messages {
			w.i32(canon[s.Messages[i].ID])
		}
	}

	route := func(r SnapRoute) {
		w.boolean(r.Valid)
		w.boolean(r.Eject)
		w.b = append(w.b, byte(r.OutPort), byte(r.OutVC), byte(r.EjCh))
		w.b = append(w.b, byte(r.Epoch), byte(r.Epoch>>8))
	}
	w.i32(int32(len(s.Nodes)))
	for i := range s.Nodes {
		sn := &s.Nodes[i]
		w.i32(int32(len(sn.In)))
		for c := range sn.In {
			sv := &sn.In[c]
			w.i32(int32(len(sv.Flits)))
			for _, f := range sv.Flits {
				w.i32(ref(f.Msg))
				w.i32(f.Seq)
				w.boolean(f.Head)
				w.boolean(f.Tail)
			}
			route(sv.Route)
		}
		w.i32(int32(len(sn.OutOwner)))
		for _, id := range sn.OutOwner {
			w.i32(ref(id))
		}
		w.i32(int32(len(sn.Inj)))
		for _, si := range sn.Inj {
			w.i32(ref(si.Msg))
			route(si.Route)
			w.i32(si.Left)
			w.i32(si.Len)
			w.i32(si.Dst)
		}
		w.i32(int32(len(sn.Ej)))
		for _, se := range sn.Ej {
			w.i32(ref(se.Msg))
			w.i32(se.Pending)
		}
		w.i32(int32(len(sn.Queue)))
		for _, id := range sn.Queue {
			w.i32(ref(id))
		}
		w.i32(int32(len(sn.Recovery)))
		for _, sp := range sn.Recovery {
			w.i32(ref(sp.Msg))
			w.i64(sp.ReadyAt)
		}
		w.i32(int32(len(sn.Retry)))
		for _, sp := range sn.Retry {
			w.i32(ref(sp.Msg))
			w.i64(sp.ReadyAt)
		}
		w.boolean(sn.Gen.Bursty)
		w.bytes(sn.Gen.PCG)
		w.bytes(sn.Gen.PhasePCG)
		w.f64(sn.Gen.Next)
		w.boolean(sn.Gen.On)
		w.f64(sn.Gen.PhaseEnds)
		w.boolean(sn.Gen.Script)
		w.i64(sn.Gen.Pos)
		w.i32(int32(len(sn.Limiter)))
		for _, word := range sn.Limiter {
			w.u64(word)
		}
		w.i32(int32(len(sn.Blocked)))
		for _, b := range sn.Blocked {
			w.i32(b)
		}
		w.i32(int32(len(sn.LastTx)))
		for _, tx := range sn.LastTx {
			w.i64(tx)
		}
		w.i32(int32(len(sn.ArbNext)))
		for _, nx := range sn.ArbNext {
			w.i32(nx)
		}
	}
	return w.b, nil
}

// CanonicalHash returns the SHA-256 of CanonicalBytes — the visited-set key
// of the model checker.
func (s *Snapshot) CanonicalHash() ([32]byte, error) {
	b, err := s.CanonicalBytes()
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(b), nil
}
