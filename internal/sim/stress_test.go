package sim

import (
	"testing"

	"wormnet/internal/baseline"
	"wormnet/internal/core"
)

// TestRandomConfigsKeepInvariants drives the engine across a grid of
// randomized-but-valid configurations — topology shape, virtual-channel
// count, buffer depth, message length, load, limiter, routing — and checks
// the global invariants every cycle. This is the sharpest correctness net
// for the flit pipeline: any double-allocation, credit overflow, path
// mis-tracking or recovery leak trips it.
func TestRandomConfigsKeepInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	type variant struct {
		name    string
		mutate  func(*Config)
		cycles  int64
		checkEv int64
	}
	variants := []variant{
		{"tiny-ring-1vc", func(c *Config) {
			c.K, c.N, c.VCs, c.MsgLen, c.Rate = 4, 1, 1, 8, 0.8
			c.DetectionThreshold, c.RecoveryDelay = 16, 8
		}, 2500, 1},
		{"ring8-2vc-long", func(c *Config) {
			c.K, c.N, c.VCs, c.MsgLen, c.Rate = 8, 1, 2, 32, 0.6
			c.DetectionThreshold, c.RecoveryDelay = 24, 32
		}, 2500, 1},
		{"mesh-deep-buffers", func(c *Config) {
			c.K, c.N, c.VCs, c.BufDepth, c.MsgLen, c.Rate = 4, 2, 3, 8, 16, 1.5
		}, 2000, 3},
		{"shallow-buffers", func(c *Config) {
			c.K, c.N, c.VCs, c.BufDepth, c.MsgLen, c.Rate = 4, 2, 2, 1, 16, 1.2
			c.DetectionThreshold = 16
		}, 2000, 3},
		{"3d-small", func(c *Config) {
			c.K, c.N, c.VCs, c.MsgLen, c.Rate = 2, 3, 3, 4, 0.9
		}, 1500, 3},
		{"odd-radix", func(c *Config) {
			c.K, c.N, c.VCs, c.MsgLen, c.Rate = 5, 2, 2, 16, 1.0
			c.Pattern = "tornado"
			c.DetectionThreshold = 16
		}, 2000, 3},
		{"single-flit-msgs", func(c *Config) {
			c.K, c.N, c.VCs, c.MsgLen, c.Rate = 4, 2, 3, 1, 1.0
		}, 1500, 3},
		{"complement-overload-alo", func(c *Config) {
			c.K, c.N, c.MsgLen, c.Rate = 4, 2, 16, 2.5
			c.Pattern = "complement"
			c.Limiter, c.LimiterName = core.NewALO(), "alo"
		}, 2000, 3},
		{"dor-overload", func(c *Config) {
			c.K, c.N, c.MsgLen, c.Rate = 4, 2, 16, 2.0
			c.Routing = "dor"
		}, 2000, 3},
		{"dril-overload", func(c *Config) {
			c.K, c.N, c.MsgLen, c.Rate = 4, 2, 16, 2.2
			c.Limiter, c.LimiterName = baseline.NewDRIL(), "dril"
		}, 2000, 3},
		{"harsh-recovery-churn", func(c *Config) {
			c.K, c.N, c.VCs, c.MsgLen, c.Rate = 8, 1, 1, 24, 1.2
			c.DetectionThreshold, c.RecoveryDelay = 8, 0
		}, 3000, 1},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 2; seed++ {
				cfg := DefaultConfig()
				cfg.Limiter, cfg.LimiterName = baseline.NewNone(), "none"
				cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, v.cycles, 100
				cfg.Seed = seed
				v.mutate(&cfg)
				e, err := New(cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for i := int64(0); i < cfg.TotalCycles(); i++ {
					e.Step()
					if i%v.checkEv == 0 {
						if err := e.CheckInvariants(); err != nil {
							t.Fatalf("seed %d cycle %d: %v", seed, i, err)
						}
					}
				}
				if e.Delivered() == 0 {
					t.Fatalf("seed %d: nothing delivered", seed)
				}
			}
		})
	}
}

// TestDrainToQuiescence verifies that when generation stops, every message
// eventually leaves the network (no stuck flits, no leaked channel
// ownership), even after heavy deadlock-recovery churn.
func TestDrainToQuiescence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K, cfg.N, cfg.VCs = 8, 1, 1
	cfg.MsgLen, cfg.Rate = 24, 1.2
	cfg.DetectionThreshold, cfg.RecoveryDelay = 8, 4
	cfg.Limiter, cfg.LimiterName = baseline.NewNone(), "none"
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 0, 1500, 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: run under heavy load with aggressive recovery churn.
	for i := int64(0); i < 1500; i++ {
		e.Step()
	}
	if e.Recovered() == 0 {
		t.Log("no recoveries during the load phase (unusual but not fatal)")
	}
	// Phase 2: stop generation; the entire backlog must drain.
	e.StopSources()
	deadline := e.Now() + 500_000
	for e.InFlight() > 0 && e.Now() < deadline {
		e.Step()
	}
	if e.InFlight() != 0 {
		sq, rq := e.QueueLengths()
		t.Fatalf("network did not drain: %d in flight (queues %d source, %d recovery)",
			e.InFlight(), sq, rq)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// After a full drain every channel must be free and every buffer empty.
	for i := range e.nodes {
		nd := &e.nodes[i]
		for p := range nd.out {
			if !nd.out[p].CompletelyFree() {
				t.Fatalf("node %d out port %d leaked an allocation", nd.id, p)
			}
		}
		for a := range nd.in {
			if !nd.in[a].buf.Empty() {
				t.Fatalf("node %d in[%d][%d] leaked flits", nd.id, a/e.cfg.VCs, a%e.cfg.VCs)
			}
		}
		for c := range nd.ej {
			if nd.ej[c].msg != nil {
				t.Fatalf("node %d leaked ejection channel %d", nd.id, c)
			}
		}
		for c := range nd.inj {
			if nd.inj[c].msg != nil {
				t.Fatalf("node %d leaked injection channel %d", nd.id, c)
			}
		}
	}
}
