package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wormnet/internal/sim"
)

// shortConfig is a fast scenario with deadlock recoveries active, so the
// snapshot carries non-trivial state (in-flight wormholes, recovery queues).
func shortConfig() sim.Config {
	cfg := sim.QuickConfig()
	cfg.Rate = 1.5
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 300, 1200, 500
	return cfg
}

// midRunSnapshot runs shortConfig to cycle 700 and snapshots it.
func midRunSnapshot(t *testing.T) *sim.Snapshot {
	t.Helper()
	e, err := sim.New(shortConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for e.Now() < 700 {
		e.Step()
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// encodeBytes encodes snap into a fresh buffer.
func encodeBytes(t *testing.T, snap *sim.Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEncodeDecodeRoundTrip pins that Decode inverts Encode. The snapshot
// type has no maps, so its gob encoding is deterministic: re-encoding the
// decoded snapshot must reproduce the original bytes exactly, which checks
// every field without enumerating them.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	snap := midRunSnapshot(t)
	raw := encodeBytes(t, snap)
	if len(raw) <= headerSize {
		t.Fatalf("suspiciously small checkpoint: %d bytes", len(raw))
	}
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeBytes(t, got), raw) {
		t.Error("decoded snapshot re-encodes differently: some field did not survive the round trip")
	}
}

// TestRestoreThroughFile is the full cold-restart path: snapshot → file →
// fresh process image → resumed run, compared against the uninterrupted run
// at worker counts 1, 2 and 4 on both sides of the restart.
func TestRestoreThroughFile(t *testing.T) {
	cfg := shortConfig()
	golden, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer golden.Close()
	wantRes := golden.Run()
	wantDelivered := golden.Delivered()

	path := filepath.Join(t.TempDir(), "run.wncp")
	if err := WriteFile(path, midRunSnapshot(t)); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4} {
		snap, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.Workers = workers
		e, err := sim.RestoreEngine(rcfg, snap)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res := e.Run()
		if res != wantRes {
			t.Errorf("workers=%d: resumed result diverged:\n got  %+v\n want %+v", workers, res, wantRes)
		}
		if d := e.Delivered(); d != wantDelivered {
			t.Errorf("workers=%d: resumed delivered %d, want %d", workers, d, wantDelivered)
		}
		e.Close()
	}
}

// TestWriteFileAtomic pins the no-torn-file contract: WriteFile replaces an
// existing checkpoint in place and leaves no temporary files behind.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.wncp")
	snap := midRunSnapshot(t)
	if err := WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, snap); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if _, err := ReadFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.Contains(ent.Name(), ".tmp-") {
			t.Errorf("temporary file left behind: %s", ent.Name())
		}
	}
	if err := WriteFile(filepath.Join(dir, "no-such-dir", "x.wncp"), snap); err == nil {
		t.Error("WriteFile into a missing directory succeeded")
	}
}

// TestDecodeCorruption drives every corruption mode through Decode and pins
// the typed error each must produce — a damaged checkpoint never restores
// silently, and never panics.
func TestDecodeCorruption(t *testing.T) {
	raw := encodeBytes(t, midRunSnapshot(t))

	check := func(name string, data []byte, want error) {
		t.Helper()
		snap, err := Decode(bytes.NewReader(data))
		if !errors.Is(err, want) {
			t.Errorf("%s: got %v, want %v", name, err, want)
		}
		if snap != nil {
			t.Errorf("%s: corrupted decode returned a snapshot", name)
		}
	}
	flip := func(i int) []byte {
		c := append([]byte(nil), raw...)
		c[i] ^= 0x40
		return c
	}

	check("empty", nil, ErrTruncated)
	check("header cut short", raw[:10], ErrTruncated)
	check("payload cut short", raw[:len(raw)-5], ErrTruncated)
	check("payload byte flipped", flip(headerSize+len(raw)/2), ErrChecksum)
	check("last byte flipped", flip(len(raw)-1), ErrChecksum)
	check("magic flipped", flip(0), ErrBadMagic)
	check("garbage", []byte("definitely not a checkpoint file, not even close"), ErrBadMagic)

	// Oversized length field: rejected before any allocation is attempted.
	huge := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(huge[8:16], maxPayload+1)
	check("length overflow", huge, ErrCorrupt)

	// CRC-consistent garbage payload: framing checks pass, gob must fail.
	junk := bytes.Repeat([]byte{0xA5}, 64)
	var buf bytes.Buffer
	var hdr [headerSize]byte
	copy(hdr[0:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(junk)))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(junk, castagnoli))
	buf.Write(hdr[:])
	buf.Write(junk)
	check("valid frame, garbage gob", buf.Bytes(), ErrCorrupt)

	// Wrong version: *VersionError carrying the rejected version.
	vraw := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(vraw[4:8], Version+7)
	var verr *VersionError
	if _, err := Decode(bytes.NewReader(vraw)); !errors.As(err, &verr) {
		t.Errorf("future version: got %v, want *VersionError", err)
	} else if verr.Version != Version+7 {
		t.Errorf("VersionError carries %d, want %d", verr.Version, Version+7)
	}

	// ReadFile wraps decode errors with the path and keeps them matchable.
	path := filepath.Join(t.TempDir(), "bad.wncp")
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrTruncated) {
		t.Errorf("ReadFile(truncated): got %v, want ErrTruncated", err)
	} else if !strings.Contains(err.Error(), "bad.wncp") {
		t.Errorf("ReadFile error does not name the file: %v", err)
	}
}
