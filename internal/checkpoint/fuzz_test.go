package checkpoint

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"wormnet/internal/sim"
)

// fuzzSeedSnapshot builds a tiny real snapshot for the fuzz seeds; the run is
// short so `go test` stays fast while the corpus still contains a genuine
// in-flight engine state.
func fuzzSeedSnapshot(tb testing.TB) *sim.Snapshot {
	tb.Helper()
	cfg := sim.QuickConfig()
	cfg.Rate = 1.5
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, 300, 100
	e, err := sim.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	defer e.Close()
	for e.Now() < 250 {
		e.Step()
	}
	snap, err := e.Snapshot()
	if err != nil {
		tb.Fatal(err)
	}
	return snap
}

// fuzzSeeds returns the seed inputs: a valid checkpoint plus systematic
// header and payload mutations of it, and a few degenerate inputs.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, fuzzSeedSnapshot(tb)); err != nil {
		tb.Fatal(err)
	}
	valid := buf.Bytes()
	mutate := func(i int, x byte) []byte {
		c := append([]byte(nil), valid...)
		c[i] ^= x
		return c
	}
	seeds := [][]byte{
		valid,
		valid[:headerSize],          // header only, zero payload delivered
		valid[:len(valid)-1],        // one byte short
		valid[:headerSize/2],        // truncated header
		mutate(0, 0xFF),             // broken magic
		mutate(5, 0x01),             // bumped version
		mutate(9, 0x01),             // corrupted length
		mutate(17, 0x80),            // corrupted CRC
		mutate(headerSize+1, 0x20),  // corrupted gob type section
		mutate(len(valid)-2, 0x08),  // corrupted gob tail
		nil,                         // empty input
		[]byte("WNCP"),              // magic alone
		bytes.Repeat(valid, 2)[:64], // self-similar junk
	}
	// A frame whose CRC matches a garbage payload: exercises the gob layer.
	junk := bytes.Repeat([]byte{0x42, 0x07}, 24)
	seeds = append(seeds, frame(junk))
	return seeds
}

// frame wraps payload in a well-formed header (correct magic, version,
// length, CRC).
func frame(payload []byte) []byte {
	out := make([]byte, headerSize, headerSize+len(payload))
	copy(out[0:4], magic[:])
	binary.LittleEndian.PutUint32(out[4:8], Version)
	binary.LittleEndian.PutUint64(out[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[16:20], crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// FuzzCheckpointDecode is the robustness contract of the decoder: for any
// input whatsoever, Decode either returns a typed error or a snapshot that
// re-encodes cleanly — it never panics and never accepts a frame whose bytes
// were tampered with.
func FuzzCheckpointDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(bytes.NewReader(data))
		if err != nil {
			if snap != nil {
				t.Fatal("Decode returned both a snapshot and an error")
			}
			return
		}
		// Whatever decoded must be re-encodable; the gob round trip already
		// proved the field set is self-consistent.
		var buf bytes.Buffer
		if err := Encode(&buf, snap); err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed fuzz corpus under
// testdata/fuzz/FuzzCheckpointDecode from the current seed set. It only runs
// when WORMNET_REGEN_CORPUS=1, after snapshot-format changes:
//
//	WORMNET_REGEN_CORPUS=1 go test ./internal/checkpoint -run TestWriteFuzzCorpus
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WORMNET_REGEN_CORPUS") == "" {
		t.Skip("set WORMNET_REGEN_CORPUS=1 to regenerate the committed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range fuzzSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
