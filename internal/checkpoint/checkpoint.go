// Package checkpoint persists engine snapshots (sim.Snapshot) as versioned,
// self-describing binary files, and restores them with loud, typed failures
// on any corruption — a damaged checkpoint must never restore silently.
//
// File format (little-endian):
//
//	offset  size  field
//	0       4     magic "WNCP"
//	4       4     format version (uint32)
//	8       8     payload length in bytes (uint64)
//	16      4     CRC-32C (Castagnoli) of the payload
//	20      n     payload: gob-encoded sim.Snapshot
//
// The gob payload is self-describing (field names and types travel with the
// data), so adding fields to the snapshot is backward-compatible within a
// format version; incompatible changes bump Version. The CRC is checked
// before the payload is decoded, so gob never sees corrupted bytes.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"wormnet/internal/sim"
)

// Version is the current checkpoint format version.
const Version = 1

// magic identifies a checkpoint file.
var magic = [4]byte{'W', 'N', 'C', 'P'}

// headerSize is the fixed prefix before the payload.
const headerSize = 4 + 4 + 8 + 4

// maxPayload bounds the payload size a decoder will accept (1 GiB) so a
// corrupted length field cannot drive a huge allocation.
const maxPayload = 1 << 30

// Typed decode errors. Decode wraps them with context; errors.Is matches.
var (
	// ErrBadMagic marks a file that is not a checkpoint at all.
	ErrBadMagic = errors.New("checkpoint: bad magic (not a checkpoint file)")
	// ErrTruncated marks a checkpoint cut short (header or payload).
	ErrTruncated = errors.New("checkpoint: truncated file")
	// ErrChecksum marks payload bytes that fail the CRC.
	ErrChecksum = errors.New("checkpoint: checksum mismatch (corrupted payload)")
	// ErrCorrupt marks a payload that passes the CRC but does not decode —
	// practically, a checkpoint written by an incompatible snapshot layout.
	ErrCorrupt = errors.New("checkpoint: undecodable payload")
)

// VersionError reports a checkpoint written with an unsupported format
// version.
type VersionError struct {
	Version uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("checkpoint: unsupported format version %d (supported: %d)", e.Version, Version)
}

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode writes snap to w in the checkpoint format.
func Encode(w io.Writer, snap *sim.Snapshot) error {
	return EncodeValue(w, snap)
}

// EncodeValue writes any gob-encodable value to w in the WNCP framing
// (magic, version, length, CRC-32C). The snapshot functions delegate here;
// other subsystems (the model checker's exploration journal and
// counterexample files) reuse the same framing and corruption guarantees
// for their own payload types. The frame does not record the payload type:
// decoding a frame into the wrong Go type fails as ErrCorrupt at best —
// keep distinct payloads in distinct files.
func EncodeValue[T any](w io.Writer, v *T) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("checkpoint: encode payload: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[0:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(payload.Bytes(), castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: write header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("checkpoint: write payload: %w", err)
	}
	return nil
}

// Decode reads one checkpoint from r. Every corruption mode returns a typed
// error: ErrBadMagic, ErrTruncated, ErrChecksum, ErrCorrupt or a
// *VersionError.
func Decode(r io.Reader) (*sim.Snapshot, error) {
	return DecodeValue[sim.Snapshot](r)
}

// DecodeValue reads one WNCP frame from r and gob-decodes its payload into
// a T. Same typed errors as Decode.
func DecodeValue[T any](r io.Reader) (*T, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if !bytes.Equal(hdr[0:4], magic[:]) {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		return nil, &VersionError{Version: v}
	}
	length := binary.LittleEndian.Uint64(hdr[8:16])
	if length > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrCorrupt, length)
	}
	want := binary.LittleEndian.Uint32(hdr[16:20])
	// Stream the payload through a bounded buffer rather than allocating
	// length bytes up front: a lying length field on a short file fails as
	// truncation, not as a giant allocation.
	var payload bytes.Buffer
	n, err := io.CopyN(&payload, r, int64(length))
	if err != nil || uint64(n) != length {
		return nil, fmt.Errorf("%w: payload has %d of %d bytes", ErrTruncated, n, length)
	}
	if got := crc32.Checksum(payload.Bytes(), castagnoli); got != want {
		return nil, fmt.Errorf("%w: crc %08x, header says %08x", ErrChecksum, got, want)
	}
	v, err := decodeGob[T](payload.Bytes())
	if err != nil {
		return nil, err
	}
	return v, nil
}

// decodeGob decodes the checked payload, converting any gob failure — error
// or panic (gob can panic on adversarial self-describing streams) — into
// ErrCorrupt.
func decodeGob[T any](payload []byte) (v *T, err error) {
	defer func() {
		if r := recover(); r != nil {
			v, err = nil, fmt.Errorf("%w: %v", ErrCorrupt, r)
		}
	}()
	var s T
	if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); derr != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, derr)
	}
	return &s, nil
}

// WriteFile atomically writes snap to path: the bytes land in a temporary
// file in the same directory, are synced, and replace path with a rename, so
// a crash mid-write never leaves a half-written checkpoint under the final
// name.
func WriteFile(path string, snap *sim.Snapshot) error {
	return WriteFileValue(path, snap)
}

// WriteFileValue atomically writes any gob-encodable value to path in the
// WNCP framing, with the same temp-file + rename discipline as WriteFile.
func WriteFileValue[T any](path string, v *T) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup; gone after rename
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err := EncodeValue(bw, v); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: flush %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// ReadFile reads and decodes the checkpoint at path.
func ReadFile(path string) (*sim.Snapshot, error) {
	return ReadFileValue[sim.Snapshot](path)
}

// ReadFileValue reads and decodes a WNCP-framed value of type T at path.
func ReadFileValue[T any](path string) (*T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	v, err := DecodeValue[T](bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return v, nil
}
