package checkpoint

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

type journalPayload struct {
	Name     string
	Counter  int64
	Frontier [][]byte
}

func TestValueRoundTrip(t *testing.T) {
	in := journalPayload{
		Name:     "explore",
		Counter:  42,
		Frontier: [][]byte{{1, 2, 3}, {4}},
	}
	var buf bytes.Buffer
	if err := EncodeValue(&buf, &in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeValue[journalPayload](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Counter != in.Counter || len(out.Frontier) != 2 {
		t.Fatalf("round trip: %+v", out)
	}

	path := filepath.Join(t.TempDir(), "journal.wncp")
	if err := WriteFileValue(path, &in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFileValue[journalPayload](path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Counter != in.Counter {
		t.Fatalf("file round trip: %+v", back)
	}
}

func TestValueCorruptionTyped(t *testing.T) {
	in := journalPayload{Name: "x"}
	var buf bytes.Buffer
	if err := EncodeValue(&buf, &in); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF
	if _, err := DecodeValue[journalPayload](bytes.NewReader(raw)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("flipped payload byte: err = %v, want ErrChecksum", err)
	}
}
