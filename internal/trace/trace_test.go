package trace

import (
	"strings"
	"sync"
	"testing"
)

func ev(cycle int64, k Kind, msg int64) Event {
	return Event{Cycle: cycle, Kind: k, Msg: msg, Src: 0, Dst: 5, Node: 2}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindGenerated: "generated", KindInjected: "injected",
		KindDelivered: "delivered", KindDeadlock: "deadlock",
		KindRecovered: "recovered", KindThrottled: "throttled",
		Kind(42): "kind(42)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String()=%q want %q", k, k.String(), s)
		}
	}
}

func TestEventString(t *testing.T) {
	s := ev(100, KindInjected, 7).String()
	for _, part := range []string{"100", "injected", "msg=7", "0->5", "at 2"} {
		if !strings.Contains(s, part) {
			t.Errorf("event string %q misses %q", s, part)
		}
	}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(10)
	if r.Len() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	for i := int64(0); i < 5; i++ {
		r.Emit(ev(i, KindGenerated, i))
	}
	if r.Len() != 5 {
		t.Fatalf("Len=%d", r.Len())
	}
	events := r.Events()
	for i, e := range events {
		if e.Cycle != int64(i) {
			t.Fatalf("order broken: %v", events)
		}
	}
	if r.Count(KindGenerated) != 5 || r.Count(KindDelivered) != 0 {
		t.Error("counts wrong")
	}
	if r.Count(Kind(42)) != 0 {
		t.Error("unknown kind count")
	}
}

func TestRecorderWraps(t *testing.T) {
	r := NewRecorder(4)
	for i := int64(0); i < 10; i++ {
		r.Emit(ev(i, KindInjected, i))
	}
	if r.Len() != 4 {
		t.Fatalf("Len=%d want 4", r.Len())
	}
	events := r.Events()
	// Oldest retained is cycle 6.
	for i, e := range events {
		if e.Cycle != int64(6+i) {
			t.Fatalf("ring order broken: %v", events)
		}
	}
	// Total count is unaffected by eviction.
	if r.Count(KindInjected) != 10 {
		t.Errorf("Count=%d", r.Count(KindInjected))
	}
}

func TestRecorderPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRecorder(0)
}

func TestMessageHistory(t *testing.T) {
	r := NewRecorder(16)
	r.Emit(ev(1, KindGenerated, 7))
	r.Emit(ev(2, KindGenerated, 8))
	r.Emit(ev(3, KindInjected, 7))
	r.Emit(ev(9, KindDelivered, 7))
	hist := r.MessageHistory(7)
	if len(hist) != 3 {
		t.Fatalf("history: %v", hist)
	}
	if hist[0].Kind != KindGenerated || hist[2].Kind != KindDelivered {
		t.Errorf("history order: %v", hist)
	}
}

func TestDump(t *testing.T) {
	r := NewRecorder(4)
	r.Emit(ev(1, KindGenerated, 7))
	r.Emit(ev(2, KindDeadlock, 7))
	d := r.Dump()
	if strings.Count(d, "\n") != 2 || !strings.Contains(d, "deadlock") {
		t.Errorf("dump:\n%s", d)
	}
}

func TestFilter(t *testing.T) {
	r := NewRecorder(8)
	f := Filter{Next: r, Kinds: map[Kind]bool{KindDeadlock: true}}
	f.Emit(ev(1, KindGenerated, 1))
	f.Emit(ev(2, KindDeadlock, 1))
	f.Emit(ev(3, KindInjected, 1))
	if r.Len() != 1 || r.Events()[0].Kind != KindDeadlock {
		t.Errorf("filter passed wrong events: %v", r.Events())
	}
}

func TestMultiAndFunc(t *testing.T) {
	r1, r2 := NewRecorder(4), NewRecorder(4)
	calls := 0
	m := Multi{r1, r2, Func(func(Event) { calls++ })}
	m.Emit(ev(1, KindInjected, 1))
	if r1.Len() != 1 || r2.Len() != 1 || calls != 1 {
		t.Error("multi fan-out broken")
	}
}

// TestFilterNilKinds pins the zero-value semantics: a Filter with no Kinds
// set forwards everything (a zero-value Filter once dropped every event,
// which silently disabled whole listener stacks).
func TestFilterNilKinds(t *testing.T) {
	r := NewRecorder(8)
	f := Filter{Next: r}
	f.Emit(ev(1, KindGenerated, 1))
	f.Emit(ev(2, KindDeadlock, 1))
	f.Emit(ev(3, KindDropped, 1))
	if r.Len() != 3 {
		t.Fatalf("nil Kinds must pass all events, got %d of 3", r.Len())
	}
	// An empty-but-non-nil set is an explicit "nothing".
	f = Filter{Next: r, Kinds: map[Kind]bool{}}
	f.Emit(ev(4, KindGenerated, 1))
	if r.Len() != 3 {
		t.Error("empty non-nil Kinds must block all events")
	}
}

// TestDecoratorComposition stacks Multi, Filter and Func the way the CLI
// composes them: one fan-out feeding a filtered sink and an unfiltered one.
func TestDecoratorComposition(t *testing.T) {
	all := NewRecorder(16)
	var deadlocks []Event
	stack := Multi{
		all,
		Filter{
			Next:  Func(func(e Event) { deadlocks = append(deadlocks, e) }),
			Kinds: map[Kind]bool{KindDeadlock: true, KindDropped: true},
		},
	}
	for i := int64(0); i < 6; i++ {
		stack.Emit(ev(i, KindInjected, i))
	}
	stack.Emit(ev(6, KindDeadlock, 3))
	stack.Emit(ev(7, KindDropped, 4))
	if all.Len() != 8 {
		t.Errorf("unfiltered sink got %d of 8", all.Len())
	}
	if len(deadlocks) != 2 || deadlocks[0].Kind != KindDeadlock || deadlocks[1].Kind != KindDropped {
		t.Errorf("filtered sink got %v", deadlocks)
	}
}

// TestRecorderConcurrent hammers one Recorder from several emitters while a
// reader drains Events/Len/Count/MessageHistory. Run under -race it proves
// the locking covers every accessor; the final counts check that no event
// was lost.
func TestRecorderConcurrent(t *testing.T) {
	const (
		emitters = 4
		perEmit  = 2000
	)
	r := NewRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Events()
			_ = r.Len()
			_ = r.Count(KindInjected)
			_ = r.MessageHistory(1)
		}
	}()
	var ewg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		ewg.Add(1)
		go func(g int) {
			defer ewg.Done()
			for i := 0; i < perEmit; i++ {
				r.Emit(ev(int64(i), KindInjected, int64(g)))
			}
		}(g)
	}
	ewg.Wait()
	close(stop)
	wg.Wait()
	if got := r.Count(KindInjected); got != emitters*perEmit {
		t.Errorf("lost events: counted %d, emitted %d", got, emitters*perEmit)
	}
	if r.Len() != 64 {
		t.Errorf("ring should be full: Len=%d", r.Len())
	}
}
