// Package trace provides event-level observability for the simulator: a
// Listener interface the engine publishes message lifecycle events to, a
// bounded in-memory Recorder, and text formatting. Tracing is optional —
// an engine with no listener pays a nil-check per event and nothing more.
//
// The events cover the message lifecycle the paper's metrics are built
// from (generation, injection, delivery, deadlock detection/recovery), so
// a Recorder can replay exactly why a run behaved the way it did.
//
// # Decorators
//
// Listeners compose. Filter wraps another Listener and forwards a subset of
// kinds (a nil Kinds set forwards everything, so the zero-value restriction
// is "no restriction"); Multi fans one event out to several listeners in
// order; Func adapts a plain function. The decorators hold no state of
// their own and add no synchronization — concurrency safety is wherever
// the terminal listener provides it (Recorder locks; a Func is whatever the
// function is). A typical stack:
//
//	rec := trace.NewRecorder(1024)
//	eng.SetListener(trace.Multi{
//		rec,
//		trace.Filter{Next: sink, Kinds: map[trace.Kind]bool{trace.KindDeadlock: true}},
//	})
package trace

import (
	"fmt"
	"strings"
	"sync"

	"wormnet/internal/topology"
)

// Kind enumerates the event types.
type Kind int8

// Event kinds, in lifecycle order. The fault kinds (KindFault onward) are
// emitted only when fault injection is active.
const (
	KindGenerated Kind = iota // message created at its source
	KindInjected              // head flit entered the network
	KindDelivered             // tail flit consumed at the destination
	KindDeadlock              // message presumed deadlocked (detection fired)
	KindRecovered             // message re-entered a queue after recovery
	KindThrottled             // injection denied by the limitation mechanism
	KindFault                 // a link or router failed (Msg is -1)
	KindRepair                // a link or router was repaired (Msg is -1)
	KindAborted               // message killed because its path died
	KindRetried               // killed message scheduled for source retry
	KindDropped               // message dropped (retries exhausted or unreachable)

	numKinds // count of event kinds; keep last
)

// String returns the event kind's name.
func (k Kind) String() string {
	switch k {
	case KindGenerated:
		return "generated"
	case KindInjected:
		return "injected"
	case KindDelivered:
		return "delivered"
	case KindDeadlock:
		return "deadlock"
	case KindRecovered:
		return "recovered"
	case KindThrottled:
		return "throttled"
	case KindFault:
		return "fault"
	case KindRepair:
		return "repair"
	case KindAborted:
		return "aborted"
	case KindRetried:
		return "retried"
	case KindDropped:
		return "dropped"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one message lifecycle occurrence. Len carries the message length
// in flits (0 for component-level fault/repair events): together with Cycle,
// Src and Dst it makes a recorded stream of KindGenerated events a complete
// injection schedule, replayable through traffic.ReplayFactory.
type Event struct {
	Cycle int64
	Kind  Kind
	Msg   int64 // message ID
	Src   topology.NodeID
	Dst   topology.NodeID
	Node  topology.NodeID // where the event happened
	Len   int32           // message length in flits (0 when not applicable)
}

// String formats the event as a single log line.
func (e Event) String() string {
	return fmt.Sprintf("[%8d] %-9s msg=%d %d->%d at %d",
		e.Cycle, e.Kind, e.Msg, e.Src, e.Dst, e.Node)
}

// Listener consumes events. Implementations must be fast: the engine calls
// Emit synchronously from the simulation loop.
type Listener interface {
	Emit(Event)
}

// Recorder is a bounded ring-buffer Listener that keeps the most recent
// events. It is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	next   int
	filled bool
	counts [numKinds]int64
}

// NewRecorder returns a recorder keeping the latest capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		panic("trace: recorder capacity must be positive")
	}
	return &Recorder{events: make([]Event, capacity)}
}

// Emit implements Listener.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events[r.next] = ev
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
	if int(ev.Kind) < len(r.counts) {
		r.counts[ev.Kind]++
	}
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.events)
	}
	return r.next
}

// Count returns how many events of the kind were emitted in total (not just
// retained).
func (r *Recorder) Count(k Kind) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(k) >= len(r.counts) {
		return 0
	}
	return r.counts[k]
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// MessageHistory returns the retained events of one message, oldest first.
func (r *Recorder) MessageHistory(msgID int64) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if ev.Msg == msgID {
			out = append(out, ev)
		}
	}
	return out
}

// Dump renders the retained events as a multi-line log.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, ev := range r.Events() {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Filter is a Listener decorator that forwards only selected kinds. A nil
// Kinds set means no filtering: every event passes. (An empty-but-non-nil
// set still blocks everything — build the map only when restricting.)
type Filter struct {
	Next  Listener
	Kinds map[Kind]bool
}

// Emit implements Listener.
func (f Filter) Emit(ev Event) {
	if f.Kinds == nil || f.Kinds[ev.Kind] {
		f.Next.Emit(ev)
	}
}

// Multi fans an event out to several listeners.
type Multi []Listener

// Emit implements Listener.
func (m Multi) Emit(ev Event) {
	for _, l := range m {
		l.Emit(ev)
	}
}

// Func adapts a function to the Listener interface.
type Func func(Event)

// Emit implements Listener.
func (f Func) Emit(ev Event) { f(ev) }
