package trace

import "wormnet/internal/topology"

// A span is the full latency decomposition of one message's life: where its
// cycles went between generation and delivery. Where an Event answers "what
// happened", a SpanRecord answers "what did it cost" — source-queue wait,
// per-hop channel-acquire block time, drain time — which is exactly the
// decomposition the saturation analysis needs (a saturated network shows the
// wait concentrated in a few hops forming a congestion tree; an ALO-limited
// one shows it pushed back into the source queue).
//
// The engine samples spans deterministically by message ID, builds them
// in-place as the message moves, and hands the finished record to a
// SpanSink at delivery. Sinks receive records synchronously on the
// simulation goroutine in delivery order, identical for any worker count.

// SpanHop is one channel acquisition along a message's path. Arrive is the
// cycle the head flit started competing for the node's output (for the
// source node: the cycle the message claimed an injection channel); Alloc is
// the cycle a virtual channel was granted. Alloc - Arrive is the blocked
// time at this hop; Alloc stays -1 when the message never won a channel
// there (it was torn down first).
type SpanHop struct {
	Node   topology.NodeID
	Arrive int64
	Alloc  int64
}

// SpanRecord is the lifecycle timing of one sampled message. Cycle fields
// are -1 until the corresponding transition happens, so partially lived
// records (dropped messages, in-flight messages at shutdown) stay
// interpretable. The record handed to a SpanSink is transient: the engine
// recycles it (including the Hops backing array) for later messages, so a
// sink that retains records must deep-copy them.
type SpanRecord struct {
	ID  int64
	Src topology.NodeID
	Dst topology.NodeID
	Len int // message length, flits

	Gen     int64 // cycle the message was created at its source
	Admit   int64 // cycle it left the source queue (claimed an injection VC)
	Inject  int64 // cycle the head flit entered the network
	Deliver int64 // cycle the tail flit was consumed at the destination

	// Injection-limiter pushback while the message sat in the source queue:
	// total denials and the ALO rule attribution (rule (a): at least one
	// useful channel free on a minimal direction; rule (b): at least one
	// useful channel fully empty). For ALO a denial means both failed.
	Denies      int64
	DeniesRuleA int64
	DeniesRuleB int64

	// Recoveries/Retries count how many times the message was torn down
	// (deadlock recovery, fault kill + source retry). Each teardown resets
	// Hops to the truncated source attempt, so Hops describe the final,
	// successful attempt only.
	Recoveries int
	Retries    int

	Hops []SpanHop
}

// Reset clears the record for reuse, keeping the Hops backing array.
func (s *SpanRecord) Reset() {
	*s = SpanRecord{Gen: -1, Admit: -1, Inject: -1, Deliver: -1, Hops: s.Hops[:0]}
}

// Clone deep-copies the record (fresh Hops array), for sinks that retain
// spans past the SpanDone call.
func (s *SpanRecord) Clone() *SpanRecord {
	c := *s
	c.Hops = append([]SpanHop(nil), s.Hops...)
	return &c
}

// QueueWait returns the source-queue wait in cycles (generation to
// injection-channel claim), or -1 if the message never left the queue.
func (s *SpanRecord) QueueWait() int64 {
	if s.Admit < 0 {
		return -1
	}
	return s.Admit - s.Gen
}

// NetLatency returns the in-network latency in cycles (claim to delivery),
// or -1 for an undelivered message.
func (s *SpanRecord) NetLatency() int64 {
	if s.Deliver < 0 || s.Admit < 0 {
		return -1
	}
	return s.Deliver - s.Admit
}

// BlockedCycles sums the per-hop acquire block time (Alloc - Arrive over
// hops that won a channel).
func (s *SpanRecord) BlockedCycles() int64 {
	var total int64
	for _, h := range s.Hops {
		if h.Alloc >= 0 {
			total += h.Alloc - h.Arrive
		}
	}
	return total
}

// DrainCycles returns the drain time: last channel grant to tail delivery.
// -1 when the message was not delivered or recorded no granted hop.
func (s *SpanRecord) DrainCycles() int64 {
	if s.Deliver < 0 {
		return -1
	}
	last := int64(-1)
	for _, h := range s.Hops {
		if h.Alloc > last {
			last = h.Alloc
		}
	}
	if last < 0 {
		return -1
	}
	return s.Deliver - last
}

// SpanSink consumes finished spans. The engine calls SpanDone synchronously
// on the simulation goroutine, in delivery order (or drop order for
// discarded messages); implementations must be fast and must copy the
// record if they keep it.
type SpanSink interface {
	SpanDone(*SpanRecord)
}

// MultiSpan fans one span out to several sinks in order.
type MultiSpan []SpanSink

// SpanDone implements SpanSink.
func (m MultiSpan) SpanDone(s *SpanRecord) {
	for _, sk := range m {
		sk.SpanDone(s)
	}
}

// SpanFunc adapts a function to the SpanSink interface.
type SpanFunc func(*SpanRecord)

// SpanDone implements SpanSink.
func (f SpanFunc) SpanDone(s *SpanRecord) { f(s) }
