package routing

import (
	"testing"
	"testing/quick"

	"wormnet/internal/topology"
)

func TestTFARCandidates(t *testing.T) {
	tp := topology.New(8, 3)
	r := NewTFAR(tp, 3)
	if r.Name() != "tfar" || r.DeadlockFree() {
		t.Fatal("metadata wrong")
	}
	// src (0,0,0) -> dst (1,1,1): three useful ports, all Plus, 3 VCs each.
	src := tp.FromCoords([]int{0, 0, 0})
	dst := tp.FromCoords([]int{1, 1, 1})
	cands := r.Candidates(src, dst, nil)
	if len(cands) != 9 {
		t.Fatalf("got %d candidates want 9", len(cands))
	}
	ports := Ports(cands, nil)
	if len(ports) != 3 {
		t.Fatalf("got %d ports want 3: %v", len(ports), ports)
	}
	for _, p := range ports {
		if topology.PortDir(p) != topology.Plus {
			t.Errorf("port %d not Plus", p)
		}
	}
	// Same node: no candidates.
	if got := r.Candidates(src, src, nil); len(got) != 0 {
		t.Errorf("self route produced %d candidates", len(got))
	}
}

func TestTFARHalfwayTie(t *testing.T) {
	tp := topology.New(8, 1)
	r := NewTFAR(tp, 2)
	cands := r.Candidates(0, 4, nil)
	// Offset 4 on an 8-ring: both directions minimal -> 2 ports * 2 VCs.
	if len(cands) != 4 {
		t.Fatalf("got %d candidates want 4", len(cands))
	}
}

// Property: every TFAR candidate decreases distance; candidates cover all
// VCs of each useful port exactly once.
func TestTFARProperty(t *testing.T) {
	tp := topology.New(4, 3)
	r := NewTFAR(tp, 3)
	f := func(a, b uint16) bool {
		cur := topology.NodeID(int(a) % tp.Nodes())
		dst := topology.NodeID(int(b) % tp.Nodes())
		cands := r.Candidates(cur, dst, nil)
		if cur == dst {
			return len(cands) == 0
		}
		d := tp.Distance(cur, dst)
		seen := map[Candidate]bool{}
		for _, c := range cands {
			if c.VC < 0 || int(c.VC) >= 3 {
				return false
			}
			if seen[c] {
				return false
			}
			seen[c] = true
			if tp.Distance(tp.Neighbor(cur, c.Port), dst) != d-1 {
				return false
			}
		}
		return len(cands) == len(Ports(cands, nil))*3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDORSingleCandidateLowestDim(t *testing.T) {
	tp := topology.New(8, 3)
	r := NewDOR(tp, 3)
	if r.Name() != "dor" || !r.DeadlockFree() {
		t.Fatal("metadata wrong")
	}
	src := tp.FromCoords([]int{0, 0, 0})
	dst := tp.FromCoords([]int{2, 3, 0})
	cands := r.Candidates(src, dst, nil)
	if len(cands) != 1 {
		t.Fatalf("got %d candidates want 1", len(cands))
	}
	if topology.PortDim(cands[0].Port) != 0 {
		t.Errorf("DOR must resolve dim 0 first, got dim %d", topology.PortDim(cands[0].Port))
	}
	// After dim 0 is resolved, dim 1 is used.
	mid := tp.FromCoords([]int{2, 0, 0})
	cands = r.Candidates(mid, dst, nil)
	if len(cands) != 1 || topology.PortDim(cands[0].Port) != 1 {
		t.Errorf("expected dim-1 route, got %v", cands)
	}
}

func TestDORDateline(t *testing.T) {
	tp := topology.New(8, 1)
	r := NewDOR(tp, 2)
	// 6 -> 1 travelling Plus wraps: VC0 before the wrap.
	c := r.Candidates(6, 1, nil)
	if len(c) != 1 || topology.PortDir(c[0].Port) != topology.Plus || c[0].VC != 0 {
		t.Fatalf("6->1: %v", c)
	}
	// 0 -> 1: no wrap ahead: VC1.
	c = r.Candidates(0, 1, nil)
	if len(c) != 1 || c[0].VC != 1 {
		t.Fatalf("0->1: %v", c)
	}
	// 2 -> 7 minimal is Minus (dist 3) and wraps 0->7: VC0.
	c = r.Candidates(2, 7, nil)
	if len(c) != 1 || topology.PortDir(c[0].Port) != topology.Minus || c[0].VC != 0 {
		t.Fatalf("2->7: %v", c)
	}
	// 7 -> 5 minimal is Minus, no wrap: VC1.
	c = r.Candidates(7, 5, nil)
	if len(c) != 1 || topology.PortDir(c[0].Port) != topology.Minus || c[0].VC != 1 {
		t.Fatalf("7->5: %v", c)
	}
}

// Property: a DOR walk reaches the destination in exactly Distance(src,dst)
// hops when ties resolve minimally, and the VC class never goes from 1 back
// to 0 within a dimension (dateline monotonicity).
func TestDORWalk(t *testing.T) {
	tp := topology.New(7, 2) // odd k: no ties, walk is truly minimal
	r := NewDOR(tp, 2)
	f := func(a, b uint16) bool {
		cur := topology.NodeID(int(a) % tp.Nodes())
		dst := topology.NodeID(int(b) % tp.Nodes())
		want := tp.Distance(cur, dst)
		steps := 0
		lastDim, lastVC := -1, int8(0)
		for cur != dst {
			c := r.Candidates(cur, dst, nil)
			if len(c) != 1 {
				return false
			}
			dim := topology.PortDim(c[0].Port)
			if dim == lastDim && lastVC == 1 && c[0].VC == 0 {
				return false // dateline class went backwards
			}
			if dim < lastDim {
				return false // dimension order violated
			}
			lastDim, lastVC = dim, c[0].VC
			cur = tp.Neighbor(cur, c[0].Port)
			steps++
			if steps > 100 {
				return false
			}
		}
		return steps == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// The dateline restriction must make the channel-dependency graph of a ring
// acyclic. We verify by brute force on an 8-ring: build every (link, vc)
// dependency DOR can create and check for cycles.
func TestDORDependencyGraphAcyclic(t *testing.T) {
	tp := topology.New(8, 1)
	r := NewDOR(tp, 2)
	type ch struct {
		node topology.NodeID
		port topology.Port
		vc   int8
	}
	deps := map[ch]map[ch]bool{}
	addDep := func(from, to ch) {
		if deps[from] == nil {
			deps[from] = map[ch]bool{}
		}
		deps[from][to] = true
	}
	// For every (src,dst) pair, walk the path and add successive channel deps.
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			cur := topology.NodeID(s)
			var prev *ch
			for cur != topology.NodeID(d) {
				c := r.Candidates(cur, topology.NodeID(d), nil)
				here := ch{node: cur, port: c[0].Port, vc: c[0].VC}
				if prev != nil {
					addDep(*prev, here)
				}
				p := here
				prev = &p
				cur = tp.Neighbor(cur, c[0].Port)
			}
		}
	}
	// DFS cycle detection.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[ch]int{}
	var visit func(c ch) bool
	visit = func(c ch) bool {
		color[c] = gray
		for nxt := range deps[c] {
			switch color[nxt] {
			case gray:
				return false
			case white:
				if !visit(nxt) {
					return false
				}
			}
		}
		color[c] = black
		return true
	}
	for c := range deps {
		if color[c] == white {
			if !visit(c) {
				t.Fatal("DOR dateline dependency graph has a cycle")
			}
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	tp := topology.New(8, 2)
	for name, f := range map[string]func(){
		"tfar vcs": func() { NewTFAR(tp, 0) },
		"dor vcs0": func() { NewDOR(tp, 0) },
		"dor vcs1": func() { NewDOR(tp, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		})
	}
	// k=2: one VC suffices (no wraparound distinction needed? still require >=1).
	if NewDOR(topology.New(2, 2), 1) == nil {
		t.Fatal("DOR on k=2 with 1 VC should construct")
	}
}

func TestPortsDedup(t *testing.T) {
	cands := []Candidate{{Port: 0, VC: 0}, {Port: 0, VC: 1}, {Port: 3, VC: 0}}
	ports := Ports(cands, nil)
	if len(ports) != 2 || ports[0] != 0 || ports[1] != 3 {
		t.Fatalf("Ports=%v", ports)
	}
	if got := Ports(nil, nil); len(got) != 0 {
		t.Fatal("empty")
	}
}
