package routing

import (
	"wormnet/internal/topology"
)

// Duato implements Duato's deadlock-avoidance protocol (IEEE TPDS 1993):
// most virtual channels route fully adaptively on any minimal physical
// channel, while a reserved pair of *escape* virtual channels per physical
// channel follows dateline dimension-order routing. The escape subnetwork
// is acyclic and always reachable, so the network is deadlock-free without
// detection or recovery — the "deadlock avoidance" regime whose saturation
// behaviour the paper's introduction contrasts with deadlock recovery.
//
// Channel classes with V virtual channels per physical channel:
//
//	vc 0, 1   — escape (dateline DOR; vc0 before the wraparound, vc1 after)
//	vc 2..V-1 — fully adaptive on every minimal physical channel
//
// V must be at least 3 so that at least one adaptive channel exists.
type Duato struct {
	t    *topology.Torus
	vcs  int
	dor  *DOR
	live *topology.Liveness
}

// NewDuato returns the escape-channel adaptive engine. It panics if fewer
// than 3 virtual channels are configured.
func NewDuato(t *topology.Torus, vcs int) *Duato {
	if vcs < 3 {
		panic("routing: Duato's protocol needs >= 3 virtual channels (2 escape + adaptive)")
	}
	return &Duato{t: t, vcs: vcs, dor: NewDOR(t, vcs)}
}

// Candidates implements Algorithm: the adaptive virtual channels of every
// minimal physical channel, plus the escape virtual channel that dateline
// DOR prescribes. Candidates of the escape port stay contiguous with its
// adaptive channels, as Ports requires.
func (r *Duato) Candidates(cur, dst topology.NodeID, out []Candidate) []Candidate {
	if cur == dst {
		return out
	}
	escape := r.dor.Candidates(cur, dst, nil)
	// DOR yields exactly one candidate for cur != dst — unless its
	// prescribed channel is dead, in which case only the adaptive channels
	// remain (the engine then runs with detection enabled, since losing the
	// escape path voids the deadlock-freedom guarantee).
	esc := Candidate{Port: -1}
	if len(escape) > 0 {
		esc = escape[0]
	}
	for dim := 0; dim < r.t.N(); dim++ {
		a, b := r.t.Coord(cur, dim), r.t.Coord(dst, dim)
		plus, minus := r.t.MinimalDirs(a, b)
		if plus && alive(r.live, cur, topology.PortFor(dim, topology.Plus)) {
			out = r.appendPortCands(out, topology.PortFor(dim, topology.Plus), esc)
		}
		if minus && alive(r.live, cur, topology.PortFor(dim, topology.Minus)) {
			out = r.appendPortCands(out, topology.PortFor(dim, topology.Minus), esc)
		}
	}
	return out
}

// SetLiveness implements FaultAware: both the adaptive channels and the
// embedded escape engine filter against the same mask.
func (r *Duato) SetLiveness(l *topology.Liveness) {
	r.live = l
	r.dor.SetLiveness(l)
}

// appendPortCands appends port p's admissible virtual channels: the escape
// channel first when p is the DOR port (so the allocator can always fall
// back to it), then the adaptive channels.
func (r *Duato) appendPortCands(out []Candidate, p topology.Port, esc Candidate) []Candidate {
	if p == esc.Port {
		out = append(out, esc)
	}
	for v := 2; v < r.vcs; v++ {
		out = append(out, Candidate{Port: p, VC: int8(v)})
	}
	return out
}

// Name implements Algorithm.
func (r *Duato) Name() string { return "duato" }

// DeadlockFree implements Algorithm: the escape subnetwork is an acyclic
// dateline-DOR network reachable from every state, so by Duato's theorem
// the protocol is deadlock-free.
func (r *Duato) DeadlockFree() bool { return true }
