package routing

import (
	"testing"
	"testing/quick"

	"wormnet/internal/topology"
)

func TestDuatoMetadata(t *testing.T) {
	tp := topology.New(8, 3)
	r := NewDuato(tp, 3)
	if r.Name() != "duato" || !r.DeadlockFree() {
		t.Fatal("metadata")
	}
	for _, vcs := range []int{1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDuato with %d VCs should panic", vcs)
				}
			}()
			NewDuato(tp, vcs)
		}()
	}
}

func TestDuatoCandidateStructure(t *testing.T) {
	tp := topology.New(8, 2)
	r := NewDuato(tp, 3)
	dor := NewDOR(tp, 3)

	src := tp.FromCoords([]int{0, 0})
	dst := tp.FromCoords([]int{2, 3})
	cands := r.Candidates(src, dst, nil)
	esc := dor.Candidates(src, dst, nil)[0]

	// Two useful ports, each with 1 adaptive VC (vc2), plus one escape VC
	// on the DOR port: 3 candidates total.
	if len(cands) != 3 {
		t.Fatalf("got %d candidates: %v", len(cands), cands)
	}
	var sawEscape bool
	for _, c := range cands {
		if c.VC >= 2 {
			continue // adaptive
		}
		// An escape-class candidate must be exactly the DOR prescription.
		if c != esc {
			t.Fatalf("escape candidate %v differs from DOR %v", c, esc)
		}
		sawEscape = true
	}
	if !sawEscape {
		t.Fatal("escape channel missing from candidate set")
	}
	// Port-contiguity contract for Ports().
	ports := Ports(cands, nil)
	if len(ports) != 2 {
		t.Fatalf("ports: %v", ports)
	}
	// Self route: empty.
	if got := r.Candidates(src, src, nil); len(got) != 0 {
		t.Fatal("self route")
	}
}

func TestDuatoMoreAdaptiveVCs(t *testing.T) {
	tp := topology.New(8, 2)
	r := NewDuato(tp, 5) // 2 escape + 3 adaptive
	src := tp.FromCoords([]int{0, 0})
	dst := tp.FromCoords([]int{1, 1})
	cands := r.Candidates(src, dst, nil)
	// 2 ports x 3 adaptive + 1 escape = 7.
	if len(cands) != 7 {
		t.Fatalf("got %d candidates: %v", len(cands), cands)
	}
	adaptive := 0
	for _, c := range cands {
		if c.VC >= 2 {
			adaptive++
			if int(c.VC) >= 5 {
				t.Fatalf("vc out of range: %v", c)
			}
		}
	}
	if adaptive != 6 {
		t.Errorf("adaptive candidates: %d want 6", adaptive)
	}
}

// Property: every Duato candidate is minimal; the escape candidate always
// exists and matches DOR; adaptive candidates never use the escape classes.
func TestDuatoProperty(t *testing.T) {
	tp := topology.New(4, 3)
	r := NewDuato(tp, 3)
	dor := NewDOR(tp, 3)
	f := func(a, b uint16) bool {
		cur := topology.NodeID(int(a) % tp.Nodes())
		dst := topology.NodeID(int(b) % tp.Nodes())
		cands := r.Candidates(cur, dst, nil)
		if cur == dst {
			return len(cands) == 0
		}
		esc := dor.Candidates(cur, dst, nil)[0]
		d := tp.Distance(cur, dst)
		sawEscape := false
		for _, c := range cands {
			if tp.Distance(tp.Neighbor(cur, c.Port), dst) != d-1 {
				return false
			}
			if c.VC < 2 {
				if c != esc {
					return false
				}
				sawEscape = true
			}
		}
		return sawEscape
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
