// Package routing implements the routing engines of the simulator.
//
// The paper evaluates True Fully Adaptive Routing (TFAR): a message may use
// any virtual channel of any physical channel that brings it minimally
// closer to its destination. TFAR imposes no cyclic-dependency restriction,
// so deadlock is possible and is handled by detection + recovery
// (internal/deadlock). A deterministic dimension-order (DOR) engine with the
// classic dateline virtual-channel restriction is provided as a
// deadlock-free baseline.
package routing

import (
	"wormnet/internal/topology"
)

// Candidate is one output virtual channel a head flit may be allocated to.
type Candidate struct {
	Port topology.Port
	VC   int8
}

// Algorithm computes, for a header at node cur addressed to dst, the set of
// output virtual channels it may use. Implementations hold no per-message
// state; after construction (and optional SetLiveness wiring) they are safe
// for concurrent use.
//
// Reconfiguration contract: Candidates must be a pure, deterministic
// function of (cur, dst, current liveness mask) — no hidden per-call state,
// no dependence on call order or history. The simulation engine relies on
// this for online fault/repair reconfiguration: at every routing-epoch flip
// it rebuilds its packed candidate table by re-running Candidates under the
// new mask, and a repaired component must restore exactly the candidate
// sets it had before failing. Impurity here would silently break both the
// epoch invariants and serial↔parallel bit-equality.
type Algorithm interface {
	// Candidates appends the admissible output virtual channels to out and
	// returns the extended slice. The result is empty iff cur == dst.
	// Candidates of the same physical port are contiguous in the result.
	Candidates(cur, dst topology.NodeID, out []Candidate) []Candidate
	// Name returns a short identifier, e.g. "tfar".
	Name() string
	// DeadlockFree reports whether the algorithm guarantees the absence of
	// routing-induced deadlock (and thus needs no recovery mechanism).
	DeadlockFree() bool
}

// FaultAware is implemented by algorithms that can filter dead channels out
// of their candidate sets. The simulation engine wires its liveness mask in
// before the run when fault injection is active; a nil mask (the default)
// means every channel is alive and the candidate set is the fault-free one.
//
// With a mask attached, Candidates never yields a channel leaving through a
// dead link or toward/out of a dead router — so injection limiters that run
// the routing function (ALO) automatically see the reduced capacity, and
// the candidate set may become empty even when cur != dst (the message is
// currently unroutable; the engine's source-retry machinery handles it).
type FaultAware interface {
	SetLiveness(l *topology.Liveness)
}

// All three engines in this package are fault-aware.
var (
	_ FaultAware = (*TFAR)(nil)
	_ FaultAware = (*DOR)(nil)
	_ FaultAware = (*Duato)(nil)
)

// TFAR is True Fully Adaptive Routing: every virtual channel of every
// minimal physical channel is admissible.
type TFAR struct {
	t    *topology.Torus
	vcs  int
	live *topology.Liveness
}

// NewTFAR returns a TFAR engine for torus t with vcs virtual channels per
// physical channel.
func NewTFAR(t *topology.Torus, vcs int) *TFAR {
	if vcs < 1 {
		panic("routing: need at least one virtual channel")
	}
	return &TFAR{t: t, vcs: vcs}
}

// Candidates implements Algorithm.
func (r *TFAR) Candidates(cur, dst topology.NodeID, out []Candidate) []Candidate {
	if cur == dst {
		return out
	}
	for dim := 0; dim < r.t.N(); dim++ {
		a, b := r.t.Coord(cur, dim), r.t.Coord(dst, dim)
		plus, minus := r.t.MinimalDirs(a, b)
		if plus && alive(r.live, cur, topology.PortFor(dim, topology.Plus)) {
			out = appendPort(out, topology.PortFor(dim, topology.Plus), r.vcs)
		}
		if minus && alive(r.live, cur, topology.PortFor(dim, topology.Minus)) {
			out = appendPort(out, topology.PortFor(dim, topology.Minus), r.vcs)
		}
	}
	return out
}

// SetLiveness implements FaultAware.
func (r *TFAR) SetLiveness(l *topology.Liveness) { r.live = l }

// alive reports whether the channel (cur, p) is usable under mask l; a nil
// mask means yes.
func alive(l *topology.Liveness, cur topology.NodeID, p topology.Port) bool {
	return l == nil || l.LinkAlive(cur, p)
}

func appendPort(out []Candidate, p topology.Port, vcs int) []Candidate {
	for v := 0; v < vcs; v++ {
		out = append(out, Candidate{Port: p, VC: int8(v)})
	}
	return out
}

// Name implements Algorithm.
func (r *TFAR) Name() string { return "tfar" }

// DeadlockFree implements Algorithm. TFAR allows cyclic channel
// dependencies, so it is not deadlock-free.
func (r *TFAR) DeadlockFree() bool { return false }

// DOR is deterministic dimension-order routing with the dateline
// virtual-channel restriction: dimensions are resolved lowest-first; within
// a ring, virtual channel 0 is used while the wraparound link still lies
// ahead and virtual channel 1 afterwards, which breaks the ring's cyclic
// dependency. DOR needs at least 2 virtual channels per physical channel on
// rings with k > 2 to be deadlock-free; extra virtual channels are unused.
type DOR struct {
	t    *topology.Torus
	vcs  int
	live *topology.Liveness
}

// NewDOR returns a dimension-order engine for torus t. vcs is the number of
// virtual channels per physical channel; it panics if vcs < 2 and k > 2,
// since the dateline scheme then cannot be applied.
func NewDOR(t *topology.Torus, vcs int) *DOR {
	if vcs < 2 && t.K() > 2 {
		panic("routing: DOR with dateline needs >= 2 virtual channels")
	}
	if vcs < 1 {
		panic("routing: need at least one virtual channel")
	}
	return &DOR{t: t, vcs: vcs}
}

// Candidates implements Algorithm. It returns at most one candidate.
func (r *DOR) Candidates(cur, dst topology.NodeID, out []Candidate) []Candidate {
	if cur == dst {
		return out
	}
	for dim := 0; dim < r.t.N(); dim++ {
		a, b := r.t.Coord(cur, dim), r.t.Coord(dst, dim)
		if a == b {
			continue
		}
		plus, _ := r.t.MinimalDirs(a, b)
		// Ties (even k, half-way offset) resolve to Plus deterministically.
		dir := topology.Minus
		if plus {
			dir = topology.Plus
		}
		vc := int8(1) // past (or never needing) the wraparound link
		if wrapAhead(a, b, dir) {
			vc = 0
		}
		// A dead prescribed channel leaves DOR with no candidate at all:
		// deterministic routing cannot route around a fault, so the header
		// waits (and the engine's retry machinery eventually reacts).
		if !alive(r.live, cur, topology.PortFor(dim, dir)) {
			return out
		}
		return append(out, Candidate{Port: topology.PortFor(dim, dir), VC: vc})
	}
	return out
}

// SetLiveness implements FaultAware.
func (r *DOR) SetLiveness(l *topology.Liveness) { r.live = l }

// wrapAhead reports whether the remaining path from coordinate a to b in
// direction dir still crosses the ring's wraparound link.
func wrapAhead(a, b int, dir topology.Direction) bool {
	if dir == topology.Plus {
		return a > b // must pass k-1 -> 0
	}
	return a < b // must pass 0 -> k-1
}

// Name implements Algorithm.
func (r *DOR) Name() string { return "dor" }

// DeadlockFree implements Algorithm.
func (r *DOR) DeadlockFree() bool { return true }

// Ports extracts the distinct physical ports appearing in candidates,
// appending to out. Candidates of the same port must be contiguous (as
// produced by the algorithms in this package).
func Ports(cands []Candidate, out []topology.Port) []topology.Port {
	for i, c := range cands {
		if i == 0 || c.Port != cands[i-1].Port {
			out = append(out, c.Port)
		}
	}
	return out
}
