package routing

import (
	"testing"

	"wormnet/internal/topology"
)

// checkCandidates asserts the invariants every routing engine must uphold
// for a candidate set computed at cur toward dst under liveness mask live
// (nil = all alive): every routed port is minimal (crossing it decreases
// the torus distance by exactly one) and live, virtual channels are in
// range with no duplicate (port, vc) pair, same-port candidates are
// contiguous (the Ports contract), and cur == dst yields no candidates.
func checkCandidates(t *testing.T, tp *topology.Torus, live *topology.Liveness,
	cur, dst topology.NodeID, vcs int, cands []Candidate) {
	t.Helper()
	if cur == dst {
		if len(cands) != 0 {
			t.Fatalf("cur==dst=%d: %d candidates", cur, len(cands))
		}
		return
	}
	dist := tp.Distance(cur, dst)
	type pv struct {
		p topology.Port
		v int8
	}
	seen := make(map[pv]bool, len(cands))
	lastPortAt := make(map[topology.Port]int, len(cands))
	for i, c := range cands {
		if c.VC < 0 || int(c.VC) >= vcs {
			t.Fatalf("cur=%d dst=%d: candidate %d vc %d out of range [0,%d)", cur, dst, i, c.VC, vcs)
		}
		if int(c.Port) < 0 || int(c.Port) >= tp.NumPorts() {
			t.Fatalf("cur=%d dst=%d: candidate %d port %d out of range", cur, dst, i, c.Port)
		}
		if tp.Distance(tp.Neighbor(cur, c.Port), dst) != dist-1 {
			t.Fatalf("cur=%d dst=%d: routed port %d is not minimal (dist=%d)", cur, dst, c.Port, dist)
		}
		if live != nil && !live.LinkAlive(cur, c.Port) {
			t.Fatalf("cur=%d dst=%d: routed port %d crosses a dead channel", cur, dst, c.Port)
		}
		if k := (pv{c.Port, c.VC}); seen[k] {
			t.Fatalf("cur=%d dst=%d: duplicate candidate (port %d, vc %d)", cur, dst, c.Port, c.VC)
		} else {
			seen[k] = true
		}
		if at, ok := lastPortAt[c.Port]; ok && at != i-1 {
			t.Fatalf("cur=%d dst=%d: candidates of port %d not contiguous", cur, dst, c.Port)
		}
		lastPortAt[c.Port] = i
	}
}

// FuzzRoute fuzzes all three routing engines over arbitrary geometries,
// node pairs and liveness masks: the candidate invariants above must hold
// with no mask, under fuzzed link failures, and after the mask is restored.
// Engine-specific shape properties (TFAR's full fan-out, DOR's single
// prescribed candidate) are asserted on the fault-free pass.
func FuzzRoute(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(0), uint16(0), uint16(5), uint64(0))
	f.Add(uint8(8), uint8(3), uint8(0), uint16(1), uint16(100), uint64(0xF00F))
	f.Add(uint8(4), uint8(2), uint8(1), uint16(3), uint16(12), uint64(0xDEAD))
	f.Add(uint8(6), uint8(1), uint8(2), uint16(0), uint16(3), uint64(1))
	f.Add(uint8(2), uint8(3), uint8(0), uint16(7), uint16(0), uint64(0xFFFF_FFFF))
	f.Add(uint8(8), uint8(1), uint8(1), uint16(0), uint16(4), uint64(0)) // half-way tie
	f.Fuzz(func(t *testing.T, kRaw, nRaw, algRaw uint8, srcRaw, dstRaw uint16, mask uint64) {
		k := 2 + int(kRaw)%7 // 2..8
		n := 1 + int(nRaw)%3 // 1..3
		tp := topology.New(k, n)
		const vcs = 3
		var alg Algorithm
		switch algRaw % 3 {
		case 0:
			alg = NewTFAR(tp, vcs)
		case 1:
			alg = NewDOR(tp, vcs)
		default:
			alg = NewDuato(tp, vcs)
		}
		src := topology.NodeID(int(srcRaw) % tp.Nodes())
		dst := topology.NodeID(int(dstRaw) % tp.Nodes())

		cands := alg.Candidates(src, dst, nil)
		checkCandidates(t, tp, nil, src, dst, vcs, cands)
		if src != dst {
			useful := tp.UsefulPorts(src, dst, nil)
			switch alg.(type) {
			case *TFAR:
				if len(cands) != len(useful)*vcs {
					t.Fatalf("tfar src=%d dst=%d: %d candidates, want %d useful ports x %d VCs",
						src, dst, len(cands), len(useful), vcs)
				}
			case *DOR:
				if len(cands) != 1 {
					t.Fatalf("dor src=%d dst=%d: %d candidates, want exactly 1", src, dst, len(cands))
				}
			}
		}

		// Kill a fuzzed set of links (each mask bit maps to one directed
		// channel of the torus) and require the reduced candidate sets to
		// stay minimal, live and well-formed.
		live := topology.NewLiveness(tp)
		channels := tp.Nodes() * tp.NumPorts()
		for b := 0; b < 64; b++ {
			if mask&(1<<uint(b)) == 0 {
				continue
			}
			ch := (b * 2654435761) % channels // spread the low bits over the torus
			live.SetLink(topology.NodeID(ch/tp.NumPorts()), topology.Port(ch%tp.NumPorts()), false)
		}
		alg.(FaultAware).SetLiveness(live)
		checkCandidates(t, tp, live, src, dst, vcs, alg.Candidates(src, dst, nil))

		// Restoring every link must restore the fault-free candidate set.
		for nd := 0; nd < tp.Nodes(); nd++ {
			for p := 0; p < tp.NumPorts(); p++ {
				live.SetLink(topology.NodeID(nd), topology.Port(p), true)
			}
		}
		restored := alg.Candidates(src, dst, nil)
		if len(restored) != len(cands) {
			t.Fatalf("src=%d dst=%d: %d candidates after repair, want %d", src, dst, len(restored), len(cands))
		}
		for i := range restored {
			if restored[i] != cands[i] {
				t.Fatalf("src=%d dst=%d: candidate %d changed after repair: %+v vs %+v",
					src, dst, i, restored[i], cands[i])
			}
		}
	})
}
