package routing

import (
	"testing"

	"wormnet/internal/topology"
)

// TestCandidatesPurity pins the reconfiguration contract stated on
// Algorithm: Candidates is a pure function of (cur, dst, liveness). The
// simulation engine rebuilds its candidate table from Candidates at every
// routing-epoch flip, so (a) repeated calls must agree exactly, and (b)
// failing a set of components and then repairing them all must restore
// every candidate set to its fault-free value — for every engine, every
// (cur, dst) pair, at each stage of the Down→Up round trip.
func TestCandidatesPurity(t *testing.T) {
	topo := topology.New(4, 2)
	up0 := topology.PortFor(0, topology.Plus)
	dn1 := topology.PortFor(1, topology.Minus)

	engines := map[string]Algorithm{
		"tfar":  NewTFAR(topo, 3),
		"dor":   NewDOR(topo, 3),
		"duato": NewDuato(topo, 3),
	}
	for name, alg := range engines {
		t.Run(name, func(t *testing.T) {
			live := topology.NewLiveness(topo)
			alg.(FaultAware).SetLiveness(live)

			snapshot := func() map[[2]topology.NodeID][]Candidate {
				m := make(map[[2]topology.NodeID][]Candidate)
				for cur := 0; cur < topo.Nodes(); cur++ {
					for dst := 0; dst < topo.Nodes(); dst++ {
						c, d := topology.NodeID(cur), topology.NodeID(dst)
						m[[2]topology.NodeID{c, d}] = alg.Candidates(c, d, nil)
					}
				}
				return m
			}
			equal := func(a, b map[[2]topology.NodeID][]Candidate) bool {
				for k, av := range a {
					bv := b[k]
					if len(av) != len(bv) {
						return false
					}
					for i := range av {
						if av[i] != bv[i] {
							return false
						}
					}
				}
				return true
			}

			healthy := snapshot()
			if !equal(healthy, snapshot()) {
				t.Fatal("healthy: repeated calls disagree; Candidates is stateful")
			}

			live.SetLink(1, up0, false)
			live.SetLink(6, dn1, false)
			live.SetRouter(11, false)
			degraded := snapshot()
			if !equal(degraded, snapshot()) {
				t.Fatal("degraded: repeated calls disagree; Candidates is stateful")
			}
			if equal(healthy, degraded) {
				t.Fatal("faults changed nothing; test premise broken")
			}

			// Heal in a different order than the failures were applied.
			live.SetRouter(11, true)
			live.SetLink(6, dn1, true)
			live.SetLink(1, up0, true)
			if !live.AllAlive() {
				t.Fatal("mask not fully healed")
			}
			if !equal(healthy, snapshot()) {
				t.Fatal("healed candidate sets differ from fault-free ones; repair is not exact")
			}
		})
	}
}
