package routing

import (
	"testing"

	"wormnet/internal/topology"
)

// portsOf collects the distinct physical ports of a candidate set.
func portsOf(cands []Candidate) map[topology.Port]bool {
	set := map[topology.Port]bool{}
	for _, c := range cands {
		set[c.Port] = true
	}
	return set
}

func TestTFARFiltersDeadChannels(t *testing.T) {
	tp := topology.New(8, 2)
	r := NewTFAR(tp, 3)
	l := topology.NewLiveness(tp)
	r.SetLiveness(l)

	src := tp.FromCoords([]int{0, 0})
	dst := tp.FromCoords([]int{2, 2})
	full := r.Candidates(src, dst, nil)
	if len(full) != 6 { // 2 useful ports * 3 VCs
		t.Fatalf("healthy candidates: %d want 6", len(full))
	}

	// Kill one of the two useful channels: its 3 VCs disappear.
	deadPort := full[0].Port
	l.SetLink(src, deadPort, false)
	rest := r.Candidates(src, dst, nil)
	if len(rest) != 3 {
		t.Fatalf("after link failure: %d candidates want 3", len(rest))
	}
	if portsOf(rest)[deadPort] {
		t.Error("dead channel still offered")
	}

	// Kill the other one too: the message is unroutable for now.
	for p := range portsOf(full) {
		l.SetLink(src, p, false)
	}
	if got := r.Candidates(src, dst, nil); len(got) != 0 {
		t.Errorf("all useful channels dead but %d candidates remain", len(got))
	}

	// A dead downstream router also removes its channel.
	l2 := topology.NewLiveness(tp)
	r.SetLiveness(l2)
	l2.SetRouter(tp.Neighbor(src, deadPort), false)
	if portsOf(r.Candidates(src, dst, nil))[deadPort] {
		t.Error("channel toward dead router still offered")
	}

	// nil mask restores the fault-free set.
	r.SetLiveness(nil)
	if got := r.Candidates(src, dst, nil); len(got) != 6 {
		t.Errorf("nil mask: %d candidates want 6", len(got))
	}
}

func TestDORDeadChannelYieldsNoCandidate(t *testing.T) {
	tp := topology.New(8, 2)
	r := NewDOR(tp, 2)
	l := topology.NewLiveness(tp)
	r.SetLiveness(l)

	src := tp.FromCoords([]int{0, 0})
	dst := tp.FromCoords([]int{3, 0})
	cands := r.Candidates(src, dst, nil)
	if len(cands) != 1 {
		t.Fatalf("healthy DOR candidates: %d want 1", len(cands))
	}
	// DOR is deterministic: killing its one prescribed channel leaves
	// nothing — it must not reroute through another dimension.
	l.SetLink(src, cands[0].Port, false)
	if got := r.Candidates(src, dst, nil); len(got) != 0 {
		t.Errorf("DOR rerouted around a dead channel: %v", got)
	}
}

func TestDuatoFiltersAdaptiveAndEscape(t *testing.T) {
	tp := topology.New(8, 2)
	r := NewDuato(tp, 3) // vc0/vc1 escape, vc2 adaptive
	l := topology.NewLiveness(tp)
	r.SetLiveness(l)

	src := tp.FromCoords([]int{0, 0})
	dst := tp.FromCoords([]int{2, 2})
	full := r.Candidates(src, dst, nil)
	// 2 useful ports: 1 adaptive VC each, plus the escape VC on the DOR port.
	if len(full) != 3 {
		t.Fatalf("healthy Duato candidates: %d want 3", len(full))
	}
	var escPort topology.Port = -1
	for _, c := range full {
		if c.VC < 2 {
			escPort = c.Port
		}
	}
	if escPort < 0 {
		t.Fatal("no escape candidate in healthy set")
	}

	// Killing the escape channel leaves only the other port's adaptive VC.
	l.SetLink(src, escPort, false)
	rest := r.Candidates(src, dst, nil)
	if len(rest) != 1 || rest[0].VC < 2 || rest[0].Port == escPort {
		t.Fatalf("after escape-channel failure: %v", rest)
	}
}
