package router

import "fmt"

// RoundRobin is a rotating-priority arbiter over n requesters. Each Grant
// call scans requesters starting one past the previous winner, so every
// requester is eventually served regardless of contention (strong fairness
// under persistent requests).
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin returns an arbiter over n requesters. n must be positive.
func NewRoundRobin(n int) *RoundRobin {
	a := &RoundRobin{}
	a.Init(n)
	return a
}

// Init (re-)initialises a in place as an arbiter over n requesters, so
// arbiters can be stored by value in contiguous slices.
func (a *RoundRobin) Init(n int) {
	if n < 1 {
		panic("router: round-robin arbiter needs at least one requester")
	}
	*a = RoundRobin{n: n}
}

// Grant returns the index of the first requester i (in rotating order) for
// which want(i) is true, advancing the priority pointer past the winner.
// It returns -1 if no requester wants a grant.
func (a *RoundRobin) Grant(want func(int) bool) int {
	for off := 0; off < a.n; off++ {
		i := (a.next + off) % a.n
		if want(i) {
			a.next = (i + 1) % a.n
			return i
		}
	}
	return -1
}

// N returns the number of requesters.
func (a *RoundRobin) N() int { return a.n }

// Next returns the rotating priority pointer: the requester index that
// currently has top priority. Exposed so hot callers can run the GrantFrom
// scan inline with a specialised admissibility check instead of paying an
// indirect call per candidate; pair with Advance to commit the grant.
func (a *RoundRobin) Next() int { return a.next }

// Advance moves the priority pointer one past winner, exactly as a grant
// does. winner must be a valid requester index. The wrap is a compare
// rather than a modulo: this runs once per granted flit.
func (a *RoundRobin) Advance(winner int) {
	a.next = winner + 1
	if a.next == a.n {
		a.next = 0
	}
}

// SetNext restores the rotating priority pointer (snapshot support). It
// panics on an out-of-range index, mirroring Init's validation.
func (a *RoundRobin) SetNext(i int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("router: round-robin pointer %d out of range [0,%d)", i, a.n))
	}
	a.next = i
}

// GrantFrom picks, among the candidate requester indices, the admissible one
// closest after the rotating priority pointer, advances the pointer past the
// winner, and returns it. It returns -1 if no candidate is admissible.
// Candidates must be valid requester indices; ok filters them (e.g. the
// switch allocator's input-port-already-granted check).
func (a *RoundRobin) GrantFrom(cands []int32, ok func(int32) bool) int32 {
	best := int32(-1)
	bestDist := a.n
	for _, c := range cands {
		if !ok(c) {
			continue
		}
		d := int(c) - a.next
		if d < 0 {
			d += a.n
		}
		if d < bestDist {
			bestDist = d
			best = c
		}
	}
	if best >= 0 {
		a.next = (int(best) + 1) % a.n
	}
	return best
}
